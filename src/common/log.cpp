#include "llmprism/common/log.hpp"

#include <atomic>

namespace llmprism::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_emit_mutex;

constexpr std::string_view level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

Level get_level() { return g_level.load(std::memory_order_relaxed); }

void set_level(Level level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void emit(Level level, std::string_view message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << "[llmprism:" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace llmprism::log
