file(REMOVE_RECURSE
  "CMakeFiles/llmprism_parallelism.dir/config.cpp.o"
  "CMakeFiles/llmprism_parallelism.dir/config.cpp.o.d"
  "CMakeFiles/llmprism_parallelism.dir/placement.cpp.o"
  "CMakeFiles/llmprism_parallelism.dir/placement.cpp.o.d"
  "libllmprism_parallelism.a"
  "libllmprism_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmprism_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
