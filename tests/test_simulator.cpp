// Tests for the training-job / cluster simulator: the generated traces must
// actually exhibit the three communication characteristics LLMPrism
// exploits (spatial stability, temporal periodicity, DP/PP signatures).
#include "llmprism/simulator/cluster_sim.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "llmprism/simulator/job_sim.hpp"

namespace llmprism {
namespace {

ClusterTopology small_topology(std::uint32_t machines = 8) {
  TopologyConfig tc;
  tc.num_machines = machines;
  tc.gpus_per_machine = 8;
  tc.machines_per_leaf = 4;
  tc.num_spines = 2;
  return ClusterTopology::build(tc);
}

JobSimConfig small_job(std::uint32_t tp = 8, std::uint32_t dp = 2,
                       std::uint32_t pp = 2, std::uint32_t steps = 6) {
  JobSimConfig cfg;
  cfg.parallelism.tp = tp;
  cfg.parallelism.dp = dp;
  cfg.parallelism.pp = pp;
  cfg.parallelism.micro_batches = 4;
  cfg.num_steps = steps;
  return cfg;
}

std::vector<MachineId> machines(std::uint32_t from, std::uint32_t count) {
  std::vector<MachineId> out;
  for (std::uint32_t i = 0; i < count; ++i) out.emplace_back(from + i);
  return out;
}

TEST(JobSimConfigTest, ValidatesBadConfigs) {
  JobSimConfig cfg = small_job();
  cfg.num_steps = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = small_job();
  cfg.link_bandwidth_gbps = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = small_job();
  cfg.stragglers.push_back({.rank = 9999, .step_begin = 0, .step_end = 1,
                            .slowdown = 2.0});
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = small_job();
  cfg.slow_dp_groups.push_back(
      {.tp_idx = 99, .pp_idx = 0, .step_begin = 0, .step_end = 1,
       .slowdown = 2.0});
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(JobSimTest, FlowsAreCrossMachineOnly) {
  const auto topo = small_topology();
  TrainingJobSim sim(JobId(0), small_job(), machines(0, 4), topo);
  Rng rng(1);
  const auto result = sim.run(rng);
  ASSERT_GT(result.trace.size(), 0u);
  for (const FlowRecord& f : result.trace) {
    EXPECT_FALSE(topo.same_machine(f.src, f.dst));
    EXPECT_FALSE(f.switches.empty());
  }
}

TEST(JobSimTest, SpatialStability_FlowsStayInsideTheJob) {
  const auto topo = small_topology();
  TrainingJobSim sim(JobId(0), small_job(), machines(2, 4), topo);
  Rng rng(2);
  const auto result = sim.run(rng);
  const std::unordered_set<GpuId> members(result.truth.gpus.begin(),
                                          result.truth.gpus.end());
  for (const FlowRecord& f : result.trace) {
    EXPECT_TRUE(members.count(f.src)) << f.src;
    EXPECT_TRUE(members.count(f.dst)) << f.dst;
  }
}

TEST(JobSimTest, EveryFlowPairHasATrueType) {
  const auto topo = small_topology();
  TrainingJobSim sim(JobId(0), small_job(), machines(0, 4), topo);
  Rng rng(3);
  const auto result = sim.run(rng);
  for (const FlowRecord& f : result.trace) {
    EXPECT_TRUE(result.truth.pair_types.count(f.pair()))
        << f.src << "->" << f.dst;
  }
}

TEST(JobSimTest, PpFlowsHaveOneConsistentSize) {
  const auto topo = small_topology();
  const auto cfg = small_job();
  TrainingJobSim sim(JobId(0), cfg, machines(0, 4), topo);
  Rng rng(4);
  const auto result = sim.run(rng);
  for (const FlowRecord& f : result.trace) {
    if (result.truth.pair_types.at(f.pair()) == CommType::kPP) {
      EXPECT_EQ(f.bytes, cfg.pp_message_bytes);
    }
  }
}

TEST(JobSimTest, DpPairsSeeMultipleDistinctSizes) {
  const auto topo = small_topology();
  const auto cfg = small_job();
  TrainingJobSim sim(JobId(0), cfg, machines(0, 4), topo);
  Rng rng(5);
  const auto result = sim.run(rng);
  std::unordered_map<GpuPair, std::set<std::uint64_t>> sizes_per_pair;
  for (const FlowRecord& f : result.trace) {
    if (result.truth.pair_types.at(f.pair()) == CommType::kDP) {
      sizes_per_pair[f.pair()].insert(f.bytes);
    }
  }
  ASSERT_FALSE(sizes_per_pair.empty());
  for (const auto& [pair, sizes] : sizes_per_pair) {
    EXPECT_EQ(sizes.size(), cfg.dp_buckets) << pair;
  }
}

TEST(JobSimTest, TemporalPeriodicity_StepDurationsAreStable) {
  const auto topo = small_topology();
  TrainingJobSim sim(JobId(0), small_job(8, 2, 2, 10), machines(0, 4), topo);
  Rng rng(6);
  const auto result = sim.run(rng);
  ASSERT_EQ(result.truth.steps.size(), 10u);
  std::vector<double> durations;
  for (const StepTruth& s : result.truth.steps) {
    EXPECT_GT(s.end, s.begin);
    EXPECT_LE(s.dp_end, s.end);
    durations.push_back(to_seconds(s.duration()));
  }
  // steps are contiguous
  for (std::size_t k = 1; k < result.truth.steps.size(); ++k) {
    EXPECT_EQ(result.truth.steps[k].begin, result.truth.steps[k - 1].end);
  }
  // low variance: max/min within 10% (compute jitter is 1%)
  const auto [mn, mx] = std::minmax_element(durations.begin(), durations.end());
  EXPECT_LT(*mx / *mn, 1.10);
}

TEST(JobSimTest, StepsConcludeWithDpTraffic) {
  const auto topo = small_topology();
  TrainingJobSim sim(JobId(0), small_job(), machines(0, 4), topo);
  Rng rng(7);
  const auto result = sim.run(rng);
  for (std::size_t k = 0; k < result.truth.steps.size(); ++k) {
    const StepTruth& step = result.truth.steps[k];
    // Some DP flow ends exactly at dp_end, and no job flow starts in
    // (dp_end, end] (the optimizer tail is communication-free).
    bool found_dp_at_end = false;
    for (const FlowRecord& f : result.trace) {
      if (f.end_time() == step.dp_end) found_dp_at_end = true;
      EXPECT_FALSE(f.start_time > step.dp_end && f.start_time < step.end)
          << "flow inside optimizer tail of step " << k;
    }
    EXPECT_TRUE(found_dp_at_end) << "step " << k;
  }
}

TEST(JobSimTest, StragglerStretchesAffectedSteps) {
  const auto topo = small_topology();
  auto cfg = small_job(8, 2, 2, 10);
  cfg.stragglers.push_back(
      {.rank = 0, .step_begin = 4, .step_end = 5, .slowdown = 3.0});
  TrainingJobSim sim(JobId(0), cfg, machines(0, 4), topo);
  Rng rng(8);
  const auto result = sim.run(rng);
  const auto dur = [&](std::size_t k) {
    return static_cast<double>(result.truth.steps[k].duration());
  };
  const double normal = dur(0);
  EXPECT_GT(dur(4), 1.5 * normal);
  EXPECT_GT(dur(5), 1.5 * normal);
  EXPECT_LT(dur(7), 1.2 * normal);
}

TEST(JobSimTest, SlowDpGroupStretchesItsSpanOnly) {
  const auto topo = small_topology();
  auto cfg = small_job(8, 2, 2, 8);
  cfg.slow_dp_groups.push_back(
      {.tp_idx = 0, .pp_idx = 0, .step_begin = 3, .step_end = 4,
       .slowdown = 4.0});
  TrainingJobSim sim(JobId(0), cfg, machines(0, 4), topo);
  Rng rng(9);
  const auto result = sim.run(rng);
  const std::size_t slow_group = 0;  // pp_idx * tp + tp_idx with tp index 0
  const std::size_t other_group = 1;
  const auto span_dur = [&](std::size_t g, std::size_t k) {
    return static_cast<double>(result.truth.dp_group_spans[g][k].duration());
  };
  EXPECT_GT(span_dur(slow_group, 3), 2.0 * span_dur(slow_group, 1));
  EXPECT_LT(span_dur(other_group, 3), 1.6 * span_dur(other_group, 1));
}

TEST(JobSimTest, ZeroOverlapStillEndsStepsWithDp) {
  const auto topo = small_topology();
  auto cfg = small_job();
  cfg.zero_overlap = true;
  TrainingJobSim sim(JobId(0), cfg, machines(0, 4), topo);
  Rng rng(10);
  const auto result = sim.run(rng);
  for (const StepTruth& s : result.truth.steps) {
    EXPECT_GT(s.dp_end, s.begin);
    EXPECT_EQ(s.end, s.dp_end + cfg.optimizer_time);
  }
}

TEST(JobSimTest, DeterministicGivenSeed) {
  const auto topo = small_topology();
  TrainingJobSim sim(JobId(0), small_job(), machines(0, 4), topo);
  Rng rng1(42), rng2(42);
  const auto r1 = sim.run(rng1);
  const auto r2 = sim.run(rng2);
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  for (std::size_t i = 0; i < r1.trace.size(); ++i) {
    EXPECT_EQ(r1.trace[i], r2.trace[i]);
  }
}

TEST(JobSimTest, DpGroupOfRankIsConsistent) {
  const auto topo = small_topology();
  TrainingJobSim sim(JobId(0), small_job(4, 4, 2), machines(0, 4), topo);
  Rng rng(11);
  const auto result = sim.run(rng);
  const RankMap& rm = sim.rank_map();
  const auto groups = rm.all_dp_groups();
  ASSERT_EQ(result.truth.dp_group_of_rank.size(), rm.world_size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const RankId r : groups[g]) {
      EXPECT_EQ(result.truth.dp_group_of_rank[r.value()], g);
    }
  }
}

// ---------------------------------------------------------------------------
// Cluster-level simulation.

TEST(ClusterSimTest, AutoAllocatesDisjointMachines) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 12, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.jobs.push_back({small_job(8, 2, 2, 4), {}});
  cfg.jobs.push_back({small_job(8, 4, 1, 4), {}});
  const auto result = run_cluster_sim(cfg);
  ASSERT_EQ(result.jobs.size(), 2u);
  std::unordered_set<GpuId> seen;
  for (const JobTruth& j : result.jobs) {
    for (const GpuId g : j.gpus) {
      EXPECT_TRUE(seen.insert(g).second) << "GPU in two jobs: " << g;
    }
  }
}

TEST(ClusterSimTest, RejectsOverlappingExplicitMachines) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 8, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.jobs.push_back({small_job(8, 2, 2, 2), machines(0, 4)});
  cfg.jobs.push_back({small_job(8, 2, 2, 2), machines(3, 4)});
  EXPECT_THROW(run_cluster_sim(cfg), std::invalid_argument);
}

TEST(ClusterSimTest, RejectsWhenClusterTooSmall) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 4, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.jobs.push_back({small_job(8, 4, 2, 2), {}});  // needs 8 machines
  EXPECT_THROW(run_cluster_sim(cfg), std::invalid_argument);
}

TEST(ClusterSimTest, AnomalyLabelsPropagate) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 8, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  auto job = small_job(8, 2, 2, 6);
  job.stragglers.push_back(
      {.rank = 3, .step_begin = 2, .step_end = 3, .slowdown = 2.5});
  cfg.jobs.push_back({job, {}});
  cfg.switch_faults.push_back(
      {SwitchId(0), TimeWindow{0, 100 * kSecond}, 0.5});
  const auto result = run_cluster_sim(cfg);
  ASSERT_EQ(result.anomalies.size(), 2u);
  EXPECT_EQ(result.anomalies[0].kind, AnomalyKind::kStraggler);
  EXPECT_EQ(result.anomalies[0].rank, RankId(3));
  EXPECT_EQ(result.anomalies[1].kind, AnomalyKind::kDegradedSwitch);
}

TEST(ClusterSimTest, TraceIsSortedAndDeterministic) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 12, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.jobs.push_back({small_job(8, 2, 2, 3), {}});
  cfg.jobs.push_back({small_job(8, 4, 1, 3), {}});
  cfg.seed = 77;
  const auto a = run_cluster_sim(cfg);
  const auto b = run_cluster_sim(cfg);
  EXPECT_TRUE(a.trace.is_sorted());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i], b.trace[i]);
  }
}

}  // namespace
}  // namespace llmprism
