// Unit tests for the ablation baselines and the evaluation scorers.
#include <gtest/gtest.h>

#include "llmprism/baseline/eval.hpp"
#include "llmprism/baseline/naive_classifier.hpp"
#include "llmprism/baseline/step_divider.hpp"

namespace llmprism {
namespace {

FlowRecord flow(TimeNs t, std::uint32_t src, std::uint32_t dst,
                std::uint64_t bytes) {
  FlowRecord f;
  f.start_time = t;
  f.src = GpuId(src);
  f.dst = GpuId(dst);
  f.bytes = bytes;
  f.duration = 100;
  return f;
}

// ---------------------------------------------------------------------------
// Threshold step divider

TEST(ThresholdDividerTest, SplitsOnLargeGaps) {
  std::vector<TimeNs> ts;
  for (int b = 0; b < 5; ++b) {
    for (int i = 0; i < 10; ++i) ts.push_back(b * kSecond + i * kMillisecond);
  }
  const auto starts = segment_by_threshold(ts);
  ASSERT_EQ(starts.size(), 5u);
  for (std::size_t b = 0; b < 5; ++b) EXPECT_EQ(starts[b], b * 10);
}

TEST(ThresholdDividerTest, EmptyAndSingleton) {
  EXPECT_TRUE(segment_by_threshold({}).empty());
  const std::vector<TimeNs> one{5};
  EXPECT_EQ(segment_by_threshold(one).size(), 1u);
}

TEST(ThresholdDividerTest, ThrowsOnUnsorted) {
  const std::vector<TimeNs> ts{5, 1};
  EXPECT_THROW(segment_by_threshold(ts), std::invalid_argument);
}

TEST(ThresholdDividerTest, FactorControlsSensitivity) {
  // two short intervals for every 5ms one: median is 1ms, so factor 3
  // splits on the 5ms intervals while factor 10 does not.
  std::vector<TimeNs> ts{0};
  for (int i = 0; i < 30; ++i) {
    ts.push_back(ts.back() + (i % 3 == 2 ? 5 * kMillisecond : kMillisecond));
  }
  EXPECT_GT(segment_by_threshold(ts, {.factor = 3.0}).size(), 1u);
  EXPECT_EQ(segment_by_threshold(ts, {.factor = 10.0}).size(), 1u);
}

// ---------------------------------------------------------------------------
// Naive classifiers

TEST(GlobalDistinctSizeTest, ClassifiesByWholeWindow) {
  FlowTrace t;
  t.add(flow(0, 0, 8, 100));
  t.add(flow(1, 0, 8, 100));
  t.add(flow(2, 8, 16, 100));
  t.add(flow(3, 8, 16, 500));
  const auto types = classify_by_global_distinct_sizes(t);
  EXPECT_EQ(types.at(GpuPair(GpuId(0), GpuId(8))), CommType::kPP);
  EXPECT_EQ(types.at(GpuPair(GpuId(8), GpuId(16))), CommType::kDP);
}

TEST(GlobalDistinctSizeTest, OneGlitchFlipsThePair) {
  // The weakness the per-step mode fixes: a single odd-size flow anywhere
  // in the window flips the naive classifier.
  FlowTrace t;
  for (int i = 0; i < 100; ++i) t.add(flow(i, 0, 8, 100));
  t.add(flow(101, 0, 8, 9999));
  const auto types = classify_by_global_distinct_sizes(t);
  EXPECT_EQ(types.at(GpuPair(GpuId(0), GpuId(8))), CommType::kDP);
}

TEST(VolumeThresholdTest, ClassifiesByMeanSize) {
  FlowTrace t;
  t.add(flow(0, 0, 8, 1 << 20));          // small -> PP
  t.add(flow(1, 8, 16, 512ull << 20));    // large -> DP
  const auto types = classify_by_volume_threshold(t);
  EXPECT_EQ(types.at(GpuPair(GpuId(0), GpuId(8))), CommType::kPP);
  EXPECT_EQ(types.at(GpuPair(GpuId(8), GpuId(16))), CommType::kDP);
}

TEST(VolumeThresholdTest, ThresholdIsConfigurable) {
  FlowTrace t;
  t.add(flow(0, 0, 8, 1000));
  const auto types = classify_by_volume_threshold(t, {.dp_threshold_bytes = 10});
  EXPECT_EQ(types.at(GpuPair(GpuId(0), GpuId(8))), CommType::kDP);
}

// ---------------------------------------------------------------------------
// score_comm_type / score_comm_type_map

JobTruth truth_with_pairs(
    std::initializer_list<std::pair<GpuPair, CommType>> pairs) {
  JobTruth t;
  for (const auto& [p, c] : pairs) t.pair_types.emplace(p, c);
  return t;
}

TEST(ScoreCommTypeTest, CountsCorrectAndConfusion) {
  const auto truth = truth_with_pairs({
      {GpuPair(GpuId(0), GpuId(8)), CommType::kPP},
      {GpuPair(GpuId(8), GpuId(16)), CommType::kDP},
      {GpuPair(GpuId(16), GpuId(24)), CommType::kDP},
      {GpuPair(GpuId(24), GpuId(32)), CommType::kPP},
  });
  std::vector<PairClassification> pairs(4);
  pairs[0].pair = GpuPair(GpuId(0), GpuId(8));
  pairs[0].type = CommType::kPP;
  pairs[1].pair = GpuPair(GpuId(8), GpuId(16));
  pairs[1].type = CommType::kPP;  // DP misread as PP
  pairs[2].pair = GpuPair(GpuId(16), GpuId(24));
  pairs[2].type = CommType::kDP;
  pairs[3].pair = GpuPair(GpuId(24), GpuId(32));
  pairs[3].type = CommType::kDP;  // PP misread as DP
  const auto score = score_comm_type(std::span(pairs), truth);
  EXPECT_EQ(score.total_pairs, 4u);
  EXPECT_EQ(score.correct, 2u);
  EXPECT_EQ(score.dp_as_pp, 1u);
  EXPECT_EQ(score.pp_as_dp, 1u);
  EXPECT_DOUBLE_EQ(score.accuracy(), 0.5);
}

TEST(ScoreCommTypeTest, MissingPairsCounted) {
  const auto truth = truth_with_pairs({
      {GpuPair(GpuId(0), GpuId(8)), CommType::kPP},
  });
  const auto score = score_comm_type({}, truth);
  EXPECT_EQ(score.missing_pairs, 1u);
  EXPECT_EQ(score.total_pairs, 0u);
  EXPECT_DOUBLE_EQ(score.accuracy(), 1.0);  // vacuous
}

TEST(ScoreCommTypeTest, PreRefinementUsesOtherLabel) {
  const auto truth = truth_with_pairs({
      {GpuPair(GpuId(0), GpuId(8)), CommType::kDP},
  });
  std::vector<PairClassification> pairs(1);
  pairs[0].pair = GpuPair(GpuId(0), GpuId(8));
  pairs[0].type = CommType::kDP;
  pairs[0].pre_refinement_type = CommType::kPP;
  EXPECT_DOUBLE_EQ(score_comm_type(std::span(pairs), truth, false).accuracy(),
                   1.0);
  EXPECT_DOUBLE_EQ(score_comm_type(std::span(pairs), truth, true).accuracy(),
                   0.0);
}

// ---------------------------------------------------------------------------
// score_job_recognition

TEST(ScoreJobRecognitionTest, ExactMatchesAndMerges) {
  std::vector<JobTruth> truth(2);
  truth[0].gpus = {GpuId(0), GpuId(1)};
  truth[1].gpus = {GpuId(8), GpuId(9)};

  JobRecognitionResult result;
  RecognizedJob a;
  a.gpus = {GpuId(0), GpuId(1)};
  RecognizedJob b;  // merged blob covering both jobs
  b.gpus = {GpuId(8), GpuId(9), GpuId(16)};
  result.jobs = {a, b};

  const auto score = score_job_recognition(result, std::span(truth));
  EXPECT_EQ(score.true_jobs, 2u);
  EXPECT_EQ(score.recognized_jobs, 2u);
  EXPECT_EQ(score.exact_matches, 1u);
  EXPECT_EQ(score.merged_or_split, 1u);
  EXPECT_FALSE(score.perfect());
}

// ---------------------------------------------------------------------------
// score_timelines

TEST(ScoreTimelinesTest, PerfectReconstructionScoresZeroError) {
  JobTruth truth;
  truth.gpus = {GpuId(0)};
  truth.dp_group_of_rank = {0};
  truth.dp_group_spans.resize(1);
  GpuTimeline t;
  t.gpu = GpuId(0);
  TimeNs at = 0;
  for (int k = 0; k < 10; ++k) {
    const TimeNs end = at + kSecond;
    truth.dp_group_spans[0].push_back({end - 50 * kMillisecond, end});
    t.steps.push_back({static_cast<std::size_t>(k), at, end,
                       end - 50 * kMillisecond, end});
    at = end;
  }
  const std::vector<GpuTimeline> ts{t};
  const auto score = score_timelines(std::span(ts), truth);
  EXPECT_EQ(score.ranks_scored, 1u);
  EXPECT_DOUBLE_EQ(score.matched_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(score.mean_duration_error, 0.0);
  EXPECT_DOUBLE_EQ(score.mean_boundary_offset_s, 0.0);
}

TEST(ScoreTimelinesTest, OffsetBoundariesProduceError) {
  JobTruth truth;
  truth.gpus = {GpuId(0)};
  truth.dp_group_of_rank = {0};
  truth.dp_group_spans.resize(1);
  GpuTimeline t;
  t.gpu = GpuId(0);
  TimeNs at = 0;
  for (int k = 0; k < 10; ++k) {
    const TimeNs end = at + kSecond;
    truth.dp_group_spans[0].push_back({end - 50 * kMillisecond, end});
    // reconstruction drifts by k*1ms -> each duration off by 1ms = 0.1%
    t.steps.push_back({static_cast<std::size_t>(k), at, end + k * kMillisecond,
                       end - 50 * kMillisecond, end + k * kMillisecond});
    at = end;
  }
  const std::vector<GpuTimeline> ts{t};
  const auto score = score_timelines(std::span(ts), truth);
  EXPECT_NEAR(score.mean_duration_error, 0.001, 1e-9);
  EXPECT_GT(score.mean_boundary_offset_s, 0.0);
}

TEST(ScoreTimelinesTest, UnknownGpusIgnored) {
  JobTruth truth;
  truth.gpus = {GpuId(0)};
  truth.dp_group_of_rank = {0};
  truth.dp_group_spans.resize(1);
  truth.dp_group_spans[0].push_back({0, 100});
  GpuTimeline t;
  t.gpu = GpuId(99);  // not part of the job
  t.steps.push_back({0, 0, 100, 0, 100});
  const std::vector<GpuTimeline> ts{t};
  const auto score = score_timelines(std::span(ts), truth);
  EXPECT_EQ(score.ranks_scored, 0u);
}

TEST(ScoreTimelinesTest, MissedBoundariesLowerMatchedFraction) {
  JobTruth truth;
  truth.gpus = {GpuId(0)};
  truth.dp_group_of_rank = {0};
  truth.dp_group_spans.resize(1);
  GpuTimeline t;
  t.gpu = GpuId(0);
  TimeNs at = 0;
  for (int k = 0; k < 10; ++k) {
    const TimeNs end = at + kSecond;
    truth.dp_group_spans[0].push_back({end - 50 * kMillisecond, end});
    if (k % 2 == 0) {  // only half the boundaries reconstructed
      t.steps.push_back({static_cast<std::size_t>(k), at, end,
                         end - 50 * kMillisecond, end});
    }
    at = end;
  }
  const std::vector<GpuTimeline> ts{t};
  const auto score = score_timelines(std::span(ts), truth);
  EXPECT_DOUBLE_EQ(score.matched_fraction(), 0.5);
}

}  // namespace
}  // namespace llmprism
