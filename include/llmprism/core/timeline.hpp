// Per-GPU training-timeline reconstruction (paper §IV-C).
//
// Key temporal invariant: *every training step concludes with a burst of DP
// collective traffic*. Per GPU, BOCD over the intervals between its DP
// flows partitions DP traffic into per-step bursts; the end of each burst
// marks the end of a training step. PP flows are then interleaved
// chronologically and the gaps between communication events are attributed
// to compute, yielding the Fig. 4-style per-rank timeline.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "llmprism/bocd/bocd.hpp"
#include "llmprism/common/comm_type.hpp"
#include "llmprism/common/ids.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/flow/view.hpp"

namespace llmprism {

class ThreadPool;

enum class TimelineEventKind : std::uint8_t {
  kPpSend,   ///< this GPU sent a pipeline activation/gradient
  kPpRecv,   ///< this GPU received one
  kDp,       ///< data-parallel collective flow (either direction)
  kCompute,  ///< inferred compute: gap between communication events
};

[[nodiscard]] constexpr std::string_view to_string(TimelineEventKind k) {
  switch (k) {
    case TimelineEventKind::kPpSend: return "pp_send";
    case TimelineEventKind::kPpRecv: return "pp_recv";
    case TimelineEventKind::kDp: return "dp";
    case TimelineEventKind::kCompute: return "compute";
  }
  return "?";
}

struct TimelineEvent {
  TimelineEventKind kind{};
  TimeNs start = 0;
  TimeNs end = 0;
  GpuId peer;  ///< other endpoint (invalid for compute events)

  [[nodiscard]] DurationNs duration() const { return end - start; }
};

/// One reconstructed training step of one GPU. Steps span from the end of
/// the previous step's DP burst to the end of this step's DP burst.
struct ReconstructedStep {
  std::size_t index = 0;
  TimeNs begin = 0;     ///< end of previous DP burst (trace start for step 0)
  TimeNs end = 0;       ///< end of this step's DP burst
  TimeNs dp_begin = 0;  ///< first DP flow of the step
  TimeNs dp_end = 0;    ///< last DP flow end of the step (== end)

  [[nodiscard]] DurationNs duration() const { return end - begin; }
  [[nodiscard]] DurationNs dp_duration() const { return dp_end - dp_begin; }
};

struct GpuTimeline {
  GpuId gpu;
  std::vector<TimelineEvent> events;      ///< chronological, compute-filled
  std::vector<ReconstructedStep> steps;   ///< chronological
};

struct TimelineConfig {
  /// Gap segmenter (BOCD) settings for DP-burst segmentation.
  SegmenterConfig segmenter;
  /// Gaps between communication events shorter than this are not reported
  /// as compute (they are launch latency).
  DurationNs min_compute_gap = 1 * kMillisecond;
};

/// Cross-window carry of one GPU's step structure (the session warm path).
struct GpuStepCarry {
  /// DP comm events of the previous window's trailing provisional burst,
  /// held back because the burst ended too close to the window boundary to
  /// be a complete step. Prepended to the next window's events, so the
  /// straddling step is re-segmented with both halves visible.
  std::vector<TimelineEvent> held_events;
  /// End of the last complete step emitted for this GPU; seeds the next
  /// window's step-0 begin (the cold path has to fall back to the window's
  /// first event).
  TimeNs prev_step_end = 0;
  bool has_prev_step = false;
};

/// Per-job carry across windows, keyed by GPU.
struct TimelineCarry {
  std::unordered_map<GpuId, GpuStepCarry> per_gpu;
  /// Per-call outcome (reset by each carry-aware reconstruct_all call).
  std::uint64_t steps_held = 0;        ///< trailing bursts held back
  std::uint64_t steps_carried_in = 0;  ///< held bursts consumed this window
};

/// Window geometry for one carry-aware reconstruction call.
struct TimelineCarryContext {
  TimelineCarry* carry = nullptr;  ///< null = cold (no carry)
  /// End of the analysis window the trace was sliced from.
  TimeNs window_end = 0;
  /// Hold back a trailing DP burst that ends within `boundary_hold` of
  /// window_end (set for every window except the final flush, whose tail
  /// is genuinely the end of the feed).
  bool hold_tail = false;
  DurationNs boundary_hold = 200 * kMillisecond;
};

class TimelineReconstructor {
 public:
  explicit TimelineReconstructor(TimelineConfig config = {});

  /// Reconstruct the timeline of `gpu` from one job's flows, given the
  /// per-pair communication types from Alg. 2.
  [[nodiscard]] GpuTimeline reconstruct(
      GpuId gpu, const FlowTrace& job_trace,
      const std::unordered_map<GpuPair, CommType>& types) const;

  /// Reconstruct every GPU that appears in the trace. When
  /// `segmenter_stats` is non-null, the DP-burst segmentation's BOCD work
  /// counters are accumulated into it (deterministic event counts — see
  /// PrismReport::telemetry).
  [[nodiscard]] std::vector<GpuTimeline> reconstruct_all(
      const FlowTrace& job_trace,
      const std::unordered_map<GpuPair, CommType>& types,
      SegmenterStats* segmenter_stats = nullptr) const;

  /// Same, but with the per-flow types precomputed (one CommType per trace
  /// position, as produced by CommTypeIdentifier::identify over the shared
  /// pair index) — no per-flow hash probe. `flow_types.size()` must equal
  /// `job_trace.size()`.
  [[nodiscard]] std::vector<GpuTimeline> reconstruct_all(
      const FlowTrace& job_trace, std::span<const CommType> flow_types,
      SegmenterStats* segmenter_stats = nullptr) const;

  /// Carry-aware variant (the session warm path): held-back DP bursts from
  /// `ctx.carry` are prepended to their GPU's events before segmentation,
  /// step 0 begins at the carried previous step end, and a trailing burst
  /// ending within `ctx.boundary_hold` of `ctx.window_end` is held back
  /// into the carry instead of being emitted as a (truncated) step. With
  /// `ctx.carry == nullptr` this is exactly the cold overload.
  [[nodiscard]] std::vector<GpuTimeline> reconstruct_all(
      const FlowTrace& job_trace, std::span<const CommType> flow_types,
      SegmenterStats* segmenter_stats, const TimelineCarryContext& ctx) const;

  /// Columnar core the other overloads delegate to: the event scan reads
  /// the SoA columns directly and buckets per GPU with a dense counting
  /// gather (counts + prefix sum + scatter) instead of a hash map of
  /// vectors. Identical output, including GPU order (ascending).
  ///
  /// When `pool` is non-null the per-GPU assembly (sort, BOCD burst
  /// segmentation, compute-gap fill) fans out across it. Each GPU owns a
  /// pre-sized output slot and private telemetry counters (folded in GPU
  /// order), and carry map entries are resolved sequentially before the
  /// fan-out, so the result is bit-identical at any thread count.
  [[nodiscard]] std::vector<GpuTimeline> reconstruct_all(
      const FlowView& view, std::span<const CommType> flow_types,
      SegmenterStats* segmenter_stats, const TimelineCarryContext& ctx,
      ThreadPool* pool = nullptr) const;

 private:
  TimelineConfig config_;
};

}  // namespace llmprism
