#include "llmprism/collector/packetize.hpp"

#include <algorithm>
#include <stdexcept>

namespace llmprism {

std::vector<PacketRecord> packetize(const FlowTrace& flows,
                                    const PacketizeConfig& config, Rng& rng) {
  if (config.mtu_bytes == 0 || config.max_packets_per_flow == 0) {
    throw std::invalid_argument(
        "packetize: mtu and max_packets_per_flow must be > 0");
  }
  if (config.pacing_jitter < 0.0 || config.pacing_jitter >= 1.0) {
    throw std::invalid_argument("packetize: pacing_jitter must be in [0, 1)");
  }

  std::vector<PacketRecord> packets;
  for (const FlowRecord& f : flows) {
    if (f.switches.empty()) continue;  // intra-machine: never mirrored
    const std::uint64_t wire_packets =
        std::max<std::uint64_t>(1, (f.bytes + config.mtu_bytes - 1) /
                                       config.mtu_bytes);
    const auto emitted = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        wire_packets, config.max_packets_per_flow));
    // Spread the flow's bytes over the emitted packets (exact accounting).
    const std::uint64_t base_bytes = f.bytes / emitted;
    std::uint64_t remainder = f.bytes % emitted;

    const double nominal_gap =
        emitted > 1 ? static_cast<double>(f.duration) / (emitted - 1) : 0.0;
    for (std::uint32_t p = 0; p < emitted; ++p) {
      PacketRecord pkt;
      double at = static_cast<double>(f.start_time) +
                  static_cast<double>(p) * nominal_gap;
      if (p != 0 && p + 1 != emitted && nominal_gap > 0) {
        at += rng.uniform(-config.pacing_jitter, config.pacing_jitter) *
              nominal_gap;
      }
      pkt.timestamp = static_cast<TimeNs>(at);
      pkt.src = f.src;
      pkt.dst = f.dst;
      pkt.bytes = base_bytes + (remainder > 0 ? 1 : 0);
      if (remainder > 0) --remainder;
      pkt.observed_at = f.switches.front();
      packets.push_back(pkt);
    }
  }
  std::sort(packets.begin(), packets.end(), PacketTimestampLess{});
  return packets;
}

}  // namespace llmprism
