// FlagSet — the shared option parser behind prism/prismd/gen_trace.
// The load-bearing contracts: an unknown option is ALWAYS an error
// (callers exit 2 — regression for the silent fall-through the old
// hand-rolled parsers had), deprecated aliases keep working with a
// warning, malformed values name the flag, and positional arity is
// enforced.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "llmprism/common/flags.hpp"

namespace llmprism::cli {
namespace {

ParseResult parse(FlagSet& flags, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "test");
  return flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagSetTest, ParsesEveryValueShape) {
  std::string s;
  bool b = false;
  double d = 0.0;
  std::uint16_t u16 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::optional<double> od;
  std::vector<std::string> pos;

  FlagSet flags("test");
  flags.flag("--str", "S", "", &s);
  flags.flag("--on", "", &b);
  flags.flag("--ratio", "F", "", &d);
  flags.flag("--port", "P", "", &u16);
  flags.flag("--count", "N", "", &u32);
  flags.flag("--big", "N", "", &u64);
  flags.flag("--opt", "F", "", &od);
  flags.positionals("<in>", 1, 2, &pos);

  const ParseResult result =
      parse(flags, {"--str", "hello", "--on", "--ratio=0.5", "--port", "8080",
                    "--count=42", "--big", "5000000000", "--opt=2.5", "in.lft",
                    "out.lft"});
  ASSERT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
  EXPECT_EQ(d, 0.5);
  EXPECT_EQ(u16, 8080);
  EXPECT_EQ(u32, 42u);
  EXPECT_EQ(u64, 5000000000ull);
  ASSERT_TRUE(od.has_value());
  EXPECT_EQ(*od, 2.5);
  EXPECT_EQ(pos, (std::vector<std::string>{"in.lft", "out.lft"}));
}

TEST(FlagSetTest, UnknownOptionIsAlwaysAnError) {
  // Regression: the old hand-rolled parsers silently ignored unknown
  // options; FlagSet must record an error naming the offender so callers
  // exit 2 with a usage hint.
  std::string s;
  std::vector<std::string> pos;
  FlagSet flags("test");
  flags.flag("--known", "S", "", &s);
  flags.positionals("<in>", 0, 9, &pos);

  const ParseResult result =
      parse(flags, {"--known", "x", "--bogus-flag", "in.lft"});
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("--bogus-flag"), std::string::npos);
  EXPECT_EQ(s, "x") << "known flags before the error still parse";
}

TEST(FlagSetTest, MalformedValueNamesTheFlag) {
  std::uint32_t n = 0;
  double d = 0.0;
  FlagSet flags("test");
  flags.flag("--count", "N", "", &n);
  flags.flag("--ratio", "F", "", &d);

  for (const std::vector<const char*>& argv :
       {std::vector<const char*>{"--count", "banana"},
        std::vector<const char*>{"--count=-3"},
        std::vector<const char*>{"--ratio", "fast"},
        std::vector<const char*>{"--count"}}) {
    const ParseResult result = parse(flags, argv);
    EXPECT_FALSE(result.ok);
    ASSERT_FALSE(result.errors.empty());
    EXPECT_NE(result.errors[0].find("--"), std::string::npos)
        << "error must name the flag: " << result.errors[0];
  }
}

TEST(FlagSetTest, DeprecatedAliasStillParses) {
  std::uint64_t window = 0;
  FlagSet flags("test");
  flags.flag("--window", "S", "", &window);
  flags.alias("--monitor-window", "--window");

  ::testing::internal::CaptureStderr();
  const ParseResult result = parse(flags, {"--monitor-window", "30"});
  const std::string warning = ::testing::internal::GetCapturedStderr();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(window, 30u);
  // One-line deprecation note pointing at the canonical spelling (printed
  // at most once per process, so don't assert on a second use).
  if (!warning.empty()) {
    EXPECT_NE(warning.find("deprecated"), std::string::npos);
    EXPECT_NE(warning.find("--window"), std::string::npos);
  }
}

TEST(FlagSetTest, PositionalArityIsEnforced) {
  std::vector<std::string> pos;
  FlagSet flags("test");
  flags.positionals("<in> <out>", 2, 2, &pos);

  EXPECT_FALSE(parse(flags, {"only-one"}).ok);
  EXPECT_FALSE(parse(flags, {"a", "b", "c"}).ok);
  pos.clear();
  EXPECT_TRUE(parse(flags, {"a", "b"}).ok);
  EXPECT_EQ(pos, (std::vector<std::string>{"a", "b"}));
}

TEST(FlagSetTest, DoubleDashEndsFlagParsing) {
  bool on = false;
  std::vector<std::string> pos;
  FlagSet flags("test");
  flags.flag("--on", "", &on);
  flags.positionals("<args>", 0, 9, &pos);

  ASSERT_TRUE(parse(flags, {"--on", "--", "--not-a-flag"}).ok);
  EXPECT_TRUE(on);
  EXPECT_EQ(pos, (std::vector<std::string>{"--not-a-flag"}));
}

TEST(FlagSetTest, HelpShortCircuits) {
  std::uint32_t n = 0;
  FlagSet flags("test");
  flags.flag("--count", "N", "the count", &n);

  const ParseResult result = parse(flags, {"--help", "--count", "banana"});
  EXPECT_TRUE(result.help);
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("usage:"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("the count"), std::string::npos);
}

TEST(FlagSetTest, CustomFlagErrorsPropagate) {
  std::vector<std::string> seen;
  FlagSet flags("test");
  flags.custom_flag("--item", "X", "repeatable", /*takes_value=*/true,
                    [&](std::string_view v) -> std::string {
                      if (v == "bad") return "bad item";
                      seen.emplace_back(v);
                      return {};
                    });

  ASSERT_TRUE(parse(flags, {"--item", "a", "--item=b"}).ok);
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b"}));

  const ParseResult result = parse(flags, {"--item", "bad"});
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.errors.empty());
  EXPECT_NE(result.errors[0].find("bad item"), std::string::npos);
}

}  // namespace
}  // namespace llmprism::cli
