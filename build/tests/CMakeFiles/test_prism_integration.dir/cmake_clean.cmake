file(REMOVE_RECURSE
  "CMakeFiles/test_prism_integration.dir/test_prism_integration.cpp.o"
  "CMakeFiles/test_prism_integration.dir/test_prism_integration.cpp.o.d"
  "test_prism_integration"
  "test_prism_integration.pdb"
  "test_prism_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prism_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
