// Unit tests for the self-telemetry layer: counters, gauges, histograms,
// the registry with its two exporters, and trace-span collection.
#include "llmprism/obs/metrics.hpp"
#include "llmprism/obs/trace_span.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "json_lint.hpp"

namespace llmprism::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddsSumExactly) {
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), kThreads * kPerThread);
}

TEST(HistogramTest, BucketsObservationsByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper bound)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // +Inf
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 1006.5);
}

TEST(HistogramTest, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramQuantileTest, EmptySnapshotIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(histogram_quantile(h.snapshot(), 0.5), 0.0);
}

TEST(HistogramQuantileTest, InterpolatesWithinBucket) {
  // 100 observations uniform in (0, 1]: all land in the first bucket, so
  // the Prometheus-style estimate interpolates linearly from 0 to 1.
  Histogram h({1.0, 2.0});
  for (int i = 1; i <= 100; ++i) h.observe(i / 100.0);
  const auto snap = h.snapshot();
  EXPECT_NEAR(histogram_quantile(snap, 0.50), 0.50, 1e-9);
  EXPECT_NEAR(histogram_quantile(snap, 0.95), 0.95, 1e-9);
  EXPECT_NEAR(histogram_quantile(snap, 1.00), 1.00, 1e-9);
}

TEST(HistogramQuantileTest, SpansBucketsCumulatively) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) h.observe(0.5);  // bucket (0, 1]
  for (int i = 0; i < 50; ++i) h.observe(1.5);  // bucket (1, 2]
  const auto snap = h.snapshot();
  // rank 50 sits exactly at the first bucket boundary.
  EXPECT_NEAR(histogram_quantile(snap, 0.5), 1.0, 1e-9);
  // rank 90 is 80% into the (1, 2] bucket.
  EXPECT_NEAR(histogram_quantile(snap, 0.9), 1.8, 1e-9);
}

TEST(HistogramQuantileTest, OverflowBucketClampsToHighestBound) {
  Histogram h({1.0});
  h.observe(100.0);
  h.observe(200.0);
  EXPECT_EQ(histogram_quantile(h.snapshot(), 0.99), 1.0);
}

TEST(HistogramQuantileTest, ClampsOutOfRangeQuantile) {
  Histogram h({1.0});
  h.observe(0.5);
  EXPECT_GE(histogram_quantile(h.snapshot(), -1.0), 0.0);
  EXPECT_LE(histogram_quantile(h.snapshot(), 2.0), 1.0);
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  Registry r;
  Counter& a = r.counter("x_total", "help");
  Counter& b = r.counter("x_total", "other help ignored");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(r.size(), 1u);
}

TEST(RegistryTest, KindMismatchThrows) {
  Registry r;
  r.counter("metric");
  EXPECT_THROW(r.gauge("metric"), std::invalid_argument);
  EXPECT_THROW(r.histogram("metric"), std::invalid_argument);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistered) {
  Registry r;
  r.counter("c_total").inc(5);
  r.gauge("g").set(3.0);
  r.histogram("h_seconds").observe(0.01);
  r.reset();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.counter("c_total").value(), 0u);
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 0.0);
  EXPECT_EQ(r.histogram("h_seconds").snapshot().count, 0u);
}

TEST(RegistryTest, PrometheusExposition) {
  Registry r;
  r.counter("llmprism_events_total", "events seen").inc(7);
  r.gauge("llmprism_lag_seconds", "feed lag").set(1.5);
  Histogram& h = r.histogram("llmprism_latency_seconds", "latency",
                             {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  std::ostringstream oss;
  r.write_prometheus(oss);
  const std::string text = oss.str();

  EXPECT_NE(text.find("# HELP llmprism_events_total events seen"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE llmprism_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("llmprism_events_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE llmprism_lag_seconds gauge"),
            std::string::npos);
  EXPECT_NE(text.find("llmprism_lag_seconds 1.5"), std::string::npos);
  // Cumulative bucket semantics: le="1" includes the le="0.1" bucket.
  EXPECT_NE(text.find("llmprism_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("llmprism_latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("llmprism_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("llmprism_latency_seconds_count 3"),
            std::string::npos);
}

TEST(RegistryTest, PrometheusHelpTextIsEscaped) {
  // The exposition format requires backslash and newline escaping in HELP
  // text (and nowhere else on that line).
  Registry r;
  r.counter("llmprism_esc_total", "line one\nline \\ two").inc(1);
  std::ostringstream oss;
  r.write_prometheus(oss);
  EXPECT_NE(
      oss.str().find("# HELP llmprism_esc_total line one\\nline \\\\ two\n"),
      std::string::npos)
      << oss.str();
}

TEST(RegistryTest, JsonHistogramsCarryQuantileEstimates) {
  Registry r;
  Histogram& h = r.histogram("h_seconds", "latency", {1.0, 2.0});
  for (int i = 1; i <= 100; ++i) h.observe(i / 100.0);
  std::ostringstream oss;
  r.write_json(oss);
  const std::string json = oss.str();
  EXPECT_TRUE(testing::is_valid_json(json))
      << testing::JsonLinter(json).error() << "\n" << json;
  EXPECT_NE(json.find("\"p50\":0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\":0.95"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":0.99"), std::string::npos) << json;
}

TEST(RegistryTest, JsonSnapshotIsValidJson) {
  Registry r;
  r.counter("c_total", "with \"quotes\" and \\ backslash").inc(2);
  r.gauge("g").set(0.25);
  r.histogram("h_seconds").observe(0.002);
  std::ostringstream oss;
  r.write_json(oss);
  const std::string json = oss.str();
  EXPECT_TRUE(testing::is_valid_json(json))
      << testing::JsonLinter(json).error() << "\n" << json;
  EXPECT_NE(json.find("\"c_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"g\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":"), std::string::npos);
}

TEST(RegistryTest, DefaultRegistryIsPipelinePopulated) {
  // The pipeline translation units register their metrics on first use;
  // the default registry itself must at least be a stable singleton.
  EXPECT_EQ(&default_registry(), &default_registry());
}

TEST(ScopedTimerTest, RecordsOneObservation) {
  Histogram h({1e-6, 1.0, 100.0});
  { const ScopedTimer timer(h); }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 0.0);
}

class TraceSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::instance().disable();
    (void)TraceCollector::instance().drain();  // clear leftovers
  }
  void TearDown() override {
    TraceCollector::instance().disable();
    (void)TraceCollector::instance().drain();
  }
};

TEST_F(TraceSpanTest, DisabledSpansRecordNothing) {
  { const Span span("test.disabled"); }
  EXPECT_TRUE(TraceCollector::instance().drain().empty());
}

TEST_F(TraceSpanTest, EnabledSpansAreCollected) {
  TraceCollector::instance().enable();
  {
    const Span outer("test.outer");
    const Span inner("test.inner", 42);
  }
  TraceCollector::instance().disable();
  const auto spans = TraceCollector::instance().drain();
  ASSERT_EQ(spans.size(), 2u);
  // Both spans can begin in the same microsecond, so identify them by name
  // rather than relying on sort order.
  const SpanRecord* outer = nullptr;
  const SpanRecord* inner = nullptr;
  for (const SpanRecord& s : spans) {
    if (std::string_view(s.name) == "test.outer") outer = &s;
    if (std::string_view(s.name) == "test.inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->arg, SpanRecord::kNoArg);
  EXPECT_EQ(inner->arg, 42u);
  EXPECT_GE(outer->dur_us, inner->dur_us);
  EXPECT_TRUE(TraceCollector::instance().drain().empty()) << "drain clears";
}

TEST_F(TraceSpanTest, SpansFromManyThreadsAllArrive) {
  TraceCollector::instance().enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        const Span span("test.worker", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  TraceCollector::instance().disable();
  const auto spans = TraceCollector::instance().drain();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_F(TraceSpanTest, ChromeTraceJsonIsValid) {
  TraceCollector::instance().enable();
  {
    const Span a("test.analyze");
    const Span b("test.job", 3);
  }
  TraceCollector::instance().disable();
  std::ostringstream oss;
  TraceCollector::instance().write_chrome_trace(oss);
  const std::string json = oss.str();
  EXPECT_TRUE(testing::is_valid_json(json))
      << testing::JsonLinter(json).error() << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.analyze\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"id\":3}"), std::string::npos);
}

TEST_F(TraceSpanTest, EmptyTraceIsStillValidJson) {
  std::ostringstream oss;
  TraceCollector::instance().write_chrome_trace(oss);
  EXPECT_TRUE(testing::is_valid_json(oss.str()));
}

}  // namespace
}  // namespace llmprism::obs
