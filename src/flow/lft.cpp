#include "llmprism/flow/lft.hpp"

#include <bit>
#include <cassert>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "llmprism/common/hash.hpp"
#include "llmprism/obs/metrics.hpp"
#include "llmprism/obs/trace_span.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LLMPRISM_LFT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

// The format is defined little-endian and the readers hand out zero-copy
// typed spans into the raw bytes, so a big-endian host would need a
// byte-swapping materialization path nobody has asked for yet.
static_assert(std::endian::native == std::endian::little,
              "LFT readers require a little-endian host");

namespace llmprism {

namespace {

using lft::kFlagSorted;
using lft::kHeaderSize;
using lft::kMagic;
using lft::kSectionCount;
using lft::kVersion;

constexpr std::size_t kTableSize = kSectionCount * sizeof(std::uint64_t);
constexpr std::size_t kMaxHops = SwitchPath::capacity();

constexpr const char* kSectionName[kSectionCount] = {
    "start_ns", "src",            "dst",       "bytes",
    "duration", "switch_offsets", "switch_ids"};

obs::Counter& ingest_bytes_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_ingest_bytes_total", "Bytes consumed by trace ingest (CSV + LFT)");
  return c;
}

obs::Counter& ingest_rows_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_ingest_rows_total", "Flow rows successfully ingested");
  return c;
}

obs::Histogram& ingest_parse_seconds() {
  static obs::Histogram& h = obs::default_registry().histogram(
      "llmprism_ingest_parse_seconds",
      "Wall time of one trace parse/load (CSV or LFT)");
  return h;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("lft: " + what);
}

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kDigits[(v >> shift) & 0xf];
  }
  return out;
}

constexpr std::size_t padded(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

std::uint64_t load_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// A validated LFT image: base must be 8-byte aligned (both readers map or
/// allocate aligned storage), so the section pointers can be handed out as
/// typed spans directly.
struct LftView {
  const std::byte* sections[kSectionCount] = {};
  std::size_t num_flows = 0;
  std::size_t num_switch_ids = 0;
  bool sorted = false;
};

/// Per-section byte sizes implied by the header counts, overflow-checked.
void expected_sizes(std::uint64_t n, std::uint64_t m,
                    std::uint64_t (&out)[kSectionCount]) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (n > (kMax - 8) / 8 || m > kMax / 4) fail("section size overflow");
  out[0] = n * 8;        // start_ns
  out[1] = n * 4;        // src
  out[2] = n * 4;        // dst
  out[3] = n * 8;        // bytes
  out[4] = n * 8;        // duration
  out[5] = (n + 1) * 8;  // switch_offsets
  out[6] = m * 4;        // switch_ids
}

LftView validate_lft(const std::byte* base, std::size_t size) {
  if ((reinterpret_cast<std::uintptr_t>(base) & 7) != 0) {
    fail("internal: image not 8-byte aligned");
  }
  if (size < kHeaderSize) {
    fail("truncated header (" + std::to_string(size) + " bytes, need " +
         std::to_string(kHeaderSize) + ")");
  }
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic (not an LFT file)");
  }
  std::uint16_t version;
  std::uint16_t flags;
  std::memcpy(&version, base + 4, sizeof(version));
  std::memcpy(&flags, base + 6, sizeof(flags));
  if (version != kVersion) {
    fail("unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kVersion) + ")");
  }
  if ((flags & ~kFlagSorted) != 0) {
    fail("unknown flag bits " + hex64(flags & ~kFlagSorted));
  }
  const std::uint64_t n = load_u64(base + 8);
  const std::uint64_t m = load_u64(base + 16);
  std::uint32_t section_count;
  std::memcpy(&section_count, base + 24, sizeof(section_count));
  if (section_count != kSectionCount) {
    fail("unexpected section count " + std::to_string(section_count) +
         " (expected " + std::to_string(kSectionCount) + ")");
  }
  if (size < kHeaderSize + kTableSize) {
    fail("truncated section table (" + std::to_string(size) + " bytes)");
  }

  std::uint64_t expected[kSectionCount];
  expected_sizes(n, m, expected);
  std::uint64_t total = kHeaderSize + kTableSize;
  LftView view;
  view.num_flows = static_cast<std::size_t>(n);
  view.num_switch_ids = static_cast<std::size_t>(m);
  view.sorted = (flags & kFlagSorted) != 0;
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    const std::uint64_t stored =
        load_u64(base + kHeaderSize + s * sizeof(std::uint64_t));
    if (stored != expected[s]) {
      fail("section " + std::string(kSectionName[s]) + " size mismatch (got " +
           std::to_string(stored) + ", expected " + std::to_string(expected[s]) +
           ")");
    }
    view.sections[s] = base + total;
    const std::uint64_t step = padded(stored);
    if (step > std::numeric_limits<std::uint64_t>::max() - total) {
      fail("section size overflow");
    }
    total += step;
  }
  if (total > std::numeric_limits<std::uint64_t>::max() - 8) {
    fail("section size overflow");
  }
  total += 8;  // trailing checksum
  if (size != total) {
    fail("file size mismatch (got " + std::to_string(size) + " bytes, expected " +
         std::to_string(total) + ")");
  }

  const std::uint64_t stored_hash = load_u64(base + size - 8);
  const std::uint64_t computed_hash = xxhash64(base, size - 8);
  if (stored_hash != computed_hash) {
    fail("checksum mismatch (stored " + hex64(stored_hash) + ", computed " +
         hex64(computed_hash) + ")");
  }

  // CSR invariants: offsets start at 0, never decrease, never step by more
  // than the inline switch-path capacity, and end exactly at num_switch_ids.
  const auto* offsets = reinterpret_cast<const std::uint64_t*>(view.sections[5]);
  if (offsets[0] != 0) {
    fail("switch offsets must start at 0 (got " + std::to_string(offsets[0]) +
         ")");
  }
  for (std::size_t i = 0; i < view.num_flows; ++i) {
    if (offsets[i + 1] < offsets[i]) {
      fail("switch offsets not monotone at flow " + std::to_string(i));
    }
    if (offsets[i + 1] - offsets[i] > kMaxHops) {
      fail("flow " + std::to_string(i) + ": switch path has " +
           std::to_string(offsets[i + 1] - offsets[i]) + " hops (max " +
           std::to_string(kMaxHops) + ")");
    }
  }
  if (offsets[view.num_flows] != m) {
    fail("switch offsets end at " + std::to_string(offsets[view.num_flows]) +
         " (expected num_switch_ids " + std::to_string(m) + ")");
  }

  // The sorted flag is a promise downstream binary searches rely on, so a
  // file that lies about it is rejected as corrupt rather than trusted.
  if (view.sorted && view.num_flows > 1) {
    const auto* start = reinterpret_cast<const TimeNs*>(view.sections[0]);
    const auto* src = reinterpret_cast<const std::uint32_t*>(view.sections[1]);
    const auto* dst = reinterpret_cast<const std::uint32_t*>(view.sections[2]);
    const auto* bytes = reinterpret_cast<const std::uint64_t*>(view.sections[3]);
    for (std::size_t i = 1; i < view.num_flows; ++i) {
      const auto prev = std::tuple(start[i - 1], src[i - 1], dst[i - 1],
                                   bytes[i - 1]);
      const auto cur = std::tuple(start[i], src[i], dst[i], bytes[i]);
      if (cur < prev) {
        fail("sorted flag set but rows are not sorted (flow " +
             std::to_string(i) + ")");
      }
    }
  }
  return view;
}

FlowTrace materialize(const LftView& view) {
  const auto* start = reinterpret_cast<const TimeNs*>(view.sections[0]);
  const auto* src = reinterpret_cast<const std::uint32_t*>(view.sections[1]);
  const auto* dst = reinterpret_cast<const std::uint32_t*>(view.sections[2]);
  const auto* bytes = reinterpret_cast<const std::uint64_t*>(view.sections[3]);
  const auto* duration = reinterpret_cast<const DurationNs*>(view.sections[4]);
  const auto* offsets = reinterpret_cast<const std::uint64_t*>(view.sections[5]);
  const auto* hops = reinterpret_cast<const std::uint32_t*>(view.sections[6]);

  std::vector<FlowRecord> rows(view.num_flows);
  for (std::size_t i = 0; i < view.num_flows; ++i) {
    FlowRecord& f = rows[i];
    f.start_time = start[i];
    f.src = GpuId(src[i]);
    f.dst = GpuId(dst[i]);
    f.bytes = bytes[i];
    f.duration = duration[i];
    for (std::uint64_t h = offsets[i]; h < offsets[i + 1]; ++h) {
      f.switches.push_back(SwitchId(hops[h]));
    }
  }
  // The FlowTrace(vector) constructor verifies order in one O(N) scan, so a
  // sorted file yields a born-sorted trace: later sort() calls are no-ops
  // and llmprism_flowtrace_sorts_total stays untouched.
  return FlowTrace(std::move(rows));
}

}  // namespace

void write_lft(std::ostream& os, const FlowTrace& trace) {
  const std::size_t n = trace.size();
  std::size_t m = 0;
  for (const FlowRecord& f : trace) m += f.switches.size();

  std::uint64_t sizes[kSectionCount];
  expected_sizes(n, m, sizes);
  std::size_t total = kHeaderSize + kTableSize;
  for (const std::uint64_t s : sizes) total += padded(s);
  total += 8;

  std::vector<std::byte> buf(total);  // zero-initialized: padding stays 0
  std::byte* p = buf.data();

  std::memcpy(p, kMagic, sizeof(kMagic));
  const std::uint16_t version = kVersion;
  const std::uint16_t flags = trace.is_sorted() ? kFlagSorted : 0;
  std::memcpy(p + 4, &version, sizeof(version));
  std::memcpy(p + 6, &flags, sizeof(flags));
  const std::uint64_t n64 = n;
  const std::uint64_t m64 = m;
  std::memcpy(p + 8, &n64, sizeof(n64));
  std::memcpy(p + 16, &m64, sizeof(m64));
  const std::uint32_t section_count = kSectionCount;
  const std::uint32_t reserved = 0;
  std::memcpy(p + 24, &section_count, sizeof(section_count));
  std::memcpy(p + 28, &reserved, sizeof(reserved));
  std::memcpy(p + kHeaderSize, sizes, kTableSize);

  std::byte* section[kSectionCount];
  std::size_t at = kHeaderSize + kTableSize;
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    section[s] = p + at;
    at += padded(sizes[s]);
  }

  auto* start = reinterpret_cast<TimeNs*>(section[0]);
  auto* src = reinterpret_cast<std::uint32_t*>(section[1]);
  auto* dst = reinterpret_cast<std::uint32_t*>(section[2]);
  auto* bytes = reinterpret_cast<std::uint64_t*>(section[3]);
  auto* duration = reinterpret_cast<DurationNs*>(section[4]);
  auto* offsets = reinterpret_cast<std::uint64_t*>(section[5]);
  auto* hops = reinterpret_cast<std::uint32_t*>(section[6]);

  std::uint64_t hop_at = 0;
  offsets[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FlowRecord& f = trace[i];
    start[i] = f.start_time;
    src[i] = f.src.value();
    dst[i] = f.dst.value();
    bytes[i] = f.bytes;
    duration[i] = f.duration;
    for (const SwitchId s : f.switches) hops[hop_at++] = s.value();
    offsets[i + 1] = hop_at;
  }

  const std::uint64_t checksum = xxhash64(p, total - 8);
  std::memcpy(p + total - 8, &checksum, sizeof(checksum));

  os.write(reinterpret_cast<const char*>(p), static_cast<std::streamsize>(total));
  if (!os) throw std::runtime_error("lft: stream write failed");
}

FlowTrace read_lft(std::istream& is) {
  const obs::Span span("ingest.lft");
  const obs::ScopedTimer timer(ingest_parse_seconds());

  std::string raw(std::istreambuf_iterator<char>(is), {});
  // Copy into 8-aligned storage so the shared validator/materializer can
  // read the columns through typed pointers (operator new aligns to at
  // least max_align_t; std::string::data has no such guarantee).
  auto image = std::make_unique<std::byte[]>(raw.size());
  std::memcpy(image.get(), raw.data(), raw.size());
  const LftView view = validate_lft(image.get(), raw.size());
  FlowTrace trace = materialize(view);

  ingest_bytes_counter().inc(raw.size());
  ingest_rows_counter().inc(trace.size());
  return trace;
}

FlowTrace read_lft_buffer(std::span<const std::byte> image) {
  const obs::Span span("ingest.lft_buffer");
  const obs::ScopedTimer timer(ingest_parse_seconds());

  // Copy into 8-aligned storage (same reason as read_lft: the caller's
  // buffer — a socket frame payload, typically — has no alignment
  // guarantee for the typed column reads).
  auto aligned = std::make_unique<std::byte[]>(image.size());
  if (!image.empty()) std::memcpy(aligned.get(), image.data(), image.size());
  const LftView view = validate_lft(aligned.get(), image.size());
  FlowTrace trace = materialize(view);

  ingest_bytes_counter().inc(image.size());
  ingest_rows_counter().inc(trace.size());
  return trace;
}

void write_lft_file(const std::string& path, const FlowTrace& trace) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("lft: cannot open for write: " + path);
  write_lft(os, trace);
}

FlowTrace read_lft_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("lft: cannot open for read: " + path);
  return read_lft(is);
}

bool is_lft(std::string_view prefix) {
  return prefix.size() >= sizeof(kMagic) &&
         std::memcmp(prefix.data(), kMagic, sizeof(kMagic)) == 0;
}

bool is_lft_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char head[sizeof(kMagic)];
  is.read(head, sizeof(head));
  return is.gcount() == sizeof(head) &&
         is_lft(std::string_view(head, sizeof(head)));
}

// ---------------------------------------------------------------------------
// MappedFlowTrace

MappedFlowTrace::MappedFlowTrace(const std::string& path) {
  const obs::Span span("ingest.lft_mmap");
  const obs::ScopedTimer timer(ingest_parse_seconds());

#if LLMPRISM_LFT_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("lft: cannot open for read: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error("lft: cannot stat: " + path);
  }
  map_size_ = static_cast<std::size_t>(st.st_size);
  if (map_size_ > 0) {
    void* mapping = ::mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (mapping == MAP_FAILED) {
      throw std::runtime_error("lft: mmap failed: " + path);
    }
    base_ = static_cast<const std::byte*>(mapping);
    mmapped_ = true;
  } else {
    ::close(fd);
  }
#else
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("lft: cannot open for read: " + path);
  std::string raw(std::istreambuf_iterator<char>(is), {});
  map_size_ = raw.size();
  heap_ = std::make_unique<std::byte[]>(map_size_);
  std::memcpy(heap_.get(), raw.data(), map_size_);
  base_ = heap_.get();
#endif

  try {
    const LftView view = validate_lft(base_, map_size_);
    num_flows_ = view.num_flows;
    num_switch_ids_ = view.num_switch_ids;
    sorted_ = view.sorted;
    std::memcpy(sections_, view.sections, sizeof(sections_));
  } catch (...) {
    reset();
    throw;
  }

  ingest_bytes_counter().inc(map_size_);
  ingest_rows_counter().inc(num_flows_);
}

MappedFlowTrace::~MappedFlowTrace() { reset(); }

void MappedFlowTrace::reset() noexcept {
#if LLMPRISM_LFT_HAVE_MMAP
  if (mmapped_ && base_ != nullptr) {
    ::munmap(const_cast<std::byte*>(base_), map_size_);
  }
#endif
  base_ = nullptr;
  map_size_ = 0;
  mmapped_ = false;
  heap_.reset();
  num_flows_ = 0;
  num_switch_ids_ = 0;
  sorted_ = false;
  for (auto& s : sections_) s = nullptr;
}

MappedFlowTrace::MappedFlowTrace(MappedFlowTrace&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      mmapped_(std::exchange(other.mmapped_, false)),
      heap_(std::move(other.heap_)),
      num_flows_(std::exchange(other.num_flows_, 0)),
      num_switch_ids_(std::exchange(other.num_switch_ids_, 0)),
      sorted_(std::exchange(other.sorted_, false)) {
  std::memcpy(sections_, other.sections_, sizeof(sections_));
  for (auto& s : other.sections_) s = nullptr;
}

MappedFlowTrace& MappedFlowTrace::operator=(MappedFlowTrace&& other) noexcept {
  if (this != &other) {
    reset();
    base_ = std::exchange(other.base_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    mmapped_ = std::exchange(other.mmapped_, false);
    heap_ = std::move(other.heap_);
    num_flows_ = std::exchange(other.num_flows_, 0);
    num_switch_ids_ = std::exchange(other.num_switch_ids_, 0);
    sorted_ = std::exchange(other.sorted_, false);
    std::memcpy(sections_, other.sections_, sizeof(sections_));
    for (auto& s : other.sections_) s = nullptr;
  }
  return *this;
}

std::span<const TimeNs> MappedFlowTrace::start_ns() const {
  return {reinterpret_cast<const TimeNs*>(sections_[0]), num_flows_};
}

std::span<const std::uint32_t> MappedFlowTrace::src() const {
  return {reinterpret_cast<const std::uint32_t*>(sections_[1]), num_flows_};
}

std::span<const std::uint32_t> MappedFlowTrace::dst() const {
  return {reinterpret_cast<const std::uint32_t*>(sections_[2]), num_flows_};
}

std::span<const std::uint64_t> MappedFlowTrace::bytes() const {
  return {reinterpret_cast<const std::uint64_t*>(sections_[3]), num_flows_};
}

std::span<const DurationNs> MappedFlowTrace::duration_ns() const {
  return {reinterpret_cast<const DurationNs*>(sections_[4]), num_flows_};
}

std::span<const std::uint64_t> MappedFlowTrace::switch_offsets() const {
  return {reinterpret_cast<const std::uint64_t*>(sections_[5]), num_flows_ + 1};
}

std::span<const std::uint32_t> MappedFlowTrace::switch_ids() const {
  return {reinterpret_cast<const std::uint32_t*>(sections_[6]),
          num_switch_ids_};
}

FlowView MappedFlowTrace::view() const {
  FlowView v;
  v.start_ns = start_ns();
  v.src = src();
  v.dst = dst();
  v.bytes = bytes();
  v.duration_ns = duration_ns();
  v.switch_offsets = switch_offsets();
  v.switch_ids = switch_ids();
  v.sorted = sorted_;
  return v;
}

FlowRecord MappedFlowTrace::record(std::size_t i) const {
  assert(i < num_flows_ && "MappedFlowTrace::record out of range");
  FlowRecord f;
  f.start_time = start_ns()[i];
  f.src = GpuId(src()[i]);
  f.dst = GpuId(dst()[i]);
  f.bytes = bytes()[i];
  f.duration = duration_ns()[i];
  const auto offsets = switch_offsets();
  const auto hops = switch_ids();
  for (std::uint64_t h = offsets[i]; h < offsets[i + 1]; ++h) {
    f.switches.push_back(SwitchId(hops[h]));
  }
  return f;
}

FlowTrace MappedFlowTrace::to_trace() const {
  LftView view;
  std::memcpy(view.sections, sections_, sizeof(sections_));
  view.num_flows = num_flows_;
  view.num_switch_ids = num_switch_ids_;
  view.sorted = sorted_;
  return materialize(view);
}

}  // namespace llmprism
