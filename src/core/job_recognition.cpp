#include "llmprism/core/job_recognition.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "llmprism/common/disjoint_set.hpp"
#include "llmprism/common/stats.hpp"
#include "llmprism/flow/view.hpp"

namespace llmprism {

JobRecognizer::JobRecognizer(const ClusterTopology& topology,
                             JobRecognitionConfig config)
    : topology_(topology), config_(config) {
  if (config_.jaccard_threshold <= 0.0 || config_.jaccard_threshold > 1.0) {
    throw std::invalid_argument(
        "job recognition: jaccard_threshold must be in (0, 1]");
  }
}

namespace {

/// Phase-1 endpoint interning + union, shared by both recognize()
/// overloads. `each_edge(fn)` must invoke fn(src, dst) once per flow, in
/// any order (the partition depends only on the edge set).
struct EndpointUnion {
  std::unordered_map<GpuId, std::size_t> index_of;
  std::vector<GpuId> gpu_of;
  DisjointSet sets{0};

  template <typename EachEdge>
  explicit EndpointUnion(EachEdge&& each_edge) {
    auto intern = [&](GpuId gpu) {
      const auto [it, inserted] = index_of.emplace(gpu, gpu_of.size());
      if (inserted) gpu_of.push_back(gpu);
      return it->second;
    };
    // First pass collects endpoints (DisjointSet needs a fixed size).
    each_edge([&](GpuId src, GpuId dst) {
      intern(src);
      intern(dst);
    });
    sets = DisjointSet(gpu_of.size());
    each_edge([&](GpuId src, GpuId dst) {
      sets.unite(index_of.at(src), index_of.at(dst));
    });
  }
};

JobRecognitionResult recognize_endpoints(const ClusterTopology& topology,
                                         const JobRecognitionConfig& config,
                                         EndpointUnion&& endpoints);

}  // namespace

JobRecognitionResult JobRecognizer::recognize(const FlowTrace& trace) const {
  return recognize_endpoints(topology_, config_, EndpointUnion([&](auto&& fn) {
    for (const FlowRecord& f : trace) fn(f.src, f.dst);
  }));
}

JobRecognitionResult JobRecognizer::recognize(const FlowView& view) const {
  return recognize_endpoints(topology_, config_, EndpointUnion([&](auto&& fn) {
    for (std::size_t i = 0; i < view.size(); ++i) {
      fn(GpuId(view.src[i]), GpuId(view.dst[i]));
    }
  }));
}

namespace {

JobRecognitionResult recognize_endpoints(const ClusterTopology& topology,
                                         const JobRecognitionConfig& config,
                                         EndpointUnion&& endpoints) {
  JobRecognitionResult result;
  std::vector<GpuId>& gpu_of = endpoints.gpu_of;
  DisjointSet& sets = endpoints.sets;

  const auto components = sets.groups(/*include_singletons=*/false);
  result.num_cross_machine_clusters = components.size();

  // ---- phase 2: merge clusters with matching machine sets (lines 9-13) ----
  std::vector<std::vector<GpuId>> clusters;
  std::vector<std::unordered_set<MachineId>> machine_sets;
  clusters.reserve(components.size());
  for (const auto& comp : components) {
    std::vector<GpuId> gpus;
    gpus.reserve(comp.size());
    std::unordered_set<MachineId> machines;
    for (const std::size_t idx : comp) {
      gpus.push_back(gpu_of[idx]);
      machines.insert(topology.machine_of(gpu_of[idx]));
    }
    std::sort(gpus.begin(), gpus.end());
    clusters.push_back(std::move(gpus));
    machine_sets.push_back(std::move(machines));
  }

  DisjointSet cluster_sets(clusters.size());
  if (config.jaccard_threshold == 1.0) {
    // Exact machine-set equality: hash by canonical key, O(C).
    std::map<std::vector<MachineId>, std::size_t> by_key;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      std::vector<MachineId> key(machine_sets[c].begin(),
                                 machine_sets[c].end());
      std::sort(key.begin(), key.end());
      const auto [it, inserted] = by_key.emplace(std::move(key), c);
      if (!inserted) cluster_sets.unite(it->second, c);
    }
  } else {
    // Thresholded Jaccard: pairwise, O(C^2) over cluster count (small).
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        if (stats::jaccard(machine_sets[i], machine_sets[j]) >=
            config.jaccard_threshold) {
          cluster_sets.unite(i, j);
        }
      }
    }
  }

  // ---- assemble job-level clusters ----
  for (const auto& merged : cluster_sets.groups(/*include_singletons=*/true)) {
    RecognizedJob job;
    std::unordered_set<MachineId> machines;
    for (const std::size_t c : merged) {
      job.cross_machine_clusters.push_back(clusters[c]);
      job.observed_gpus.insert(job.observed_gpus.end(), clusters[c].begin(),
                               clusters[c].end());
      machines.insert(machine_sets[c].begin(), machine_sets[c].end());
    }
    // Canonical cluster order (clusters are disjoint and internally
    // sorted, so the first GPU is a total order). This makes the result a
    // pure function of the undirected edge SET, independent of flow order
    // — the invariant the session's recognition fast path relies on.
    std::sort(job.cross_machine_clusters.begin(),
              job.cross_machine_clusters.end(),
              [](const std::vector<GpuId>& a, const std::vector<GpuId>& b) {
                return a.front() < b.front();
              });
    std::sort(job.observed_gpus.begin(), job.observed_gpus.end());
    job.machines.assign(machines.begin(), machines.end());
    std::sort(job.machines.begin(), job.machines.end());

    if (config.include_machine_local_gpus) {
      for (const MachineId m : job.machines) {
        const auto local = topology.gpus_on(m);
        job.gpus.insert(job.gpus.end(), local.begin(), local.end());
      }
      std::sort(job.gpus.begin(), job.gpus.end());
    } else {
      job.gpus = job.observed_gpus;
    }
    result.jobs.push_back(std::move(job));
  }

  std::sort(result.jobs.begin(), result.jobs.end(),
            [](const RecognizedJob& a, const RecognizedJob& b) {
              return a.gpus.front() < b.gpus.front();
            });
  return result;
}

}  // namespace

}  // namespace llmprism
