#include "llmprism/core/monitor.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "llmprism/common/time.hpp"
#include "llmprism/obs/metrics.hpp"
#include "llmprism/obs/trace_span.hpp"

namespace llmprism {

namespace {

/// Registry instruments for the online-monitoring loop; looked up once,
/// bulk-updated once per ingest() call.
struct MonitorMetrics {
  obs::Counter& flows_ingested;
  obs::Counter& flows_dropped_late;
  obs::Counter& windows_completed;
  obs::Counter& stable_ids;
  obs::Gauge& window_lag_seconds;
  obs::Gauge& windows_in_flight;
  obs::Gauge& buffered_flows;
};

MonitorMetrics& monitor_metrics() {
  static MonitorMetrics metrics{
      obs::default_registry().counter("llmprism_monitor_flows_ingested_total",
                                      "Flows accepted into the window buffer"),
      obs::default_registry().counter(
          "llmprism_monitor_flows_dropped_late_total",
          "Flows discarded for arriving beyond the reorder slack"),
      obs::default_registry().counter(
          "llmprism_monitor_windows_completed_total",
          "Analysis windows closed and analyzed"),
      obs::default_registry().counter(
          "llmprism_monitor_stable_ids_total",
          "Distinct stable job identities minted"),
      obs::default_registry().gauge(
          "llmprism_monitor_window_lag_seconds",
          "Watermark minus oldest un-analyzed window begin"),
      obs::default_registry().gauge(
          "llmprism_monitor_windows_in_flight",
          "Windows being analyzed concurrently right now"),
      obs::default_registry().gauge("llmprism_monitor_buffered_flows",
                                    "Flows waiting in the reorder buffer"),
  };
  return metrics;
}

}  // namespace

std::vector<std::string> MonitorConfig::validate() const {
  std::vector<std::string> errors = prism.validate();
  if (window <= 0) {
    errors.push_back("monitor: window must be positive, got " +
                     std::to_string(window));
  }
  if (reorder_slack < 0) {
    errors.push_back("monitor: reorder_slack must be >= 0, got " +
                     std::to_string(reorder_slack));
  }
  if (window > 0 && reorder_slack > window) {
    errors.push_back(
        "monitor: reorder_slack must not exceed the window (flows later than "
        "one window are already analyzed), got slack " +
        std::to_string(reorder_slack) + " vs window " + std::to_string(window));
  }
  if (carry_state) {
    for (std::string& e : session.validate()) {
      errors.push_back(std::move(e));
    }
  }
  return errors;
}

OnlineMonitor::OnlineMonitor(const ClusterTopology& topology,
                             MonitorConfig config)
    : topology_(topology),
      config_(std::move(config)),
      prism_(topology_, config_.prism) {
  if (const auto errors = config_.validate(); !errors.empty()) {
    std::string message = "invalid monitor configuration:";
    for (const std::string& e : errors) {
      message += "\n  - ";
      message += e;
    }
    throw std::invalid_argument(message);
  }
  if (config_.carry_state) {
    // Warm windows form a state chain and are analyzed sequentially; the
    // per-job fan-out INSIDE each window still uses prism_'s pool.
    session_ = std::make_unique<PrismSession>(config_.session);
  } else {
    const std::size_t threads = ThreadPool::resolve(config_.prism.num_threads);
    if (threads > 1) window_pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
}

MonitorJobId OnlineMonitor::stable_id_for(const RecognizedJob& job) {
  // A job's identity is its machine set: tenants keep their machines for
  // the lifetime of a job, while GPU-level membership of *observed* flows
  // fluctuates window to window. Lookups hash the machine vector in place
  // (MachineSetHash) — no key is materialized; the vector is copied only
  // when a new identity is minted.
  const auto it = job_ids_.find(job.machines);
  if (it != job_ids_.end()) return it->second;
  const MonitorJobId id = next_job_id_++;
  job_ids_.emplace(job.machines, id);
  ++stats_.stable_ids_created;
  monitor_metrics().stable_ids.inc();
  return id;
}

void OnlineMonitor::finish_tick(MonitorTick& tick) {
  tick.job_ids.reserve(tick.report.jobs.size());
  for (const JobAnalysis& job : tick.report.jobs) {
    const MonitorJobId id = stable_id_for(job.job);
    tick.job_ids.push_back(id);
    ++stats_.job_windows[id];
  }

  ++stats_.windows_completed;
  for (const JobAnalysis& job : tick.report.jobs) {
    stats_.step_alerts += job.step_alerts.size();
    stats_.group_alerts += job.group_alerts.size();
  }
  stats_.switch_bandwidth_alerts += tick.report.switch_bandwidth_alerts.size();
  stats_.switch_concurrency_alerts +=
      tick.report.switch_concurrency_alerts.size();
}

MonitorTick OnlineMonitor::analyze_window(TimeWindow window,
                                          FlowColumns flows) {
  const obs::Span span("monitor.window");
  MonitorTick tick;
  tick.window = window;
  flows.sort();
  if (session_) {
    // Flush ends the feed: no next window will complete a held burst, so
    // the trailing step is emitted now (hold_tail = false) — together with
    // any burst the previous window held back.
    session_->begin_window(window.end, /*hold_tail=*/false);
    tick.report = prism_.analyze(flows.view(), session_.get());
  } else {
    tick.report = prism_.analyze(flows.view());
  }
  finish_tick(tick);
  monitor_metrics().windows_completed.inc();
  return tick;
}

std::vector<MonitorTick> OnlineMonitor::ingest(const FlowTrace& batch) {
  // One transpose into columns, then the columnar path: a single ingest
  // implementation is what keeps both entry points tick-identical.
  const FlowColumns columns(batch);
  return ingest(columns.view());
}

std::vector<MonitorTick> OnlineMonitor::ingest(const FlowView& batch) {
  const obs::Span ingest_span("monitor.ingest");
  MonitorMetrics& metrics = monitor_metrics();
  std::size_t batch_ingested = 0;
  std::size_t batch_dropped = 0;
  FlowColumns accepted;
  accepted.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const TimeNs start = batch.start_ns[i];
    if (!window_origin_set_) {
      window_begin_ = start;
      window_origin_set_ = true;
      watermark_ = start;
    }
    if (start < window_begin_) {
      // Arrived later than the reorder slack allows: its window is already
      // closed and analyzed. Count and drop.
      ++stats_.flows_dropped_late;
      ++batch_dropped;
      continue;
    }
    accepted.append_row(batch, i);
    watermark_ = std::max(watermark_, start);
    ++stats_.flows_ingested;
    ++batch_ingested;
  }
  // append_row does not track order incrementally; settle the flag so the
  // sort below stays a no-op for in-order feeds. A sorted batch stays
  // sorted through drops (a subsequence); otherwise one O(N) verify.
  accepted.sorted = batch.sorted || accepted.view().verify_sorted();
  metrics.flows_ingested.inc(batch_ingested);
  metrics.flows_dropped_late.inc(batch_dropped);

  // At most ONE physical sort per batch: order the accepted flows, then
  // O(N) merge them into the always-sorted buffer (an in-order feed makes
  // both the sort and the merge no-op/append fast paths).
  accepted.sort();
  buffer_.merge_sorted(std::move(accepted));

  // Slice off every window whose end the watermark has safely passed, in
  // one pass of binary searches over the sorted buffer's start_ns column.
  // The slices are zero-copy FlowView subviews into the buffer; it stays
  // untouched until every window is analyzed, then the consumed prefix is
  // dropped once.
  std::vector<std::pair<TimeWindow, FlowView>> closed;
  const FlowView buffered = buffer_.view();
  while (window_origin_set_ &&
         watermark_ - config_.reorder_slack >=
             window_begin_ + config_.window) {
    const TimeWindow window{window_begin_, window_begin_ + config_.window};
    closed.emplace_back(window, buffered.window(window));
    window_begin_ = window.end;
  }

  // Analyze the closed windows, then assign stable ids and stats
  // sequentially in time order so both are independent of scheduling.
  // With warm state the windows form a chain (each consumes the carry the
  // previous one left) and MUST run sequentially in time order; stateless
  // mode analyzes them concurrently — the windows are pure functions.
  std::vector<MonitorTick> ticks(closed.size());
  metrics.windows_in_flight.set(static_cast<double>(closed.size()));
  if (session_) {
    for (std::size_t i = 0; i < closed.size(); ++i) {
      const obs::Span window_span("monitor.window", i);
      ticks[i].window = closed[i].first;
      // Every streamed window may be continued by the next one, so its
      // trailing burst is held back (hold_tail); only flush() ends the feed.
      session_->begin_window(closed[i].first.end, /*hold_tail=*/true);
      // window() subviews are born sorted — no verify, no copy.
      ticks[i].report = prism_.analyze(closed[i].second, session_.get());
    }
  } else {
    parallel_for(window_pool_.get(), closed.size(), [&](std::size_t i) {
      const obs::Span window_span("monitor.window", i);
      ticks[i].window = closed[i].first;
      ticks[i].report = prism_.analyze(closed[i].second);
    });
  }
  if (!closed.empty()) buffer_.drop_before(window_begin_);
  metrics.windows_in_flight.set(0.0);
  for (MonitorTick& tick : ticks) finish_tick(tick);
  metrics.windows_completed.inc(ticks.size());

  // Health gauges: how far analysis trails the feed, and what is buffered.
  metrics.window_lag_seconds.set(
      window_origin_set_ ? to_seconds(watermark_ - window_begin_) : 0.0);
  metrics.buffered_flows.set(static_cast<double>(buffer_.size()));
  return ticks;
}

std::optional<MonitorTick> OnlineMonitor::flush() {
  if (buffer_.empty()) return std::nullopt;
  // The buffer is kept sorted by ingest(); no sort needed here.
  const TimeWindow window{window_begin_, buffer_.view().time_span().end};
  FlowColumns flows = std::move(buffer_);
  buffer_ = FlowColumns{};
  window_begin_ = window.end;
  return analyze_window(window, std::move(flows));
}

}  // namespace llmprism
