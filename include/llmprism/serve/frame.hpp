// LPF — the prismd ingest wire format (DESIGN.md §14).
//
// A collector streams flow chunks to the daemon as length-prefixed frames
// over a Unix or TCP socket. Each frame is a fixed 24-byte little-endian
// header followed by `payload_bytes` of payload; a flow-chunk payload is
// one complete LFT image (the exact bytes `prism convert` writes), so the
// daemon reuses the LFT validator — magic, section sizes, checksum — on
// every chunk before a single flow is trusted.
//
// Frame header layout:
//   0   char[4]  magic "LPF1"
//   4   u16      version        (currently 1)
//   6   u16      type           (FrameType)
//   8   u64      stream_id      (collector-chosen; shards jobs: a stream's
//                               frames always land on shard id % shards)
//   16  u64      payload_bytes  (<= kMaxFramePayload)
//
// The daemon answers every client frame on the same connection:
//   kFlowChunk -> kAck (AckPayload: flows accepted, the owning shard's
//                 current queue depth, cumulative backpressure waits — a
//                 client throttles when depth approaches the capacity it
//                 was told about) or kError (message payload; the chunk
//                 was dropped, the connection stays usable),
//   kPing      -> kAck with a zero AckPayload (liveness probe).
//
// A malformed *header* (bad magic/version/oversized payload) is not
// recoverable — the daemon sends kError and closes the connection, since
// framing sync is lost. A well-framed but corrupt LFT payload only fails
// that chunk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace llmprism::serve {

inline constexpr char kFrameMagic[4] = {'L', 'P', 'F', '1'};
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 24;
/// Upper bound a single frame may carry (1 GiB) — rejects absurd lengths
/// before any allocation.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

enum class FrameType : std::uint16_t {
  kFlowChunk = 1,  ///< payload: one complete LFT image
  kPing = 2,       ///< payload: empty (liveness probe)
  kAck = 0x8001,   ///< daemon -> client; payload: AckPayload
  kError = 0x8002, ///< daemon -> client; payload: UTF-8 message
};

struct FrameHeader {
  std::uint16_t version = kFrameVersion;
  FrameType type = FrameType::kPing;
  std::uint64_t stream_id = 0;
  std::uint64_t payload_bytes = 0;
};

/// Ack payload (24 bytes little-endian: three u64).
struct AckPayload {
  std::uint64_t flows_accepted = 0;
  /// Chunks queued on the owning shard right after this one was accepted.
  std::uint64_t queue_depth = 0;
  /// Cumulative times any producer blocked on a full shard queue.
  std::uint64_t backpressure_waits = 0;
};

/// Serialize a header into exactly kFrameHeaderSize bytes.
void encode_frame_header(const FrameHeader& header,
                         std::byte out[kFrameHeaderSize]);

/// Parse and validate a header. Throws std::runtime_error on short input,
/// bad magic, unsupported version, or payload_bytes > kMaxFramePayload.
[[nodiscard]] FrameHeader decode_frame_header(std::span<const std::byte> buf);

/// Whole frame (header + payload) as a byte string — what a client writes.
[[nodiscard]] std::string encode_frame(FrameType type, std::uint64_t stream_id,
                                       std::string_view payload);

[[nodiscard]] std::string encode_ack(std::uint64_t stream_id,
                                     const AckPayload& ack);
/// Throws std::runtime_error when the payload is not exactly 24 bytes.
[[nodiscard]] AckPayload decode_ack(std::span<const std::byte> payload);

}  // namespace llmprism::serve
