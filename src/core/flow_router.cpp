#include "llmprism/core/flow_router.hpp"

#include <algorithm>

namespace llmprism {

FlowRouter::FlowRouter(std::span<const RecognizedJob> jobs)
    : num_jobs_(jobs.size()) {
  std::uint32_t max_gpu = 0;
  bool any = false;
  for (const RecognizedJob& job : jobs) {
    for (const GpuId g : job.gpus) {
      max_gpu = std::max(max_gpu, g.value());
      any = true;
    }
  }
  if (!any) return;
  job_of_gpu_.assign(static_cast<std::size_t>(max_gpu) + 1, kUnattributed);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (const GpuId g : jobs[j].gpus) {
      std::size_t& slot = job_of_gpu_[g.value()];
      if (slot == kUnattributed) slot = j;
    }
  }
}

FlowRouter::Result FlowRouter::route(const FlowTrace& trace) const {
  Result result;
  result.job_traces.resize(num_jobs_);
  for (const FlowRecord& f : trace) {
    std::size_t j = job_of(f.src);
    bool via_dst = false;
    if (j == kUnattributed) {
      j = job_of(f.dst);
      via_dst = j != kUnattributed;
    }
    if (j == kUnattributed) {
      ++result.flows_unattributed;
      continue;
    }
    result.job_traces[j].add(f);
    ++result.flows_routed;
    if (via_dst) ++result.flows_routed_via_dst;
  }
  return result;
}

FlowRouter::ColumnarResult FlowRouter::route(const FlowView& view) const {
  ColumnarResult result;
  result.job_columns.resize(num_jobs_);
  const std::size_t n = view.size();

  // Pass 1: resolve each row's job once (src, dst fallback), counting rows
  // and switch hops per job so pass 2 gathers into exactly-sized columns.
  std::vector<std::uint32_t> job_of_flow(n);
  std::vector<std::size_t> rows_per_job(num_jobs_, 0);
  std::vector<std::size_t> hops_per_job(num_jobs_, 0);
  constexpr std::uint32_t kNone = 0xffffffffu;
  const bool have_hops = !view.switch_offsets.empty();
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j = job_of(GpuId(view.src[i]));
    bool via_dst = false;
    if (j == kUnattributed) {
      j = job_of(GpuId(view.dst[i]));
      via_dst = j != kUnattributed;
    }
    if (j == kUnattributed) {
      job_of_flow[i] = kNone;
      ++result.flows_unattributed;
      continue;
    }
    job_of_flow[i] = static_cast<std::uint32_t>(j);
    ++rows_per_job[j];
    if (have_hops) {
      hops_per_job[j] += view.switch_offsets[i + 1] - view.switch_offsets[i];
    }
    ++result.flows_routed;
    if (via_dst) ++result.flows_routed_via_dst;
  }

  // Pass 2: ordered gather. Input order is preserved within each job, so a
  // sorted view yields born-sorted per-job columns.
  for (std::size_t j = 0; j < num_jobs_; ++j) {
    result.job_columns[j].reserve(rows_per_job[j], hops_per_job[j]);
    result.job_columns[j].switch_offsets.push_back(0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (job_of_flow[i] == kNone) continue;
    result.job_columns[job_of_flow[i]].append_row(view, i);
  }
  for (FlowColumns& cols : result.job_columns) {
    cols.sorted = view.sorted || cols.view().verify_sorted();
  }
  return result;
}

}  // namespace llmprism
