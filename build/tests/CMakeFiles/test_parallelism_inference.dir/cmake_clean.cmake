file(REMOVE_RECURSE
  "CMakeFiles/test_parallelism_inference.dir/test_parallelism_inference.cpp.o"
  "CMakeFiles/test_parallelism_inference.dir/test_parallelism_inference.cpp.o.d"
  "test_parallelism_inference"
  "test_parallelism_inference.pdb"
  "test_parallelism_inference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallelism_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
