#include "llmprism/flow/trace.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "llmprism/flow/view.hpp"
#include "llmprism/obs/metrics.hpp"

namespace llmprism {

namespace {

/// Process-wide count of *physical* sorts (no-op calls on already-sorted
/// traces are free and not counted). Looked up once; the handle stays
/// valid for the registry's lifetime.
obs::Counter& sorts_counter() {
  static obs::Counter& counter = obs::default_registry().counter(
      "llmprism_flowtrace_sorts_total",
      "Physical FlowTrace sorts performed (no-op sorts on already-sorted "
      "traces are not counted)");
  return counter;
}

}  // namespace

FlowTrace::FlowTrace(std::vector<FlowRecord> flows)
    : flows_(std::move(flows)),
      sorted_(std::is_sorted(flows_.begin(), flows_.end(),
                             FlowStartTimeLess{})) {}

void FlowTrace::add(FlowRecord flow) {
  if (sorted_ && !flows_.empty() &&
      FlowStartTimeLess{}(flow, flows_.back())) {
    sorted_ = false;
  }
  flows_.push_back(std::move(flow));
}

void FlowTrace::append(const FlowTrace& other) {
  if (other.flows_.empty()) return;
  if (sorted_ &&
      !(other.sorted_ &&
        (flows_.empty() ||
         !FlowStartTimeLess{}(other.flows_.front(), flows_.back())))) {
    sorted_ = false;
  }
  flows_.insert(flows_.end(), other.flows_.begin(), other.flows_.end());
}

void FlowTrace::append(FlowTrace&& other) {
  if (other.flows_.empty()) return;
  if (flows_.empty() && flows_.capacity() < other.flows_.size()) {
    flows_ = std::move(other.flows_);
    sorted_ = other.sorted_;
  } else {
    if (sorted_ &&
        !(other.sorted_ &&
          (flows_.empty() ||
           !FlowStartTimeLess{}(other.flows_.front(), flows_.back())))) {
      sorted_ = false;
    }
    flows_.insert(flows_.end(),
                  std::make_move_iterator(other.flows_.begin()),
                  std::make_move_iterator(other.flows_.end()));
  }
  other.flows_.clear();
  other.sorted_ = true;
}

void FlowTrace::sort() {
  // Touch the counter handle even on the no-op path so the metric is
  // registered (and exported as 0) as soon as any trace enters the
  // pipeline boundary.
  obs::Counter& sorts = sorts_counter();
  if (is_sorted()) return;
  std::sort(flows_.begin(), flows_.end(), FlowStartTimeLess{});
  sorted_ = true;
  sorts.inc();
}

bool FlowTrace::is_sorted() const {
  if (sorted_) return true;
  if (std::is_sorted(flows_.begin(), flows_.end(), FlowStartTimeLess{})) {
    sorted_ = true;
  }
  return sorted_;
}

void FlowTrace::merge_sorted(FlowTrace other) {
  sort();
  other.sort();
  if (other.flows_.empty()) return;
  if (flows_.empty()) {
    flows_ = std::move(other.flows_);
    return;
  }
  // Pure-append fast path: the incoming run starts at or after our back.
  if (!FlowStartTimeLess{}(other.flows_.front(), flows_.back())) {
    flows_.insert(flows_.end(),
                  std::make_move_iterator(other.flows_.begin()),
                  std::make_move_iterator(other.flows_.end()));
    return;
  }
  std::vector<FlowRecord> merged;
  merged.reserve(flows_.size() + other.flows_.size());
  // std::merge keeps first-range elements before second-range on ties.
  std::merge(std::make_move_iterator(flows_.begin()),
             std::make_move_iterator(flows_.end()),
             std::make_move_iterator(other.flows_.begin()),
             std::make_move_iterator(other.flows_.end()),
             std::back_inserter(merged), FlowStartTimeLess{});
  flows_ = std::move(merged);
}

FlowTrace FlowTrace::merge_sorted_runs(std::vector<FlowTrace> runs) {
  std::size_t total = 0;
  for (FlowTrace& run : runs) {
    run.sort();
    total += run.size();
  }
  std::vector<FlowRecord> merged;
  merged.reserve(total);

  // Min-heap of run indices keyed by each run's next record; ties go to
  // the lower run index, so the merge is stable in the runs' order.
  std::vector<std::size_t> heads(runs.size(), 0);
  std::vector<std::size_t> heap;
  heap.reserve(runs.size());
  const auto later = [&](std::size_t a, std::size_t b) {
    const FlowRecord& fa = runs[a][heads[a]];
    const FlowRecord& fb = runs[b][heads[b]];
    if (FlowStartTimeLess{}(fa, fb)) return false;
    if (FlowStartTimeLess{}(fb, fa)) return true;
    return a > b;
  };
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push_back(r);
  }
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const std::size_t r = heap.back();
    heap.pop_back();
    merged.push_back(runs[r][heads[r]]);
    if (++heads[r] < runs[r].size()) {
      heap.push_back(r);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return FlowTrace(std::move(merged), SortedTag{});
}

void FlowTrace::drop_before(TimeNs t) {
  if (!is_sorted()) {
    throw std::logic_error("FlowTrace::drop_before requires a sorted trace");
  }
  const auto lo = std::lower_bound(
      flows_.begin(), flows_.end(), t,
      [](const FlowRecord& f, TimeNs at) { return f.start_time < at; });
  flows_.erase(flows_.begin(), lo);
}

FlowTrace FlowTrace::window(TimeWindow w) const {
  if (!is_sorted()) {
    throw std::logic_error("FlowTrace::window requires a sorted trace");
  }
  const auto lo = std::lower_bound(
      flows_.begin(), flows_.end(), w.begin,
      [](const FlowRecord& f, TimeNs t) { return f.start_time < t; });
  const auto hi = std::lower_bound(
      lo, flows_.end(), w.end,
      [](const FlowRecord& f, TimeNs t) { return f.start_time < t; });
  return FlowTrace(std::vector<FlowRecord>(lo, hi), SortedTag{});
}

TimeWindow FlowTrace::span() const {
  if (flows_.empty()) return {};
  TimeNs lo = flows_.front().start_time;
  TimeNs hi = flows_.front().end_time();
  for (const FlowRecord& f : flows_) {
    lo = std::min(lo, f.start_time);
    hi = std::max(hi, f.end_time());
  }
  return {lo, hi};
}

PairIndex::PairIndex(const FlowTrace& trace) {
  pair_of_flow_.resize(trace.size());
  std::vector<std::size_t> counts;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const GpuPair p = trace[i].pair();
    auto [it, inserted] =
        id_of_.emplace(p, static_cast<std::uint32_t>(pairs_.size()));
    if (inserted) {
      pairs_.push_back(p);
      counts.push_back(0);
    }
    pair_of_flow_[i] = it->second;
    ++counts[it->second];
  }
  offsets_.assign(pairs_.size() + 1, 0);
  for (std::size_t id = 0; id < pairs_.size(); ++id) {
    offsets_[id + 1] = offsets_[id] + counts[id];
  }
  positions_.resize(trace.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    positions_[cursor[pair_of_flow_[i]]++] = i;
  }
}

namespace {

/// splitmix64 finalizer — the same mix std::hash<GpuPair> uses, so bucket
/// spread matches the proven pair-hash quality.
inline std::uint64_t mix64(std::uint64_t k) {
  k += 0x9e3779b97f4a7c15ULL;
  k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
  k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
  return k ^ (k >> 31);
}

}  // namespace

PairIndex::PairIndex(const FlowView& view) {
  const std::size_t n = view.size();
  pair_of_flow_.resize(n);
  if (n == 0) {
    offsets_.assign(1, 0);
    return;
  }

  // 1) Radix partition flow positions by the high bits of the mixed pair
  //    key: one counting pass, prefix sum, stable scatter. Each bucket
  //    then holds a cache-sized slice to group, instead of the whole trace
  //    hammering one hash table.
  const std::size_t want = std::max<std::size_t>(std::size_t{1}, n / 48);
  const std::size_t num_buckets =
      std::min<std::size_t>(std::size_t{1} << 16, std::bit_ceil(want));
  const int shift = 64 - std::countr_zero(num_buckets);

  struct Entry {
    std::uint64_t key;
    std::uint32_t pos;
  };
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> bucket_counts(num_buckets + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = view.pair_key(i);
    ++bucket_counts[(shift >= 64 ? 0 : mix64(keys[i]) >> shift) + 1];
  }
  for (std::size_t b = 0; b < num_buckets; ++b) {
    bucket_counts[b + 1] += bucket_counts[b];
  }
  std::vector<Entry> scatter(n);
  {
    std::vector<std::uint32_t> cursor(bucket_counts.begin(),
                                      bucket_counts.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t b = shift >= 64 ? 0 : mix64(keys[i]) >> shift;
      scatter[cursor[b]++] = {keys[i], static_cast<std::uint32_t>(i)};
    }
  }

  // 2) Group each bucket by key. The scatter was stable, so after sorting
  //    by (key, pos) every run of equal keys lists that pair's positions
  //    in trace order, and the run head is the pair's first appearance.
  struct Run {
    std::uint32_t begin;  ///< offset into `scatter`
    std::uint32_t count;
  };
  std::vector<Run> runs;
  for (std::size_t b = 0; b < num_buckets; ++b) {
    const std::size_t lo = bucket_counts[b];
    const std::size_t hi = bucket_counts[b + 1];
    if (lo == hi) continue;
    std::sort(scatter.begin() + lo, scatter.begin() + hi,
              [](const Entry& a, const Entry& c) {
                if (a.key != c.key) return a.key < c.key;
                return a.pos < c.pos;
              });
    std::size_t run_begin = lo;
    for (std::size_t i = lo + 1; i <= hi; ++i) {
      if (i == hi || scatter[i].key != scatter[run_begin].key) {
        runs.push_back({static_cast<std::uint32_t>(run_begin),
                        static_cast<std::uint32_t>(i - run_begin)});
        run_begin = i;
      }
    }
  }

  // 3) Dense ids in first-appearance order: sort runs by their head
  //    position (cost is O(P log P) over pairs, not flows).
  std::sort(runs.begin(), runs.end(), [&](const Run& a, const Run& b) {
    return scatter[a.begin].pos < scatter[b.begin].pos;
  });

  pairs_.reserve(runs.size());
  id_of_.reserve(runs.size());
  offsets_.assign(runs.size() + 1, 0);
  positions_.resize(n);
  for (std::size_t id = 0; id < runs.size(); ++id) {
    const Run& run = runs[id];
    const std::uint64_t key = scatter[run.begin].key;
    const GpuPair p(GpuId(static_cast<std::uint32_t>(key >> 32)),
                    GpuId(static_cast<std::uint32_t>(key)));
    pairs_.push_back(p);
    id_of_.emplace(p, static_cast<std::uint32_t>(id));
    offsets_[id + 1] = offsets_[id] + run.count;
    std::size_t cursor = offsets_[id];
    for (std::uint32_t e = run.begin; e < run.begin + run.count; ++e) {
      positions_[cursor++] = scatter[e].pos;
      pair_of_flow_[scatter[e].pos] = static_cast<std::uint32_t>(id);
    }
  }
}

std::unordered_map<SwitchId, std::vector<std::size_t>> build_switch_index(
    const FlowTrace& trace) {
  std::unordered_map<SwitchId, std::vector<std::size_t>> index;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    for (const SwitchId sw : trace[i].switches) {
      index[sw].push_back(i);
    }
  }
  return index;
}

std::unordered_set<GpuId> endpoints(const FlowTrace& trace) {
  std::unordered_set<GpuId> out;
  for (const FlowRecord& f : trace) {
    out.insert(f.src);
    out.insert(f.dst);
  }
  return out;
}

std::vector<GpuPair> communication_pairs(const FlowTrace& trace) {
  std::unordered_set<GpuPair> seen;
  std::vector<GpuPair> out;
  for (const FlowRecord& f : trace) {
    if (seen.insert(f.pair()).second) out.push_back(f.pair());
  }
  return out;
}

}  // namespace llmprism
