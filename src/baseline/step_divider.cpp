#include "llmprism/baseline/step_divider.hpp"

#include <algorithm>
#include <stdexcept>

namespace llmprism {

std::vector<std::size_t> segment_by_threshold(
    std::span<const TimeNs> timestamps,
    const ThresholdDividerConfig& config) {
  std::vector<std::size_t> starts;
  if (timestamps.empty()) return starts;
  starts.push_back(0);
  if (timestamps.size() == 1) return starts;
  if (!std::is_sorted(timestamps.begin(), timestamps.end())) {
    throw std::invalid_argument(
        "segment_by_threshold: timestamps must be sorted");
  }

  std::vector<DurationNs> intervals;
  intervals.reserve(timestamps.size() - 1);
  for (std::size_t i = 0; i + 1 < timestamps.size(); ++i) {
    intervals.push_back(timestamps[i + 1] - timestamps[i]);
  }
  std::vector<DurationNs> sorted = intervals;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = static_cast<double>(sorted[sorted.size() / 2]);
  const double threshold = std::max(1.0, median * config.factor);

  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (static_cast<double>(intervals[i]) > threshold) {
      starts.push_back(i + 1);
    }
  }
  return starts;
}

}  // namespace llmprism
