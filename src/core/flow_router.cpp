#include "llmprism/core/flow_router.hpp"

#include <algorithm>

namespace llmprism {

FlowRouter::FlowRouter(std::span<const RecognizedJob> jobs)
    : num_jobs_(jobs.size()) {
  std::uint32_t max_gpu = 0;
  bool any = false;
  for (const RecognizedJob& job : jobs) {
    for (const GpuId g : job.gpus) {
      max_gpu = std::max(max_gpu, g.value());
      any = true;
    }
  }
  if (!any) return;
  job_of_gpu_.assign(static_cast<std::size_t>(max_gpu) + 1, kUnattributed);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (const GpuId g : jobs[j].gpus) {
      std::size_t& slot = job_of_gpu_[g.value()];
      if (slot == kUnattributed) slot = j;
    }
  }
}

FlowRouter::Result FlowRouter::route(const FlowTrace& trace) const {
  Result result;
  result.job_traces.resize(num_jobs_);
  for (const FlowRecord& f : trace) {
    std::size_t j = job_of(f.src);
    bool via_dst = false;
    if (j == kUnattributed) {
      j = job_of(f.dst);
      via_dst = j != kUnattributed;
    }
    if (j == kUnattributed) {
      ++result.flows_unattributed;
      continue;
    }
    result.job_traces[j].add(f);
    ++result.flows_routed;
    if (via_dst) ++result.flows_routed_via_dst;
  }
  return result;
}

}  // namespace llmprism
