// 1F1B (one-forward-one-backward) pipeline schedule computation.
//
// Produces the start/end time of every forward/backward micro-batch
// operation on every pipeline stage, honouring
//  - inter-stage dependencies (fwd(s,m) needs fwd(s-1,m) + transfer;
//    bwd(s,m) needs bwd(s+1,m) + transfer),
//  - per-stage serialization in standard non-interleaved 1F1B order
//    (warmup forwards, steady 1F1B, cooldown backwards).
#pragma once

#include <cstdint>
#include <vector>

#include "llmprism/common/time.hpp"

namespace llmprism {

enum class PipeOpKind : std::uint8_t { kForward, kBackward };

struct PipeOp {
  PipeOpKind kind{};
  std::uint32_t stage = 0;
  std::uint32_t micro_batch = 0;
  TimeNs start = 0;
  TimeNs end = 0;
};

struct PipelineScheduleInput {
  std::uint32_t num_stages = 1;
  std::uint32_t num_micro_batches = 1;
  /// fwd_time[s][m], bwd_time[s][m]: per-stage, per-micro-batch compute
  /// durations (jitter/straggle already applied by the caller).
  std::vector<std::vector<DurationNs>> fwd_time;
  std::vector<std::vector<DurationNs>> bwd_time;
  /// Activation/gradient transfer time between adjacent stages.
  DurationNs transfer_time = 0;
  TimeNs start_time = 0;
};

struct PipelineSchedule {
  /// All ops, grouped per stage in execution order: ops[s] is stage s's
  /// serialized op sequence.
  std::vector<std::vector<PipeOp>> ops;

  /// End of the last backward on `stage`.
  [[nodiscard]] TimeNs backward_done(std::uint32_t stage) const;
  /// End of the last op anywhere.
  [[nodiscard]] TimeNs makespan_end() const;
};

/// Computes the 1F1B schedule. Throws std::invalid_argument on malformed
/// input (wrong matrix dimensions, zero stages/micro-batches).
[[nodiscard]] PipelineSchedule compute_1f1b_schedule(
    const PipelineScheduleInput& input);

}  // namespace llmprism
