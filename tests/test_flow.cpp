// Unit tests for flow records, traces and CSV I/O.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "llmprism/common/csv.hpp"
#include "llmprism/common/rng.hpp"
#include "llmprism/flow/io.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/obs/metrics.hpp"

namespace llmprism {
namespace {

FlowRecord make_flow(TimeNs t, std::uint32_t src, std::uint32_t dst,
                     std::uint64_t bytes = 1000, DurationNs dur = 100) {
  FlowRecord f;
  f.start_time = t;
  f.src = GpuId(src);
  f.dst = GpuId(dst);
  f.bytes = bytes;
  f.duration = dur;
  return f;
}

// ---------------------------------------------------------------------------
// FlowRecord

TEST(FlowRecordTest, EndTimeAndPair) {
  const auto f = make_flow(100, 1, 2, 5000, 50);
  EXPECT_EQ(f.end_time(), 150);
  EXPECT_EQ(f.pair(), GpuPair(GpuId(2), GpuId(1)));
}

TEST(FlowRecordTest, BandwidthGbps) {
  // 250 bytes in 100 ns = 2000 bits / 100 ns = 20 Gb/s.
  const auto f = make_flow(0, 1, 2, 250, 100);
  EXPECT_DOUBLE_EQ(f.bandwidth_gbps(), 20.0);
  const auto zero = make_flow(0, 1, 2, 250, 0);
  EXPECT_DOUBLE_EQ(zero.bandwidth_gbps(), 0.0);
}

TEST(FlowStartTimeLessTest, OrdersByTimeThenEndpoints) {
  const FlowStartTimeLess less;
  EXPECT_TRUE(less(make_flow(1, 9, 9), make_flow(2, 0, 0)));
  EXPECT_TRUE(less(make_flow(1, 1, 5), make_flow(1, 2, 0)));
  EXPECT_FALSE(less(make_flow(1, 1, 1), make_flow(1, 1, 1)));
}

// ---------------------------------------------------------------------------
// FlowTrace

TEST(FlowTraceTest, SortAndIsSorted) {
  FlowTrace t;
  t.add(make_flow(30, 1, 2));
  t.add(make_flow(10, 1, 2));
  t.add(make_flow(20, 1, 2));
  EXPECT_FALSE(t.is_sorted());
  t.sort();
  EXPECT_TRUE(t.is_sorted());
  EXPECT_EQ(t[0].start_time, 10);
  EXPECT_EQ(t[2].start_time, 30);
}

TEST(FlowTraceTest, WindowSelectsHalfOpenRange) {
  FlowTrace t;
  for (TimeNs i = 0; i < 10; ++i) t.add(make_flow(i * 100, 1, 2));
  t.sort();
  const auto w = t.window({200, 500});
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].start_time, 200);
  EXPECT_EQ(w[2].start_time, 400);
}

TEST(FlowTraceTest, WindowOnUnsortedThrows) {
  FlowTrace t;
  t.add(make_flow(30, 1, 2));
  t.add(make_flow(10, 1, 2));
  EXPECT_THROW(t.window({0, 100}), std::logic_error);
}

TEST(FlowTraceTest, WindowEmptyResult) {
  FlowTrace t;
  t.add(make_flow(100, 1, 2));
  t.sort();
  EXPECT_TRUE(t.window({200, 300}).empty());
  EXPECT_TRUE(FlowTrace{}.window({0, 100}).empty());
}

TEST(FlowTraceTest, SpanCoversFlows) {
  FlowTrace t;
  t.add(make_flow(100, 1, 2, 10, 50));
  t.add(make_flow(300, 1, 2, 10, 500));
  const auto s = t.span();
  EXPECT_EQ(s.begin, 100);
  EXPECT_EQ(s.end, 800);
  EXPECT_EQ(FlowTrace{}.span().length(), 0);
}

TEST(FlowTraceTest, AppendConcatenates) {
  FlowTrace a, b;
  a.add(make_flow(1, 1, 2));
  b.add(make_flow(2, 3, 4));
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
}

// ---------------------------------------------------------------------------
// Sortedness cache + merge primitives (the sort-once data plane)

TEST(FlowTraceSortednessTest, InOrderAddsKeepTraceSorted) {
  FlowTrace t;
  EXPECT_TRUE(t.is_sorted());  // empty is sorted
  t.add(make_flow(10, 1, 2));
  t.add(make_flow(10, 1, 2));  // equal keys are fine
  t.add(make_flow(20, 1, 2));
  EXPECT_TRUE(t.is_sorted());
}

TEST(FlowTraceSortednessTest, OutOfOrderAddInvalidatesUntilSort) {
  FlowTrace t;
  t.add(make_flow(20, 1, 2));
  t.add(make_flow(10, 1, 2));
  EXPECT_FALSE(t.is_sorted());
  t.sort();
  EXPECT_TRUE(t.is_sorted());
  t.add(make_flow(30, 1, 2));  // in-order add after sort stays sorted
  EXPECT_TRUE(t.is_sorted());
}

TEST(FlowTraceSortednessTest, AppendTracksBoundaryOrder) {
  FlowTrace a, b;
  a.add(make_flow(1, 1, 2));
  a.add(make_flow(2, 1, 2));
  b.add(make_flow(3, 3, 4));
  a.append(b);  // ordered boundary: stays known-sorted
  EXPECT_TRUE(a.is_sorted());

  FlowTrace c;
  c.add(make_flow(0, 5, 6));
  a.append(c);  // boundary goes backwards
  EXPECT_FALSE(a.is_sorted());

  FlowTrace d, unsorted;
  d.add(make_flow(1, 1, 2));
  unsorted.add(make_flow(9, 1, 2));
  unsorted.add(make_flow(5, 1, 2));
  d.append(unsorted);  // appending an unsorted trace invalidates
  EXPECT_FALSE(d.is_sorted());
}

TEST(FlowTraceSortednessTest, VerifyCachesAPositiveScan) {
  // A trace built out of order but whose content happens to be sorted is
  // recognized by the O(N) verify (and window() then works).
  std::vector<FlowRecord> flows{make_flow(1, 1, 2), make_flow(2, 1, 2)};
  const FlowTrace t(std::move(flows));
  EXPECT_TRUE(t.is_sorted());
  EXPECT_EQ(t.window({0, 10}).size(), 2u);
}

TEST(FlowTraceSortednessTest, WindowResultIsBornSorted) {
  FlowTrace t;
  for (TimeNs i = 0; i < 10; ++i) t.add(make_flow(i * 100, 1, 2));
  const FlowTrace w = t.window({200, 700});
  EXPECT_TRUE(w.is_sorted());
}

TEST(FlowTraceSortednessTest, PhysicalSortsAreCounted) {
  obs::Counter& sorts = obs::default_registry().counter(
      "llmprism_flowtrace_sorts_total");
  FlowTrace t;
  t.add(make_flow(10, 1, 2));
  t.add(make_flow(20, 1, 2));
  const std::uint64_t before = sorts.value();
  t.sort();  // already sorted: no physical sort
  EXPECT_EQ(sorts.value(), before);
  t.add(make_flow(5, 1, 2));
  t.sort();  // genuinely unsorted: exactly one physical sort
  EXPECT_EQ(sorts.value(), before + 1);
  t.sort();
  EXPECT_EQ(sorts.value(), before + 1);
}

TEST(FlowTraceMergeTest, MergeSortedMatchesAppendPlusSort) {
  // Randomized property test: for random sorted runs, merge_sorted is
  // record-for-record equal to append + sort.
  Rng rng(321);
  for (int round = 0; round < 50; ++round) {
    FlowTrace a, b;
    const int na = rng.uniform_int(0, 40);
    const int nb = rng.uniform_int(0, 40);
    for (int i = 0; i < na; ++i) {
      a.add(make_flow(static_cast<TimeNs>(rng.uniform_int(0, 1000)),
                      static_cast<std::uint32_t>(rng.uniform_int(0, 7)),
                      static_cast<std::uint32_t>(rng.uniform_int(8, 15)),
                      static_cast<std::uint64_t>(rng.uniform_int(1, 5))));
    }
    for (int i = 0; i < nb; ++i) {
      b.add(make_flow(static_cast<TimeNs>(rng.uniform_int(0, 1000)),
                      static_cast<std::uint32_t>(rng.uniform_int(0, 7)),
                      static_cast<std::uint32_t>(rng.uniform_int(8, 15)),
                      static_cast<std::uint64_t>(rng.uniform_int(1, 5))));
    }
    a.sort();
    b.sort();

    FlowTrace expected = a;
    expected.append(b);
    expected.sort();

    FlowTrace merged = a;
    merged.merge_sorted(b);
    EXPECT_TRUE(merged.is_sorted());
    ASSERT_EQ(merged.size(), expected.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i], expected[i]) << "round " << round << " pos " << i;
    }
  }
}

TEST(FlowTraceMergeTest, MergeSortedRunsMatchesAppendPlusSort) {
  Rng rng(654);
  for (int round = 0; round < 25; ++round) {
    const int k = rng.uniform_int(0, 6);
    std::vector<FlowTrace> runs(static_cast<std::size_t>(k));
    FlowTrace expected;
    for (FlowTrace& run : runs) {
      const int n = rng.uniform_int(0, 30);
      for (int i = 0; i < n; ++i) {
        run.add(make_flow(static_cast<TimeNs>(rng.uniform_int(0, 500)),
                          static_cast<std::uint32_t>(rng.uniform_int(0, 3)),
                          static_cast<std::uint32_t>(rng.uniform_int(4, 7))));
      }
      run.sort();
      expected.append(run);
    }
    expected.sort();

    const FlowTrace merged = FlowTrace::merge_sorted_runs(std::move(runs));
    EXPECT_TRUE(merged.is_sorted());
    ASSERT_EQ(merged.size(), expected.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i], expected[i]) << "round " << round << " pos " << i;
    }
  }
}

TEST(FlowTraceMergeTest, MergeSortedRunsBreaksTiesByRunIndex) {
  // Two runs carrying records with identical sort keys but different
  // durations: the lower run's record must come out first.
  FlowTrace run0, run1;
  run0.add(make_flow(100, 1, 2, 1000, 11));
  run1.add(make_flow(100, 1, 2, 1000, 22));
  const FlowTrace merged = FlowTrace::merge_sorted_runs({run0, run1});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].duration, 11);
  EXPECT_EQ(merged[1].duration, 22);
}

TEST(FlowTraceMergeTest, MergeIntoEmptyAndFromEmpty) {
  FlowTrace a;
  FlowTrace b;
  b.add(make_flow(1, 1, 2));
  a.merge_sorted(b);  // into empty
  EXPECT_EQ(a.size(), 1u);
  a.merge_sorted(FlowTrace{});  // from empty
  EXPECT_EQ(a.size(), 1u);
  EXPECT_TRUE(FlowTrace::merge_sorted_runs({}).empty());
}

TEST(FlowTraceDropBeforeTest, ErasesStrictPrefix) {
  FlowTrace t;
  for (TimeNs i = 0; i < 10; ++i) t.add(make_flow(i * 100, 1, 2));
  t.drop_before(500);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].start_time, 500);
  t.drop_before(0);  // no-op
  EXPECT_EQ(t.size(), 5u);
  t.drop_before(10000);  // drops everything
  EXPECT_TRUE(t.empty());

  FlowTrace unsorted;
  unsorted.add(make_flow(20, 1, 2));
  unsorted.add(make_flow(10, 1, 2));
  EXPECT_THROW(unsorted.drop_before(15), std::logic_error);
}

TEST(FlowTraceIndexTest, PairIndexGroupsBothDirections) {
  FlowTrace t;
  t.add(make_flow(1, 1, 2));
  t.add(make_flow(2, 2, 1));  // reverse direction, same pair
  t.add(make_flow(3, 1, 3));
  const PairIndex idx(t);
  ASSERT_EQ(idx.num_pairs(), 2u);
  EXPECT_EQ(idx.num_flows(), 3u);
  const std::uint32_t p12 = idx.id_of(GpuPair(GpuId(1), GpuId(2)));
  const std::uint32_t p13 = idx.id_of(GpuPair(GpuId(1), GpuId(3)));
  ASSERT_NE(p12, PairIndex::kNoPair);
  ASSERT_NE(p13, PairIndex::kNoPair);
  EXPECT_EQ(idx.positions(p12).size(), 2u);
  EXPECT_EQ(idx.positions(p13).size(), 1u);
  EXPECT_EQ(idx.id_of(GpuPair(GpuId(7), GpuId(8))), PairIndex::kNoPair);
}

TEST(FlowTraceIndexTest, PairIndexFirstAppearanceOrderAndPositions) {
  FlowTrace t;
  t.add(make_flow(1, 1, 2));
  t.add(make_flow(2, 3, 4));
  t.add(make_flow(3, 2, 1));
  t.add(make_flow(4, 1, 2));
  const PairIndex idx(t);
  ASSERT_EQ(idx.num_pairs(), 2u);
  // Dense ids follow first appearance in the trace.
  EXPECT_EQ(idx.pair(0), GpuPair(GpuId(1), GpuId(2)));
  EXPECT_EQ(idx.pair(1), GpuPair(GpuId(3), GpuId(4)));
  // Positions stay in trace order within each pair.
  const auto pos0 = idx.positions(0);
  ASSERT_EQ(pos0.size(), 3u);
  EXPECT_EQ(pos0[0], 0u);
  EXPECT_EQ(pos0[1], 2u);
  EXPECT_EQ(pos0[2], 3u);
  // pair_of_flow inverts the index.
  const auto pof = idx.pair_of_flow();
  ASSERT_EQ(pof.size(), 4u);
  EXPECT_EQ(pof[0], 0u);
  EXPECT_EQ(pof[1], 1u);
  EXPECT_EQ(pof[2], 0u);
  EXPECT_EQ(pof[3], 0u);
}

TEST(FlowTraceIndexTest, SwitchIndexCountsEveryHop) {
  FlowTrace t;
  auto f = make_flow(1, 1, 2);
  f.switches.push_back(SwitchId(0));
  f.switches.push_back(SwitchId(5));
  t.add(f);
  const auto idx = build_switch_index(t);
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.at(SwitchId(0)).size(), 1u);
  EXPECT_EQ(idx.at(SwitchId(5)).size(), 1u);
}

TEST(FlowTraceIndexTest, EndpointsAndPairs) {
  FlowTrace t;
  t.add(make_flow(1, 1, 2));
  t.add(make_flow(2, 2, 1));
  t.add(make_flow(3, 2, 3));
  EXPECT_EQ(endpoints(t).size(), 3u);
  EXPECT_EQ(communication_pairs(t).size(), 2u);
}

// ---------------------------------------------------------------------------
// CSV primitives

TEST(CsvTest, ParseSimpleLine) {
  const auto fields = csv::parse_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvTest, ParseQuotedFields) {
  const auto fields = csv::parse_line(R"(1,"two, three","he said ""hi""")");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "two, three");
  EXPECT_EQ(fields[2], "he said \"hi\"");
}

TEST(CsvTest, ParseEmptyFields) {
  const auto fields = csv::parse_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(csv::parse_line("\"oops"), std::runtime_error);
}

TEST(CsvTest, EscapeRoundTrip) {
  const std::string nasty = R"(a,"b" c)";
  const auto escaped = csv::escape_field(nasty);
  const auto parsed = csv::parse_line(escaped);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], nasty);
}

TEST(CsvTest, ReadAllSkipsBlankLines) {
  std::istringstream is("a,b\n\nc,d\n");
  const auto rows = csv::read_all(is);
  EXPECT_EQ(rows.size(), 2u);
}

// ---------------------------------------------------------------------------
// Flow CSV I/O

TEST(FlowIoTest, RoundTripPreservesEverything) {
  FlowTrace t;
  auto f1 = make_flow(123456789, 7, 9, 1ull << 33, 42000);
  f1.switches.push_back(SwitchId(3));
  f1.switches.push_back(SwitchId(17));
  f1.switches.push_back(SwitchId(4));
  t.add(f1);
  t.add(make_flow(-5, 0, 1));  // negative time (pre-epoch) allowed

  std::stringstream ss;
  write_csv(ss, t);
  const FlowTrace back = read_csv(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], t[0]);
  EXPECT_EQ(back[1], t[1]);
}

TEST(FlowIoTest, EmptyTraceRoundTrip) {
  std::stringstream ss;
  write_csv(ss, FlowTrace{});
  EXPECT_TRUE(read_csv(ss).empty());
}

TEST(FlowIoTest, MissingHeaderThrows) {
  std::istringstream is("");
  EXPECT_THROW(read_csv(is), std::runtime_error);
}

TEST(FlowIoTest, WrongFieldCountThrows) {
  std::istringstream is("start_ns,src,dst,bytes,duration_ns,switches\n1,2,3\n");
  EXPECT_THROW(read_csv(is), std::runtime_error);
}

TEST(FlowIoTest, BadNumberThrows) {
  std::istringstream is(
      "start_ns,src,dst,bytes,duration_ns,switches\n1,x,3,4,5,\n");
  EXPECT_THROW(read_csv(is), std::runtime_error);
}

TEST(FlowIoTest, EmptySwitchListParses) {
  std::istringstream is(
      "start_ns,src,dst,bytes,duration_ns,switches\n1,2,3,4,5,\n");
  const auto t = read_csv(is);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t[0].switches.empty());
}

TEST(FlowIoTest, FileRoundTrip) {
  FlowTrace t;
  t.add(make_flow(1, 2, 3));
  const std::string path = ::testing::TempDir() + "/flows_test.csv";
  write_csv_file(path, t);
  const auto back = read_csv_file(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], t[0]);
  EXPECT_THROW(read_csv_file("/nonexistent/nope.csv"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// read_csv_checked: non-throwing parse with editor-accurate diagnostics.

TEST(FlowIoCheckedTest, ReportsPhysicalLineNumbers) {
  // Line 1: header. Line 2: blank (counts toward numbering). Line 3: bad
  // field. Line 4: good row. Line 5: wrong field count.
  std::istringstream is(
      "start_ns,src,dst,bytes,duration_ns,switches\n"
      "\n"
      "1,2,3,abc,5,\n"
      "10,2,3,4,5,\n"
      "1,2,3\n");
  const ParseResult result = read_csv_checked(is);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.lines_read, 5u);
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_EQ(result.errors[0].line, 3u);
  EXPECT_NE(result.errors[0].message.find("bytes"), std::string::npos);
  EXPECT_EQ(result.errors[1].line, 5u);
  EXPECT_NE(result.errors[1].message.find("expected 6 fields"),
            std::string::npos);
  // The good row between the bad ones is still parsed.
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace[0].start_time, 10);
}

TEST(FlowIoCheckedTest, CrlfLinesParse) {
  std::istringstream is(
      "start_ns,src,dst,bytes,duration_ns,switches\r\n1,2,3,4,5,\r\n");
  const ParseResult result = read_csv_checked(is);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace[0].duration, 5);
}

TEST(FlowIoCheckedTest, FinalRowWithoutNewlineParses) {
  std::istringstream is(
      "start_ns,src,dst,bytes,duration_ns,switches\n1,2,3,4,5,3;17");
  const ParseResult result = read_csv_checked(is);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.lines_read, 2u);
  ASSERT_EQ(result.trace.size(), 1u);
  ASSERT_EQ(result.trace[0].switches.size(), 2u);
  EXPECT_EQ(result.trace[0].switches[1], SwitchId(17));
}

TEST(FlowIoCheckedTest, EmbeddedNulIsRejectedPerLine) {
  std::string in =
      "start_ns,src,dst,bytes,duration_ns,switches\n"
      "1,2,3,4,5,\n";
  in += std::string("6,7,8,9,") + '\0' + ",\n";  // line 3: NUL inside a row
  in += "10,2,3,4,5,\n";
  const ParseResult result = read_csv_checked(in);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].line, 3u);
  EXPECT_NE(result.errors[0].message.find("NUL"), std::string::npos);
  // Rows around the poisoned one still parse.
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.trace[1].start_time, 10);
}

TEST(FlowIoCheckedTest, TooManySwitchHopsIsRejected) {
  std::istringstream is(
      "start_ns,src,dst,bytes,duration_ns,switches\n1,2,3,4,5,1;2;3;4;5\n");
  const ParseResult result = read_csv_checked(is);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].message.find("too many switch hops"),
            std::string::npos);
  EXPECT_TRUE(result.trace.empty());
}

TEST(FlowIoCheckedTest, MissingHeaderIsAnError) {
  std::istringstream empty("");
  const ParseResult none = read_csv_checked(empty);
  ASSERT_EQ(none.errors.size(), 1u);
  EXPECT_NE(none.errors[0].message.find("missing header"), std::string::npos);

  // A non-header first line stops the parse: the file is not a flow CSV.
  std::istringstream wrong("time,from,to\n1,2,3,4,5,\n");
  const ParseResult bad = read_csv_checked(wrong);
  ASSERT_EQ(bad.errors.size(), 1u);
  EXPECT_EQ(bad.errors[0].line, 1u);
  EXPECT_NE(bad.errors[0].message.find("expected header"), std::string::npos);
  EXPECT_TRUE(bad.trace.empty());
}

TEST(FlowIoCheckedTest, ThrowingWrapperNamesFirstBadLine) {
  std::istringstream is(
      "start_ns,src,dst,bytes,duration_ns,switches\n"
      "1,x,3,4,5,\n"
      "1,2,3\n");
  try {
    (void)read_csv(is);
    FAIL() << "read_csv must throw on malformed input";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("+1 more bad lines"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace llmprism
