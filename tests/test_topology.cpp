// Unit tests for the Clos cluster topology and routing.
#include "llmprism/topology/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace llmprism {
namespace {

ClusterTopology topo(std::uint32_t machines = 8, std::uint32_t gpus = 8,
                     std::uint32_t per_leaf = 4, std::uint32_t spines = 2) {
  return ClusterTopology::build(
      {.num_machines = machines, .gpus_per_machine = gpus,
       .machines_per_leaf = per_leaf, .num_spines = spines});
}

TEST(TopologyTest, RejectsZeroDimensions) {
  EXPECT_THROW(topo(0), std::invalid_argument);
  EXPECT_THROW(topo(4, 0), std::invalid_argument);
  EXPECT_THROW(topo(4, 8, 0), std::invalid_argument);
  EXPECT_THROW(topo(4, 8, 4, 0), std::invalid_argument);
}

TEST(TopologyTest, DerivedSizes) {
  const auto t = topo(10, 8, 4, 3);
  EXPECT_EQ(t.num_gpus(), 80u);
  EXPECT_EQ(t.num_leaves(), 3u);  // ceil(10/4)
  EXPECT_EQ(t.num_spines(), 3u);
  EXPECT_EQ(t.num_switches(), 6u);
}

TEST(TopologyTest, MachineOfGpu) {
  const auto t = topo();
  EXPECT_EQ(t.machine_of(GpuId(0)), MachineId(0));
  EXPECT_EQ(t.machine_of(GpuId(7)), MachineId(0));
  EXPECT_EQ(t.machine_of(GpuId(8)), MachineId(1));
  EXPECT_EQ(t.machine_of(GpuId(63)), MachineId(7));
  EXPECT_THROW(t.machine_of(GpuId(64)), std::out_of_range);
  EXPECT_THROW(t.machine_of(GpuId()), std::out_of_range);
}

TEST(TopologyTest, GpusOnMachine) {
  const auto t = topo();
  const auto gpus = t.gpus_on(MachineId(2));
  ASSERT_EQ(gpus.size(), 8u);
  EXPECT_EQ(gpus.front(), GpuId(16));
  EXPECT_EQ(gpus.back(), GpuId(23));
  EXPECT_THROW(t.gpus_on(MachineId(8)), std::out_of_range);
}

TEST(TopologyTest, LeafAssignment) {
  const auto t = topo(8, 8, 4, 2);
  EXPECT_EQ(t.leaf_of(MachineId(0)), SwitchId(0));
  EXPECT_EQ(t.leaf_of(MachineId(3)), SwitchId(0));
  EXPECT_EQ(t.leaf_of(MachineId(4)), SwitchId(1));
  EXPECT_TRUE(t.is_leaf(SwitchId(0)));
  EXPECT_TRUE(t.is_leaf(SwitchId(1)));
  EXPECT_TRUE(t.is_spine(SwitchId(2)));
  EXPECT_TRUE(t.is_spine(SwitchId(3)));
  EXPECT_FALSE(t.is_spine(SwitchId(4)));
  EXPECT_FALSE(t.is_leaf(SwitchId(4)));
}

TEST(TopologyTest, IntraMachineRouteIsEmpty) {
  const auto t = topo();
  EXPECT_TRUE(t.route(GpuId(0), GpuId(7)).empty());
  EXPECT_TRUE(t.same_machine(GpuId(0), GpuId(7)));
}

TEST(TopologyTest, SameLeafRouteIsSingleHop) {
  const auto t = topo();
  // machines 0 and 1 are under leaf 0
  const auto path = t.route(GpuId(0), GpuId(8));
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], SwitchId(0));
}

TEST(TopologyTest, CrossLeafRouteIsThreeHops) {
  const auto t = topo();
  // machine 0 (leaf 0) -> machine 4 (leaf 1)
  const auto path = t.route(GpuId(0), GpuId(32));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], SwitchId(0));
  EXPECT_TRUE(t.is_spine(path[1]));
  EXPECT_EQ(path[2], SwitchId(1));
}

TEST(TopologyTest, EcmpIsDeterministicPerPair) {
  const auto t = topo();
  const auto p1 = t.route(GpuId(0), GpuId(32));
  const auto p2 = t.route(GpuId(0), GpuId(32));
  EXPECT_EQ(p1, p2);
}

TEST(TopologyTest, EcmpSpreadsAcrossSpines) {
  const auto t = topo(32, 8, 4, 4);
  std::set<SwitchId> spines_used;
  for (std::uint32_t g = 0; g < 8; ++g) {
    // cross-leaf pairs with varying endpoints
    const auto path = t.route(GpuId(g), GpuId(128 + g * 8));
    if (path.size() == 3) spines_used.insert(path[1]);
  }
  EXPECT_GT(spines_used.size(), 1u) << "ECMP never spread across spines";
}

TEST(TopologyTest, RouteValidatesGpuIds) {
  const auto t = topo();
  EXPECT_THROW(t.route(GpuId(0), GpuId(999)), std::out_of_range);
}

TEST(TopologyTest, SingleLeafClusterNeverUsesSpines) {
  const auto t = topo(4, 8, 4, 2);  // all machines under one leaf
  for (std::uint32_t a = 0; a < 4; ++a) {
    const auto path = t.route(GpuId(a * 8), GpuId(((a + 1) % 4) * 8));
    for (const SwitchId sw : path) EXPECT_TRUE(t.is_leaf(sw));
  }
}

// Property sweep: every cross-machine route starts at the source's leaf and
// ends at the destination's leaf.
class TopologyRouteSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(TopologyRouteSweep, RouteEndpointsMatchLeaves) {
  const auto [machines, spines] = GetParam();
  const auto t = topo(machines, 8, 4, spines);
  for (std::uint32_t a = 0; a < t.num_gpus(); a += 13) {
    for (std::uint32_t b = 0; b < t.num_gpus(); b += 17) {
      const GpuId src(a), dst(b);
      const auto path = t.route(src, dst);
      if (t.same_machine(src, dst)) {
        EXPECT_TRUE(path.empty());
        continue;
      }
      const SwitchId leaf_src = t.leaf_of(t.machine_of(src));
      const SwitchId leaf_dst = t.leaf_of(t.machine_of(dst));
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), leaf_src);
      EXPECT_EQ(path.back(), leaf_dst);
      EXPECT_EQ(path.size(), leaf_src == leaf_dst ? 1u : 3u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologyRouteSweep,
                         ::testing::Combine(::testing::Values(4u, 8u, 32u),
                                            ::testing::Values(1u, 2u, 8u)));

}  // namespace
}  // namespace llmprism
