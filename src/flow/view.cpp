#include "llmprism/flow/view.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "llmprism/obs/metrics.hpp"

namespace llmprism {

namespace {

/// Process-wide count of SoA -> AoS materializations. The sorted-LFT fast
/// path must keep this at zero (asserted in test_columnar_equivalence).
obs::Counter& materializations_counter() {
  static obs::Counter& counter = obs::default_registry().counter(
      "llmprism_flow_materializations_total",
      "AoS FlowTrace arrays materialized from columnar flow data (the "
      "zero-copy analysis path performs none)");
  return counter;
}

/// Same counter FlowTrace::sort uses: every *physical* sort of flow data,
/// AoS or columnar, is one tick — the sort-once discipline stays
/// observable no matter which representation backs the pipeline.
obs::Counter& sorts_counter() {
  static obs::Counter& counter = obs::default_registry().counter(
      "llmprism_flowtrace_sorts_total");
  return counter;
}

/// FlowStartTimeLess over two view rows: (start, src, dst, bytes).
bool row_less(const FlowView& a, std::size_t i, const FlowView& b,
              std::size_t j) {
  if (a.start_ns[i] != b.start_ns[j]) return a.start_ns[i] < b.start_ns[j];
  if (a.src[i] != b.src[j]) return a.src[i] < b.src[j];
  if (a.dst[i] != b.dst[j]) return a.dst[i] < b.dst[j];
  return a.bytes[i] < b.bytes[j];
}

}  // namespace

std::size_t FlowView::lower_bound_start(TimeNs t) const {
  const auto it = std::lower_bound(start_ns.begin(), start_ns.end(), t);
  return static_cast<std::size_t>(it - start_ns.begin());
}

FlowView FlowView::window(TimeWindow w) const {
  if (!sorted) {
    throw std::logic_error("FlowView::window requires a sorted view");
  }
  const std::size_t lo = lower_bound_start(w.begin);
  const std::size_t hi = lower_bound_start(w.end);
  return slice(lo, hi < lo ? lo : hi);
}

TimeWindow FlowView::time_span() const {
  if (empty()) return {};
  TimeNs lo = start_ns[0];
  TimeNs hi = end_ns(0);
  for (std::size_t i = 0; i < size(); ++i) {
    lo = std::min(lo, start_ns[i]);
    hi = std::max(hi, end_ns(i));
  }
  return {lo, hi};
}

bool FlowView::verify_sorted() const {
  for (std::size_t i = 1; i < size(); ++i) {
    if (row_less(*this, i, *this, i - 1)) return false;
  }
  return true;
}

FlowColumns::FlowColumns(const FlowTrace& trace) {
  const std::size_t n = trace.size();
  start_ns.reserve(n);
  src.reserve(n);
  dst.reserve(n);
  bytes.reserve(n);
  duration_ns.reserve(n);
  switch_offsets.reserve(n + 1);
  switch_offsets.push_back(0);
  for (const FlowRecord& f : trace.flows()) {
    start_ns.push_back(f.start_time);
    src.push_back(f.src.value());
    dst.push_back(f.dst.value());
    bytes.push_back(f.bytes);
    duration_ns.push_back(f.duration);
    for (const SwitchId sw : f.switches) switch_ids.push_back(sw.value());
    switch_offsets.push_back(switch_ids.size());
  }
  sorted = trace.is_sorted();
}

void FlowColumns::reserve(std::size_t rows, std::size_t switch_entries) {
  start_ns.reserve(rows);
  src.reserve(rows);
  dst.reserve(rows);
  bytes.reserve(rows);
  duration_ns.reserve(rows);
  switch_offsets.reserve(rows + 1);
  switch_ids.reserve(switch_entries);
}

void FlowColumns::clear() {
  start_ns.clear();
  src.clear();
  dst.clear();
  bytes.clear();
  duration_ns.clear();
  switch_offsets.clear();
  switch_ids.clear();
  sorted = true;
}

void FlowColumns::push_back(const FlowRecord& f) {
  if (sorted && !start_ns.empty()) {
    const std::size_t last = start_ns.size() - 1;
    const FlowRecord back = (*this)[last];
    if (FlowStartTimeLess{}(f, back)) sorted = false;
  }
  if (switch_offsets.empty()) switch_offsets.push_back(0);
  start_ns.push_back(f.start_time);
  src.push_back(f.src.value());
  dst.push_back(f.dst.value());
  bytes.push_back(f.bytes);
  duration_ns.push_back(f.duration);
  for (const SwitchId sw : f.switches) switch_ids.push_back(sw.value());
  switch_offsets.push_back(switch_ids.size());
}

void FlowColumns::append_row(const FlowView& v, std::size_t i) {
  if (switch_offsets.empty()) switch_offsets.push_back(0);
  start_ns.push_back(v.start_ns[i]);
  src.push_back(v.src[i]);
  dst.push_back(v.dst[i]);
  bytes.push_back(v.bytes[i]);
  duration_ns.push_back(v.duration_ns[i]);
  for (const std::uint32_t sw : v.switches(i)) switch_ids.push_back(sw);
  switch_offsets.push_back(switch_ids.size());
}

FlowColumns FlowColumns::gather(const FlowView& v,
                                std::span<const std::uint32_t> rows,
                                bool rows_sorted_subset) {
  FlowColumns out;
  std::size_t hops = 0;
  if (!v.switch_offsets.empty()) {
    for (const std::uint32_t r : rows) {
      hops += v.switch_offsets[r + 1] - v.switch_offsets[r];
    }
  }
  out.reserve(rows.size(), hops);
  out.switch_offsets.push_back(0);
  for (const std::uint32_t r : rows) {
    out.start_ns.push_back(v.start_ns[r]);
    out.src.push_back(v.src[r]);
    out.dst.push_back(v.dst[r]);
    out.bytes.push_back(v.bytes[r]);
    out.duration_ns.push_back(v.duration_ns[r]);
    for (const std::uint32_t sw : v.switches(r)) {
      out.switch_ids.push_back(sw);
    }
    out.switch_offsets.push_back(out.switch_ids.size());
  }
  out.sorted = (rows_sorted_subset && v.sorted) || out.view().verify_sorted();
  return out;
}

FlowColumns FlowColumns::merge_sorted_runs(std::vector<FlowColumns> runs) {
  std::size_t total = 0;
  std::size_t hops = 0;
  for (FlowColumns& run : runs) {
    run.sort();
    total += run.size();
    hops += run.switch_ids.size();
  }
  FlowColumns out;
  out.reserve(total, hops);
  out.switch_offsets.push_back(0);

  // Min-heap of run indices keyed by each run's next row; ties go to the
  // lower run index — identical discipline to FlowTrace::merge_sorted_runs.
  std::vector<FlowView> views;
  views.reserve(runs.size());
  for (const FlowColumns& run : runs) views.push_back(run.view());
  std::vector<std::size_t> heads(runs.size(), 0);
  std::vector<std::size_t> heap;
  heap.reserve(runs.size());
  const auto later = [&](std::size_t a, std::size_t b) {
    if (row_less(views[a], heads[a], views[b], heads[b])) return false;
    if (row_less(views[b], heads[b], views[a], heads[a])) return true;
    return a > b;
  };
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push_back(r);
  }
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const std::size_t r = heap.back();
    heap.pop_back();
    out.append_row(views[r], heads[r]);
    if (++heads[r] < runs[r].size()) {
      heap.push_back(r);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  out.sorted = true;
  return out;
}

void FlowColumns::merge_sorted(FlowColumns other) {
  sort();
  other.sort();
  if (other.empty()) return;
  if (empty()) {
    *this = std::move(other);
    return;
  }
  const FlowView mine = view();
  const FlowView theirs = other.view();
  // Pure-append fast path: the incoming run starts at or after our back.
  if (!row_less(theirs, 0, mine, mine.size() - 1)) {
    const std::uint64_t base = switch_offsets.back();
    start_ns.insert(start_ns.end(), other.start_ns.begin(),
                    other.start_ns.end());
    src.insert(src.end(), other.src.begin(), other.src.end());
    dst.insert(dst.end(), other.dst.begin(), other.dst.end());
    bytes.insert(bytes.end(), other.bytes.begin(), other.bytes.end());
    duration_ns.insert(duration_ns.end(), other.duration_ns.begin(),
                       other.duration_ns.end());
    switch_ids.insert(switch_ids.end(), other.switch_ids.begin(),
                      other.switch_ids.end());
    for (std::size_t i = 1; i < other.switch_offsets.size(); ++i) {
      switch_offsets.push_back(base + other.switch_offsets[i]);
    }
    return;
  }
  std::vector<FlowColumns> runs;
  runs.push_back(std::move(*this));
  runs.push_back(std::move(other));
  *this = merge_sorted_runs(std::move(runs));
}

void FlowColumns::drop_before(TimeNs t) {
  if (!sorted && !(sorted = view().verify_sorted())) {
    throw std::logic_error("FlowColumns::drop_before requires sorted columns");
  }
  const std::size_t cut = view().lower_bound_start(t);
  if (cut == 0) return;
  const std::uint64_t hop_cut =
      switch_offsets.empty() ? 0 : switch_offsets[cut];
  start_ns.erase(start_ns.begin(), start_ns.begin() + cut);
  src.erase(src.begin(), src.begin() + cut);
  dst.erase(dst.begin(), dst.begin() + cut);
  bytes.erase(bytes.begin(), bytes.begin() + cut);
  duration_ns.erase(duration_ns.begin(), duration_ns.begin() + cut);
  if (!switch_offsets.empty()) {
    switch_ids.erase(switch_ids.begin(), switch_ids.begin() + hop_cut);
    switch_offsets.erase(switch_offsets.begin(), switch_offsets.begin() + cut);
    for (std::uint64_t& off : switch_offsets) off -= hop_cut;
  }
}

void FlowColumns::sort() {
  if (sorted || view().verify_sorted()) {
    sorted = true;
    return;
  }
  sorts_counter().inc();
  const FlowView v = view();
  std::vector<std::uint32_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return row_less(v, a, v, b);
                   });
  FlowColumns out = gather(v, order, false);
  out.sorted = true;
  *this = std::move(out);
}

FlowTrace materialize(const FlowView& view) {
  materializations_counter().inc();
  std::vector<FlowRecord> flows;
  flows.reserve(view.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    flows.push_back(view.record(i));
  }
  return FlowTrace(std::move(flows));
}

std::uint64_t flow_materializations_total() {
  return materializations_counter().value();
}

}  // namespace llmprism
