#include "llmprism/parallelism/config.hpp"

namespace llmprism {

RankMap::RankMap(ParallelismConfig config) : config_(config) {
  config_.validate();
}

void RankMap::check_rank(RankId rank) const {
  if (!rank.valid() || rank.value() >= world_size()) {
    throw std::out_of_range("RankMap: rank out of range");
  }
}

void RankMap::check_coord(RankCoord coord) const {
  if (coord.tp_idx >= config_.tp || coord.dp_idx >= config_.dp ||
      coord.pp_idx >= config_.pp) {
    throw std::out_of_range("RankMap: coordinate out of range");
  }
}

RankCoord RankMap::coord_of(RankId rank) const {
  check_rank(rank);
  const std::uint32_t r = rank.value();
  RankCoord coord;
  coord.tp_idx = r % config_.tp;
  const std::uint32_t rest = r / config_.tp;
  if (config_.order == RankOrder::kTpDpPp) {
    coord.dp_idx = rest % config_.dp;
    coord.pp_idx = rest / config_.dp;
  } else {  // kTpPpDp
    coord.pp_idx = rest % config_.pp;
    coord.dp_idx = rest / config_.pp;
  }
  return coord;
}

RankId RankMap::rank_of(RankCoord coord) const {
  check_coord(coord);
  std::uint32_t rest = 0;
  if (config_.order == RankOrder::kTpDpPp) {
    rest = coord.pp_idx * config_.dp + coord.dp_idx;
  } else {
    rest = coord.dp_idx * config_.pp + coord.pp_idx;
  }
  return RankId(rest * config_.tp + coord.tp_idx);
}

std::vector<RankId> RankMap::tp_group(std::uint32_t dp_idx,
                                      std::uint32_t pp_idx) const {
  std::vector<RankId> group;
  group.reserve(config_.tp);
  for (std::uint32_t t = 0; t < config_.tp; ++t) {
    group.push_back(rank_of({t, dp_idx, pp_idx}));
  }
  return group;
}

std::vector<RankId> RankMap::dp_group(std::uint32_t tp_idx,
                                      std::uint32_t pp_idx) const {
  std::vector<RankId> group;
  group.reserve(config_.dp);
  for (std::uint32_t d = 0; d < config_.dp; ++d) {
    group.push_back(rank_of({tp_idx, d, pp_idx}));
  }
  return group;
}

std::vector<RankId> RankMap::pp_group(std::uint32_t tp_idx,
                                      std::uint32_t dp_idx) const {
  std::vector<RankId> group;
  group.reserve(config_.pp);
  for (std::uint32_t p = 0; p < config_.pp; ++p) {
    group.push_back(rank_of({tp_idx, dp_idx, p}));
  }
  return group;
}

std::vector<std::vector<RankId>> RankMap::all_dp_groups() const {
  std::vector<std::vector<RankId>> groups;
  groups.reserve(static_cast<std::size_t>(config_.tp) * config_.pp);
  for (std::uint32_t p = 0; p < config_.pp; ++p) {
    for (std::uint32_t t = 0; t < config_.tp; ++t) {
      groups.push_back(dp_group(t, p));
    }
  }
  return groups;
}

std::vector<std::vector<RankId>> RankMap::all_pp_groups() const {
  std::vector<std::vector<RankId>> groups;
  groups.reserve(static_cast<std::size_t>(config_.tp) * config_.dp);
  for (std::uint32_t d = 0; d < config_.dp; ++d) {
    for (std::uint32_t t = 0; t < config_.tp; ++t) {
      groups.push_back(pp_group(t, d));
    }
  }
  return groups;
}

}  // namespace llmprism
