// Tests for the online streaming monitor.
#include "llmprism/core/monitor.hpp"

#include <gtest/gtest.h>

#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

ClusterSimResult simulate(std::uint32_t steps = 20,
                          std::vector<StragglerSpec> stragglers = {}) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 8, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 2, .pp = 2, .micro_batches = 4};
  job.num_steps = steps;
  job.stragglers = std::move(stragglers);
  cfg.jobs.push_back({job, {}});
  return run_cluster_sim(cfg);
}

TEST(OnlineMonitorTest, RejectsBadConfig) {
  const auto sim = simulate(2);
  EXPECT_THROW(OnlineMonitor(sim.topology, {.window = 0}),
               std::invalid_argument);
  EXPECT_THROW(OnlineMonitor(sim.topology, {.reorder_slack = -1}),
               std::invalid_argument);
}

TEST(OnlineMonitorTest, WindowsCoverTheFeed) {
  const auto sim = simulate(20);
  MonitorConfig cfg;
  cfg.window = 2 * kSecond;
  OnlineMonitor monitor(sim.topology, cfg);
  auto ticks = monitor.ingest(sim.trace);
  const auto last = monitor.flush();
  ASSERT_TRUE(last.has_value());
  ticks.push_back(*last);

  // Windows tile the trace span contiguously.
  ASSERT_GE(ticks.size(), 3u);
  for (std::size_t i = 1; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i].window.begin, ticks[i - 1].window.end);
  }
  EXPECT_EQ(monitor.stats().flows_ingested, sim.trace.size());
  EXPECT_EQ(monitor.stats().windows_completed, ticks.size());
}

TEST(OnlineMonitorTest, EveryWindowSeesTheJob) {
  const auto sim = simulate(20);
  MonitorConfig cfg;
  cfg.window = 3 * kSecond;
  cfg.prism.reconstruct_timelines = false;
  OnlineMonitor monitor(sim.topology, cfg);
  auto ticks = monitor.ingest(sim.trace);
  ASSERT_FALSE(ticks.empty());
  for (const MonitorTick& tick : ticks) {
    EXPECT_EQ(tick.report.jobs.size(), 1u) << "window at "
                                           << to_seconds(tick.window.begin);
  }
}

TEST(OnlineMonitorTest, JobIdentityIsStableAcrossWindows) {
  const auto sim = simulate(20);
  MonitorConfig cfg;
  cfg.window = 2 * kSecond;
  cfg.prism.reconstruct_timelines = false;
  OnlineMonitor monitor(sim.topology, cfg);
  auto ticks = monitor.ingest(sim.trace);
  const auto last = monitor.flush();
  if (last) ticks.push_back(*last);
  ASSERT_GE(ticks.size(), 2u);
  MonitorJobId first_id = ticks[0].job_ids.at(0);
  for (const MonitorTick& tick : ticks) {
    ASSERT_EQ(tick.job_ids.size(), 1u);
    EXPECT_EQ(tick.job_ids[0], first_id);
  }
  EXPECT_EQ(monitor.jobs_seen(), 1u);
  EXPECT_EQ(monitor.stats().job_windows.at(first_id), ticks.size());
}

TEST(OnlineMonitorTest, IncrementalBatchesMatchOneShot) {
  const auto sim = simulate(12);
  MonitorConfig cfg;
  cfg.window = 2 * kSecond;
  cfg.prism.reconstruct_timelines = false;

  OnlineMonitor one_shot(sim.topology, cfg);
  auto expected = one_shot.ingest(sim.trace);

  OnlineMonitor incremental(sim.topology, cfg);
  std::vector<MonitorTick> got;
  const std::size_t chunk = sim.trace.size() / 7 + 1;
  for (std::size_t at = 0; at < sim.trace.size(); at += chunk) {
    FlowTrace batch;
    for (std::size_t i = at; i < std::min(at + chunk, sim.trace.size());
         ++i) {
      batch.add(sim.trace[i]);
    }
    for (auto& t : incremental.ingest(batch)) got.push_back(std::move(t));
  }
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].window.begin, expected[i].window.begin);
    EXPECT_EQ(got[i].report.jobs.size(), expected[i].report.jobs.size());
  }
}

TEST(OnlineMonitorTest, FlushOnEmptyIsNullopt) {
  const auto sim = simulate(2);
  OnlineMonitor monitor(sim.topology);
  EXPECT_FALSE(monitor.flush().has_value());
}

TEST(OnlineMonitorTest, AlertsAccumulateInStats) {
  // Straggler in the middle of the run; window sized to hold many steps so
  // the cross-step detector has a baseline.
  const auto sim = simulate(
      24, {{.rank = 3, .step_begin = 12, .step_end = 12, .slowdown = 2.5}});
  MonitorConfig cfg;
  cfg.window = 60 * kSecond;  // whole run in one window
  OnlineMonitor monitor(sim.topology, cfg);
  monitor.ingest(sim.trace);
  const auto tick = monitor.flush();
  ASSERT_TRUE(tick.has_value());
  EXPECT_GT(monitor.stats().step_alerts, 0u);
}

TEST(OnlineMonitorTest, LateFlowsBeyondSlackAreDropped) {
  const auto sim = simulate(8);
  MonitorConfig cfg;
  cfg.window = kSecond;
  cfg.reorder_slack = 100 * kMillisecond;
  OnlineMonitor monitor(sim.topology, cfg);
  monitor.ingest(sim.trace);
  // Replay the first flow far in the past: it must be silently dropped.
  FlowTrace late;
  late.add(sim.trace[0]);
  const auto before = monitor.stats().flows_ingested;
  monitor.ingest(late);
  EXPECT_EQ(monitor.stats().flows_ingested, before);
  EXPECT_EQ(monitor.stats().flows_dropped_late, 1u);
}

}  // namespace
}  // namespace llmprism
