// Deterministic random number generation for the simulator and noise models.
//
// All randomness in this repository flows through Rng so that every
// experiment is reproducible from a single seed. The engine is
// xoshiro256** (public domain, Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <random>

namespace llmprism {

namespace detail {

/// SplitMix64: used to expand one 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace detail

/// xoshiro256** engine satisfying UniformRandomBitGenerator, usable with
/// <random> distributions.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x243f6a8885a308d3ULL) {
    detail::SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Convenience wrapper bundling an engine with the distributions the
/// simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  [[nodiscard]] double normal(double mu, double sigma) {
    return std::normal_distribution<double>(mu, sigma)(engine_);
  }

  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child generator; used to give each job / rank its
  /// own stream so adding one job never perturbs another's randomness.
  [[nodiscard]] Rng fork(std::uint64_t salt) {
    detail::SplitMix64 sm(engine_() ^ (salt * 0x9e3779b97f4a7c15ULL));
    return Rng(sm.next());
  }

  [[nodiscard]] Xoshiro256ss& engine() { return engine_; }

 private:
  Xoshiro256ss engine_;
};

}  // namespace llmprism
