// Snapshot / restore tests (DESIGN.md §14, include/llmprism/core/
// snapshot.hpp): a warm monitor saved mid-stream and restored into a
// fresh object must continue exactly where it left off — the combined
// tick sequence renders byte-identical exports to an uninterrupted run —
// and every malformed blob must be rejected with the target unchanged
// (modeled on the LFT corrupt suite in test_lft.cpp).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "llmprism/core/monitor.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/core/session.hpp"
#include "llmprism/core/snapshot.hpp"
#include "llmprism/export/journal.hpp"
#include "llmprism/export/perfetto.hpp"
#include "llmprism/export/series.hpp"
#include "llmprism/export/view.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

JobSimConfig job(std::uint32_t tp, std::uint32_t dp, std::uint32_t pp,
                 std::uint32_t steps) {
  JobSimConfig cfg;
  cfg.parallelism.tp = tp;
  cfg.parallelism.dp = dp;
  cfg.parallelism.pp = pp;
  cfg.parallelism.micro_batches = 4;
  cfg.num_steps = steps;
  return cfg;
}

/// Two steady jobs so every carry feature (recognition cache, comm-type
/// priors, timeline tails, EWMA baselines) accumulates real state.
const ClusterSimResult& steady_mix() {
  static const ClusterSimResult sim = [] {
    ClusterSimConfig cfg;
    cfg.topology = {.num_machines = 8, .gpus_per_machine = 8,
                    .machines_per_leaf = 4, .num_spines = 2};
    cfg.jobs.push_back({job(8, 2, 2, 16), {}});
    cfg.jobs.push_back({job(8, 4, 1, 16), {}});
    cfg.seed = 31;
    return run_cluster_sim(cfg);
  }();
  return sim;
}

MonitorConfig monitor_config() {
  MonitorConfig cfg;
  cfg.window = 2 * kSecond;
  cfg.reorder_slack = 0;
  cfg.carry_state = true;
  return cfg;
}

/// Render a tick sequence through every job-facing exporter; byte
/// equality of this string is the "continues identically" oracle.
std::string render(const std::vector<MonitorTick>& ticks) {
  PerfettoExporter perfetto;
  JobSeriesCollector series;
  IncidentJournal journal;
  for (const MonitorTick& tick : ticks) {
    const WindowExportView view = export_view(tick);
    perfetto.add_window(view);
    series.add_window(view);
    journal.add_window(view);
  }
  journal.finish();
  std::ostringstream os;
  perfetto.write(os);
  series.write_openmetrics(os);
  series.write_jsonl(os);
  journal.write_jsonl(os);
  return os.str();
}

std::string save_monitor(const OnlineMonitor& monitor) {
  std::ostringstream os;
  save_snapshot(os, monitor);
  return os.str();
}

std::span<const std::byte> bytes(const std::string& blob) {
  return {reinterpret_cast<const std::byte*>(blob.data()), blob.size()};
}

void expect_stats_equal(const MonitorStats& a, const MonitorStats& b) {
  EXPECT_EQ(a.flows_ingested, b.flows_ingested);
  EXPECT_EQ(a.flows_dropped_late, b.flows_dropped_late);
  EXPECT_EQ(a.windows_completed, b.windows_completed);
  EXPECT_EQ(a.stable_ids_created, b.stable_ids_created);
  EXPECT_EQ(a.step_alerts, b.step_alerts);
  EXPECT_EQ(a.group_alerts, b.group_alerts);
  EXPECT_EQ(a.switch_bandwidth_alerts, b.switch_bandwidth_alerts);
  EXPECT_EQ(a.switch_concurrency_alerts, b.switch_concurrency_alerts);
  EXPECT_EQ(a.job_windows, b.job_windows);
}

void expect_counters_equal(const SessionCounters& a, const SessionCounters& b) {
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.jobs_created, b.jobs_created);
  EXPECT_EQ(a.jobs_reused, b.jobs_reused);
  EXPECT_EQ(a.jobs_invalidated, b.jobs_invalidated);
  EXPECT_EQ(a.recognition_reuses, b.recognition_reuses);
  EXPECT_EQ(a.recognition_rebuilds, b.recognition_rebuilds);
  EXPECT_EQ(a.pairs_reused, b.pairs_reused);
  EXPECT_EQ(a.pairs_reclassified, b.pairs_reclassified);
  EXPECT_EQ(a.boundary_steps_held, b.boundary_steps_held);
  EXPECT_EQ(a.boundary_steps_carried, b.boundary_steps_carried);
  EXPECT_EQ(a.ewma_step_alerts, b.ewma_step_alerts);
}

/// Split the steady trace at its midpoint timestamp: the head leaves the
/// monitor holding warm state AND a non-empty reorder buffer (flows past
/// the last closed window), both of which the snapshot must carry.
struct SplitFeed {
  FlowTrace head;
  FlowTrace tail;
};

const SplitFeed& split_feed() {
  static const SplitFeed feed = [] {
    FlowTrace trace = steady_mix().trace;
    trace.sort();
    const TimeNs mid =
        trace.span().begin + (trace.span().end - trace.span().begin) / 2;
    SplitFeed f;
    f.head = trace.window({trace.span().begin, mid});
    f.tail = trace.window({mid, trace.span().end + 1});
    return f;
  }();
  return feed;
}

std::vector<MonitorTick> finish(OnlineMonitor& monitor,
                                std::vector<MonitorTick> ticks,
                                const FlowTrace& tail) {
  for (MonitorTick& tick : monitor.ingest(tail)) {
    ticks.push_back(std::move(tick));
  }
  if (auto last = monitor.flush()) ticks.push_back(std::move(*last));
  return ticks;
}

// --- round trips ----------------------------------------------------------

TEST(SnapshotTest, MonitorRestoreContinuesByteIdentical) {
  const ClusterSimResult& sim = steady_mix();
  const SplitFeed& feed = split_feed();

  // Reference: one monitor sees head + tail with no interruption.
  OnlineMonitor reference(sim.topology, monitor_config());
  auto ref_ticks = reference.ingest(feed.head);
  ref_ticks = finish(reference, std::move(ref_ticks), feed.tail);
  ASSERT_GE(ref_ticks.size(), 3u) << "mix must span several windows";

  // Interrupted: save after the head, restore into a fresh monitor.
  OnlineMonitor before(sim.topology, monitor_config());
  auto ticks = before.ingest(feed.head);
  const std::string blob = save_monitor(before);
  EXPECT_GT(blob.size(), 1000u);

  OnlineMonitor after(sim.topology, monitor_config());
  restore_snapshot(bytes(blob), after);
  ticks = finish(after, std::move(ticks), feed.tail);

  EXPECT_EQ(render(ticks), render(ref_ticks));
  expect_stats_equal(after.stats(), reference.stats());
  ASSERT_NE(after.session(), nullptr);
  ASSERT_NE(reference.session(), nullptr);
  expect_counters_equal(after.session()->counters(),
                        reference.session()->counters());
}

TEST(SnapshotTest, SaveIsDeterministic) {
  const ClusterSimResult& sim = steady_mix();
  OnlineMonitor a(sim.topology, monitor_config());
  a.ingest(split_feed().head);
  const std::string first = save_monitor(a);
  const std::string second = save_monitor(a);
  EXPECT_EQ(first, second) << "equal state must produce equal bytes";

  // And a restored monitor re-saves to the same bytes.
  OnlineMonitor b(sim.topology, monitor_config());
  restore_snapshot(bytes(first), b);
  EXPECT_EQ(save_monitor(b), first);
}

TEST(SnapshotTest, SessionRoundTripPreservesCountersAndJobs) {
  const ClusterSimResult& sim = steady_mix();
  OnlineMonitor monitor(sim.topology, monitor_config());
  monitor.ingest(split_feed().head);
  const PrismSession* warm = monitor.session();
  ASSERT_NE(warm, nullptr);
  ASSERT_GT(warm->jobs_tracked(), 0u);

  std::ostringstream os;
  save_snapshot(os, *warm);
  const std::string blob = os.str();

  PrismSession restored(monitor_config().session);
  restore_snapshot(bytes(blob), restored);
  EXPECT_EQ(restored.jobs_tracked(), warm->jobs_tracked());
  expect_counters_equal(restored.counters(), warm->counters());

  std::ostringstream again;
  save_snapshot(again, restored);
  EXPECT_EQ(again.str(), blob);
}

TEST(SnapshotTest, EmptyMonitorRoundTrips) {
  const ClusterSimResult& sim = steady_mix();
  OnlineMonitor fresh(sim.topology, monitor_config());
  const std::string blob = save_monitor(fresh);
  OnlineMonitor restored(sim.topology, monitor_config());
  restore_snapshot(bytes(blob), restored);
  expect_stats_equal(restored.stats(), fresh.stats());
  EXPECT_EQ(save_monitor(restored), blob);
}

TEST(SnapshotTest, StreamAndSpanRestoresAgree) {
  const ClusterSimResult& sim = steady_mix();
  OnlineMonitor warm(sim.topology, monitor_config());
  warm.ingest(split_feed().head);
  const std::string blob = save_monitor(warm);

  OnlineMonitor via_span(sim.topology, monitor_config());
  restore_snapshot(bytes(blob), via_span);
  OnlineMonitor via_stream(sim.topology, monitor_config());
  std::istringstream is(blob);
  restore_snapshot(is, via_stream);
  EXPECT_EQ(save_monitor(via_stream), save_monitor(via_span));
}

// --- corrupt-blob suite ---------------------------------------------------

/// Every malformed blob must throw std::runtime_error and leave the
/// target monitor byte-for-byte unchanged (strong guarantee: its own
/// re-save matches the pre-restore save).
class SnapshotCorruptTest : public ::testing::Test {
 protected:
  static const std::string& good_blob() {
    static const std::string blob = [] {
      OnlineMonitor warm(steady_mix().topology, monitor_config());
      warm.ingest(split_feed().head);
      return save_monitor(warm);
    }();
    return blob;
  }

  void expect_rejects(const std::string& name, const std::string& blob) {
    SCOPED_TRACE(name);
    OnlineMonitor target(steady_mix().topology, monitor_config());
    target.ingest(split_feed().head);
    const std::string before = save_monitor(target);
    EXPECT_THROW(restore_snapshot(bytes(blob), target), std::runtime_error);
    EXPECT_EQ(save_monitor(target), before)
        << "failed restore must leave the target unchanged";
  }
};

TEST_F(SnapshotCorruptTest, EmptyBlob) { expect_rejects("empty", ""); }

TEST_F(SnapshotCorruptTest, TruncatedHeader) {
  expect_rejects("header", good_blob().substr(0, snapshot::kHeaderSize - 1));
}

TEST_F(SnapshotCorruptTest, TruncatedPayload) {
  const std::string& good = good_blob();
  expect_rejects("half", good.substr(0, good.size() / 2));
  expect_rejects("missing checksum", good.substr(0, good.size() - 8));
  expect_rejects("one byte short", good.substr(0, good.size() - 1));
}

TEST_F(SnapshotCorruptTest, TrailingGarbage) {
  expect_rejects("trailing", good_blob() + std::string(4, '\0'));
}

TEST_F(SnapshotCorruptTest, BadMagic) {
  std::string blob = good_blob();
  blob[0] = 'X';
  expect_rejects("magic", blob);
}

TEST_F(SnapshotCorruptTest, WrongVersion) {
  std::string blob = good_blob();
  blob[4] = static_cast<char>(snapshot::kVersion + 1);
  expect_rejects("version", blob);
}

TEST_F(SnapshotCorruptTest, WrongKind) {
  // A session blob is a valid snapshot — of the wrong kind for a monitor.
  OnlineMonitor warm(steady_mix().topology, monitor_config());
  warm.ingest(split_feed().head);
  ASSERT_NE(warm.session(), nullptr);
  std::ostringstream os;
  save_snapshot(os, *warm.session());
  expect_rejects("session blob into monitor", os.str());

  // And vice versa: a monitor blob must not restore into a session.
  PrismSession session(monitor_config().session);
  EXPECT_THROW(restore_snapshot(bytes(good_blob()), session),
               std::runtime_error);
}

TEST_F(SnapshotCorruptTest, BitFlips) {
  // Any single flipped bit lands on the XXH64 (or a validation stage that
  // fires first); sample offsets across the whole payload.
  const std::string& good = good_blob();
  for (const std::size_t at :
       {snapshot::kHeaderSize, good.size() / 4, good.size() / 2,
        3 * good.size() / 4, good.size() - 9, good.size() - 1}) {
    std::string blob = good;
    blob[at] = static_cast<char>(blob[at] ^ 0x20);
    expect_rejects("bit flip at " + std::to_string(at), blob);
  }
}

TEST_F(SnapshotCorruptTest, ConfigMismatch) {
  // The blob carries a config fingerprint: restoring into a monitor built
  // with a different window (or session tuning) must be refused.
  MonitorConfig other_window = monitor_config();
  other_window.window = kSecond;
  OnlineMonitor target(steady_mix().topology, other_window);
  EXPECT_THROW(restore_snapshot(bytes(good_blob()), target),
               std::runtime_error);

  MonitorConfig other_session = monitor_config();
  other_session.session.ewma_alpha *= 0.5;
  OnlineMonitor target2(steady_mix().topology, other_session);
  EXPECT_THROW(restore_snapshot(bytes(good_blob()), target2),
               std::runtime_error);
}

TEST_F(SnapshotCorruptTest, TopologyMismatch) {
  const ClusterTopology small = ClusterTopology::build(
      {.num_machines = 4, .gpus_per_machine = 8, .machines_per_leaf = 4,
       .num_spines = 2});
  OnlineMonitor target(small, monitor_config());
  EXPECT_THROW(restore_snapshot(bytes(good_blob()), target),
               std::runtime_error);
}

TEST_F(SnapshotCorruptTest, CarryStateMismatch) {
  // A carry-enabled blob embeds a session; a carry-less target has none.
  MonitorConfig cold = monitor_config();
  cold.carry_state = false;
  OnlineMonitor target(steady_mix().topology, cold);
  EXPECT_THROW(restore_snapshot(bytes(good_blob()), target),
               std::runtime_error);
}

TEST_F(SnapshotCorruptTest, FileErrors) {
  OnlineMonitor target(steady_mix().topology, monitor_config());
  EXPECT_THROW(restore_snapshot_file("/nonexistent/dir/warm.snap", target),
               std::runtime_error);
  EXPECT_THROW(save_snapshot_file("/nonexistent/dir/warm.snap", target),
               std::runtime_error);
}

}  // namespace
}  // namespace llmprism
