# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_parallelism[1]_include.cmake")
include("/root/repo/build/tests/test_bocd[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_noise_faults[1]_include.cmake")
include("/root/repo/build/tests/test_collector[1]_include.cmake")
include("/root/repo/build/tests/test_job_recognition[1]_include.cmake")
include("/root/repo/build/tests/test_comm_type[1]_include.cmake")
include("/root/repo/build/tests/test_timeline[1]_include.cmake")
include("/root/repo/build/tests/test_diagnosis[1]_include.cmake")
include("/root/repo/build/tests/test_render[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_parallelism_inference[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_switch_timeline[1]_include.cmake")
include("/root/repo/build/tests/test_prism_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
