file(REMOVE_RECURSE
  "CMakeFiles/llmprism_collector.dir/collector.cpp.o"
  "CMakeFiles/llmprism_collector.dir/collector.cpp.o.d"
  "CMakeFiles/llmprism_collector.dir/packetize.cpp.o"
  "CMakeFiles/llmprism_collector.dir/packetize.cpp.o.d"
  "libllmprism_collector.a"
  "libllmprism_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmprism_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
