// Tests for LFT, the binary flow-trace format: CSV<->LFT round-trip
// property tests, the zero-copy mmap reader, and a corrupt-file suite —
// every malformed input must fail with a descriptive std::runtime_error,
// never undefined behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "llmprism/common/hash.hpp"
#include "llmprism/common/rng.hpp"
#include "llmprism/flow/io.hpp"
#include "llmprism/flow/lft.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/obs/metrics.hpp"

namespace llmprism {
namespace {

FlowRecord make_flow(TimeNs t, std::uint32_t src, std::uint32_t dst,
                     std::uint64_t bytes = 1000, DurationNs dur = 100) {
  FlowRecord f;
  f.start_time = t;
  f.src = GpuId(src);
  f.dst = GpuId(dst);
  f.bytes = bytes;
  f.duration = dur;
  return f;
}

/// Random trace exercising the format's whole value range: negative
/// (pre-epoch) times, huge byte counts, 0..4-hop switch paths.
FlowTrace random_trace(Rng& rng, int n, bool sorted) {
  FlowTrace t;
  for (int i = 0; i < n; ++i) {
    auto f = make_flow(
        static_cast<TimeNs>(rng.uniform_int(-1'000'000, 1'000'000)),
        static_cast<std::uint32_t>(rng.uniform_int(0, 4095)),
        static_cast<std::uint32_t>(rng.uniform_int(0, 4095)),
        rng.bernoulli(0.1) ? (1ull << 62) + 12345
                           : static_cast<std::uint64_t>(
                                 rng.uniform_int(0, 1'000'000'000)),
        static_cast<DurationNs>(rng.uniform_int(0, 1'000'000)));
    const int hops = static_cast<int>(rng.uniform_int(0, 4));
    for (int h = 0; h < hops; ++h) {
      f.switches.push_back(
          SwitchId(static_cast<std::uint32_t>(rng.uniform_int(0, 255))));
    }
    t.add(f);
  }
  if (sorted) t.sort();
  return t;
}

std::string lft_bytes(const FlowTrace& trace) {
  std::ostringstream os(std::ios::binary);
  write_lft(os, trace);
  return std::move(os).str();
}

FlowTrace from_bytes(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  return read_lft(is);
}

std::string write_temp(const std::string& bytes, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

void expect_equal(const FlowTrace& got, const FlowTrace& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "flow " << i;
  }
}

/// Recompute and patch the trailing checksum after a deliberate mutation,
/// so the test reaches the validation stage it is aiming at instead of
/// tripping the checksum first.
void fix_checksum(std::string& bytes) {
  ASSERT_GE(bytes.size(), 8u);
  const std::uint64_t h = xxhash64(bytes.data(), bytes.size() - 8);
  std::memcpy(bytes.data() + bytes.size() - 8, &h, sizeof(h));
}

/// Every corrupt image must fail identically through both readers — the
/// stream materializer and the mmap one — with the same diagnostic.
void expect_both_fail(const std::string& bytes, const std::string& needle,
                      const std::string& name) {
  const std::string path = write_temp(bytes, name);
  for (const int reader : {0, 1}) {
    try {
      if (reader == 0) {
        (void)from_bytes(bytes);
      } else {
        const MappedFlowTrace mapped(path);
      }
      FAIL() << name << ": reader " << reader << " accepted corrupt input";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << name << ": reader " << reader << " said: " << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Round trips

TEST(LftRoundTripTest, EmptyTrace) {
  const std::string bytes = lft_bytes(FlowTrace{});
  const FlowTrace back = from_bytes(bytes);
  EXPECT_TRUE(back.empty());
  EXPECT_TRUE(back.is_sorted());

  const MappedFlowTrace mapped(write_temp(bytes, "lft_empty.lft"));
  EXPECT_TRUE(mapped.empty());
  EXPECT_TRUE(mapped.sorted());
  EXPECT_EQ(mapped.byte_size(), bytes.size());
  EXPECT_TRUE(mapped.to_trace().empty());
}

TEST(LftRoundTripTest, RandomTracesStreamAndMmap) {
  Rng rng(20260806);
  for (int round = 0; round < 30; ++round) {
    const bool sorted = rng.bernoulli(0.5);
    const FlowTrace trace =
        random_trace(rng, static_cast<int>(rng.uniform_int(0, 200)), sorted);
    const std::string bytes = lft_bytes(trace);

    const FlowTrace back = from_bytes(bytes);
    expect_equal(back, trace);
    EXPECT_EQ(back.is_sorted(), trace.is_sorted()) << "round " << round;

    const MappedFlowTrace mapped(
        write_temp(bytes, "lft_rt_" + std::to_string(round) + ".lft"));
    EXPECT_EQ(mapped.size(), trace.size());
    EXPECT_EQ(mapped.sorted(), trace.is_sorted());
    expect_equal(mapped.to_trace(), trace);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(mapped.record(i), trace[i]) << "round " << round;
    }
  }
}

TEST(LftRoundTripTest, MaxHopPathsSurvive) {
  FlowTrace t;
  auto f = make_flow(5, 1, 2);
  for (std::uint32_t h = 0; h < SwitchPath::capacity(); ++h) {
    f.switches.push_back(SwitchId(100 + h));
  }
  t.add(f);
  t.add(make_flow(9, 3, 4));  // zero hops right after a full path
  const FlowTrace back = from_bytes(lft_bytes(t));
  expect_equal(back, t);
  ASSERT_EQ(back[0].switches.size(), SwitchPath::capacity());
  EXPECT_EQ(back[0].switches[3], SwitchId(103));
}

TEST(LftRoundTripTest, CsvAndLftAgree) {
  // The same trace through both serializers decodes to identical records.
  Rng rng(77);
  const FlowTrace trace = random_trace(rng, 100, /*sorted=*/true);

  std::stringstream csv;
  write_csv(csv, trace);
  const FlowTrace via_csv = read_csv(csv);
  const FlowTrace via_lft = from_bytes(lft_bytes(trace));
  expect_equal(via_lft, via_csv);
}

TEST(LftRoundTripTest, SortedFileLoadsBornSortedWithZeroSorts) {
  Rng rng(13);
  const FlowTrace trace = random_trace(rng, 150, /*sorted=*/true);
  const std::string bytes = lft_bytes(trace);
  // Header flag (offset 6) records sortedness.
  EXPECT_EQ(static_cast<unsigned char>(bytes[6]), lft::kFlagSorted);

  obs::Counter& sorts =
      obs::default_registry().counter("llmprism_flowtrace_sorts_total");
  const std::uint64_t before = sorts.value();
  FlowTrace back = from_bytes(bytes);
  EXPECT_TRUE(back.is_sorted());
  back.sort();  // must be a no-op
  EXPECT_EQ(sorts.value(), before);
}

TEST(LftRoundTripTest, FileHelpersRoundTrip) {
  FlowTrace t;
  t.add(make_flow(1, 2, 3));
  const std::string path = ::testing::TempDir() + "/lft_file_rt.lft";
  write_lft_file(path, t);
  expect_equal(read_lft_file(path), t);
  EXPECT_TRUE(is_lft_file(path));
}

// ---------------------------------------------------------------------------
// The mmap reader's zero-copy surface

TEST(MappedFlowTraceTest, ColumnsViewTheFile) {
  FlowTrace t;
  auto f0 = make_flow(-7, 11, 22, 333, 44);
  f0.switches.push_back(SwitchId(5));
  f0.switches.push_back(SwitchId(6));
  t.add(f0);
  t.add(make_flow(8, 33, 44, 555, 66));

  const MappedFlowTrace m(write_temp(lft_bytes(t), "lft_cols.lft"));
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.start_ns()[0], -7);
  EXPECT_EQ(m.start_ns()[1], 8);
  EXPECT_EQ(m.src()[0], 11u);
  EXPECT_EQ(m.dst()[1], 44u);
  EXPECT_EQ(m.bytes()[0], 333u);
  EXPECT_EQ(m.duration_ns()[1], 66);
  const auto offsets = m.switch_offsets();
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 2u);
  EXPECT_EQ(offsets[2], 2u);
  const auto hops = m.switch_ids();
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], 5u);
  EXPECT_EQ(hops[1], 6u);
  // record() bounds are a debug-assert contract (no exception branch in
  // per-record paths); in-bounds access is the whole API.
  EXPECT_EQ(m.record(1).start_time, 8);
}

TEST(MappedFlowTraceTest, MoveTransfersTheMapping) {
  FlowTrace t;
  t.add(make_flow(1, 2, 3));
  MappedFlowTrace a(write_temp(lft_bytes(t), "lft_move.lft"));
  MappedFlowTrace b(std::move(a));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.record(0), t[0]);
  MappedFlowTrace c(write_temp(lft_bytes(FlowTrace{}), "lft_move2.lft"));
  c = std::move(b);
  EXPECT_EQ(c.size(), 1u);
}

TEST(MappedFlowTraceTest, NonexistentFileThrows) {
  EXPECT_THROW(MappedFlowTrace("/nonexistent/nope.lft"), std::runtime_error);
  EXPECT_THROW((void)read_lft_file("/nonexistent/nope.lft"),
               std::runtime_error);
  EXPECT_FALSE(is_lft_file("/nonexistent/nope.lft"));
}

// ---------------------------------------------------------------------------
// Format detection

TEST(LftDetectTest, MagicPrefix) {
  EXPECT_TRUE(is_lft(lft_bytes(FlowTrace{})));
  EXPECT_FALSE(is_lft("LFT"));  // too short to say yes
  EXPECT_FALSE(is_lft(""));
  EXPECT_FALSE(is_lft("start_ns,src,dst,bytes,duration_ns,switches\n"));
  const std::string csv_path =
      write_temp("start_ns,src,dst,bytes,duration_ns,switches\n", "det.csv");
  EXPECT_FALSE(is_lft_file(csv_path));
}

// ---------------------------------------------------------------------------
// Corrupt-file suite. Each case targets one validation stage; both readers
// must reject with the same descriptive error.

class LftCorruptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    trace_ = random_trace(rng, 20, /*sorted=*/true);
    bytes_ = lft_bytes(trace_);
  }

  /// Byte offset where section `s` starts, recomputed from the on-disk
  /// section table exactly as the reader does.
  std::size_t section_offset(std::size_t s) const {
    std::size_t at = lft::kHeaderSize + lft::kSectionCount * 8;
    for (std::size_t i = 0; i < s; ++i) {
      std::uint64_t size;
      std::memcpy(&size, bytes_.data() + lft::kHeaderSize + i * 8,
                  sizeof(size));
      at += (size + 7) & ~std::uint64_t{7};
    }
    return at;
  }

  FlowTrace trace_;
  std::string bytes_;
};

TEST_F(LftCorruptTest, TruncatedHeader) {
  expect_both_fail(bytes_.substr(0, 16), "truncated header", "trunc_hdr.lft");
}

TEST_F(LftCorruptTest, TruncatedSectionTable) {
  expect_both_fail(bytes_.substr(0, lft::kHeaderSize + 8),
                   "truncated section table", "trunc_tbl.lft");
}

TEST_F(LftCorruptTest, TruncatedSectionData) {
  // Stored sizes are intact, so the cut shows up as a whole-file size
  // mismatch before any column is touched.
  expect_both_fail(bytes_.substr(0, bytes_.size() - 64), "file size mismatch",
                   "trunc_data.lft");
}

TEST_F(LftCorruptTest, TrailingGarbage) {
  expect_both_fail(bytes_ + "extra", "file size mismatch", "trail.lft");
}

TEST_F(LftCorruptTest, BadMagic) {
  bytes_[0] = 'X';
  expect_both_fail(bytes_, "bad magic", "magic.lft");
}

TEST_F(LftCorruptTest, WrongVersion) {
  bytes_[4] = 9;
  expect_both_fail(bytes_, "unsupported version 9", "version.lft");
}

TEST_F(LftCorruptTest, UnknownFlagBits) {
  bytes_[6] = static_cast<char>(bytes_[6] | 0x4);
  expect_both_fail(bytes_, "unknown flag bits", "flags.lft");
}

TEST_F(LftCorruptTest, WrongSectionCount) {
  bytes_[24] = 6;
  expect_both_fail(bytes_, "unexpected section count 6", "seccount.lft");
}

TEST_F(LftCorruptTest, NumFlowsOverflow) {
  // 2^61 flows: 8 * n overflows u64. Must be caught arithmetically, not by
  // attempting a multi-exabyte read.
  const std::uint64_t huge = 0x2000000000000000ULL;
  std::memcpy(bytes_.data() + 8, &huge, sizeof(huge));
  expect_both_fail(bytes_, "section size overflow", "overflow.lft");
}

TEST_F(LftCorruptTest, SectionSizeMismatch) {
  // Grow the stored size of the src column by one element.
  std::uint64_t size;
  std::memcpy(&size, bytes_.data() + lft::kHeaderSize + 8, sizeof(size));
  size += 4;
  std::memcpy(bytes_.data() + lft::kHeaderSize + 8, &size, sizeof(size));
  expect_both_fail(bytes_, "section src size mismatch", "secsize.lft");
}

TEST_F(LftCorruptTest, ChecksumMismatch) {
  bytes_[section_offset(3) + 2] ^= 0x40;  // flip a bit deep in a column
  expect_both_fail(bytes_, "checksum mismatch", "checksum.lft");
}

TEST_F(LftCorruptTest, CsrOffsetsNotMonotone) {
  const std::size_t off = section_offset(5);
  const std::uint64_t big = 1'000'000;
  std::memcpy(bytes_.data() + off + 8, &big, sizeof(big));  // offsets[1]
  fix_checksum(bytes_);
  // offsets[1] huge then offsets[2] small: either the hop-count cap or the
  // monotonicity check fires first; both name the broken CSR.
  expect_both_fail(bytes_, "switch", "csr_mono.lft");
}

TEST_F(LftCorruptTest, CsrTooManyHops) {
  // Claim every hop in the file belongs to flow 0.
  std::uint64_t m;
  std::memcpy(&m, bytes_.data() + 16, sizeof(m));
  ASSERT_GT(m, SwitchPath::capacity());  // random_trace makes plenty of hops
  const std::size_t off = section_offset(5);
  for (std::size_t i = 1; i <= trace_.size(); ++i) {
    std::memcpy(bytes_.data() + off + i * 8, &m, sizeof(m));
  }
  fix_checksum(bytes_);
  expect_both_fail(bytes_, "hops (max 4)", "csr_hops.lft");
}

TEST_F(LftCorruptTest, CsrWrongTotal) {
  // Last offset no longer equals num_switch_ids.
  const std::size_t off = section_offset(5) + trace_.size() * 8;
  std::uint64_t last;
  std::memcpy(&last, bytes_.data() + off, sizeof(last));
  ASSERT_GE(last, 1u);
  last -= 1;
  std::memcpy(bytes_.data() + off, &last, sizeof(last));
  fix_checksum(bytes_);
  expect_both_fail(bytes_, "switch offsets end at", "csr_total.lft");
}

TEST_F(LftCorruptTest, SortedFlagLie) {
  FlowTrace unsorted;
  unsorted.add(make_flow(100, 1, 2));
  unsorted.add(make_flow(50, 3, 4));
  ASSERT_FALSE(unsorted.is_sorted());
  bytes_ = lft_bytes(unsorted);
  ASSERT_EQ(bytes_[6], 0);
  bytes_[6] = static_cast<char>(lft::kFlagSorted);
  fix_checksum(bytes_);
  expect_both_fail(bytes_, "sorted flag set but rows are not sorted",
                   "sorted_lie.lft");
}

TEST_F(LftCorruptTest, EmptyFile) {
  expect_both_fail(std::string{}, "truncated header", "empty.lft");
}

}  // namespace
}  // namespace llmprism
