#include "llmprism/common/csv.hpp"

#include <stdexcept>

namespace llmprism::csv {

std::vector<std::string> parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    throw std::runtime_error("csv: unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string escape_field(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"") != std::string_view::npos ||
      (!field.empty() && (field.front() == ' ' || field.back() == ' '));
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_row(std::ostream& os, std::span<const std::string> fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) os << ',';
    os << escape_field(fields[i]);
  }
  os << '\n';
}

std::vector<std::vector<std::string>> read_all(std::istream& is) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line == "\r") continue;
    rows.push_back(parse_line(line));
  }
  return rows;
}

}  // namespace llmprism::csv
