file(REMOVE_RECURSE
  "libllmprism_topology.a"
)
