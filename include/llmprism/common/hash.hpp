// xxHash64 — the integrity checksum of the binary flow-trace format (LFT).
//
// XXH64 is the standard pick for trace-file checksums (Perfetto, zstd
// frames, ...): non-cryptographic, a handful of multiplies and rotates per
// 32-byte stripe, so it never becomes the ingest bottleneck it is meant to
// guard. Implemented here from the public specification — one function, no
// streaming state — because the repo takes no external dependencies.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace llmprism {

namespace detail {

inline constexpr std::uint64_t kXxhPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr std::uint64_t kXxhPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr std::uint64_t kXxhPrime3 = 0x165667B19E3779F9ULL;
inline constexpr std::uint64_t kXxhPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr std::uint64_t kXxhPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t xxh_read64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // format and hosts are little-endian (see flow/lft.hpp)
}

inline std::uint32_t xxh_read32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t xxh_round(std::uint64_t acc, std::uint64_t lane) {
  acc += lane * kXxhPrime2;
  acc = std::rotl(acc, 31);
  return acc * kXxhPrime1;
}

inline std::uint64_t xxh_merge_round(std::uint64_t hash, std::uint64_t acc) {
  hash ^= xxh_round(0, acc);
  return hash * kXxhPrime1 + kXxhPrime4;
}

}  // namespace detail

/// XXH64 of `len` bytes at `data`. One-shot; matches the reference
/// implementation for any (data, seed).
[[nodiscard]] inline std::uint64_t xxhash64(const void* data, std::size_t len,
                                            std::uint64_t seed = 0) {
  using namespace detail;
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  std::uint64_t hash;

  if (len >= 32) {
    std::uint64_t v1 = seed + kXxhPrime1 + kXxhPrime2;
    std::uint64_t v2 = seed + kXxhPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kXxhPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = xxh_round(v1, xxh_read64(p));
      v2 = xxh_round(v2, xxh_read64(p + 8));
      v3 = xxh_round(v3, xxh_read64(p + 16));
      v4 = xxh_round(v4, xxh_read64(p + 24));
      p += 32;
    } while (p <= limit);
    hash = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) +
           std::rotl(v4, 18);
    hash = xxh_merge_round(hash, v1);
    hash = xxh_merge_round(hash, v2);
    hash = xxh_merge_round(hash, v3);
    hash = xxh_merge_round(hash, v4);
  } else {
    hash = seed + kXxhPrime5;
  }

  hash += static_cast<std::uint64_t>(len);
  while (p + 8 <= end) {
    hash ^= xxh_round(0, xxh_read64(p));
    hash = std::rotl(hash, 27) * kXxhPrime1 + kXxhPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    hash ^= static_cast<std::uint64_t>(xxh_read32(p)) * kXxhPrime1;
    hash = std::rotl(hash, 23) * kXxhPrime2 + kXxhPrime3;
    p += 4;
  }
  while (p < end) {
    hash ^= static_cast<std::uint64_t>(*p) * kXxhPrime5;
    hash = std::rotl(hash, 11) * kXxhPrime1;
    ++p;
  }

  hash ^= hash >> 33;
  hash *= kXxhPrime2;
  hash ^= hash >> 29;
  hash *= kXxhPrime3;
  hash ^= hash >> 32;
  return hash;
}

}  // namespace llmprism
