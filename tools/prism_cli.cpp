// prism — command-line front end: analyze a flow-trace CSV end-to-end and
// print (or export as JSON) the full diagnosis report.
//
// Usage:
//   prism <flows.csv> [options]
//     --machines N          number of machines in the cluster (default:
//                           derived from the largest GPU id in the trace)
//     --gpus-per-machine N  (default 8)
//     --machines-per-leaf N (default 16)
//     --spines N            (default 4)
//     --window SECONDS      analyze only the first SECONDS of the trace
//     --json                emit the report as JSON instead of text
//     --timelines           include per-rank timeline lanes in text output
//     --no-reconstruct      skip timeline reconstruction (faster)
//     --log-level LEVEL     debug|info|warn|error|off (default: warn)
//     --metrics-out FILE    dump the metrics registry after analysis
//                           (Prometheus text; .json suffix -> JSON snapshot)
//     --trace-out FILE      record pipeline spans, write Chrome trace JSON
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "llmprism/common/log.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/core/render.hpp"
#include "llmprism/flow/io.hpp"
#include "llmprism/obs/metrics.hpp"
#include "llmprism/obs/trace_span.hpp"

using namespace llmprism;

namespace {

struct CliOptions {
  std::string trace_path;
  TopologyConfig topology{.num_machines = 0, .gpus_per_machine = 8,
                          .machines_per_leaf = 16, .num_spines = 4};
  std::optional<double> window_seconds;
  bool json = false;
  bool timelines = false;
  bool reconstruct = true;
  std::string metrics_out;
  std::string trace_out;
};

void usage() {
  std::cerr
      << "usage: prism <flows.csv> [--machines N] [--gpus-per-machine N]\n"
         "             [--machines-per-leaf N] [--spines N] [--window S]\n"
         "             [--json] [--timelines] [--no-reconstruct]\n"
         "             [--log-level debug|info|warn|error|off]\n"
         "             [--metrics-out FILE] [--trace-out FILE]\n"
         "  --metrics-out writes the self-telemetry registry after analysis\n"
         "    (Prometheus text exposition; a .json suffix selects the JSON\n"
         "    snapshot instead)\n"
         "  --trace-out records pipeline trace spans during analysis and\n"
         "    writes Chrome trace_event JSON (open in Perfetto)\n";
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "prism: missing value for " << argv[i] << '\n';
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--machines") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.num_machines =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--gpus-per-machine") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.gpus_per_machine =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--machines-per-leaf") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.machines_per_leaf =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--spines") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.num_spines =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--window") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.window_seconds = std::stod(v);
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--timelines") {
      options.timelines = true;
    } else if (arg == "--no-reconstruct") {
      options.reconstruct = false;
    } else if (arg == "--log-level") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      const auto level = log::parse_level(v);
      if (!level) {
        std::cerr << "prism: unknown log level " << v << '\n';
        return std::nullopt;
      }
      log::set_level(*level);
    } else if (arg == "--metrics-out") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.trace_out = v;
    } else if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "prism: unknown option " << arg << '\n';
      return std::nullopt;
    } else if (options.trace_path.empty()) {
      options.trace_path = arg;
    } else {
      std::cerr << "prism: unexpected argument " << arg << '\n';
      return std::nullopt;
    }
  }
  if (options.trace_path.empty()) return std::nullopt;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_args(argc, argv);
  if (!options) {
    usage();
    return 2;
  }

  FlowTrace trace;
  try {
    trace = read_csv_file(options->trace_path);
  } catch (const std::exception& e) {
    std::cerr << "prism: " << e.what() << '\n';
    return 1;
  }
  trace.sort();
  if (trace.empty()) {
    std::cerr << "prism: trace is empty\n";
    return 1;
  }

  TopologyConfig topo_config = options->topology;
  if (topo_config.num_machines == 0) {
    std::uint32_t max_gpu = 0;
    for (const GpuId g : endpoints(trace)) {
      max_gpu = std::max(max_gpu, g.value());
    }
    topo_config.num_machines = max_gpu / topo_config.gpus_per_machine + 1;
  }

  if (options->window_seconds) {
    const TimeNs begin = trace.span().begin;
    trace = trace.window(
        {begin, begin + from_seconds(*options->window_seconds)});
  }

  try {
    const auto topology = ClusterTopology::build(topo_config);
    PrismConfig prism_config;
    prism_config.reconstruct_timelines = options->reconstruct;
    const Prism prism(topology, prism_config);
    if (!options->trace_out.empty()) obs::TraceCollector::instance().enable();
    const PrismReport report = prism.analyze(trace);
    if (!options->trace_out.empty()) {
      obs::TraceCollector::instance().disable();
      std::ofstream out(options->trace_out);
      if (!out) {
        std::cerr << "prism: cannot write " << options->trace_out << '\n';
        return 1;
      }
      obs::TraceCollector::instance().write_chrome_trace(out);
    }
    if (!options->metrics_out.empty()) {
      std::ofstream out(options->metrics_out);
      if (!out) {
        std::cerr << "prism: cannot write " << options->metrics_out << '\n';
        return 1;
      }
      if (options->metrics_out.ends_with(".json")) {
        obs::default_registry().write_json(out);
      } else {
        obs::default_registry().write_prometheus(out);
      }
    }

    if (options->json) {
      write_report_json(std::cout, report);
      return 0;
    }
    std::cout << "analyzed " << trace.size() << " flows over "
              << to_seconds(trace.span().length()) << " s on a "
              << topology.num_gpus() << "-GPU topology\n\n"
              << render_report_summary(report);
    if (options->timelines) {
      for (const JobAnalysis& job : report.jobs) {
        if (job.timelines.empty()) continue;
        const std::size_t lanes =
            std::min<std::size_t>(8, job.timelines.size());
        std::cout << "\njob " << job.id << " timelines (first " << lanes
                  << " ranks):\n"
                  << render_timeline_chart(
                         std::span(job.timelines.data(), lanes),
                         {.width = 110});
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "prism: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
