#include "llmprism/bocd/bocd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "llmprism/obs/metrics.hpp"

namespace llmprism {

namespace {

/// Registry counters for segmenter work — looked up once, then relaxed
/// atomic adds in bulk per call (never per observation).
struct SegmenterMetrics {
  obs::Counter& observations;
  obs::Counter& boundaries;
  obs::Counter& hard_resets;
};

SegmenterMetrics& segmenter_metrics() {
  static SegmenterMetrics metrics{
      obs::default_registry().counter(
          "llmprism_bocd_observations_total",
          "BOCD observations consumed by gap segmentation"),
      obs::default_registry().counter(
          "llmprism_bocd_boundaries_total",
          "Segment boundaries opened by gap segmentation"),
      obs::default_registry().counter(
          "llmprism_bocd_hard_resets_total",
          "Degenerate BOCD restarts (all hypotheses at zero likelihood)"),
  };
  return metrics;
}

/// Thread-safe log-gamma. libc's lgamma() writes the process-global
/// `signgam`, which races when per-job analysis tasks run BOCD
/// concurrently; every argument here is positive, so the sign is discarded.
double lgamma_positive(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

/// log pdf of a Student-t with nu degrees of freedom, location mu and
/// scale^2 = s2, evaluated at x. `lgamma_term` is the precomputed
/// lgamma((nu+1)/2) - lgamma(nu/2) for this nu.
double log_student_t(double x, double nu, double mu, double s2,
                     double lgamma_term) {
  const double d = x - mu;
  return lgamma_term - 0.5 * std::log(nu * M_PI * s2) -
         (nu + 1.0) / 2.0 * std::log1p(d * d / (nu * s2));
}

/// base^e by repeated squaring. Overflow to inf is benign for the
/// predictive (base >= 1, so 1/inf -> 0 — the same underflow the exp()
/// path produces for a hopeless hypothesis).
double powi(double base, std::size_t e) {
  double r = 1.0;
  while (e != 0) {
    if ((e & 1u) != 0) r *= base;
    base *= base;
    e >>= 1;
  }
  return r;
}

}  // namespace

BocdDetector::BocdDetector(BocdConfig config) : config_(config) {
  if (config_.hazard_lambda <= 1.0) {
    throw std::invalid_argument("bocd: hazard_lambda must be > 1");
  }
  if (config_.changepoint_threshold <= 0.0 ||
      config_.changepoint_threshold >= 1.0) {
    throw std::invalid_argument("bocd: threshold must be in (0, 1)");
  }
  if (config_.prior_kappa <= 0.0 || config_.prior_alpha <= 0.0 ||
      config_.prior_beta <= 0.0) {
    throw std::invalid_argument("bocd: prior parameters must be positive");
  }
  // nu = 2*prior_alpha + run_length: integral for any half-integral prior
  // shape (the default 1.0 included), which unlocks the repeated-squaring
  // predictive in observe()'s inner loop.
  const double two_alpha = 2.0 * config_.prior_alpha;
  integral_nu_ = two_alpha == std::floor(two_alpha) && two_alpha < 1e9;
  reset();
}

void BocdDetector::reset() {
  components_.clear();
  RunComponent prior;
  prior.run_length = 0;
  prior.probability = 1.0;
  prior.mean = config_.prior_mean;
  prior.kappa = config_.prior_kappa;
  prior.alpha = config_.prior_alpha;
  prior.beta = config_.prior_beta;
  components_.push_back(prior);
  last_cp_probability_ = 0.0;
  last_recent_probability_ = 0.0;
  t_ = 0;
  hard_resets_ = 0;
}

double BocdDetector::lgamma_ratio(std::size_t run_length) const {
  // alpha = prior_alpha + run_length/2 exactly (0.5-additions are exact in
  // binary floating point), so caching by run length is bit-identical to
  // recomputing from the component's alpha.
  while (lgamma_ratio_cache_.size() <= run_length) {
    const double alpha =
        config_.prior_alpha +
        0.5 * static_cast<double>(lgamma_ratio_cache_.size());
    const double nu = 2.0 * alpha;
    lgamma_ratio_cache_.push_back(lgamma_positive((nu + 1.0) / 2.0) -
                                  lgamma_positive(nu / 2.0));
  }
  return lgamma_ratio_cache_[run_length];
}

double BocdDetector::log_predictive(const RunComponent& c, double x) const {
  // Posterior predictive of the Normal-Inverse-Gamma model: Student-t with
  // nu = 2*alpha, location mean, scale^2 = beta*(kappa+1)/(alpha*kappa).
  const double nu = 2.0 * c.alpha;
  const double s2 = c.beta * (c.kappa + 1.0) / (c.alpha * c.kappa);
  return log_student_t(x, nu, c.mean, s2, lgamma_ratio(c.run_length));
}

const BocdDetector::PredictiveCoeff& BocdDetector::predictive_coeff(
    std::size_t run_length) const {
  // Like lgamma_ratio(): kappa = prior_kappa + r and alpha =
  // prior_alpha + r/2 exactly, so caching by run length is exact.
  while (predictive_coeff_cache_.size() <= run_length) {
    const auto r = static_cast<double>(predictive_coeff_cache_.size());
    const double alpha = config_.prior_alpha + 0.5 * r;
    const double kappa = config_.prior_kappa + r;
    const double nu = 2.0 * alpha;
    PredictiveCoeff coeff;
    coeff.norm =
        std::exp(lgamma_ratio(predictive_coeff_cache_.size())) /
        std::sqrt(nu * M_PI);
    coeff.inv_nu = 1.0 / nu;
    coeff.kappa_factor = (kappa + 1.0) / (alpha * kappa);
    coeff.power = static_cast<std::size_t>(nu) + 1;
    predictive_coeff_cache_.push_back(coeff);
  }
  return predictive_coeff_cache_[run_length];
}

double BocdDetector::predictive(const RunComponent& c, double x) const {
  if (!integral_nu_) return std::exp(log_predictive(c, x));
  // Student-t density with integer nu, evaluated directly in linear space:
  //   t(x) = norm / sqrt(s2) * (1 + d^2/(nu s2))^-(nu+1)/2
  // The power has integral nu+1, so u^(nu+1) comes from repeated squaring
  // and the final halving is one sqrt — replacing the log/log1p/exp chain
  // that dominated observe().
  const PredictiveCoeff& k = predictive_coeff(c.run_length);
  const double s2 = c.beta * k.kappa_factor;
  const double d = x - c.mean;
  const double u = 1.0 + d * d * k.inv_nu / s2;
  // u^((nu+1)/2) with the halving split out first, so the intermediate
  // overflows only where the result itself does.
  double p = powi(u, k.power >> 1);
  if ((k.power & 1u) != 0) p *= std::sqrt(u);
  return k.norm / (std::sqrt(s2) * p);
}

double BocdDetector::observe(double x) {
  const double hazard = 1.0 / config_.hazard_lambda;

  // r_t = 0 means x is the *first* observation of a new run, so the
  // changepoint branch scores x under the prior predictive (reset
  // likelihood). Using the old run's predictive there instead would make
  // P(r_t = 0) identically equal to the hazard — useless for detection.
  RunComponent prior;
  prior.mean = config_.prior_mean;
  prior.kappa = config_.prior_kappa;
  prior.alpha = config_.prior_alpha;
  prior.beta = config_.prior_beta;
  const double cp_mass = predictive(prior, x) * hazard;

  // Growth branch: each run hypothesis absorbs x. (Member scratch: one
  // observation is one inner-loop iteration of the whole pipeline, so a
  // per-call allocation here is measurable.)
  std::vector<RunComponent>& grown = grown_scratch_;
  grown.clear();
  grown.reserve(components_.size() + 1);
  for (const RunComponent& c : components_) {
    const double pred = predictive(c, x);
    RunComponent g = c;
    g.run_length = c.run_length + 1;
    g.probability = c.probability * pred * (1.0 - hazard);
    // Conjugate posterior update with observation x.
    g.mean = (c.kappa * c.mean + x) / (c.kappa + 1.0);
    g.kappa = c.kappa + 1.0;
    g.alpha = c.alpha + 0.5;
    g.beta = c.beta + c.kappa * (x - c.mean) * (x - c.mean) /
                          (2.0 * (c.kappa + 1.0));
    grown.push_back(g);
  }

  // The fresh run-length-0 hypothesis keeps the pure prior: the triggering
  // observation is treated as a boundary artefact (a step gap), not as the
  // first sample of the new regime. Absorbing it would poison every
  // post-boundary run with the gap value and mask subsequent boundaries.
  RunComponent fresh = prior;
  fresh.run_length = 0;
  fresh.probability = cp_mass;

  double total = cp_mass;
  for (const RunComponent& g : grown) total += g.probability;

  components_.clear();
  if (!(total > 0.0) || !std::isfinite(total)) {
    // All hypotheses assign (numerically) zero likelihood: treat as a hard
    // changepoint and restart from the prior.
    fresh.probability = 1.0;
    components_.push_back(fresh);
    last_cp_probability_ = 1.0;
    last_recent_probability_ = 1.0;
    ++t_;
    ++hard_resets_;
    return last_cp_probability_;
  }

  fresh.probability = cp_mass / total;
  components_.push_back(fresh);
  for (RunComponent& g : grown) {
    g.probability /= total;
    if (g.probability >= config_.prune_mass &&
        g.run_length < config_.max_run_length) {
      components_.push_back(g);
    }
  }

  // Top-N truncation (the fresh hypothesis at index 0 is always kept).
  if (components_.size() > config_.max_components) {
    const auto keep = static_cast<std::ptrdiff_t>(config_.max_components);
    std::nth_element(components_.begin() + 1, components_.begin() + keep,
                     components_.end(),
                     [](const RunComponent& a, const RunComponent& b) {
                       return a.probability > b.probability;
                     });
    components_.resize(config_.max_components);
  }

  // Renormalize after pruning so probabilities stay a distribution.
  double kept = 0.0;
  for (const RunComponent& c : components_) kept += c.probability;
  for (RunComponent& c : components_) c.probability /= kept;

  last_cp_probability_ = components_.front().probability;
  last_recent_probability_ = 0.0;
  for (const RunComponent& c : components_) {
    if (c.run_length <= config_.recent_run_cap) {
      last_recent_probability_ += c.probability;
    }
  }
  ++t_;
  return last_cp_probability_;
}

std::size_t BocdDetector::map_run_length() const {
  std::size_t best = 0;
  double best_p = -1.0;
  for (const RunComponent& c : components_) {
    if (c.probability > best_p) {
      best_p = c.probability;
      best = c.run_length;
    }
  }
  return best;
}

std::vector<std::size_t> detect_changepoints(std::span<const double> xs,
                                             const BocdConfig& config) {
  BocdDetector detector(config);
  std::vector<std::size_t> changepoints;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    detector.observe(xs[i]);
    if (detector.last_was_changepoint()) changepoints.push_back(i);
  }
  return changepoints;
}

std::vector<std::size_t> segment_by_gaps(std::span<const TimeNs> timestamps,
                                         const SegmenterConfig& config,
                                         SegmenterStats* stats) {
  std::vector<std::size_t> starts;
  if (timestamps.empty()) return starts;
  starts.push_back(0);
  if (timestamps.size() == 1) return starts;
  if (!std::is_sorted(timestamps.begin(), timestamps.end())) {
    throw std::invalid_argument("segment_by_gaps: timestamps must be sorted");
  }

  // Coalesce near-simultaneous arrivals; `groups[k]` is the original index
  // of the first timestamp in coalesced group k.
  std::vector<std::size_t> groups{0};
  for (std::size_t i = 1; i < timestamps.size(); ++i) {
    if (timestamps[i] - timestamps[groups.back()] > config.coalesce_gap) {
      groups.push_back(i);
    }
  }
  if (groups.size() < 2) return starts;  // everything is one burst

  std::vector<double> log_intervals;
  log_intervals.reserve(groups.size() - 1);
  for (std::size_t k = 0; k + 1 < groups.size(); ++k) {
    const double dt = static_cast<double>(timestamps[groups[k + 1]] -
                                          timestamps[groups[k]]) +
                      1.0;
    log_intervals.push_back(std::log(dt));
  }

  // Center the prior on the typical interval: the fresh-run predictive is
  // then broad around normal traffic, while the learned run components are
  // tight — a step gap is unlikely under both, but far *less* unlikely
  // under the prior, which is what trips P(r = 0).
  BocdConfig cfg = config.bocd;
  std::vector<double> sorted = log_intervals;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  cfg.prior_mean = sorted[sorted.size() / 2];

  BocdDetector detector(cfg);
  const double guard =
      cfg.prior_mean + std::log(std::max(1.0, config.gap_guard_factor));
  bool prev_flagged = false;
  for (std::size_t i = 0; i < log_intervals.size(); ++i) {
    detector.observe(log_intervals[i]);
    // Changepoint at interval i: a new segment begins at coalesced group
    // i + 1, i.e. original element groups[i + 1].
    //
    // Two equivalent read-outs of the run-length posterior back the
    // decision: the recent-run mass crossing the threshold, or the MAP run
    // length collapsing to "just restarted" (the classic BOCD changepoint
    // extraction — it stays decisive even when an earlier missed boundary
    // has inflated the surviving run's variance and made the mass
    // marginal). Either way the flagged interval must itself be a gap
    // (magnitude guard), and only rising edges open a segment because the
    // posterior legitimately stays "young" for a few observations after a
    // boundary.
    const bool posterior_says_cp =
        detector.last_was_changepoint() ||
        (detector.observations_seen() > cfg.recent_run_cap + 1 &&
         detector.map_run_length() <= cfg.recent_run_cap);
    const bool flagged = posterior_says_cp && log_intervals[i] > guard;
    if (flagged && !prev_flagged) {
      starts.push_back(groups[i + 1]);
    }
    prev_flagged = flagged;
  }

  SegmenterStats call_stats;
  call_stats.observations = detector.observations_seen();
  call_stats.boundaries = starts.size() - 1;
  call_stats.hard_resets = detector.hard_resets();
  if (stats) *stats += call_stats;
  SegmenterMetrics& metrics = segmenter_metrics();
  metrics.observations.inc(call_stats.observations);
  metrics.boundaries.inc(call_stats.boundaries);
  metrics.hard_resets.inc(call_stats.hard_resets);
  return starts;
}

}  // namespace llmprism
