// Network-side fault injection applied to generated traces.
//
// A degraded switch (failing optics, congested uplink) cuts the effective
// bandwidth of every flow traversing it: flow durations stretch, so the
// observed per-flow bandwidth (bytes/duration) drops — the observable
// behind the paper's Fig. 5 switch-level diagnosis.
#pragma once

#include <vector>

#include "llmprism/common/ids.hpp"
#include "llmprism/common/rng.hpp"
#include "llmprism/common/time.hpp"
#include "llmprism/flow/trace.hpp"

namespace llmprism {

struct SwitchDegradationSpec {
  SwitchId switch_id;
  TimeWindow window;        ///< when the degradation is active
  double bandwidth_factor = 0.3;  ///< remaining bandwidth fraction (0, 1]
};

/// Returns a copy of `trace` with flow durations stretched by
/// 1/bandwidth_factor for flows that traverse a degraded switch while its
/// degradation window is active. Throws std::invalid_argument on a factor
/// outside (0, 1].
[[nodiscard]] FlowTrace apply_switch_degradation(
    const FlowTrace& trace, const std::vector<SwitchDegradationSpec>& specs);

}  // namespace llmprism
