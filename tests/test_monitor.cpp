// Tests for the online streaming monitor.
#include "llmprism/core/monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "llmprism/common/rng.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

ClusterSimResult simulate(std::uint32_t steps = 20,
                          std::vector<StragglerSpec> stragglers = {}) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 8, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 2, .pp = 2, .micro_batches = 4};
  job.num_steps = steps;
  job.stragglers = std::move(stragglers);
  cfg.jobs.push_back({job, {}});
  return run_cluster_sim(cfg);
}

TEST(OnlineMonitorTest, RejectsBadConfig) {
  const auto sim = simulate(2);
  EXPECT_THROW(OnlineMonitor(sim.topology, {.window = 0}),
               std::invalid_argument);
  EXPECT_THROW(OnlineMonitor(sim.topology, {.reorder_slack = -1}),
               std::invalid_argument);
}

TEST(OnlineMonitorTest, WindowsCoverTheFeed) {
  const auto sim = simulate(20);
  MonitorConfig cfg;
  cfg.window = 2 * kSecond;
  OnlineMonitor monitor(sim.topology, cfg);
  auto ticks = monitor.ingest(sim.trace);
  const auto last = monitor.flush();
  ASSERT_TRUE(last.has_value());
  ticks.push_back(*last);

  // Windows tile the trace span contiguously.
  ASSERT_GE(ticks.size(), 3u);
  for (std::size_t i = 1; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i].window.begin, ticks[i - 1].window.end);
  }
  EXPECT_EQ(monitor.stats().flows_ingested, sim.trace.size());
  EXPECT_EQ(monitor.stats().windows_completed, ticks.size());
}

TEST(OnlineMonitorTest, EveryWindowSeesTheJob) {
  const auto sim = simulate(20);
  MonitorConfig cfg;
  cfg.window = 3 * kSecond;
  cfg.prism.reconstruct_timelines = false;
  OnlineMonitor monitor(sim.topology, cfg);
  auto ticks = monitor.ingest(sim.trace);
  ASSERT_FALSE(ticks.empty());
  for (const MonitorTick& tick : ticks) {
    EXPECT_EQ(tick.report.jobs.size(), 1u) << "window at "
                                           << to_seconds(tick.window.begin);
  }
}

TEST(OnlineMonitorTest, JobIdentityIsStableAcrossWindows) {
  const auto sim = simulate(20);
  MonitorConfig cfg;
  cfg.window = 2 * kSecond;
  cfg.prism.reconstruct_timelines = false;
  OnlineMonitor monitor(sim.topology, cfg);
  auto ticks = monitor.ingest(sim.trace);
  const auto last = monitor.flush();
  if (last) ticks.push_back(*last);
  ASSERT_GE(ticks.size(), 2u);
  MonitorJobId first_id = ticks[0].job_ids.at(0);
  for (const MonitorTick& tick : ticks) {
    ASSERT_EQ(tick.job_ids.size(), 1u);
    EXPECT_EQ(tick.job_ids[0], first_id);
  }
  EXPECT_EQ(monitor.jobs_seen(), 1u);
  EXPECT_EQ(monitor.stats().job_windows.at(first_id), ticks.size());
}

TEST(OnlineMonitorTest, IncrementalBatchesMatchOneShot) {
  const auto sim = simulate(12);
  MonitorConfig cfg;
  cfg.window = 2 * kSecond;
  cfg.prism.reconstruct_timelines = false;

  OnlineMonitor one_shot(sim.topology, cfg);
  auto expected = one_shot.ingest(sim.trace);

  OnlineMonitor incremental(sim.topology, cfg);
  std::vector<MonitorTick> got;
  const std::size_t chunk = sim.trace.size() / 7 + 1;
  for (std::size_t at = 0; at < sim.trace.size(); at += chunk) {
    FlowTrace batch;
    for (std::size_t i = at; i < std::min(at + chunk, sim.trace.size());
         ++i) {
      batch.add(sim.trace[i]);
    }
    for (auto& t : incremental.ingest(batch)) got.push_back(std::move(t));
  }
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].window.begin, expected[i].window.begin);
    EXPECT_EQ(got[i].report.jobs.size(), expected[i].report.jobs.size());
  }
}

// Deep tick comparison for the differential feeds below: the merge-based
// ingest path must produce byte-identical windows no matter how the flows
// were batched or reordered on the way in.
void expect_ticks_equal(const std::vector<MonitorTick>& got,
                        const std::vector<MonitorTick>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].window.begin, expected[i].window.begin);
    EXPECT_EQ(got[i].window.end, expected[i].window.end);
    EXPECT_EQ(got[i].job_ids, expected[i].job_ids);
    const PrismReport& a = got[i].report;
    const PrismReport& b = expected[i].report;
    EXPECT_EQ(a.telemetry.flows_total, b.telemetry.flows_total);
    EXPECT_EQ(a.telemetry.flows_routed, b.telemetry.flows_routed);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
      ASSERT_EQ(a.jobs[j].trace.size(), b.jobs[j].trace.size());
      for (std::size_t f = 0; f < a.jobs[j].trace.size(); ++f) {
        EXPECT_EQ(a.jobs[j].trace[f], b.jobs[j].trace[f])
            << "tick " << i << " job " << j << " flow " << f;
      }
    }
  }
}

TEST(OnlineMonitorTest, OutOfOrderBatchesWithLateDropsMatchOneShot) {
  const auto sim = simulate(12);
  MonitorConfig cfg;
  cfg.window = 2 * kSecond;
  cfg.reorder_slack = 100 * kMillisecond;
  cfg.prism.reconstruct_timelines = false;

  // Baseline: the whole (sorted) trace in one batch, then flush.
  OnlineMonitor one_shot(sim.topology, cfg);
  auto expected = one_shot.ingest(sim.trace);
  if (auto last = one_shot.flush()) expected.push_back(std::move(*last));

  // Same flows as many batches, each internally shuffled (out of order
  // within the batch), with a far-too-late flow replayed between batches —
  // those must be dropped without perturbing any window.
  Rng rng(777);
  OnlineMonitor incremental(sim.topology, cfg);
  std::vector<MonitorTick> got;
  const std::size_t chunk = sim.trace.size() / 9 + 1;
  std::size_t late_replays = 0;
  for (std::size_t at = 0; at < sim.trace.size(); at += chunk) {
    std::vector<FlowRecord> shuffled;
    for (std::size_t i = at; i < std::min(at + chunk, sim.trace.size());
         ++i) {
      shuffled.push_back(sim.trace[i]);
    }
    // The window origin is the first-ARRIVED flow's start time, so the
    // very first flow must stay first; everything after it is fair game.
    const std::size_t shuffle_from = at == 0 ? 1 : 0;
    for (std::size_t i = shuffled.size(); i > shuffle_from + 1; --i) {
      const auto j = shuffle_from + static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(i - shuffle_from) - 1));
      std::swap(shuffled[i - 1], shuffled[j]);
    }
    FlowTrace batch;
    for (FlowRecord& f : shuffled) batch.add(std::move(f));
    for (auto& t : incremental.ingest(batch)) got.push_back(std::move(t));

    // Once windows have closed, replay the very first flow: it starts
    // before the current window begin, so it must be dropped late.
    if (!got.empty()) {
      FlowTrace late;
      late.add(sim.trace[0]);
      const auto ticks = incremental.ingest(late);
      EXPECT_TRUE(ticks.empty());
      ++late_replays;
    }
  }
  if (auto last = incremental.flush()) got.push_back(std::move(*last));

  ASSERT_GT(late_replays, 0u);
  EXPECT_EQ(incremental.stats().flows_dropped_late, late_replays);
  EXPECT_EQ(incremental.stats().flows_ingested, sim.trace.size());
  expect_ticks_equal(got, expected);
}

TEST(OnlineMonitorTest, FlushOnEmptyIsNullopt) {
  const auto sim = simulate(2);
  OnlineMonitor monitor(sim.topology);
  EXPECT_FALSE(monitor.flush().has_value());
}

TEST(OnlineMonitorTest, AlertsAccumulateInStats) {
  // Straggler in the middle of the run; window sized to hold many steps so
  // the cross-step detector has a baseline.
  const auto sim = simulate(
      24, {{.rank = 3, .step_begin = 12, .step_end = 12, .slowdown = 2.5}});
  MonitorConfig cfg;
  cfg.window = 60 * kSecond;  // whole run in one window
  OnlineMonitor monitor(sim.topology, cfg);
  monitor.ingest(sim.trace);
  const auto tick = monitor.flush();
  ASSERT_TRUE(tick.has_value());
  EXPECT_GT(monitor.stats().step_alerts, 0u);
}

TEST(OnlineMonitorTest, LateFlowsBeyondSlackAreDropped) {
  const auto sim = simulate(8);
  MonitorConfig cfg;
  cfg.window = kSecond;
  cfg.reorder_slack = 100 * kMillisecond;
  OnlineMonitor monitor(sim.topology, cfg);
  monitor.ingest(sim.trace);
  // Replay the first flow far in the past: it must be silently dropped.
  FlowTrace late;
  late.add(sim.trace[0]);
  const auto before = monitor.stats().flows_ingested;
  monitor.ingest(late);
  EXPECT_EQ(monitor.stats().flows_ingested, before);
  EXPECT_EQ(monitor.stats().flows_dropped_late, 1u);
}

// ---------------------------------------------------------------------------
// Window-boundary and reorder-slack edge cases, exercised with hand-built
// flows so every timestamp is exact.

/// 4 machines x 2 GPUs: machine m hosts GPUs 2m and 2m+1.
ClusterTopology tiny_topology() {
  return ClusterTopology::build({.num_machines = 4, .gpus_per_machine = 2,
                                 .machines_per_leaf = 2, .num_spines = 1});
}

FlowRecord flow_at(TimeNs at, std::uint32_t src, std::uint32_t dst) {
  FlowRecord f;
  f.start_time = at;
  f.src = GpuId(src);
  f.dst = GpuId(dst);
  f.bytes = 1 << 20;
  f.duration = kMillisecond;
  return f;
}

MonitorConfig tiny_config(DurationNs window, DurationNs slack) {
  MonitorConfig cfg;
  cfg.window = window;
  cfg.reorder_slack = slack;
  cfg.prism.reconstruct_timelines = false;
  return cfg;
}

TEST(OnlineMonitorEdgeTest, FlowAtExactWindowEndBelongsToNextWindow) {
  const auto topology = tiny_topology();
  OnlineMonitor monitor(topology, tiny_config(kSecond, 0));
  FlowTrace batch;
  batch.add(flow_at(0, 0, 2));
  batch.add(flow_at(kSecond, 0, 2));      // exactly window_begin + window
  batch.add(flow_at(2 * kSecond, 0, 2));  // advances the watermark
  const auto ticks = monitor.ingest(batch);

  ASSERT_EQ(ticks.size(), 2u);
  EXPECT_EQ(ticks[0].window.begin, 0);
  EXPECT_EQ(ticks[0].window.end, kSecond);
  ASSERT_EQ(ticks[0].report.jobs.size(), 1u);
  // Windows are [begin, end): the boundary flow must land in the second.
  EXPECT_EQ(ticks[0].report.jobs[0].trace.size(), 1u);
  EXPECT_EQ(ticks[0].report.jobs[0].trace[0].start_time, 0);
  ASSERT_EQ(ticks[1].report.jobs.size(), 1u);
  EXPECT_EQ(ticks[1].report.jobs[0].trace.size(), 1u);
  EXPECT_EQ(ticks[1].report.jobs[0].trace[0].start_time, kSecond);
}

TEST(OnlineMonitorEdgeTest, FlowAtSlackLimitKeptOneTickPastDropped) {
  const auto topology = tiny_topology();
  const DurationNs slack = 100 * kMillisecond;
  OnlineMonitor monitor(topology, tiny_config(kSecond, slack));
  FlowTrace batch;
  batch.add(flow_at(0, 0, 2));
  // Watermark 1s + slack closes exactly [0, 1s); the oldest admissible
  // start time is then the new window begin, 1s.
  batch.add(flow_at(kSecond + slack, 0, 2));
  const auto ticks = monitor.ingest(batch);
  ASSERT_EQ(ticks.size(), 1u);
  EXPECT_EQ(monitor.stats().flows_dropped_late, 0u);

  FlowTrace at_limit;
  at_limit.add(flow_at(kSecond, 0, 2));  // exactly at the limit: kept
  monitor.ingest(at_limit);
  EXPECT_EQ(monitor.stats().flows_dropped_late, 0u);
  EXPECT_EQ(monitor.stats().flows_ingested, 3u);

  FlowTrace past_limit;
  past_limit.add(flow_at(kSecond - 1, 0, 2));  // one tick past: dropped
  monitor.ingest(past_limit);
  EXPECT_EQ(monitor.stats().flows_dropped_late, 1u);
  EXPECT_EQ(monitor.stats().flows_ingested, 3u);
}

TEST(OnlineMonitorEdgeTest, FlushAfterDrainingIsNullopt) {
  const auto topology = tiny_topology();
  OnlineMonitor monitor(topology, tiny_config(kSecond, 0));
  FlowTrace batch;
  batch.add(flow_at(0, 0, 2));
  batch.add(flow_at(10 * kMillisecond, 0, 2));
  monitor.ingest(batch);
  EXPECT_TRUE(monitor.flush().has_value());
  EXPECT_FALSE(monitor.flush().has_value());
}

TEST(OnlineMonitorEdgeTest, StableIdPersistsWhenJobSkipsAWindow) {
  const auto topology = tiny_topology();
  OnlineMonitor monitor(topology, tiny_config(kSecond, 0));
  FlowTrace batch;
  // Job A (machines 0-1) in windows 0 and 2; job B (machines 2-3) in all
  // three, which keeps the windows advancing while A is absent.
  batch.add(flow_at(0, 0, 2));                           // A, window 0
  batch.add(flow_at(10 * kMillisecond, 4, 6));           // B, window 0
  batch.add(flow_at(kSecond + 200 * kMillisecond, 4, 6));       // B only
  batch.add(flow_at(2 * kSecond + 100 * kMillisecond, 0, 2));   // A returns
  batch.add(flow_at(2 * kSecond + 200 * kMillisecond, 4, 6));   // B
  batch.add(flow_at(3 * kSecond + 500 * kMillisecond, 4, 6));   // watermark
  const auto ticks = monitor.ingest(batch);

  ASSERT_EQ(ticks.size(), 3u);
  ASSERT_EQ(ticks[0].job_ids.size(), 2u);  // A first (smallest GPU id)
  ASSERT_EQ(ticks[1].job_ids.size(), 1u);
  ASSERT_EQ(ticks[2].job_ids.size(), 2u);
  const MonitorJobId id_a = ticks[0].job_ids[0];
  const MonitorJobId id_b = ticks[0].job_ids[1];
  EXPECT_NE(id_a, id_b);
  EXPECT_EQ(ticks[1].job_ids[0], id_b);
  EXPECT_EQ(ticks[2].job_ids[0], id_a);  // same id despite the gap
  EXPECT_EQ(ticks[2].job_ids[1], id_b);
  EXPECT_EQ(monitor.jobs_seen(), 2u);
  EXPECT_EQ(monitor.stats().job_windows.at(id_a), 2u);
  EXPECT_EQ(monitor.stats().job_windows.at(id_b), 3u);
}

TEST(OnlineMonitorEdgeTest, StableIdRecycledWhenMachineSetShrinksAndReturns) {
  const auto topology = tiny_topology();
  OnlineMonitor monitor(topology, tiny_config(kSecond, 0));
  FlowTrace batch;
  // Window 0: machines {0,1,2}. Window 1: the job shrinks to {0,1} — a
  // different identity. Window 2: the full set returns and must get its
  // original id back, not a third one.
  batch.add(flow_at(0, 0, 2));
  batch.add(flow_at(10 * kMillisecond, 2, 4));
  batch.add(flow_at(kSecond + 100 * kMillisecond, 0, 2));
  batch.add(flow_at(2 * kSecond + 100 * kMillisecond, 0, 2));
  batch.add(flow_at(2 * kSecond + 200 * kMillisecond, 2, 4));
  batch.add(flow_at(3 * kSecond + 500 * kMillisecond, 0, 2));  // watermark
  const auto ticks = monitor.ingest(batch);

  ASSERT_EQ(ticks.size(), 3u);
  ASSERT_EQ(ticks[0].job_ids.size(), 1u);
  ASSERT_EQ(ticks[1].job_ids.size(), 1u);
  ASSERT_EQ(ticks[2].job_ids.size(), 1u);
  const MonitorJobId full = ticks[0].job_ids[0];
  const MonitorJobId shrunk = ticks[1].job_ids[0];
  EXPECT_NE(full, shrunk);
  EXPECT_EQ(ticks[2].job_ids[0], full);
  EXPECT_EQ(monitor.stats().stable_ids_created, 2u);
  EXPECT_EQ(monitor.stats().job_windows.at(full), 2u);
  EXPECT_EQ(monitor.stats().job_windows.at(shrunk), 1u);
}

TEST(OnlineMonitorEdgeTest, SteadyTrafficMintsOneStableIdWithCarry) {
  const auto topology = tiny_topology();
  MonitorConfig cfg = tiny_config(kSecond, 0);
  ASSERT_TRUE(cfg.carry_state) << "the session engine is the default";
  OnlineMonitor monitor(topology, cfg);
  FlowTrace batch;
  for (TimeNs t = 0; t < 4 * kSecond + kSecond / 2; t += 100 * kMillisecond) {
    batch.add(flow_at(t, 0, 2));
  }
  const auto ticks = monitor.ingest(batch);

  ASSERT_EQ(ticks.size(), 4u);
  EXPECT_EQ(monitor.stats().stable_ids_created, 1u);
  const PrismSession* session = monitor.session();
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->counters().jobs_created, 1u);
  EXPECT_EQ(session->counters().jobs_reused, 3u);
  EXPECT_GE(session->counters().recognition_reuses, 3u);
}

}  // namespace
}  // namespace llmprism
