// ClusterSim: a multi-tenant training platform in miniature.
//
// Places several independently configured training jobs onto disjoint
// machine sets of one cluster topology, generates each job's flows with an
// independent random stream, merges everything into the single trace a
// switch-level collector would deliver, then applies collection noise and
// injected network faults.
#pragma once

#include <cstdint>
#include <vector>

#include "llmprism/simulator/faults.hpp"
#include "llmprism/simulator/ground_truth.hpp"
#include "llmprism/simulator/job_config.hpp"
#include "llmprism/simulator/job_sim.hpp"
#include "llmprism/simulator/noise.hpp"
#include "llmprism/topology/topology.hpp"

namespace llmprism {

struct ClusterJobSpec {
  JobSimConfig config;
  /// Machines to place the job on; empty = allocate the next free machines.
  std::vector<MachineId> machines;
};

struct ClusterSimConfig {
  TopologyConfig topology;
  std::vector<ClusterJobSpec> jobs;
  NoiseConfig noise;
  std::vector<SwitchDegradationSpec> switch_faults;
  std::uint64_t seed = 42;
};

struct ClusterSimResult {
  ClusterTopology topology;
  FlowTrace trace;                        ///< merged, noisy, sorted
  std::vector<JobTruth> jobs;             ///< truth per job, JobId = index
  std::vector<InjectedAnomaly> anomalies; ///< all injected faults, labelled
};

/// Runs the full cluster simulation. Deterministic given config.seed.
/// Throws std::invalid_argument if jobs do not fit the topology or machine
/// sets overlap.
[[nodiscard]] ClusterSimResult run_cluster_sim(const ClusterSimConfig& config);

}  // namespace llmprism
