file(REMOVE_RECURSE
  "CMakeFiles/llmprism_common.dir/csv.cpp.o"
  "CMakeFiles/llmprism_common.dir/csv.cpp.o.d"
  "CMakeFiles/llmprism_common.dir/log.cpp.o"
  "CMakeFiles/llmprism_common.dir/log.cpp.o.d"
  "CMakeFiles/llmprism_common.dir/stats.cpp.o"
  "CMakeFiles/llmprism_common.dir/stats.cpp.o.d"
  "libllmprism_common.a"
  "libllmprism_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmprism_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
