#include "llmprism/export/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "llmprism/common/hash.hpp"
#include "llmprism/core/attribution.hpp"
#include "emit.hpp"

namespace llmprism {

namespace {

using detail::write_double;

/// Cluster-level incidents (degraded switches) are owned by no tenant.
constexpr std::uint64_t kClusterJob = ~0ULL;

/// Stable content-derived id: xxhash64 over the packed identity tuple,
/// formatted as 16 lowercase hex digits. The layout is fixed (8-byte job,
/// 1-byte kind, 8-byte identity, little-endian) so ids survive restarts
/// and are comparable across deployments.
[[nodiscard]] std::string derive_id(std::uint64_t job, std::uint8_t kind,
                                    std::uint64_t identity) {
  unsigned char buf[17];
  std::memcpy(buf, &job, 8);
  buf[8] = kind;
  std::memcpy(buf + 9, &identity, 8);
  const std::uint64_t h = xxhash64(buf, sizeof(buf));
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  return {hex, 16};
}

void add_origin(std::string& line, std::uint8_t kind, std::uint64_t identity) {
  line += ",\"kind\":\"";
  line += to_string(static_cast<CulpritKind>(kind));
  line += "\",\"origin\":{";
  switch (static_cast<CulpritKind>(kind)) {
    case CulpritKind::kRank:
      line += "\"gpu\":" + std::to_string(identity);
      break;
    case CulpritKind::kDpGroup:
      line += "\"dp_group\":" + std::to_string(identity);
      break;
    case CulpritKind::kSwitch:
      line += "\"switch\":" + std::to_string(identity);
      break;
  }
  line += '}';
}

}  // namespace

IncidentJournal::IncidentJournal(JournalOptions options)
    : options_(options) {
  if (options_.resolve_after_windows == 0) {
    options_.resolve_after_windows = 1;
  }
}

std::string& IncidentJournal::next_line() {
  lines_ += '\n';
  ++num_events_;
  return lines_;
}

void IncidentJournal::emit_resolve(const Key& key, const OpenState& st,
                                   std::size_t at_window, TimeNs at_time) {
  (void)key;
  std::string& out = next_line();
  out += "{\"event\":\"resolve\",\"id\":\"" + st.id + "\"";
  out += ",\"window\":" + std::to_string(at_window);
  out += ",\"time_ns\":" + std::to_string(at_time);
  out += ",\"first_window\":" + std::to_string(st.first_window);
  out += ",\"last_window\":" + std::to_string(st.last_window);
  out += ",\"windows_active\":" + std::to_string(st.windows_active);
  out += ",\"confidence_min\":";
  write_double(out, st.confidence_min);
  out += ",\"confidence_max\":";
  write_double(out, st.confidence_max);
  out += ",\"confidence_last\":";
  write_double(out, st.confidence_last);
  out += "}";
}

void IncidentJournal::add_window(const WindowExportView& view) {
  if (view.report == nullptr) return;
  const std::size_t w = window_index_++;
  last_window_end_ = view.window.end;

  // Deduplicate this window's incidents by identity: the same fault can
  // surface as several step-range incidents in one window.
  std::map<Key, WindowAgg> seen;
  for (const AttributedIncident& inc : view.report->attribution.incidents) {
    if (inc.culprits.empty()) continue;
    const Culprit& origin = inc.culprits.front();
    Key key;
    if (inc.job.valid()) {
      key.job = kClusterJob;  // fallback when the owning job is not found
      for (std::size_t j = 0; j < view.report->jobs.size(); ++j) {
        if (view.report->jobs[j].id == inc.job) {
          key.job = stable_job_id(view, j);
          break;
        }
      }
    } else {
      key.job = kClusterJob;
    }
    key.kind = static_cast<std::uint8_t>(origin.kind);
    switch (origin.kind) {
      case CulpritKind::kRank:
        key.identity = origin.gpu.value();
        break;
      case CulpritKind::kDpGroup:
        key.identity = origin.dp_group_index;
        break;
      case CulpritKind::kSwitch:
        key.identity = origin.switch_id.value();
        break;
    }

    const auto [it, fresh] = seen.try_emplace(key);
    WindowAgg& agg = it->second;
    if (fresh) {
      agg.step_begin = inc.step_begin;
      agg.step_end = inc.step_end;
      agg.confidence = inc.confidence;
      agg.score = origin.score;
      agg.victims = inc.victims.size();
      agg.culprits = inc.culprits.size();
    } else {
      agg.step_begin = std::min(agg.step_begin, inc.step_begin);
      agg.step_end = std::max(agg.step_end, inc.step_end);
      agg.confidence = std::max(agg.confidence, inc.confidence);
      agg.score = std::max(agg.score, origin.score);
      agg.victims += inc.victims.size();
      agg.culprits = std::max<std::uint64_t>(agg.culprits,
                                             inc.culprits.size());
    }
  }

  // Resolve incidents absent long enough (before this window's opens, so
  // a re-appearing fault reads resolve -> open, a new lifecycle).
  std::vector<Key> resolved;
  for (const auto& [key, st] : open_) {
    if (seen.contains(key)) continue;
    if (w - st.last_window >= options_.resolve_after_windows) {
      emit_resolve(key, st, w, view.window.begin);
      resolved.push_back(key);
    }
  }
  for (const Key& key : resolved) open_.erase(key);

  for (const auto& [key, agg] : seen) {
    auto it = open_.find(key);
    if (it == open_.end()) {
      OpenState st;
      st.id = derive_id(key.job, key.kind, key.identity);
      st.first_window = w;
      st.last_window = w;
      st.windows_active = 1;
      st.last_seen_end = view.window.end;
      st.confidence_last = agg.confidence;
      st.confidence_min = agg.confidence;
      st.confidence_max = agg.confidence;
      st.victims_last = agg.victims;

      std::string& out = next_line();
      out += "{\"event\":\"open\",\"id\":\"" + st.id + "\"";
      out += ",\"window\":" + std::to_string(w);
      out += ",\"time_ns\":" + std::to_string(view.window.begin);
      if (key.job == kClusterJob) {
        out += ",\"job\":null";
      } else {
        out += ",\"job\":" + std::to_string(key.job);
      }
      add_origin(out, key.kind, key.identity);
      out += ",\"score\":";
      write_double(out, agg.score);
      out += ",\"step_begin\":" + std::to_string(agg.step_begin);
      out += ",\"step_end\":" + std::to_string(agg.step_end);
      out += ",\"confidence\":";
      write_double(out, agg.confidence);
      out += ",\"victims\":" + std::to_string(agg.victims);
      out += ",\"culprits\":" + std::to_string(agg.culprits);
      out += "}";

      open_.emplace(key, std::move(st));
    } else {
      OpenState& st = it->second;
      const double conf_delta = agg.confidence - st.confidence_last;
      const auto victims_delta =
          static_cast<std::int64_t>(agg.victims) -
          static_cast<std::int64_t>(st.victims_last);
      st.last_window = w;
      ++st.windows_active;
      st.last_seen_end = view.window.end;
      st.confidence_last = agg.confidence;
      st.confidence_min = std::min(st.confidence_min, agg.confidence);
      st.confidence_max = std::max(st.confidence_max, agg.confidence);
      st.victims_last = agg.victims;

      std::string& out = next_line();
      out += "{\"event\":\"update\",\"id\":\"" + st.id + "\"";
      out += ",\"window\":" + std::to_string(w);
      out += ",\"time_ns\":" + std::to_string(view.window.begin);
      out += ",\"confidence\":";
      write_double(out, agg.confidence);
      out += ",\"confidence_delta\":";
      write_double(out, conf_delta);
      out += ",\"victims\":" + std::to_string(agg.victims);
      out += ",\"victims_delta\":" + std::to_string(victims_delta);
      out += ",\"windows_active\":" + std::to_string(st.windows_active);
      out += ",\"step_begin\":" + std::to_string(agg.step_begin);
      out += ",\"step_end\":" + std::to_string(agg.step_end);
      out += "}";
    }
  }
}

void IncidentJournal::finish() {
  if (finished_) return;
  finished_ = true;
  for (const auto& [key, st] : open_) {
    emit_resolve(key, st, window_index_, last_window_end_);
  }
  open_.clear();
}

void IncidentJournal::write_jsonl(std::ostream& os) const {
  os << "{\"schema_version\":1,\"stream\":\"incident_journal\"}";
  os << lines_;
  os << '\n';
}

}  // namespace llmprism
