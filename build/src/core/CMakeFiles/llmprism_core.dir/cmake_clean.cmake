file(REMOVE_RECURSE
  "CMakeFiles/llmprism_core.dir/comm_type.cpp.o"
  "CMakeFiles/llmprism_core.dir/comm_type.cpp.o.d"
  "CMakeFiles/llmprism_core.dir/diagnosis.cpp.o"
  "CMakeFiles/llmprism_core.dir/diagnosis.cpp.o.d"
  "CMakeFiles/llmprism_core.dir/job_recognition.cpp.o"
  "CMakeFiles/llmprism_core.dir/job_recognition.cpp.o.d"
  "CMakeFiles/llmprism_core.dir/monitor.cpp.o"
  "CMakeFiles/llmprism_core.dir/monitor.cpp.o.d"
  "CMakeFiles/llmprism_core.dir/parallelism_inference.cpp.o"
  "CMakeFiles/llmprism_core.dir/parallelism_inference.cpp.o.d"
  "CMakeFiles/llmprism_core.dir/prism.cpp.o"
  "CMakeFiles/llmprism_core.dir/prism.cpp.o.d"
  "CMakeFiles/llmprism_core.dir/render.cpp.o"
  "CMakeFiles/llmprism_core.dir/render.cpp.o.d"
  "CMakeFiles/llmprism_core.dir/timeline.cpp.o"
  "CMakeFiles/llmprism_core.dir/timeline.cpp.o.d"
  "libllmprism_core.a"
  "libllmprism_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmprism_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
