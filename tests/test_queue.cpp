// Differential tests for the two shard ingest queues (serve/queue.hpp):
// the mutex+condvar deque and the lock-free MPSC ring must be
// behaviorally interchangeable — same FIFO guarantee per producer, same
// capacity bound, same blocking push / drain-after-close semantics —
// because ServeConfig::queue_impl switches between them at runtime. The
// multi-producer stress cases double as the TSan workload (this binary
// runs in the TSan CI job).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "llmprism/serve/queue.hpp"

namespace llmprism::serve {
namespace {

class QueueTest : public ::testing::TestWithParam<QueueImpl> {
 protected:
  [[nodiscard]] std::unique_ptr<BoundedQueue<std::uint64_t>> make(
      std::size_t capacity) const {
    return make_queue<std::uint64_t>(GetParam(), capacity);
  }
};

TEST_P(QueueTest, FifoSingleProducer) {
  const auto q = make(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const PushOutcome outcome = q->push(i);
    EXPECT_TRUE(outcome.accepted);
    EXPECT_FALSE(outcome.blocked) << "capacity 16 must not block at depth "
                                  << i;
  }
  EXPECT_EQ(q->depth(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::optional<std::uint64_t> item = q->pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(q->depth(), 0u);
}

TEST_P(QueueTest, PushAfterCloseIsRejected) {
  const auto q = make(4);
  EXPECT_TRUE(q->push(1).accepted);
  q->close();
  EXPECT_FALSE(q->push(2).accepted);
}

TEST_P(QueueTest, PopDrainsRemainingItemsAfterClose) {
  const auto q = make(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q->push(i).accepted);
  }
  q->close();
  for (std::uint64_t i = 0; i < 5; ++i) {
    const std::optional<std::uint64_t> item = q->pop();
    ASSERT_TRUE(item.has_value()) << "item " << i << " lost at close";
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(q->pop().has_value()) << "drained+closed pop must signal exit";
  EXPECT_FALSE(q->pop().has_value()) << "...and stay signalled";
}

TEST_P(QueueTest, PopBlocksUntilPushArrives) {
  const auto q = make(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const std::optional<std::uint64_t> item = q->pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, 42u);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load()) << "pop returned before any push";
  ASSERT_TRUE(q->push(42).accepted);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST_P(QueueTest, FullQueueBlocksProducerUntilPop) {
  // The ring rounds capacity up to a power of two, so use one (4) where
  // both impls bound identically.
  const auto q = make(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(q->push(i).accepted);
  }
  std::atomic<bool> accepted{false};
  std::atomic<bool> blocked{false};
  std::thread producer([&] {
    const PushOutcome outcome = q->push(99);
    blocked.store(outcome.blocked);
    accepted.store(outcome.accepted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(accepted.load()) << "push must block while full";
  ASSERT_TRUE(q->pop().has_value());
  producer.join();
  EXPECT_TRUE(accepted.load());
  EXPECT_TRUE(blocked.load()) << "a blocking push must report itself";
  // FIFO across the block: the remaining original items precede 99.
  for (std::uint64_t i = 1; i < 4; ++i) {
    EXPECT_EQ(q->pop(), std::optional<std::uint64_t>(i));
  }
  EXPECT_EQ(q->pop(), std::optional<std::uint64_t>(99));
}

TEST_P(QueueTest, CloseUnblocksAFullProducer) {
  const auto q = make(2);
  ASSERT_TRUE(q->push(0).accepted);
  ASSERT_TRUE(q->push(1).accepted);
  std::atomic<bool> done{false};
  std::atomic<bool> accepted{true};
  std::thread producer([&] {
    accepted.store(q->push(2).accepted);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  q->close();
  producer.join();
  EXPECT_FALSE(accepted.load()) << "a push released by close drops its item";
}

// The daemon's actual shape: several reader threads feeding one shard
// worker through a small queue, with producers outrunning the consumer
// so the backpressure path is exercised. Every pushed item must arrive
// exactly once, and each producer's own items must arrive in its send
// order (per-producer FIFO is what keeps one connection's chunks
// analyzed in order).
TEST_P(QueueTest, MpscStressDeliversEverythingInPerProducerOrder) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  const auto q = make(8);  // small: forces blocking pushes

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // Tag: producer in the high bits, sequence in the low.
        ASSERT_TRUE(q->push((static_cast<std::uint64_t>(p) << 32) | i)
                        .accepted);
      }
    });
  }

  std::vector<std::vector<std::uint64_t>> seen(kProducers);
  std::thread consumer([&] {
    for (std::uint64_t n = 0; n < kProducers * kPerProducer; ++n) {
      const std::optional<std::uint64_t> item = q->pop();
      ASSERT_TRUE(item.has_value());
      seen[*item >> 32].push_back(*item & 0xffffffffu);
    }
  });
  for (std::thread& t : producers) t.join();
  consumer.join();

  for (std::size_t p = 0; p < kProducers; ++p) {
    ASSERT_EQ(seen[p].size(), kPerProducer) << "producer " << p;
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(seen[p][i], i) << "producer " << p << " reordered";
    }
  }
  EXPECT_EQ(q->depth(), 0u);
  q->close();
  EXPECT_FALSE(q->pop().has_value());
}

// Producers racing close(): whatever was accepted before the close must
// still be drained — no accepted item may vanish.
TEST_P(QueueTest, NoAcceptedItemLostAcrossClose) {
  constexpr std::size_t kProducers = 4;
  const auto q = make(8);
  std::atomic<std::uint64_t> pushed{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < 10000; ++i) {
        if (!q->push((static_cast<std::uint64_t>(p) << 32) | i).accepted) {
          return;  // closed underneath us
        }
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::atomic<std::uint64_t> popped{0};
  std::thread consumer([&] {
    while (q->pop().has_value()) {
      popped.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  q->close();
  for (std::thread& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(popped.load(), pushed.load())
      << "accepted-but-undrained items were lost at shutdown";
}

TEST_P(QueueTest, MoveOnlyPayload) {
  const auto q = make_queue<std::unique_ptr<std::uint64_t>>(GetParam(), 4);
  ASSERT_TRUE(q->push(std::make_unique<std::uint64_t>(7)).accepted);
  const auto item = q->pop();
  ASSERT_TRUE(item.has_value());
  ASSERT_NE(*item, nullptr);
  EXPECT_EQ(**item, 7u);
}

INSTANTIATE_TEST_SUITE_P(Impls, QueueTest,
                         ::testing::Values(QueueImpl::kMutex,
                                           QueueImpl::kLockFree),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(QueueImplTest, ParseRoundTrips) {
  EXPECT_EQ(parse_queue_impl("mutex"), QueueImpl::kMutex);
  EXPECT_EQ(parse_queue_impl("lockfree"), QueueImpl::kLockFree);
  EXPECT_EQ(parse_queue_impl("bogus"), std::nullopt);
  EXPECT_EQ(to_string(QueueImpl::kMutex), "mutex");
  EXPECT_EQ(to_string(QueueImpl::kLockFree), "lockfree");
}

// The ring masks rather than divides, so capacity rounds up to a power
// of two; the documented contract is "at least the requested capacity".
TEST(QueueImplTest, RingRoundsCapacityUp) {
  MpscRingQueue<std::uint64_t> q(5);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(q.push(i).accepted) << "slot " << i << " of the rounded ring";
  }
  EXPECT_EQ(q.depth(), 8u);
  q.close();
}

}  // namespace
}  // namespace llmprism::serve
