#include "llmprism/serve/frame.hpp"

#include <cstring>
#include <stdexcept>

namespace llmprism::serve {

namespace {

template <typename T>
void put(std::byte* out, std::size_t offset, T v) {
  std::memcpy(out + offset, &v, sizeof(v));
}

template <typename T>
T get(std::span<const std::byte> buf, std::size_t offset) {
  T v;
  std::memcpy(&v, buf.data() + offset, sizeof(v));
  return v;
}

}  // namespace

void encode_frame_header(const FrameHeader& header,
                         std::byte out[kFrameHeaderSize]) {
  std::memcpy(out, kFrameMagic, sizeof(kFrameMagic));
  put(out, 4, header.version);
  put(out, 6, static_cast<std::uint16_t>(header.type));
  put(out, 8, header.stream_id);
  put(out, 16, header.payload_bytes);
}

FrameHeader decode_frame_header(std::span<const std::byte> buf) {
  if (buf.size() < kFrameHeaderSize) {
    throw std::runtime_error("frame: short header (" +
                             std::to_string(buf.size()) + " bytes)");
  }
  if (std::memcmp(buf.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    throw std::runtime_error("frame: bad magic (framing lost)");
  }
  FrameHeader h;
  h.version = get<std::uint16_t>(buf, 4);
  if (h.version != kFrameVersion) {
    throw std::runtime_error("frame: unsupported version " +
                             std::to_string(h.version));
  }
  h.type = static_cast<FrameType>(get<std::uint16_t>(buf, 6));
  h.stream_id = get<std::uint64_t>(buf, 8);
  h.payload_bytes = get<std::uint64_t>(buf, 16);
  if (h.payload_bytes > kMaxFramePayload) {
    throw std::runtime_error("frame: payload too large (" +
                             std::to_string(h.payload_bytes) + " bytes)");
  }
  return h;
}

std::string encode_frame(FrameType type, std::uint64_t stream_id,
                         std::string_view payload) {
  FrameHeader h;
  h.type = type;
  h.stream_id = stream_id;
  h.payload_bytes = payload.size();
  std::byte head[kFrameHeaderSize];
  encode_frame_header(h, head);
  std::string out(reinterpret_cast<const char*>(head), kFrameHeaderSize);
  out.append(payload);
  return out;
}

std::string encode_ack(std::uint64_t stream_id, const AckPayload& ack) {
  char payload[24];
  std::memcpy(payload, &ack.flows_accepted, 8);
  std::memcpy(payload + 8, &ack.queue_depth, 8);
  std::memcpy(payload + 16, &ack.backpressure_waits, 8);
  return encode_frame(FrameType::kAck, stream_id,
                      std::string_view(payload, sizeof(payload)));
}

AckPayload decode_ack(std::span<const std::byte> payload) {
  if (payload.size() != 24) {
    throw std::runtime_error("frame: ack payload must be 24 bytes, got " +
                             std::to_string(payload.size()));
  }
  AckPayload ack;
  ack.flows_accepted = get<std::uint64_t>(payload, 0);
  ack.queue_depth = get<std::uint64_t>(payload, 8);
  ack.backpressure_waits = get<std::uint64_t>(payload, 16);
  return ack;
}

}  // namespace llmprism::serve
