#include "llmprism/baseline/eval.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace llmprism {

JobRecognitionScore score_job_recognition(const JobRecognitionResult& result,
                                          std::span<const JobTruth> truth) {
  JobRecognitionScore score;
  std::set<std::vector<GpuId>> true_sets;
  for (const JobTruth& t : truth) {
    std::vector<GpuId> gpus = t.gpus;
    std::sort(gpus.begin(), gpus.end());
    true_sets.insert(std::move(gpus));
  }
  score.true_jobs = true_sets.size();
  score.recognized_jobs = result.jobs.size();
  for (const RecognizedJob& job : result.jobs) {
    if (true_sets.count(job.gpus) != 0) {
      ++score.exact_matches;
    } else {
      ++score.merged_or_split;
    }
  }
  return score;
}

CommTypeScore score_comm_type(std::span<const PairClassification> pairs,
                              const JobTruth& truth,
                              bool use_pre_refinement) {
  std::unordered_map<GpuPair, CommType> observed;
  observed.reserve(pairs.size());
  for (const PairClassification& p : pairs) {
    observed.emplace(p.pair,
                     use_pre_refinement ? p.pre_refinement_type : p.type);
  }
  return score_comm_type_map(observed, truth);
}

CommTypeScore score_comm_type_map(
    const std::unordered_map<GpuPair, CommType>& types,
    const JobTruth& truth) {
  CommTypeScore score;
  for (const auto& [pair, true_type] : truth.pair_types) {
    const auto it = types.find(pair);
    if (it == types.end()) {
      ++score.missing_pairs;
      continue;
    }
    ++score.total_pairs;
    if (it->second == true_type) {
      ++score.correct;
    } else if (true_type == CommType::kDP) {
      ++score.dp_as_pp;
    } else {
      ++score.pp_as_dp;
    }
  }
  return score;
}

TimelineScore score_timelines(std::span<const GpuTimeline> timelines,
                              const JobTruth& truth) {
  TimelineScore score;
  double duration_error_sum = 0.0;
  double boundary_offset_sum = 0.0;
  std::size_t duration_samples = 0;
  std::size_t boundary_samples = 0;

  // GPU -> rank within the job.
  std::unordered_map<GpuId, std::size_t> rank_of;
  for (std::size_t r = 0; r < truth.gpus.size(); ++r) {
    rank_of.emplace(truth.gpus[r], r);
  }

  for (const GpuTimeline& timeline : timelines) {
    const auto rit = rank_of.find(timeline.gpu);
    if (rit == rank_of.end()) continue;
    const std::size_t group = truth.dp_group_of_rank[rit->second];
    if (group >= truth.dp_group_spans.size()) continue;
    const auto& spans = truth.dp_group_spans[group];
    if (spans.empty() || timeline.steps.empty()) continue;
    ++score.ranks_scored;
    score.steps_true_total += spans.size();
    score.steps_reconstructed_total += timeline.steps.size();

    // Match each truth boundary (per-step dp_end of the rank's group) to
    // the nearest reconstructed step end within half the true step period.
    std::vector<TimeNs> recon_ends;
    recon_ends.reserve(timeline.steps.size());
    for (const ReconstructedStep& s : timeline.steps) {
      recon_ends.push_back(s.end);
    }
    const DurationNs tolerance =
        spans.size() > 1
            ? (spans.back().dp_end - spans.front().dp_end) /
                  static_cast<DurationNs>(2 * (spans.size() - 1))
            : kSecond;

    std::vector<std::ptrdiff_t> match(spans.size(), -1);
    for (std::size_t k = 0; k < spans.size(); ++k) {
      const TimeNs target = spans[k].dp_end;
      const auto it =
          std::lower_bound(recon_ends.begin(), recon_ends.end(), target);
      TimeNs best_gap = std::numeric_limits<TimeNs>::max();
      std::ptrdiff_t best = -1;
      if (it != recon_ends.end()) {
        best_gap = *it - target;
        best = it - recon_ends.begin();
      }
      if (it != recon_ends.begin()) {
        const TimeNs gap = target - *(it - 1);
        if (gap < best_gap) {
          best_gap = gap;
          best = it - recon_ends.begin() - 1;
        }
      }
      if (best >= 0 && best_gap <= tolerance) {
        match[k] = best;
        ++score.steps_matched;
        boundary_offset_sum += std::abs(to_seconds(recon_ends[
                                            static_cast<std::size_t>(best)] -
                                        target));
        ++boundary_samples;
      }
    }

    // Relative duration error between consecutive matched boundaries.
    for (std::size_t k = 1; k < spans.size(); ++k) {
      if (match[k] < 0 || match[k - 1] < 0 || match[k] == match[k - 1]) {
        continue;
      }
      const double true_dur =
          to_seconds(spans[k].dp_end - spans[k - 1].dp_end);
      const double recon_dur =
          to_seconds(recon_ends[static_cast<std::size_t>(match[k])] -
                     recon_ends[static_cast<std::size_t>(match[k - 1])]);
      if (true_dur <= 0.0) continue;
      const double err = std::abs(recon_dur - true_dur) / true_dur;
      duration_error_sum += err;
      score.max_duration_error = std::max(score.max_duration_error, err);
      ++duration_samples;
    }
  }

  if (duration_samples > 0) {
    score.mean_duration_error =
        duration_error_sum / static_cast<double>(duration_samples);
  }
  if (boundary_samples > 0) {
    score.mean_boundary_offset_s =
        boundary_offset_sum / static_cast<double>(boundary_samples);
  }
  return score;
}

}  // namespace llmprism
