// Tests for the packet-level ERSPAN collector substrate: packetization and
// flow-record reassembly, including the timeout/sampling artifacts the
// analysis layer must tolerate.
#include <gtest/gtest.h>

#include <numeric>

#include "llmprism/collector/collector.hpp"
#include "llmprism/collector/packetize.hpp"
#include "llmprism/core/comm_type.hpp"
#include "llmprism/baseline/eval.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

ClusterTopology topo() {
  return ClusterTopology::build({.num_machines = 8, .gpus_per_machine = 8,
                                 .machines_per_leaf = 4, .num_spines = 2});
}

FlowRecord flow(const ClusterTopology& t, TimeNs at, std::uint32_t src,
                std::uint32_t dst, std::uint64_t bytes, DurationNs dur) {
  FlowRecord f;
  f.start_time = at;
  f.src = GpuId(src);
  f.dst = GpuId(dst);
  f.bytes = bytes;
  f.duration = dur;
  f.switches = t.route(GpuId(src), GpuId(dst));
  return f;
}

// ---------------------------------------------------------------------------
// packetize

TEST(PacketizeTest, ValidatesConfig) {
  Rng rng(1);
  EXPECT_THROW(packetize(FlowTrace{}, {.mtu_bytes = 0}, rng),
               std::invalid_argument);
  EXPECT_THROW(packetize(FlowTrace{}, {.max_packets_per_flow = 0}, rng),
               std::invalid_argument);
  EXPECT_THROW(packetize(FlowTrace{}, {.pacing_jitter = 1.0}, rng),
               std::invalid_argument);
}

TEST(PacketizeTest, BytesAreConserved) {
  const auto t = topo();
  FlowTrace flows;
  flows.add(flow(t, 0, 0, 8, 100'000, kMillisecond));
  Rng rng(2);
  const auto packets = packetize(flows, {}, rng);
  ASSERT_FALSE(packets.empty());
  std::uint64_t total = 0;
  for (const PacketRecord& p : packets) total += p.bytes;
  EXPECT_EQ(total, 100'000u);
}

TEST(PacketizeTest, PacketCountRespectsMtuAndCap) {
  const auto t = topo();
  Rng rng(3);
  FlowTrace small;
  small.add(flow(t, 0, 0, 8, 10'000, kMillisecond));  // 3 MTUs
  EXPECT_EQ(packetize(small, {}, rng).size(), 3u);

  FlowTrace huge;
  huge.add(flow(t, 0, 0, 8, 64ull << 20, kMillisecond));  // >> cap
  PacketizeConfig cfg;
  cfg.max_packets_per_flow = 16;
  EXPECT_EQ(packetize(huge, cfg, rng).size(), 16u);
}

TEST(PacketizeTest, PacketsSpanTheFlowDuration) {
  const auto t = topo();
  FlowTrace flows;
  flows.add(flow(t, 1000, 0, 8, 40'000, kMillisecond));
  Rng rng(4);
  const auto packets = packetize(flows, {}, rng);
  ASSERT_GE(packets.size(), 2u);
  EXPECT_EQ(packets.front().timestamp, 1000);
  EXPECT_EQ(packets.back().timestamp, 1000 + kMillisecond);
}

TEST(PacketizeTest, IntraMachineFlowsEmitNothing) {
  const auto t = topo();
  FlowTrace flows;
  flows.add(flow(t, 0, 0, 1, 100'000, kMillisecond));  // same machine
  Rng rng(5);
  EXPECT_TRUE(packetize(flows, {}, rng).empty());
}

TEST(PacketizeTest, OutputIsSorted) {
  const auto t = topo();
  FlowTrace flows;
  for (int i = 0; i < 10; ++i) {
    flows.add(flow(t, i * 100, 0, 8, 50'000, kMillisecond));
  }
  Rng rng(6);
  const auto packets = packetize(flows, {}, rng);
  EXPECT_TRUE(std::is_sorted(packets.begin(), packets.end(),
                             PacketTimestampLess{}));
}

// ---------------------------------------------------------------------------
// collect_flows

TEST(CollectorTest, ValidatesConfig) {
  const auto t = topo();
  Rng rng(7);
  EXPECT_THROW(collect_flows({}, t, {.idle_timeout = 0}, rng),
               std::invalid_argument);
  EXPECT_THROW(collect_flows({}, t, {.sampling_ratio = 0.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(collect_flows({}, t, {.sampling_ratio = 1.5}, rng),
               std::invalid_argument);
}

TEST(CollectorTest, RoundTripReconstructsFlows) {
  // Two well-separated flows survive packetize -> collect intact.
  const auto t = topo();
  FlowTrace flows;
  flows.add(flow(t, 0, 0, 8, 100'000, kMillisecond));
  flows.add(flow(t, kSecond, 0, 8, 200'000, 2 * kMillisecond));
  Rng rng(8);
  const auto packets = packetize(flows, {.pacing_jitter = 0.0}, rng);
  const auto back = collect_flows(packets, t, {}, rng);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].start_time, 0);
  EXPECT_EQ(back[0].bytes, 100'000u);
  EXPECT_NEAR(static_cast<double>(back[0].duration),
              static_cast<double>(kMillisecond), 1e5);
  EXPECT_EQ(back[1].bytes, 200'000u);
  EXPECT_EQ(back[0].switches, flows[0].switches);
}

TEST(CollectorTest, CoarseIdleTimeoutMergesBackToBackFlows) {
  // Two flows 2 ms apart: a 10 ms idle timeout merges them into one record
  // with summed bytes — the aggregation artifact that destroys the DP
  // multi-size signature.
  const auto t = topo();
  FlowTrace flows;
  flows.add(flow(t, 0, 0, 8, 100'000, kMillisecond));
  flows.add(flow(t, 3 * kMillisecond, 0, 8, 200'000, kMillisecond));
  Rng rng(9);
  const auto packets = packetize(flows, {.pacing_jitter = 0.0}, rng);
  CollectorConfig cfg;
  cfg.idle_timeout = 10 * kMillisecond;
  const auto merged = collect_flows(packets, t, cfg, rng);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].bytes, 300'000u);

  cfg.idle_timeout = 500 * kMicrosecond;
  const auto split = collect_flows(packets, t, cfg, rng);
  EXPECT_EQ(split.size(), 2u);
}

TEST(CollectorTest, ActiveTimeoutCutsLongFlows) {
  const auto t = topo();
  FlowTrace flows;
  flows.add(flow(t, 0, 0, 8, 1'000'000, kSecond));  // 1 s long flow
  Rng rng(10);
  PacketizeConfig pk;
  pk.max_packets_per_flow = 64;
  pk.pacing_jitter = 0.0;
  const auto packets = packetize(flows, pk, rng);
  CollectorConfig cfg;
  cfg.idle_timeout = 200 * kMillisecond;  // > packet gap (1s/63 = 16 ms)
  cfg.active_timeout = 250 * kMillisecond;
  const auto records = collect_flows(packets, t, cfg, rng);
  EXPECT_GE(records.size(), 3u);  // 1 s / 250 ms cuts
  std::uint64_t total = 0;
  for (const FlowRecord& f : records) total += f.bytes;
  EXPECT_EQ(total, 1'000'000u);
}

TEST(CollectorTest, DirectionsAreSeparateRecords) {
  const auto t = topo();
  FlowTrace flows;
  flows.add(flow(t, 0, 0, 8, 100'000, kMillisecond));
  flows.add(flow(t, 0, 8, 0, 100'000, kMillisecond));  // reverse direction
  Rng rng(11);
  const auto packets = packetize(flows, {.pacing_jitter = 0.0}, rng);
  const auto back = collect_flows(packets, t, {}, rng);
  EXPECT_EQ(back.size(), 2u);
}

TEST(CollectorTest, SamplingScalesBytesBack) {
  const auto t = topo();
  FlowTrace flows;
  flows.add(flow(t, 0, 0, 8, 1'000'000, kMillisecond));
  Rng rng(12);
  PacketizeConfig pk;
  pk.max_packets_per_flow = 64;
  const auto packets = packetize(flows, pk, rng);
  CollectorConfig cfg;
  cfg.sampling_ratio = 0.5;
  const auto back = collect_flows(packets, t, cfg, rng);
  std::uint64_t total = 0;
  for (const FlowRecord& f : back) total += f.bytes;
  // Unbiased in expectation; allow generous tolerance for 64-packet flows.
  EXPECT_NEAR(static_cast<double>(total), 1e6, 4e5);
}

TEST(CollectorTest, EmptyInput) {
  const auto t = topo();
  Rng rng(13);
  EXPECT_TRUE(collect_flows({}, t, {}, rng).empty());
}

// ---------------------------------------------------------------------------
// End-to-end: simulator flows -> packets -> collector records -> Alg. 2.
// With sane collector settings the full pipeline still classifies all
// pairs correctly; with a burst-coarse idle timeout the DP signature
// degrades (quantified in bench_ablation).

TEST(CollectorEndToEndTest, AnalysisSurvivesThePacketPath) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 8, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 2, .pp = 2, .micro_batches = 4};
  job.num_steps = 10;
  cfg.jobs.push_back({job, {}});
  const auto sim = run_cluster_sim(cfg);

  Rng rng(99);
  const auto packets = packetize(sim.trace, {}, rng);
  const auto records = collect_flows(packets, sim.topology, {}, rng);
  ASSERT_GT(records.size(), 0u);

  const auto result = CommTypeIdentifier{}.identify(records);
  const auto score = score_comm_type(std::span(result.pairs), sim.jobs[0]);
  EXPECT_EQ(score.missing_pairs, 0u);
  EXPECT_DOUBLE_EQ(score.accuracy(), 1.0)
      << "dp_as_pp=" << score.dp_as_pp << " pp_as_dp=" << score.pp_as_dp;
}

}  // namespace
}  // namespace llmprism
