file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_schedule.dir/test_pipeline_schedule.cpp.o"
  "CMakeFiles/test_pipeline_schedule.dir/test_pipeline_schedule.cpp.o.d"
  "test_pipeline_schedule"
  "test_pipeline_schedule.pdb"
  "test_pipeline_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
