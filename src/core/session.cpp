#include "llmprism/core/session.hpp"

#include <string>
#include <utility>

#include "llmprism/obs/metrics.hpp"

namespace llmprism {

namespace {

/// Registry instruments for the session warm path; looked up once. These
/// are process-wide cumulative views of the per-session SessionCounters
/// (which stay exact and per-instance for tests and reports).
struct SessionMetrics {
  obs::Counter& windows;
  obs::Counter& jobs_created;
  obs::Counter& jobs_reused;
  obs::Counter& jobs_invalidated;
  obs::Counter& recognition_reuses;
  obs::Counter& recognition_rebuilds;
  obs::Counter& pairs_reused;
  obs::Counter& pairs_reclassified;
  obs::Counter& boundary_steps_held;
  obs::Counter& boundary_steps_carried;
  obs::Counter& ewma_alerts;
  obs::Gauge& jobs_tracked;
};

SessionMetrics& session_metrics() {
  static SessionMetrics metrics{
      obs::default_registry().counter("llmprism_session_windows_total",
                                      "Warm analysis windows completed"),
      obs::default_registry().counter(
          "llmprism_session_jobs_created_total",
          "Per-job session states minted (cache misses)"),
      obs::default_registry().counter(
          "llmprism_session_jobs_reused_total",
          "Per-job session states found warm (cache hits)"),
      obs::default_registry().counter(
          "llmprism_session_jobs_invalidated_total",
          "Per-job session states evicted or dropped"),
      obs::default_registry().counter(
          "llmprism_session_recognition_reuses_total",
          "Windows whose recognition partition + router were reused"),
      obs::default_registry().counter(
          "llmprism_session_recognition_rebuilds_total",
          "Windows whose pair set missed the recognition cache"),
      obs::default_registry().counter(
          "llmprism_session_pairs_reused_total",
          "Comm-type classifications reused from warm priors"),
      obs::default_registry().counter(
          "llmprism_session_pairs_reclassified_total",
          "Pairs re-run through full BOCD classification"),
      obs::default_registry().counter(
          "llmprism_session_boundary_steps_held_total",
          "Trailing DP bursts held back across a window boundary"),
      obs::default_registry().counter(
          "llmprism_session_boundary_steps_carried_total",
          "Held bursts completed in a later window"),
      obs::default_registry().counter(
          "llmprism_session_ewma_alerts_total",
          "Cross-step alerts raised from carried EWMA baselines"),
      obs::default_registry().gauge("llmprism_session_jobs_tracked",
                                    "Per-job states currently held"),
  };
  return metrics;
}

}  // namespace

std::vector<std::string> SessionConfig::validate() const {
  std::vector<std::string> errors;
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    errors.push_back("session: ewma_alpha must be in (0, 1], got " +
                     std::to_string(ewma_alpha));
  }
  if (ewma_min_samples < 2) {
    errors.push_back(
        "session: ewma_min_samples must be >= 2 (a spread estimate needs at "
        "least two observations), got " +
        std::to_string(ewma_min_samples));
  }
  if (boundary_hold < 0) {
    errors.push_back("session: boundary_hold must be >= 0, got " +
                     std::to_string(boundary_hold));
  }
  if (evict_after_windows < 1) {
    errors.push_back("session: evict_after_windows must be >= 1");
  }
  return errors;
}

PrismSession::PrismSession(SessionConfig config) : config_(config) {}

void PrismSession::begin_window(TimeNs window_end, bool hold_tail) {
  window_end_ = window_end;
  hold_tail_ = hold_tail;
  window_armed_ = true;
}

void PrismSession::invalidate() {
  const std::uint64_t dropped = job_states_.size();
  counters_.jobs_invalidated += dropped;
  session_metrics().jobs_invalidated.inc(dropped);
  job_states_.clear();
  recognition_valid_ = false;
  cached_pairs_.clear();
  router_.reset();
  session_metrics().jobs_tracked.set(0.0);
}

bool PrismSession::probe_recognition(const FlowTrace& trace) {
  probe_pairs_.clear();
  probe_pairs_.reserve(trace.size());
  for (const FlowRecord& f : trace) probe_pairs_.insert(f.pair());
  return finish_probe();
}

bool PrismSession::probe_recognition(const FlowView& view) {
  probe_pairs_.clear();
  probe_pairs_.reserve(view.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    probe_pairs_.insert(view.pair(i));
  }
  return finish_probe();
}

bool PrismSession::finish_probe() {
  // Exact pair-set equality: recognition is a pure function of the
  // undirected edge set (union-find + canonical machine-set merging), so a
  // matching set makes the cached partition provably identical — this is a
  // verified fast path, not a heuristic.
  if (recognition_valid_ && probe_pairs_ == cached_pairs_) {
    ++counters_.recognition_reuses;
    session_metrics().recognition_reuses.inc();
    return true;
  }
  ++counters_.recognition_rebuilds;
  session_metrics().recognition_rebuilds.inc();
  return false;
}

void PrismSession::store_recognition(const JobRecognitionResult& recognition) {
  cached_pairs_ = std::move(probe_pairs_);
  probe_pairs_ = {};
  recognition_ = recognition;
  router_.emplace(std::span<const RecognizedJob>(recognition_.jobs));
  recognition_valid_ = true;
}

SessionJobState& PrismSession::job_state(
    const std::vector<MachineId>& machines) {
  const auto it = job_states_.find(machines);
  SessionJobState* state;
  if (it != job_states_.end()) {
    ++counters_.jobs_reused;
    session_metrics().jobs_reused.inc();
    state = &it->second;
  } else {
    ++counters_.jobs_created;
    session_metrics().jobs_created.inc();
    state = &job_states_.emplace(machines, SessionJobState{}).first->second;
  }
  state->last_seen_window = window_index_;
  // Reset the per-window outcome fields here rather than trusting each
  // stage to do it: a disabled stage (e.g. reuse_comm_types = false) never
  // touches its carry, and fold_job must not re-count last window's work.
  state->comm.pairs_reused = 0;
  state->comm.pairs_reclassified = 0;
  state->timeline.steps_held = 0;
  state->timeline.steps_carried_in = 0;
  state->ewma_alerts_last = 0;
  return *state;
}

void PrismSession::fold_job(const SessionJobState& state) {
  counters_.pairs_reused += state.comm.pairs_reused;
  counters_.pairs_reclassified += state.comm.pairs_reclassified;
  counters_.boundary_steps_held += state.timeline.steps_held;
  counters_.boundary_steps_carried += state.timeline.steps_carried_in;
  counters_.ewma_step_alerts += state.ewma_alerts_last;
  SessionMetrics& metrics = session_metrics();
  metrics.pairs_reused.inc(state.comm.pairs_reused);
  metrics.pairs_reclassified.inc(state.comm.pairs_reclassified);
  metrics.boundary_steps_held.inc(state.timeline.steps_held);
  metrics.boundary_steps_carried.inc(state.timeline.steps_carried_in);
  metrics.ewma_alerts.inc(state.ewma_alerts_last);
}

void PrismSession::finish_window() {
  // Evict jobs not observed for evict_after_windows windows: their carried
  // tails and baselines describe a tenant that left those machines, and a
  // new tenant must start cold.
  std::uint64_t evicted = 0;
  for (auto it = job_states_.begin(); it != job_states_.end();) {
    if (window_index_ - it->second.last_seen_window >=
        config_.evict_after_windows) {
      it = job_states_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  counters_.jobs_invalidated += evicted;
  ++counters_.windows;
  ++window_index_;
  window_armed_ = false;
  SessionMetrics& metrics = session_metrics();
  metrics.jobs_invalidated.inc(evicted);
  metrics.windows.inc();
  metrics.jobs_tracked.set(static_cast<double>(job_states_.size()));
}

}  // namespace llmprism
