// Fail-slow incident walkthrough: three faults are injected into a running
// cluster — a straggling GPU, a congested DP ring, and a degraded switch —
// and LLMPrism's three diagnosis dimensions (cross-step, cross-group,
// switch-level) localize each one from flow data alone.
//
// Run:  ./examples/congestion_alert
#include <iostream>
#include <set>

#include "llmprism/llmprism.hpp"

using namespace llmprism;

int main() {
  ClusterSimConfig sim_config;
  sim_config.topology = {.num_machines = 32,
                         .gpus_per_machine = 8,
                         .machines_per_leaf = 4,
                         .num_spines = 4};
  sim_config.seed = 11;

  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 8, .pp = 2, .micro_batches = 4};
  job.num_steps = 24;
  // Fault 1: GPU rank 17 thermal-throttles for steps 10-11.
  job.stragglers.push_back(
      {.rank = 17, .step_begin = 10, .step_end = 11, .slowdown = 2.5});
  // Fault 2: DP group (tp=3, pp=1) hits ring congestion for steps 16-18.
  job.slow_dp_groups.push_back(
      {.tp_idx = 3, .pp_idx = 1, .step_begin = 16, .step_end = 18,
       .slowdown = 3.0});
  sim_config.jobs.push_back({job, {}});

  // Fault 3: leaf switch 2 loses 70% of its bandwidth mid-run.
  sim_config.switch_faults.push_back(
      {SwitchId(2), TimeWindow{0, 10 * kMinute}, 0.3});

  std::cout << "simulating a 128-GPU job with 3 injected faults...\n";
  const ClusterSimResult sim = run_cluster_sim(sim_config);

  const Prism prism(sim.topology);
  const PrismReport report = prism.analyze(sim.trace);
  const JobAnalysis& analysis = report.jobs.front();

  std::cout << "\n--- cross-step diagnosis (straggler) ---\n";
  if (analysis.step_alerts.empty()) {
    std::cout << "no alerts\n";
  }
  // Alerts repeat per rank (synchronous training stalls everyone); print
  // the distinct flagged steps.
  std::set<std::size_t> flagged_steps;
  for (const StepAlert& a : analysis.step_alerts) {
    if (flagged_steps.insert(a.step_index).second) {
      std::printf(
          "  step %zu ran %.2f s against a %.2f s baseline (threshold %.2f s)\n",
          a.step_index, a.duration_s, a.mean_s, a.threshold_s);
    }
  }

  std::cout << "\n--- cross-group diagnosis (congested DP ring) ---\n";
  if (analysis.group_alerts.empty()) {
    std::cout << "no alerts\n";
  }
  for (const GroupAlert& a : analysis.group_alerts) {
    std::printf(
        "  DP group %zu in step %zu synced in %.3f s vs %.3f s across "
        "groups\n",
        a.group_index, a.step_index, a.duration_s, a.mean_s);
  }

  std::cout << "\n--- switch-level diagnosis (degraded leaf) ---\n";
  std::cout << "  per-switch average DP bandwidth (Gb/s):";
  for (const auto& [sw, bw] : report.switch_bandwidth_gbps) {
    std::printf(" sw%u=%.0f", sw.value(), bw);
  }
  std::cout << '\n';
  if (report.switch_bandwidth_alerts.empty()) {
    std::cout << "  no alerts\n";
  }
  for (const SwitchBandwidthAlert& a : report.switch_bandwidth_alerts) {
    std::printf(
        "  ALERT switch %u: %.0f Gb/s, %.0fx below the cluster norm of %.0f "
        "Gb/s\n",
        a.switch_id.value(), a.bandwidth_gbps,
        a.mean_gbps / a.bandwidth_gbps, a.mean_gbps);
  }

  std::cout << "\ninjected ground truth for comparison:\n";
  for (const InjectedAnomaly& a : sim.anomalies) {
    switch (a.kind) {
      case AnomalyKind::kStraggler:
        std::printf("  straggler rank %u, steps %u-%u, %.1fx\n",
                    a.rank.value(), a.step_begin, a.step_end, a.severity);
        break;
      case AnomalyKind::kSlowDpGroup:
        std::printf("  slow DP group %u, steps %u-%u, %.1fx\n",
                    a.dp_group_index, a.step_begin, a.step_end, a.severity);
        break;
      case AnomalyKind::kDegradedSwitch:
        std::printf("  degraded switch %u, %.1fx slower\n",
                    a.switch_id.value(), a.severity);
        break;
    }
  }
  return 0;
}
