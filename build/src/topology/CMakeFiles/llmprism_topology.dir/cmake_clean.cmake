file(REMOVE_RECURSE
  "CMakeFiles/llmprism_topology.dir/topology.cpp.o"
  "CMakeFiles/llmprism_topology.dir/topology.cpp.o.d"
  "libllmprism_topology.a"
  "libllmprism_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmprism_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
