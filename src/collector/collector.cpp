#include "llmprism/collector/collector.hpp"

#include <stdexcept>
#include <unordered_map>

namespace llmprism {

namespace {

/// Open flow-cache entry for one directed endpoint pair.
struct CacheEntry {
  TimeNs first_packet = 0;
  TimeNs last_packet = 0;
  std::uint64_t bytes = 0;
  std::size_t packets = 0;
};

/// Directed pair key (collectors key on the 5-tuple; direction matters).
struct DirectedPair {
  GpuId src;
  GpuId dst;
  friend constexpr bool operator==(const DirectedPair&,
                                   const DirectedPair&) = default;
};

struct DirectedPairHash {
  std::size_t operator()(const DirectedPair& p) const noexcept {
    return std::hash<GpuPair>{}(GpuPair(p.src, p.dst)) ^
           (p.src < p.dst ? 0x9e3779b9u : 0x7f4a7c15u);
  }
};

}  // namespace

FlowTrace collect_flows(std::span<const PacketRecord> packets,
                        const ClusterTopology& topology,
                        const CollectorConfig& config, Rng& rng) {
  if (config.idle_timeout <= 0 || config.active_timeout <= 0) {
    throw std::invalid_argument("collector: timeouts must be positive");
  }
  if (config.sampling_ratio <= 0.0 || config.sampling_ratio > 1.0) {
    throw std::invalid_argument("collector: sampling_ratio must be in (0,1]");
  }

  FlowTrace out;
  std::unordered_map<DirectedPair, CacheEntry, DirectedPairHash> cache;

  auto emit = [&](const DirectedPair& key, const CacheEntry& entry) {
    FlowRecord f;
    f.start_time = entry.first_packet;
    f.src = key.src;
    f.dst = key.dst;
    // Sampled collectors scale byte counts back up.
    f.bytes = static_cast<std::uint64_t>(
        static_cast<double>(entry.bytes) / config.sampling_ratio);
    f.duration = std::max<DurationNs>(1, entry.last_packet -
                                             entry.first_packet);
    f.switches = topology.route(key.src, key.dst);
    out.add(std::move(f));
  };

  for (const PacketRecord& pkt : packets) {
    if (config.sampling_ratio < 1.0 &&
        !rng.bernoulli(config.sampling_ratio)) {
      continue;
    }
    const DirectedPair key{pkt.src, pkt.dst};
    auto it = cache.find(key);
    if (it != cache.end()) {
      CacheEntry& entry = it->second;
      const bool idle_expired =
          pkt.timestamp - entry.last_packet > config.idle_timeout;
      const bool active_expired =
          pkt.timestamp - entry.first_packet > config.active_timeout;
      if (idle_expired || active_expired) {
        emit(key, entry);
        entry = CacheEntry{};
        entry.first_packet = pkt.timestamp;
      }
      entry.last_packet = pkt.timestamp;
      entry.bytes += pkt.bytes;
      ++entry.packets;
    } else {
      CacheEntry entry;
      entry.first_packet = pkt.timestamp;
      entry.last_packet = pkt.timestamp;
      entry.bytes = pkt.bytes;
      entry.packets = 1;
      cache.emplace(key, entry);
    }
  }
  // End of stream: flush every open record.
  for (const auto& [key, entry] : cache) {
    if (entry.packets > 0) emit(key, entry);
  }
  out.sort();
  return out;
}

}  // namespace llmprism
