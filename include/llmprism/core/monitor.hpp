// Continuous online monitoring (the paper's deployment mode: LLMPrism "has
// been deployed ... since Oct. 2024", analyzing the live flow feed window
// by window and alerting SREs).
//
// OnlineMonitor ingests flow batches as the collector delivers them,
// partitions time into fixed analysis windows, runs the full Prism pipeline
// on every completed window, and keeps job identities stable across
// windows (a tenant's job keeps its id as long as it occupies the same
// machines), so alerts can be attributed to long-running jobs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "llmprism/common/thread_pool.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/core/session.hpp"

namespace llmprism {

struct MonitorConfig {
  PrismConfig prism;
  /// Analysis window length.
  DurationNs window = kMinute;
  /// Flows may arrive out of order by up to this much; a window is closed
  /// only once the watermark (latest flow start seen) passes its end by
  /// this slack.
  DurationNs reorder_slack = kSecond;
  /// Carry warm state across windows through a PrismSession (see
  /// session.hpp): recognition/router reuse, comm-type priors, boundary-
  /// straddling step reconstruction, cross-window EWMA baselines. With
  /// carry the closed windows of one batch are analyzed sequentially in
  /// time order (the state is a chain); set false for the stateless mode,
  /// which analyzes a batch's windows concurrently and is bit-identical to
  /// the pre-session monitor.
  bool carry_state = true;
  /// Session tuning (used only when carry_state is true).
  SessionConfig session;

  /// Descriptive configuration errors (empty = valid; includes the nested
  /// prism and session configs). The OnlineMonitor constructor throws a
  /// std::invalid_argument listing every problem at once.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// A stable identity for a recognized job across windows.
using MonitorJobId = std::uint64_t;

/// Result of analyzing one completed window.
struct MonitorTick {
  TimeWindow window;
  PrismReport report;
  /// Stable job id for each entry of report.jobs (parallel vector).
  std::vector<MonitorJobId> job_ids;
};

/// Cumulative counters across the monitor's lifetime.
struct MonitorStats {
  std::size_t flows_ingested = 0;
  /// Flows that arrived after their window had already closed (beyond the
  /// reorder slack) and were discarded.
  std::size_t flows_dropped_late = 0;
  std::size_t windows_completed = 0;
  /// Distinct stable job identities ever minted. Ids are recycled across
  /// windows, so a value growing in step with windows_completed means the
  /// machine-set keys churn (identity tracking is not holding).
  std::size_t stable_ids_created = 0;
  std::size_t step_alerts = 0;
  std::size_t group_alerts = 0;
  std::size_t switch_bandwidth_alerts = 0;
  std::size_t switch_concurrency_alerts = 0;
  /// Windows each stable job was observed in.
  std::unordered_map<MonitorJobId, std::size_t> job_windows;
};

class OnlineMonitor {
 public:
  explicit OnlineMonitor(const ClusterTopology& topology,
                         MonitorConfig config = {});

  /// Feed a batch of flows (any order within the reorder slack). Returns
  /// one tick per window the batch completed, in time order. When the
  /// configured `prism.num_threads` allows, the completed windows of one
  /// batch are analyzed concurrently; ticks, stable job ids, and stats are
  /// still produced in time order and are identical to sequential ingestion.
  std::vector<MonitorTick> ingest(const FlowTrace& batch);

  /// Columnar overload — the streaming path for mapped LFT input: rows are
  /// gathered straight from the view's columns into the reorder buffer, no
  /// FlowRecord is materialized. Identical ticks for identical flows.
  std::vector<MonitorTick> ingest(const FlowView& batch);

  /// Close and analyze the current partial window (end of feed / shutdown).
  /// Returns nothing if no flows are buffered.
  std::optional<MonitorTick> flush();

  [[nodiscard]] const MonitorStats& stats() const { return stats_; }

  /// Number of distinct jobs ever observed.
  [[nodiscard]] std::size_t jobs_seen() const { return job_ids_.size(); }

  /// The warm-state session (null when carry_state is false). Exposed for
  /// observability: counters() reports cache hits, invalidations, carried
  /// boundary steps, and EWMA alerts.
  [[nodiscard]] const PrismSession* session() const { return session_.get(); }

  /// Drop all carried warm state (e.g. after a known cluster re-shuffle);
  /// the next window runs cold and re-seeds. No-op without carry_state.
  void invalidate_session() {
    if (session_) session_->invalidate();
  }

 private:
  /// Snapshot codec (core/snapshot.hpp): serializes the reorder buffer,
  /// window clock, stable-id map, stats, and the embedded session so a
  /// restarted monitor resumes warm with byte-identical subsequent ticks.
  friend struct SnapshotAccess;

  MonitorTick analyze_window(TimeWindow window, FlowColumns flows);
  /// Stable-id assignment + stats, applied to ticks strictly in time order
  /// (this is what keeps ids independent of window-analysis scheduling).
  void finish_tick(MonitorTick& tick);
  MonitorJobId stable_id_for(const RecognizedJob& job);

  const ClusterTopology& topology_;
  MonitorConfig config_;
  Prism prism_;
  /// Warm cross-window state; null when carry_state is false.
  std::unique_ptr<PrismSession> session_;
  /// Fan-out pool for the completed windows of one batch; null when the
  /// configuration is single-threaded or carry_state serializes windows.
  std::unique_ptr<ThreadPool> window_pool_;

  /// Reorder buffer, columnar; invariant: always sorted (each ingest batch
  /// is sorted once and merged in, so window slicing is pure binary search
  /// over the start_ns column yielding zero-copy FlowView subviews).
  FlowColumns buffer_;
  bool window_origin_set_ = false;
  TimeNs window_begin_ = 0;   ///< begin of the oldest un-analyzed window
  TimeNs watermark_ = 0;      ///< latest flow start seen

  /// machine set -> stable id; the vector is copied only when a new
  /// identity is minted.
  std::unordered_map<std::vector<MachineId>, MonitorJobId, MachineSetHash>
      job_ids_;
  MonitorJobId next_job_id_ = 0;
  MonitorStats stats_;
};

}  // namespace llmprism
