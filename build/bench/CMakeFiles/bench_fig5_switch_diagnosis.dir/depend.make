# Empty dependencies file for bench_fig5_switch_diagnosis.
# This may be replaced when dependencies are built.
