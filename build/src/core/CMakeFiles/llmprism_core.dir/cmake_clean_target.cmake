file(REMOVE_RECURSE
  "libllmprism_core.a"
)
