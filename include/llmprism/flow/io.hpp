// Flow-trace serialization (CSV). The on-disk format mirrors what a
// production collector would export:
//
//   start_ns,src,dst,bytes,duration_ns,switches
//
// where `switches` is a ';'-joined hop list, e.g. "3;17;4". CRLF line
// endings and a final row without a trailing newline are accepted; rows
// with embedded NUL bytes are rejected with a per-line diagnostic.
//
// Parsing is chunk-parallel: the input buffer is split on newline
// boundaries into roughly per-core chunks, each chunk is decoded with
// allocation-free std::from_chars field parsing on the common thread pool,
// and the chunks are stitched back in file order. The result — trace
// order, error lines/messages, lines_read — is bit-identical to the
// serial (one-chunk) parse at every thread count, and a time-sorted file
// yields a born-sorted trace (the chunk traces are sorted runs whose
// ordered concatenation keeps the sortedness cache intact; zero physical
// sorts). The binary counterpart of this format lives in flow/lft.hpp.
#pragma once

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "llmprism/flow/trace.hpp"

namespace llmprism {

/// Write `trace` as CSV with a header row.
void write_csv(std::ostream& os, const FlowTrace& trace);

/// One rejected CSV row: the 1-based physical line number (blank lines and
/// the header count toward it, so the number matches what an editor shows)
/// and what was wrong with it.
struct ParseError {
  std::size_t line = 0;
  std::string message;
};

/// Outcome of a checked parse: every well-formed row, plus a diagnostic per
/// rejected one. A collector export with a few corrupt lines still yields
/// all its good flows — the caller decides whether errors are fatal.
struct ParseResult {
  FlowTrace trace;
  std::vector<ParseError> errors;
  /// Physical lines consumed (header and blank lines included).
  std::size_t lines_read = 0;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Tuning knobs for the chunk-parallel CSV decoder. The defaults fan out
/// over the hardware; every setting yields bit-identical ParseResults
/// (enforced by tests/test_csv_parallel.cpp).
struct CsvParseOptions {
  /// Threads for chunked parsing, PrismConfig-style: 0 = one per hardware
  /// thread, 1 = the serial reference path, N = exactly N.
  std::size_t num_threads = 0;
  /// Minimum bytes per chunk: inputs smaller than num_threads * this use
  /// fewer chunks (possibly one) — fan-out overhead only pays past it.
  std::size_t min_chunk_bytes = 256 * 1024;
};

/// Parse a CSV flow trace without throwing on malformed rows: bad rows are
/// reported in `errors` (1-based physical line numbers) and skipped. A
/// missing header is itself an error (no rows are parsed without one).
[[nodiscard]] ParseResult read_csv_checked(std::string_view buffer,
                                           const CsvParseOptions& options = {});

/// Stream variant: slurps the stream, then parses the buffer as above.
[[nodiscard]] ParseResult read_csv_checked(std::istream& is,
                                           const CsvParseOptions& options = {});

/// Parse a CSV flow trace (header row required). Thin wrapper over
/// read_csv_checked() that throws std::runtime_error naming the first bad
/// line on any malformed input.
[[nodiscard]] FlowTrace read_csv(std::istream& is,
                                 const CsvParseOptions& options = {});

/// Convenience file wrappers; throw std::runtime_error if the file cannot
/// be opened.
void write_csv_file(const std::string& path, const FlowTrace& trace);
[[nodiscard]] FlowTrace read_csv_file(const std::string& path,
                                      const CsvParseOptions& options = {});

}  // namespace llmprism
