// The end-to-end LLMPrism pipeline (paper Fig. 2):
//   (1) recognize training jobs            -> JobRecognizer  (Alg. 1)
//   (2) identify parallelism strategies    -> CommTypeIdentifier (Alg. 2)
//   (3) reconstruct per-GPU timelines      -> TimelineReconstructor
//   (4) multi-dimensional diagnosis        -> Diagnoser
//
// Input: the switch-level flow trace of the whole cluster over a time
// window, plus the physical topology. No tenant cooperation required.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "llmprism/common/thread_pool.hpp"
#include "llmprism/core/attribution.hpp"
#include "llmprism/core/comm_type.hpp"
#include "llmprism/core/diagnosis.hpp"
#include "llmprism/core/job_recognition.hpp"
#include "llmprism/core/parallelism_inference.hpp"
#include "llmprism/core/session.hpp"
#include "llmprism/core/timeline.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/flow/view.hpp"
#include "llmprism/topology/topology.hpp"

namespace llmprism {

struct PrismConfig {
  JobRecognitionConfig recognition;
  CommTypeConfig comm_type;
  TimelineConfig timeline;
  DiagnosisConfig diagnosis;
  AttributionConfig attribution;
  /// Timeline reconstruction dominates cost; disable when only job
  /// recognition / parallelism identification is needed.
  bool reconstruct_timelines = true;
  /// Trace every k-sigma alert back to a ranked root-cause candidate list
  /// (see attribution.hpp). Runs after diagnosis; needs timelines, so it
  /// is skipped when reconstruct_timelines is off.
  bool attribute = true;
  /// Threads for the per-job analysis fan-out: 0 = one per hardware thread,
  /// 1 = the exact sequential legacy path, n = that many. The report is
  /// identical for every value (see DESIGN.md, "Concurrency model");
  /// `tests/test_parallel_equivalence.cpp` enforces this.
  std::size_t num_threads = 0;

  /// Descriptive configuration errors (empty = valid). The Prism
  /// constructor calls this and throws std::invalid_argument listing every
  /// problem at once; CLI tools call it directly for friendlier output.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Full analysis of one recognized job.
struct JobAnalysis {
  JobId id;                 ///< index within this report
  RecognizedJob job;
  /// The job's flows (time-sorted, columnar). Exposes the FlowTrace read
  /// API (size / operator[] / value iteration); report consumers that
  /// need raw columns use trace.view().
  FlowColumns trace;
  CommTypeResult comm_types;
  /// The job's reconstructed 3D layout (tp/dp/pp/micro-batches).
  InferredParallelism inferred;
  std::vector<GpuTimeline> timelines;
  std::vector<StepAlert> step_alerts;
  std::vector<GroupAlert> group_alerts;
};

/// Deterministic self-telemetry of one analyze() call: what each stage
/// consumed, filtered, repaired and produced. Every field is an event
/// count — the same flows produce the same events no matter how the
/// per-job fan-out is scheduled, so the block is bit-identical across
/// `num_threads` values (enforced by tests/test_parallel_equivalence.cpp).
/// Wall-clock timings deliberately live elsewhere (the obs registry
/// histograms and trace spans), because they can never be
/// thread-count-invariant.
struct ReportTelemetry {
  // ---- flow routing ----
  std::uint64_t flows_total = 0;         ///< flows in the analyzed window
  std::uint64_t flows_routed = 0;        ///< attributed to a recognized job
  /// Of flows_routed: src was unattributed, recovered via the dst lookup.
  std::uint64_t flows_routed_via_dst = 0;
  std::uint64_t flows_unattributed = 0;  ///< no recognized job claims them

  // ---- communication-type identification (Alg. 2) ----
  std::uint64_t pairs_classified = 0;
  std::uint64_t pairs_dp = 0;
  std::uint64_t pairs_pp = 0;
  std::uint64_t refinement_flips = 0;  ///< PP→DP transitivity repairs
  std::uint64_t artifact_size_clusters = 0;
  std::uint64_t artifact_flows = 0;
  std::uint64_t artifact_segments = 0;

  // ---- BOCD gap segmentation (comm-type + timeline stages combined) ----
  std::uint64_t bocd_observations = 0;
  std::uint64_t bocd_boundaries = 0;
  std::uint64_t bocd_hard_resets = 0;

  // ---- timeline reconstruction ----
  std::uint64_t timelines_reconstructed = 0;
  std::uint64_t timeline_events = 0;
  std::uint64_t steps_reconstructed = 0;

  // ---- k-sigma diagnosis (cross-step, cross-group, switch-level) ----
  std::uint64_t ksigma_series = 0;
  std::uint64_t ksigma_points = 0;
  std::uint64_t ksigma_alerts = 0;

  // ---- root-cause attribution ----
  std::uint64_t incidents = 0;        ///< attributed incidents emitted
  std::uint64_t alerts_explained = 0; ///< alerts some incident accounts for
  std::uint64_t alerts_orphaned = 0;  ///< alerts no blame rule could explain

  ReportTelemetry& operator+=(const ReportTelemetry& other);
};

struct PrismReport {
  JobRecognitionResult recognition;
  std::vector<JobAnalysis> jobs;
  /// Fig. 5 series: average DP bandwidth per switch, cluster-wide.
  std::vector<std::pair<SwitchId, double>> switch_bandwidth_gbps;
  std::vector<SwitchBandwidthAlert> switch_bandwidth_alerts;
  std::vector<SwitchConcurrencyAlert> switch_concurrency_alerts;
  /// Root-cause attribution of every alert above (empty when
  /// PrismConfig::attribute is off); see attribution.hpp.
  AttributionResult attribution;
  /// Pipeline self-telemetry (deterministic event counts; see above).
  ReportTelemetry telemetry;
};

class Prism {
 public:
  explicit Prism(const ClusterTopology& topology, PrismConfig config = {});

  /// Analyze one window of cluster-wide flows end-to-end. Thread-safe:
  /// several threads may analyze different traces on one Prism (the
  /// OnlineMonitor does exactly that for concurrent windows).
  [[nodiscard]] PrismReport analyze(const FlowTrace& trace) const;

  /// Same, threading warm cross-window state through the pipeline (the
  /// incremental path — see session.hpp and DESIGN.md §9). With a null
  /// session this IS the cold overload, bit for bit. With a session, the
  /// caller must analyze consecutive windows of one feed in time order and
  /// not share the session between concurrent analyze() calls; the per-job
  /// fan-out inside one call still parallelizes. An un-armed session (no
  /// begin_window() call) is armed automatically with the trace's end and
  /// hold_tail = false.
  [[nodiscard]] PrismReport analyze(const FlowTrace& trace,
                                    PrismSession* session) const;

  /// Columnar entry point: analyze a non-owning SoA view — e.g. straight
  /// off a MappedFlowTrace (`mapped.view()`), zero flow-array copies on a
  /// sorted input. The report is byte-identical to the AoS overloads on
  /// the same flows; an unsorted view is argsort-gathered into sorted
  /// columns once (the boundary sort), never mutated in place.
  [[nodiscard]] PrismReport analyze(const FlowView& view) const;
  [[nodiscard]] PrismReport analyze(const FlowView& view,
                                    PrismSession* session) const;

  /// Resolved fan-out width (>= 1).
  [[nodiscard]] std::size_t num_threads() const;

 private:
  /// The pipeline body; `view` is known-sorted (the public entry points
  /// perform the one boundary sort when needed).
  [[nodiscard]] PrismReport analyze_sorted(const FlowView& view,
                                           PrismSession* session) const;

  const ClusterTopology& topology_;
  PrismConfig config_;
  /// Per-job fan-out pool; null in the single-threaded configuration.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace llmprism
