#include "llmprism/common/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace llmprism {

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::resolve(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one parallel_for: a work-stealing index counter. Every
/// participant (workers and the caller) claims the next unclaimed index
/// until the range is exhausted, so load imbalance between iterations is
/// absorbed automatically.
struct ForLoop {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  ///< first iteration failure; guarded by mu

  void run_indices() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        // Lock pairs with the waiting caller's predicate check, so the
        // final notify cannot slip between its check and its wait.
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const auto loop = std::make_shared<ForLoop>();
  loop->fn = &fn;
  loop->n = n;

  // One driver task per worker (capped by the iteration count minus the
  // caller's share). A driver arriving after the range is exhausted claims
  // an out-of-range index and returns immediately, so stale tasks are
  // harmless — `loop` is kept alive by the shared_ptr captures.
  const std::size_t drivers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t d = 0; d < drivers; ++d) {
      tasks_.emplace_back([loop] { loop->run_indices(); });
    }
  }
  cv_.notify_all();

  loop->run_indices();  // the calling thread participates

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(loop->mu);
    loop->cv.wait(lock, [&] {
      return loop->done.load(std::memory_order_acquire) == loop->n;
    });
    error = loop->error;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(n, fn);
}

}  // namespace llmprism
