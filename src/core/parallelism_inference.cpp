#include "llmprism/core/parallelism_inference.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "llmprism/common/stats.hpp"

namespace llmprism {

namespace {

/// Connected components of the PP-pair graph. In a healthy reconstruction
/// each component is one pipeline chain (a path of pp stages).
struct PpChains {
  std::vector<std::size_t> sizes;  ///< nodes per component
  bool all_paths = true;           ///< every component is a simple path
};

PpChains pp_chain_components(const CommTypeResult& comm_types) {
  std::unordered_map<GpuId, std::vector<GpuId>> adj;
  for (const PairClassification& p : comm_types.pairs) {
    if (p.type != CommType::kPP) continue;
    adj[p.pair.first].push_back(p.pair.second);
    adj[p.pair.second].push_back(p.pair.first);
  }
  PpChains chains;
  std::unordered_set<GpuId> visited;
  for (const auto& [start, neighbours] : adj) {
    if (visited.count(start)) continue;
    std::vector<GpuId> stack{start};
    visited.insert(start);
    std::size_t nodes = 0;
    std::size_t degree_one = 0;
    bool degrees_ok = true;
    while (!stack.empty()) {
      const GpuId u = stack.back();
      stack.pop_back();
      ++nodes;
      const auto& nbrs = adj.at(u);
      if (nbrs.size() == 1) ++degree_one;
      if (nbrs.size() > 2) degrees_ok = false;
      for (const GpuId v : nbrs) {
        if (visited.insert(v).second) stack.push_back(v);
      }
    }
    chains.sizes.push_back(nodes);
    // A simple path of >= 2 nodes has exactly two degree-1 endpoints.
    if (!degrees_ok || (nodes >= 2 && degree_one != 2)) {
      chains.all_paths = false;
    }
  }
  return chains;
}

std::uint32_t mode_of_sizes(const std::vector<std::size_t>& sizes) {
  std::vector<std::int64_t> as_int;
  as_int.reserve(sizes.size());
  for (const std::size_t s : sizes) {
    as_int.push_back(static_cast<std::int64_t>(s));
  }
  return static_cast<std::uint32_t>(stats::mode(as_int));
}

}  // namespace

InferredParallelism infer_parallelism(std::size_t num_gpus,
                                      const CommTypeResult& comm_types,
                                      std::span<const GpuTimeline> timelines) {
  InferredParallelism inferred;
  inferred.world_size = static_cast<std::uint32_t>(num_gpus);

  // --- dp from DP component sizes ---
  if (!comm_types.dp_components.empty()) {
    std::vector<std::size_t> sizes;
    sizes.reserve(comm_types.dp_components.size());
    for (const auto& component : comm_types.dp_components) {
      sizes.push_back(component.size());
    }
    inferred.dp = std::max(1u, mode_of_sizes(sizes));
    for (const std::size_t s : sizes) {
      if (s != inferred.dp) inferred.dp_groups_uniform = false;
    }

    // Completeness: a fully observed DP group contains its ring cycle(s),
    // so the component's DP-edge count reaches its node count; an open arc
    // (parts of the ring hidden inside machines) has edges = nodes - 1.
    std::unordered_map<GpuId, std::size_t> component_of;
    for (std::size_t c = 0; c < comm_types.dp_components.size(); ++c) {
      for (const GpuId g : comm_types.dp_components[c]) {
        component_of.emplace(g, c);
      }
    }
    std::vector<std::size_t> edge_count(comm_types.dp_components.size(), 0);
    for (const PairClassification& p : comm_types.pairs) {
      if (p.type != CommType::kDP) continue;
      const auto it = component_of.find(p.pair.first);
      if (it != component_of.end()) ++edge_count[it->second];
    }
    for (std::size_t c = 0; c < comm_types.dp_components.size(); ++c) {
      const std::size_t nodes = comm_types.dp_components[c].size();
      // A 2-member group's "ring" is a single link (cycle and path
      // coincide); treat one edge as complete there.
      const std::size_t needed = nodes == 2 ? 1 : nodes;
      if (edge_count[c] < needed) {
        inferred.dp_groups_complete = false;
      }
    }
  }

  // --- pp from PP chain lengths ---
  const PpChains chains = pp_chain_components(comm_types);
  if (!chains.sizes.empty()) {
    inferred.pp = std::max(1u, mode_of_sizes(chains.sizes));
    inferred.pp_chains_uniform = chains.all_paths;
    for (const std::size_t s : chains.sizes) {
      if (s != inferred.pp) inferred.pp_chains_uniform = false;
    }
  }

  // --- tp from the remainder ---
  const std::uint64_t plane =
      static_cast<std::uint64_t>(inferred.dp) * inferred.pp;
  if (plane != 0 && num_gpus % plane == 0) {
    inferred.tp = static_cast<std::uint32_t>(num_gpus / plane);
  } else {
    inferred.tp = 1;
    inferred.divides_world = false;
  }

  // --- micro-batches from PP flow counts per step ---
  // Each PP pair carries one forward + one backward message per micro-batch
  // per step; the step count comes from the reconstructed timelines (PP
  // pairs' own step division is unreliable — their within-step intervals
  // are not well separated from the step gap).
  if (!timelines.empty()) {
    std::vector<double> step_counts;
    for (const GpuTimeline& t : timelines) {
      if (!t.steps.empty()) {
        step_counts.push_back(static_cast<double>(t.steps.size()));
      }
    }
    const double steps = stats::median(step_counts);
    if (steps >= 1.0) {
      std::vector<double> estimates;
      for (const PairClassification& p : comm_types.pairs) {
        if (p.type != CommType::kPP || p.num_flows == 0) continue;
        estimates.push_back(static_cast<double>(p.num_flows) / steps / 2.0);
      }
      if (!estimates.empty()) {
        inferred.micro_batches = static_cast<std::uint32_t>(
            std::lround(stats::median(estimates)));
      }
    }
  }
  return inferred;
}

}  // namespace llmprism
