#include "llmprism/core/prism.hpp"

#include <unordered_map>

#include "llmprism/common/log.hpp"

namespace llmprism {

Prism::Prism(const ClusterTopology& topology, PrismConfig config)
    : topology_(topology), config_(std::move(config)) {}

PrismReport Prism::analyze(const FlowTrace& trace) const {
  PrismReport report;

  // (1) job recognition
  const JobRecognizer recognizer(topology_, config_.recognition);
  report.recognition = recognizer.recognize(trace);
  log::info("prism: recognized ", report.recognition.jobs.size(),
            " jobs from ", report.recognition.num_cross_machine_clusters,
            " cross-machine clusters");

  // Route each flow to its job in one pass over the trace.
  std::unordered_map<GpuId, std::size_t> job_of_gpu;
  for (std::size_t j = 0; j < report.recognition.jobs.size(); ++j) {
    for (const GpuId g : report.recognition.jobs[j].gpus) {
      job_of_gpu.emplace(g, j);
    }
  }
  std::vector<FlowTrace> job_traces(report.recognition.jobs.size());
  for (const FlowRecord& f : trace) {
    const auto it = job_of_gpu.find(f.src);
    if (it != job_of_gpu.end()) job_traces[it->second].add(f);
  }

  const CommTypeIdentifier identifier(config_.comm_type);
  const TimelineReconstructor reconstructor(config_.timeline);
  const Diagnoser diagnoser(config_.diagnosis);

  FlowTrace all_dp_flows;
  for (std::size_t j = 0; j < report.recognition.jobs.size(); ++j) {
    JobAnalysis analysis;
    analysis.id = JobId(static_cast<std::uint32_t>(j));
    analysis.job = report.recognition.jobs[j];
    analysis.trace = std::move(job_traces[j]);
    analysis.trace.sort();

    // (2) parallelism strategies
    analysis.comm_types = identifier.identify(analysis.trace);
    const auto types = analysis.comm_types.types();

    // Collect DP flows for cluster-wide switch diagnosis.
    for (const FlowRecord& f : analysis.trace) {
      const auto it = types.find(f.pair());
      if (it != types.end() && it->second == CommType::kDP) {
        all_dp_flows.add(f);
      }
    }

    // (3) timelines + (4) job-level diagnosis
    if (config_.reconstruct_timelines) {
      analysis.timelines = reconstructor.reconstruct_all(analysis.trace, types);
      analysis.step_alerts = diagnoser.cross_step(analysis.timelines);
      const auto durations = group_dp_durations(
          analysis.timelines, analysis.comm_types.dp_components);
      analysis.group_alerts = diagnoser.cross_group(durations);
    }

    // (2b) full 3D layout from the recovered structure
    analysis.inferred = infer_parallelism(analysis.job.gpus.size(),
                                          analysis.comm_types,
                                          std::span(analysis.timelines));
    report.jobs.push_back(std::move(analysis));
  }

  // (4) cluster-wide switch-level diagnosis
  all_dp_flows.sort();
  report.switch_bandwidth_gbps = Diagnoser::per_switch_bandwidth(all_dp_flows);
  report.switch_bandwidth_alerts = diagnoser.switch_bandwidth(all_dp_flows);
  report.switch_concurrency_alerts =
      diagnoser.switch_concurrency(all_dp_flows);
  return report;
}

}  // namespace llmprism
