// Root-cause attribution: from correlated k-sigma alerts to named origins.
//
// Fail-slow propagates. One straggler GPU stalls its 1F1B pipeline
// neighbours and, through the step barrier, every DP replica — so a single
// injected fault surfaces as a cloud of step/group/switch alerts with no
// named origin. This stage builds the per-job dependency graph the paper's
// detectors already imply —
//   * PP forward/backward edges: the pairs Alg. 2 classified kPP (the
//     recovered 1F1B adjacency; pp_send/pp_recv timeline events give the
//     direction),
//   * DP ring membership: the recovered DP components,
//   * switch->flow incidence: the switch paths of each group's DP flows —
// and propagates blame backwards from every alert to the earliest vertex
// that can explain it, emitting one AttributedIncident per root cause with
// the origin separated from its victims.
//
// Blame propagation rule (deepest explanation wins):
//   switch > DP group > rank.
//   1. Group-alert clusters whose DP flows traverse a bandwidth-alerted
//      switch are folded into that switch's cluster-level incident: the
//      switch is the origin, the slowed groups and their step alerts are
//      victims.
//   2. Remaining group-alert clusters become DP-group incidents: the ring
//      is the origin, step alerts at the same steps are victims (every
//      rank stalls at the barrier behind a slow collective).
//   3. Remaining step-alert ranges are traced to a compute origin: a rank
//      is blamed by its *self time* — the inferred-compute duration
//      immediately preceding its pp_send events, i.e. work the rank did
//      itself before handing off — scored against that rank's own median
//      across the window. Victims inherit lateness through recv; only the
//      culprit stretches recv->send. TP siblings share the excess (TP is
//      intra-machine, invisible in flows) and are reported as co-culprits.
//   Alerts no rule can explain are counted orphaned, never guessed at.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "llmprism/common/ids.hpp"
#include "llmprism/core/comm_type.hpp"
#include "llmprism/core/diagnosis.hpp"
#include "llmprism/core/timeline.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/flow/view.hpp"

namespace llmprism {

/// What kind of vertex a ranked culprit names.
enum class CulpritKind : std::uint8_t { kRank, kDpGroup, kSwitch };

[[nodiscard]] constexpr std::string_view to_string(CulpritKind k) {
  switch (k) {
    case CulpritKind::kRank: return "rank";
    case CulpritKind::kDpGroup: return "dp_group";
    case CulpritKind::kSwitch: return "switch";
  }
  return "?";
}

/// One ranked root-cause candidate. Exactly the field matching `kind` is
/// meaningful (gpu for kRank, dp_group_index for kDpGroup, switch_id for
/// kSwitch); the others stay at their invalid/zero defaults.
struct Culprit {
  CulpritKind kind = CulpritKind::kRank;
  GpuId gpu;
  std::size_t dp_group_index = 0;
  SwitchId switch_id;
  /// Blame score: relative excess over the candidate's own baseline
  /// (self-time excess for ranks, alert depth for groups and switches).
  double score = 0;

  friend bool operator==(const Culprit&, const Culprit&) = default;
};

/// Which detector's alert a victim entry accounts for.
enum class VictimKind : std::uint8_t { kStepAlert, kGroupAlert };

/// One alert explained by an incident but NOT at its origin: a symptom the
/// fault propagated to. `job` names the owning job (useful on
/// cluster-level switch incidents, which collect victims across jobs).
struct Victim {
  VictimKind kind = VictimKind::kStepAlert;
  JobId job;
  GpuId gpu;                       ///< kStepAlert: the alerted rank
  std::size_t dp_group_index = 0;  ///< kGroupAlert: the alerted ring
  std::size_t step_index = 0;
  /// Dependency-graph distance (BFS over PP + DP edges) from the origin
  /// vertex set; 0 = no path found in the recovered graph.
  std::size_t hops = 0;

  friend bool operator==(const Victim&, const Victim&) = default;
};

/// Alert counts an incident accounts for (its own origin evidence plus its
/// victims) — deterministic event counts, like all report telemetry.
struct IncidentEvidence {
  std::uint64_t step_alerts = 0;
  std::uint64_t group_alerts = 0;
  std::uint64_t switch_bandwidth_alerts = 0;
  std::uint64_t switch_concurrency_alerts = 0;

  friend bool operator==(const IncidentEvidence&,
                         const IncidentEvidence&) = default;
};

/// One root cause and everything it explains.
struct AttributedIncident {
  /// Owning job; invalid() for cluster-level switch incidents (a degraded
  /// switch is not any tenant's fault).
  JobId job;
  /// Flagged reconstructed-step range (inclusive); 0/0 for cluster-level
  /// incidents, whose victims carry their own per-job step indices.
  std::size_t step_begin = 0;
  std::size_t step_end = 0;
  /// Root-cause candidates ranked by score, best first. culprits[0] is THE
  /// origin; later entries are indistinguishable co-culprits (TP siblings
  /// share one machine and one flow signature) or weaker alternatives.
  std::vector<Culprit> culprits;
  std::vector<Victim> victims;
  /// How separable the top culprit was from the best non-origin candidate,
  /// in [0, 1]: 1 = no competitor came close, 0 = a coin flip.
  double confidence = 0;
  IncidentEvidence evidence;

  friend bool operator==(const AttributedIncident&,
                         const AttributedIncident&) = default;
};

struct AttributionConfig {
  /// Minimum relative self-time excess for a rank to be blamable. Below
  /// this no compute origin is named and the range's alerts are orphaned
  /// (never guess). Jitter sits at a few percent; real stragglers at 2x.
  double min_compute_excess = 0.25;
  /// Ranks whose excess reaches this fraction of the top score join the
  /// origin cluster as co-culprits (TP siblings are indistinguishable).
  double origin_cluster_ratio = 0.5;
  /// Ranked-culprit list length cap per incident.
  std::size_t max_culprits = 8;
  /// Flagged steps at most this far apart merge into one incident.
  std::size_t merge_step_gap = 1;
};

/// Deterministic outcome counters of one attribute() call.
struct AttributionTelemetry {
  std::uint64_t alerts_explained = 0;  ///< alerts some incident accounts for
  std::uint64_t alerts_orphaned = 0;   ///< alerts no rule could explain

  friend bool operator==(const AttributionTelemetry&,
                         const AttributionTelemetry&) = default;
};

struct AttributionResult {
  /// Sorted: per-job incidents by (job, step range, origin), then
  /// cluster-level switch incidents by switch id.
  std::vector<AttributedIncident> incidents;
  AttributionTelemetry telemetry;
};

/// Per-job view the attributor consumes — exactly what JobAnalysis holds,
/// passed as pointers/spans so this header does not depend on prism.hpp.
struct JobAttributionInput {
  JobId id;
  /// The job's flows (sorted, columnar — what JobAnalysis holds).
  const FlowColumns* trace = nullptr;
  const CommTypeResult* comm_types = nullptr;  ///< pairs + DP components
  std::span<const GpuTimeline> timelines;
  std::span<const StepAlert> step_alerts;
  std::span<const GroupAlert> group_alerts;
};

class Attributor {
 public:
  explicit Attributor(AttributionConfig config = {});

  /// Attribute every alert of one analyzed window. Pure and sequential:
  /// the same inputs produce the same incidents, bit for bit, regardless
  /// of how the per-job fan-out that produced them was scheduled.
  [[nodiscard]] AttributionResult attribute(
      std::span<const JobAttributionInput> jobs,
      std::span<const SwitchBandwidthAlert> switch_bandwidth_alerts,
      std::span<const SwitchConcurrencyAlert> switch_concurrency_alerts)
      const;

  // Building blocks, exposed for direct testing.

  /// Per reconstructed step, the rank's self time: total inferred-compute
  /// duration immediately preceding each pp_send in that step (seconds).
  /// Zero for ranks that never send PP traffic (pp = 1).
  [[nodiscard]] static std::vector<double> step_self_times(
      const GpuTimeline& timeline);

  /// Switch ids traversed by each DP component's flows (ascending, unique;
  /// one entry per component, aligned with `dp_components`).
  [[nodiscard]] static std::vector<std::vector<SwitchId>> group_switch_sets(
      const FlowTrace& job_trace,
      const std::vector<std::vector<GpuId>>& dp_components);
  /// Columnar overload (same output): reads src/dst plus the CSR switch
  /// paths, no FlowRecord is materialized.
  [[nodiscard]] static std::vector<std::vector<SwitchId>> group_switch_sets(
      const FlowView& job_flows,
      const std::vector<std::vector<GpuId>>& dp_components);

 private:
  AttributionConfig config_;
};

}  // namespace llmprism
