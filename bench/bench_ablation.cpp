// Ablation study of LLMPrism's design choices (DESIGN.md §4):
//  A. BOCD step division vs. a fixed-threshold divider, across noise levels
//     (timeline reconstruction quality).
//  B. DP-transitivity refinement on/off as collection degradation grows
//     (generalizes Table I's two rows).
//  C. Alg. 2's per-step distinct-size mode vs. naive whole-window and
//     volume-threshold classifiers under noise.
#include <cstdio>
#include <unordered_map>

#include "bench_util.hpp"
#include "llmprism/baseline/eval.hpp"
#include "llmprism/baseline/naive_classifier.hpp"
#include "llmprism/baseline/step_divider.hpp"
#include "llmprism/collector/collector.hpp"
#include "llmprism/collector/packetize.hpp"
#include "llmprism/core/comm_type.hpp"
#include "llmprism/core/timeline.hpp"

using namespace llmprism;
using namespace llmprism::bench;

namespace {

ClusterSimResult simulate(double degraded_fraction, double partial_records,
                          DurationNs time_jitter, std::uint64_t seed,
                          bool zero_overlap = false) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.seed = seed;
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 8, .pp = 2, .micro_batches = 4};
  job.num_steps = 40;
  job.dp_rounds_per_bucket = 8;
  job.zero_overlap = zero_overlap;
  cfg.jobs.push_back({job, {}});
  cfg.noise.degraded_pair_fraction = degraded_fraction;
  cfg.noise.partial_record_rate = partial_records;
  cfg.noise.size_jitter_rate = 1.0;
  cfg.noise.size_jitter_frac = 0.02;  // collector size quantization, always on
  cfg.noise.time_jitter = time_jitter;
  return run_cluster_sim(cfg);
}

/// Timeline reconstruction where step division is done by the baseline
/// threshold divider instead of BOCD (same downstream logic).
TimelineScore threshold_timeline_score(const ClusterSimResult& sim,
                                       double factor) {
  const auto comm = CommTypeIdentifier{}.identify(sim.trace);
  const auto types = comm.types();
  // Build per-GPU DP timestamp streams.
  std::unordered_map<GpuId, std::vector<TimeNs>> dp_starts;
  std::unordered_map<GpuId, std::vector<TimeNs>> dp_ends;
  for (const FlowRecord& f : sim.trace) {
    const auto it = types.find(f.pair());
    if (it == types.end() || it->second != CommType::kDP) continue;
    for (const GpuId g : {f.src, f.dst}) {
      dp_starts[g].push_back(f.start_time);
      dp_ends[g].push_back(f.end_time());
    }
  }
  std::vector<GpuTimeline> timelines;
  for (auto& [gpu, starts] : dp_starts) {
    auto& ends = dp_ends[gpu];
    GpuTimeline t;
    t.gpu = gpu;
    const auto seg = segment_by_threshold(starts, {.factor = factor});
    for (std::size_t s = 0; s < seg.size(); ++s) {
      const std::size_t hi =
          s + 1 < seg.size() ? seg[s + 1] : starts.size();
      ReconstructedStep step;
      step.index = s;
      step.dp_begin = starts[seg[s]];
      step.dp_end = step.dp_begin;
      for (std::size_t i = seg[s]; i < hi; ++i) {
        step.dp_end = std::max(step.dp_end, ends[i]);
      }
      step.begin = s == 0 ? step.dp_begin : t.steps.back().end;
      step.end = step.dp_end;
      t.steps.push_back(step);
    }
    timelines.push_back(std::move(t));
  }
  return score_timelines(std::span(timelines), sim.jobs[0]);
}

}  // namespace

int main() {
  std::printf("=== Ablation A: step division — BOCD vs fixed threshold ===\n");
  std::printf(
      "(the threshold "
      "divider's factor must be tuned\n per workload, BOCD self-calibrates)"
      "\n\n");
  std::printf(
      "  (each cell: boundary recall %% / spurious boundaries / duration "
      "error %%)\n");
  std::printf(
      "  workload                | BOCD                | threshold x3       "
      " | threshold x10       | threshold x100\n");
  struct Workload {
    const char* name;
    DurationNs jitter;
    bool zero_overlap;
  };
  for (const Workload w :
       {Workload{"clean                  ", 0, false},
        Workload{"4 ms collection jitter ", 4 * kMillisecond, false},
        Workload{"ZeRO overlap           ", 0, true},
        Workload{"ZeRO + 4 ms jitter     ", 4 * kMillisecond, true}}) {
    const auto sim = simulate(0.0, 0.0, w.jitter, 99, w.zero_overlap);
    const auto comm = CommTypeIdentifier{}.identify(sim.trace);
    const auto timelines =
        TimelineReconstructor{}.reconstruct_all(sim.trace, comm.types());
    const auto bocd_score = score_timelines(std::span(timelines), sim.jobs[0]);
    std::printf("  %s | %5.1f%% / %4zu / %5.3f%%", w.name,
                100 * bocd_score.matched_fraction(),
                bocd_score.spurious_steps(),
                100 * bocd_score.mean_duration_error);
    for (const double factor : {3.0, 10.0, 100.0}) {
      const auto th = threshold_timeline_score(sim, factor);
      std::printf(" | %5.1f%% / %4zu / %5.3f%%", 100 * th.matched_fraction(),
                  th.spurious_steps(), 100 * th.mean_duration_error);
    }
    std::printf("\n");
  }
  std::printf("\n");

  std::printf(
      "=== Ablation B: refinement on/off vs collection degradation ===\n\n");
  std::printf("  degraded pairs | w/o refinement | with refinement\n");
  for (const double fraction : {0.0, 0.1, 0.2, 0.3, 0.5}) {
    const auto sim = simulate(fraction, 0.0, 0, 123);
    const auto result = CommTypeIdentifier{}.identify(sim.trace);
    const auto without =
        score_comm_type(std::span(result.pairs), sim.jobs[0], true);
    const auto with =
        score_comm_type(std::span(result.pairs), sim.jobs[0], false);
    std::printf("  %13.0f%% | %13.2f%% | %14.2f%%\n", 100 * fraction,
                100 * without.accuracy(), 100 * with.accuracy());
  }
  std::printf("\n");

  std::printf(
      "=== Ablation C: Alg. 2 vs naive classifiers (degradation + partial "
      "flow records) ===\n\n");
  std::printf(
      "  scenario              | Alg. 2   | global-sizes | volume-threshold\n");
  struct Scenario {
    const char* name;
    double degraded;
    double partial;
  };
  for (const Scenario sc : {Scenario{"clean                ", 0.0, 0.0},
                            Scenario{"20% degraded         ", 0.2, 0.0},
                            Scenario{"1% partial records   ", 0.0, 0.01},
                            Scenario{"degraded + partial   ", 0.2, 0.01}}) {
    const auto sim = simulate(sc.degraded, sc.partial, 0, 321);
    const auto alg2 = CommTypeIdentifier{}.identify(sim.trace);
    const auto alg2_score =
        score_comm_type(std::span(alg2.pairs), sim.jobs[0]);
    const auto global_score = score_comm_type_map(
        classify_by_global_distinct_sizes(sim.trace), sim.jobs[0]);
    const auto volume_score = score_comm_type_map(
        classify_by_volume_threshold(sim.trace), sim.jobs[0]);
    std::printf("  %s | %7.2f%% | %11.2f%% | %15.2f%%\n", sc.name,
                100 * alg2_score.accuracy(), 100 * global_score.accuracy(),
                100 * volume_score.accuracy());
  }
  std::printf(
      "(volume threshold depends on tenant message sizes; one partially "
      "recorded flow anywhere in the window\n flips a pair under the naive "
      "global-sizes rule, while the per-step mode absorbs it)\n\n");

  std::printf(
      "=== Ablation D: collector idle timeout vs the DP multi-size "
      "signature ===\n");
  std::printf(
      "(flows -> packets -> collector with varying idle timeout -> Alg. 2; "
      "a burst-coarse timeout merges\n a step's DP buckets into one record "
      "and the DP signature degrades)\n\n");
  std::printf("  idle timeout | records | Alg. 2 accuracy | DP pairs kept\n");
  {
    const auto sim = simulate(0.0, 0.0, 0, 77);
    Rng rng(7070);
    const auto packets = packetize(sim.trace, {}, rng);
    std::size_t true_dp = 0;
    for (const auto& [pair, type] : sim.jobs[0].pair_types) {
      true_dp += type == CommType::kDP;
    }
    for (const DurationNs idle :
         {200 * kMicrosecond, 500 * kMicrosecond, 2 * kMillisecond,
          5 * kMillisecond, 20 * kMillisecond, 100 * kMillisecond}) {
      CollectorConfig cc;
      cc.idle_timeout = idle;
      cc.active_timeout = kSecond;
      Rng collector_rng(idle % 1000 + 1);
      const auto records =
          collect_flows(packets, sim.topology, cc, collector_rng);
      const auto result = CommTypeIdentifier{}.identify(records);
      const auto score = score_comm_type(std::span(result.pairs), sim.jobs[0]);
      std::size_t dp_kept = 0;
      for (const auto& p : result.pairs) dp_kept += p.type == CommType::kDP;
      std::printf("  %9.1f ms | %7zu | %14.2f%% | %zu / %zu\n",
                  to_milliseconds(idle), records.size(),
                  100 * score.accuracy(), dp_kept, true_dp);
    }
  }
  std::printf(
      "(the paper's deployment therefore needs a collector cutting records "
      "finer than the inter-collective gap)\n");
  return 0;
}
