// Inference of a job's full parallelism configuration (tp, dp, pp, and the
// micro-batch count) from its recovered communication structure — the
// completion of the paper's "Parallelism Strategies Identification" phase:
// beyond labelling pairs DP/PP, reconstruct the 3D layout itself.
//
// Structure exploited:
//  * dp  — the size of the DP components (every DP group has dp members);
//  * pp  — 1 + the length of the PP chains: PP pairs link consecutive
//          pipeline stages, so following PP edges from a chain end
//          traverses all pp stages;
//  * tp  — world_size / (dp * pp); world size = the job's GPU count
//          (machine-local expansion already includes TP-only GPUs);
//  * micro-batches — PP pairs carry one activation forward and one
//          gradient backward per micro-batch, so a pair's flows-per-step
//          is 2m (estimated from flow count / step count).
#pragma once

#include <cstdint>
#include <vector>

#include "llmprism/core/comm_type.hpp"
#include "llmprism/core/timeline.hpp"

namespace llmprism {

struct InferredParallelism {
  std::uint32_t world_size = 0;
  std::uint32_t dp = 1;
  std::uint32_t pp = 1;
  std::uint32_t tp = 1;
  std::uint32_t micro_batches = 0;  ///< 0 when no PP pairs are visible
  /// Diagnostics: how consistent the evidence was.
  bool dp_groups_uniform = true;   ///< all DP components the same size
  bool pp_chains_uniform = true;   ///< all PP chains the same length
  bool divides_world = true;       ///< dp*pp divides world_size
  /// When several members of one DP group share a machine, parts of the
  /// ring hide inside machines and the observed components are open ARCS
  /// of the true ring (paths, not cycles). dp is then a lower bound and tp
  /// an upper bound — structurally indistinguishable from a smaller-dp /
  /// larger-tp layout at the flow level. True when every component
  /// contains a cycle (complete rings observed).
  bool dp_groups_complete = true;
};

/// Infer the layout of one job from its GPU count, pair classifications and
/// (optionally, for micro-batch estimation) reconstructed timelines.
/// Degenerate inputs are handled: with no DP components dp = 1; with no PP
/// pairs pp = 1; tp falls back to 1 when dp*pp does not divide the world.
[[nodiscard]] InferredParallelism infer_parallelism(
    std::size_t num_gpus, const CommTypeResult& comm_types,
    std::span<const GpuTimeline> timelines = {});

}  // namespace llmprism
