// Network flow records — the only job-related signal LLMPrism consumes.
//
// §II-B of the paper: switch-level mirroring (ERSPAN-style) yields flows
// with "flow start time, source address, destination address, involved
// switches, flow size, and flow durations". This struct is that schema.
#pragma once

#include <cstdint>

#include "llmprism/common/ids.hpp"
#include "llmprism/common/inline_vec.hpp"
#include "llmprism/common/time.hpp"

namespace llmprism {

/// Switches traversed by a flow. A two-tier Clos path is at most
/// leaf → spine → leaf, so 4 slots is ample.
using SwitchPath = InlineVec<SwitchId, 4>;

/// One mirrored network flow between two GPU NICs.
struct FlowRecord {
  TimeNs start_time = 0;     ///< flow start, ns since trace epoch
  GpuId src;                 ///< source GPU/NIC address
  GpuId dst;                 ///< destination GPU/NIC address
  std::uint64_t bytes = 0;   ///< flow size in bytes
  DurationNs duration = 0;   ///< flow duration
  SwitchPath switches;       ///< switches the flow traversed, in hop order

  [[nodiscard]] constexpr TimeNs end_time() const {
    return start_time + duration;
  }

  /// Unordered communication pair (Alg. 2 classifies undirected pairs).
  [[nodiscard]] constexpr GpuPair pair() const { return GpuPair(src, dst); }

  /// Average bandwidth over the flow's lifetime, in Gbit/s; 0 if the
  /// duration is zero.
  [[nodiscard]] constexpr double bandwidth_gbps() const {
    if (duration <= 0) return 0.0;
    return static_cast<double>(bytes) * 8.0 / static_cast<double>(duration);
  }

  friend constexpr bool operator==(const FlowRecord&,
                                   const FlowRecord&) = default;
};

/// Strict weak order by start time (ties by src, dst, bytes for
/// determinism).
struct FlowStartTimeLess {
  constexpr bool operator()(const FlowRecord& a, const FlowRecord& b) const {
    if (a.start_time != b.start_time) return a.start_time < b.start_time;
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.bytes < b.bytes;
  }
};

}  // namespace llmprism
