#include "llmprism/bocd/bocd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "llmprism/obs/metrics.hpp"

namespace llmprism {

namespace {

/// Registry counters for segmenter work — looked up once, then relaxed
/// atomic adds in bulk per call (never per observation).
struct SegmenterMetrics {
  obs::Counter& observations;
  obs::Counter& boundaries;
  obs::Counter& hard_resets;
  obs::Counter& detector_reuses;
};

SegmenterMetrics& segmenter_metrics() {
  static SegmenterMetrics metrics{
      obs::default_registry().counter(
          "llmprism_bocd_observations_total",
          "BOCD observations consumed by gap segmentation"),
      obs::default_registry().counter(
          "llmprism_bocd_boundaries_total",
          "Segment boundaries opened by gap segmentation"),
      obs::default_registry().counter(
          "llmprism_bocd_hard_resets_total",
          "Degenerate BOCD restarts (all hypotheses at zero likelihood)"),
      obs::default_registry().counter(
          "llmprism_bocd_detector_reuses_total",
          "Series served by a pooled detector instead of a fresh one"),
  };
  return metrics;
}

/// Thread-safe log-gamma. libc's lgamma() writes the process-global
/// `signgam`, which races when per-job analysis tasks run BOCD
/// concurrently; every argument here is positive, so the sign is discarded.
double lgamma_positive(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

/// log pdf of a Student-t with nu degrees of freedom, location mu and
/// scale^2 = s2, evaluated at x. `lgamma_term` is the precomputed
/// lgamma((nu+1)/2) - lgamma(nu/2) for this nu.
double log_student_t(double x, double nu, double mu, double s2,
                     double lgamma_term) {
  const double d = x - mu;
  return lgamma_term - 0.5 * std::log(nu * M_PI * s2) -
         (nu + 1.0) / 2.0 * std::log1p(d * d / (nu * s2));
}

/// base^e by repeated squaring. Overflow to inf is benign for the
/// predictive (base >= 1, so 1/inf -> 0 — the same underflow the exp()
/// path produces for a hopeless hypothesis). The conditional multiply is
/// written as a select so the loop body carries no data-dependent branch
/// (the exponent's bit pattern is effectively random across hypotheses,
/// and a mispredict costs more than the always-multiply).
double powi(double base, std::size_t e) {
  double r = 1.0;
  while (e != 0) {
    r *= (e & 1u) != 0 ? base : 1.0;
    base *= base;
    e >>= 1;
  }
  return r;
}

void validate(const BocdConfig& config) {
  if (config.hazard_lambda <= 1.0) {
    throw std::invalid_argument("bocd: hazard_lambda must be > 1");
  }
  if (config.changepoint_threshold <= 0.0 ||
      config.changepoint_threshold >= 1.0) {
    throw std::invalid_argument("bocd: threshold must be in (0, 1)");
  }
  if (config.prior_kappa <= 0.0 || config.prior_alpha <= 0.0 ||
      config.prior_beta <= 0.0) {
    throw std::invalid_argument("bocd: prior parameters must be positive");
  }
}

/// nu = 2*prior_alpha + run_length: integral for any half-integral prior
/// shape (the default 1.0 included), which unlocks the repeated-squaring
/// predictive in the kernel's inner loop.
bool has_integral_nu(const BocdConfig& config) {
  const double two_alpha = 2.0 * config.prior_alpha;
  return two_alpha == std::floor(two_alpha) && two_alpha < 1e9;
}

}  // namespace

BocdDetector::BocdDetector(BocdConfig config) : config_(config) {
  validate(config_);
  integral_nu_ = has_integral_nu(config_);
  reset();
}

void BocdDetector::reset() {
  if (run_length_.empty()) {
    // First arm: room for the prior hypothesis; the kernel grows on demand.
    run_length_.resize(1);
    probability_.resize(1);
    mean_.resize(1);
    beta_.resize(1);
  }
  run_length_[0] = 0;
  probability_[0] = 1.0;
  mean_[0] = config_.prior_mean;
  beta_[0] = config_.prior_beta;
  size_ = 1;
  max_run_ = 0;
  last_cp_probability_ = 0.0;
  last_recent_probability_ = 0.0;
  last_map_run_length_ = 0;
  t_ = 0;
  hard_resets_ = 0;
}

void BocdDetector::reconfigure(const BocdConfig& config) {
  validate(config);
  // The lgamma / coefficient tables are pure functions of the prior shape
  // (alpha, kappa) and the run length — prior_mean and prior_beta do not
  // enter them, so per-series location/scale retuning keeps the caches.
  if (config.prior_alpha != config_.prior_alpha ||
      config.prior_kappa != config_.prior_kappa) {
    lgamma_ratio_cache_.clear();
    predictive_coeff_cache_.clear();
  }
  config_ = config;
  integral_nu_ = has_integral_nu(config_);
  reset();
}

double BocdDetector::lgamma_ratio(std::size_t run_length) const {
  // alpha = prior_alpha + run_length/2 exactly (0.5-additions are exact in
  // binary floating point), so caching by run length is bit-identical to
  // recomputing from the hypothesis's alpha.
  while (lgamma_ratio_cache_.size() <= run_length) {
    const double alpha =
        config_.prior_alpha +
        0.5 * static_cast<double>(lgamma_ratio_cache_.size());
    const double nu = 2.0 * alpha;
    lgamma_ratio_cache_.push_back(lgamma_positive((nu + 1.0) / 2.0) -
                                  lgamma_positive(nu / 2.0));
  }
  return lgamma_ratio_cache_[run_length];
}

void BocdDetector::ensure_coeffs(std::size_t max_run) const {
  // Like lgamma_ratio(): kappa = prior_kappa + r and alpha =
  // prior_alpha + r/2 exactly, so caching by run length is exact.
  while (predictive_coeff_cache_.size() <= max_run) {
    const auto r = static_cast<double>(predictive_coeff_cache_.size());
    const double alpha = config_.prior_alpha + 0.5 * r;
    const double kappa = config_.prior_kappa + r;
    const double nu = 2.0 * alpha;
    PredictiveCoeff coeff;
    coeff.norm =
        std::exp(lgamma_ratio(predictive_coeff_cache_.size())) /
        std::sqrt(nu * M_PI);
    coeff.inv_nu = 1.0 / nu;
    coeff.kappa_factor = (kappa + 1.0) / (alpha * kappa);
    coeff.kappa = kappa;
    coeff.inv_kappa1 = 1.0 / (kappa + 1.0);
    coeff.half_ratio = kappa / (2.0 * (kappa + 1.0));
    coeff.power = static_cast<std::size_t>(nu) + 1;
    predictive_coeff_cache_.push_back(coeff);
  }
}

double BocdDetector::predictive(std::uint32_t run_length, double mean,
                                double beta, double x) const {
  if (!integral_nu_) {
    // Posterior predictive of the Normal-Inverse-Gamma model: Student-t
    // with nu = 2*alpha, location mean, scale^2 = beta*(kappa+1)/(alpha*
    // kappa); alpha and kappa derived from the run length.
    const double alpha =
        config_.prior_alpha + 0.5 * static_cast<double>(run_length);
    const double kappa =
        config_.prior_kappa + static_cast<double>(run_length);
    const double nu = 2.0 * alpha;
    const double s2 = beta * (kappa + 1.0) / (alpha * kappa);
    return std::exp(log_student_t(x, nu, mean, s2,
                                  lgamma_ratio(run_length)));
  }
  // Student-t density with integer nu, evaluated directly in linear space:
  //   t(x) = norm / sqrt(s2) * (1 + d^2/(nu s2))^-(nu+1)/2
  // The power has integral nu+1, so u^(nu+1) comes from repeated squaring,
  // and sqrt(s2) folds into the same square root that halves the exponent
  // — one sqrt, one divide, no log/log1p/exp per hypothesis. powi overflow
  // to inf is benign: 1/inf -> 0, the same underflow the exp() path
  // produces for a hopeless hypothesis.
  const PredictiveCoeff& k = predictive_coeff_cache_[run_length];
  const double s2 = beta * k.kappa_factor;
  const double d = x - mean;
  const double u = 1.0 + d * d * k.inv_nu / s2;
  return k.norm / std::sqrt(s2 * powi(u, k.power));
}

void BocdDetector::step(double x) {
  const double hazard = 1.0 / config_.hazard_lambda;
  const std::size_t n = size_;
  if (integral_nu_) ensure_coeffs(max_run_);

  // r_t = 0 means x is the *first* observation of a new run, so the
  // changepoint branch scores x under the prior predictive (reset
  // likelihood). Using the old run's predictive there instead would make
  // P(r_t = 0) identically equal to the hazard — useless for detection.
  const double cp_mass =
      predictive(0, config_.prior_mean, config_.prior_beta, x) * hazard;

  // Growth phase: each run hypothesis absorbs x, writing the grown state
  // into the shadow buffer at slot i+1 (slot 0 is reserved for the fresh
  // hypothesis). The conjugate update needs the pre-update mean, which is
  // why growth cannot run in place over the live arrays.
  if (next_run_length_.size() < n + 1) {
    next_run_length_.resize(n + 1);
    next_probability_.resize(n + 1);
    next_mean_.resize(n + 1);
    next_beta_.resize(n + 1);
  }
  const double growth = 1.0 - hazard;
  double total = cp_mass;
  if (integral_nu_) {
    // Fast path: predictive inlined against the cached per-run-length
    // coefficients, and the conjugate update's divisions replaced by the
    // cached reciprocals (kappa is the exact affine function of the run
    // length, so 1/(kappa+1) is data-independent — see the header).
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r = run_length_[i];
      const double m = mean_[i];
      const double b = beta_[i];
      const PredictiveCoeff& k = predictive_coeff_cache_[r];
      const double s2 = b * k.kappa_factor;
      const double d = x - m;
      const double u = 1.0 + d * d * k.inv_nu / s2;
      const double pred = k.norm / std::sqrt(s2 * powi(u, k.power));
      const double p = probability_[i] * pred * growth;
      next_run_length_[i + 1] = r + 1;
      next_probability_[i + 1] = p;
      next_mean_[i + 1] = (k.kappa * m + x) * k.inv_kappa1;
      next_beta_[i + 1] = b + d * d * k.half_ratio;
      total += p;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r = run_length_[i];
      const double m = mean_[i];
      const double b = beta_[i];
      const double pred = predictive(r, m, b, x);
      const double p = probability_[i] * pred * growth;
      const double kappa = config_.prior_kappa + static_cast<double>(r);
      next_run_length_[i + 1] = r + 1;
      next_probability_[i + 1] = p;
      next_mean_[i + 1] = (kappa * m + x) / (kappa + 1.0);
      next_beta_[i + 1] = b + kappa * (x - m) * (x - m) /
                                  (2.0 * (kappa + 1.0));
      total += p;
    }
  }

  ++t_;
  if (!(total > 0.0) || !std::isfinite(total)) {
    // All hypotheses assign (numerically) zero likelihood: treat as a hard
    // changepoint and restart from the prior.
    run_length_[0] = 0;
    probability_[0] = 1.0;
    mean_[0] = config_.prior_mean;
    beta_[0] = config_.prior_beta;
    size_ = 1;
    max_run_ = 0;
    last_cp_probability_ = 1.0;
    last_recent_probability_ = 1.0;
    last_map_run_length_ = 0;
    ++hard_resets_;
    return;
  }

  // The fresh run-length-0 hypothesis keeps the pure prior: the triggering
  // observation is treated as a boundary artefact (a step gap), not as the
  // first sample of the new regime. Absorbing it would poison every
  // post-boundary run with the gap value and mask subsequent boundaries.
  const double inv_total = 1.0 / total;
  next_run_length_[0] = 0;
  next_probability_[0] = cp_mass * inv_total;
  next_mean_[0] = config_.prior_mean;
  next_beta_[0] = config_.prior_beta;

  // Prune-and-compact in one forward pass: normalize, apply the mass floor
  // and the run-length cap, and left-compact the survivors while summing
  // the surviving mass. The store is unconditional and the cursor advance
  // predicated, so the loop carries no data-dependent control flow; the
  // write cursor w never passes the read cursor (w <= i), so compaction is
  // safe in place on the shadow buffer.
  double kept = next_probability_[0];  // slot 0 is already normalized
  std::size_t w = 1;
  for (std::size_t i = 1; i <= n; ++i) {
    const double p = next_probability_[i] * inv_total;
    const std::uint32_t r = next_run_length_[i];
    next_probability_[w] = p;
    next_run_length_[w] = r;
    next_mean_[w] = next_mean_[i];
    next_beta_[w] = next_beta_[i];
    const bool keep = p >= config_.prune_mass && r < config_.max_run_length;
    kept += keep ? p : 0.0;
    w += keep ? 1u : 0u;
  }

  if (w > config_.max_components) {
    // Top-N truncation (the fresh hypothesis at slot 0 is always kept):
    // select over an index array so only 4-byte indices move, then gather
    // the keepers back into the live arrays. nth_element's comparator sees
    // the same probability sequence the struct-based selection would, so
    // the kept set and its order are unchanged.
    const std::size_t keep = config_.max_components;
    select_idx_.resize(w - 1);
    std::iota(select_idx_.begin(), select_idx_.end(), 1u);
    std::nth_element(select_idx_.begin(),
                     select_idx_.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                     select_idx_.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       return next_probability_[a] > next_probability_[b];
                     });
    if (run_length_.size() < keep) {
      run_length_.resize(keep);
      probability_.resize(keep);
      mean_.resize(keep);
      beta_.resize(keep);
    }
    run_length_[0] = next_run_length_[0];
    probability_[0] = next_probability_[0];
    mean_[0] = next_mean_[0];
    beta_[0] = next_beta_[0];
    // Truncation drops surviving mass, so the compaction pass's running
    // sum no longer matches: re-sum over the kept set in the gather.
    kept = next_probability_[0];
    for (std::size_t j = 1; j < keep; ++j) {
      const std::uint32_t src = select_idx_[j - 1];
      run_length_[j] = next_run_length_[src];
      probability_[j] = next_probability_[src];
      mean_[j] = next_mean_[src];
      beta_[j] = next_beta_[src];
      kept += next_probability_[src];
    }
    size_ = keep;
  } else {
    // Common case: the shadow buffer IS the new state; swap the arrays
    // (pointer swaps, no copies).
    run_length_.swap(next_run_length_);
    probability_.swap(next_probability_);
    mean_.swap(next_mean_);
    beta_.swap(next_beta_);
    size_ = w;
  }

  // Renormalize after pruning so probabilities stay a distribution, fused
  // with the three posterior readouts into one final pass (the surviving
  // mass was already summed by compaction / the truncation gather).
  const double inv_kept = 1.0 / kept;
  const auto cap = static_cast<std::uint32_t>(config_.recent_run_cap);
  double recent = 0.0;
  double best_p = -1.0;
  std::uint32_t best_r = 0;
  std::uint32_t max_run = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    const double p = probability_[i] * inv_kept;
    probability_[i] = p;
    const std::uint32_t r = run_length_[i];
    if (r <= cap) recent += p;
    if (p > best_p) {
      best_p = p;
      best_r = r;
    }
    max_run = std::max(max_run, r);
  }
  last_cp_probability_ = probability_[0];
  last_recent_probability_ = recent;
  last_map_run_length_ = best_r;
  max_run_ = max_run;
}

double BocdDetector::observe(double x) {
  step(x);
  return last_cp_probability_;
}

void BocdDetector::observe_batch(std::span<const double> xs) {
  for (const double x : xs) step(x);
}

void BocdDetector::observe_batch(std::span<const double> xs,
                                 std::span<BocdReadout> out) {
  assert(xs.size() == out.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    step(xs[i]);
    out[i] = BocdReadout{last_cp_probability_, last_recent_probability_,
                         last_map_run_length_};
  }
}

BocdDetector& pooled_detector(const BocdConfig& config) {
  thread_local std::unique_ptr<BocdDetector> pool;
  if (!pool) {
    pool = std::make_unique<BocdDetector>(config);
  } else {
    pool->reconfigure(config);
    segmenter_metrics().detector_reuses.inc();
  }
  return *pool;
}

std::vector<std::size_t> detect_changepoints(std::span<const double> xs,
                                             const BocdConfig& config) {
  BocdDetector& detector = pooled_detector(config);
  thread_local std::vector<BocdReadout> readouts;
  readouts.resize(xs.size());
  detector.observe_batch(xs, readouts);
  std::vector<std::size_t> changepoints;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i + 1 > config.recent_run_cap + 1 &&
        readouts[i].recent_probability > config.changepoint_threshold) {
      changepoints.push_back(i);
    }
  }
  return changepoints;
}

std::vector<std::size_t> segment_by_gaps(std::span<const TimeNs> timestamps,
                                         const SegmenterConfig& config,
                                         SegmenterStats* stats) {
  std::vector<std::size_t> starts;
  if (timestamps.empty()) return starts;
  starts.push_back(0);
  if (timestamps.size() == 1) return starts;
  if (!std::is_sorted(timestamps.begin(), timestamps.end())) {
    throw std::invalid_argument("segment_by_gaps: timestamps must be sorted");
  }

  // Coalesce near-simultaneous arrivals; `groups[k]` is the original index
  // of the first timestamp in coalesced group k.
  std::vector<std::size_t> groups{0};
  for (std::size_t i = 1; i < timestamps.size(); ++i) {
    if (timestamps[i] - timestamps[groups.back()] > config.coalesce_gap) {
      groups.push_back(i);
    }
  }
  if (groups.size() < 2) return starts;  // everything is one burst

  std::vector<double> log_intervals;
  log_intervals.reserve(groups.size() - 1);
  for (std::size_t k = 0; k + 1 < groups.size(); ++k) {
    const double dt = static_cast<double>(timestamps[groups[k + 1]] -
                                          timestamps[groups[k]]) +
                      1.0;
    log_intervals.push_back(std::log(dt));
  }

  // Center the prior on the typical interval: the fresh-run predictive is
  // then broad around normal traffic, while the learned run components are
  // tight — a step gap is unlikely under both, but far *less* unlikely
  // under the prior, which is what trips P(r = 0).
  BocdConfig cfg = config.bocd;
  std::vector<double> sorted = log_intervals;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  cfg.prior_mean = sorted[sorted.size() / 2];

  // One batched kernel pass over the whole series on the pooled detector,
  // then the boundary decisions off the recorded readouts.
  BocdDetector& detector = pooled_detector(cfg);
  thread_local std::vector<BocdReadout> readouts;
  readouts.resize(log_intervals.size());
  detector.observe_batch(log_intervals, readouts);

  const double guard =
      cfg.prior_mean + std::log(std::max(1.0, config.gap_guard_factor));
  bool prev_flagged = false;
  for (std::size_t i = 0; i < log_intervals.size(); ++i) {
    // Changepoint at interval i: a new segment begins at coalesced group
    // i + 1, i.e. original element groups[i + 1].
    //
    // Two equivalent read-outs of the run-length posterior back the
    // decision: the recent-run mass crossing the threshold, or the MAP run
    // length collapsing to "just restarted" (the classic BOCD changepoint
    // extraction — it stays decisive even when an earlier missed boundary
    // has inflated the surviving run's variance and made the mass
    // marginal). Either way the flagged interval must itself be a gap
    // (magnitude guard), and only rising edges open a segment because the
    // posterior legitimately stays "young" for a few observations after a
    // boundary.
    const BocdReadout& ro = readouts[i];
    const bool posterior_says_cp =
        i + 1 > cfg.recent_run_cap + 1 &&
        (ro.recent_probability > cfg.changepoint_threshold ||
         ro.map_run_length <= cfg.recent_run_cap);
    const bool flagged = posterior_says_cp && log_intervals[i] > guard;
    if (flagged && !prev_flagged) {
      starts.push_back(groups[i + 1]);
    }
    prev_flagged = flagged;
  }

  SegmenterStats call_stats;
  call_stats.observations = detector.observations_seen();
  call_stats.boundaries = starts.size() - 1;
  call_stats.hard_resets = detector.hard_resets();
  if (stats) *stats += call_stats;
  SegmenterMetrics& metrics = segmenter_metrics();
  metrics.observations.inc(call_stats.observations);
  metrics.boundaries.inc(call_stats.boundaries);
  metrics.hard_resets.inc(call_stats.hard_resets);
  return starts;
}

}  // namespace llmprism
