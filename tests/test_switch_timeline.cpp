// Tests for temporal switch-bandwidth analysis (series + onset detection).
#include <gtest/gtest.h>

#include "llmprism/common/rng.hpp"
#include "llmprism/core/diagnosis.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

FlowRecord dp_flow(TimeNs t, double gbps, std::uint32_t sw) {
  FlowRecord f;
  f.start_time = t;
  f.src = GpuId(0);
  f.dst = GpuId(8);
  f.duration = 1000;
  f.bytes = static_cast<std::uint64_t>(gbps * 1000 / 8.0);
  f.switches.push_back(SwitchId(sw));
  return f;
}

TEST(SwitchTimelineTest, BucketsAverageCorrectly) {
  FlowTrace t;
  // bucket 0: two flows at 10 and 30 Gb/s; bucket 1: one at 50.
  t.add(dp_flow(0, 10, 0));
  t.add(dp_flow(kSecond, 30, 0));
  t.add(dp_flow(11 * kSecond, 50, 0));
  const auto series = switch_bandwidth_timeline(t, 10 * kSecond);
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].gbps.size(), 2u);
  EXPECT_NEAR(series[0].gbps[0], 20.0, 0.1);
  EXPECT_NEAR(series[0].gbps[1], 50.0, 0.1);
  EXPECT_EQ(series[0].bucket_begin[0], 0);
  EXPECT_EQ(series[0].bucket_begin[1], 10 * kSecond);
}

TEST(SwitchTimelineTest, EmptyBucketsAreAbsent) {
  FlowTrace t;
  t.add(dp_flow(0, 10, 0));
  t.add(dp_flow(100 * kSecond, 10, 0));
  const auto series = switch_bandwidth_timeline(t, kSecond);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].gbps.size(), 2u);  // not 101
}

TEST(SwitchTimelineTest, RejectsBadBucket) {
  EXPECT_THROW(switch_bandwidth_timeline(FlowTrace{}, 0),
               std::invalid_argument);
}

TEST(SwitchTimelineTest, NegativeTimesFloorCorrectly) {
  FlowTrace t;
  t.add(dp_flow(-kSecond / 2, 10, 0));  // pre-epoch flow
  const auto series = switch_bandwidth_timeline(t, kSecond);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].bucket_begin[0], -kSecond);
}

SwitchBandwidthSeries make_series(std::uint32_t sw,
                                  const std::vector<double>& values) {
  SwitchBandwidthSeries s;
  s.switch_id = SwitchId(sw);
  for (std::size_t i = 0; i < values.size(); ++i) {
    s.bucket_begin.push_back(static_cast<TimeNs>(i) * 10 * kSecond);
    s.gbps.push_back(values[i]);
  }
  return s;
}

TEST(BandwidthOnsetTest, FindsStepDown) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) values.push_back(rng.normal(160, 3));
  for (int i = 0; i < 30; ++i) values.push_back(rng.normal(50, 2));
  const std::vector<SwitchBandwidthSeries> series{make_series(7, values)};
  const auto onsets = detect_bandwidth_onsets(std::span(series));
  ASSERT_EQ(onsets.size(), 1u);
  EXPECT_EQ(onsets[0].switch_id, SwitchId(7));
  // Onset within one bucket of the true shift (bucket 30).
  EXPECT_NEAR(static_cast<double>(onsets[0].onset),
              30.0 * 10 * kSecond, 1.0 * 10 * kSecond);
  EXPECT_GT(onsets[0].before_gbps, 150);
  EXPECT_LT(onsets[0].after_gbps, 60);
}

TEST(BandwidthOnsetTest, HealthySeriesNoOnset) {
  Rng rng(6);
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) values.push_back(rng.normal(160, 4));
  const std::vector<SwitchBandwidthSeries> series{make_series(1, values)};
  EXPECT_TRUE(detect_bandwidth_onsets(std::span(series)).empty());
}

TEST(BandwidthOnsetTest, UpwardShiftIsNotAnOnset) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) values.push_back(rng.normal(50, 2));
  for (int i = 0; i < 30; ++i) values.push_back(rng.normal(160, 3));
  const std::vector<SwitchBandwidthSeries> series{make_series(1, values)};
  EXPECT_TRUE(detect_bandwidth_onsets(std::span(series)).empty());
}

TEST(BandwidthOnsetTest, SmallDipBelowMinDropIgnored) {
  Rng rng(8);
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) values.push_back(rng.normal(160, 1));
  for (int i = 0; i < 30; ++i) values.push_back(rng.normal(140, 1));  // -12%
  const std::vector<SwitchBandwidthSeries> series{make_series(1, values)};
  OnsetDetectorConfig cfg;
  cfg.min_drop = 0.3;
  EXPECT_TRUE(detect_bandwidth_onsets(std::span(series), cfg).empty());
}

TEST(BandwidthOnsetTest, ShortSeriesSkipped) {
  const std::vector<SwitchBandwidthSeries> series{
      make_series(1, {160, 160, 40, 40})};
  EXPECT_TRUE(detect_bandwidth_onsets(std::span(series)).empty());
}

TEST(BandwidthOnsetTest, EndToEndWithInjectedMidRunFault) {
  // Degrade a switch halfway through a run; the onset detector localizes
  // both the switch and the time.
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 2, .num_spines = 4};
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 8, .pp = 2, .micro_batches = 4};
  job.num_steps = 60;
  cfg.jobs.push_back({job, {}});
  const TimeNs fault_start = 12 * kSecond;
  cfg.switch_faults.push_back(
      {SwitchId(3), TimeWindow{fault_start, kHour}, 0.3});
  const auto sim = run_cluster_sim(cfg);

  // DP flows only (use ground truth types; the comm-type tests already
  // cover inference).
  FlowTrace dp;
  for (const FlowRecord& f : sim.trace) {
    const auto it = sim.jobs[0].pair_types.find(f.pair());
    if (it != sim.jobs[0].pair_types.end() && it->second == CommType::kDP) {
      dp.add(f);
    }
  }
  const auto series = switch_bandwidth_timeline(dp, kSecond);
  const auto onsets = detect_bandwidth_onsets(std::span(series));
  ASSERT_EQ(onsets.size(), 1u);
  EXPECT_EQ(onsets[0].switch_id, SwitchId(3));
  EXPECT_NEAR(to_seconds(onsets[0].onset), to_seconds(fault_start), 2.0);
}

}  // namespace
}  // namespace llmprism
