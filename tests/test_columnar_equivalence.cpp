// Differential tests for the columnar analysis plane (DESIGN.md §13): the
// PrismReport produced by Prism::analyze(FlowView) over a memory-mapped LFT
// file must be field-for-field identical — jobs, flows, comm types,
// timelines, alerts, incidents, telemetry, and all three job-facing
// exports — to the owning FlowTrace path, at every thread count. On a
// sorted LFT file the view path must also be genuinely zero-copy: no
// physical sort of flow data (`llmprism_flowtrace_sorts_total` stays
// flat) and no SoA->AoS materialization
// (`llmprism_flow_materializations_total` stays flat).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "llmprism/core/prism.hpp"
#include "llmprism/core/render.hpp"
#include "llmprism/export/journal.hpp"
#include "llmprism/export/perfetto.hpp"
#include "llmprism/export/series.hpp"
#include "llmprism/export/view.hpp"
#include "llmprism/flow/lft.hpp"
#include "llmprism/flow/view.hpp"
#include "llmprism/obs/metrics.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

/// Three tenants with collection noise, a straggler, and a degraded
/// switch: the mix produces step alerts, switch alerts, and attributed
/// incidents, so none of the comparisons below can pass vacuously.
ClusterSimConfig noisy_mix() {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 12, .gpus_per_machine = 8,
                  .machines_per_leaf = 2, .num_spines = 4};
  JobSimConfig j0;
  j0.parallelism = {.tp = 8, .dp = 2, .pp = 2, .micro_batches = 4};
  j0.num_steps = 12;
  j0.stragglers.push_back(
      {.rank = 1, .step_begin = 7, .step_end = 7, .slowdown = 3.0});
  cfg.jobs.push_back({j0, {}});
  JobSimConfig j1;
  j1.parallelism = {.tp = 8, .dp = 4, .pp = 1, .micro_batches = 4};
  j1.num_steps = 12;
  cfg.jobs.push_back({j1, {}});
  JobSimConfig j2;
  j2.parallelism = {.tp = 4, .dp = 2, .pp = 2, .micro_batches = 4};
  j2.num_steps = 12;
  cfg.jobs.push_back({j2, {}});
  cfg.noise.drop_rate = 0.02;
  cfg.noise.duplicate_rate = 0.01;
  cfg.noise.size_jitter_rate = 0.1;
  cfg.noise.time_jitter = 50 * kMicrosecond;
  cfg.switch_faults.push_back({SwitchId(0), TimeWindow{0, 600 * kSecond}, 0.3});
  cfg.seed = 31;
  return cfg;
}

/// The simulated mix, its sorted trace serialized once as LFT, and the
/// single-threaded FlowTrace-path report every variant is compared to.
struct Fixture {
  ClusterSimResult sim;
  std::string lft_path;
  PrismReport baseline;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture out{run_cluster_sim(noisy_mix()), {}, {}};
    out.sim.trace.sort();  // the LFT file is written born-sorted
    // Per-process file name: ctest runs each parametrized case as its own
    // process, and concurrent processes must not rewrite each other's file
    // mid-mmap.
    out.lft_path = (std::filesystem::temp_directory_path() /
                    ("llmprism_columnar_equivalence_" +
                     std::to_string(::getpid()) + ".lft"))
                       .string();
    write_lft_file(out.lft_path, out.sim.trace);
    PrismConfig cfg;
    cfg.num_threads = 1;
    out.baseline = Prism(out.sim.topology, cfg).analyze(out.sim.trace);
    return out;
  }();
  return f;
}

// --- field-for-field comparison -------------------------------------------
// Doubles compare exactly: the view path must be bit-identical to the
// FlowTrace path, not approximately equal.

void expect_timelines_equal(const GpuTimeline& a, const GpuTimeline& b) {
  EXPECT_EQ(a.gpu, b.gpu);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].start, b.events[i].start);
    EXPECT_EQ(a.events[i].end, b.events[i].end);
    EXPECT_EQ(a.events[i].peer, b.events[i].peer);
  }
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    SCOPED_TRACE("step " + std::to_string(i));
    EXPECT_EQ(a.steps[i].index, b.steps[i].index);
    EXPECT_EQ(a.steps[i].begin, b.steps[i].begin);
    EXPECT_EQ(a.steps[i].end, b.steps[i].end);
    EXPECT_EQ(a.steps[i].dp_begin, b.steps[i].dp_begin);
    EXPECT_EQ(a.steps[i].dp_end, b.steps[i].dp_end);
  }
}

void expect_telemetry_equal(const ReportTelemetry& a,
                            const ReportTelemetry& b) {
  EXPECT_EQ(a.flows_total, b.flows_total);
  EXPECT_EQ(a.flows_routed, b.flows_routed);
  EXPECT_EQ(a.flows_routed_via_dst, b.flows_routed_via_dst);
  EXPECT_EQ(a.flows_unattributed, b.flows_unattributed);
  EXPECT_EQ(a.pairs_classified, b.pairs_classified);
  EXPECT_EQ(a.pairs_dp, b.pairs_dp);
  EXPECT_EQ(a.pairs_pp, b.pairs_pp);
  EXPECT_EQ(a.refinement_flips, b.refinement_flips);
  EXPECT_EQ(a.artifact_size_clusters, b.artifact_size_clusters);
  EXPECT_EQ(a.artifact_flows, b.artifact_flows);
  EXPECT_EQ(a.artifact_segments, b.artifact_segments);
  EXPECT_EQ(a.bocd_observations, b.bocd_observations);
  EXPECT_EQ(a.bocd_boundaries, b.bocd_boundaries);
  EXPECT_EQ(a.bocd_hard_resets, b.bocd_hard_resets);
  EXPECT_EQ(a.timelines_reconstructed, b.timelines_reconstructed);
  EXPECT_EQ(a.timeline_events, b.timeline_events);
  EXPECT_EQ(a.steps_reconstructed, b.steps_reconstructed);
  EXPECT_EQ(a.ksigma_series, b.ksigma_series);
  EXPECT_EQ(a.ksigma_points, b.ksigma_points);
  EXPECT_EQ(a.ksigma_alerts, b.ksigma_alerts);
  EXPECT_EQ(a.incidents, b.incidents);
  EXPECT_EQ(a.alerts_explained, b.alerts_explained);
  EXPECT_EQ(a.alerts_orphaned, b.alerts_orphaned);
}

void expect_reports_equal(const PrismReport& a, const PrismReport& b) {
  EXPECT_EQ(a.recognition.num_cross_machine_clusters,
            b.recognition.num_cross_machine_clusters);
  ASSERT_EQ(a.recognition.jobs.size(), b.recognition.jobs.size());
  for (std::size_t j = 0; j < a.recognition.jobs.size(); ++j) {
    SCOPED_TRACE("recognized job " + std::to_string(j));
    EXPECT_EQ(a.recognition.jobs[j].gpus, b.recognition.jobs[j].gpus);
    EXPECT_EQ(a.recognition.jobs[j].observed_gpus,
              b.recognition.jobs[j].observed_gpus);
    EXPECT_EQ(a.recognition.jobs[j].machines, b.recognition.jobs[j].machines);
    EXPECT_EQ(a.recognition.jobs[j].cross_machine_clusters,
              b.recognition.jobs[j].cross_machine_clusters);
  }

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    SCOPED_TRACE("job " + std::to_string(j));
    const JobAnalysis& ja = a.jobs[j];
    const JobAnalysis& jb = b.jobs[j];
    EXPECT_EQ(ja.id, jb.id);
    ASSERT_EQ(ja.trace.size(), jb.trace.size());
    for (std::size_t i = 0; i < ja.trace.size(); ++i) {
      ASSERT_EQ(ja.trace[i], jb.trace[i]) << "flow " << i;
    }
    ASSERT_EQ(ja.comm_types.pairs.size(), jb.comm_types.pairs.size());
    for (std::size_t p = 0; p < ja.comm_types.pairs.size(); ++p) {
      SCOPED_TRACE("pair " + std::to_string(p));
      EXPECT_EQ(ja.comm_types.pairs[p].pair, jb.comm_types.pairs[p].pair);
      EXPECT_EQ(ja.comm_types.pairs[p].type, jb.comm_types.pairs[p].type);
      EXPECT_EQ(ja.comm_types.pairs[p].pre_refinement_type,
                jb.comm_types.pairs[p].pre_refinement_type);
      EXPECT_EQ(ja.comm_types.pairs[p].num_flows,
                jb.comm_types.pairs[p].num_flows);
      EXPECT_EQ(ja.comm_types.pairs[p].num_steps_observed,
                jb.comm_types.pairs[p].num_steps_observed);
    }
    EXPECT_EQ(ja.comm_types.dp_components, jb.comm_types.dp_components);
    EXPECT_EQ(ja.inferred.world_size, jb.inferred.world_size);
    EXPECT_EQ(ja.inferred.dp, jb.inferred.dp);
    EXPECT_EQ(ja.inferred.pp, jb.inferred.pp);
    EXPECT_EQ(ja.inferred.tp, jb.inferred.tp);
    EXPECT_EQ(ja.inferred.micro_batches, jb.inferred.micro_batches);
    ASSERT_EQ(ja.timelines.size(), jb.timelines.size());
    for (std::size_t t = 0; t < ja.timelines.size(); ++t) {
      SCOPED_TRACE("timeline " + std::to_string(t));
      expect_timelines_equal(ja.timelines[t], jb.timelines[t]);
    }
    ASSERT_EQ(ja.step_alerts.size(), jb.step_alerts.size());
    for (std::size_t i = 0; i < ja.step_alerts.size(); ++i) {
      SCOPED_TRACE("step alert " + std::to_string(i));
      EXPECT_EQ(ja.step_alerts[i].gpu, jb.step_alerts[i].gpu);
      EXPECT_EQ(ja.step_alerts[i].step_index, jb.step_alerts[i].step_index);
      EXPECT_EQ(ja.step_alerts[i].duration_s, jb.step_alerts[i].duration_s);
      EXPECT_EQ(ja.step_alerts[i].mean_s, jb.step_alerts[i].mean_s);
      EXPECT_EQ(ja.step_alerts[i].threshold_s, jb.step_alerts[i].threshold_s);
    }
    ASSERT_EQ(ja.group_alerts.size(), jb.group_alerts.size());
    for (std::size_t i = 0; i < ja.group_alerts.size(); ++i) {
      SCOPED_TRACE("group alert " + std::to_string(i));
      EXPECT_EQ(ja.group_alerts[i].group_index,
                jb.group_alerts[i].group_index);
      EXPECT_EQ(ja.group_alerts[i].step_index, jb.group_alerts[i].step_index);
      EXPECT_EQ(ja.group_alerts[i].duration_s, jb.group_alerts[i].duration_s);
      EXPECT_EQ(ja.group_alerts[i].mean_s, jb.group_alerts[i].mean_s);
      EXPECT_EQ(ja.group_alerts[i].threshold_s,
                jb.group_alerts[i].threshold_s);
    }
  }

  EXPECT_EQ(a.switch_bandwidth_gbps, b.switch_bandwidth_gbps);
  ASSERT_EQ(a.switch_bandwidth_alerts.size(),
            b.switch_bandwidth_alerts.size());
  for (std::size_t i = 0; i < a.switch_bandwidth_alerts.size(); ++i) {
    SCOPED_TRACE("switch bandwidth alert " + std::to_string(i));
    EXPECT_EQ(a.switch_bandwidth_alerts[i].switch_id,
              b.switch_bandwidth_alerts[i].switch_id);
    EXPECT_EQ(a.switch_bandwidth_alerts[i].bandwidth_gbps,
              b.switch_bandwidth_alerts[i].bandwidth_gbps);
    EXPECT_EQ(a.switch_bandwidth_alerts[i].mean_gbps,
              b.switch_bandwidth_alerts[i].mean_gbps);
    EXPECT_EQ(a.switch_bandwidth_alerts[i].threshold_gbps,
              b.switch_bandwidth_alerts[i].threshold_gbps);
  }
  ASSERT_EQ(a.switch_concurrency_alerts.size(),
            b.switch_concurrency_alerts.size());
  for (std::size_t i = 0; i < a.switch_concurrency_alerts.size(); ++i) {
    SCOPED_TRACE("switch concurrency alert " + std::to_string(i));
    EXPECT_EQ(a.switch_concurrency_alerts[i].switch_id,
              b.switch_concurrency_alerts[i].switch_id);
    EXPECT_EQ(a.switch_concurrency_alerts[i].at,
              b.switch_concurrency_alerts[i].at);
    EXPECT_EQ(a.switch_concurrency_alerts[i].concurrent_flows,
              b.switch_concurrency_alerts[i].concurrent_flows);
    EXPECT_EQ(a.switch_concurrency_alerts[i].limit,
              b.switch_concurrency_alerts[i].limit);
  }

  // Incident structs have defaulted equality covering culprits, victims,
  // and evidence.
  EXPECT_EQ(a.attribution.incidents, b.attribution.incidents);
  EXPECT_EQ(a.attribution.telemetry.alerts_explained,
            b.attribution.telemetry.alerts_explained);
  EXPECT_EQ(a.attribution.telemetry.alerts_orphaned,
            b.attribution.telemetry.alerts_orphaned);
  expect_telemetry_equal(a.telemetry, b.telemetry);
}

/// One string holding the report JSON plus all three job-facing exports,
/// for byte-for-byte comparison (everything a consumer can observe).
std::string render_all(const PrismReport& report, TimeWindow span) {
  std::ostringstream os;
  write_report_json(os, report);
  PerfettoExporter perfetto;
  JobSeriesCollector series;
  IncidentJournal journal;
  const WindowExportView view{span, &report, {}};
  perfetto.add_window(view);
  series.add_window(view);
  journal.add_window(view);
  journal.finish();
  perfetto.write(os);
  series.write_openmetrics(os);
  series.write_jsonl(os);
  journal.write_jsonl(os);
  return os.str();
}

class ColumnarEquivalenceTest
    : public ::testing::TestWithParam<std::size_t> {};

// The core differential: mapped LFT view path vs. the FlowTrace baseline,
// at 1/2/4/8 threads, with the zero-copy fast path asserted via the sort
// and materialization counters.
TEST_P(ColumnarEquivalenceTest, MappedViewMatchesFlowTracePath) {
  const Fixture& f = fixture();
  PrismConfig cfg;
  cfg.num_threads = GetParam();
  const Prism prism(f.sim.topology, cfg);

  const MappedFlowTrace mapped(f.lft_path);
  const FlowView view = mapped.view();
  ASSERT_TRUE(view.sorted) << "sorted LFT must load born-sorted";
  ASSERT_EQ(view.size(), f.sim.trace.size());

  const std::uint64_t sorts_before =
      obs::default_registry().counter("llmprism_flowtrace_sorts_total").value();
  const std::uint64_t mats_before = flow_materializations_total();
  const PrismReport report = prism.analyze(view);
  EXPECT_EQ(obs::default_registry()
                .counter("llmprism_flowtrace_sorts_total")
                .value(),
            sorts_before)
      << "sorted-LFT fast path must not physically sort flow data";
  EXPECT_EQ(flow_materializations_total(), mats_before)
      << "view path must never materialize FlowRecords";

  expect_reports_equal(f.baseline, report);
  const TimeWindow span = f.sim.trace.span();
  EXPECT_EQ(render_all(report, span), render_all(f.baseline, span));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ColumnarEquivalenceTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& param_info) {
                           return "Threads" + std::to_string(param_info.param);
                         });

// An unsorted view must still produce the identical report (through the
// argsort-gather path) — only the zero-sort guarantee is specific to
// sorted input.
TEST(ColumnarEquivalenceTest, UnsortedViewStillMatches) {
  const Fixture& f = fixture();
  // Reverse the sorted trace: maximally unsorted input, same flow set.
  FlowTrace reversed;
  reversed.reserve(f.sim.trace.size());
  for (std::size_t i = f.sim.trace.size(); i > 0; --i) {
    reversed.add(f.sim.trace[i - 1]);
  }
  const FlowColumns columns(reversed);
  ASSERT_FALSE(columns.view().sorted);
  PrismConfig cfg;
  cfg.num_threads = 1;
  const Prism prism(f.sim.topology, cfg);
  expect_reports_equal(f.baseline, prism.analyze(columns.view()));
}

// Guard against the differential passing vacuously: the mix must actually
// produce the findings whose equality the comparisons pin down.
TEST(ColumnarEquivalenceCoverageTest, MixProducesFindings) {
  const Fixture& f = fixture();
  ASSERT_EQ(f.baseline.jobs.size(), 3u);
  std::size_t step_alerts = 0;
  for (const JobAnalysis& j : f.baseline.jobs) {
    step_alerts += j.step_alerts.size();
  }
  EXPECT_GT(step_alerts, 0u);
  EXPECT_FALSE(f.baseline.switch_bandwidth_gbps.empty());
  EXPECT_FALSE(f.baseline.switch_bandwidth_alerts.empty());
  EXPECT_FALSE(f.baseline.attribution.incidents.empty());
  EXPECT_GT(f.baseline.telemetry.bocd_observations, 0u);
  EXPECT_GT(f.baseline.telemetry.steps_reconstructed, 0u);
}

}  // namespace
}  // namespace llmprism
