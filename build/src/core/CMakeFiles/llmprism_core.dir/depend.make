# Empty dependencies file for llmprism_core.
# This may be replaced when dependencies are built.
