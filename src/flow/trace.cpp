#include "llmprism/flow/trace.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "llmprism/obs/metrics.hpp"

namespace llmprism {

namespace {

/// Process-wide count of *physical* sorts (no-op calls on already-sorted
/// traces are free and not counted). Looked up once; the handle stays
/// valid for the registry's lifetime.
obs::Counter& sorts_counter() {
  static obs::Counter& counter = obs::default_registry().counter(
      "llmprism_flowtrace_sorts_total",
      "Physical FlowTrace sorts performed (no-op sorts on already-sorted "
      "traces are not counted)");
  return counter;
}

}  // namespace

FlowTrace::FlowTrace(std::vector<FlowRecord> flows)
    : flows_(std::move(flows)),
      sorted_(std::is_sorted(flows_.begin(), flows_.end(),
                             FlowStartTimeLess{})) {}

void FlowTrace::add(FlowRecord flow) {
  if (sorted_ && !flows_.empty() &&
      FlowStartTimeLess{}(flow, flows_.back())) {
    sorted_ = false;
  }
  flows_.push_back(std::move(flow));
}

void FlowTrace::append(const FlowTrace& other) {
  if (other.flows_.empty()) return;
  if (sorted_ &&
      !(other.sorted_ &&
        (flows_.empty() ||
         !FlowStartTimeLess{}(other.flows_.front(), flows_.back())))) {
    sorted_ = false;
  }
  flows_.insert(flows_.end(), other.flows_.begin(), other.flows_.end());
}

void FlowTrace::append(FlowTrace&& other) {
  if (other.flows_.empty()) return;
  if (flows_.empty() && flows_.capacity() < other.flows_.size()) {
    flows_ = std::move(other.flows_);
    sorted_ = other.sorted_;
  } else {
    if (sorted_ &&
        !(other.sorted_ &&
          (flows_.empty() ||
           !FlowStartTimeLess{}(other.flows_.front(), flows_.back())))) {
      sorted_ = false;
    }
    flows_.insert(flows_.end(),
                  std::make_move_iterator(other.flows_.begin()),
                  std::make_move_iterator(other.flows_.end()));
  }
  other.flows_.clear();
  other.sorted_ = true;
}

void FlowTrace::sort() {
  // Touch the counter handle even on the no-op path so the metric is
  // registered (and exported as 0) as soon as any trace enters the
  // pipeline boundary.
  obs::Counter& sorts = sorts_counter();
  if (is_sorted()) return;
  std::sort(flows_.begin(), flows_.end(), FlowStartTimeLess{});
  sorted_ = true;
  sorts.inc();
}

bool FlowTrace::is_sorted() const {
  if (sorted_) return true;
  if (std::is_sorted(flows_.begin(), flows_.end(), FlowStartTimeLess{})) {
    sorted_ = true;
  }
  return sorted_;
}

void FlowTrace::merge_sorted(FlowTrace other) {
  sort();
  other.sort();
  if (other.flows_.empty()) return;
  if (flows_.empty()) {
    flows_ = std::move(other.flows_);
    return;
  }
  // Pure-append fast path: the incoming run starts at or after our back.
  if (!FlowStartTimeLess{}(other.flows_.front(), flows_.back())) {
    flows_.insert(flows_.end(),
                  std::make_move_iterator(other.flows_.begin()),
                  std::make_move_iterator(other.flows_.end()));
    return;
  }
  std::vector<FlowRecord> merged;
  merged.reserve(flows_.size() + other.flows_.size());
  // std::merge keeps first-range elements before second-range on ties.
  std::merge(std::make_move_iterator(flows_.begin()),
             std::make_move_iterator(flows_.end()),
             std::make_move_iterator(other.flows_.begin()),
             std::make_move_iterator(other.flows_.end()),
             std::back_inserter(merged), FlowStartTimeLess{});
  flows_ = std::move(merged);
}

FlowTrace FlowTrace::merge_sorted_runs(std::vector<FlowTrace> runs) {
  std::size_t total = 0;
  for (FlowTrace& run : runs) {
    run.sort();
    total += run.size();
  }
  std::vector<FlowRecord> merged;
  merged.reserve(total);

  // Min-heap of run indices keyed by each run's next record; ties go to
  // the lower run index, so the merge is stable in the runs' order.
  std::vector<std::size_t> heads(runs.size(), 0);
  std::vector<std::size_t> heap;
  heap.reserve(runs.size());
  const auto later = [&](std::size_t a, std::size_t b) {
    const FlowRecord& fa = runs[a][heads[a]];
    const FlowRecord& fb = runs[b][heads[b]];
    if (FlowStartTimeLess{}(fa, fb)) return false;
    if (FlowStartTimeLess{}(fb, fa)) return true;
    return a > b;
  };
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push_back(r);
  }
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const std::size_t r = heap.back();
    heap.pop_back();
    merged.push_back(runs[r][heads[r]]);
    if (++heads[r] < runs[r].size()) {
      heap.push_back(r);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return FlowTrace(std::move(merged), SortedTag{});
}

void FlowTrace::drop_before(TimeNs t) {
  if (!is_sorted()) {
    throw std::logic_error("FlowTrace::drop_before requires a sorted trace");
  }
  const auto lo = std::lower_bound(
      flows_.begin(), flows_.end(), t,
      [](const FlowRecord& f, TimeNs at) { return f.start_time < at; });
  flows_.erase(flows_.begin(), lo);
}

FlowTrace FlowTrace::window(TimeWindow w) const {
  if (!is_sorted()) {
    throw std::logic_error("FlowTrace::window requires a sorted trace");
  }
  const auto lo = std::lower_bound(
      flows_.begin(), flows_.end(), w.begin,
      [](const FlowRecord& f, TimeNs t) { return f.start_time < t; });
  const auto hi = std::lower_bound(
      lo, flows_.end(), w.end,
      [](const FlowRecord& f, TimeNs t) { return f.start_time < t; });
  return FlowTrace(std::vector<FlowRecord>(lo, hi), SortedTag{});
}

TimeWindow FlowTrace::span() const {
  if (flows_.empty()) return {};
  TimeNs lo = flows_.front().start_time;
  TimeNs hi = flows_.front().end_time();
  for (const FlowRecord& f : flows_) {
    lo = std::min(lo, f.start_time);
    hi = std::max(hi, f.end_time());
  }
  return {lo, hi};
}

PairIndex::PairIndex(const FlowTrace& trace) {
  pair_of_flow_.resize(trace.size());
  std::vector<std::size_t> counts;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const GpuPair p = trace[i].pair();
    auto [it, inserted] =
        id_of_.emplace(p, static_cast<std::uint32_t>(pairs_.size()));
    if (inserted) {
      pairs_.push_back(p);
      counts.push_back(0);
    }
    pair_of_flow_[i] = it->second;
    ++counts[it->second];
  }
  offsets_.assign(pairs_.size() + 1, 0);
  for (std::size_t id = 0; id < pairs_.size(); ++id) {
    offsets_[id + 1] = offsets_[id] + counts[id];
  }
  positions_.resize(trace.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    positions_[cursor[pair_of_flow_[i]]++] = i;
  }
}

std::unordered_map<SwitchId, std::vector<std::size_t>> build_switch_index(
    const FlowTrace& trace) {
  std::unordered_map<SwitchId, std::vector<std::size_t>> index;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    for (const SwitchId sw : trace[i].switches) {
      index[sw].push_back(i);
    }
  }
  return index;
}

std::unordered_set<GpuId> endpoints(const FlowTrace& trace) {
  std::unordered_set<GpuId> out;
  for (const FlowRecord& f : trace) {
    out.insert(f.src);
    out.insert(f.dst);
  }
  return out;
}

std::vector<GpuPair> communication_pairs(const FlowTrace& trace) {
  std::unordered_set<GpuPair> seen;
  std::vector<GpuPair> out;
  for (const FlowRecord& f : trace) {
    if (seen.insert(f.pair()).second) out.push_back(f.pair());
  }
  return out;
}

}  // namespace llmprism
