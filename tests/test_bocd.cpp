// Unit tests for Bayesian Online Changepoint Detection.
#include "llmprism/bocd/bocd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "llmprism/common/rng.hpp"

namespace llmprism {
namespace {

TEST(BocdConfigTest, RejectsBadHazard) {
  BocdConfig cfg;
  cfg.hazard_lambda = 1.0;
  EXPECT_THROW(BocdDetector{cfg}, std::invalid_argument);
}

TEST(BocdConfigTest, RejectsBadThreshold) {
  BocdConfig cfg;
  cfg.changepoint_threshold = 1.0;
  EXPECT_THROW(BocdDetector{cfg}, std::invalid_argument);
  cfg.changepoint_threshold = 0.0;
  EXPECT_THROW(BocdDetector{cfg}, std::invalid_argument);
}

TEST(BocdConfigTest, RejectsNonPositivePrior) {
  BocdConfig cfg;
  cfg.prior_kappa = 0.0;
  EXPECT_THROW(BocdDetector{cfg}, std::invalid_argument);
}

TEST(BocdDetectorTest, FirstObservationIsNotAChangepoint) {
  BocdDetector detector;
  const double p = detector.observe(0.5);
  EXPECT_LT(p, 0.5);
  EXPECT_FALSE(detector.last_was_changepoint());
}

TEST(BocdDetectorTest, StationarySequenceHasNoChangepoints) {
  Rng rng(7);
  BocdDetector detector;
  for (int i = 0; i < 500; ++i) {
    detector.observe(rng.normal(10.0, 0.5));
    EXPECT_FALSE(detector.last_was_changepoint()) << "at observation " << i;
  }
}

TEST(BocdDetectorTest, RunLengthGrowsOnStationaryData) {
  // Data tighter than the prior: longer runs fit ever better, so the MAP
  // run length tracks the true (unbroken) run.
  Rng rng(3);
  BocdDetector detector;
  for (int i = 0; i < 100; ++i) detector.observe(rng.normal(5.0, 0.3));
  EXPECT_GT(detector.map_run_length(), 80u);
}

TEST(BocdDetectorTest, DetectsLargeMeanShift) {
  Rng rng(11);
  BocdDetector detector;
  for (int i = 0; i < 50; ++i) detector.observe(rng.normal(0.0, 0.2));
  // A 50-sigma jump must trip the detector immediately.
  detector.observe(10.0);
  EXPECT_TRUE(detector.last_was_changepoint());
}

TEST(BocdDetectorTest, ResetRestoresPriorState) {
  BocdDetector detector;
  for (int i = 0; i < 20; ++i) detector.observe(1.0 + 0.01 * i);
  detector.reset();
  EXPECT_EQ(detector.observations_seen(), 0u);
  EXPECT_EQ(detector.map_run_length(), 0u);
}

TEST(BocdDetectorTest, SurvivesExtremeValues) {
  BocdDetector detector;
  detector.observe(1e30);
  detector.observe(-1e30);
  detector.observe(0.0);
  // No NaNs/crashes; probability stays a probability.
  EXPECT_GE(detector.last_cp_probability(), 0.0);
  EXPECT_LE(detector.last_cp_probability(), 1.0);
}

TEST(BocdDetectorTest, IdenticalObservationsDoNotDivideByZero) {
  BocdDetector detector;
  for (int i = 0; i < 200; ++i) {
    const double p = detector.observe(5.0);
    EXPECT_TRUE(std::isfinite(p));
  }
  EXPECT_GT(detector.map_run_length(), 150u);
}

TEST(DetectChangepointsTest, FindsSingleShift) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) xs.push_back(rng.normal(0.0, 0.3));
  for (int i = 0; i < 60; ++i) xs.push_back(rng.normal(8.0, 0.3));
  const auto cps = detect_changepoints(xs);
  ASSERT_FALSE(cps.empty());
  // The first changepoint lands at (or just after) the true shift.
  EXPECT_GE(cps.front(), 59u);
  EXPECT_LE(cps.front(), 62u);
}

TEST(DetectChangepointsTest, EmptyInput) {
  EXPECT_TRUE(detect_changepoints({}).empty());
}

// ---------------------------------------------------------------------------
// segment_by_gaps: the step-division workhorse.

std::vector<TimeNs> burst_train(int bursts, int flows_per_burst,
                                DurationNs intra_gap, DurationNs inter_gap,
                                Rng& rng) {
  std::vector<TimeNs> ts;
  TimeNs t = 0;
  for (int b = 0; b < bursts; ++b) {
    for (int f = 0; f < flows_per_burst; ++f) {
      ts.push_back(t);
      t += intra_gap + static_cast<TimeNs>(
                           rng.uniform(0.0, 0.2 * static_cast<double>(intra_gap)));
    }
    t += inter_gap;
  }
  return ts;
}

TEST(SegmentByGapsTest, SplitsBurstsExactly) {
  Rng rng(5);
  // 10 bursts of 20 flows, 1 ms apart within a burst, 2 s between bursts —
  // the shape of per-pair DP traffic.
  const auto ts = burst_train(10, 20, kMillisecond, 2 * kSecond, rng);
  const auto starts = segment_by_gaps(ts);
  ASSERT_EQ(starts.size(), 10u);
  for (std::size_t b = 0; b < starts.size(); ++b) {
    EXPECT_EQ(starts[b], b * 20) << "burst " << b;
  }
}

TEST(SegmentByGapsTest, SingleBurstYieldsOneSegment) {
  Rng rng(6);
  const auto ts = burst_train(1, 50, kMillisecond, 0, rng);
  const auto starts = segment_by_gaps(ts);
  EXPECT_EQ(starts.size(), 1u);
}

TEST(SegmentByGapsTest, EmptyAndSingleton) {
  EXPECT_TRUE(segment_by_gaps({}).empty());
  const std::vector<TimeNs> one{42};
  const auto starts = segment_by_gaps(one);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 0u);
}

TEST(SegmentByGapsTest, ThrowsOnUnsortedInput) {
  const std::vector<TimeNs> ts{10, 5, 20};
  EXPECT_THROW(segment_by_gaps(ts), std::invalid_argument);
}

TEST(SegmentByGapsTest, RobustToIntervalJitter) {
  Rng rng(9);
  std::vector<TimeNs> ts;
  TimeNs t = 0;
  for (int b = 0; b < 8; ++b) {
    for (int f = 0; f < 30; ++f) {
      ts.push_back(t);
      // within-burst intervals vary 0.5–3 ms
      t += static_cast<TimeNs>(rng.uniform(0.5e6, 3e6));
    }
    t += 3 * kSecond;
  }
  const auto starts = segment_by_gaps(ts);
  EXPECT_EQ(starts.size(), 8u);
}

TEST(SegmentByGapsTest, MinimalWarmupGap) {
  // The smallest warm-up BOCD can honestly split on: enough pre-gap
  // intervals to learn that traffic is tight (a gap after a single
  // observation is statistically indistinguishable from a broad run).
  std::vector<TimeNs> ts;
  for (int i = 0; i < 8; ++i) ts.push_back(i * 2 * kMillisecond);
  const TimeNs gap_start = ts.back() + 5 * kSecond;
  for (int i = 0; i < 4; ++i) ts.push_back(gap_start + i * 2 * kMillisecond);
  const auto starts = segment_by_gaps(ts);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1], 8u);
}

// Property sweep: segmentation recovers the burst count across a range of
// burst shapes.
struct GapSweepParam {
  int bursts;
  int flows_per_burst;
  DurationNs intra_gap;
  DurationNs inter_gap;
};

class SegmentByGapsSweep : public ::testing::TestWithParam<GapSweepParam> {};

TEST_P(SegmentByGapsSweep, RecoversBurstCount) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.bursts * 1000 + p.flows_per_burst));
  const auto ts =
      burst_train(p.bursts, p.flows_per_burst, p.intra_gap, p.inter_gap, rng);
  const auto starts = segment_by_gaps(ts);
  EXPECT_EQ(starts.size(), static_cast<std::size_t>(p.bursts));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SegmentByGapsSweep,
    ::testing::Values(
        GapSweepParam{5, 10, kMillisecond, kSecond},
        GapSweepParam{20, 8, kMillisecond, 500 * kMillisecond},
        GapSweepParam{3, 100, 100 * kMicrosecond, 2 * kSecond},
        GapSweepParam{50, 16, 2 * kMillisecond, 800 * kMillisecond},
        GapSweepParam{10, 8, 10 * kMillisecond, 4 * kSecond},
        GapSweepParam{7, 64, 500 * kMicrosecond, kSecond}));

}  // namespace
}  // namespace llmprism
