# Empty compiler generated dependencies file for prism.
# This may be replaced when dependencies are built.
