// Incident lifecycle journal: attribution incidents correlated across
// windows into open -> update -> resolve events.
//
// A PrismReport's incident list is amnesiac — the same straggler produces
// a fresh AttributedIncident every window, and nothing says whether a
// fault is new, ongoing, or gone. The journal keys each incident by its
// *identity* (owning job's stable monitor id, culprit kind, and the origin
// vertex — rank gpu / DP group index / switch id) and derives a stable
// 16-hex id from xxhash64 over that key, so the same fault maps to the
// same id in every window and across restarts:
//  * first window a key appears   -> "open"   (origin, step range,
//    confidence, victim count),
//  * key seen again               -> "update" (confidence / victim deltas,
//    windows active),
//  * key absent for
//    JournalOptions::resolve_after_windows windows (or finish()) ->
//    "resolve" (first/last window, confidence min/max/last trajectory).
// Incidents sharing a key within one window are deduplicated (step ranges
// merged, victims summed, max confidence) before lifecycle matching.
//
// Output is JSONL behind a schema_version header line; every line is an
// independently parseable JSON object. Deterministic: std::map-ordered
// keys, no wall clock — bit-identical across thread counts and warm/cold
// sessions.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "llmprism/export/view.hpp"

namespace llmprism {

struct JournalOptions {
  /// Windows a key must stay absent before its incident resolves. 1 =
  /// resolve as soon as a window no longer reports it; higher values ride
  /// out flapping detections.
  std::size_t resolve_after_windows = 1;
};

class IncidentJournal {
 public:
  explicit IncidentJournal(JournalOptions options = {});

  /// Append one analyzed window (in time order).
  void add_window(const WindowExportView& view);

  /// End of feed: resolve every still-open incident. Idempotent.
  void finish();

  /// Write the JSONL stream: {"schema_version":1,"stream":
  /// "incident_journal"} header, then one event object per line.
  void write_jsonl(std::ostream& os) const;

  [[nodiscard]] std::size_t num_events() const { return num_events_; }
  [[nodiscard]] std::size_t num_open() const { return open_.size(); }

 private:
  /// Identity of a fault across windows. Orders the per-window iteration,
  /// so event emission is deterministic.
  struct Key {
    std::uint64_t job = 0;  ///< stable job id; ~0 for cluster-level
    std::uint8_t kind = 0;  ///< CulpritKind
    std::uint64_t identity = 0;  ///< gpu / dp_group_index / switch id

    friend auto operator<=>(const Key&, const Key&) = default;
  };

  /// One window's deduplicated view of a key.
  struct WindowAgg {
    std::size_t step_begin = 0;
    std::size_t step_end = 0;
    double confidence = 0;
    double score = 0;            ///< top culprit's blame score
    std::uint64_t victims = 0;
    std::uint64_t culprits = 0;
  };

  /// Lifecycle state of an open incident.
  struct OpenState {
    std::string id;              ///< 16-hex stable id
    std::size_t first_window = 0;
    std::size_t last_window = 0; ///< last window the key was seen in
    std::size_t windows_active = 0;
    TimeNs last_seen_end = 0;    ///< end of the last window seen in
    double confidence_last = 0;
    double confidence_min = 0;
    double confidence_max = 0;
    std::uint64_t victims_last = 0;
  };

  void emit_resolve(const Key& key, const OpenState& st,
                    std::size_t at_window, TimeNs at_time);
  std::string& next_line();

  JournalOptions options_;
  std::size_t window_index_ = 0;  ///< windows ingested so far
  TimeNs last_window_end_ = 0;
  std::map<Key, OpenState> open_;
  std::string lines_;             ///< serialized events, '\n'-separated
  std::size_t num_events_ = 0;
  bool finished_ = false;
};

}  // namespace llmprism
