#include "llmprism/parallelism/placement.hpp"

#include <numeric>
#include <stdexcept>

namespace llmprism {

JobPlacement::JobPlacement(const RankMap& rank_map,
                           std::vector<MachineId> machines,
                           const ClusterTopology& topology,
                           bool require_tp_intra_node)
    : machines_(std::move(machines)) {
  const std::uint32_t world = rank_map.world_size();
  const std::uint32_t per_machine = topology.config().gpus_per_machine;
  if (machines_.size() * per_machine != world) {
    throw std::invalid_argument(
        "placement: machine capacity (" +
        std::to_string(machines_.size() * per_machine) +
        " GPUs) must equal world size (" + std::to_string(world) + ")");
  }

  rank_to_gpu_.reserve(world);
  gpu_to_rank_.reserve(world);
  for (std::uint32_t r = 0; r < world; ++r) {
    const MachineId machine = machines_[r / per_machine];
    const GpuId gpu(machine.value() * per_machine + r % per_machine);
    rank_to_gpu_.push_back(gpu);
    if (!gpu_to_rank_.emplace(gpu, RankId(r)).second) {
      throw std::invalid_argument("placement: duplicate machine in list");
    }
  }

  if (require_tp_intra_node) {
    const auto& cfg = rank_map.config();
    for (std::uint32_t p = 0; p < cfg.pp; ++p) {
      for (std::uint32_t d = 0; d < cfg.dp; ++d) {
        const auto group = rank_map.tp_group(d, p);
        const MachineId first = topology.machine_of(gpu_of(group.front()));
        for (const RankId r : group) {
          if (topology.machine_of(gpu_of(r)) != first) {
            throw std::invalid_argument(
                "placement: TP group spans machines (tp must divide "
                "gpus_per_machine with Megatron rank order)");
          }
        }
      }
    }
  }
}

GpuId JobPlacement::gpu_of(RankId rank) const {
  if (!rank.valid() || rank.value() >= rank_to_gpu_.size()) {
    throw std::out_of_range("placement: rank out of range");
  }
  return rank_to_gpu_[rank.value()];
}

RankId JobPlacement::rank_of(GpuId gpu) const {
  const auto it = gpu_to_rank_.find(gpu);
  return it == gpu_to_rank_.end() ? RankId::invalid() : it->second;
}

std::vector<GpuId> JobPlacement::all_gpus() const { return rank_to_gpu_; }

std::vector<std::pair<RankId, RankId>> ring_edges(
    const std::vector<RankId>& group, std::uint32_t channel) {
  std::vector<std::pair<RankId, RankId>> edges;
  const std::size_t n = group.size();
  if (n < 2) return edges;
  if (n == 2) {
    edges.emplace_back(group[0], group[1]);
    return edges;
  }

  // Pick the (channel+1)-th smallest stride coprime with n; distinct strides
  // below n/2 produce disjoint undirected ring edge sets.
  std::uint32_t stride = 0;
  std::uint32_t found = 0;
  for (std::uint32_t s = 1; s < n; ++s) {
    if (std::gcd(s, static_cast<std::uint32_t>(n)) == 1) {
      stride = s;
      if (found == channel) break;
      ++found;
    }
  }

  edges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + stride) % n;
    edges.emplace_back(group[i], group[j]);
  }
  return edges;
}

}  // namespace llmprism
