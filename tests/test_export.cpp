// The job-facing observability plane: Perfetto timeline export, per-job
// OpenMetrics series, and the incident lifecycle journal.
//
//  * structural validity: Chrome-trace JSON parses (json_lint), carries
//    per-rank tracks, phase slices, alert instants and counter samples;
//  * OpenMetrics exposition follows the text-format grammar, keeps metric
//    families contiguous and terminates with # EOF;
//  * the journal turns an injected straggler into exactly one deduplicated
//    open -> resolve lifecycle with a stable content-derived id;
//  * escaping: hostile job names (quotes, backslashes, control bytes,
//    non-ASCII) cannot break the JSON documents;
//  * edge cases: zero windows and single-window one-shot views;
//  * determinism: re-exporting the same ticks is byte-identical.
// (Cross-thread-count and warm/cold byte-equality of these exports is
// asserted in test_parallel_equivalence.cpp / test_session_equivalence.cpp.)
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "llmprism/core/monitor.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/export/journal.hpp"
#include "llmprism/export/perfetto.hpp"
#include "llmprism/export/series.hpp"
#include "llmprism/export/view.hpp"
#include "llmprism/simulator/cluster_sim.hpp"
#include "json_lint.hpp"

namespace llmprism {
namespace {

using testing::is_valid_json;
using testing::is_versioned_json;

JobSimConfig job(std::uint32_t tp, std::uint32_t dp, std::uint32_t pp,
                 std::uint32_t steps) {
  JobSimConfig cfg;
  cfg.parallelism.tp = tp;
  cfg.parallelism.dp = dp;
  cfg.parallelism.pp = pp;
  cfg.parallelism.micro_batches = 4;
  cfg.num_steps = steps;
  return cfg;
}

// Rank 8 is the first rank of its tp=8 sibling group, so the attributor's
// group representative (lowest-gpu co-culprit) is the straggler itself.
constexpr std::uint32_t kStragglerRank = 8;

/// Three tenants, one mid-run straggler in the pipeline-parallel job;
/// monitored in fixed windows. Built once, shared by every test.
struct Fleet {
  ClusterSimResult sim;
  std::vector<MonitorTick> ticks;
};

Fleet build_fleet() {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 12, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  auto j0 = job(8, 2, 2, 24);
  j0.stragglers.push_back({.rank = kStragglerRank, .step_begin = 8,
                           .step_end = 20, .slowdown = 2.5});
  cfg.jobs.push_back({j0, {}});
  cfg.jobs.push_back({job(8, 4, 1, 24), {}});
  cfg.jobs.push_back({job(4, 2, 2, 24), {}});
  cfg.seed = 77;
  ClusterSimResult sim = run_cluster_sim(cfg);

  MonitorConfig mc;
  mc.window = 4 * kSecond;
  OnlineMonitor monitor(sim.topology, mc);
  std::vector<MonitorTick> ticks = monitor.ingest(sim.trace);
  if (auto last = monitor.flush()) ticks.push_back(std::move(*last));
  return {std::move(sim), std::move(ticks)};
}

const Fleet& fleet() {
  static const Fleet* shared = new Fleet(build_fleet());
  return *shared;
}

std::string perfetto_output(const PerfettoOptions& options = {}) {
  PerfettoExporter exporter(options);
  for (const MonitorTick& tick : fleet().ticks) {
    exporter.add_window(export_view(tick));
  }
  std::ostringstream os;
  exporter.write(os);
  return os.str();
}

std::string series_openmetrics() {
  JobSeriesCollector series;
  for (const MonitorTick& tick : fleet().ticks) {
    series.add_window(export_view(tick));
  }
  std::ostringstream os;
  series.write_openmetrics(os);
  return os.str();
}

std::string series_jsonl() {
  JobSeriesCollector series;
  for (const MonitorTick& tick : fleet().ticks) {
    series.add_window(export_view(tick));
  }
  std::ostringstream os;
  series.write_jsonl(os);
  return os.str();
}

std::string journal_jsonl(JournalOptions options = {}) {
  IncidentJournal journal(options);
  for (const MonitorTick& tick : fleet().ticks) {
    journal.add_window(export_view(tick));
  }
  journal.finish();
  std::ostringstream os;
  journal.write_jsonl(os);
  return os.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  return lines;
}

/// Value of a top-level `"key":"string"` field, or "" when absent.
std::string string_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return {};
  const auto begin = at + needle.size();
  const auto end = line.find('"', begin);
  return line.substr(begin, end - begin);
}

// --- Perfetto -------------------------------------------------------------

TEST(PerfettoExport, IsValidVersionedChromeTraceJson) {
  const std::string out = perfetto_output();
  ASSERT_TRUE(is_valid_json(out)) << testing::JsonLinter(out).error();
  EXPECT_TRUE(is_versioned_json(out));
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
}

TEST(PerfettoExport, HasPerRankTracksPhaseSlicesAndAlertInstants) {
  const std::string out = perfetto_output();
  // Process + thread metadata for the per-job, per-rank track layout.
  EXPECT_NE(out.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("rank 0 (gpu"), std::string::npos);
  // Phase slices from the reconstructed timeline events.
  for (const char* phase : {"\"name\":\"compute\"", "\"name\":\"pp_send\"",
                            "\"name\":\"pp_recv\"", "\"name\":\"dp_sync\"",
                            "\"name\":\"step 0\""}) {
    EXPECT_NE(out.find(phase), std::string::npos) << phase;
  }
  // The injected straggler must surface as thread-scoped instant events.
  EXPECT_NE(out.find("\"name\":\"step alert\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  // Per-comm-type counter track.
  EXPECT_NE(out.find("\"name\":\"comm bytes/s\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
}

TEST(PerfettoExport, EscapesHostileJobNames) {
  PerfettoOptions options;
  options.job_names[0] = "tenant \"a\\b\"\n\x01 caf\xc3\xa9";
  const std::string out = perfetto_output(options);
  ASSERT_TRUE(is_valid_json(out)) << testing::JsonLinter(out).error();
  EXPECT_NE(out.find("tenant \\\"a\\\\b\\\"\\n\\u0001 caf\xc3\xa9"),
            std::string::npos);
}

TEST(PerfettoExport, EmptyExportIsValid) {
  PerfettoExporter exporter;
  std::ostringstream os;
  exporter.write(os);
  EXPECT_TRUE(is_valid_json(os.str()));
  EXPECT_TRUE(is_versioned_json(os.str()));
  EXPECT_EQ(exporter.num_events(), 0u);
}

TEST(PerfettoExport, DeterministicAcrossReruns) {
  EXPECT_EQ(perfetto_output(), perfetto_output());
}

// --- OpenMetrics series ---------------------------------------------------

/// name[{labels}] value timestamp — the slice of the exposition grammar
/// the series writer emits.
bool is_sample_line(const std::string& line) {
  std::size_t pos = 0;
  const auto name_char = [](char c, bool first) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || (!first && std::isdigit(static_cast<unsigned char>(c)));
  };
  if (line.empty() || !name_char(line[0], true)) return false;
  while (pos < line.size() && name_char(line[pos], false)) ++pos;
  if (pos < line.size() && line[pos] == '{') {
    const auto close = line.find('}', pos);
    if (close == std::string::npos) return false;
    pos = close + 1;
  }
  if (pos >= line.size() || line[pos] != ' ') return false;
  // value + timestamp: two space-separated float tokens.
  const std::string rest = line.substr(pos + 1);
  const auto space = rest.find(' ');
  if (space == std::string::npos) return false;
  char* end = nullptr;
  std::string value = rest.substr(0, space);
  std::string ts = rest.substr(space + 1);
  (void)std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') return false;
  (void)std::strtod(ts.c_str(), &end);
  return end != ts.c_str() && *end == '\0';
}

TEST(SeriesExport, OpenMetricsGrammarAndEofTerminator) {
  const std::string out = series_openmetrics();
  const auto lines = lines_of(out);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    const std::string& line = lines[i];
    const bool comment = line.rfind("# HELP ", 0) == 0 ||
                         line.rfind("# TYPE ", 0) == 0;
    EXPECT_TRUE(comment || is_sample_line(line)) << "bad line: " << line;
  }
}

TEST(SeriesExport, FamiliesAreContiguousAndLabelled) {
  const std::string out = series_openmetrics();
  // Family order of first appearance must have no later re-appearance.
  std::vector<std::string> family_order;
  for (const std::string& line : lines_of(out)) {
    if (line.empty() || line[0] == '#') continue;
    const std::string family = line.substr(0, line.find_first_of(" {"));
    if (family_order.empty() || family_order.back() != family) {
      for (const std::string& seen : family_order) {
        EXPECT_NE(seen, family) << "family split: " << family;
      }
      family_order.push_back(family);
    }
  }
  for (const char* expected :
       {"llmprism_job_step_duration_seconds", "llmprism_job_steps",
        "llmprism_job_comm_bandwidth_gbps", "llmprism_job_pp_bubble_ratio",
        "llmprism_job_self_time_excess_ratio", "llmprism_job_alerts",
        "llmprism_job_incidents", "llmprism_job_flows",
        "llmprism_rank_self_time_seconds"}) {
    EXPECT_NE(std::find(family_order.begin(), family_order.end(), expected),
              family_order.end())
        << expected;
  }
  EXPECT_NE(out.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(out.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_NE(out.find("comm_type=\"dp\""), std::string::npos);
  EXPECT_NE(out.find("comm_type=\"pp\""), std::string::npos);
}

TEST(SeriesExport, JsonlHeaderAndEveryLineParses) {
  const auto lines = lines_of(series_jsonl());
  ASSERT_GE(lines.size(), 2u);  // header + at least one sample
  EXPECT_TRUE(is_versioned_json(lines[0]));
  EXPECT_NE(lines[0].find("\"stream\":\"job_series\""), std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_TRUE(is_valid_json(line)) << line;
  }
  // One sample per (window, job): 3 jobs per complete window.
  JobSeriesCollector series;
  for (const MonitorTick& tick : fleet().ticks) {
    series.add_window(export_view(tick));
  }
  EXPECT_EQ(lines.size() - 1, series.samples().size());
  EXPECT_GE(series.samples().size(), 3u);
}

TEST(SeriesExport, StragglerWindowShowsSelfTimeExcess) {
  JobSeriesCollector series;
  for (const MonitorTick& tick : fleet().ticks) {
    series.add_window(export_view(tick));
  }
  double max_excess = 0;
  for (const JobWindowSample& s : series.samples()) {
    max_excess = std::max(max_excess, s.self_time_excess);
  }
  // A 2.5x compute straggler must dominate every healthy-window baseline.
  EXPECT_GT(max_excess, 0.5);
}

TEST(SeriesExport, EmptyCollectorStillTerminates) {
  JobSeriesCollector series;
  std::ostringstream om;
  series.write_openmetrics(om);
  const auto lines = lines_of(om.str());
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");
  std::ostringstream jl;
  series.write_jsonl(jl);
  EXPECT_TRUE(is_versioned_json(lines_of(jl.str()).at(0)));
}

TEST(SeriesExport, DeterministicAcrossReruns) {
  EXPECT_EQ(series_openmetrics(), series_openmetrics());
  EXPECT_EQ(series_jsonl(), series_jsonl());
}

// --- Incident journal -----------------------------------------------------

TEST(JournalExport, EveryLineParsesBehindVersionedHeader) {
  const auto lines = lines_of(journal_jsonl());
  ASSERT_FALSE(lines.empty());
  EXPECT_TRUE(is_versioned_json(lines[0]));
  EXPECT_NE(lines[0].find("\"stream\":\"incident_journal\""),
            std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_TRUE(is_valid_json(line)) << line;
  }
}

TEST(JournalExport, InjectedStragglerHasOneOpenResolveLifecycle) {
  const auto lines = lines_of(journal_jsonl());
  const GpuId straggler_gpu = fleet().sim.jobs.at(0).gpus.at(kStragglerRank);
  const std::string gpu_field =
      "\"gpu\":" + std::to_string(straggler_gpu.value());

  std::string id;
  std::size_t opens = 0;
  for (const std::string& line : lines) {
    if (string_field(line, "event") == "open" &&
        string_field(line, "kind") == "rank" &&
        line.find(gpu_field) != std::string::npos) {
      ++opens;
      id = string_field(line, "id");
    }
  }
  ASSERT_EQ(opens, 1u) << "straggler must open exactly one incident";
  ASSERT_EQ(id.size(), 16u) << "content-derived id must be 16 hex chars";

  // The lifecycle of that id: open first, resolve last, nothing after.
  std::vector<std::string> events;
  for (const std::string& line : lines) {
    if (string_field(line, "id") == id) {
      events.push_back(string_field(line, "event"));
    }
  }
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front(), "open");
  EXPECT_EQ(events.back(), "resolve");
  for (std::size_t i = 1; i + 1 < events.size(); ++i) {
    EXPECT_EQ(events[i], "update") << "event " << i;
  }
}

TEST(JournalExport, StableIdsSurviveRestart) {
  // Re-running the same feed through a fresh journal derives the same ids
  // (they are content-derived, not allocation order).
  EXPECT_EQ(journal_jsonl(), journal_jsonl());
}

TEST(JournalExport, EmptyJournalIsJustTheHeader) {
  IncidentJournal journal;
  journal.finish();
  std::ostringstream os;
  journal.write_jsonl(os);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(is_versioned_json(lines[0]));
  EXPECT_EQ(journal.num_events(), 0u);
}

// --- single-window (one-shot) views ---------------------------------------

TEST(OneShotExport, SingleWindowViewDrivesAllThreeExports) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 4, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  auto j = job(8, 2, 2, 14);
  j.stragglers.push_back(
      {.rank = 3, .step_begin = 8, .step_end = 10, .slowdown = 2.5});
  cfg.jobs.push_back({j, {}});
  cfg.seed = 5;
  const ClusterSimResult sim = run_cluster_sim(cfg);

  const Prism prism(sim.topology);
  const PrismReport report = prism.analyze(sim.trace);
  const WindowExportView view{sim.trace.span(), &report, {}};

  PerfettoExporter perfetto;
  perfetto.add_window(view);
  std::ostringstream pf;
  perfetto.write(pf);
  EXPECT_TRUE(is_valid_json(pf.str()))
      << testing::JsonLinter(pf.str()).error();
  EXPECT_GT(perfetto.num_events(), 0u);

  JobSeriesCollector series;
  series.add_window(view);
  ASSERT_EQ(series.samples().size(), 1u);
  EXPECT_GT(series.samples()[0].steps, 0u);
  std::ostringstream om;
  series.write_openmetrics(om);
  EXPECT_EQ(lines_of(om.str()).back(), "# EOF");

  IncidentJournal journal;
  journal.add_window(view);
  journal.finish();
  std::ostringstream jl;
  journal.write_jsonl(jl);
  for (const std::string& line : lines_of(jl.str())) {
    EXPECT_TRUE(is_valid_json(line)) << line;
  }
  // One window: whatever opened must have resolved by finish().
  EXPECT_EQ(journal.num_open(), 0u);
}

}  // namespace
}  // namespace llmprism
