file(REMOVE_RECURSE
  "CMakeFiles/test_bocd.dir/test_bocd.cpp.o"
  "CMakeFiles/test_bocd.dir/test_bocd.cpp.o.d"
  "test_bocd"
  "test_bocd.pdb"
  "test_bocd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bocd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
