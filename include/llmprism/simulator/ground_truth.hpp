// Ground-truth records captured by the simulator.
//
// The analysis side (src/core) never sees these — they stand in for the
// paper's evaluation oracles: tenant-confirmed job membership (§V-A),
// known parallelism configurations (§V-B), and PyTorch-Profiler reference
// timelines (§V-C).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "llmprism/common/comm_type.hpp"
#include "llmprism/common/ids.hpp"
#include "llmprism/common/time.hpp"

namespace llmprism {

/// True boundaries of one training step (global, synchronized across the
/// job) plus the DP communication span of each DP group in that step.
struct StepTruth {
  TimeNs begin = 0;       ///< step start (first compute launches)
  TimeNs end = 0;         ///< step end (optimizer update finished)
  TimeNs dp_end = 0;      ///< when the last DP flow of the step ended

  [[nodiscard]] DurationNs duration() const { return end - begin; }
};

/// Per-(DP group, step) communication span, for cross-group diagnosis
/// ground truth.
struct DpGroupStepTruth {
  TimeNs dp_begin = 0;
  TimeNs dp_end = 0;

  [[nodiscard]] DurationNs duration() const { return dp_end - dp_begin; }
};

/// Kinds of injected performance anomalies.
enum class AnomalyKind : std::uint8_t {
  kStraggler,     ///< one rank computes slowly for a step range
  kSlowDpGroup,   ///< one DP group's collective is slowed (congestion)
  kDegradedSwitch ///< a switch's bandwidth is cut over a window
};

/// Label of one injected anomaly; diagnosis benches score alerts against
/// these.
struct InjectedAnomaly {
  AnomalyKind kind{};
  JobId job;                      ///< affected job (invalid for switch faults)
  std::uint32_t step_begin = 0;   ///< first affected step (inclusive)
  std::uint32_t step_end = 0;     ///< last affected step (inclusive)
  RankId rank;                    ///< straggler only
  std::uint32_t dp_group_index = 0;  ///< slow-DP-group only
  SwitchId switch_id;             ///< degraded-switch only
  double severity = 1.0;          ///< slowdown factor applied
};

/// Everything the simulator knows about one job.
struct JobTruth {
  JobId id;
  std::vector<GpuId> gpus;  ///< all GPUs of the job, rank order
  /// True type of every *cross-machine* communication pair.
  std::unordered_map<GpuPair, CommType> pair_types;
  /// Global step boundaries (same for every rank; training is synchronous).
  std::vector<StepTruth> steps;
  /// dp_group_spans[g][k]: DP span of group g in step k. Group indexing
  /// follows RankMap::all_dp_groups() order.
  std::vector<std::vector<DpGroupStepTruth>> dp_group_spans;
  /// Ring edges of each DP group (cross-machine only), same group order.
  std::vector<std::vector<GpuPair>> dp_group_edges;
  /// dp_group_of_rank[r]: index (into the group order above) of rank r's DP
  /// group. Used to map a GPU to its true per-step DP spans.
  std::vector<std::size_t> dp_group_of_rank;
};

}  // namespace llmprism
