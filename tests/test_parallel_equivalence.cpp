// Differential tests for the parallel per-job pipeline: the full
// PrismReport produced with num_threads in {2, 4, 8} must be
// field-for-field identical to the sequential num_threads = 1 path —
// including alert ordering and the cluster-wide switch_bandwidth_gbps
// series — on cluster mixes of 1, 3, and 8 jobs with collection noise and
// injected faults. The same holds for OnlineMonitor ticks when several
// windows of one batch are analyzed concurrently.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "llmprism/core/monitor.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/export/journal.hpp"
#include "llmprism/export/perfetto.hpp"
#include "llmprism/export/series.hpp"
#include "llmprism/export/view.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

JobSimConfig job(std::uint32_t tp, std::uint32_t dp, std::uint32_t pp,
                 std::uint32_t steps) {
  JobSimConfig cfg;
  cfg.parallelism.tp = tp;
  cfg.parallelism.dp = dp;
  cfg.parallelism.pp = pp;
  cfg.parallelism.micro_batches = 4;
  cfg.num_steps = steps;
  return cfg;
}

NoiseConfig collection_noise() {
  NoiseConfig noise;
  noise.drop_rate = 0.02;
  noise.duplicate_rate = 0.01;
  noise.size_jitter_rate = 0.1;
  noise.partial_record_rate = 0.01;
  noise.time_jitter = 50 * kMicrosecond;
  noise.degraded_pair_fraction = 0.1;
  return noise;
}

ClusterSimConfig one_job_mix() {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 4, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  auto j = job(8, 2, 2, 14);
  j.stragglers.push_back(
      {.rank = 3, .step_begin = 8, .step_end = 9, .slowdown = 2.5});
  cfg.jobs.push_back({j, {}});
  cfg.noise = collection_noise();
  cfg.seed = 11;
  return cfg;
}

ClusterSimConfig three_job_mix() {
  ClusterSimConfig cfg;
  // machines_per_leaf = 2 yields 6 leaves + 4 spines: enough switches for
  // the cross-switch k-sigma rule (min_samples = 6) to engage, so the
  // injected degradation below actually produces switch alerts to compare.
  cfg.topology = {.num_machines = 12, .gpus_per_machine = 8,
                  .machines_per_leaf = 2, .num_spines = 4};
  auto j0 = job(8, 2, 2, 12);
  j0.stragglers.push_back(
      {.rank = 1, .step_begin = 7, .step_end = 7, .slowdown = 3.0});
  cfg.jobs.push_back({j0, {}});
  cfg.jobs.push_back({job(8, 4, 1, 12), {}});
  cfg.jobs.push_back({job(4, 2, 2, 12), {}});
  cfg.noise = collection_noise();
  cfg.switch_faults.push_back(
      {SwitchId(0), TimeWindow{0, 600 * kSecond}, 0.3});
  cfg.seed = 12;
  return cfg;
}

// One job occupying the whole cluster. With a single job, the per-job
// fan-out degenerates to one task, so any thread-count dependence here can
// only come from the INTRA-job parallelism (per-pair comm classification
// and per-GPU timeline assembly sharing the pool) — the scenario the
// per-job mixes above cannot isolate.
ClusterSimConfig huge_job_mix() {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  auto j = job(8, 8, 2, 12);
  j.stragglers.push_back(
      {.rank = 5, .step_begin = 6, .step_end = 7, .slowdown = 2.5});
  j.slow_dp_groups.push_back({.tp_idx = 2, .pp_idx = 1, .step_begin = 4,
                              .step_end = 5, .slowdown = 3.0});
  cfg.jobs.push_back({j, {}});
  cfg.noise = collection_noise();
  cfg.switch_faults.push_back(
      {SwitchId(1), TimeWindow{0, 600 * kSecond}, 0.3});
  cfg.seed = 14;
  return cfg;
}

ClusterSimConfig eight_job_mix() {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  for (std::uint32_t i = 0; i < 8; ++i) {
    auto j = job(8, 2, 1, 10);
    if (i == 2) {
      j.stragglers.push_back(
          {.rank = 0, .step_begin = 6, .step_end = 6, .slowdown = 2.5});
    }
    if (i == 5) {
      j.slow_dp_groups.push_back(
          {.tp_idx = 1, .pp_idx = 0, .step_begin = 5, .step_end = 7,
           .slowdown = 3.0});
    }
    cfg.jobs.push_back({j, {}});
  }
  cfg.noise = collection_noise();
  cfg.switch_faults.push_back(
      {SwitchId(2), TimeWindow{0, 600 * kSecond}, 0.25});
  cfg.seed = 13;
  return cfg;
}

PrismConfig prism_config(std::size_t num_threads) {
  PrismConfig cfg;
  cfg.num_threads = num_threads;
  return cfg;
}

// --- field-for-field comparison helpers -----------------------------------

void expect_traces_equal(const FlowColumns& a, const FlowColumns& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "flow " << i;
  }
}

void expect_recognized_jobs_equal(const RecognizedJob& a,
                                  const RecognizedJob& b) {
  EXPECT_EQ(a.gpus, b.gpus);
  EXPECT_EQ(a.observed_gpus, b.observed_gpus);
  EXPECT_EQ(a.machines, b.machines);
  EXPECT_EQ(a.cross_machine_clusters, b.cross_machine_clusters);
}

void expect_comm_types_equal(const CommTypeResult& a, const CommTypeResult& b) {
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    SCOPED_TRACE("pair " + std::to_string(i));
    EXPECT_EQ(a.pairs[i].pair, b.pairs[i].pair);
    EXPECT_EQ(a.pairs[i].type, b.pairs[i].type);
    EXPECT_EQ(a.pairs[i].pre_refinement_type, b.pairs[i].pre_refinement_type);
    EXPECT_EQ(a.pairs[i].num_flows, b.pairs[i].num_flows);
    EXPECT_EQ(a.pairs[i].num_steps_observed, b.pairs[i].num_steps_observed);
  }
  EXPECT_EQ(a.dp_components, b.dp_components);
}

void expect_inferred_equal(const InferredParallelism& a,
                           const InferredParallelism& b) {
  EXPECT_EQ(a.world_size, b.world_size);
  EXPECT_EQ(a.dp, b.dp);
  EXPECT_EQ(a.pp, b.pp);
  EXPECT_EQ(a.tp, b.tp);
  EXPECT_EQ(a.micro_batches, b.micro_batches);
  EXPECT_EQ(a.dp_groups_uniform, b.dp_groups_uniform);
  EXPECT_EQ(a.pp_chains_uniform, b.pp_chains_uniform);
  EXPECT_EQ(a.divides_world, b.divides_world);
  EXPECT_EQ(a.dp_groups_complete, b.dp_groups_complete);
}

void expect_timelines_equal(const GpuTimeline& a, const GpuTimeline& b) {
  EXPECT_EQ(a.gpu, b.gpu);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].start, b.events[i].start);
    EXPECT_EQ(a.events[i].end, b.events[i].end);
    EXPECT_EQ(a.events[i].peer, b.events[i].peer);
  }
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    SCOPED_TRACE("step " + std::to_string(i));
    EXPECT_EQ(a.steps[i].index, b.steps[i].index);
    EXPECT_EQ(a.steps[i].begin, b.steps[i].begin);
    EXPECT_EQ(a.steps[i].end, b.steps[i].end);
    EXPECT_EQ(a.steps[i].dp_begin, b.steps[i].dp_begin);
    EXPECT_EQ(a.steps[i].dp_end, b.steps[i].dp_end);
  }
}

// Alert comparisons check ORDER as well: alerts must come out in the same
// sequence, not merely as equal sets. Doubles compare exactly — the
// parallel path must be bit-identical, not approximately equal.
void expect_alerts_equal(const std::vector<StepAlert>& a,
                         const std::vector<StepAlert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("step alert " + std::to_string(i));
    EXPECT_EQ(a[i].gpu, b[i].gpu);
    EXPECT_EQ(a[i].step_index, b[i].step_index);
    EXPECT_EQ(a[i].duration_s, b[i].duration_s);
    EXPECT_EQ(a[i].mean_s, b[i].mean_s);
    EXPECT_EQ(a[i].threshold_s, b[i].threshold_s);
  }
}

void expect_alerts_equal(const std::vector<GroupAlert>& a,
                         const std::vector<GroupAlert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("group alert " + std::to_string(i));
    EXPECT_EQ(a[i].group_index, b[i].group_index);
    EXPECT_EQ(a[i].step_index, b[i].step_index);
    EXPECT_EQ(a[i].duration_s, b[i].duration_s);
    EXPECT_EQ(a[i].mean_s, b[i].mean_s);
    EXPECT_EQ(a[i].threshold_s, b[i].threshold_s);
  }
}

void expect_alerts_equal(const std::vector<SwitchBandwidthAlert>& a,
                         const std::vector<SwitchBandwidthAlert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("switch bandwidth alert " + std::to_string(i));
    EXPECT_EQ(a[i].switch_id, b[i].switch_id);
    EXPECT_EQ(a[i].bandwidth_gbps, b[i].bandwidth_gbps);
    EXPECT_EQ(a[i].mean_gbps, b[i].mean_gbps);
    EXPECT_EQ(a[i].threshold_gbps, b[i].threshold_gbps);
  }
}

void expect_alerts_equal(const std::vector<SwitchConcurrencyAlert>& a,
                         const std::vector<SwitchConcurrencyAlert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("switch concurrency alert " + std::to_string(i));
    EXPECT_EQ(a[i].switch_id, b[i].switch_id);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].concurrent_flows, b[i].concurrent_flows);
    EXPECT_EQ(a[i].limit, b[i].limit);
  }
}

// Attributed incidents inherit every upstream ordering guarantee: culprit
// ranking, victim order, confidences, and the explained/orphaned counters
// must be bit-identical regardless of thread count.
void expect_attribution_equal(const AttributionResult& a,
                              const AttributionResult& b) {
  ASSERT_EQ(a.incidents.size(), b.incidents.size());
  for (std::size_t i = 0; i < a.incidents.size(); ++i) {
    SCOPED_TRACE("incident " + std::to_string(i));
    const AttributedIncident& ia = a.incidents[i];
    const AttributedIncident& ib = b.incidents[i];
    EXPECT_EQ(ia.job, ib.job);
    EXPECT_EQ(ia.step_begin, ib.step_begin);
    EXPECT_EQ(ia.step_end, ib.step_end);
    EXPECT_EQ(ia.confidence, ib.confidence);
    ASSERT_EQ(ia.culprits.size(), ib.culprits.size());
    for (std::size_t c = 0; c < ia.culprits.size(); ++c) {
      SCOPED_TRACE("culprit " + std::to_string(c));
      EXPECT_EQ(ia.culprits[c].kind, ib.culprits[c].kind);
      EXPECT_EQ(ia.culprits[c].gpu, ib.culprits[c].gpu);
      EXPECT_EQ(ia.culprits[c].dp_group_index, ib.culprits[c].dp_group_index);
      EXPECT_EQ(ia.culprits[c].switch_id, ib.culprits[c].switch_id);
      EXPECT_EQ(ia.culprits[c].score, ib.culprits[c].score);
    }
    ASSERT_EQ(ia.victims.size(), ib.victims.size());
    for (std::size_t v = 0; v < ia.victims.size(); ++v) {
      SCOPED_TRACE("victim " + std::to_string(v));
      EXPECT_EQ(ia.victims[v].kind, ib.victims[v].kind);
      EXPECT_EQ(ia.victims[v].job, ib.victims[v].job);
      EXPECT_EQ(ia.victims[v].gpu, ib.victims[v].gpu);
      EXPECT_EQ(ia.victims[v].dp_group_index, ib.victims[v].dp_group_index);
      EXPECT_EQ(ia.victims[v].step_index, ib.victims[v].step_index);
      EXPECT_EQ(ia.victims[v].hops, ib.victims[v].hops);
    }
    EXPECT_EQ(ia.evidence.step_alerts, ib.evidence.step_alerts);
    EXPECT_EQ(ia.evidence.group_alerts, ib.evidence.group_alerts);
    EXPECT_EQ(ia.evidence.switch_bandwidth_alerts,
              ib.evidence.switch_bandwidth_alerts);
    EXPECT_EQ(ia.evidence.switch_concurrency_alerts,
              ib.evidence.switch_concurrency_alerts);
  }
  EXPECT_EQ(a.telemetry.alerts_explained, b.telemetry.alerts_explained);
  EXPECT_EQ(a.telemetry.alerts_orphaned, b.telemetry.alerts_orphaned);
}

// The telemetry block must be bit-identical too: it is built from
// deterministic per-job event counts folded in job-id order, never from
// scheduling-dependent state (ISSUE 2's acceptance criterion).
void expect_telemetry_equal(const ReportTelemetry& a,
                            const ReportTelemetry& b) {
  EXPECT_EQ(a.flows_total, b.flows_total);
  EXPECT_EQ(a.flows_routed, b.flows_routed);
  EXPECT_EQ(a.flows_routed_via_dst, b.flows_routed_via_dst);
  EXPECT_EQ(a.flows_unattributed, b.flows_unattributed);
  EXPECT_EQ(a.pairs_classified, b.pairs_classified);
  EXPECT_EQ(a.pairs_dp, b.pairs_dp);
  EXPECT_EQ(a.pairs_pp, b.pairs_pp);
  EXPECT_EQ(a.refinement_flips, b.refinement_flips);
  EXPECT_EQ(a.artifact_size_clusters, b.artifact_size_clusters);
  EXPECT_EQ(a.artifact_flows, b.artifact_flows);
  EXPECT_EQ(a.artifact_segments, b.artifact_segments);
  EXPECT_EQ(a.bocd_observations, b.bocd_observations);
  EXPECT_EQ(a.bocd_boundaries, b.bocd_boundaries);
  EXPECT_EQ(a.bocd_hard_resets, b.bocd_hard_resets);
  EXPECT_EQ(a.timelines_reconstructed, b.timelines_reconstructed);
  EXPECT_EQ(a.timeline_events, b.timeline_events);
  EXPECT_EQ(a.steps_reconstructed, b.steps_reconstructed);
  EXPECT_EQ(a.ksigma_series, b.ksigma_series);
  EXPECT_EQ(a.ksigma_points, b.ksigma_points);
  EXPECT_EQ(a.ksigma_alerts, b.ksigma_alerts);
  EXPECT_EQ(a.incidents, b.incidents);
  EXPECT_EQ(a.alerts_explained, b.alerts_explained);
  EXPECT_EQ(a.alerts_orphaned, b.alerts_orphaned);
}

void expect_reports_equal(const PrismReport& a, const PrismReport& b) {
  EXPECT_EQ(a.recognition.num_cross_machine_clusters,
            b.recognition.num_cross_machine_clusters);
  ASSERT_EQ(a.recognition.jobs.size(), b.recognition.jobs.size());
  for (std::size_t j = 0; j < a.recognition.jobs.size(); ++j) {
    SCOPED_TRACE("recognized job " + std::to_string(j));
    expect_recognized_jobs_equal(a.recognition.jobs[j], b.recognition.jobs[j]);
  }

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    SCOPED_TRACE("job " + std::to_string(j));
    const JobAnalysis& ja = a.jobs[j];
    const JobAnalysis& jb = b.jobs[j];
    EXPECT_EQ(ja.id, jb.id);
    expect_recognized_jobs_equal(ja.job, jb.job);
    expect_traces_equal(ja.trace, jb.trace);
    expect_comm_types_equal(ja.comm_types, jb.comm_types);
    expect_inferred_equal(ja.inferred, jb.inferred);
    ASSERT_EQ(ja.timelines.size(), jb.timelines.size());
    for (std::size_t t = 0; t < ja.timelines.size(); ++t) {
      SCOPED_TRACE("timeline " + std::to_string(t));
      expect_timelines_equal(ja.timelines[t], jb.timelines[t]);
    }
    expect_alerts_equal(ja.step_alerts, jb.step_alerts);
    expect_alerts_equal(ja.group_alerts, jb.group_alerts);
  }

  EXPECT_EQ(a.switch_bandwidth_gbps, b.switch_bandwidth_gbps);
  expect_alerts_equal(a.switch_bandwidth_alerts, b.switch_bandwidth_alerts);
  expect_alerts_equal(a.switch_concurrency_alerts,
                      b.switch_concurrency_alerts);
  expect_attribution_equal(a.attribution, b.attribution);
  expect_telemetry_equal(a.telemetry, b.telemetry);
}

// --- fixtures: each mix is simulated and sequentially analyzed once -------

struct MixData {
  ClusterSimResult sim;
  PrismReport baseline;  ///< num_threads = 1
};

MixData make_mix(const ClusterSimConfig& cfg) {
  MixData mix{run_cluster_sim(cfg), {}};
  mix.baseline = Prism(mix.sim.topology, prism_config(1)).analyze(mix.sim.trace);
  return mix;
}

const MixData& one_job() {
  static const MixData mix = make_mix(one_job_mix());
  return mix;
}
const MixData& three_jobs() {
  static const MixData mix = make_mix(three_job_mix());
  return mix;
}
const MixData& eight_jobs() {
  static const MixData mix = make_mix(eight_job_mix());
  return mix;
}
const MixData& huge_job() {
  static const MixData mix = make_mix(huge_job_mix());
  return mix;
}

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelEquivalenceTest, OneJobMix) {
  const MixData& mix = one_job();
  const Prism prism(mix.sim.topology, prism_config(GetParam()));
  expect_reports_equal(mix.baseline, prism.analyze(mix.sim.trace));
}

TEST_P(ParallelEquivalenceTest, ThreeJobMix) {
  const MixData& mix = three_jobs();
  const Prism prism(mix.sim.topology, prism_config(GetParam()));
  expect_reports_equal(mix.baseline, prism.analyze(mix.sim.trace));
}

TEST_P(ParallelEquivalenceTest, EightJobMix) {
  const MixData& mix = eight_jobs();
  const Prism prism(mix.sim.topology, prism_config(GetParam()));
  expect_reports_equal(mix.baseline, prism.analyze(mix.sim.trace));
}

TEST_P(ParallelEquivalenceTest, HugeSingleJobMix) {
  const MixData& mix = huge_job();
  const Prism prism(mix.sim.topology, prism_config(GetParam()));
  expect_reports_equal(mix.baseline, prism.analyze(mix.sim.trace));
}

// Guard against the single-job differential passing vacuously: the mix
// must really be one job, large enough that the intra-job fan-out has many
// pairs and GPUs to chew on, and it must produce findings.
TEST(ParallelEquivalenceCoverageTest, HugeJobIsOneJobWithFindings) {
  const MixData& mix = huge_job();
  ASSERT_EQ(mix.baseline.jobs.size(), 1u);
  const JobAnalysis& j = mix.baseline.jobs.front();
  EXPECT_GE(j.comm_types.pairs.size(), 100u)
      << "the per-pair fan-out needs real width";
  EXPECT_GE(j.timelines.size(), 100u)
      << "the per-GPU fan-out needs real width";
  EXPECT_GT(j.step_alerts.size() + j.group_alerts.size(), 0u);
  EXPECT_GT(mix.baseline.telemetry.bocd_observations, 0u);
}

// The eight-job mix actually produces the alerts whose ordering the
// comparisons above pin down — guard against the differential passing
// vacuously on all-empty reports.
TEST(ParallelEquivalenceCoverageTest, MixesProduceFindings) {
  const MixData& mix = eight_jobs();
  ASSERT_EQ(mix.baseline.jobs.size(), 8u);
  std::size_t step_alerts = 0;
  for (const JobAnalysis& j : mix.baseline.jobs) {
    step_alerts += j.step_alerts.size();
  }
  EXPECT_GT(step_alerts, 0u);
  EXPECT_FALSE(mix.baseline.switch_bandwidth_gbps.empty());
  EXPECT_FALSE(three_jobs().baseline.switch_bandwidth_alerts.empty());
  // Every switch bandwidth alert must be explained by a cluster-level
  // incident, so the incident comparison above cannot pass vacuously.
  EXPECT_FALSE(three_jobs().baseline.attribution.incidents.empty());
  EXPECT_GT(mix.baseline.telemetry.alerts_explained +
                mix.baseline.telemetry.alerts_orphaned,
            0u);
}

// The telemetry comparison must not pass vacuously either: the mixes have
// to exercise every counted stage.
TEST(ParallelEquivalenceCoverageTest, TelemetryCountsAreNonTrivial) {
  const ReportTelemetry& t = eight_jobs().baseline.telemetry;
  EXPECT_GT(t.flows_total, 0u);
  EXPECT_GT(t.flows_routed, 0u);
  EXPECT_EQ(t.flows_total, t.flows_routed + t.flows_unattributed);
  // The internal recognizer unions both endpoints of every flow, so the
  // dst fallback never has to fire on recognizer-produced jobs; it exists
  // for half-recognized jobs (see tests/test_flow_router.cpp).
  EXPECT_EQ(t.flows_routed_via_dst, 0u);
  EXPECT_LE(t.flows_routed_via_dst, t.flows_routed);
  EXPECT_GT(t.pairs_classified, 0u);
  EXPECT_EQ(t.pairs_classified, t.pairs_dp + t.pairs_pp);
  EXPECT_GT(t.bocd_observations, 0u);
  EXPECT_GT(t.bocd_boundaries, 0u);
  EXPECT_GT(t.timelines_reconstructed, 0u);
  EXPECT_GT(t.timeline_events, 0u);
  EXPECT_GT(t.steps_reconstructed, 0u);
  EXPECT_GT(t.ksigma_series, 0u);
  EXPECT_GT(t.ksigma_points, 0u);
  EXPECT_GT(t.ksigma_alerts, 0u) << "the mix injects detectable faults";
}

// OnlineMonitor: a batch completing several windows analyzes them
// concurrently; ticks, stable ids, and stats must match the sequential
// monitor exactly.
TEST_P(ParallelEquivalenceTest, MonitorBatchOfWindows) {
  const MixData& mix = one_job();

  MonitorConfig seq_cfg;
  seq_cfg.window = 2 * kSecond;
  seq_cfg.prism.num_threads = 1;
  MonitorConfig par_cfg = seq_cfg;
  par_cfg.prism.num_threads = GetParam();

  OnlineMonitor sequential(mix.sim.topology, seq_cfg);
  OnlineMonitor parallel(mix.sim.topology, par_cfg);

  auto expected = sequential.ingest(mix.sim.trace);
  if (const auto last = sequential.flush()) expected.push_back(*last);
  auto got = parallel.ingest(mix.sim.trace);
  if (const auto last = parallel.flush()) got.push_back(*last);

  ASSERT_GE(expected.size(), 3u) << "mix must span several windows";
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("tick " + std::to_string(i));
    EXPECT_EQ(got[i].window.begin, expected[i].window.begin);
    EXPECT_EQ(got[i].window.end, expected[i].window.end);
    EXPECT_EQ(got[i].job_ids, expected[i].job_ids);
    expect_reports_equal(expected[i].report, got[i].report);
  }

  const MonitorStats& sa = sequential.stats();
  const MonitorStats& sb = parallel.stats();
  EXPECT_EQ(sa.flows_ingested, sb.flows_ingested);
  EXPECT_EQ(sa.flows_dropped_late, sb.flows_dropped_late);
  EXPECT_EQ(sa.windows_completed, sb.windows_completed);
  EXPECT_EQ(sa.stable_ids_created, sb.stable_ids_created);
  EXPECT_EQ(sa.step_alerts, sb.step_alerts);
  EXPECT_EQ(sa.group_alerts, sb.group_alerts);
  EXPECT_EQ(sa.switch_bandwidth_alerts, sb.switch_bandwidth_alerts);
  EXPECT_EQ(sa.switch_concurrency_alerts, sb.switch_concurrency_alerts);
  EXPECT_EQ(sa.job_windows, sb.job_windows);
}

/// Renders all three job-facing exports of a tick sequence into one
/// string, so equivalence can be asserted byte-for-byte.
std::string render_exports(const std::vector<MonitorTick>& ticks) {
  PerfettoExporter perfetto;
  JobSeriesCollector series;
  IncidentJournal journal;
  for (const MonitorTick& tick : ticks) {
    const WindowExportView view = export_view(tick);
    perfetto.add_window(view);
    series.add_window(view);
    journal.add_window(view);
  }
  journal.finish();
  std::ostringstream os;
  perfetto.write(os);
  series.write_openmetrics(os);
  series.write_jsonl(os);
  journal.write_jsonl(os);
  return os.str();
}

// The exports are pure functions of the tick sequence, so they must be
// byte-identical whichever thread count produced the ticks.
TEST_P(ParallelEquivalenceTest, ExportsAreByteIdenticalAcrossThreads) {
  const MixData& mix = three_jobs();

  MonitorConfig seq_cfg;
  seq_cfg.window = 2 * kSecond;
  seq_cfg.prism.num_threads = 1;
  MonitorConfig par_cfg = seq_cfg;
  par_cfg.prism.num_threads = GetParam();

  OnlineMonitor sequential(mix.sim.topology, seq_cfg);
  OnlineMonitor parallel(mix.sim.topology, par_cfg);
  auto expected = sequential.ingest(mix.sim.trace);
  if (const auto last = sequential.flush()) expected.push_back(*last);
  auto got = parallel.ingest(mix.sim.trace);
  if (const auto last = parallel.flush()) got.push_back(*last);

  const std::string baseline = render_exports(expected);
  EXPECT_GT(baseline.size(), 1000u) << "exports must not be vacuously empty";
  EXPECT_EQ(render_exports(got), baseline);
}

// The rendered exports of the huge single job must also be byte-identical
// across thread counts — the end-to-end form of the intra-job determinism
// argument (pre-sized per-pair and per-GPU slots, counters folded in id
// order).
TEST_P(ParallelEquivalenceTest, HugeSingleJobExportsAreByteIdentical) {
  const MixData& mix = huge_job();

  MonitorConfig seq_cfg;
  seq_cfg.window = 2 * kSecond;
  seq_cfg.prism.num_threads = 1;
  MonitorConfig par_cfg = seq_cfg;
  par_cfg.prism.num_threads = GetParam();

  OnlineMonitor sequential(mix.sim.topology, seq_cfg);
  OnlineMonitor parallel(mix.sim.topology, par_cfg);
  auto expected = sequential.ingest(mix.sim.trace);
  if (const auto last = sequential.flush()) expected.push_back(*last);
  auto got = parallel.ingest(mix.sim.trace);
  if (const auto last = parallel.flush()) got.push_back(*last);

  const std::string baseline = render_exports(expected);
  EXPECT_GT(baseline.size(), 1000u) << "exports must not be vacuously empty";
  EXPECT_EQ(render_exports(got), baseline);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEquivalenceTest,
                         ::testing::Values(2u, 4u, 8u),
                         [](const auto& param_info) {
                           return "Threads" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace llmprism
