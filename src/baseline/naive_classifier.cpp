#include "llmprism/baseline/naive_classifier.hpp"

#include <algorithm>
#include <vector>

namespace llmprism {

std::unordered_map<GpuPair, CommType> classify_by_global_distinct_sizes(
    const FlowTrace& job_trace, const GlobalDistinctSizeConfig& config) {
  std::unordered_map<GpuPair, std::vector<std::uint64_t>> sizes;
  for (const FlowRecord& f : job_trace) sizes[f.pair()].push_back(f.bytes);

  std::unordered_map<GpuPair, CommType> out;
  out.reserve(sizes.size());
  for (auto& [pair, s] : sizes) {
    std::sort(s.begin(), s.end());
    std::size_t distinct = 1;
    std::uint64_t base = s.front();
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (static_cast<double>(s[i]) >
          static_cast<double>(base) * (1.0 + config.size_tolerance)) {
        ++distinct;
        base = s[i];
      }
    }
    out.emplace(pair, distinct > 1 ? CommType::kDP : CommType::kPP);
  }
  return out;
}

std::unordered_map<GpuPair, CommType> classify_by_volume_threshold(
    const FlowTrace& job_trace, const VolumeThresholdConfig& config) {
  struct Acc {
    std::uint64_t bytes = 0;
    std::size_t count = 0;
  };
  std::unordered_map<GpuPair, Acc> acc;
  for (const FlowRecord& f : job_trace) {
    Acc& a = acc[f.pair()];
    a.bytes += f.bytes;
    ++a.count;
  }
  std::unordered_map<GpuPair, CommType> out;
  out.reserve(acc.size());
  for (const auto& [pair, a] : acc) {
    const std::uint64_t mean = a.bytes / a.count;
    out.emplace(pair, mean > config.dp_threshold_bytes ? CommType::kDP
                                                       : CommType::kPP);
  }
  return out;
}

}  // namespace llmprism
