// Cross-module property tests: invariants that must hold across seeds,
// configurations and serialization boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "llmprism/core/diagnosis.hpp"

#include "llmprism/baseline/eval.hpp"
#include "llmprism/collector/collector.hpp"
#include "llmprism/collector/packetize.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/flow/io.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

ClusterSimConfig base_config(std::uint64_t seed) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 12, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.seed = seed;
  JobSimConfig a;
  a.parallelism = {.tp = 8, .dp = 2, .pp = 2, .micro_batches = 4};
  a.num_steps = 8;
  JobSimConfig b;
  b.parallelism = {.tp = 8, .dp = 4, .pp = 1, .micro_batches = 4};
  b.num_steps = 8;
  cfg.jobs.push_back({a, {}});
  cfg.jobs.push_back({b, {}});
  return cfg;
}

// Across random seeds, the full pipeline stays perfect on clean traces.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CleanPipelineIsPerfect) {
  const auto sim = run_cluster_sim(base_config(GetParam()));
  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);

  const auto recognition =
      score_job_recognition(report.recognition, std::span(sim.jobs));
  EXPECT_TRUE(recognition.perfect());

  for (std::size_t j = 0; j < report.jobs.size(); ++j) {
    const auto comm = score_comm_type(
        std::span(report.jobs[j].comm_types.pairs), sim.jobs[j]);
    EXPECT_DOUBLE_EQ(comm.accuracy(), 1.0) << "seed " << GetParam();
    const auto timeline =
        score_timelines(std::span(report.jobs[j].timelines), sim.jobs[j]);
    EXPECT_LT(timeline.mean_duration_error, 0.003) << "seed " << GetParam();
    EXPECT_TRUE(report.jobs[j].step_alerts.empty());
    EXPECT_TRUE(report.jobs[j].group_alerts.empty());
  }
  EXPECT_TRUE(report.switch_bandwidth_alerts.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u,
                                           0xdeadbeefu));

// Analysis is a pure function of the trace: two runs agree exactly.
TEST(DeterminismTest, AnalysisIsReproducible) {
  const auto sim = run_cluster_sim(base_config(5));
  const Prism prism(sim.topology);
  const auto a = prism.analyze(sim.trace);
  const auto b = prism.analyze(sim.trace);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    ASSERT_EQ(a.jobs[j].comm_types.pairs.size(),
              b.jobs[j].comm_types.pairs.size());
    for (std::size_t p = 0; p < a.jobs[j].comm_types.pairs.size(); ++p) {
      EXPECT_EQ(a.jobs[j].comm_types.pairs[p].type,
                b.jobs[j].comm_types.pairs[p].type);
    }
    ASSERT_EQ(a.jobs[j].timelines.size(), b.jobs[j].timelines.size());
    for (std::size_t t = 0; t < a.jobs[j].timelines.size(); ++t) {
      ASSERT_EQ(a.jobs[j].timelines[t].steps.size(),
                b.jobs[j].timelines[t].steps.size());
      for (std::size_t s = 0; s < a.jobs[j].timelines[t].steps.size(); ++s) {
        EXPECT_EQ(a.jobs[j].timelines[t].steps[s].end,
                  b.jobs[j].timelines[t].steps[s].end);
      }
    }
  }
}

// CSV serialization is transparent to the analysis: identical conclusions
// from the round-tripped trace.
TEST(SerializationTest, CsvRoundTripPreservesAnalysis) {
  const auto sim = run_cluster_sim(base_config(11));
  std::stringstream ss;
  write_csv(ss, sim.trace);
  FlowTrace back = read_csv(ss);
  back.sort();
  ASSERT_EQ(back.size(), sim.trace.size());

  const Prism prism(sim.topology);
  const auto direct = prism.analyze(sim.trace);
  const auto roundtrip = prism.analyze(back);
  ASSERT_EQ(direct.jobs.size(), roundtrip.jobs.size());
  for (std::size_t j = 0; j < direct.jobs.size(); ++j) {
    EXPECT_EQ(direct.jobs[j].job.gpus, roundtrip.jobs[j].job.gpus);
    EXPECT_EQ(direct.jobs[j].inferred.tp, roundtrip.jobs[j].inferred.tp);
    EXPECT_EQ(direct.jobs[j].inferred.dp, roundtrip.jobs[j].inferred.dp);
    EXPECT_EQ(direct.jobs[j].inferred.pp, roundtrip.jobs[j].inferred.pp);
  }
}

// The packet path conserves bytes under fine collector timeouts, for any
// packetization shape.
class CollectorConservation
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(CollectorConservation, BytesConserved) {
  const auto [mtu, jitter] = GetParam();
  const auto sim = run_cluster_sim(base_config(17));
  std::uint64_t truth_bytes = 0;
  for (const FlowRecord& f : sim.trace) truth_bytes += f.bytes;

  Rng rng(23);
  PacketizeConfig pk;
  pk.mtu_bytes = mtu;
  pk.pacing_jitter = jitter;
  const auto packets = packetize(sim.trace, pk, rng);
  std::uint64_t packet_bytes = 0;
  for (const PacketRecord& p : packets) packet_bytes += p.bytes;
  EXPECT_EQ(packet_bytes, truth_bytes);

  CollectorConfig cc;
  cc.idle_timeout = 300 * kMicrosecond;
  cc.active_timeout = 10 * kSecond;
  const auto records = collect_flows(packets, sim.topology, cc, rng);
  std::uint64_t record_bytes = 0;
  for (const FlowRecord& f : records) record_bytes += f.bytes;
  EXPECT_EQ(record_bytes, truth_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CollectorConservation,
    ::testing::Combine(::testing::Values(1024u, 4096u, 9000u),
                       ::testing::Values(0.0, 0.3)));

// Simulator byte accounting: every rank's DP traffic per step carries the
// ring-allreduce volume 2*(dp-1)/dp * total (split over channels but
// summed back per rank, within rounding of bucket/round division).
TEST(SimulatorAccountingTest, DpBytesMatchRingVolume) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 4, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 4, .pp = 1, .micro_batches = 4};
  job.num_steps = 4;
  cfg.jobs.push_back({job, {}});
  const auto sim = run_cluster_sim(cfg);

  // Sum DP bytes SENT by rank 0 in the whole run.
  const GpuId g0 = sim.jobs[0].gpus[0];
  std::uint64_t sent = 0;
  for (const FlowRecord& f : sim.trace) {
    if (f.src == g0 &&
        sim.jobs[0].pair_types.at(f.pair()) == CommType::kDP) {
      sent += f.bytes;
    }
  }
  const double expected = static_cast<double>(job.dp_total_bytes) * 2.0 *
                          (4 - 1) / 4 * job.num_steps;
  EXPECT_NEAR(static_cast<double>(sent), expected, expected * 0.01);
}

// Recognized jobs partition the observed GPUs: no GPU in two jobs.
TEST(RecognitionPartitionTest, JobsAreDisjoint) {
  const auto sim = run_cluster_sim(base_config(29));
  const JobRecognizer recognizer(sim.topology);
  const auto result = recognizer.recognize(sim.trace);
  std::unordered_set<GpuId> seen;
  for (const RecognizedJob& job : result.jobs) {
    for (const GpuId g : job.gpus) {
      EXPECT_TRUE(seen.insert(g).second) << g;
    }
  }
}

// Reconstructed steps are well-formed for every rank: monotone, contiguous,
// positive DP spans inside the step.
TEST(TimelineWellFormedTest, StepsAreMonotoneAndContiguous) {
  const auto sim = run_cluster_sim(base_config(31));
  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  for (const JobAnalysis& job : report.jobs) {
    for (const GpuTimeline& t : job.timelines) {
      for (std::size_t s = 0; s < t.steps.size(); ++s) {
        const ReconstructedStep& step = t.steps[s];
        EXPECT_LT(step.begin, step.end);
        EXPECT_LE(step.dp_begin, step.dp_end);
        EXPECT_EQ(step.end, step.dp_end);
        if (s > 0) EXPECT_EQ(step.begin, t.steps[s - 1].end);
      }
      // events are chronological by start
      for (std::size_t e = 1; e < t.events.size(); ++e) {
        EXPECT_GE(t.events[e].start, t.events[e - 1].start);
      }
    }
  }
}

// --- k-sigma rule properties -----------------------------------------------

/// Values flagged by the k-sigma rule form a set property of the sample,
/// not of its ordering: permuting the series permutes the indices but
/// flags exactly the same values.
TEST(KSigmaPropertyTest, OutlierSetIsPermutationInvariant) {
  std::vector<double> xs = {1.00, 1.02, 0.98, 1.01, 0.99, 1.03,
                            0.97, 1.00, 1.02, 0.98, 1.01, 4.70};
  const KSigmaConfig config;  // defaults: k=3, stddev, leave-one-out

  const auto flagged_values = [&](const std::vector<double>& series) {
    std::vector<double> values;
    for (const std::size_t i : ksigma_outliers_above(series, config)) {
      values.push_back(series[i]);
    }
    std::sort(values.begin(), values.end());
    return values;
  };

  const auto reference = flagged_values(xs);
  ASSERT_EQ(reference, std::vector<double>{4.70});

  std::mt19937 rng(1234);
  for (int round = 0; round < 16; ++round) {
    std::shuffle(xs.begin(), xs.end(), rng);
    EXPECT_EQ(flagged_values(xs), reference) << "round " << round;
  }
}

/// With n samples the maximum z-score attainable against GLOBAL statistics
/// is bounded (the outlier inflates its own sigma), so a global 3-sigma
/// rule cannot fire on a short series no matter how gross the outlier.
/// Leave-one-out removes the self-masking and fires. This is exactly the
/// 8-DP-group regime of cross-group diagnosis.
TEST(KSigmaPropertyTest, LeaveOneOutFiresWhereGlobalRuleCannot) {
  const std::vector<double> xs = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0};

  KSigmaConfig global;
  global.leave_one_out = false;
  EXPECT_TRUE(ksigma_outliers_above(xs, global).empty())
      << "global rule should self-mask on n=8";

  KSigmaConfig loo;
  loo.leave_one_out = true;
  const auto flagged = ksigma_outliers_above(xs, loo);
  EXPECT_EQ(flagged, std::vector<std::size_t>{7});
}

/// Leave-one-out removes only ONE point from the reference, so two
/// simultaneous outliers still mask each other under the stddev estimator.
/// The median/MAD estimator has a 50% breakdown point and flags both —
/// the reason switch-level diagnosis defaults to kMad.
TEST(KSigmaPropertyTest, MadSurvivesTwoSimultaneousOutliers) {
  const std::vector<double> xs = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 4.0, 4.0};

  KSigmaConfig stddev;
  stddev.dispersion = Dispersion::kStddev;
  stddev.leave_one_out = true;
  EXPECT_TRUE(ksigma_outliers_above(xs, stddev).empty())
      << "the second outlier should inflate the leave-one-out sigma";

  KSigmaConfig mad;
  mad.dispersion = Dispersion::kMad;
  mad.leave_one_out = true;
  const auto flagged = ksigma_outliers_above(xs, mad);
  EXPECT_EQ(flagged, (std::vector<std::size_t>{6, 7}));
}

/// min_relative_excess is checked against the LEAVE-ONE-OUT reference mean
/// (1.0 here), not the outlier-polluted global mean. A series of seven 1.0s
/// has zero leave-one-out sigma, so the margin is the only gate: 22% over
/// fires, 19% over does not. Under a (wrong) global mean of 1.0275 the
/// margin would be 1.233 and the first case could not fire.
TEST(KSigmaPropertyTest, RelativeExcessUsesLeaveOneOutMean) {
  const KSigmaConfig config;  // min_relative_excess = 0.2
  const std::vector<double> fires = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.22};
  EXPECT_EQ(ksigma_outliers_above(fires, config),
            std::vector<std::size_t>{7});

  const std::vector<double> holds = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.19};
  EXPECT_TRUE(ksigma_outliers_above(holds, config).empty());
}

}  // namespace
}  // namespace llmprism
