# Empty compiler generated dependencies file for llmprism_collector.
# This may be replaced when dependencies are built.
