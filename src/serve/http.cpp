#include "llmprism/serve/http.hpp"

namespace llmprism::serve {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

}  // namespace

bool parse_http_request(std::string_view head, HttpRequest& out) {
  const std::size_t eol = head.find_first_of("\r\n");
  std::string_view line = head.substr(0, eol);

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (!line.substr(sp2 + 1).starts_with("HTTP/")) return false;
  if (target.empty() || target[0] != '/') return false;

  out.method = std::string(line.substr(0, sp1));
  const std::size_t qmark = target.find('?');
  out.path = std::string(target.substr(0, qmark));
  out.query = qmark == std::string_view::npos
                  ? std::string()
                  : std::string(target.substr(qmark + 1));
  return true;
}

std::string query_param(std::string_view query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (pair.substr(0, eq) == key) {
      return eq == std::string_view::npos ? std::string()
                                          : std::string(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return {};
}

std::string format_http_response(const HttpResponse& response) {
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace llmprism::serve
