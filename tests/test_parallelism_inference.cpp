// Tests for 3D-layout inference from recovered communication structure.
#include "llmprism/core/parallelism_inference.hpp"

#include <gtest/gtest.h>

#include "llmprism/core/prism.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

CommTypeResult synthetic_structure(
    std::initializer_list<std::vector<std::uint32_t>> dp_components,
    std::initializer_list<std::pair<std::uint32_t, std::uint32_t>> pp_pairs,
    std::initializer_list<std::pair<std::uint32_t, std::uint32_t>> dp_pairs =
        {}) {
  CommTypeResult r;
  for (const auto& component : dp_components) {
    std::vector<GpuId> gpus;
    for (const std::uint32_t g : component) gpus.emplace_back(g);
    r.dp_components.push_back(std::move(gpus));
  }
  for (const auto& [a, b] : pp_pairs) {
    PairClassification p;
    p.pair = GpuPair(GpuId(a), GpuId(b));
    p.type = CommType::kPP;
    r.pairs.push_back(p);
  }
  for (const auto& [a, b] : dp_pairs) {
    PairClassification p;
    p.pair = GpuPair(GpuId(a), GpuId(b));
    p.type = CommType::kDP;
    r.pairs.push_back(p);
  }
  return r;
}

CommTypeResult with_ring_edges(
    std::initializer_list<std::vector<std::uint32_t>> dp_components) {
  // Complete each component with its ring cycle edges.
  CommTypeResult r = synthetic_structure(dp_components, {});
  for (const auto& component : dp_components) {
    const std::vector<std::uint32_t> ids(component);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids.size() == 2 && i == 1) break;  // single link for 2-rings
      PairClassification p;
      p.pair = GpuPair(GpuId(ids[i]), GpuId(ids[(i + 1) % ids.size()]));
      p.type = CommType::kDP;
      r.pairs.push_back(p);
    }
  }
  return r;
}

TEST(InferParallelismTest, PureDp) {
  const auto comm = synthetic_structure({{0, 8, 16, 24}}, {});
  const auto inf = infer_parallelism(32, comm);
  EXPECT_EQ(inf.dp, 4u);
  EXPECT_EQ(inf.pp, 1u);
  EXPECT_EQ(inf.tp, 8u);
  EXPECT_TRUE(inf.dp_groups_uniform);
  EXPECT_TRUE(inf.divides_world);
}

TEST(InferParallelismTest, DpAndPpChains) {
  // 2 DP components of size 2, one PP chain of 2 stages: world 32 ->
  // tp = 32 / (2*2) = 8.
  const auto comm =
      synthetic_structure({{0, 8}, {16, 24}}, {{0, 16}, {8, 24}});
  const auto inf = infer_parallelism(32, comm);
  EXPECT_EQ(inf.dp, 2u);
  EXPECT_EQ(inf.pp, 2u);
  EXPECT_EQ(inf.tp, 8u);
}

TEST(InferParallelismTest, LongPipelineChain) {
  // One chain 0-8-16-24-32 (pp=5), no DP.
  const auto comm =
      synthetic_structure({}, {{0, 8}, {8, 16}, {16, 24}, {24, 32}});
  const auto inf = infer_parallelism(40, comm);
  EXPECT_EQ(inf.pp, 5u);
  EXPECT_EQ(inf.dp, 1u);
  EXPECT_EQ(inf.tp, 8u);
  EXPECT_TRUE(inf.pp_chains_uniform);
}

TEST(InferParallelismTest, NonUniformGroupsFlagged) {
  const auto comm = synthetic_structure({{0, 8}, {16, 24, 32}}, {});
  const auto inf = infer_parallelism(40, comm);
  EXPECT_FALSE(inf.dp_groups_uniform);
}

TEST(InferParallelismTest, NonDividingWorldFallsBack) {
  const auto comm = synthetic_structure({{0, 8, 16}}, {});
  const auto inf = infer_parallelism(32, comm);  // 32 % 3 != 0
  EXPECT_EQ(inf.tp, 1u);
  EXPECT_FALSE(inf.divides_world);
}

TEST(InferParallelismTest, BranchyPpGraphFlagged) {
  // A "chain" with a degree-3 node is not a simple path.
  const auto comm =
      synthetic_structure({}, {{0, 8}, {8, 16}, {8, 24}});
  const auto inf = infer_parallelism(32, comm);
  EXPECT_FALSE(inf.pp_chains_uniform);
}

TEST(InferParallelismTest, EmptyStructure) {
  const auto inf = infer_parallelism(8, CommTypeResult{});
  EXPECT_EQ(inf.dp, 1u);
  EXPECT_EQ(inf.pp, 1u);
  EXPECT_EQ(inf.tp, 8u);
  EXPECT_EQ(inf.micro_batches, 0u);
}

TEST(InferParallelismTest, MicroBatchesFromFlowCounts) {
  auto comm = synthetic_structure({{0, 8}, {16, 24}}, {{0, 16}, {8, 24}});
  // 10 steps, 6 micro-batches -> 120 flows per PP pair.
  for (auto& p : comm.pairs) p.num_flows = 120;
  std::vector<GpuTimeline> timelines(1);
  timelines[0].gpu = GpuId(0);
  for (int k = 0; k < 10; ++k) {
    timelines[0].steps.push_back(
        {static_cast<std::size_t>(k), k * kSecond, (k + 1) * kSecond,
         k * kSecond, (k + 1) * kSecond});
  }
  const auto inf = infer_parallelism(32, comm, std::span(timelines));
  EXPECT_EQ(inf.micro_batches, 6u);
}

// End-to-end: the Prism pipeline recovers the simulated configs exactly.
struct InferenceSweepParam {
  std::uint32_t tp, dp, pp, mb;
};

class InferenceSweep : public ::testing::TestWithParam<InferenceSweepParam> {};

TEST_P(InferenceSweep, RecoversSimulatedLayout) {
  const auto p = GetParam();
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism = {.tp = p.tp, .dp = p.dp, .pp = p.pp,
                     .micro_batches = p.mb};
  job.num_steps = 10;
  cfg.jobs.push_back({job, {}});
  const auto sim = run_cluster_sim(cfg);
  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  ASSERT_EQ(report.jobs.size(), 1u);
  const InferredParallelism& inf = report.jobs[0].inferred;
  EXPECT_EQ(inf.tp, p.tp);
  EXPECT_EQ(inf.dp, p.dp);
  EXPECT_EQ(inf.pp, p.pp);
  EXPECT_TRUE(inf.dp_groups_uniform);
  EXPECT_TRUE(inf.dp_groups_complete);
  EXPECT_TRUE(inf.divides_world);
  if (p.pp > 1) {
    EXPECT_EQ(inf.micro_batches, p.mb);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InferenceSweep,
    ::testing::Values(InferenceSweepParam{8, 2, 2, 4},
                      InferenceSweepParam{8, 4, 1, 4},
                      InferenceSweepParam{8, 2, 4, 6},
                      InferenceSweepParam{4, 8, 2, 4},
                      InferenceSweepParam{8, 8, 2, 8}));

TEST(InferenceFlagTest, PathArcComponentFlaggedIncomplete) {
  // A 4-node DP component with only 3 edges (a path) is an open arc of a
  // larger ring whose other links hid inside machines.
  const auto comm = synthetic_structure({{0, 8, 16, 24}}, {},
                                        {{0, 8}, {8, 16}, {16, 24}});
  const auto inf = infer_parallelism(32, comm);
  EXPECT_FALSE(inf.dp_groups_complete);
}

TEST(InferenceFlagTest, CycleComponentIsComplete) {
  const auto comm = with_ring_edges({{0, 8, 16, 24}, {1, 9, 17, 25}});
  const auto inf = infer_parallelism(32, comm);
  EXPECT_TRUE(inf.dp_groups_complete);
  EXPECT_EQ(inf.dp, 4u);
}

TEST(InferenceFlagTest, TwoMemberGroupsAreComplete) {
  const auto comm = with_ring_edges({{0, 8}, {16, 24}});
  const auto inf = infer_parallelism(32, comm);
  EXPECT_TRUE(inf.dp_groups_complete);
  EXPECT_EQ(inf.dp, 2u);
}

TEST(InferenceLimitationTest, IntraMachineRingHopsAreAmbiguous) {
  // tp=2, dp=8 packs 4 DP members of each group per machine: half the ring
  // links hide inside machines and each true dp=8 group appears as two
  // 4-member components. The visible stride-1 + stride-3 edges happen to
  // form 4-cycles, so the layout is structurally indistinguishable from a
  // genuine tp=4/dp=4 job at the flow level. What IS exact is the
  // (tp x dp) plane: world / pp.
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism = {.tp = 2, .dp = 8, .pp = 2, .micro_batches = 4};
  job.num_steps = 10;
  cfg.jobs.push_back({job, {}});
  const auto sim = run_cluster_sim(cfg);
  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  ASSERT_EQ(report.jobs.size(), 1u);
  const InferredParallelism& inf = report.jobs[0].inferred;
  EXPECT_EQ(inf.pp, 2u);
  EXPECT_EQ(inf.tp * inf.dp, 2u * 8u);  // the plane is exact
  EXPECT_EQ(8u % inf.dp, 0u);           // dp is a divisor of the truth
}

}  // namespace
}  // namespace llmprism
