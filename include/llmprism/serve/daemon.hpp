// prismd — the long-running diagnosis daemon (DESIGN.md §14).
//
// A deployment does not run `prism analyze` by hand: the collector streams
// flows continuously and SREs query the current diagnosis. PrismDaemon is
// that deployment shape, built entirely from existing pieces:
//
//   ingest socket (Unix or TCP)           query socket (HTTP/1.0)
//     LPF frames, one LFT image each        /metrics /report /journal ...
//          |                                        ^
//          v                                        |
//   reader threads ──> bounded per-shard queues ──> shard workers
//     (validate frame + LFT,  (blocking push =       (OnlineMonitor +
//      ack with queue depth)   backpressure)          IncidentJournal +
//                                                     ExportSinks)
//
// Sharding: a chunk for stream S lands on shard S % shards. Each shard
// worker owns one OnlineMonitor, so all state for a stream lives on
// exactly one thread and frames of one stream are analyzed in arrival
// order. Backpressure is the bounded queue: when a shard's analysis falls
// behind, producers block in push() (counted in
// llmprism_serve_backpressure_waits_total) and every ack carries the
// current depth so well-behaved clients throttle before blocking.
//
// Restart story: stop() drains the queues, then snapshots each shard's
// monitor (core/snapshot.hpp) WITHOUT flushing the partial window — the
// reorder buffer rides along in the blob, so a restarted daemon resumes
// mid-window and subsequent reports are byte-identical to a daemon that
// never stopped (asserted in tests/test_serve.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "llmprism/core/monitor.hpp"
#include "llmprism/export/config.hpp"
#include "llmprism/serve/http.hpp"
#include "llmprism/serve/queue.hpp"
#include "llmprism/topology/topology.hpp"

namespace llmprism::serve {

struct ServeConfig {
  /// Unix socket path the ingest listener binds (unlinked on shutdown).
  /// Ignored when ingest_port is nonzero.
  std::string ingest_socket = "prism-ingest.sock";
  /// Nonzero: listen on TCP 127.0.0.1:port instead of the Unix socket.
  std::uint16_t ingest_port = 0;
  /// Unix socket path of the HTTP query endpoint (curl --unix-socket).
  /// Ignored when http_port is nonzero.
  std::string http_socket = "prism-http.sock";
  std::uint16_t http_port = 0;

  /// Shard-worker count; stream S is owned by shard S % shards.
  std::size_t shards = 1;
  /// Bounded chunk capacity of each shard's ingest queue; a full queue
  /// blocks producers (the backpressure mechanism).
  std::size_t queue_capacity = 64;
  /// Ingest queue implementation (see serve/queue.hpp): the lock-free
  /// ring by default, the mutex+condvar deque via `--queue-impl mutex`.
  /// Semantics are identical; the ring rounds queue_capacity up to a
  /// power of two.
  QueueImpl queue_impl = QueueImpl::kLockFree;

  /// Warm-state snapshot file (shard i of a multi-shard daemon uses
  /// "<path>.shardI"). Saved on stop(), restored on start() when present;
  /// empty disables snapshots (cold restarts).
  std::string snapshot_path;

  /// Per-shard analysis configuration (window length, carry, prism).
  MonitorConfig monitor;
  /// File sinks written on stop() (shard i of a multi-shard daemon
  /// decorates each path with ".shardI"). The journal endpoint works even
  /// with no sinks configured — every shard keeps a journal for HTTP.
  ExportConfig exports;

  /// Descriptive configuration errors (empty = valid; includes the nested
  /// monitor and export configs).
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Monotonic daemon counters, exposed at /statusz and mirrored into the
/// obs registry (llmprism_serve_*).
struct DaemonStats {
  std::uint64_t frames = 0;             ///< well-formed frames accepted
  std::uint64_t frame_errors = 0;       ///< bad header or corrupt payload
  std::uint64_t flows = 0;              ///< flows handed to shard queues
  std::uint64_t chunk_bytes = 0;        ///< LFT payload bytes accepted
  std::uint64_t backpressure_waits = 0; ///< producer blocks on full queues
  std::uint64_t http_requests = 0;
  std::uint64_t snapshots_saved = 0;
  std::uint64_t snapshots_restored = 0;
  std::uint64_t windows_completed = 0;  ///< across all shards
};

class PrismDaemon {
 public:
  /// Validates the config (std::invalid_argument on errors listing every
  /// problem). The topology is copied; the daemon owns everything.
  PrismDaemon(const ClusterTopology& topology, ServeConfig config);
  ~PrismDaemon();

  PrismDaemon(const PrismDaemon&) = delete;
  PrismDaemon& operator=(const PrismDaemon&) = delete;

  /// Restore snapshots (when configured and present — a corrupt snapshot
  /// is logged and skipped, the shard starts cold), bind both listeners,
  /// spawn reader/worker threads. Throws std::runtime_error when a socket
  /// cannot be bound.
  void start();

  /// Graceful shutdown: stop accepting, drain every shard queue, write
  /// export sinks and snapshots. Idempotent; also invoked by ~PrismDaemon.
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] DaemonStats stats() const;

  /// Route one HTTP request (also the socket loop's implementation):
  ///   /healthz  "ok" once start() completed
  ///   /metrics  obs registry, Prometheus text exposition
  ///   /statusz  daemon + per-shard counters, JSON
  ///   /jobs     per-shard stable job ids with window counts, JSON
  ///   /report?shard=N   latest window's full report, JSON
  ///   /journal?shard=N  incident lifecycle journal so far, JSONL
  ///                     (shard defaults to 0)
  [[nodiscard]] HttpResponse handle_http(const HttpRequest& request);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The `prismd` / `prism serve` entry point: parse argv[begin..), build
/// the topology, run a daemon until SIGTERM/SIGINT, return the exit code.
int run_main(int argc, const char* const* argv, int begin = 1);

}  // namespace llmprism::serve
