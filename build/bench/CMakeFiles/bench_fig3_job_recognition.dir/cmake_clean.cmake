file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_job_recognition.dir/bench_fig3_job_recognition.cpp.o"
  "CMakeFiles/bench_fig3_job_recognition.dir/bench_fig3_job_recognition.cpp.o.d"
  "bench_fig3_job_recognition"
  "bench_fig3_job_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_job_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
