// Incremental cross-window analysis state (the session warm path).
//
// The paper's deployment mode is continuous monitoring: the same jobs
// occupy the same machines for hours while the pipeline re-derives the
// same facts window after window. PrismSession carries, per stable job:
//   (a) the previous recognition partition + dense FlowRouter table,
//       reused verbatim when the window's communication pair set is
//       EXACTLY the cached one (recognize() is a pure function of the
//       undirected edge set, so equality of pair sets implies equality of
//       the partition — a verify-fast-path, never a guess);
//   (b) comm-type pair classifications as warm priors (CommTypeCarry) —
//       only new or contradicting pairs re-run the BOCD step division;
//   (c) the timeline segmenter's provisional tail (TimelineCarry): a DP
//       burst ending near the window boundary is held back and re-observed
//       by the next window, so a step straddling the boundary is
//       reconstructed instead of truncated;
//   (d) cross-window EWMA step-duration baselines (EwmaBaseline), so
//       cross-step alerts can fire on windows too short for the
//       window-local k-sigma rule.
//
// Threading contract: a session is NOT thread-safe across analyze() calls
// — the OnlineMonitor analyzes warm windows sequentially in time order.
// WITHIN one analyze() call the per-job fan-out still runs in parallel;
// each task touches only its own job's SessionJobState, and outcome
// counters are folded into SessionCounters in job-id order afterwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "llmprism/common/ids.hpp"
#include "llmprism/common/time.hpp"
#include "llmprism/core/comm_type.hpp"
#include "llmprism/core/diagnosis.hpp"
#include "llmprism/core/flow_router.hpp"
#include "llmprism/core/job_recognition.hpp"
#include "llmprism/core/timeline.hpp"
#include "llmprism/flow/trace.hpp"

namespace llmprism {

/// Hash of a job's machine set, used to key per-job state (and the
/// monitor's stable-id lookups) directly on the `RecognizedJob::machines`
/// vector — no per-lookup string building. SplitMix64-style per-element
/// mix; order-sensitive, matching the recognizer's canonical ascending
/// machine order.
struct MachineSetHash {
  [[nodiscard]] std::size_t operator()(
      const std::vector<MachineId>& machines) const noexcept {
    std::uint64_t h = machines.size();
    for (const MachineId m : machines) {
      std::uint64_t z = h + m.value() + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      h = z ^ (z >> 31);
    }
    return static_cast<std::size_t>(h);
  }
};

struct SessionConfig {
  /// Reuse the cached recognition partition + router table when the
  /// window's pair set matches exactly. Automatically disabled by the
  /// pipeline when recognition merging is fuzzy (jaccard_threshold < 1),
  /// where the output is not provably a pure function of the pair set.
  bool reuse_recognition = true;
  /// Use the previous window's pair classifications as warm priors.
  bool reuse_comm_types = true;
  /// Hold near-boundary DP bursts back into the next window.
  bool carry_timeline_tails = true;
  /// Maintain cross-window EWMA step baselines and alert from them.
  bool ewma_baselines = true;

  /// EWMA smoothing factor for the carried step baselines.
  double ewma_alpha = 0.2;
  /// Cross-window observations required before the EWMA rule may score.
  std::size_t ewma_min_samples = 6;
  /// A trailing DP burst ending within this of the window end is held back
  /// (it may continue in the next window). A burst genuinely cut by the
  /// boundary has events ending at — usually past — the window end, so
  /// this only needs to cover intra-burst event gaps; a generous value
  /// holds (and re-processes) complete bursts that merely finished near
  /// the boundary.
  DurationNs boundary_hold = 50 * kMillisecond;
  /// Per-job state not observed for this many windows is evicted.
  std::size_t evict_after_windows = 8;

  /// Descriptive configuration errors (empty = valid).
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Cumulative counters over the session's lifetime.
struct SessionCounters {
  std::uint64_t windows = 0;               ///< analyze() calls completed
  std::uint64_t jobs_created = 0;          ///< per-job states minted
  std::uint64_t jobs_reused = 0;           ///< states found warm
  std::uint64_t jobs_invalidated = 0;      ///< states evicted or dropped
  std::uint64_t recognition_reuses = 0;    ///< cached partition+router hits
  std::uint64_t recognition_rebuilds = 0;  ///< pair-set misses (full pass)
  std::uint64_t pairs_reused = 0;          ///< comm-type warm-prior hits
  std::uint64_t pairs_reclassified = 0;    ///< new/contradicting pairs
  std::uint64_t boundary_steps_held = 0;   ///< tail bursts held back
  std::uint64_t boundary_steps_carried = 0;  ///< held bursts completed later
  std::uint64_t ewma_step_alerts = 0;      ///< alerts from carried baselines
};

/// All state carried for one job (keyed by its machine set). Pipeline-
/// facing: Prism::analyze hands the members to the stage carries; do not
/// touch from more than one thread at a time.
struct SessionJobState {
  CommTypeCarry comm;
  TimelineCarry timeline;
  /// Per-GPU cross-window step-duration baselines.
  std::unordered_map<GpuId, EwmaBaseline> step_baselines;
  /// EWMA alerts raised in the current window (reset when fetched).
  std::uint64_t ewma_alerts_last = 0;
  /// Session window index this state was last observed in.
  std::uint64_t last_seen_window = 0;
};

/// Warm analysis state threaded through Prism::analyze(trace, session) by
/// the OnlineMonitor (or any caller analyzing consecutive windows of one
/// feed). See the file comment for what is carried and the threading
/// contract; DESIGN.md §9 documents the warm-vs-cold equivalence contract.
class PrismSession {
 public:
  explicit PrismSession(SessionConfig config = {});

  /// Arm the next analyze() call with its window geometry. `hold_tail`
  /// should be true for every window except the final one (flush/shutdown),
  /// whose trailing burst is genuinely the end of the feed. A call that was
  /// not armed derives window_end from the trace and does not hold tails.
  void begin_window(TimeNs window_end, bool hold_tail);

  /// Drop all carried state (counted in jobs_invalidated). The next window
  /// runs the full cold pipeline and re-seeds the caches.
  void invalidate();

  [[nodiscard]] const SessionCounters& counters() const { return counters_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }
  /// Per-job states currently held (post-eviction).
  [[nodiscard]] std::size_t jobs_tracked() const { return job_states_.size(); }

  // ---- pipeline-facing (called by Prism::analyze on the warm path) ----

  /// True when `trace`'s communication pair set equals the cached one, so
  /// cached_recognition()/cached_router() may be reused for this window.
  [[nodiscard]] bool probe_recognition(const FlowTrace& trace);
  /// Columnar overload; reads only the src/dst columns.
  [[nodiscard]] bool probe_recognition(const FlowView& view);
  [[nodiscard]] const JobRecognitionResult& cached_recognition() const {
    return recognition_;
  }
  [[nodiscard]] const FlowRouter& cached_router() const { return *router_; }
  /// Seed the recognition cache after a full pass (pairs taken from the
  /// preceding probe_recognition call on the same trace).
  void store_recognition(const JobRecognitionResult& recognition);

  /// Fetch (or mint) the per-job state for a machine set; marks it
  /// observed in the current window and resets its per-window outputs.
  [[nodiscard]] SessionJobState& job_state(
      const std::vector<MachineId>& machines);
  /// Fold one job's per-window outcome counters into the session counters
  /// (call in job-id order for deterministic totals).
  void fold_job(const SessionJobState& state);
  /// Close the current window: evict stale per-job states, bump window
  /// counters, disarm.
  void finish_window();

  [[nodiscard]] bool window_armed() const { return window_armed_; }
  [[nodiscard]] TimeNs window_end() const { return window_end_; }
  [[nodiscard]] bool hold_tail() const { return hold_tail_; }

 private:
  /// Snapshot codec (core/snapshot.hpp): serializes the carried state —
  /// priors, EWMA baselines, timeline tails, recognition cache — to a
  /// versioned binary blob and restores it into a same-config session.
  friend struct SnapshotAccess;

  /// Shared tail of both probe_recognition overloads: compare probe_pairs_
  /// against the cached set and count the outcome.
  [[nodiscard]] bool finish_probe();

  SessionConfig config_;
  SessionCounters counters_;

  // Recognition cache: the pair set the cached partition was derived from.
  bool recognition_valid_ = false;
  std::unordered_set<GpuPair> cached_pairs_;
  std::unordered_set<GpuPair> probe_pairs_;  ///< last probe's pair set
  JobRecognitionResult recognition_;
  std::optional<FlowRouter> router_;

  std::unordered_map<std::vector<MachineId>, SessionJobState, MachineSetHash>
      job_states_;
  std::uint64_t window_index_ = 0;
  TimeNs window_end_ = 0;
  bool hold_tail_ = false;
  bool window_armed_ = false;
};

}  // namespace llmprism
