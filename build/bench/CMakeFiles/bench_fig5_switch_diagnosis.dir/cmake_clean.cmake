file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_switch_diagnosis.dir/bench_fig5_switch_diagnosis.cpp.o"
  "CMakeFiles/bench_fig5_switch_diagnosis.dir/bench_fig5_switch_diagnosis.cpp.o.d"
  "bench_fig5_switch_diagnosis"
  "bench_fig5_switch_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_switch_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
