file(REMOVE_RECURSE
  "libllmprism_parallelism.a"
)
