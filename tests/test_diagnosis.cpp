// Unit tests for the k-sigma detectors and the three diagnosis dimensions.
#include "llmprism/core/diagnosis.hpp"

#include <gtest/gtest.h>

namespace llmprism {
namespace {

// ---------------------------------------------------------------------------
// k-sigma primitives

TEST(KSigmaTest, AbstainsBelowMinSamples) {
  const std::vector<double> xs{1, 1, 100};
  KSigmaConfig cfg;
  cfg.min_samples = 6;
  EXPECT_TRUE(ksigma_outliers_above(xs, cfg).empty());
}

TEST(KSigmaTest, LeaveOneOutUnmasksSingleOutlier) {
  // 8 samples, one 3x outlier: a global 3-sigma rule can mathematically
  // never fire (max z = (n-1)/sqrt(n) = 2.47), leave-one-out does.
  const std::vector<double> xs{1.0, 1.02, 0.98, 1.01, 3.0, 0.99, 1.0, 1.03};
  KSigmaConfig cfg;
  cfg.leave_one_out = false;
  EXPECT_TRUE(ksigma_outliers_above(xs, cfg).empty());
  cfg.leave_one_out = true;
  const auto out = ksigma_outliers_above(xs, cfg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 4u);
}

TEST(KSigmaTest, BelowVariantFindsDepressedValue) {
  const std::vector<double> xs{150, 160, 155, 40, 158, 152, 149, 161};
  const auto out = ksigma_outliers_below(xs, KSigmaConfig{});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 3u);
}

TEST(KSigmaTest, RelativeExcessGuardSuppressesTinyDeviations) {
  // Ultra-tight series: 0.5% deviation is many sigma but not actionable.
  std::vector<double> xs(20, 1.0);
  xs[7] = 1.005;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 7) xs[i] += 1e-5 * static_cast<double>(i % 3);
  }
  KSigmaConfig cfg;
  cfg.min_relative_excess = 0.2;
  EXPECT_TRUE(ksigma_outliers_above(xs, cfg).empty());
  cfg.min_relative_excess = 0.0;
  EXPECT_FALSE(ksigma_outliers_above(xs, cfg).empty());
}

TEST(KSigmaTest, CleanSeriesNoOutliers) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(1.0 + 0.01 * (i % 5));
  EXPECT_TRUE(ksigma_outliers_above(xs, KSigmaConfig{}).empty());
  EXPECT_TRUE(ksigma_outliers_below(xs, KSigmaConfig{}).empty());
}

TEST(KSigmaTest, IdenticalValuesNoOutliers) {
  const std::vector<double> xs(10, 5.0);
  EXPECT_TRUE(ksigma_outliers_above(xs, KSigmaConfig{}).empty());
  EXPECT_TRUE(ksigma_outliers_below(xs, KSigmaConfig{}).empty());
}

TEST(KSigmaTest, MadDispersionWorks) {
  KSigmaConfig cfg;
  cfg.dispersion = Dispersion::kMad;
  const std::vector<double> xs{1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 4.0};
  const auto out = ksigma_outliers_above(xs, cfg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 6u);
}

TEST(KSigmaTest, StddevLooFindsOnlyTheLargestOfTwoOutliers) {
  // With leave-one-out stddev, the second outlier is still masked by the
  // first (it sits in the "others"): documented behaviour.
  std::vector<double> xs(16, 1.0);
  for (std::size_t i = 0; i < 16; ++i) xs[i] += 0.001 * (i % 4);
  xs[3] = 5.0;
  xs[11] = 4.0;
  const auto out = ksigma_outliers_above(xs, KSigmaConfig{});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 3u);
}

TEST(KSigmaTest, MadModeFindsMultipleOutliers) {
  // The robust median/MAD mode survives several simultaneous outliers.
  std::vector<double> xs(16, 1.0);
  for (std::size_t i = 0; i < 16; ++i) xs[i] += 0.001 * (i % 4);
  xs[3] = 5.0;
  xs[11] = 4.0;
  KSigmaConfig cfg;
  cfg.dispersion = Dispersion::kMad;
  const auto out = ksigma_outliers_above(xs, cfg);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 11u);
}

// ---------------------------------------------------------------------------
// Cross-step

GpuTimeline timeline_with_durations(const std::vector<double>& durations_s) {
  GpuTimeline t;
  t.gpu = GpuId(7);
  TimeNs at = 0;
  // step 0 is a stub (excluded by the diagnoser)
  t.steps.push_back({0, 0, at, 0, at});
  for (std::size_t i = 0; i < durations_s.size(); ++i) {
    const TimeNs end = at + from_seconds(durations_s[i]);
    t.steps.push_back({i + 1, at, end, end - kMillisecond, end});
    at = end;
  }
  return t;
}

TEST(CrossStepTest, FlagsSlowStep) {
  std::vector<double> durations(20, 1.0);
  for (std::size_t i = 0; i < durations.size(); ++i) {
    durations[i] += 0.002 * (i % 3);
  }
  durations[12] = 2.0;
  const auto t = timeline_with_durations(durations);
  const auto alerts = Diagnoser{}.cross_step(t);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].gpu, GpuId(7));
  EXPECT_EQ(alerts[0].step_index, 13u);  // step index includes stub offset
  EXPECT_NEAR(alerts[0].duration_s, 2.0, 1e-9);
  EXPECT_GT(alerts[0].threshold_s, alerts[0].mean_s);
}

TEST(CrossStepTest, CleanTimelineNoAlerts) {
  std::vector<double> durations(20, 1.0);
  const auto t = timeline_with_durations(durations);
  EXPECT_TRUE(Diagnoser{}.cross_step(t).empty());
}

TEST(CrossStepTest, TooFewStepsAbstains) {
  const auto t = timeline_with_durations({1.0, 5.0});
  EXPECT_TRUE(Diagnoser{}.cross_step(t).empty());
}

TEST(CrossStepTest, SpanOverloadConcatenates) {
  std::vector<double> a(15, 1.0), b(15, 1.0);
  a[5] = 3.0;
  b[7] = 3.0;
  for (std::size_t i = 0; i < 15; ++i) {
    a[i] += 1e-3 * (i % 2);
    b[i] += 1e-3 * (i % 2);
  }
  const std::vector<GpuTimeline> ts{timeline_with_durations(a),
                                    timeline_with_durations(b)};
  const auto alerts = Diagnoser{}.cross_step(std::span(ts));
  EXPECT_EQ(alerts.size(), 2u);
}

// ---------------------------------------------------------------------------
// Cross-group

TEST(CrossGroupTest, FlagsSlowGroupInOneStep) {
  // 8 groups x 10 steps, group 5 is 3x slow in steps 4-5.
  std::vector<std::vector<double>> durations(8, std::vector<double>(10, 0.04));
  for (std::size_t g = 0; g < 8; ++g) {
    for (std::size_t k = 0; k < 10; ++k) {
      durations[g][k] += 0.0005 * static_cast<double>((g + k) % 4);
    }
  }
  durations[5][4] = 0.12;
  durations[5][5] = 0.12;
  const auto alerts = Diagnoser{}.cross_group(durations);
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].group_index, 5u);
  EXPECT_EQ(alerts[0].step_index, 4u);
  EXPECT_EQ(alerts[1].step_index, 5u);
}

TEST(CrossGroupTest, RaggedRowsHandled) {
  std::vector<std::vector<double>> durations(8, std::vector<double>(10, 0.04));
  durations[2].resize(5);  // partial window for group 2
  for (std::size_t g = 0; g < 8; ++g) {
    for (std::size_t k = 0; k < durations[g].size(); ++k) {
      durations[g][k] += 0.0005 * static_cast<double>((g * 3 + k) % 4);
    }
  }
  durations[6][8] = 0.2;
  const auto alerts = Diagnoser{}.cross_group(durations);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].group_index, 6u);
  EXPECT_EQ(alerts[0].step_index, 8u);
}

TEST(CrossGroupTest, EmptyInput) {
  EXPECT_TRUE(Diagnoser{}.cross_group({}).empty());
}

// ---------------------------------------------------------------------------
// Switch-level

FlowRecord dp_flow(TimeNs t, std::uint32_t src, std::uint32_t dst,
                   std::uint64_t bytes, DurationNs dur,
                   std::initializer_list<std::uint32_t> switches) {
  FlowRecord f;
  f.start_time = t;
  f.src = GpuId(src);
  f.dst = GpuId(dst);
  f.bytes = bytes;
  f.duration = dur;
  for (const auto s : switches) f.switches.push_back(SwitchId(s));
  return f;
}

TEST(SwitchBandwidthTest, PerSwitchAverages) {
  FlowTrace t;
  // 20 Gb/s flow through switches 0 and 1
  t.add(dp_flow(0, 0, 8, 250, 100, {0, 1}));
  // 10 Gb/s flow through switch 1 only
  t.add(dp_flow(10, 0, 16, 250, 200, {1}));
  const auto bw = Diagnoser::per_switch_bandwidth(t);
  ASSERT_EQ(bw.size(), 2u);
  EXPECT_EQ(bw[0].first, SwitchId(0));
  EXPECT_DOUBLE_EQ(bw[0].second, 20.0);
  EXPECT_DOUBLE_EQ(bw[1].second, 15.0);  // mean of 20 and 10
}

TEST(SwitchBandwidthTest, ZeroDurationFlowsIgnored) {
  FlowTrace t;
  t.add(dp_flow(0, 0, 8, 250, 0, {0}));
  EXPECT_TRUE(Diagnoser::per_switch_bandwidth(t).empty());
}

TEST(SwitchBandwidthTest, FlagsDegradedSwitch) {
  FlowTrace t;
  TimeNs at = 0;
  for (std::uint32_t sw = 0; sw < 10; ++sw) {
    // switch 7 runs at a quarter of the bandwidth of the others
    const DurationNs dur = sw == 7 ? 400 : 100 + 2 * sw;
    for (int i = 0; i < 5; ++i) {
      t.add(dp_flow(at++, 0, 8, 250, dur, {sw}));
    }
  }
  const auto alerts = Diagnoser{}.switch_bandwidth(t);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].switch_id, SwitchId(7));
  EXPECT_LT(alerts[0].bandwidth_gbps, alerts[0].threshold_gbps);
}

TEST(SwitchConcurrencyTest, PeakCounting) {
  FlowTrace t;
  // 3 overlapping flows on switch 0, 1 on switch 1.
  t.add(dp_flow(0, 0, 8, 1, 100, {0}));
  t.add(dp_flow(10, 1, 9, 1, 100, {0}));
  t.add(dp_flow(20, 2, 10, 1, 100, {0}));
  t.add(dp_flow(0, 3, 11, 1, 100, {1}));
  DiagnosisConfig cfg;
  cfg.switch_dp_flow_limit = 2;
  const auto alerts = Diagnoser(cfg).switch_concurrency(t);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].switch_id, SwitchId(0));
  EXPECT_EQ(alerts[0].concurrent_flows, 3u);
  EXPECT_EQ(alerts[0].at, 20);
}

TEST(SwitchConcurrencyTest, BackToBackFlowsDoNotOverlap) {
  FlowTrace t;
  // end == next start: sweep processes the end first, peak stays 1.
  t.add(dp_flow(0, 0, 8, 1, 100, {0}));
  t.add(dp_flow(100, 1, 9, 1, 100, {0}));
  DiagnosisConfig cfg;
  cfg.switch_dp_flow_limit = 1;
  EXPECT_TRUE(Diagnoser(cfg).switch_concurrency(t).empty());
}

TEST(SwitchConcurrencyTest, UnderLimitNoAlerts) {
  FlowTrace t;
  for (int i = 0; i < 10; ++i) t.add(dp_flow(i * 200, 0, 8, 1, 100, {0}));
  EXPECT_TRUE(Diagnoser{}.switch_concurrency(t).empty());
}

// ---------------------------------------------------------------------------
// group_dp_durations

TEST(GroupDpDurationsTest, SpansUnionOfMembers) {
  GpuTimeline a;
  a.gpu = GpuId(0);
  a.steps.push_back({0, 0, 100, 50, 100});
  GpuTimeline b;
  b.gpu = GpuId(8);
  b.steps.push_back({0, 0, 120, 40, 120});
  const std::vector<GpuTimeline> ts{a, b};
  const std::vector<std::vector<GpuId>> comps{{GpuId(0), GpuId(8)}};
  const auto durations = group_dp_durations(std::span(ts), comps);
  ASSERT_EQ(durations.size(), 1u);
  ASSERT_EQ(durations[0].size(), 1u);
  EXPECT_DOUBLE_EQ(durations[0][0], to_seconds(120 - 40));
}

TEST(GroupDpDurationsTest, TruncatesToCommonSteps) {
  GpuTimeline a;
  a.gpu = GpuId(0);
  a.steps.push_back({0, 0, 100, 50, 100});
  a.steps.push_back({1, 100, 200, 150, 200});
  GpuTimeline b;
  b.gpu = GpuId(8);
  b.steps.push_back({0, 0, 110, 60, 110});
  const std::vector<GpuTimeline> ts{a, b};
  const std::vector<std::vector<GpuId>> comps{{GpuId(0), GpuId(8)}};
  const auto durations = group_dp_durations(std::span(ts), comps);
  ASSERT_EQ(durations[0].size(), 1u);  // min over members
}

TEST(GroupDpDurationsTest, MissingMembersSkipped) {
  const std::vector<GpuTimeline> ts;
  const std::vector<std::vector<GpuId>> comps{{GpuId(0)}};
  const auto durations = group_dp_durations(std::span(ts), comps);
  ASSERT_EQ(durations.size(), 1u);
  EXPECT_TRUE(durations[0].empty());
}

}  // namespace
}  // namespace llmprism
