# Empty compiler generated dependencies file for test_bocd.
# This may be replaced when dependencies are built.
