// Warm-vs-cold differential tests for the incremental session engine
// (PrismSession, threaded through OnlineMonitor by MonitorConfig::
// carry_state).
//
// Contract under test (DESIGN.md §9): with every carry feature disabled
// except the provably-exact recognition fast path, warm ticks are
// field-for-field identical to the stateless monitor. Each additional
// carry feature changes the report ONLY in its documented way:
//   - comm-type priors: reused pairs report num_steps_observed == 0 and
//     the BOCD work telemetry shrinks; the classifications themselves
//     stay identical.
//   - timeline tails: a DP burst straddling a window boundary is held
//     back and reconstructed whole by the next window (the cold path
//     truncates it at the boundary); DP events are conserved — every
//     event is emitted in exactly one tick, including on flush().
//   - EWMA baselines: extra early step alerts may appear (warm alerts
//     are a superset), once the cross-window baseline has history.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "llmprism/core/monitor.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/core/snapshot.hpp"
#include "llmprism/export/journal.hpp"
#include "llmprism/export/perfetto.hpp"
#include "llmprism/export/series.hpp"
#include "llmprism/export/view.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

JobSimConfig job(std::uint32_t tp, std::uint32_t dp, std::uint32_t pp,
                 std::uint32_t steps) {
  JobSimConfig cfg;
  cfg.parallelism.tp = tp;
  cfg.parallelism.dp = dp;
  cfg.parallelism.pp = pp;
  cfg.parallelism.micro_batches = 4;
  cfg.num_steps = steps;
  return cfg;
}

/// Two steady jobs, no collection noise: every communication pair is
/// active in every window, so the recognition and comm-type caches get
/// real hits.
ClusterSimConfig steady_mix() {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 8, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.jobs.push_back({job(8, 2, 2, 16), {}});
  cfg.jobs.push_back({job(8, 4, 1, 16), {}});
  cfg.seed = 21;
  return cfg;
}

/// One job, long enough to place a window boundary mid-step.
ClusterSimConfig single_job_mix(std::uint32_t steps) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 4, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.jobs.push_back({job(8, 2, 2, steps), {}});
  cfg.seed = 22;
  return cfg;
}

struct MixData {
  ClusterSimResult sim;
};

const MixData& steady_jobs() {
  static const MixData mix{run_cluster_sim(steady_mix())};
  return mix;
}

const MixData& straddle_job() {
  static const MixData mix{run_cluster_sim(single_job_mix(24))};
  return mix;
}

MonitorConfig monitor_config(DurationNs window, bool carry) {
  MonitorConfig cfg;
  cfg.window = window;
  cfg.reorder_slack = 0;  // close windows as soon as the watermark passes
  cfg.carry_state = carry;
  return cfg;
}

std::vector<MonitorTick> run_monitor(OnlineMonitor& monitor,
                                     const FlowTrace& trace) {
  auto ticks = monitor.ingest(trace);
  if (auto last = monitor.flush()) ticks.push_back(std::move(*last));
  return ticks;
}

// --- comparison helpers ---------------------------------------------------

struct CompareOptions {
  /// Reused comm-type pairs skip BOCD and report num_steps_observed == 0.
  bool skip_steps_observed = false;
  /// ... which also shrinks the BOCD/artifact work telemetry.
  bool skip_bocd_telemetry = false;
};

void expect_traces_equal(const FlowColumns& a, const FlowColumns& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "flow " << i;
  }
}

void expect_timelines_equal(const GpuTimeline& a, const GpuTimeline& b) {
  EXPECT_EQ(a.gpu, b.gpu);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].start, b.events[i].start);
    EXPECT_EQ(a.events[i].end, b.events[i].end);
    EXPECT_EQ(a.events[i].peer, b.events[i].peer);
  }
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    SCOPED_TRACE("step " + std::to_string(i));
    EXPECT_EQ(a.steps[i].index, b.steps[i].index);
    EXPECT_EQ(a.steps[i].begin, b.steps[i].begin);
    EXPECT_EQ(a.steps[i].end, b.steps[i].end);
    EXPECT_EQ(a.steps[i].dp_begin, b.steps[i].dp_begin);
    EXPECT_EQ(a.steps[i].dp_end, b.steps[i].dp_end);
  }
}

void expect_reports_equal(const PrismReport& a, const PrismReport& b,
                          const CompareOptions& opts) {
  EXPECT_EQ(a.recognition.num_cross_machine_clusters,
            b.recognition.num_cross_machine_clusters);
  ASSERT_EQ(a.recognition.jobs.size(), b.recognition.jobs.size());
  for (std::size_t j = 0; j < a.recognition.jobs.size(); ++j) {
    SCOPED_TRACE("recognized job " + std::to_string(j));
    EXPECT_EQ(a.recognition.jobs[j].gpus, b.recognition.jobs[j].gpus);
    EXPECT_EQ(a.recognition.jobs[j].observed_gpus,
              b.recognition.jobs[j].observed_gpus);
    EXPECT_EQ(a.recognition.jobs[j].machines, b.recognition.jobs[j].machines);
    EXPECT_EQ(a.recognition.jobs[j].cross_machine_clusters,
              b.recognition.jobs[j].cross_machine_clusters);
  }

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    SCOPED_TRACE("job " + std::to_string(j));
    const JobAnalysis& ja = a.jobs[j];
    const JobAnalysis& jb = b.jobs[j];
    EXPECT_EQ(ja.id, jb.id);
    expect_traces_equal(ja.trace, jb.trace);
    ASSERT_EQ(ja.comm_types.pairs.size(), jb.comm_types.pairs.size());
    for (std::size_t p = 0; p < ja.comm_types.pairs.size(); ++p) {
      SCOPED_TRACE("pair " + std::to_string(p));
      EXPECT_EQ(ja.comm_types.pairs[p].pair, jb.comm_types.pairs[p].pair);
      EXPECT_EQ(ja.comm_types.pairs[p].type, jb.comm_types.pairs[p].type);
      EXPECT_EQ(ja.comm_types.pairs[p].pre_refinement_type,
                jb.comm_types.pairs[p].pre_refinement_type);
      EXPECT_EQ(ja.comm_types.pairs[p].num_flows,
                jb.comm_types.pairs[p].num_flows);
      if (!opts.skip_steps_observed) {
        EXPECT_EQ(ja.comm_types.pairs[p].num_steps_observed,
                  jb.comm_types.pairs[p].num_steps_observed);
      }
    }
    EXPECT_EQ(ja.comm_types.dp_components, jb.comm_types.dp_components);
    EXPECT_EQ(ja.inferred.world_size, jb.inferred.world_size);
    EXPECT_EQ(ja.inferred.dp, jb.inferred.dp);
    EXPECT_EQ(ja.inferred.pp, jb.inferred.pp);
    EXPECT_EQ(ja.inferred.tp, jb.inferred.tp);
    EXPECT_EQ(ja.inferred.micro_batches, jb.inferred.micro_batches);
    ASSERT_EQ(ja.timelines.size(), jb.timelines.size());
    for (std::size_t t = 0; t < ja.timelines.size(); ++t) {
      SCOPED_TRACE("timeline " + std::to_string(t));
      expect_timelines_equal(ja.timelines[t], jb.timelines[t]);
    }
    ASSERT_EQ(ja.step_alerts.size(), jb.step_alerts.size());
    for (std::size_t i = 0; i < ja.step_alerts.size(); ++i) {
      SCOPED_TRACE("step alert " + std::to_string(i));
      EXPECT_EQ(ja.step_alerts[i].gpu, jb.step_alerts[i].gpu);
      EXPECT_EQ(ja.step_alerts[i].step_index, jb.step_alerts[i].step_index);
      EXPECT_EQ(ja.step_alerts[i].duration_s, jb.step_alerts[i].duration_s);
      EXPECT_EQ(ja.step_alerts[i].mean_s, jb.step_alerts[i].mean_s);
      EXPECT_EQ(ja.step_alerts[i].threshold_s, jb.step_alerts[i].threshold_s);
    }
    ASSERT_EQ(ja.group_alerts.size(), jb.group_alerts.size());
  }

  EXPECT_EQ(a.switch_bandwidth_gbps, b.switch_bandwidth_gbps);
  ASSERT_EQ(a.switch_bandwidth_alerts.size(), b.switch_bandwidth_alerts.size());
  ASSERT_EQ(a.switch_concurrency_alerts.size(),
            b.switch_concurrency_alerts.size());

  // Attribution is a pure function of alerts + timelines + comm types, so
  // warm ticks must carry field-for-field identical incidents (the structs
  // have defaulted equality covering culprits, victims, and evidence).
  EXPECT_EQ(a.attribution.incidents, b.attribution.incidents);
  EXPECT_EQ(a.attribution.telemetry.alerts_explained,
            b.attribution.telemetry.alerts_explained);
  EXPECT_EQ(a.attribution.telemetry.alerts_orphaned,
            b.attribution.telemetry.alerts_orphaned);

  const ReportTelemetry& ta = a.telemetry;
  const ReportTelemetry& tb = b.telemetry;
  EXPECT_EQ(ta.flows_total, tb.flows_total);
  EXPECT_EQ(ta.flows_routed, tb.flows_routed);
  EXPECT_EQ(ta.flows_routed_via_dst, tb.flows_routed_via_dst);
  EXPECT_EQ(ta.flows_unattributed, tb.flows_unattributed);
  EXPECT_EQ(ta.pairs_classified, tb.pairs_classified);
  EXPECT_EQ(ta.pairs_dp, tb.pairs_dp);
  EXPECT_EQ(ta.pairs_pp, tb.pairs_pp);
  EXPECT_EQ(ta.refinement_flips, tb.refinement_flips);
  if (!opts.skip_bocd_telemetry) {
    EXPECT_EQ(ta.artifact_size_clusters, tb.artifact_size_clusters);
    EXPECT_EQ(ta.artifact_flows, tb.artifact_flows);
    EXPECT_EQ(ta.artifact_segments, tb.artifact_segments);
    EXPECT_EQ(ta.bocd_observations, tb.bocd_observations);
    EXPECT_EQ(ta.bocd_boundaries, tb.bocd_boundaries);
    EXPECT_EQ(ta.bocd_hard_resets, tb.bocd_hard_resets);
  }
  EXPECT_EQ(ta.timelines_reconstructed, tb.timelines_reconstructed);
  EXPECT_EQ(ta.timeline_events, tb.timeline_events);
  EXPECT_EQ(ta.steps_reconstructed, tb.steps_reconstructed);
  EXPECT_EQ(ta.ksigma_series, tb.ksigma_series);
  EXPECT_EQ(ta.ksigma_points, tb.ksigma_points);
  EXPECT_EQ(ta.ksigma_alerts, tb.ksigma_alerts);
  EXPECT_EQ(ta.incidents, tb.incidents);
  EXPECT_EQ(ta.alerts_explained, tb.alerts_explained);
  EXPECT_EQ(ta.alerts_orphaned, tb.alerts_orphaned);
}

void expect_ticks_equal(const std::vector<MonitorTick>& a,
                        const std::vector<MonitorTick>& b,
                        const CompareOptions& opts = {}) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("tick " + std::to_string(i));
    EXPECT_EQ(a[i].window.begin, b[i].window.begin);
    EXPECT_EQ(a[i].window.end, b[i].window.end);
    EXPECT_EQ(a[i].job_ids, b[i].job_ids);
    expect_reports_equal(a[i].report, b[i].report, opts);
  }
}

/// Total DP timeline events across all ticks — the conservation quantity
/// of the timeline-tail carry (held events move between ticks, but every
/// one is emitted exactly once).
std::size_t total_dp_events(const std::vector<MonitorTick>& ticks) {
  std::size_t n = 0;
  for (const MonitorTick& tick : ticks) {
    for (const JobAnalysis& job : tick.report.jobs) {
      for (const GpuTimeline& t : job.timelines) {
        for (const TimelineEvent& e : t.events) {
          n += e.kind == TimelineEventKind::kDp;
        }
      }
    }
  }
  return n;
}

/// Concatenated (dp_begin, dp_end) step extents per GPU across all ticks.
std::unordered_map<GpuId, std::vector<std::pair<TimeNs, TimeNs>>>
concat_steps(const std::vector<MonitorTick>& ticks) {
  std::unordered_map<GpuId, std::vector<std::pair<TimeNs, TimeNs>>> out;
  for (const MonitorTick& tick : ticks) {
    for (const JobAnalysis& job : tick.report.jobs) {
      for (const GpuTimeline& t : job.timelines) {
        for (const ReconstructedStep& s : t.steps) {
          out[t.gpu].emplace_back(s.dp_begin, s.dp_end);
        }
      }
    }
  }
  return out;
}

// --- the provably-exact core: recognition fast path -----------------------

TEST(SessionEquivalenceTest, RecognitionOnlyWarmIsBitIdentical) {
  const MixData& mix = steady_jobs();
  MonitorConfig warm_cfg = monitor_config(2 * kSecond, true);
  warm_cfg.session.reuse_comm_types = false;
  warm_cfg.session.carry_timeline_tails = false;
  warm_cfg.session.ewma_baselines = false;

  OnlineMonitor cold(mix.sim.topology, monitor_config(2 * kSecond, false));
  OnlineMonitor warm(mix.sim.topology, warm_cfg);
  const auto cold_ticks = run_monitor(cold, mix.sim.trace);
  const auto warm_ticks = run_monitor(warm, mix.sim.trace);

  ASSERT_GE(cold_ticks.size(), 3u) << "mix must span several windows";
  expect_ticks_equal(cold_ticks, warm_ticks);

  const PrismSession* session = warm.session();
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(cold.session(), nullptr);
  EXPECT_GE(session->counters().recognition_reuses, 1u)
      << "steady traffic must hit the recognition cache";
  EXPECT_GE(session->counters().recognition_rebuilds, 1u)
      << "the first window always seeds cold";
  EXPECT_EQ(session->counters().windows, warm_ticks.size());

  EXPECT_EQ(cold.stats().flows_ingested, warm.stats().flows_ingested);
  EXPECT_EQ(cold.stats().windows_completed, warm.stats().windows_completed);
  EXPECT_EQ(cold.stats().stable_ids_created, warm.stats().stable_ids_created);
  EXPECT_EQ(cold.stats().step_alerts, warm.stats().step_alerts);
  EXPECT_EQ(cold.stats().group_alerts, warm.stats().group_alerts);
}

// Under the same restricted config the job-facing exports — pure
// functions of the tick sequence — must come out byte-identical, warm or
// cold.
TEST(SessionEquivalenceTest, RecognitionOnlyWarmExportsAreBitIdentical) {
  const MixData& mix = steady_jobs();
  MonitorConfig warm_cfg = monitor_config(2 * kSecond, true);
  warm_cfg.session.reuse_comm_types = false;
  warm_cfg.session.carry_timeline_tails = false;
  warm_cfg.session.ewma_baselines = false;

  OnlineMonitor cold(mix.sim.topology, monitor_config(2 * kSecond, false));
  OnlineMonitor warm(mix.sim.topology, warm_cfg);

  const auto render = [](const std::vector<MonitorTick>& ticks) {
    PerfettoExporter perfetto;
    JobSeriesCollector series;
    IncidentJournal journal;
    for (const MonitorTick& tick : ticks) {
      const WindowExportView view = export_view(tick);
      perfetto.add_window(view);
      series.add_window(view);
      journal.add_window(view);
    }
    journal.finish();
    std::ostringstream os;
    perfetto.write(os);
    series.write_openmetrics(os);
    series.write_jsonl(os);
    journal.write_jsonl(os);
    return os.str();
  };

  const std::string cold_out = render(run_monitor(cold, mix.sim.trace));
  const std::string warm_out = render(run_monitor(warm, mix.sim.trace));
  EXPECT_GT(cold_out.size(), 1000u) << "exports must not be vacuously empty";
  EXPECT_EQ(warm_out, cold_out);
}

// --- comm-type priors: identical classifications, less BOCD work ----------

TEST(SessionEquivalenceTest, CommPriorsChangeOnlyBocdWorkTelemetry) {
  const MixData& mix = steady_jobs();
  MonitorConfig warm_cfg = monitor_config(2 * kSecond, true);
  warm_cfg.session.carry_timeline_tails = false;
  warm_cfg.session.ewma_baselines = false;

  OnlineMonitor cold(mix.sim.topology, monitor_config(2 * kSecond, false));
  OnlineMonitor warm(mix.sim.topology, warm_cfg);
  const auto cold_ticks = run_monitor(cold, mix.sim.trace);
  const auto warm_ticks = run_monitor(warm, mix.sim.trace);

  expect_ticks_equal(cold_ticks, warm_ticks,
                     {.skip_steps_observed = true, .skip_bocd_telemetry = true});

  const PrismSession* session = warm.session();
  ASSERT_NE(session, nullptr);
  EXPECT_GT(session->counters().pairs_reused, 0u);

  // The documented exception is real: some warm pair skipped BOCD
  // (num_steps_observed == 0) where the cold run observed steps.
  bool found_reused_pair = false;
  std::uint64_t cold_bocd = 0;
  std::uint64_t warm_bocd = 0;
  for (std::size_t i = 0; i < warm_ticks.size(); ++i) {
    cold_bocd += cold_ticks[i].report.telemetry.bocd_observations;
    warm_bocd += warm_ticks[i].report.telemetry.bocd_observations;
    for (std::size_t j = 0; j < warm_ticks[i].report.jobs.size(); ++j) {
      const auto& wp = warm_ticks[i].report.jobs[j].comm_types.pairs;
      const auto& cp = cold_ticks[i].report.jobs[j].comm_types.pairs;
      for (std::size_t p = 0; p < wp.size(); ++p) {
        if (wp[p].num_steps_observed == 0 && cp[p].num_steps_observed > 0) {
          found_reused_pair = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_reused_pair);
  EXPECT_LT(warm_bocd, cold_bocd) << "priors must actually save BOCD work";
}

// --- timeline tails: boundary-straddling steps ----------------------------

/// Window geometry that provably places a boundary mid-DP-burst: the
/// middle step of the full-trace reference timeline, with W solved so
/// that boundary k = t0 + k*W lands inside its DP phase.
struct StraddleSetup {
  FlowTrace trace;
  TimeNs t0 = 0;
  DurationNs window = 0;
  TimeNs k = 0;  ///< index of the mid-burst boundary
  TimeNs boundary = 0;
  GpuId probe_gpu;
  std::pair<TimeNs, TimeNs> extent;  ///< target step's (dp_begin, dp_end)
};

const StraddleSetup& straddle_setup() {
  static const StraddleSetup setup = [] {
    StraddleSetup s;
    s.trace = straddle_job().sim.trace;
    s.trace.sort();
    s.t0 = s.trace.span().begin;
    // Full-trace analysis is the ground truth for step extents: no window
    // boundary exists, so no step is ever truncated.
    const PrismReport reference =
        Prism(straddle_job().sim.topology, PrismConfig{}).analyze(s.trace);
    const GpuTimeline& probe = reference.jobs.at(0).timelines.at(0);
    const ReconstructedStep& target = probe.steps.at(probe.steps.size() / 2);
    s.probe_gpu = probe.gpu;
    s.extent = {target.dp_begin, target.dp_end};
    const TimeNs boundary_target =
        target.dp_begin + (target.dp_end - target.dp_begin) / 2;
    s.k = std::max<TimeNs>(1, (boundary_target - s.t0) / (1500 * kMillisecond));
    s.window = (boundary_target - s.t0) / s.k;
    s.boundary = s.t0 + s.k * s.window;
    return s;
  }();
  return setup;
}

bool contains_extent(
    const std::unordered_map<GpuId, std::vector<std::pair<TimeNs, TimeNs>>>&
        steps_by_gpu,
    GpuId gpu, const std::pair<TimeNs, TimeNs>& extent) {
  const auto it = steps_by_gpu.find(gpu);
  return it != steps_by_gpu.end() &&
         std::find(it->second.begin(), it->second.end(), extent) !=
             it->second.end();
}

TEST(SessionEquivalenceTest, BoundaryStraddlingStepReconstructed) {
  const MixData& mix = straddle_job();
  const StraddleSetup& s = straddle_setup();
  ASSERT_GT(s.boundary, s.extent.first);
  ASSERT_LT(s.boundary, s.extent.second);

  OnlineMonitor cold(mix.sim.topology, monitor_config(s.window, false));
  OnlineMonitor warm(mix.sim.topology, monitor_config(s.window, true));
  const auto cold_ticks = run_monitor(cold, s.trace);
  const auto warm_ticks = run_monitor(warm, s.trace);
  ASSERT_GT(cold_ticks.size(), static_cast<std::size_t>(s.k))
      << "boundary k must be a closed window";

  EXPECT_TRUE(contains_extent(concat_steps(warm_ticks), s.probe_gpu, s.extent))
      << "carry must reconstruct the straddling step with its full-trace "
         "extent";
  EXPECT_FALSE(contains_extent(concat_steps(cold_ticks), s.probe_gpu, s.extent))
      << "the stateless path truncates the straddling step at the boundary";

  // Held events are re-emitted by the next window, never lost.
  EXPECT_EQ(total_dp_events(warm_ticks), total_dp_events(cold_ticks));
  const PrismSession* session = warm.session();
  ASSERT_NE(session, nullptr);
  EXPECT_GT(session->counters().boundary_steps_held, 0u);
  EXPECT_GT(session->counters().boundary_steps_carried, 0u);
}

TEST(SessionEquivalenceTest, FlushEmitsCarriedStep) {
  const MixData& mix = straddle_job();
  const StraddleSetup& s = straddle_setup();

  // Cut the feed shortly after the straddling burst ends: window k closes
  // holding the burst's head, and flush() analyzes the remainder — which
  // still contains DP traffic, so the job's machine set stays whole and
  // the held events come out in the flush tick.
  const FlowTrace feed =
      s.trace.window({s.t0, s.extent.second + 300 * kMillisecond});
  ASSERT_LT(feed.size(), s.trace.size());

  OnlineMonitor cold(mix.sim.topology, monitor_config(s.window, false));
  OnlineMonitor warm(mix.sim.topology, monitor_config(s.window, true));
  const auto cold_ticks = run_monitor(cold, feed);
  const auto warm_ticks = run_monitor(warm, feed);
  ASSERT_EQ(cold_ticks.size(), warm_ticks.size());
  ASSERT_EQ(warm_ticks.size(), static_cast<std::size_t>(s.k) + 1)
      << "k closed windows plus the flush tick";

  // The flush tick (hold_tail = false) emits the carried straddling step
  // whole; the stateless path truncated it at the boundary.
  EXPECT_TRUE(contains_extent(concat_steps(warm_ticks), s.probe_gpu, s.extent));
  EXPECT_FALSE(
      contains_extent(concat_steps(cold_ticks), s.probe_gpu, s.extent));
  EXPECT_EQ(total_dp_events(warm_ticks), total_dp_events(cold_ticks))
      << "flush must emit every held event exactly once";
  const PrismSession* session = warm.session();
  ASSERT_NE(session, nullptr);
  EXPECT_GT(session->counters().boundary_steps_held, 0u);
  EXPECT_GT(session->counters().boundary_steps_carried, 0u);
}

// --- EWMA baselines: early alerts on windows too short for k-sigma --------

TEST(SessionEquivalenceTest, EwmaBaselinesAlertWhereColdCannot) {
  // Short windows (~3 steps each) never reach the window-local k-sigma
  // min_samples, so the stateless monitor is blind to the straggler. The
  // carried EWMA baseline accumulates across windows and fires.
  ClusterSimConfig cfg = single_job_mix(30);
  cfg.jobs[0].config.stragglers.push_back(
      {.rank = 0, .step_begin = 20, .step_end = 22, .slowdown = 3.0});
  cfg.seed = 23;
  const ClusterSimResult sim = run_cluster_sim(cfg);

  OnlineMonitor cold(sim.topology, monitor_config(kSecond, false));
  OnlineMonitor warm(sim.topology, monitor_config(kSecond, true));
  const auto cold_ticks = run_monitor(cold, sim.trace);
  const auto warm_ticks = run_monitor(warm, sim.trace);
  ASSERT_GE(cold_ticks.size(), 6u);

  EXPECT_EQ(cold.stats().step_alerts, 0u)
      << "windows must be too short for the window-local rule";
  EXPECT_GT(warm.stats().step_alerts, 0u)
      << "the carried baseline must catch the straggler";
  const PrismSession* session = warm.session();
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->counters().ewma_step_alerts, warm.stats().step_alerts);

  // The alerts point at the straggler's windows, not the healthy start.
  std::size_t first_alert_tick = warm_ticks.size();
  for (std::size_t i = 0; i < warm_ticks.size(); ++i) {
    for (const JobAnalysis& j : warm_ticks[i].report.jobs) {
      if (!j.step_alerts.empty()) {
        first_alert_tick = std::min(first_alert_tick, i);
      }
    }
  }
  ASSERT_LT(first_alert_tick, warm_ticks.size());
  EXPECT_GE(first_alert_tick, 2u)
      << "no alert may fire before the baseline has min_samples history";
}

// --- job churn: invalidation and re-minting -------------------------------

TEST(SessionEquivalenceTest, JobChurnEvictsAndRemintsSessionState) {
  const MixData& mix = steady_jobs();
  FlowTrace trace = mix.sim.trace;
  trace.sort();
  const TimeNs t0 = trace.span().begin;

  // Job B's flows vanish for three windows mid-feed, then return. The gap
  // is window-aligned so B is absent for a deterministic window count, and
  // the feed is cut at B's last flow so B is present in the flush window
  // (no trailing re-eviction to account for).
  std::unordered_set<GpuId> job_b;
  for (const GpuId g : mix.sim.jobs[1].gpus) job_b.insert(g);
  TimeNs b_last = t0;
  for (const FlowRecord& f : trace) {
    if (job_b.count(f.src) > 0) b_last = std::max(b_last, f.start_time);
  }
  const DurationNs window = 500 * kMillisecond;
  const TimeNs gap_begin = t0 + 2 * window;
  const TimeNs gap_end = t0 + 5 * window;
  ASSERT_GT(b_last, gap_end + 2 * window)
      << "job B must return for at least two windows after the gap";
  FlowTrace churned;
  churned.reserve(trace.size());
  for (const FlowRecord& f : trace) {
    if (f.start_time > b_last) continue;
    const bool in_gap = f.start_time >= gap_begin && f.start_time < gap_end;
    if (in_gap && job_b.count(f.src) > 0) continue;
    churned.add(f);
  }
  ASSERT_LT(churned.size(), trace.size());

  MonitorConfig cfg = monitor_config(window, true);
  cfg.session.evict_after_windows = 2;
  OnlineMonitor warm(mix.sim.topology, cfg);
  const auto ticks = run_monitor(warm, churned);
  ASSERT_GE(ticks.size(), 8u);

  const PrismSession* session = warm.session();
  ASSERT_NE(session, nullptr);
  // 2 states minted up front + job B re-minted after eviction.
  EXPECT_EQ(session->counters().jobs_created, 3u);
  EXPECT_EQ(session->counters().jobs_invalidated, 1u);
  // The pair set changed when B left and when it returned: those windows
  // must rebuild recognition, the steady stretches still reuse it.
  EXPECT_GE(session->counters().recognition_rebuilds, 3u);
  EXPECT_GE(session->counters().recognition_reuses, 2u);
  // The monitor's stable-id map never forgets: B keeps its id throughout.
  EXPECT_EQ(warm.stats().stable_ids_created, 2u);
}

TEST(SessionEquivalenceTest, InvalidateSessionForcesColdReseed) {
  const MixData& mix = steady_jobs();
  FlowTrace trace = mix.sim.trace;
  trace.sort();
  const TimeNs mid =
      trace.span().begin +
      (trace.span().end - trace.span().begin) / 2;

  OnlineMonitor warm(mix.sim.topology, monitor_config(kSecond, true));
  auto ticks = warm.ingest(trace.window({trace.span().begin, mid}));
  ASSERT_GE(ticks.size(), 2u);
  const PrismSession* session = warm.session();
  ASSERT_NE(session, nullptr);
  const std::uint64_t rebuilds_before =
      session->counters().recognition_rebuilds;
  const std::uint64_t jobs_tracked = session->jobs_tracked();
  ASSERT_GT(jobs_tracked, 0u);

  warm.invalidate_session();
  EXPECT_EQ(session->jobs_tracked(), 0u);
  EXPECT_EQ(session->counters().jobs_invalidated, jobs_tracked);

  auto more = warm.ingest(trace.window({mid, trace.span().end}));
  if (auto last = warm.flush()) more.push_back(std::move(*last));
  ASSERT_GE(more.size(), 1u);
  EXPECT_GT(session->counters().recognition_rebuilds, rebuilds_before)
      << "the first post-invalidation window must run cold";
  EXPECT_GT(session->jobs_tracked(), 0u) << "and re-seed the caches";
}

// --- snapshot/restore: an interrupted warm session is no worse ------------

// The daemon's restart story (DESIGN.md §14): snapshot a warm monitor
// mid-stream, restore into a fresh one, keep ingesting — every subsequent
// tick must be field-for-field identical to the uninterrupted session,
// with every carry feature enabled (the byte-level blob contract lives in
// test_snapshot.cpp; this is the semantic differential).
TEST(SessionEquivalenceTest, SnapshotRestoreContinuesExactly) {
  const MixData& mix = steady_jobs();
  FlowTrace trace = mix.sim.trace;
  trace.sort();
  const TimeNs mid =
      trace.span().begin + (trace.span().end - trace.span().begin) / 2;
  const FlowTrace head = trace.window({trace.span().begin, mid});
  const FlowTrace tail = trace.window({mid, trace.span().end + 1});

  OnlineMonitor reference(mix.sim.topology, monitor_config(2 * kSecond, true));
  auto ref_ticks = reference.ingest(head);
  for (MonitorTick& t : reference.ingest(tail)) {
    ref_ticks.push_back(std::move(t));
  }
  if (auto last = reference.flush()) ref_ticks.push_back(std::move(*last));
  ASSERT_GE(ref_ticks.size(), 3u);

  OnlineMonitor interrupted(mix.sim.topology,
                            monitor_config(2 * kSecond, true));
  auto ticks = interrupted.ingest(head);
  std::ostringstream blob;
  save_snapshot(blob, interrupted);

  OnlineMonitor restored(mix.sim.topology, monitor_config(2 * kSecond, true));
  {
    std::istringstream is(blob.str());
    restore_snapshot(is, restored);
  }
  for (MonitorTick& t : restored.ingest(tail)) ticks.push_back(std::move(t));
  if (auto last = restored.flush()) ticks.push_back(std::move(*last));

  expect_ticks_equal(ticks, ref_ticks);
  ASSERT_NE(restored.session(), nullptr);
  ASSERT_NE(reference.session(), nullptr);
  const SessionCounters& a = restored.session()->counters();
  const SessionCounters& b = reference.session()->counters();
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.recognition_reuses, b.recognition_reuses);
  EXPECT_EQ(a.pairs_reused, b.pairs_reused);
  EXPECT_EQ(a.boundary_steps_held, b.boundary_steps_held);
  EXPECT_EQ(a.boundary_steps_carried, b.boundary_steps_carried);
  EXPECT_EQ(a.ewma_step_alerts, b.ewma_step_alerts);
  EXPECT_EQ(restored.stats().stable_ids_created,
            reference.stats().stable_ids_created)
      << "stable job ids must survive the restart";
}

// --- determinism of the warm path under the per-job fan-out ---------------

TEST(SessionEquivalenceTest, WarmPathDeterministicUnderThreads) {
  const MixData& mix = steady_jobs();
  MonitorConfig seq_cfg = monitor_config(2 * kSecond, true);
  seq_cfg.prism.num_threads = 1;
  MonitorConfig par_cfg = seq_cfg;
  par_cfg.prism.num_threads = 4;

  OnlineMonitor sequential(mix.sim.topology, seq_cfg);
  OnlineMonitor parallel(mix.sim.topology, par_cfg);
  const auto expected = run_monitor(sequential, mix.sim.trace);
  const auto got = run_monitor(parallel, mix.sim.trace);

  ASSERT_GE(expected.size(), 3u);
  expect_ticks_equal(expected, got);
  ASSERT_NE(sequential.session(), nullptr);
  ASSERT_NE(parallel.session(), nullptr);
  const SessionCounters& a = sequential.session()->counters();
  const SessionCounters& b = parallel.session()->counters();
  EXPECT_EQ(a.recognition_reuses, b.recognition_reuses);
  EXPECT_EQ(a.pairs_reused, b.pairs_reused);
  EXPECT_EQ(a.pairs_reclassified, b.pairs_reclassified);
  EXPECT_EQ(a.boundary_steps_held, b.boundary_steps_held);
  EXPECT_EQ(a.boundary_steps_carried, b.boundary_steps_carried);
  EXPECT_EQ(a.ewma_step_alerts, b.ewma_step_alerts);
}

// --- API seams ------------------------------------------------------------

TEST(SessionEquivalenceTest, NullSessionOverloadMatchesColdAnalyze) {
  const MixData& mix = straddle_job();
  const Prism prism(mix.sim.topology, PrismConfig{});
  const PrismReport a = prism.analyze(mix.sim.trace);
  const PrismReport b = prism.analyze(mix.sim.trace, nullptr);
  MonitorTick ta{.window = {}, .report = a, .job_ids = {}};
  MonitorTick tb{.window = {}, .report = b, .job_ids = {}};
  expect_ticks_equal({ta}, {tb});
}

TEST(SessionEquivalenceTest, SessionConfigValidationIsDescriptive) {
  SessionConfig bad;
  bad.ewma_alpha = 0.0;
  bad.ewma_min_samples = 1;
  bad.boundary_hold = -1;
  bad.evict_after_windows = 0;
  const auto errors = bad.validate();
  EXPECT_EQ(errors.size(), 4u);
  for (const std::string& e : errors) {
    EXPECT_FALSE(e.empty());
  }

  MonitorConfig cfg;
  cfg.session = bad;
  EXPECT_FALSE(cfg.validate().empty());
  const ClusterSimConfig sim_cfg = single_job_mix(2);
  const auto topology = ClusterTopology::build(sim_cfg.topology);
  EXPECT_THROW(OnlineMonitor(topology, cfg), std::invalid_argument);
  cfg.carry_state = false;  // session config is inert without carry
  EXPECT_TRUE(cfg.validate().empty());
}

}  // namespace
}  // namespace llmprism
