// Minimal CSV reading/writing for flow-trace import/export.
//
// Handles the subset of RFC 4180 we produce: comma-separated fields with
// optional double-quote quoting (embedded commas/quotes). No embedded
// newlines inside fields.
#pragma once

#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace llmprism::csv {

/// Split one CSV line into fields, honouring double-quote quoting.
/// Throws std::runtime_error on an unterminated quoted field.
[[nodiscard]] std::vector<std::string> parse_line(std::string_view line);

/// Quote a field if it contains a comma, quote or leading/trailing space.
[[nodiscard]] std::string escape_field(std::string_view field);

/// Write one row, escaping fields as needed.
void write_row(std::ostream& os, std::span<const std::string> fields);

/// Read all rows from a stream; blank lines are skipped.
[[nodiscard]] std::vector<std::vector<std::string>> read_all(std::istream& is);

}  // namespace llmprism::csv
