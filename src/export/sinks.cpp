#include "llmprism/export/config.hpp"

#include <fstream>
#include <utility>

#include "llmprism/obs/metrics.hpp"
#include "llmprism/obs/trace_span.hpp"

namespace llmprism {

std::vector<std::string> ExportConfig::validate() const {
  std::vector<std::string> errors;
  const std::pair<const char*, const std::string*> outs[] = {
      {"--perfetto-out", &perfetto_out}, {"--series-out", &series_out},
      {"--journal-out", &journal_out},   {"--metrics-out", &metrics_out},
      {"--trace-out", &trace_out},
  };
  for (std::size_t a = 0; a < std::size(outs); ++a) {
    if (outs[a].second->empty()) continue;
    for (std::size_t b = a + 1; b < std::size(outs); ++b) {
      if (*outs[a].second == *outs[b].second) {
        errors.push_back(std::string("export: ") + outs[a].first + " and " +
                         outs[b].first + " both write " + *outs[a].second);
      }
    }
  }
  return errors;
}

ExportSinks::ExportSinks(ExportConfig config) : config_(std::move(config)) {
  if (!config_.perfetto_out.empty()) perfetto_.emplace();
  if (!config_.series_out.empty()) series_.emplace();
  if (!config_.journal_out.empty()) journal_.emplace();
  if (!config_.trace_out.empty()) obs::TraceCollector::instance().enable();
}

void ExportSinks::add_window(const WindowExportView& view) {
  if (perfetto_) perfetto_->add_window(view);
  if (series_) series_->add_window(view);
  if (journal_) journal_->add_window(view);
}

std::vector<std::string> ExportSinks::write_files() {
  std::vector<std::string> errors;
  const auto write = [&](const std::string& path, auto&& writer) {
    std::ofstream out(path);
    if (!out) {
      errors.push_back("cannot write " + path);
      return;
    }
    writer(out);
  };
  if (journal_) journal_->finish();
  if (perfetto_) {
    write(config_.perfetto_out,
          [&](std::ostream& os) { perfetto_->write(os); });
  }
  if (series_) {
    write(config_.series_out, [&](std::ostream& os) {
      if (config_.series_out.ends_with(".jsonl")) {
        series_->write_jsonl(os);
      } else {
        series_->write_openmetrics(os);
      }
    });
  }
  if (journal_) {
    write(config_.journal_out,
          [&](std::ostream& os) { journal_->write_jsonl(os); });
  }
  if (!config_.trace_out.empty()) {
    obs::TraceCollector::instance().disable();
    write(config_.trace_out, [&](std::ostream& os) {
      obs::TraceCollector::instance().write_chrome_trace(os);
    });
  }
  if (!config_.metrics_out.empty()) {
    write(config_.metrics_out, [&](std::ostream& os) {
      if (config_.metrics_out.ends_with(".json")) {
        obs::default_registry().write_json(os);
      } else {
        obs::default_registry().write_prometheus(os);
      }
    });
  }
  return errors;
}

}  // namespace llmprism
