// Unit tests for Alg. 1: job recognition from flows + topology.
#include "llmprism/core/job_recognition.hpp"

#include <gtest/gtest.h>

#include "llmprism/common/rng.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

ClusterTopology topo(std::uint32_t machines = 16) {
  return ClusterTopology::build({.num_machines = machines,
                                 .gpus_per_machine = 8,
                                 .machines_per_leaf = 4,
                                 .num_spines = 2});
}

FlowRecord flow(const ClusterTopology& t, std::uint32_t src,
                std::uint32_t dst, TimeNs at = 0) {
  FlowRecord f;
  f.start_time = at;
  f.src = GpuId(src);
  f.dst = GpuId(dst);
  f.bytes = 1000;
  f.duration = 10;
  f.switches = t.route(GpuId(src), GpuId(dst));
  return f;
}

TEST(JobRecognizerTest, RejectsBadThreshold) {
  const auto t = topo();
  EXPECT_THROW(JobRecognizer(t, {.jaccard_threshold = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(JobRecognizer(t, {.jaccard_threshold = 1.5}),
               std::invalid_argument);
}

TEST(JobRecognizerTest, EmptyTraceYieldsNoJobs) {
  const auto t = topo();
  const auto result = JobRecognizer(t).recognize(FlowTrace{});
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_EQ(result.num_cross_machine_clusters, 0u);
}

TEST(JobRecognizerTest, SingleFlowMakesOneJob) {
  const auto t = topo();
  FlowTrace trace;
  trace.add(flow(t, 0, 8));  // machine 0 <-> machine 1
  const auto result = JobRecognizer(t).recognize(trace);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.num_cross_machine_clusters, 1u);
  // machine-local expansion covers both machines fully
  EXPECT_EQ(result.jobs[0].gpus.size(), 16u);
  EXPECT_EQ(result.jobs[0].observed_gpus.size(), 2u);
  ASSERT_EQ(result.jobs[0].machines.size(), 2u);
  EXPECT_EQ(result.jobs[0].machines[0], MachineId(0));
  EXPECT_EQ(result.jobs[0].machines[1], MachineId(1));
}

TEST(JobRecognizerTest, WithoutExpansionOnlyObservedGpus) {
  const auto t = topo();
  FlowTrace trace;
  trace.add(flow(t, 0, 8));
  const JobRecognizer rec(t, {.include_machine_local_gpus = false});
  const auto result = rec.recognize(trace);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].gpus.size(), 2u);
}

TEST(JobRecognizerTest, DisconnectedFlowsMakeSeparateJobs) {
  const auto t = topo();
  FlowTrace trace;
  trace.add(flow(t, 0, 8));    // machines 0-1
  trace.add(flow(t, 16, 24));  // machines 2-3
  const auto result = JobRecognizer(t).recognize(trace);
  EXPECT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.num_cross_machine_clusters, 2u);
}

TEST(JobRecognizerTest, TransitivityMergesChains) {
  const auto t = topo();
  FlowTrace trace;
  trace.add(flow(t, 0, 8));
  trace.add(flow(t, 8, 16));
  trace.add(flow(t, 16, 24));
  const auto result = JobRecognizer(t).recognize(trace);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].machines.size(), 4u);
}

TEST(JobRecognizerTest, TopologyMergeJoinsTpLanes) {
  // Two connectivity components on the SAME machine set (distinct GPU slots
  // per machine) model a job's separate TP lanes: they must merge.
  const auto t = topo();
  FlowTrace trace;
  trace.add(flow(t, 0, 8));   // lane A: machine0 slot0 <-> machine1 slot0
  trace.add(flow(t, 1, 9));   // lane B: machine0 slot1 <-> machine1 slot1
  const auto result = JobRecognizer(t).recognize(trace);
  EXPECT_EQ(result.num_cross_machine_clusters, 2u);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].cross_machine_clusters.size(), 2u);
}

TEST(JobRecognizerTest, DifferentMachineSetsStaySeparate) {
  const auto t = topo();
  FlowTrace trace;
  trace.add(flow(t, 0, 8));    // machines {0,1}
  trace.add(flow(t, 1, 17));   // machines {0,2} - overlapping but different
  const auto result = JobRecognizer(t).recognize(trace);
  // Jaccard({0,1},{0,2}) = 1/3 < 1 -> no merge at threshold 1.0.
  EXPECT_EQ(result.jobs.size(), 2u);
}

TEST(JobRecognizerTest, LooseThresholdMergesOverlappingSets) {
  const auto t = topo();
  FlowTrace trace;
  trace.add(flow(t, 0, 8));    // machines {0,1}
  trace.add(flow(t, 1, 17));   // machines {0,2}
  const JobRecognizer rec(t, {.jaccard_threshold = 0.3});
  EXPECT_EQ(rec.recognize(trace).jobs.size(), 1u);
}

TEST(JobRecognizerTest, SameMachineSetJobsAreMergedKnownLimitation) {
  // Two *different* jobs packed onto disjoint GPU halves of the same
  // machines are merged by Alg. 1 (machine sets are identical). This pins
  // the published algorithm's known limitation.
  const auto t = topo();
  FlowTrace trace;
  trace.add(flow(t, 0, 8));   // job A on slots 0-3
  trace.add(flow(t, 4, 12));  // job B on slots 4-7, same machines
  const auto result = JobRecognizer(t).recognize(trace);
  EXPECT_EQ(result.jobs.size(), 1u);
}

TEST(JobRecognizerTest, IntraMachineFlowsDoNotCreateJobs) {
  // A defensive case: flows between GPUs of one machine (which a switch
  // would never see) still unify but produce a single-machine job.
  const auto t = topo();
  FlowTrace trace;
  trace.add(flow(t, 0, 1));
  const auto result = JobRecognizer(t).recognize(trace);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].machines.size(), 1u);
}

TEST(JobRecognizerTest, JobsOrderedByFirstGpu) {
  const auto t = topo();
  FlowTrace trace;
  trace.add(flow(t, 64, 72));  // machines 8-9
  trace.add(flow(t, 0, 8));    // machines 0-1
  const auto result = JobRecognizer(t).recognize(trace);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_LT(result.jobs[0].gpus.front(), result.jobs[1].gpus.front());
}

// Integration with the simulator: a simulated multi-job cluster is
// recognized exactly, across several job shapes (parameterized sweep).
struct RecognitionSweepParam {
  std::uint32_t tp, dp, pp;
};

class JobRecognitionSweep
    : public ::testing::TestWithParam<RecognitionSweepParam> {};

TEST_P(JobRecognitionSweep, RecognizesSimulatedJobExactly) {
  const auto p = GetParam();
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 32, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism.tp = p.tp;
  job.parallelism.dp = p.dp;
  job.parallelism.pp = p.pp;
  job.num_steps = 3;
  cfg.jobs.push_back({job, {}});
  const auto sim = run_cluster_sim(cfg);
  const auto result = JobRecognizer(sim.topology).recognize(sim.trace);
  ASSERT_EQ(result.jobs.size(), 1u);
  std::vector<GpuId> expected = sim.jobs[0].gpus;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result.jobs[0].gpus, expected);
  // Phase 1 produces at least one cluster per TP lane (more when DP ring
  // edges hide inside machines and split a lane), all merged by phase 2.
  EXPECT_GE(result.num_cross_machine_clusters, p.tp);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JobRecognitionSweep,
    ::testing::Values(RecognitionSweepParam{8, 2, 2},
                      RecognitionSweepParam{8, 4, 1},
                      RecognitionSweepParam{8, 1, 4},
                      RecognitionSweepParam{4, 4, 2},
                      RecognitionSweepParam{2, 8, 2},
                      RecognitionSweepParam{1, 8, 4}));

TEST(JobRecognizerLimitationTest, InteriorRanksMaySplitJobs) {
  // tp=1, dp=16, 8 ranks per machine: some ranks' ring edges are all
  // intra-machine, so they appear only in PP-edge components spanning a
  // SUBSET of the job's machines. Alg. 1's exact machine-set merge then
  // splits the job — a pinned limitation of the published algorithm on
  // dp-heavy intra-machine layouts.
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 32, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism = {.tp = 1, .dp = 16, .pp = 2, .micro_batches = 4};
  job.num_steps = 3;
  cfg.jobs.push_back({job, {}});
  const auto sim = run_cluster_sim(cfg);
  const auto result = JobRecognizer(sim.topology).recognize(sim.trace);
  EXPECT_GT(result.jobs.size(), 1u);
  // A relaxed Jaccard threshold recovers the single job.
  const JobRecognizer loose(sim.topology, {.jaccard_threshold = 0.4});
  EXPECT_EQ(loose.recognize(sim.trace).jobs.size(), 1u);
}

}  // namespace
}  // namespace llmprism
