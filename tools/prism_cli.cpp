// prism — command-line front end: analyze a flow-trace CSV end-to-end and
// print (or export as JSON) the full diagnosis report.
//
// Usage:
//   prism <flows.csv> [options]
//     --machines N          number of machines in the cluster (default:
//                           derived from the largest GPU id in the trace)
//     --gpus-per-machine N  (default 8)
//     --machines-per-leaf N (default 16)
//     --spines N            (default 4)
//     --window SECONDS      analyze only the first SECONDS of the trace
//     --monitor-window S    stream the trace through the OnlineMonitor in
//                           S-second analysis windows instead of one shot
//     --no-carry            with --monitor-window: disable the warm session
//                           (stateless, window-independent analysis)
//     --json                emit the report as JSON instead of text
//     --timelines           include per-rank timeline lanes in text output
//     --no-reconstruct      skip timeline reconstruction (faster)
//     --log-level LEVEL     debug|info|warn|error|off (default: warn)
//     --metrics-out FILE    dump the metrics registry after analysis
//                           (Prometheus text; .json suffix -> JSON snapshot)
//     --trace-out FILE      record pipeline spans, write Chrome trace JSON
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

#include "llmprism/llmprism.hpp"

using namespace llmprism;

namespace {

struct CliOptions {
  std::string trace_path;
  TopologyConfig topology{.num_machines = 0, .gpus_per_machine = 8,
                          .machines_per_leaf = 16, .num_spines = 4};
  std::optional<double> window_seconds;
  std::optional<double> monitor_window_seconds;
  bool carry = true;
  bool json = false;
  bool timelines = false;
  bool reconstruct = true;
  std::string metrics_out;
  std::string trace_out;
};

void usage() {
  std::cerr
      << "usage: prism <flows.csv> [--machines N] [--gpus-per-machine N]\n"
         "             [--machines-per-leaf N] [--spines N] [--window S]\n"
         "             [--monitor-window S] [--no-carry]\n"
         "             [--json] [--timelines] [--no-reconstruct]\n"
         "             [--log-level debug|info|warn|error|off]\n"
         "             [--metrics-out FILE] [--trace-out FILE]\n"
         "  --monitor-window streams the trace through the online monitor\n"
         "    in S-second windows (warm cross-window session by default;\n"
         "    --no-carry switches to stateless per-window analysis)\n"
         "  --metrics-out writes the self-telemetry registry after analysis\n"
         "    (Prometheus text exposition; a .json suffix selects the JSON\n"
         "    snapshot instead)\n"
         "  --trace-out records pipeline trace spans during analysis and\n"
         "    writes Chrome trace_event JSON (open in Perfetto)\n";
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "prism: missing value for " << argv[i] << '\n';
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--machines") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.num_machines =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--gpus-per-machine") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.gpus_per_machine =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--machines-per-leaf") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.machines_per_leaf =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--spines") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.num_spines =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--window") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.window_seconds = std::stod(v);
    } else if (arg == "--monitor-window") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.monitor_window_seconds = std::stod(v);
    } else if (arg == "--no-carry") {
      options.carry = false;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--timelines") {
      options.timelines = true;
    } else if (arg == "--no-reconstruct") {
      options.reconstruct = false;
    } else if (arg == "--log-level") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      const auto level = log::parse_level(v);
      if (!level) {
        std::cerr << "prism: unknown log level " << v << '\n';
        return std::nullopt;
      }
      log::set_level(*level);
    } else if (arg == "--metrics-out") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.trace_out = v;
    } else if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "prism: unknown option " << arg << '\n';
      return std::nullopt;
    } else if (options.trace_path.empty()) {
      options.trace_path = arg;
    } else {
      std::cerr << "prism: unexpected argument " << arg << '\n';
      return std::nullopt;
    }
  }
  if (options.trace_path.empty()) return std::nullopt;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_args(argc, argv);
  if (!options) {
    usage();
    return 2;
  }

  std::ifstream in(options->trace_path);
  if (!in) {
    std::cerr << "prism: cannot open " << options->trace_path << '\n';
    return 1;
  }
  ParseResult parsed = read_csv_checked(in);
  if (!parsed.ok()) {
    constexpr std::size_t kMaxDiagnostics = 10;
    const std::size_t shown =
        std::min(parsed.errors.size(), kMaxDiagnostics);
    for (std::size_t e = 0; e < shown; ++e) {
      std::cerr << "prism: " << options->trace_path << ':'
                << parsed.errors[e].line << ": " << parsed.errors[e].message
                << '\n';
    }
    if (parsed.errors.size() > shown) {
      std::cerr << "prism: ... and " << parsed.errors.size() - shown
                << " more bad lines\n";
    }
    return 1;
  }
  FlowTrace trace = std::move(parsed.trace);
  trace.sort();
  if (trace.empty()) {
    std::cerr << "prism: trace is empty\n";
    return 1;
  }

  TopologyConfig topo_config = options->topology;
  if (topo_config.num_machines == 0) {
    std::uint32_t max_gpu = 0;
    for (const GpuId g : endpoints(trace)) {
      max_gpu = std::max(max_gpu, g.value());
    }
    topo_config.num_machines = max_gpu / topo_config.gpus_per_machine + 1;
  }

  if (options->window_seconds) {
    const TimeNs begin = trace.span().begin;
    trace = trace.window(
        {begin, begin + from_seconds(*options->window_seconds)});
  }

  try {
    const auto topology = ClusterTopology::build(topo_config);
    PrismConfig prism_config;
    prism_config.reconstruct_timelines = options->reconstruct;
    if (const auto errors = prism_config.validate(); !errors.empty()) {
      std::cerr << "prism: invalid configuration:\n";
      for (const std::string& e : errors) std::cerr << "  - " << e << '\n';
      return 2;
    }
    if (!options->trace_out.empty()) obs::TraceCollector::instance().enable();

    PrismReport report;
    if (options->monitor_window_seconds) {
      MonitorConfig monitor_config;
      monitor_config.prism = prism_config;
      monitor_config.window = from_seconds(*options->monitor_window_seconds);
      monitor_config.carry_state = options->carry;
      if (const auto errors = monitor_config.validate(); !errors.empty()) {
        std::cerr << "prism: invalid monitor configuration:\n";
        for (const std::string& e : errors) std::cerr << "  - " << e << '\n';
        return 2;
      }
      OnlineMonitor monitor(topology, monitor_config);
      std::vector<MonitorTick> ticks = monitor.ingest(trace);
      if (auto tail = monitor.flush()) ticks.push_back(std::move(*tail));
      for (const MonitorTick& tick : ticks) {
        if (options->json) {
          write_report_json(std::cout, tick.report);
          continue;
        }
        std::size_t alerts = 0;
        for (const JobAnalysis& job : tick.report.jobs) {
          alerts += job.step_alerts.size() + job.group_alerts.size();
        }
        std::cout << "window [" << to_seconds(tick.window.begin) << "s, "
                  << to_seconds(tick.window.end) << "s): "
                  << tick.report.telemetry.flows_total << " flows, "
                  << tick.report.jobs.size() << " jobs, " << alerts
                  << " job alerts\n";
      }
      if (!options->json) {
        const MonitorStats& stats = monitor.stats();
        std::cout << "\nmonitor: " << stats.windows_completed
                  << " windows, " << stats.flows_ingested
                  << " flows ingested (" << stats.flows_dropped_late
                  << " dropped late), " << stats.stable_ids_created
                  << " stable job ids, " << stats.step_alerts << " step / "
                  << stats.group_alerts << " group alerts\n";
        if (const PrismSession* session = monitor.session()) {
          const SessionCounters& c = session->counters();
          std::cout << "session: recognition " << c.recognition_reuses
                    << " reused / " << c.recognition_rebuilds
                    << " rebuilt, pairs " << c.pairs_reused << " reused / "
                    << c.pairs_reclassified << " reclassified, boundary "
                    << c.boundary_steps_held << " held / "
                    << c.boundary_steps_carried << " carried, "
                    << c.ewma_step_alerts << " ewma alerts, "
                    << session->jobs_tracked() << " jobs tracked\n";
        }
      }
      if (!options->trace_out.empty()) {
        obs::TraceCollector::instance().disable();
        std::ofstream out(options->trace_out);
        if (!out) {
          std::cerr << "prism: cannot write " << options->trace_out << '\n';
          return 1;
        }
        obs::TraceCollector::instance().write_chrome_trace(out);
      }
      if (!options->metrics_out.empty()) {
        std::ofstream out(options->metrics_out);
        if (!out) {
          std::cerr << "prism: cannot write " << options->metrics_out << '\n';
          return 1;
        }
        if (options->metrics_out.ends_with(".json")) {
          obs::default_registry().write_json(out);
        } else {
          obs::default_registry().write_prometheus(out);
        }
      }
      return 0;
    }

    const Prism prism(topology, prism_config);
    report = prism.analyze(trace);
    if (!options->trace_out.empty()) {
      obs::TraceCollector::instance().disable();
      std::ofstream out(options->trace_out);
      if (!out) {
        std::cerr << "prism: cannot write " << options->trace_out << '\n';
        return 1;
      }
      obs::TraceCollector::instance().write_chrome_trace(out);
    }
    if (!options->metrics_out.empty()) {
      std::ofstream out(options->metrics_out);
      if (!out) {
        std::cerr << "prism: cannot write " << options->metrics_out << '\n';
        return 1;
      }
      if (options->metrics_out.ends_with(".json")) {
        obs::default_registry().write_json(out);
      } else {
        obs::default_registry().write_prometheus(out);
      }
    }

    if (options->json) {
      write_report_json(std::cout, report);
      return 0;
    }
    std::cout << "analyzed " << trace.size() << " flows over "
              << to_seconds(trace.span().length()) << " s on a "
              << topology.num_gpus() << "-GPU topology\n\n"
              << render_report_summary(report);
    if (options->timelines) {
      for (const JobAnalysis& job : report.jobs) {
        if (job.timelines.empty()) continue;
        const std::size_t lanes =
            std::min<std::size_t>(8, job.timelines.size());
        std::cout << "\njob " << job.id << " timelines (first " << lanes
                  << " ranks):\n"
                  << render_timeline_chart(
                         std::span(job.timelines.data(), lanes),
                         {.width = 110});
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "prism: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
