file(REMOVE_RECURSE
  "CMakeFiles/llmprism_bocd.dir/bocd.cpp.o"
  "CMakeFiles/llmprism_bocd.dir/bocd.cpp.o.d"
  "libllmprism_bocd.a"
  "libllmprism_bocd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmprism_bocd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
