// Shared helpers for the experiment-reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism::bench {

/// Wall-clock stopwatch for reporting analysis cost.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A 1,024-GPU tenant job in the style of the paper's §V-B evaluation
/// set: ~4 s steps, LLaMA-class message volumes.
inline JobSimConfig thousand_gpu_job(std::uint32_t tp, std::uint32_t dp,
                                     std::uint32_t pp, bool zero_overlap,
                                     std::uint32_t num_steps) {
  JobSimConfig job;
  job.parallelism = {.tp = tp, .dp = dp, .pp = pp, .micro_batches = 8};
  job.fwd_micro_batch = 90 * kMillisecond;
  job.bwd_micro_batch = 180 * kMillisecond;
  job.optimizer_time = 30 * kMillisecond;
  job.dp_total_bytes = 2ull << 30;
  // Finer ring chunking: a truncated burst (head bucket only) still leaves
  // the step divider enough inter-flow intervals to find the boundary.
  job.dp_rounds_per_bucket = 8;
  // Three NCCL-style channels: big jobs use many rings, and the denser DP
  // graph keeps groups connected under heavy per-pair corruption.
  job.dp_channels = 3;
  job.zero_overlap = zero_overlap;
  job.num_steps = num_steps;
  return job;
}

/// Collection noise calibrated so that the no-refinement accuracy follows
/// the paper's Table I shape (~96% at 1 min rising toward ~99.5% at 10 min):
/// a fifth of the pairs suffer heterogeneous burst truncation with
/// per-pair probabilities straddling 1/2, so short windows flip many pairs
/// and long windows keep only the worst-degraded ones flipped.
inline NoiseConfig table1_noise() {
  NoiseConfig noise;
  noise.degraded_pair_fraction = 0.28;
  noise.truncation_prob_min = 0.25;
  noise.truncation_prob_max = 0.47;
  noise.drop_rate = 0.01;
  noise.duplicate_rate = 0.005;
  noise.time_jitter = 50 * kMicrosecond;
  return noise;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace llmprism::bench
