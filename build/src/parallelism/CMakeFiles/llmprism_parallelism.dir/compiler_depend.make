# Empty compiler generated dependencies file for llmprism_parallelism.
# This may be replaced when dependencies are built.
