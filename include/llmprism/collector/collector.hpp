// Flow-record collector: turns a mirrored packet stream back into the flow
// records LLMPrism consumes (§II-B schema).
//
// Real collectors (ERSPAN terminators, sFlow/NetFlow caches) group packets
// by endpoint pair and cut flow records on two timers:
//  * idle timeout  — a gap with no packets ends the record,
//  * active timeout — a long-lived record is cut even without a gap.
// Both knobs shape what the analysis layer sees: a too-coarse idle timeout
// merges a whole DP burst (several collective buckets) into one record —
// destroying the "several distinct sizes per step" DP signature — while a
// too-fine one fragments flows. bench_ablation quantifies the effect.
#pragma once

#include <cstdint>
#include <span>

#include "llmprism/collector/packet.hpp"
#include "llmprism/common/rng.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/topology/topology.hpp"

namespace llmprism {

struct CollectorConfig {
  DurationNs idle_timeout = 500 * kMicrosecond;
  DurationNs active_timeout = 100 * kMillisecond;
  /// Packet sampling ratio (1.0 = every packet; 0.25 = 1-in-4). Sampled
  /// collectors scale recorded bytes back up by 1/ratio.
  double sampling_ratio = 1.0;
};

/// Reassemble flow records from a timestamp-sorted packet stream. Each
/// record's switch path is recomputed from the topology (the collector
/// knows the fabric). The result is time-sorted.
/// Throws std::invalid_argument on non-positive timeouts or a sampling
/// ratio outside (0, 1].
[[nodiscard]] FlowTrace collect_flows(std::span<const PacketRecord> packets,
                                      const ClusterTopology& topology,
                                      const CollectorConfig& config,
                                      Rng& rng);

}  // namespace llmprism
