// Reproduces Fig. 5 (§V-D): switch-level diagnosis over a one-hour window.
//
// Paper result: typical per-switch average DP bandwidth sits between 100
// and 180 Gb/s; during the incident a subset of switches degrades to
// 30-60 Gb/s and LLMPrism alerts on exactly those switches.
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "llmprism/core/prism.hpp"

using namespace llmprism;
using namespace llmprism::bench;

namespace {

/// A job with ~12 s steps so that 300 steps span a full hour.
JobSimConfig hour_scale_job(std::uint32_t tp, std::uint32_t dp,
                            std::uint32_t pp) {
  JobSimConfig job;
  job.parallelism = {.tp = tp, .dp = dp, .pp = pp, .micro_batches = 9};
  job.fwd_micro_batch = 400 * kMillisecond;
  job.bwd_micro_batch = 800 * kMillisecond;
  job.optimizer_time = 60 * kMillisecond;
  job.dp_total_bytes = 4ull << 30;
  job.num_steps = 300;
  return job;
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: switch-level diagnosis over a 1-hour window ===\n\n");

  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 48,
                  .gpus_per_machine = 8,
                  .machines_per_leaf = 4,
                  .num_spines = 4};  // 12 leaves + 4 spines
  cfg.seed = 3600;
  cfg.jobs.push_back({hour_scale_job(8, 8, 2), {}});   // 128 GPUs
  cfg.jobs.push_back({hour_scale_job(8, 8, 1), {}});   // 64 GPUs
  cfg.jobs.push_back({hour_scale_job(8, 4, 2), {}});   // 64 GPUs
  cfg.jobs.push_back({hour_scale_job(8, 4, 1), {}});   // 32 GPUs

  // The incident: three switches degrade for the whole window.
  const std::set<std::uint32_t> degraded{1, 5, 13};
  for (const std::uint32_t sw : degraded) {
    cfg.switch_faults.push_back(
        {SwitchId(sw), TimeWindow{0, 2 * kHour}, 0.30});
  }

  Stopwatch sim_watch;
  const ClusterSimResult sim = run_cluster_sim(cfg);
  std::printf("simulated %zu flows over %.0f min (%.1f s)\n",
              sim.trace.size(), to_seconds(sim.trace.span().length()) / 60.0,
              sim_watch.seconds());

  PrismConfig prism_config;
  prism_config.reconstruct_timelines = false;  // switch-level only
  const Prism prism(sim.topology, prism_config);
  Stopwatch watch;
  const PrismReport report = prism.analyze(sim.trace);
  std::printf("analysis wall time: %.1f s\n\n", watch.seconds());

  std::printf("per-switch one-hour average DP bandwidth (the Fig. 5 series):\n");
  std::printf("  switch | type  | avg Gb/s | flagged\n");
  std::printf("  -------+-------+----------+--------\n");
  std::set<std::uint32_t> flagged;
  for (const SwitchBandwidthAlert& a : report.switch_bandwidth_alerts) {
    flagged.insert(a.switch_id.value());
  }
  double normal_lo = 1e9, normal_hi = 0, bad_lo = 1e9, bad_hi = 0;
  for (const auto& [sw, bw] : report.switch_bandwidth_gbps) {
    const bool is_degraded = degraded.count(sw.value()) != 0;
    std::printf("  %6u | %-5s | %8.1f | %s\n", sw.value(),
                sim.topology.is_leaf(sw) ? "leaf" : "spine", bw,
                flagged.count(sw.value()) ? "ALERT" : "");
    if (is_degraded) {
      bad_lo = std::min(bad_lo, bw);
      bad_hi = std::max(bad_hi, bw);
    } else {
      normal_lo = std::min(normal_lo, bw);
      normal_hi = std::max(normal_hi, bw);
    }
  }

  std::printf(
      "\nhealthy switches: %.0f-%.0f Gb/s   (paper: 100-180 Gb/s)\n"
      "degraded switches: %.0f-%.0f Gb/s  (paper: 30-60 Gb/s)\n",
      normal_lo, normal_hi, bad_lo, bad_hi);

  const bool exact = flagged == degraded;
  std::printf("alerts raised on: ");
  for (const std::uint32_t sw : flagged) std::printf("sw%u ", sw);
  std::printf("  (injected: sw1 sw5 sw13) -> %s\n",
              exact ? "exact match" : "MISMATCH");
  return exact ? 0 : 1;
}
