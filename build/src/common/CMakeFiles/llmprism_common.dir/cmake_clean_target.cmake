file(REMOVE_RECURSE
  "libllmprism_common.a"
)
