// Disjoint-set (union-find) data structure.
//
// This is the core of Alg. 1 (LLM training-job recognition): every network
// flow merges the sets containing its source and destination GPU, so after a
// pass over the trace each set is one cross-machine communication cluster.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace llmprism {

/// Union-find over dense indices [0, size) with union-by-size and path
/// compression (amortized near-O(1) per operation).
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t size)
      : parent_(size), size_(size, 1), num_sets_(size) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  [[nodiscard]] std::size_t size() const { return parent_.size(); }
  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }

  /// Representative of the set containing `x` (with path compression).
  [[nodiscard]] std::size_t find(std::size_t x) {
    check(x);
    std::size_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const std::size_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merge the sets containing `a` and `b`; returns true if they were
  /// previously distinct.
  bool unite(std::size_t a, std::size_t b) {
    std::size_t ra = find(a);
    std::size_t rb = find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_;
    return true;
  }

  [[nodiscard]] bool same_set(std::size_t a, std::size_t b) {
    return find(a) == find(b);
  }

  /// Number of elements in the set containing `x`.
  [[nodiscard]] std::size_t set_size(std::size_t x) { return size_[find(x)]; }

  /// All sets as vectors of member indices. Singleton sets are included iff
  /// `include_singletons`. Members within each set are in ascending order.
  [[nodiscard]] std::vector<std::vector<std::size_t>> groups(
      bool include_singletons = false) {
    std::vector<std::vector<std::size_t>> by_root(parent_.size());
    for (std::size_t i = 0; i < parent_.size(); ++i) {
      by_root[find(i)].push_back(i);
    }
    std::vector<std::vector<std::size_t>> out;
    for (auto& g : by_root) {
      if (g.size() > 1 || (include_singletons && g.size() == 1)) {
        out.push_back(std::move(g));
      }
    }
    return out;
  }

 private:
  void check(std::size_t x) const {
    if (x >= parent_.size()) {
      throw std::out_of_range("DisjointSet: index out of range");
    }
  }

  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t num_sets_;
};

}  // namespace llmprism
