// Collection-noise model (§IV-B: "packet loss, retransmission, or
// incomplete flow collection").
//
// Applied post-generation to a trace, mimicking what an ERSPAN-style
// collector actually delivers:
//  - i.i.d. flow drop (mirror-port packet loss),
//  - duplicated flows (retransmission re-mirrored),
//  - reported-size and reported-time jitter (collector quantization),
//  - *correlated burst truncation*: for a "degraded" subset of pairs, the
//    collector's buffer overflows during a traffic burst and only the head
//    of the burst survives. A truncated DP burst keeps only its first
//    bucket's flows — one distinct size — which is exactly the corruption
//    that makes DP pairs masquerade as PP in Table I (w/o refinement).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "llmprism/common/rng.hpp"
#include "llmprism/common/time.hpp"
#include "llmprism/flow/trace.hpp"

namespace llmprism {

struct NoiseConfig {
  double drop_rate = 0.0;          ///< P(flow lost), i.i.d.
  double duplicate_rate = 0.0;     ///< P(flow duplicated), i.i.d.
  double size_jitter_rate = 0.0;   ///< P(reported size perturbed)
  double size_jitter_frac = 0.02;  ///< relative size perturbation bound
  /// P(flow recorded partially): the collector saw only a fraction of the
  /// flow's packets, so the reported size is a random cut of the true one.
  double partial_record_rate = 0.0;
  DurationNs time_jitter = 0;      ///< uniform +- bound on start times

  /// Fraction of communication pairs whose collection is degraded.
  double degraded_pair_fraction = 0.0;
  /// For a degraded pair, P(burst truncated) per burst, drawn uniformly per
  /// pair from [min, max] — heterogeneous degradation is what keeps some
  /// pairs misclassified even with long windows (Table I's slow decay).
  double truncation_prob_min = 0.3;
  double truncation_prob_max = 0.6;
  /// Two flows of one pair closer than this belong to one burst.
  DurationNs burst_gap = 100 * kMillisecond;

  [[nodiscard]] bool enabled() const {
    return drop_rate > 0 || duplicate_rate > 0 || size_jitter_rate > 0 ||
           partial_record_rate > 0 || time_jitter > 0 ||
           degraded_pair_fraction > 0;
  }

  /// Descriptive configuration errors (empty = valid): probabilities must
  /// be in [0, 1], truncation_prob_min must not exceed _max, durations must
  /// be >= 0. apply_noise() throws std::invalid_argument listing them.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Returns a corrupted copy of `trace` (sorted). Deterministic given `rng`.
/// Throws std::invalid_argument when `config` fails validate().
[[nodiscard]] FlowTrace apply_noise(const FlowTrace& trace,
                                    const NoiseConfig& config, Rng& rng);

}  // namespace llmprism
