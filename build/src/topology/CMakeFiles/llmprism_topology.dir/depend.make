# Empty dependencies file for llmprism_topology.
# This may be replaced when dependencies are built.
