# Empty dependencies file for llmprism_sim.
# This may be replaced when dependencies are built.
