#include "llmprism/export/perfetto.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "llmprism/common/json.hpp"
#include "llmprism/core/attribution.hpp"
#include "emit.hpp"

namespace llmprism {

namespace {

using detail::write_double;
using detail::write_us;

/// Chrome-trace slice name for a timeline event kind. "dp" reads poorly on
/// a track full of abbreviations; the rest match to_string().
[[nodiscard]] std::string_view slice_name(TimelineEventKind k) {
  return k == TimelineEventKind::kDp ? "dp_sync" : to_string(k);
}

/// Common event prefix: {"name":<escaped>,"ph":"<ph>","pid":P,"tid":T
void begin_event(std::string& out, std::string_view name, char ph,
                 std::uint64_t pid, std::uint64_t tid) {
  out += "{\"name\":";
  std::ostringstream os;
  write_json_string(os, name);
  out += os.str();
  out += ",\"ph\":\"";
  out += ph;
  out += "\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
}

void add_ts(std::string& out, TimeNs ts) {
  out += ",\"ts\":";
  write_us(out, ts);
}

void add_dur(std::string& out, DurationNs dur) {
  out += ",\"dur\":";
  write_us(out, dur);
}

/// The reconstructed step (by index) on one timeline, or nullptr.
[[nodiscard]] const ReconstructedStep* find_step(const GpuTimeline& tl,
                                                 std::size_t step_index) {
  for (const ReconstructedStep& s : tl.steps) {
    if (s.index == step_index) return &s;
  }
  return nullptr;
}

[[nodiscard]] const GpuTimeline* find_timeline(const JobAnalysis& job,
                                               GpuId gpu) {
  for (const GpuTimeline& tl : job.timelines) {
    if (tl.gpu == gpu) return &tl;
  }
  return nullptr;
}

}  // namespace

PerfettoExporter::PerfettoExporter(PerfettoOptions options)
    : options_(std::move(options)) {}

void PerfettoExporter::append_event(std::string_view event) {
  if (num_events_ != 0) events_ += ',';
  events_ += "\n";
  events_ += event;
  ++num_events_;
}

void PerfettoExporter::add_window(const WindowExportView& view) {
  if (view.report == nullptr) return;
  for (std::size_t j = 0; j < view.report->jobs.size(); ++j) {
    add_job_window(view, j);
  }
  add_fabric_window(view);
}

void PerfettoExporter::add_job_window(const WindowExportView& view,
                                      std::size_t j) {
  const JobAnalysis& job = view.report->jobs[j];
  const std::uint64_t sid = stable_job_id(view, j);
  // pid 0 is reserved by some viewers and pid 1 is the fabric process.
  const std::uint64_t pid = sid + 2;

  if (named_processes_.insert(pid).second) {
    std::string name;
    if (const auto it = options_.job_names.find(sid);
        it != options_.job_names.end()) {
      name = it->second;
    } else {
      name = "job " + std::to_string(sid) + " (tp=" +
             std::to_string(job.inferred.tp) + ",dp=" +
             std::to_string(job.inferred.dp) + ",pp=" +
             std::to_string(job.inferred.pp) + ")";
    }
    std::string e;
    begin_event(e, "process_name", 'M', pid, 0);
    e += ",\"args\":{\"name\":";
    std::ostringstream os;
    write_json_string(os, name);
    e += os.str();
    e += "}}";
    append_event(e);

    e.clear();
    begin_event(e, "process_sort_index", 'M', pid, 0);
    e += ",\"args\":{\"sort_index\":" + std::to_string(pid) + "}}";
    append_event(e);
  }

  // Per-rank tracks: tid = the cluster-wide gpu id (stable across windows),
  // displayed in rank order via thread_sort_index.
  for (const GpuTimeline& tl : job.timelines) {
    const std::uint64_t tid = tl.gpu.value();
    if (named_threads_.insert({pid, tid}).second) {
      const auto& gpus = job.job.gpus;
      const auto pos = std::lower_bound(gpus.begin(), gpus.end(), tl.gpu);
      const std::size_t rank =
          static_cast<std::size_t>(pos - gpus.begin());
      std::string e;
      begin_event(e, "thread_name", 'M', pid, tid);
      e += ",\"args\":{\"name\":\"rank " + std::to_string(rank) + " (gpu " +
           std::to_string(tid) + ")\"}}";
      append_event(e);

      e.clear();
      begin_event(e, "thread_sort_index", 'M', pid, tid);
      e += ",\"args\":{\"sort_index\":" + std::to_string(rank) + "}}";
      append_event(e);
    }

    if (options_.emit_steps) {
      for (const ReconstructedStep& s : tl.steps) {
        std::string e;
        begin_event(e, "step " + std::to_string(s.index), 'X', pid, tid);
        add_ts(e, s.begin);
        add_dur(e, s.end - s.begin);
        e += '}';
        append_event(e);
      }
    }

    if (options_.emit_events) {
      for (const TimelineEvent& ev : tl.events) {
        std::string e;
        begin_event(e, slice_name(ev.kind), 'X', pid, tid);
        add_ts(e, ev.start);
        add_dur(e, ev.end - ev.start);
        if (ev.kind != TimelineEventKind::kCompute && ev.peer.valid()) {
          e += ",\"args\":{\"peer\":" + std::to_string(ev.peer.value()) + "}";
        }
        e += '}';
        append_event(e);
      }
    }
  }

  // k-sigma step alerts: thread-scoped instants at the flagged step's end.
  for (const StepAlert& a : job.step_alerts) {
    TimeNs ts = view.window.begin;
    if (const GpuTimeline* tl = find_timeline(job, a.gpu)) {
      if (const ReconstructedStep* s = find_step(*tl, a.step_index)) {
        ts = s->end;
      }
    }
    std::string e;
    begin_event(e, "step alert", 'i', pid, a.gpu.value());
    add_ts(e, ts);
    e += ",\"s\":\"t\",\"args\":{\"step\":" + std::to_string(a.step_index) +
         ",\"duration_s\":";
    write_double(e, a.duration_s);
    e += ",\"mean_s\":";
    write_double(e, a.mean_s);
    e += ",\"threshold_s\":";
    write_double(e, a.threshold_s);
    e += "}}";
    append_event(e);
  }

  // Cross-group alerts: process-scoped instants at the slow collective's
  // end (the dp_end of the flagged step on the group's first member).
  for (const GroupAlert& g : job.group_alerts) {
    TimeNs ts = view.window.begin;
    const auto& groups = job.comm_types.dp_components;
    if (g.group_index < groups.size() && !groups[g.group_index].empty()) {
      if (const GpuTimeline* tl =
              find_timeline(job, groups[g.group_index].front())) {
        if (const ReconstructedStep* s = find_step(*tl, g.step_index)) {
          ts = s->dp_end;
        }
      }
    }
    std::string e;
    begin_event(e, "dp group alert", 'i', pid, 0);
    add_ts(e, ts);
    e += ",\"s\":\"p\",\"args\":{\"group\":" + std::to_string(g.group_index) +
         ",\"step\":" + std::to_string(g.step_index) + ",\"duration_s\":";
    write_double(e, g.duration_s);
    e += ",\"mean_s\":";
    write_double(e, g.mean_s);
    e += ",\"threshold_s\":";
    write_double(e, g.threshold_s);
    e += "}}";
    append_event(e);
  }

  // Per-job comm-bandwidth counter track: bytes/s per comm type, binned at
  // options_.counter_bucket, bins aligned to the window begin. std::map
  // keeps bin order (and hence output) deterministic.
  if (options_.emit_counters && !job.trace.empty()) {
    const auto types = job.comm_types.types();
    const TimeNs origin = view.window.begin;
    const DurationNs bucket = options_.counter_bucket;
    struct BinBytes {
      std::uint64_t dp = 0;
      std::uint64_t pp = 0;
    };
    std::map<TimeNs, BinBytes> bins;
    for (const FlowRecord& f : job.trace) {
      const TimeNs rel = f.start_time - origin;
      const TimeNs bin =
          rel >= 0 ? rel / bucket : -((-rel + bucket - 1) / bucket);
      BinBytes& b = bins[origin + bin * bucket];
      const auto it = types.find(f.pair());
      if (it != types.end() && it->second == CommType::kDP) {
        b.dp += f.bytes;
      } else {
        b.pp += f.bytes;
      }
    }
    const double per_second =
        static_cast<double>(kSecond) / static_cast<double>(bucket);
    for (const auto& [begin, b] : bins) {
      std::string e;
      begin_event(e, "comm bytes/s", 'C', pid, 0);
      add_ts(e, begin);
      e += ",\"args\":{\"dp\":";
      write_double(e, static_cast<double>(b.dp) * per_second);
      e += ",\"pp\":";
      write_double(e, static_cast<double>(b.pp) * per_second);
      e += "}}";
      append_event(e);
    }
  }
}

void PerfettoExporter::add_fabric_window(const WindowExportView& view) {
  const PrismReport& r = *view.report;
  const bool any = !r.switch_bandwidth_gbps.empty() ||
                   !r.switch_bandwidth_alerts.empty() ||
                   !r.switch_concurrency_alerts.empty();
  if (!any) return;
  constexpr std::uint64_t kFabricPid = 1;

  if (named_processes_.insert(kFabricPid).second) {
    std::string e;
    begin_event(e, "process_name", 'M', kFabricPid, 0);
    e += ",\"args\":{\"name\":\"fabric\"}}";
    append_event(e);
    e.clear();
    begin_event(e, "process_sort_index", 'M', kFabricPid, 0);
    e += ",\"args\":{\"sort_index\":1}}";
    append_event(e);
  }

  // One track per switch; tid 0 stays free for the counter samples.
  const auto name_switch = [&](SwitchId sw) -> std::uint64_t {
    const std::uint64_t tid = static_cast<std::uint64_t>(sw.value()) + 1;
    if (named_threads_.insert({kFabricPid, tid}).second) {
      std::string e;
      begin_event(e, "thread_name", 'M', kFabricPid, tid);
      e += ",\"args\":{\"name\":\"switch " + std::to_string(sw.value()) +
           "\"}}";
      append_event(e);
    }
    return tid;
  };

  for (const SwitchBandwidthAlert& a : r.switch_bandwidth_alerts) {
    const std::uint64_t tid = name_switch(a.switch_id);
    std::string e;
    begin_event(e, "switch bandwidth alert", 'i', kFabricPid, tid);
    add_ts(e, view.window.begin);
    e += ",\"s\":\"g\",\"args\":{\"bandwidth_gbps\":";
    write_double(e, a.bandwidth_gbps);
    e += ",\"mean_gbps\":";
    write_double(e, a.mean_gbps);
    e += ",\"threshold_gbps\":";
    write_double(e, a.threshold_gbps);
    e += "}}";
    append_event(e);
  }

  for (const SwitchConcurrencyAlert& a : r.switch_concurrency_alerts) {
    const std::uint64_t tid = name_switch(a.switch_id);
    std::string e;
    begin_event(e, "switch concurrency alert", 'i', kFabricPid, tid);
    add_ts(e, a.at);
    e += ",\"s\":\"g\",\"args\":{\"concurrent_flows\":" +
         std::to_string(a.concurrent_flows) +
         ",\"limit\":" + std::to_string(a.limit) + "}}";
    append_event(e);
  }

  // Per-switch average DP bandwidth, one counter sample per window.
  if (options_.emit_counters) {
    for (const auto& [sw, gbps] : r.switch_bandwidth_gbps) {
      name_switch(sw);
      std::string e;
      begin_event(e, "sw" + std::to_string(sw.value()) + " dp gbps", 'C',
                  kFabricPid, 0);
      add_ts(e, view.window.begin);
      e += ",\"args\":{\"gbps\":";
      write_double(e, gbps);
      e += "}}";
      append_event(e);
    }
  }
}

void PerfettoExporter::write(std::ostream& os) const {
  os << "{\"schema_version\":1,\"displayTimeUnit\":\"ms\",\"traceEvents\":["
     << events_ << "\n]}\n";
}

}  // namespace llmprism
