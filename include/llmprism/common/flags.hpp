// Declarative command-line option parser shared by every LLMPrism tool.
//
// Before the subcommand redesign each binary hand-rolled its own
// `else if (arg == "--x")` chain, and several paths fell through unknown
// options silently. FlagSet centralizes the contract:
//   * `--name value` and `--name=value` both work; bool flags take no value;
//   * an unknown option is always an error (callers exit 2 with a usage
//     hint — never silently ignored);
//   * deprecated spellings are declared as aliases of the canonical flag
//     and keep working, printing a one-line warning to stderr;
//   * positional arity (min/max) is validated with descriptive messages;
//   * `--help`/`-h` short-circuits parsing (callers print usage, exit 0).
//
// Values are converted with std::from_chars / strtod; a malformed value is
// a parse error naming the flag, never a silent zero.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace llmprism::cli {

/// Outcome of FlagSet::parse. `ok` is false when any error was recorded;
/// `help` is true when --help/-h appeared (errors are then irrelevant).
struct ParseResult {
  bool ok = true;
  bool help = false;
  std::vector<std::string> errors;
};

class FlagSet {
 public:
  /// `program` names the tool (or subcommand) in messages, e.g.
  /// "prism analyze".
  explicit FlagSet(std::string program);

  // ---- flag registration (name includes the leading "--") ----
  void flag(std::string name, std::string value_name, std::string help,
            std::string* target);
  /// Presence flag: no value; sets *target = true when seen.
  void flag(std::string name, std::string help, bool* target);
  void flag(std::string name, std::string value_name, std::string help,
            double* target);
  void flag(std::string name, std::string value_name, std::string help,
            std::uint16_t* target);
  void flag(std::string name, std::string value_name, std::string help,
            std::uint32_t* target);
  void flag(std::string name, std::string value_name, std::string help,
            std::uint64_t* target);
  void flag(std::string name, std::string value_name, std::string help,
            std::optional<double>* target);
  /// Fully custom flag: `parse` receives the raw value (empty for a
  /// declared-bool custom flag) and returns an error message or "".
  void custom_flag(std::string name, std::string value_name, std::string help,
                   bool takes_value,
                   std::function<std::string(std::string_view)> parse);

  /// Declare `old_name` a deprecated spelling of `canonical`. Using it
  /// still works but prints one "deprecated" line per process to stderr.
  void alias(std::string old_name, std::string canonical);

  /// Positional arguments land here, in order. Parsing fails when fewer
  /// than `min` or more than `max` appear.
  void positionals(std::string name, std::size_t min, std::size_t max,
                   std::vector<std::string>* target);

  /// Parse argv[begin..argc). Stops collecting flags after "--" (the rest
  /// are positionals, verbatim).
  [[nodiscard]] ParseResult parse(int argc, const char* const* argv,
                                  int begin = 1);

  /// One-line "usage:" header plus an aligned flag table.
  [[nodiscard]] std::string usage() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  struct Flag {
    std::string name;
    std::string value_name;  ///< empty for presence flags
    std::string help;
    bool takes_value = false;
    std::function<std::string(std::string_view)> parse;
  };

  [[nodiscard]] Flag* find(std::string_view name);

  std::string program_;
  std::vector<Flag> flags_;
  std::vector<std::pair<std::string, std::string>> aliases_;
  std::string positional_name_;
  std::size_t positional_min_ = 0;
  std::size_t positional_max_ = 0;
  std::vector<std::string>* positional_target_ = nullptr;
};

}  // namespace llmprism::cli
