#include "llmprism/core/prism.hpp"

#include <unordered_map>

#include "llmprism/common/log.hpp"
#include "llmprism/common/thread_pool.hpp"

namespace llmprism {

Prism::Prism(const ClusterTopology& topology, PrismConfig config)
    : topology_(topology), config_(std::move(config)) {
  const std::size_t threads = ThreadPool::resolve(config_.num_threads);
  // The calling thread participates in every loop, so `threads - 1` workers
  // yield exactly `threads` concurrent lanes; with one thread no pool is
  // created and analyze() runs the plain in-order loop.
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads - 1);
}

std::size_t Prism::num_threads() const {
  return pool_ ? pool_->concurrency() : 1;
}

PrismReport Prism::analyze(const FlowTrace& trace) const {
  PrismReport report;

  // (1) job recognition
  const JobRecognizer recognizer(topology_, config_.recognition);
  report.recognition = recognizer.recognize(trace);
  log::info("prism: recognized ", report.recognition.jobs.size(),
            " jobs from ", report.recognition.num_cross_machine_clusters,
            " cross-machine clusters");

  // Route each flow to its job in one pass over the trace.
  std::unordered_map<GpuId, std::size_t> job_of_gpu;
  for (std::size_t j = 0; j < report.recognition.jobs.size(); ++j) {
    for (const GpuId g : report.recognition.jobs[j].gpus) {
      job_of_gpu.emplace(g, j);
    }
  }
  const std::size_t num_jobs = report.recognition.jobs.size();
  std::vector<FlowTrace> job_traces(num_jobs);
  for (const FlowRecord& f : trace) {
    const auto it = job_of_gpu.find(f.src);
    if (it != job_of_gpu.end()) job_traces[it->second].add(f);
  }

  const CommTypeIdentifier identifier(config_.comm_type);
  const TimelineReconstructor reconstructor(config_.timeline);
  const Diagnoser diagnoser(config_.diagnosis);

  // (2)-(4a) per-job stage, one task per recognized job. Each task owns its
  // slot in `analyses` / `job_dp_flows` and touches nothing else, so the
  // result cannot depend on scheduling; DP flows are merged in job-id order
  // below, which keeps the cluster-wide stage's input byte-identical to the
  // sequential path.
  std::vector<JobAnalysis> analyses(num_jobs);
  std::vector<FlowTrace> job_dp_flows(num_jobs);
  parallel_for(pool_.get(), num_jobs, [&](std::size_t j) {
    JobAnalysis& analysis = analyses[j];
    analysis.id = JobId(static_cast<std::uint32_t>(j));
    analysis.job = report.recognition.jobs[j];
    analysis.trace = std::move(job_traces[j]);
    analysis.trace.sort();

    // (2) parallelism strategies
    analysis.comm_types = identifier.identify(analysis.trace);
    const auto types = analysis.comm_types.types();

    // Collect this job's DP flows for cluster-wide switch diagnosis.
    for (const FlowRecord& f : analysis.trace) {
      const auto it = types.find(f.pair());
      if (it != types.end() && it->second == CommType::kDP) {
        job_dp_flows[j].add(f);
      }
    }

    // (3) timelines + (4) job-level diagnosis
    if (config_.reconstruct_timelines) {
      analysis.timelines = reconstructor.reconstruct_all(analysis.trace, types);
      analysis.step_alerts = diagnoser.cross_step(analysis.timelines);
      const auto durations = group_dp_durations(
          analysis.timelines, analysis.comm_types.dp_components);
      analysis.group_alerts = diagnoser.cross_group(durations);
    }

    // (2b) full 3D layout from the recovered structure
    analysis.inferred = infer_parallelism(analysis.job.gpus.size(),
                                          analysis.comm_types,
                                          std::span(analysis.timelines));
  });
  report.jobs = std::move(analyses);

  // Deterministic merge: job-id order regardless of task completion order.
  FlowTrace all_dp_flows;
  std::size_t total_dp = 0;
  for (const FlowTrace& dp : job_dp_flows) total_dp += dp.size();
  all_dp_flows.reserve(total_dp);
  for (const FlowTrace& dp : job_dp_flows) all_dp_flows.append(dp);

  // (4) cluster-wide switch-level diagnosis
  all_dp_flows.sort();
  report.switch_bandwidth_gbps = Diagnoser::per_switch_bandwidth(all_dp_flows);
  report.switch_bandwidth_alerts = diagnoser.switch_bandwidth(all_dp_flows);
  report.switch_concurrency_alerts =
      diagnoser.switch_concurrency(all_dp_flows);
  return report;
}

}  // namespace llmprism
