# Empty dependencies file for test_noise_faults.
# This may be replaced when dependencies are built.
