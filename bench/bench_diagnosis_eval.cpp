// Quantifies §V-D's cross-step and cross-group diagnosis (the paper reports
// deployment experience qualitatively — "a substantial number of fail-slow
// cases, the majority manually confirmed"): precision and recall of the
// 3-sigma alerts against injected ground truth over randomized trials.
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "llmprism/common/rng.hpp"
#include "llmprism/core/prism.hpp"

using namespace llmprism;
using namespace llmprism::bench;

namespace {

struct Counts {
  std::size_t true_positives = 0;
  std::size_t false_negatives = 0;
  std::size_t false_positive_events = 0;

  [[nodiscard]] double recall() const {
    const auto total = true_positives + false_negatives;
    return total == 0 ? 1.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(total);
  }
};

}  // namespace

int main() {
  std::printf(
      "=== SS V-D: cross-step & cross-group diagnosis, randomized fault "
      "injection ===\n\n");
  constexpr int kTrials = 12;
  constexpr std::uint32_t kSteps = 26;

  Counts straggler_counts;
  Counts group_counts;
  Rng meta(555);

  std::printf(
      "trial | straggler(step,x)   -> flagged | slow group(step range,x) -> "
      "flagged\n");
  for (int trial = 0; trial < kTrials; ++trial) {
    ClusterSimConfig cfg;
    cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                    .machines_per_leaf = 4, .num_spines = 2};
    cfg.seed = 10'000 + static_cast<std::uint64_t>(trial);

    JobSimConfig job;
    job.parallelism = {.tp = 8, .dp = 4, .pp = 2, .micro_batches = 4};
    job.num_steps = kSteps;

    // One random straggler and one random slow DP group per trial.
    StragglerSpec straggler;
    straggler.rank = static_cast<std::uint32_t>(meta.uniform_int(0, 63));
    straggler.step_begin =
        static_cast<std::uint32_t>(meta.uniform_int(5, kSteps / 2 - 2));
    straggler.step_end = straggler.step_begin;
    straggler.slowdown = meta.uniform(1.8, 3.0);
    job.stragglers.push_back(straggler);

    SlowDpGroupSpec slow_group;
    slow_group.tp_idx = static_cast<std::uint32_t>(meta.uniform_int(0, 7));
    slow_group.pp_idx = static_cast<std::uint32_t>(meta.uniform_int(0, 1));
    slow_group.step_begin =
        static_cast<std::uint32_t>(meta.uniform_int(kSteps / 2 + 2, kSteps - 4));
    slow_group.step_end = slow_group.step_begin + 1;
    slow_group.slowdown = meta.uniform(2.0, 4.0);
    job.slow_dp_groups.push_back(slow_group);

    cfg.jobs.push_back({job, {}});
    const ClusterSimResult sim = run_cluster_sim(cfg);
    const Prism prism(sim.topology);
    const PrismReport report = prism.analyze(sim.trace);
    const JobAnalysis& analysis = report.jobs.front();

    // --- cross-step scoring: the straggled step must be flagged ---
    std::set<std::size_t> flagged_steps;
    for (const StepAlert& a : analysis.step_alerts) {
      flagged_steps.insert(a.step_index);
    }
    // The slow DP group also stretches its steps; those flags are
    // expected, not false positives.
    std::set<std::size_t> expected_steps;
    for (std::uint32_t s = straggler.step_begin; s <= straggler.step_end; ++s) {
      expected_steps.insert(s);
    }
    for (std::uint32_t s = slow_group.step_begin; s <= slow_group.step_end;
         ++s) {
      expected_steps.insert(s);
    }
    const bool straggler_found =
        flagged_steps.count(straggler.step_begin) != 0;
    straggler_counts.true_positives += straggler_found;
    straggler_counts.false_negatives += !straggler_found;
    for (const std::size_t s : flagged_steps) {
      if (expected_steps.count(s) == 0) {
        ++straggler_counts.false_positive_events;
      }
    }

    // --- cross-group scoring: the slow group's steps must be flagged ---
    // Group indices in the analysis follow recovered dp_components (sorted
    // by first GPU id == sorted by group's lowest rank), which matches the
    // simulator's group order (pp outer, tp inner) after sorting.
    std::set<std::pair<std::size_t, std::size_t>> flagged_groups;
    for (const GroupAlert& a : analysis.group_alerts) {
      flagged_groups.insert({a.group_index, a.step_index});
    }
    bool group_found = false;
    std::size_t group_false_positives = 0;
    for (const auto& [g, s] : flagged_groups) {
      const bool in_range =
          s >= slow_group.step_begin && s <= slow_group.step_end;
      if (in_range) {
        group_found = true;
      } else {
        ++group_false_positives;
      }
    }
    group_counts.true_positives += group_found;
    group_counts.false_negatives += !group_found;
    group_counts.false_positive_events += group_false_positives;

    std::printf(
        "  %3d | rank %2u step %2u %.1fx -> %-5s | group(t%u,p%u) steps "
        "%u-%u %.1fx -> %s\n",
        trial, straggler.rank, straggler.step_begin, straggler.slowdown,
        straggler_found ? "yes" : "MISS", slow_group.tp_idx,
        slow_group.pp_idx, slow_group.step_begin, slow_group.step_end,
        slow_group.slowdown, group_found ? "yes" : "MISS");
  }

  std::printf("\nresults over %d trials:\n", kTrials);
  std::printf("  cross-step  recall: %5.1f%%, spurious step flags: %zu\n",
              100.0 * straggler_counts.recall(),
              straggler_counts.false_positive_events);
  std::printf("  cross-group recall: %5.1f%%, spurious group flags: %zu\n",
              100.0 * group_counts.recall(),
              group_counts.false_positive_events);
  const bool ok = straggler_counts.recall() >= 0.9 &&
                  group_counts.recall() >= 0.9 &&
                  straggler_counts.false_positive_events +
                          group_counts.false_positive_events <=
                      static_cast<std::size_t>(kTrials);
  std::printf("reproduction %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
