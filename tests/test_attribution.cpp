// Root-cause attribution against the simulator's injected ground truth:
// for every AnomalyKind the top-ranked culprit must name the injected
// fault, with downstream PP/DP victims listed as victims, never origins.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "llmprism/core/attribution.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/parallelism/config.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

/// One 64-GPU tp8/dp4/pp2 job on 8 machines — every DP ring and PP edge
/// crosses machines, so the whole dependency graph is flow-visible.
ClusterSimConfig one_job_config(std::uint64_t seed, std::uint32_t num_steps) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 8, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.seed = seed;
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 4, .pp = 2, .micro_batches = 4};
  job.num_steps = num_steps;
  cfg.jobs.push_back({job, {}});
  return cfg;
}

/// GPUs of the ranks sharing (dp_idx, pp_idx) — the TP siblings a
/// flow-level observer cannot tell apart from the true straggler.
std::vector<GpuId> stage_gpus(const JobTruth& truth,
                              const ParallelismConfig& par,
                              std::uint32_t dp_idx, std::uint32_t pp_idx) {
  const RankMap map(par);
  std::vector<GpuId> gpus;
  for (const RankId r : map.tp_group(dp_idx, pp_idx)) {
    gpus.push_back(truth.gpus[r.value()]);
  }
  std::sort(gpus.begin(), gpus.end());
  return gpus;
}

/// GPUs of the DP ring (tp_idx, pp_idx), ascending.
std::vector<GpuId> ring_gpus(const JobTruth& truth,
                             const ParallelismConfig& par,
                             std::uint32_t tp_idx, std::uint32_t pp_idx) {
  const RankMap map(par);
  std::vector<GpuId> gpus;
  for (const RankId r : map.dp_group(tp_idx, pp_idx)) {
    gpus.push_back(truth.gpus[r.value()]);
  }
  std::sort(gpus.begin(), gpus.end());
  return gpus;
}

TEST(AttributionTest, CleanTraceYieldsNoIncidents) {
  const auto sim = run_cluster_sim(one_job_config(3, 12));
  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  EXPECT_TRUE(report.attribution.incidents.empty());
  EXPECT_EQ(report.telemetry.incidents, 0u);
  EXPECT_EQ(report.telemetry.alerts_explained, 0u);
  EXPECT_EQ(report.telemetry.alerts_orphaned, 0u);
}

TEST(AttributionTest, DisabledFlagSkipsAttribution) {
  auto cfg = one_job_config(5, 20);
  cfg.jobs[0].config.stragglers.push_back(
      {.rank = 11, .step_begin = 8, .step_end = 8, .slowdown = 2.5});
  const auto sim = run_cluster_sim(cfg);
  PrismConfig prism_config;
  prism_config.attribute = false;
  const Prism prism(sim.topology, prism_config);
  const auto report = prism.analyze(sim.trace);
  EXPECT_FALSE(report.jobs.front().step_alerts.empty());
  EXPECT_TRUE(report.attribution.incidents.empty());
  EXPECT_EQ(report.telemetry.incidents, 0u);
  EXPECT_EQ(report.telemetry.alerts_explained, 0u);
  EXPECT_EQ(report.telemetry.alerts_orphaned, 0u);
}

TEST(AttributionTest, StragglerBlamesInjectedRank) {
  auto cfg = one_job_config(7, 20);
  // rank 11 = (tp 3, dp 1, pp 0) under kTpDpPp.
  const StragglerSpec fault{
      .rank = 11, .step_begin = 8, .step_end = 8, .slowdown = 2.5};
  cfg.jobs[0].config.stragglers.push_back(fault);
  const auto sim = run_cluster_sim(cfg);
  ASSERT_EQ(sim.anomalies.size(), 1u);
  EXPECT_EQ(sim.anomalies[0].kind, AnomalyKind::kStraggler);

  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  ASSERT_EQ(report.attribution.incidents.size(), 1u);
  const AttributedIncident& incident = report.attribution.incidents[0];
  EXPECT_EQ(incident.job, JobId(0));
  EXPECT_LE(incident.step_begin, std::size_t{8});
  EXPECT_GE(incident.step_end, std::size_t{8});

  // The top-ranked culprit (and every co-culprit) must be a rank inside
  // the straggler's TP stage group — TP is intra-machine and therefore
  // flow-invisible, so the stage is the finest reachable localization.
  const auto siblings = stage_gpus(
      sim.jobs[0], cfg.jobs[0].config.parallelism, /*dp_idx=*/1,
      /*pp_idx=*/0);
  ASSERT_FALSE(incident.culprits.empty());
  const std::unordered_set<GpuId> sibling_set(siblings.begin(),
                                              siblings.end());
  for (const Culprit& c : incident.culprits) {
    EXPECT_EQ(c.kind, CulpritKind::kRank);
    EXPECT_TRUE(sibling_set.contains(c.gpu)) << "gpu " << c.gpu;
    EXPECT_GT(c.score, 0.0);
  }
  EXPECT_GT(incident.confidence, 0.5);

  // Downstream PP/DP ranks are victims, never origins.
  EXPECT_FALSE(incident.victims.empty());
  bool cross_stage_victim = false;
  for (const Victim& v : incident.victims) {
    EXPECT_EQ(v.kind, VictimKind::kStepAlert);
    EXPECT_FALSE(sibling_set.contains(v.gpu)) << "origin listed as victim";
    EXPECT_GE(v.hops, 1u) << "victim should be reachable from the origin";
    if (!sibling_set.contains(v.gpu)) cross_stage_victim = true;
  }
  EXPECT_TRUE(cross_stage_victim);

  EXPECT_EQ(report.telemetry.incidents, 1u);
  EXPECT_EQ(report.telemetry.alerts_orphaned, 0u);
  EXPECT_GT(report.telemetry.alerts_explained, 0u);
}

TEST(AttributionTest, SlowDpGroupBlamesInjectedRing) {
  auto cfg = one_job_config(9, 20);
  const SlowDpGroupSpec fault{.tp_idx = 2,
                              .pp_idx = 1,
                              .step_begin = 10,
                              .step_end = 11,
                              .slowdown = 3.0};
  cfg.jobs[0].config.slow_dp_groups.push_back(fault);
  const auto sim = run_cluster_sim(cfg);
  ASSERT_EQ(sim.anomalies.size(), 1u);
  EXPECT_EQ(sim.anomalies[0].kind, AnomalyKind::kSlowDpGroup);

  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  ASSERT_FALSE(report.attribution.incidents.empty());

  const AttributedIncident* ring_incident = nullptr;
  for (const AttributedIncident& incident : report.attribution.incidents) {
    if (incident.culprits.front().kind == CulpritKind::kDpGroup) {
      ring_incident = &incident;
      break;
    }
  }
  ASSERT_NE(ring_incident, nullptr) << "no DP-group-origin incident";
  EXPECT_EQ(ring_incident->job, JobId(0));
  EXPECT_LE(ring_incident->step_begin, std::size_t{11});
  EXPECT_GE(ring_incident->step_end, std::size_t{10});

  // Map the blamed component back to GPU ids: it must be exactly the
  // injected ring's membership.
  const auto& components =
      report.jobs.front().comm_types.dp_components;
  const std::size_t blamed = ring_incident->culprits.front().dp_group_index;
  ASSERT_LT(blamed, components.size());
  const auto truth_ring = ring_gpus(
      sim.jobs[0], cfg.jobs[0].config.parallelism, fault.tp_idx,
      fault.pp_idx);
  EXPECT_EQ(components[blamed], truth_ring);

  // Ring members' own step alerts are origin evidence; every victim is a
  // non-member stalled behind the slow collective.
  const std::unordered_set<GpuId> member_set(truth_ring.begin(),
                                             truth_ring.end());
  for (const Victim& v : ring_incident->victims) {
    if (v.kind != VictimKind::kStepAlert) continue;
    EXPECT_FALSE(member_set.contains(v.gpu)) << "origin listed as victim";
  }
  EXPECT_GE(ring_incident->evidence.group_alerts, 1u);
  EXPECT_EQ(report.telemetry.alerts_orphaned, 0u);
}

TEST(AttributionTest, DegradedSwitchBlamesInjectedSwitch) {
  // One machine per leaf: every DP ring crosses leaves, so per-switch
  // bandwidth has 4 leaves + 2 spines = 6 scorable series.
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 4, .gpus_per_machine = 8,
                  .machines_per_leaf = 1, .num_spines = 2};
  cfg.seed = 13;
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 4, .pp = 1, .micro_batches = 4};
  job.num_steps = 12;
  cfg.jobs.push_back({job, {}});
  cfg.switch_faults.push_back(
      {.switch_id = SwitchId(0), .window = {0, 2 * kHour},
       .bandwidth_factor = 0.3});
  const auto sim = run_cluster_sim(cfg);
  ASSERT_EQ(sim.anomalies.size(), 1u);
  EXPECT_EQ(sim.anomalies[0].kind, AnomalyKind::kDegradedSwitch);

  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  ASSERT_FALSE(report.switch_bandwidth_alerts.empty());

  const AttributedIncident* switch_incident = nullptr;
  for (const AttributedIncident& incident : report.attribution.incidents) {
    if (incident.culprits.front().kind == CulpritKind::kSwitch) {
      switch_incident = &incident;
      break;
    }
  }
  ASSERT_NE(switch_incident, nullptr) << "no switch-origin incident";
  EXPECT_EQ(switch_incident->culprits.front().switch_id,
            sim.anomalies[0].switch_id);
  // A degraded switch is a cluster-level fault, owned by no tenant.
  EXPECT_FALSE(switch_incident->job.valid());
  EXPECT_GT(switch_incident->culprits.front().score, 0.0);
  EXPECT_GE(switch_incident->evidence.switch_bandwidth_alerts, 1u);
}

TEST(AttributionTest, TwoSimultaneousFaultsSeparateIncidents) {
  auto cfg = one_job_config(21, 26);
  // rank 5 = (tp 5, dp 0, pp 0); ring (tp 1, pp 1) slowed later the same
  // window.
  const StragglerSpec straggler{
      .rank = 5, .step_begin = 7, .step_end = 7, .slowdown = 2.8};
  const SlowDpGroupSpec slow_group{.tp_idx = 1,
                                   .pp_idx = 1,
                                   .step_begin = 15,
                                   .step_end = 16,
                                   .slowdown = 3.0};
  cfg.jobs[0].config.stragglers.push_back(straggler);
  cfg.jobs[0].config.slow_dp_groups.push_back(slow_group);
  const auto sim = run_cluster_sim(cfg);
  ASSERT_EQ(sim.anomalies.size(), 2u);

  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  ASSERT_GE(report.attribution.incidents.size(), 2u);

  const auto siblings = stage_gpus(
      sim.jobs[0], cfg.jobs[0].config.parallelism, /*dp_idx=*/0,
      /*pp_idx=*/0);
  const std::unordered_set<GpuId> sibling_set(siblings.begin(),
                                              siblings.end());
  const auto truth_ring = ring_gpus(
      sim.jobs[0], cfg.jobs[0].config.parallelism, slow_group.tp_idx,
      slow_group.pp_idx);

  bool straggler_attributed = false;
  bool ring_attributed = false;
  for (const AttributedIncident& incident : report.attribution.incidents) {
    const Culprit& origin = incident.culprits.front();
    if (origin.kind == CulpritKind::kRank &&
        incident.step_begin <= straggler.step_begin &&
        incident.step_end >= straggler.step_begin &&
        sibling_set.contains(origin.gpu)) {
      straggler_attributed = true;
      for (const Victim& v : incident.victims) {
        EXPECT_FALSE(sibling_set.contains(v.gpu));
      }
    }
    if (origin.kind == CulpritKind::kDpGroup) {
      const auto& components =
          report.jobs.front().comm_types.dp_components;
      ASSERT_LT(origin.dp_group_index, components.size());
      if (components[origin.dp_group_index] == truth_ring &&
          incident.step_end >= slow_group.step_begin &&
          incident.step_begin <= slow_group.step_end) {
        ring_attributed = true;
      }
    }
  }
  EXPECT_TRUE(straggler_attributed)
      << "straggler fault not attributed to its stage";
  EXPECT_TRUE(ring_attributed) << "slow ring not attributed";
}

// --- direct unit coverage of the exposed building blocks ---------------

TEST(AttributionUnitTest, StepSelfTimesCountsComputeBeforeSends) {
  GpuTimeline t;
  t.gpu = GpuId(0);
  t.steps.push_back({.index = 0, .begin = 0, .end = 100 * kMillisecond});
  t.steps.push_back(
      {.index = 1, .begin = 100 * kMillisecond, .end = 200 * kMillisecond});
  const auto ev = [](TimelineEventKind k, TimeNs a, TimeNs b) {
    return TimelineEvent{.kind = k, .start = a, .end = b, .peer = GpuId(1)};
  };
  using K = TimelineEventKind;
  // step 0: compute then send (counted), recv then send (not counted)
  t.events.push_back(ev(K::kCompute, 0, 30 * kMillisecond));
  t.events.push_back(ev(K::kPpSend, 30 * kMillisecond, 35 * kMillisecond));
  t.events.push_back(ev(K::kPpRecv, 40 * kMillisecond, 45 * kMillisecond));
  t.events.push_back(ev(K::kPpSend, 45 * kMillisecond, 50 * kMillisecond));
  // step 1: two compute+send handoffs
  t.events.push_back(
      ev(K::kCompute, 100 * kMillisecond, 110 * kMillisecond));
  t.events.push_back(ev(K::kPpSend, 110 * kMillisecond, 112 * kMillisecond));
  t.events.push_back(
      ev(K::kCompute, 120 * kMillisecond, 145 * kMillisecond));
  t.events.push_back(ev(K::kPpSend, 145 * kMillisecond, 147 * kMillisecond));

  const auto self = Attributor::step_self_times(t);
  ASSERT_EQ(self.size(), 2u);
  EXPECT_NEAR(self[0], 0.030, 1e-9);
  EXPECT_NEAR(self[1], 0.035, 1e-9);
}

TEST(AttributionUnitTest, GroupSwitchSetsUseOnlyIntraComponentFlows) {
  // Components {0,1} and {2,3}; a PP-like flow 1->2 must not contribute.
  const std::vector<std::vector<GpuId>> components = {
      {GpuId(0), GpuId(1)}, {GpuId(2), GpuId(3)}};
  FlowTrace trace;
  const auto flow = [](std::uint32_t src, std::uint32_t dst, TimeNs at,
                       std::initializer_list<std::uint32_t> switches) {
    FlowRecord f;
    f.start_time = at;
    f.src = GpuId(src);
    f.dst = GpuId(dst);
    f.bytes = 1000;
    f.duration = kMillisecond;
    for (const std::uint32_t s : switches) f.switches.push_back(SwitchId(s));
    return f;
  };
  trace.add(flow(0, 1, 0, {0, 2, 1}));
  trace.add(flow(1, 2, 10, {1}));      // cross-component: ignored
  trace.add(flow(3, 2, 20, {1, 3}));
  trace.add(flow(1, 0, 30, {0}));

  const auto sets = Attributor::group_switch_sets(trace, components);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0],
            (std::vector<SwitchId>{SwitchId(0), SwitchId(1), SwitchId(2)}));
  EXPECT_EQ(sets[1], (std::vector<SwitchId>{SwitchId(1), SwitchId(3)}));
}

}  // namespace
}  // namespace llmprism
