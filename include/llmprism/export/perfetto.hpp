// Perfetto / Chrome-trace export of the reconstructed training timeline.
//
// The black-box reconstruction already recovers a Fig. 4-style Gantt chart
// per job (per-rank timelines with compute / pp_send / pp_recv / dp_sync
// events, plus step boundaries); this exporter serializes it in the Chrome
// trace-event JSON format so an operator can open any monitored job in
// ui.perfetto.dev without instrumenting the tenant:
//  * one trace-event *process* per job (pid = stable monitor job id + 2;
//    pid 1 is the fabric pseudo-process),
//  * one *thread* (track) per rank, named "rank r (gpu g)" and sorted in
//    rank order,
//  * "ph":"X" slices for the reconstructed step spans and for every
//    timeline event (compute, pp_send, pp_recv, dp_sync),
//  * "ph":"i" instant events for the k-sigma alerts — thread-scoped for
//    step alerts, process-scoped for DP-group alerts, global on the fabric
//    process for switch alerts,
//  * "ph":"C" counter tracks: per-job per-comm-type bytes/s, and per-switch
//    DP bandwidth on the fabric process.
//
// Determinism: the output is a pure function of the sequence of
// WindowExportViews (report order, std::map-ordered counters, fixed-point
// timestamp formatting — no doubles formatted with ambiguous precision, no
// wall clock), so it is bit-identical across analysis thread counts and
// warm/cold sessions. tests/test_parallel_equivalence.cpp and
// tests/test_session_equivalence.cpp enforce this.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <string_view>
#include <utility>

#include "llmprism/common/time.hpp"
#include "llmprism/export/view.hpp"

namespace llmprism {

struct PerfettoOptions {
  /// Display names per stable job id; jobs not listed get a generated
  /// "job <id> (tp=..,dp=..,pp=..)" name. Names are JSON-escaped, so any
  /// byte sequence is safe.
  std::map<std::uint64_t, std::string> job_names;
  /// Bin width of the per-job comm-bytes/s counter track.
  DurationNs counter_bucket = 100 * kMillisecond;
  /// Emit the per-rank "step k" spans (the outer nesting level).
  bool emit_steps = true;
  /// Emit the per-event slices (compute / pp_send / pp_recv / dp_sync).
  bool emit_events = true;
  /// Emit the "ph":"C" counter tracks.
  bool emit_counters = true;
};

/// Accumulates windows and writes one Chrome trace-event JSON document.
class PerfettoExporter {
 public:
  explicit PerfettoExporter(PerfettoOptions options = {});

  /// Append one analyzed window. Windows must arrive in time order (the
  /// order OnlineMonitor produces ticks).
  void add_window(const WindowExportView& view);

  /// Write the accumulated document: {"traceEvents":[...],...}. Valid JSON
  /// even with zero windows added. Can be called repeatedly.
  void write(std::ostream& os) const;

  [[nodiscard]] std::size_t num_events() const { return num_events_; }

 private:
  /// Append one serialized event object to the buffer (comma handling).
  void append_event(std::string_view event);
  void add_job_window(const WindowExportView& view, std::size_t j);
  void add_fabric_window(const WindowExportView& view);

  PerfettoOptions options_;
  std::string events_;        ///< serialized events, comma-separated
  std::size_t num_events_ = 0;
  std::set<std::uint64_t> named_processes_;              ///< pids with M events
  std::set<std::pair<std::uint64_t, std::uint64_t>> named_threads_;
};

}  // namespace llmprism
