// Configuration of one simulated LLM training job.
//
// All timing/volume defaults approximate a mid-size LLM trained with 3D
// parallelism on a 200 Gb/s RoCE fabric; the analysis algorithms are
// insensitive to the absolute values — they exploit the *shape* of the
// traffic (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "llmprism/common/time.hpp"
#include "llmprism/parallelism/config.hpp"

namespace llmprism {

/// A rank that computes slowly over a step range (thermal throttling,
/// contention, ...). Synchronous training stretches the whole job's step.
struct StragglerSpec {
  std::uint32_t rank = 0;
  std::uint32_t step_begin = 0;  ///< inclusive
  std::uint32_t step_end = 0;    ///< inclusive
  double slowdown = 2.0;         ///< compute-time multiplier
};

/// A DP group whose collective communication is slowed (e.g., a congested
/// link on its ring) over a step range.
struct SlowDpGroupSpec {
  std::uint32_t tp_idx = 0;
  std::uint32_t pp_idx = 0;
  std::uint32_t step_begin = 0;
  std::uint32_t step_end = 0;
  double slowdown = 2.0;  ///< DP duration multiplier
};

struct JobSimConfig {
  ParallelismConfig parallelism;
  std::uint32_t num_steps = 30;
  TimeNs start_time = 0;

  // --- compute timing ---
  DurationNs fwd_micro_batch = 20 * kMillisecond;  ///< fwd per micro-batch/stage
  DurationNs bwd_micro_batch = 40 * kMillisecond;  ///< bwd per micro-batch/stage
  DurationNs optimizer_time = 25 * kMillisecond;   ///< post-sync param update
  double compute_jitter_sigma = 0.01;  ///< lognormal sigma on compute times

  // --- network ---
  double link_bandwidth_gbps = 200.0;  ///< per-NIC line rate
  DurationNs net_latency = 10 * kMicrosecond;  ///< per-flow launch latency
  /// Host-side gap between consecutive collective kernels (bucket-ready
  /// synchronization, kernel launch). This is what keeps a step's DP
  /// buckets distinguishable as separate flow records at a timeout-based
  /// collector — the paper's "DP divides into multiple network flows".
  DurationNs inter_collective_gap = 2 * kMillisecond;

  // --- pipeline-parallel communication ---
  /// Activation (== gradient) message size per micro-batch hop. Forward and
  /// backward tensors have the same shape, hence the same size — the "PP
  /// flows have consistent sizes" signature Alg. 2 relies on.
  std::uint64_t pp_message_bytes = 32ull << 20;  // 32 MiB

  // --- data-parallel communication ---
  std::uint64_t dp_total_bytes = 1ull << 30;  ///< gradient bytes per rank (1 GiB)
  std::uint32_t dp_buckets = 4;    ///< gradient buckets (uneven sizes)
  std::uint32_t dp_channels = 2;   ///< concurrent ring channels (NCCL-style)
  /// Flow-visible rounds per bucket: a ring all-reduce sends 2*(dp-1)
  /// pipelined chunks per bucket, which the collector sees as several
  /// staggered equal-size flows rather than one monolith.
  std::uint32_t dp_rounds_per_bucket = 4;
  /// Overlap DP buckets with backward compute (DeepSpeed-ZeRO style). The
  /// last bucket still completes after backward — "each step concludes with
  /// DP traffic" holds either way.
  bool zero_overlap = false;

  // --- fault injection (ground-truth labelled) ---
  std::vector<StragglerSpec> stragglers;
  std::vector<SlowDpGroupSpec> slow_dp_groups;

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

}  // namespace llmprism
