// Serving-plane tests (DESIGN.md §14): the LPF frame codec, the embedded
// HTTP parser, ServeConfig validation, and PrismDaemon end-to-end over
// real Unix sockets — ingest framed LFT chunks, query every endpoint,
// exercise the error paths (bad header closes the connection, corrupt LFT
// only fails the chunk), and the restart story: SIGTERM-equivalent stop()
// snapshots warm state, and a restored daemon's final report is
// byte-identical to a daemon that never stopped.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "llmprism/flow/lft.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/serve/daemon.hpp"
#include "llmprism/serve/frame.hpp"
#include "llmprism/serve/http.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

#if __has_include(<sys/un.h>)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define LLMPRISM_TEST_HAVE_SOCKETS 1
#endif

namespace llmprism::serve {
namespace {

// --- LPF frame codec ------------------------------------------------------

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(FrameTest, HeaderRoundTrip) {
  FrameHeader in;
  in.type = FrameType::kFlowChunk;
  in.stream_id = 0x1122334455667788ull;
  in.payload_bytes = 12345;
  std::byte buf[kFrameHeaderSize];
  encode_frame_header(in, buf);
  const FrameHeader out = decode_frame_header(buf);
  EXPECT_EQ(out.version, kFrameVersion);
  EXPECT_EQ(out.type, FrameType::kFlowChunk);
  EXPECT_EQ(out.stream_id, in.stream_id);
  EXPECT_EQ(out.payload_bytes, in.payload_bytes);
}

TEST(FrameTest, EncodeFrameIsHeaderPlusPayload) {
  const std::string frame = encode_frame(FrameType::kFlowChunk, 7, "payload");
  ASSERT_EQ(frame.size(), kFrameHeaderSize + 7);
  const FrameHeader header = decode_frame_header(bytes(frame));
  EXPECT_EQ(header.type, FrameType::kFlowChunk);
  EXPECT_EQ(header.stream_id, 7u);
  EXPECT_EQ(header.payload_bytes, 7u);
  EXPECT_EQ(frame.substr(kFrameHeaderSize), "payload");
}

TEST(FrameTest, HeaderRejectsMalformedInput) {
  const std::string good = encode_frame(FrameType::kPing, 0, "");
  EXPECT_THROW((void)decode_frame_header(bytes(good).subspan(0, 10)),
               std::runtime_error);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)decode_frame_header(bytes(bad_magic)),
               std::runtime_error);

  std::string bad_version = good;
  bad_version[4] = 9;
  EXPECT_THROW((void)decode_frame_header(bytes(bad_version)),
               std::runtime_error);

  // payload_bytes beyond kMaxFramePayload (bytes 16..23 little-endian).
  std::string oversized = good;
  for (int i = 16; i < 24; ++i) oversized[i] = static_cast<char>(0xff);
  EXPECT_THROW((void)decode_frame_header(bytes(oversized)),
               std::runtime_error);
}

TEST(FrameTest, AckRoundTrip) {
  const AckPayload in{.flows_accepted = 41,
                      .queue_depth = 3,
                      .backpressure_waits = 2};
  const std::string frame = encode_ack(9, in);
  const FrameHeader header = decode_frame_header(bytes(frame));
  EXPECT_EQ(header.type, FrameType::kAck);
  EXPECT_EQ(header.stream_id, 9u);
  ASSERT_EQ(header.payload_bytes, 24u);
  const AckPayload out =
      decode_ack(bytes(frame).subspan(kFrameHeaderSize));
  EXPECT_EQ(out.flows_accepted, in.flows_accepted);
  EXPECT_EQ(out.queue_depth, in.queue_depth);
  EXPECT_EQ(out.backpressure_waits, in.backpressure_waits);

  EXPECT_THROW((void)decode_ack(bytes(frame).subspan(kFrameHeaderSize, 8)),
               std::runtime_error);
}

// --- HTTP parsing ---------------------------------------------------------

TEST(HttpTest, ParsesRequestLine) {
  HttpRequest req;
  ASSERT_TRUE(
      parse_http_request("GET /report?shard=1&x=2 HTTP/1.0\r\n\r\n", req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/report");
  EXPECT_EQ(req.query, "shard=1&x=2");
  EXPECT_EQ(query_param(req.query, "shard"), "1");
  EXPECT_EQ(query_param(req.query, "x"), "2");
  EXPECT_EQ(query_param(req.query, "missing"), "");

  ASSERT_TRUE(parse_http_request("GET /metrics HTTP/1.1\r\n", req));
  EXPECT_EQ(req.path, "/metrics");
  EXPECT_EQ(req.query, "");

  EXPECT_FALSE(parse_http_request("", req));
  EXPECT_FALSE(parse_http_request("nonsense", req));
  EXPECT_FALSE(parse_http_request("GET /x", req));
}

TEST(HttpTest, FormatsHttp10CloseResponse) {
  HttpResponse resp;
  resp.status = 404;
  resp.body = "nope";
  const std::string wire = format_http_response(resp);
  EXPECT_TRUE(wire.starts_with("HTTP/1.0 404"));
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\nnope"));
}

// --- ServeConfig validation -----------------------------------------------

TEST(ServeConfigTest, ValidatesEveryKnob) {
  ServeConfig cfg;
  EXPECT_TRUE(cfg.validate().empty());

  ServeConfig bad;
  bad.shards = 0;
  bad.queue_capacity = 0;
  bad.monitor.window = 0;
  const auto errors = bad.validate();
  EXPECT_GE(errors.size(), 3u);
  for (const std::string& e : errors) EXPECT_FALSE(e.empty());
}

#ifdef LLMPRISM_TEST_HAVE_SOCKETS

// --- end-to-end daemon over Unix sockets ----------------------------------

JobSimConfig job(std::uint32_t tp, std::uint32_t dp, std::uint32_t pp,
                 std::uint32_t steps) {
  JobSimConfig cfg;
  cfg.parallelism.tp = tp;
  cfg.parallelism.dp = dp;
  cfg.parallelism.pp = pp;
  cfg.parallelism.micro_batches = 4;
  cfg.num_steps = steps;
  return cfg;
}

struct ServeFixture {
  ClusterSimResult sim;
  /// Time-sliced LFT chunk images, what `prism convert --chunk-seconds`
  /// writes and a collector streams.
  std::vector<std::string> chunks;
};

const ServeFixture& fixture() {
  static const ServeFixture fix = [] {
    ClusterSimConfig cfg;
    cfg.topology = {.num_machines = 8, .gpus_per_machine = 8,
                    .machines_per_leaf = 4, .num_spines = 2};
    cfg.jobs.push_back({job(8, 2, 2, 16), {}});
    cfg.jobs.push_back({job(8, 4, 1, 16), {}});
    cfg.seed = 33;
    ClusterSimResult sim = run_cluster_sim(cfg);
    sim.trace.sort();
    const TimeWindow span = sim.trace.span();
    const DurationNs slice = (span.end - span.begin) / 4 + 1;
    std::vector<std::string> chunks;
    for (TimeNs begin = span.begin; begin <= span.end; begin += slice) {
      const FlowTrace part = sim.trace.window({begin, begin + slice});
      if (part.empty()) continue;
      std::ostringstream os;
      write_lft(os, part);
      chunks.push_back(os.str());
    }
    return ServeFixture{std::move(sim), std::move(chunks)};
  }();
  return fix;
}

ServeConfig serve_config(const std::string& tag) {
  ServeConfig cfg;
  const std::string dir = ::testing::TempDir();
  cfg.ingest_socket = dir + "/" + tag + "-in.sock";
  cfg.http_socket = dir + "/" + tag + "-http.sock";
  cfg.snapshot_path = dir + "/" + tag + ".snap";
  // TempDir persists across runs; a stale snapshot would warm-start the
  // daemon with a watermark past the whole fixture trace.
  std::remove(cfg.snapshot_path.c_str());
  cfg.monitor.window = 2 * kSecond;
  cfg.monitor.reorder_slack = 0;
  cfg.monitor.carry_state = true;
  return cfg;
}

/// Minimal blocking LPF client (what a collector implements).
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long");
    }
    socket_path.copy(addr.sun_path, socket_path.size());
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      throw std::runtime_error("connect failed: " + socket_path);
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send_raw(std::string_view data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      if (n <= 0) throw std::runtime_error("write failed");
      off += static_cast<std::size_t>(n);
    }
  }

  /// Read exactly n bytes; "" on clean EOF at a frame boundary.
  std::string read_exact(std::size_t n) {
    std::string out(n, '\0');
    std::size_t off = 0;
    while (off < n) {
      const ssize_t got = ::read(fd_, out.data() + off, n - off);
      if (got == 0 && off == 0) return "";
      if (got <= 0) throw std::runtime_error("read failed");
      off += static_cast<std::size_t>(got);
    }
    return out;
  }

  struct Reply {
    FrameHeader header;
    std::string payload;
  };

  /// Send one frame and read the daemon's reply; nullopt on EOF (the
  /// daemon closed the connection).
  std::optional<Reply> roundtrip(FrameType type, std::uint64_t stream,
                                 std::string_view payload) {
    send_raw(encode_frame(type, stream, payload));
    const std::string head = read_exact(kFrameHeaderSize);
    if (head.empty()) return std::nullopt;
    Reply reply;
    reply.header = decode_frame_header(bytes(head));
    reply.payload = read_exact(reply.header.payload_bytes);
    return reply;
  }

 private:
  int fd_ = -1;
};

HttpResponse get(PrismDaemon& daemon, const std::string& target) {
  HttpRequest req;
  EXPECT_TRUE(parse_http_request("GET " + target + " HTTP/1.0\r\n", req));
  return daemon.handle_http(req);
}

TEST(DaemonTest, IngestsChunksAndServesEveryEndpoint) {
  const ServeFixture& fix = fixture();
  const ServeConfig cfg = serve_config("serve-e2e");
  PrismDaemon daemon(fix.sim.topology, cfg);
  daemon.start();
  ASSERT_TRUE(daemon.running());
  EXPECT_EQ(get(daemon, "/healthz").status, 200);

  {
    Client client(cfg.ingest_socket);
    const auto pong = client.roundtrip(FrameType::kPing, 0, "");
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->header.type, FrameType::kAck);
    EXPECT_EQ(decode_ack(bytes(pong->payload)).flows_accepted, 0u);

    std::uint64_t accepted = 0;
    for (const std::string& chunk : fix.chunks) {
      const auto reply = client.roundtrip(FrameType::kFlowChunk, 7, chunk);
      ASSERT_TRUE(reply.has_value());
      ASSERT_EQ(reply->header.type, FrameType::kAck)
          << std::string_view(reply->payload);
      accepted += decode_ack(bytes(reply->payload)).flows_accepted;
    }
    EXPECT_EQ(accepted, fix.sim.trace.size());
  }

  // stop() drains the queues, so the analysis state is final afterwards —
  // and the query plane stays up for inspection.
  daemon.stop();
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.frames, fix.chunks.size() + 1);
  EXPECT_EQ(stats.frame_errors, 0u);
  EXPECT_EQ(stats.flows, fix.sim.trace.size());
  EXPECT_GE(stats.windows_completed, 2u);
  EXPECT_EQ(stats.snapshots_saved, 1u);

  EXPECT_EQ(get(daemon, "/healthz").status, 503)
      << "a stopped daemon must fail its health check";
  const HttpResponse metrics = get(daemon, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("llmprism_serve_frames_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("llmprism_serve_backpressure_waits_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("llmprism_serve_queue_depth"),
            std::string::npos);

  const HttpResponse jobs = get(daemon, "/jobs");
  EXPECT_EQ(jobs.status, 200);
  EXPECT_NE(jobs.body.find("\"job\":0"), std::string::npos);
  EXPECT_NE(jobs.body.find("\"job\":1"), std::string::npos);

  const HttpResponse report = get(daemon, "/report");
  EXPECT_EQ(report.status, 200);
  EXPECT_GT(report.body.size(), 100u);
  EXPECT_EQ(get(daemon, "/report?shard=0").body, report.body);
  EXPECT_EQ(get(daemon, "/journal").status, 200);
  EXPECT_EQ(get(daemon, "/statusz").status, 200);

  EXPECT_GE(get(daemon, "/nope").status, 404);
  EXPECT_GE(get(daemon, "/report?shard=9").status, 400);
}

TEST(DaemonTest, BadHeaderClosesConnectionCorruptChunkDoesNot) {
  const ServeFixture& fix = fixture();
  ServeConfig cfg = serve_config("serve-err");
  cfg.snapshot_path.clear();
  PrismDaemon daemon(fix.sim.topology, cfg);
  daemon.start();

  {
    // Framing desync: garbage where a header belongs. The daemon answers
    // kError and hangs up.
    Client client(cfg.ingest_socket);
    client.send_raw(std::string(kFrameHeaderSize, 'x'));
    const std::string head = client.read_exact(kFrameHeaderSize);
    ASSERT_FALSE(head.empty());
    const FrameHeader header = decode_frame_header(bytes(head));
    EXPECT_EQ(header.type, FrameType::kError);
    client.read_exact(header.payload_bytes);
    EXPECT_EQ(client.read_exact(kFrameHeaderSize), "") << "must close";
  }
  {
    // A well-framed but corrupt LFT payload fails only that chunk: the
    // same connection accepts a valid chunk immediately after.
    Client client(cfg.ingest_socket);
    const auto err =
        client.roundtrip(FrameType::kFlowChunk, 1, "this is not an LFT");
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->header.type, FrameType::kError);
    EXPECT_FALSE(err->payload.empty());

    const auto ok = client.roundtrip(FrameType::kFlowChunk, 1, fix.chunks[0]);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->header.type, FrameType::kAck);
    EXPECT_GT(decode_ack(bytes(ok->payload)).flows_accepted, 0u);
  }
  daemon.stop();
  EXPECT_EQ(daemon.stats().frame_errors, 2u);
}

TEST(DaemonTest, RestoredDaemonMatchesUninterruptedRun) {
  const ServeFixture& fix = fixture();
  ASSERT_GE(fix.chunks.size(), 4u);
  const std::size_t cut = fix.chunks.size() / 2;

  const auto feed = [&](const std::string& socket, std::size_t begin,
                        std::size_t end) {
    Client client(socket);
    for (std::size_t i = begin; i < end; ++i) {
      const auto reply =
          client.roundtrip(FrameType::kFlowChunk, 7, fix.chunks[i]);
      ASSERT_TRUE(reply.has_value());
      ASSERT_EQ(reply->header.type, FrameType::kAck);
    }
  };

  // Uninterrupted reference.
  ServeConfig ref_cfg = serve_config("serve-ref");
  ref_cfg.snapshot_path.clear();
  PrismDaemon reference(fix.sim.topology, ref_cfg);
  reference.start();
  feed(ref_cfg.ingest_socket, 0, fix.chunks.size());
  reference.stop();

  // Interrupted: first half, stop (snapshots), new daemon restores and
  // ingests the rest.
  const ServeConfig warm_cfg = serve_config("serve-warm");
  {
    PrismDaemon first(fix.sim.topology, warm_cfg);
    first.start();
    feed(warm_cfg.ingest_socket, 0, cut);
    first.stop();
    EXPECT_EQ(first.stats().snapshots_saved, 1u);
  }
  PrismDaemon second(fix.sim.topology, warm_cfg);
  second.start();
  EXPECT_EQ(second.stats().snapshots_restored, 1u);
  feed(warm_cfg.ingest_socket, cut, fix.chunks.size());
  second.stop();

  // The restored daemon's diagnosis is byte-identical to the daemon that
  // never stopped.
  EXPECT_EQ(get(second, "/report").body, get(reference, "/report").body);
  EXPECT_EQ(get(second, "/jobs").body, get(reference, "/jobs").body);
}

#endif  // LLMPRISM_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace llmprism::serve
