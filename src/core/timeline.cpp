#include "llmprism/core/timeline.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "llmprism/common/thread_pool.hpp"

namespace llmprism {

namespace {

/// Classify one flow from `gpu`'s perspective, its pair's type known.
TimelineEvent make_event(const FlowRecord& f, GpuId gpu, CommType type) {
  TimelineEvent e;
  e.start = f.start_time;
  e.end = f.end_time();
  e.peer = f.src == gpu ? f.dst : f.src;
  if (type == CommType::kDP) {
    e.kind = TimelineEventKind::kDp;
  } else {
    e.kind = f.src == gpu ? TimelineEventKind::kPpSend
                          : TimelineEventKind::kPpRecv;
  }
  return e;
}

/// Columnar variant: same classification straight off the SoA columns.
TimelineEvent make_event(const FlowView& v, std::size_t i, std::uint32_t gpu,
                         CommType type) {
  TimelineEvent e;
  e.start = v.start_ns[i];
  e.end = v.start_ns[i] + v.duration_ns[i];
  const bool is_src = v.src[i] == gpu;
  e.peer = GpuId(is_src ? v.dst[i] : v.src[i]);
  if (type == CommType::kDP) {
    e.kind = TimelineEventKind::kDp;
  } else {
    e.kind = is_src ? TimelineEventKind::kPpSend : TimelineEventKind::kPpRecv;
  }
  return e;
}

/// Map-probing fallback for the unordered_map-typed entry points.
CommType type_of(const FlowRecord& f,
                 const std::unordered_map<GpuPair, CommType>& types) {
  const auto it = types.find(f.pair());
  return it != types.end() ? it->second : CommType::kPP;
}

/// One GPU's share of a carry-aware reconstruction: its (pre-resolved)
/// per-GPU carry entry and private copies of the TimelineCarry call
/// counters. Pre-resolving the map entry and privatizing the counters is
/// what lets assemble() calls for different GPUs run concurrently — no
/// task inserts into `carry->per_gpu` or bumps a shared counter; the
/// caller folds the slots in GPU order.
struct CarrySlot {
  GpuStepCarry* carry = nullptr;
  std::uint64_t steps_held = 0;
  std::uint64_t steps_carried_in = 0;
};

/// Build the timeline of one GPU from its (chronological) comm events.
/// With a carry context (`ctx` non-null and `slot->carry` set), held-back
/// DP events from the previous window are prepended, step 0 begins at the
/// carried previous step end, and a trailing near-boundary burst is held
/// back instead of emitted; the null-context path is the cold behavior,
/// bit for bit.
GpuTimeline assemble(GpuId gpu, std::vector<TimelineEvent> comm_events,
                     const TimelineConfig& config,
                     SegmenterStats* segmenter_stats = nullptr,
                     const TimelineCarryContext* ctx = nullptr,
                     CarrySlot* slot = nullptr) {
  GpuTimeline timeline;
  timeline.gpu = gpu;

  GpuStepCarry* carry = nullptr;
  if (ctx != nullptr && slot != nullptr && slot->carry != nullptr) {
    carry = slot->carry;
    if (!carry->held_events.empty()) {
      ++slot->steps_carried_in;
      comm_events.insert(comm_events.end(), carry->held_events.begin(),
                         carry->held_events.end());
      carry->held_events.clear();
    }
  }

  std::sort(comm_events.begin(), comm_events.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });

  // ---- step boundaries from DP bursts ----
  std::vector<TimeNs> dp_starts;
  std::vector<std::size_t> dp_event_idx;
  for (std::size_t i = 0; i < comm_events.size(); ++i) {
    if (comm_events[i].kind == TimelineEventKind::kDp) {
      dp_starts.push_back(comm_events[i].start);
      dp_event_idx.push_back(i);
    }
  }

  std::vector<bool> held(comm_events.size(), false);
  bool any_held = false;
  if (!dp_starts.empty()) {
    const auto burst_starts =
        segment_by_gaps(dp_starts, config.segmenter, segmenter_stats);

    // Provisional tail: the last burst is held back (not emitted as a
    // step) when it ends within boundary_hold of the window end — it may
    // continue in the next window, and emitting it now would truncate the
    // straddling step.
    std::size_t hold_from = burst_starts.size();  // index of the held burst
    if (carry != nullptr && ctx->hold_tail) {
      const std::size_t last_begin = burst_starts.back();
      TimeNs tail_dp_end = dp_starts[last_begin];
      for (std::size_t i = last_begin; i < dp_starts.size(); ++i) {
        tail_dp_end = std::max(tail_dp_end, comm_events[dp_event_idx[i]].end);
      }
      if (ctx->window_end - tail_dp_end < ctx->boundary_hold) {
        hold_from = burst_starts.size() - 1;
      }
    }

    TimeNs prev_end = (carry != nullptr && carry->has_prev_step)
                          ? carry->prev_step_end
                          : (comm_events.empty() ? 0
                                                 : comm_events.front().start);
    for (std::size_t b = 0; b < burst_starts.size(); ++b) {
      const std::size_t seg_begin = burst_starts[b];
      const std::size_t seg_end = b + 1 < burst_starts.size()
                                      ? burst_starts[b + 1]
                                      : dp_starts.size();
      if (b >= hold_from) {
        // Move the burst's DP events into the carry; they are re-observed
        // (and the step emitted) by the next window's segmentation.
        for (std::size_t i = seg_begin; i < seg_end; ++i) {
          carry->held_events.push_back(comm_events[dp_event_idx[i]]);
          held[dp_event_idx[i]] = true;
          any_held = true;
        }
        ++slot->steps_held;
        continue;
      }
      ReconstructedStep step;
      step.index = timeline.steps.size();
      step.begin = prev_end;
      step.dp_begin = dp_starts[seg_begin];
      step.dp_end = step.dp_begin;
      for (std::size_t i = seg_begin; i < seg_end; ++i) {
        step.dp_end = std::max(step.dp_end, comm_events[dp_event_idx[i]].end);
      }
      step.end = step.dp_end;
      prev_end = step.end;
      timeline.steps.push_back(step);
    }
  }
  if (carry != nullptr && !timeline.steps.empty()) {
    carry->prev_step_end = timeline.steps.back().end;
    carry->has_prev_step = true;
  }

  // ---- fill compute gaps between communication events ----
  timeline.events.reserve(comm_events.size() * 2);
  TimeNs busy_until = 0;
  bool busy_set = false;
  for (std::size_t i = 0; i < comm_events.size(); ++i) {
    if (any_held && held[i]) continue;
    const TimelineEvent& e = comm_events[i];
    if (!busy_set) {
      busy_until = e.start;
      busy_set = true;
    }
    if (e.start - busy_until >= config.min_compute_gap) {
      TimelineEvent gap;
      gap.kind = TimelineEventKind::kCompute;
      gap.start = busy_until;
      gap.end = e.start;
      timeline.events.push_back(gap);
    }
    timeline.events.push_back(e);
    busy_until = std::max(busy_until, e.end);
  }
  return timeline;
}

/// Fan the per-GPU assembly across `pool` (ascending `gpu_ids` order is
/// the output order). Each GPU owns output slot k and private telemetry;
/// carry map entries are resolved sequentially up front so no task touches
/// `ctx->carry->per_gpu` (inserts could rehash under a concurrent reader).
/// Counter folds run in GPU order — integer event counts, so the totals
/// match the sequential loop exactly.
std::vector<GpuTimeline> assemble_all(
    std::span<const std::uint32_t> gpu_ids,
    const std::function<std::vector<TimelineEvent>(std::uint32_t)>& events_of,
    const TimelineConfig& config, SegmenterStats* segmenter_stats,
    const TimelineCarryContext* ctx, ThreadPool* pool) {
  const std::size_t n = gpu_ids.size();
  std::vector<CarrySlot> slots(n);
  if (ctx != nullptr && ctx->carry != nullptr) {
    for (std::size_t k = 0; k < n; ++k) {
      slots[k].carry = &ctx->carry->per_gpu[GpuId(gpu_ids[k])];
    }
  }
  std::vector<SegmenterStats> slot_stats(n);
  std::vector<GpuTimeline> out(n);
  parallel_for(pool, n, [&](std::size_t k) {
    out[k] = assemble(GpuId(gpu_ids[k]), events_of(gpu_ids[k]), config,
                      &slot_stats[k], ctx, &slots[k]);
  });
  for (std::size_t k = 0; k < n; ++k) {
    if (segmenter_stats != nullptr) *segmenter_stats += slot_stats[k];
    if (ctx != nullptr && ctx->carry != nullptr) {
      ctx->carry->steps_held += slots[k].steps_held;
      ctx->carry->steps_carried_in += slots[k].steps_carried_in;
    }
  }
  return out;
}

}  // namespace

TimelineReconstructor::TimelineReconstructor(TimelineConfig config)
    : config_(config) {}

GpuTimeline TimelineReconstructor::reconstruct(
    GpuId gpu, const FlowTrace& job_trace,
    const std::unordered_map<GpuPair, CommType>& types) const {
  std::vector<TimelineEvent> comm_events;
  for (const FlowRecord& f : job_trace) {
    if (f.src != gpu && f.dst != gpu) continue;
    comm_events.push_back(make_event(f, gpu, type_of(f, types)));
  }
  return assemble(gpu, std::move(comm_events), config_);
}

std::vector<GpuTimeline> TimelineReconstructor::reconstruct_all(
    const FlowTrace& job_trace,
    const std::unordered_map<GpuPair, CommType>& types,
    SegmenterStats* segmenter_stats) const {
  std::vector<CommType> flow_types;
  flow_types.reserve(job_trace.size());
  for (const FlowRecord& f : job_trace) {
    flow_types.push_back(type_of(f, types));
  }
  return reconstruct_all(job_trace, flow_types, segmenter_stats);
}

std::vector<GpuTimeline> TimelineReconstructor::reconstruct_all(
    const FlowTrace& job_trace, std::span<const CommType> flow_types,
    SegmenterStats* segmenter_stats) const {
  return reconstruct_all(job_trace, flow_types, segmenter_stats,
                         TimelineCarryContext{});
}

std::vector<GpuTimeline> TimelineReconstructor::reconstruct_all(
    const FlowTrace& job_trace, std::span<const CommType> flow_types,
    SegmenterStats* segmenter_stats, const TimelineCarryContext& ctx) const {
  const FlowColumns columns(job_trace);
  return reconstruct_all(columns.view(), flow_types, segmenter_stats, ctx);
}

std::vector<GpuTimeline> TimelineReconstructor::reconstruct_all(
    const FlowView& view, std::span<const CommType> flow_types,
    SegmenterStats* segmenter_stats, const TimelineCarryContext& ctx,
    ThreadPool* pool) const {
  if (ctx.carry != nullptr) {
    ctx.carry->steps_held = 0;
    ctx.carry->steps_carried_in = 0;
  }
  const std::size_t n = view.size();
  const TimelineCarryContext* carry_ctx =
      ctx.carry != nullptr ? &ctx : nullptr;

  // GPUs that must get a timeline even with no flow this window: a held
  // carried burst would otherwise be dropped (flush after a quiet window
  // must still emit the carried step).
  std::vector<std::uint32_t> carry_gpus;
  if (ctx.carry != nullptr) {
    for (const auto& [gpu, state] : ctx.carry->per_gpu) {
      if (!state.held_events.empty()) carry_gpus.push_back(gpu.value());
    }
    std::sort(carry_gpus.begin(), carry_gpus.end());
  }

  std::uint32_t max_gpu = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_gpu = std::max({max_gpu, view.src[i], view.dst[i]});
  }
  for (const std::uint32_t g : carry_gpus) max_gpu = std::max(max_gpu, g);
  if (n == 0 && carry_gpus.empty()) return {};

  // Dense counting gather: per-GPU event counts over the src/dst columns,
  // prefix sum, scatter. Flow order is preserved per GPU; assemble()
  // re-sorts anyway. Falls back to hash bucketing only if the id space is
  // wildly sparse relative to the window (never for cluster-dense ids).
  const std::size_t span_size = static_cast<std::size_t>(max_gpu) + 1;
  if (span_size <= 8 * (2 * n + carry_gpus.size()) + 1024) {
    std::vector<std::uint32_t> counts(span_size + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[view.src[i] + 1];
      ++counts[view.dst[i] + 1];
    }
    std::vector<std::uint8_t> present(span_size, 0);
    for (const std::uint32_t g : carry_gpus) present[g] = 1;
    for (std::size_t g = 0; g < span_size; ++g) {
      if (counts[g + 1] != 0) present[g] = 1;
      counts[g + 1] += counts[g];
    }
    std::vector<TimelineEvent> flat(2 * n);
    {
      std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
      for (std::size_t i = 0; i < n; ++i) {
        flat[cursor[view.src[i]]++] =
            make_event(view, i, view.src[i], flow_types[i]);
        flat[cursor[view.dst[i]]++] =
            make_event(view, i, view.dst[i], flow_types[i]);
      }
    }
    std::vector<std::uint32_t> gpu_ids;
    for (std::size_t g = 0; g < span_size; ++g) {
      if (present[g]) gpu_ids.push_back(static_cast<std::uint32_t>(g));
    }
    return assemble_all(
        gpu_ids,
        [&](std::uint32_t g) {
          return std::vector<TimelineEvent>(flat.begin() + counts[g],
                                            flat.begin() + counts[g + 1]);
        },
        config_, segmenter_stats, carry_ctx, pool);
  }

  std::unordered_map<GpuId, std::vector<TimelineEvent>> per_gpu;
  for (const std::uint32_t g : carry_gpus) per_gpu.try_emplace(GpuId(g));
  for (std::size_t i = 0; i < n; ++i) {
    per_gpu[GpuId(view.src[i])].push_back(
        make_event(view, i, view.src[i], flow_types[i]));
    per_gpu[GpuId(view.dst[i])].push_back(
        make_event(view, i, view.dst[i], flow_types[i]));
  }
  std::vector<std::uint32_t> gpus;
  gpus.reserve(per_gpu.size());
  for (const auto& [gpu, events] : per_gpu) gpus.push_back(gpu.value());
  std::sort(gpus.begin(), gpus.end());

  // Every key already exists, so the concurrent find() calls below never
  // mutate the map.
  return assemble_all(
      gpus,
      [&](std::uint32_t g) {
        return std::move(per_gpu.find(GpuId(g))->second);
      },
      config_, segmenter_stats, carry_ctx, pool);
}

}  // namespace llmprism
