// Unit tests for the common substrate: ids, time, disjoint set, stats, rng,
// inline vector.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_set>

#include "llmprism/common/disjoint_set.hpp"
#include "llmprism/common/ids.hpp"
#include "llmprism/common/inline_vec.hpp"
#include "llmprism/common/rng.hpp"
#include "llmprism/common/stats.hpp"
#include "llmprism/common/time.hpp"

namespace llmprism {
namespace {

// ---------------------------------------------------------------------------
// StrongId

TEST(StrongIdTest, DefaultIsInvalid) {
  GpuId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, GpuId::invalid());
}

TEST(StrongIdTest, ValueRoundTrip) {
  GpuId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongIdTest, Ordering) {
  EXPECT_LT(GpuId(1), GpuId(2));
  EXPECT_EQ(GpuId(7), GpuId(7));
  EXPECT_NE(GpuId(7), GpuId(8));
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<GpuId, MachineId>);
  static_assert(!std::is_same_v<SwitchId, JobId>);
}

TEST(StrongIdTest, StreamsReadably) {
  std::ostringstream oss;
  oss << GpuId(5) << ' ' << GpuId();
  EXPECT_EQ(oss.str(), "5 <invalid>");
}

TEST(StrongIdTest, HashesDistinctly) {
  std::unordered_set<GpuId> set;
  for (std::uint32_t i = 0; i < 1000; ++i) set.insert(GpuId(i));
  EXPECT_EQ(set.size(), 1000u);
}

// ---------------------------------------------------------------------------
// GpuPair

TEST(GpuPairTest, CanonicalOrder) {
  const GpuPair a(GpuId(5), GpuId(3));
  const GpuPair b(GpuId(3), GpuId(5));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.first, GpuId(3));
  EXPECT_EQ(a.second, GpuId(5));
  EXPECT_EQ(std::hash<GpuPair>{}(a), std::hash<GpuPair>{}(b));
}

TEST(GpuPairTest, SelfPairAllowed) {
  const GpuPair p(GpuId(4), GpuId(4));
  EXPECT_EQ(p.first, p.second);
}

// ---------------------------------------------------------------------------
// Time

TEST(TimeTest, UnitConversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(500 * kMillisecond), 0.5);
  EXPECT_DOUBLE_EQ(to_milliseconds(kSecond), 1000.0);
  EXPECT_EQ(from_seconds(2.5), 2'500'000'000);
  EXPECT_EQ(from_milliseconds(1.5), 1'500'000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 3600 * kSecond);
}

TEST(TimeWindowTest, ContainsIsHalfOpen) {
  const TimeWindow w{10, 20};
  EXPECT_TRUE(w.contains(10));
  EXPECT_TRUE(w.contains(19));
  EXPECT_FALSE(w.contains(20));
  EXPECT_FALSE(w.contains(9));
  EXPECT_EQ(w.length(), 10);
  EXPECT_FALSE(w.empty());
  EXPECT_TRUE((TimeWindow{5, 5}).empty());
}

// ---------------------------------------------------------------------------
// DisjointSet

TEST(DisjointSetTest, InitiallyAllSingletons) {
  DisjointSet ds(5);
  EXPECT_EQ(ds.num_sets(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ds.find(i), i);
  EXPECT_TRUE(ds.groups().empty());  // no non-singleton groups
}

TEST(DisjointSetTest, UniteMerges) {
  DisjointSet ds(4);
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_FALSE(ds.unite(1, 0));  // already merged
  EXPECT_TRUE(ds.same_set(0, 1));
  EXPECT_FALSE(ds.same_set(0, 2));
  EXPECT_EQ(ds.num_sets(), 3u);
  EXPECT_EQ(ds.set_size(0), 2u);
}

TEST(DisjointSetTest, TransitiveUnion) {
  DisjointSet ds(6);
  ds.unite(0, 1);
  ds.unite(2, 3);
  ds.unite(1, 2);
  EXPECT_TRUE(ds.same_set(0, 3));
  EXPECT_EQ(ds.set_size(3), 4u);
}

TEST(DisjointSetTest, GroupsAreSortedAndComplete) {
  DisjointSet ds(7);
  ds.unite(5, 2);
  ds.unite(2, 6);
  ds.unite(0, 1);
  auto groups = ds.groups();
  ASSERT_EQ(groups.size(), 2u);
  std::set<std::set<std::size_t>> as_sets;
  for (auto& g : groups) {
    EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
    as_sets.insert(std::set<std::size_t>(g.begin(), g.end()));
  }
  EXPECT_TRUE(as_sets.count({0, 1}));
  EXPECT_TRUE(as_sets.count({2, 5, 6}));
}

TEST(DisjointSetTest, GroupsWithSingletons) {
  DisjointSet ds(3);
  ds.unite(0, 1);
  EXPECT_EQ(ds.groups(true).size(), 2u);
}

TEST(DisjointSetTest, OutOfRangeThrows) {
  DisjointSet ds(3);
  EXPECT_THROW(ds.find(3), std::out_of_range);
  EXPECT_THROW(ds.unite(0, 99), std::out_of_range);
}

TEST(DisjointSetTest, LargeChainPathCompression) {
  constexpr std::size_t n = 100000;
  DisjointSet ds(n);
  for (std::size_t i = 1; i < n; ++i) ds.unite(i - 1, i);
  EXPECT_EQ(ds.num_sets(), 1u);
  EXPECT_EQ(ds.set_size(0), n);
  EXPECT_EQ(ds.find(0), ds.find(n - 1));
}

// ---------------------------------------------------------------------------
// stats

TEST(StatsTest, MeanAndVariance) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stats::stddev(xs), 2.0);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stats::variance({}), 0.0);
  EXPECT_DOUBLE_EQ(stats::median({}), 0.0);
  EXPECT_EQ(stats::mode({}), 0);
}

TEST(StatsTest, MeanAbsDeviation) {
  const std::vector<double> xs{1, 1, 5, 5};
  EXPECT_DOUBLE_EQ(stats::mean_abs_deviation(xs), 2.0);
}

TEST(StatsTest, MedianOddEven) {
  const std::vector<double> odd{3, 1, 2};
  EXPECT_DOUBLE_EQ(stats::median(odd), 2.0);
  const std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(stats::median(even), 2.5);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 50.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 100.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 25), 25.0);
}

TEST(StatsTest, ModePrefersSmallerOnTies) {
  const std::vector<std::int64_t> xs{3, 3, 1, 1, 2};
  EXPECT_EQ(stats::mode(xs), 1);
}

TEST(StatsTest, ModeSingleDominant) {
  const std::vector<std::int64_t> xs{1, 4, 4, 4, 2, 4};
  EXPECT_EQ(stats::mode(xs), 4);
}

TEST(StatsTest, JaccardBasics) {
  std::unordered_set<int> a{1, 2, 3};
  std::unordered_set<int> b{2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::jaccard(a, b), 0.5);
  EXPECT_DOUBLE_EQ(stats::jaccard(a, a), 1.0);
  std::unordered_set<int> empty;
  EXPECT_DOUBLE_EQ(stats::jaccard(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(stats::jaccard(a, empty), 0.0);
}

TEST(RunningStatsTest, MatchesBatch) {
  stats::RunningStats rs;
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), stats::mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), stats::variance(xs), 1e-12);
}

TEST(RunningStatsTest, ResetClears) {
  stats::RunningStats rs;
  rs.add(5);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

// ---------------------------------------------------------------------------
// Rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform(0, 1) != b.uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
    const auto n = rng.uniform_int(-5, 5);
    EXPECT_GE(n, -5);
    EXPECT_LE(n, 5);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(7);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  stats::RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(rs.mean(), 3.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child1 = parent.fork(1);
  // A sibling fork from the same parent state differs.
  Rng parent2(42);
  (void)parent2.fork(1);
  Rng child2 = parent2.fork(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (child1.uniform(0, 1) != child2.uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------------
// InlineVec

TEST(InlineVecTest, PushAndIterate) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  v.push_back(3);
  EXPECT_EQ(v.size(), 3u);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 6);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
}

TEST(InlineVecTest, CapacityOverflowThrows) {
  InlineVec<int, 2> v{1, 2};
  EXPECT_THROW(v.push_back(3), std::length_error);
  EXPECT_THROW((InlineVec<int, 1>{1, 2}), std::length_error);
}

TEST(InlineVecTest, AtBoundsChecked) {
  InlineVec<int, 4> v{1};
  EXPECT_EQ(v.at(0), 1);
  EXPECT_THROW(v.at(1), std::out_of_range);
}

TEST(InlineVecTest, Equality) {
  const InlineVec<int, 4> a{1, 2};
  const InlineVec<int, 4> b{1, 2};
  const InlineVec<int, 4> c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(InlineVecTest, ClearResets) {
  InlineVec<int, 4> v{1, 2, 3};
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(9);
  EXPECT_EQ(v.size(), 1u);
}

}  // namespace
}  // namespace llmprism
