#include "llmprism/simulator/noise.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace llmprism {

namespace {

/// Per-pair truncation state for degraded pairs.
struct PairDegradation {
  bool degraded = false;
  double truncation_prob = 0.0;
};

}  // namespace

std::vector<std::string> NoiseConfig::validate() const {
  std::vector<std::string> errors;
  const auto check_prob = [&errors](double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
      errors.push_back("noise: " + std::string(name) +
                       " must be in [0, 1], got " + std::to_string(p));
    }
  };
  check_prob(drop_rate, "drop_rate");
  check_prob(duplicate_rate, "duplicate_rate");
  check_prob(size_jitter_rate, "size_jitter_rate");
  check_prob(partial_record_rate, "partial_record_rate");
  check_prob(degraded_pair_fraction, "degraded_pair_fraction");
  check_prob(truncation_prob_min, "truncation_prob_min");
  check_prob(truncation_prob_max, "truncation_prob_max");
  if (truncation_prob_min > truncation_prob_max) {
    errors.push_back(
        "noise: truncation_prob_min must not exceed truncation_prob_max, got " +
        std::to_string(truncation_prob_min) + " > " +
        std::to_string(truncation_prob_max));
  }
  if (size_jitter_frac < 0.0) {
    errors.push_back("noise: size_jitter_frac must be >= 0, got " +
                     std::to_string(size_jitter_frac));
  }
  if (time_jitter < 0) {
    errors.push_back("noise: time_jitter must be >= 0, got " +
                     std::to_string(time_jitter));
  }
  if (burst_gap < 0) {
    errors.push_back("noise: burst_gap must be >= 0, got " +
                     std::to_string(burst_gap));
  }
  return errors;
}

FlowTrace apply_noise(const FlowTrace& trace, const NoiseConfig& config,
                      Rng& rng) {
  if (const auto errors = config.validate(); !errors.empty()) {
    std::string message = "invalid noise configuration:";
    for (const std::string& e : errors) {
      message += "\n  - ";
      message += e;
    }
    throw std::invalid_argument(message);
  }
  if (!config.enabled()) {
    FlowTrace copy = trace;
    copy.sort();
    return copy;
  }

  // ---- correlated burst truncation ----
  // Decide per pair whether it is degraded; for degraded pairs walk their
  // flows in time order, split into bursts at gaps, and with the pair's
  // truncation probability keep only flows sharing the burst head's size.
  std::vector<bool> keep(trace.size(), true);
  if (config.degraded_pair_fraction > 0.0) {
    // Pairs are visited in first-appearance order (dense CSR ids), so the
    // noise realization is deterministic in the trace's content alone.
    const PairIndex pair_index(trace);
    for (std::size_t id = 0; id < pair_index.num_pairs(); ++id) {
      const auto flow_idxs = pair_index.positions(id);
      PairDegradation d;
      d.degraded = rng.bernoulli(config.degraded_pair_fraction);
      if (d.degraded) {
        d.truncation_prob =
            rng.uniform(config.truncation_prob_min, config.truncation_prob_max);
      }
      if (!d.degraded) continue;

      // flow_idxs preserve trace order; a sorted trace makes them
      // chronological per pair.
      std::size_t burst_start = 0;
      while (burst_start < flow_idxs.size()) {
        std::size_t burst_end = burst_start + 1;
        while (burst_end < flow_idxs.size()) {
          const TimeNs gap = trace[flow_idxs[burst_end]].start_time -
                             trace[flow_idxs[burst_end - 1]].start_time;
          if (gap > config.burst_gap) break;
          ++burst_end;
        }
        if (rng.bernoulli(d.truncation_prob)) {
          const std::uint64_t head_size = trace[flow_idxs[burst_start]].bytes;
          for (std::size_t i = burst_start; i < burst_end; ++i) {
            if (trace[flow_idxs[i]].bytes != head_size) {
              keep[flow_idxs[i]] = false;
            }
          }
        }
        burst_start = burst_end;
      }
    }
  }

  FlowTrace out;
  out.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!keep[i]) continue;
    if (config.drop_rate > 0 && rng.bernoulli(config.drop_rate)) continue;

    FlowRecord f = trace[i];
    if (config.partial_record_rate > 0 &&
        rng.bernoulli(config.partial_record_rate)) {
      f.bytes = static_cast<std::uint64_t>(
          std::max(1.0, static_cast<double>(f.bytes) *
                            rng.uniform(0.1, 0.9)));
      f.duration = static_cast<DurationNs>(
          static_cast<double>(f.duration) * rng.uniform(0.1, 0.9));
    }
    if (config.size_jitter_rate > 0 &&
        rng.bernoulli(config.size_jitter_rate)) {
      const double factor =
          1.0 + rng.uniform(-config.size_jitter_frac, config.size_jitter_frac);
      f.bytes = static_cast<std::uint64_t>(
          std::max(1.0, static_cast<double>(f.bytes) * factor));
    }
    if (config.time_jitter > 0) {
      f.start_time += static_cast<TimeNs>(
          rng.uniform(-static_cast<double>(config.time_jitter),
                      static_cast<double>(config.time_jitter)));
    }
    out.add(f);

    if (config.duplicate_rate > 0 &&
        rng.bernoulli(config.duplicate_rate)) {
      FlowRecord dup = f;
      // Retransmissions show up shortly after the original.
      dup.start_time += static_cast<TimeNs>(rng.uniform(0.0, 1e6));
      out.add(dup);
    }
  }
  out.sort();
  return out;
}

}  // namespace llmprism
