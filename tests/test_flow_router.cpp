// Unit tests for the dense GPU->job flow routing table, including the
// dst-fallback path that the end-to-end pipeline cannot reach (the
// internal recognizer attributes every flow endpoint, so these tests
// hand-build half-recognized jobs).
#include "llmprism/core/flow_router.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace llmprism {
namespace {

FlowRecord flow_at(TimeNs at, std::uint32_t src, std::uint32_t dst) {
  FlowRecord f;
  f.start_time = at;
  f.src = GpuId(src);
  f.dst = GpuId(dst);
  f.bytes = 1 << 20;
  f.duration = 100;
  return f;
}

RecognizedJob job_with_gpus(std::vector<std::uint32_t> gpus) {
  RecognizedJob job;
  for (const std::uint32_t g : gpus) job.gpus.push_back(GpuId(g));
  return job;
}

TEST(FlowRouterTest, RoutesBySrcToTheOwningJob) {
  const std::vector<RecognizedJob> jobs{job_with_gpus({0, 1}),
                                        job_with_gpus({4, 5})};
  const FlowRouter router(jobs);
  EXPECT_EQ(router.num_jobs(), 2u);
  EXPECT_EQ(router.job_of(GpuId(0)), 0u);
  EXPECT_EQ(router.job_of(GpuId(5)), 1u);
  EXPECT_EQ(router.job_of(GpuId(3)), FlowRouter::kUnattributed);
  EXPECT_EQ(router.job_of(GpuId(99)), FlowRouter::kUnattributed);

  FlowTrace trace;
  trace.add(flow_at(10, 0, 1));
  trace.add(flow_at(20, 5, 4));
  trace.add(flow_at(30, 1, 0));
  const auto result = router.route(trace);
  EXPECT_EQ(result.flows_routed, 3u);
  EXPECT_EQ(result.flows_routed_via_dst, 0u);
  EXPECT_EQ(result.flows_unattributed, 0u);
  ASSERT_EQ(result.job_traces.size(), 2u);
  EXPECT_EQ(result.job_traces[0].size(), 2u);
  EXPECT_EQ(result.job_traces[1].size(), 1u);
}

TEST(FlowRouterTest, FallsBackToDstWhenSrcIsUnattributed) {
  // Half-recognized job: GPU 7 talks to the job but no job owns it. A
  // src-only lookup would silently drop the 7->1 flow even though the
  // job owns its dst.
  const std::vector<RecognizedJob> jobs{job_with_gpus({0, 1})};
  const FlowRouter router(jobs);

  FlowTrace trace;
  trace.add(flow_at(10, 7, 1));   // src unattributed, dst owned: recovered
  trace.add(flow_at(20, 0, 7));   // src owned: normal routing
  trace.add(flow_at(30, 8, 9));   // neither endpoint owned: unattributed
  const auto result = router.route(trace);
  EXPECT_EQ(result.flows_routed, 2u);
  EXPECT_EQ(result.flows_routed_via_dst, 1u);
  EXPECT_EQ(result.flows_unattributed, 1u);
  ASSERT_EQ(result.job_traces.size(), 1u);
  ASSERT_EQ(result.job_traces[0].size(), 2u);
  EXPECT_EQ(result.job_traces[0][0].src, GpuId(7));
  EXPECT_EQ(result.job_traces[0][1].src, GpuId(0));
}

TEST(FlowRouterTest, PreservesOrderSoSortedInputYieldsSortedJobTraces) {
  const std::vector<RecognizedJob> jobs{job_with_gpus({0, 1}),
                                        job_with_gpus({2, 3})};
  const FlowRouter router(jobs);
  FlowTrace trace;
  trace.add(flow_at(10, 0, 1));
  trace.add(flow_at(20, 2, 3));
  trace.add(flow_at(30, 1, 0));
  trace.add(flow_at(40, 3, 2));
  ASSERT_TRUE(trace.is_sorted());
  const auto result = router.route(trace);
  for (const FlowTrace& jt : result.job_traces) {
    // Born sorted: the cached flag must already know, no O(N) verify is
    // involved in the assertion path.
    EXPECT_TRUE(jt.is_sorted());
  }
  EXPECT_EQ(result.job_traces[0][0].start_time, 10);
  EXPECT_EQ(result.job_traces[0][1].start_time, 30);
}

TEST(FlowRouterTest, LowerJobWinsContestedGpus) {
  // The recognizer never produces overlapping jobs; the table still has a
  // deterministic rule if it happens.
  const std::vector<RecognizedJob> jobs{job_with_gpus({0, 1}),
                                        job_with_gpus({1, 2})};
  const FlowRouter router(jobs);
  EXPECT_EQ(router.job_of(GpuId(1)), 0u);
}

TEST(FlowRouterTest, EmptyJobsRouteNothing) {
  const FlowRouter router(std::vector<RecognizedJob>{});
  FlowTrace trace;
  trace.add(flow_at(10, 0, 1));
  const auto result = router.route(trace);
  EXPECT_TRUE(result.job_traces.empty());
  EXPECT_EQ(result.flows_routed, 0u);
  EXPECT_EQ(result.flows_unattributed, 1u);
}

}  // namespace
}  // namespace llmprism
