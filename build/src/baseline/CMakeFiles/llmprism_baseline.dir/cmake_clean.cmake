file(REMOVE_RECURSE
  "CMakeFiles/llmprism_baseline.dir/eval.cpp.o"
  "CMakeFiles/llmprism_baseline.dir/eval.cpp.o.d"
  "CMakeFiles/llmprism_baseline.dir/naive_classifier.cpp.o"
  "CMakeFiles/llmprism_baseline.dir/naive_classifier.cpp.o.d"
  "CMakeFiles/llmprism_baseline.dir/step_divider.cpp.o"
  "CMakeFiles/llmprism_baseline.dir/step_divider.cpp.o.d"
  "libllmprism_baseline.a"
  "libllmprism_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmprism_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
