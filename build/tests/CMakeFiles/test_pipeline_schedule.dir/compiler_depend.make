# Empty compiler generated dependencies file for test_pipeline_schedule.
# This may be replaced when dependencies are built.
