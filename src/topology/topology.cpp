#include "llmprism/topology/topology.hpp"

namespace llmprism {

namespace {

/// Flow-level ECMP: a pair of endpoints always hashes to the same spine,
/// mirroring 5-tuple hashing on real fabrics (stable per connection).
std::uint32_t ecmp_hash(GpuId src, GpuId dst) {
  std::uint64_t z = (static_cast<std::uint64_t>(src.value()) << 32) |
                    dst.value();
  z ^= z >> 33;
  z *= 0xff51afd7ed558ccdULL;
  z ^= z >> 33;
  z *= 0xc4ceb9fe1a85ec53ULL;
  z ^= z >> 33;
  return static_cast<std::uint32_t>(z);
}

}  // namespace

ClusterTopology ClusterTopology::build(const TopologyConfig& config) {
  if (config.num_machines == 0) {
    throw std::invalid_argument("topology: num_machines must be > 0");
  }
  if (config.gpus_per_machine == 0) {
    throw std::invalid_argument("topology: gpus_per_machine must be > 0");
  }
  if (config.machines_per_leaf == 0) {
    throw std::invalid_argument("topology: machines_per_leaf must be > 0");
  }
  if (config.num_spines == 0) {
    throw std::invalid_argument("topology: num_spines must be > 0");
  }
  return ClusterTopology(config);
}

ClusterTopology::ClusterTopology(TopologyConfig config)
    : config_(config),
      num_gpus_(config.num_machines * config.gpus_per_machine),
      num_leaves_((config.num_machines + config.machines_per_leaf - 1) /
                  config.machines_per_leaf) {}

void ClusterTopology::check_gpu(GpuId gpu) const {
  if (!gpu.valid() || gpu.value() >= num_gpus_) {
    throw std::out_of_range("topology: GPU id out of range");
  }
}

MachineId ClusterTopology::machine_of(GpuId gpu) const {
  check_gpu(gpu);
  return MachineId(gpu.value() / config_.gpus_per_machine);
}

std::vector<GpuId> ClusterTopology::gpus_on(MachineId machine) const {
  if (!machine.valid() || machine.value() >= config_.num_machines) {
    throw std::out_of_range("topology: machine id out of range");
  }
  std::vector<GpuId> out;
  out.reserve(config_.gpus_per_machine);
  const std::uint32_t base = machine.value() * config_.gpus_per_machine;
  for (std::uint32_t i = 0; i < config_.gpus_per_machine; ++i) {
    out.emplace_back(base + i);
  }
  return out;
}

SwitchId ClusterTopology::leaf_of(MachineId machine) const {
  if (!machine.valid() || machine.value() >= config_.num_machines) {
    throw std::out_of_range("topology: machine id out of range");
  }
  return SwitchId(machine.value() / config_.machines_per_leaf);
}

SwitchPath ClusterTopology::route(GpuId src, GpuId dst) const {
  check_gpu(src);
  check_gpu(dst);
  const MachineId m_src = machine_of(src);
  const MachineId m_dst = machine_of(dst);
  SwitchPath path;
  if (m_src == m_dst) return path;  // intra-machine: invisible to switches
  const SwitchId leaf_src = leaf_of(m_src);
  const SwitchId leaf_dst = leaf_of(m_dst);
  path.push_back(leaf_src);
  if (leaf_src != leaf_dst) {
    const std::uint32_t spine_idx = ecmp_hash(src, dst) % config_.num_spines;
    path.push_back(SwitchId(num_leaves_ + spine_idx));
    path.push_back(leaf_dst);
  }
  return path;
}

}  // namespace llmprism
