# Empty compiler generated dependencies file for llmprism_common.
# This may be replaced when dependencies are built.
