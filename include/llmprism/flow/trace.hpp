// FlowTrace: a time-ordered collection of flow records plus the index
// structures the analysis phases need (per-pair, per-endpoint, per-switch).
//
// The data plane follows a sort-once discipline (DESIGN.md, "Flow data
// plane"): a trace is physically sorted at most once at the ingest
// boundary, and every later stage either preserves order (routing,
// windowing, merging) or verifies it. FlowTrace caches what it knows
// about its own ordering so sort() on an already-sorted trace is free,
// and sorted runs combine via O(N) merges instead of append + re-sort.
// Physical sorts are counted in `llmprism_flowtrace_sorts_total` so the
// discipline is observable, not assumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "llmprism/common/time.hpp"
#include "llmprism/flow/flow.hpp"

namespace llmprism {

struct FlowView;

class FlowTrace {
 public:
  FlowTrace() = default;
  explicit FlowTrace(std::vector<FlowRecord> flows);

  /// Maintains the sortedness cache incrementally: appending a flow that
  /// is not before the current back keeps a sorted trace known-sorted.
  void add(FlowRecord flow);
  void reserve(std::size_t n) { flows_.reserve(n); }

  /// Append all flows of `other`. Sortedness stays known when both sides
  /// are known-sorted and the boundary is ordered; otherwise it becomes
  /// unknown until the next verify or sort.
  void append(const FlowTrace& other);

  /// Move-append: same sortedness semantics, but `other`'s storage is
  /// stolen (wholesale when this trace is empty). Used by the parallel
  /// CSV decoder to stitch per-chunk traces without copying records.
  void append(FlowTrace&& other);

  /// Sort by start time (ordering via FlowStartTimeLess). No-op on a
  /// trace that is already sorted; a physical sort increments the
  /// process-wide `llmprism_flowtrace_sorts_total` counter.
  void sort();

  /// True iff flows are in FlowStartTimeLess order. O(1) when the cache
  /// knows; otherwise one O(N) verify whose positive result is cached.
  [[nodiscard]] bool is_sorted() const;

  /// Merge a sorted `other` into this sorted trace in O(N + M). Both
  /// sides are sorted first if needed (no-ops when already sorted). Ties
  /// keep this trace's flows before `other`'s.
  void merge_sorted(FlowTrace other);

  /// K-way merge of sorted runs in O(N log K). Runs are sorted first if
  /// needed. Ties across runs resolve to the lower run index, so the
  /// result is deterministic in the runs' order.
  [[nodiscard]] static FlowTrace merge_sorted_runs(
      std::vector<FlowTrace> runs);

  /// Drop every flow with start_time < t. Requires a sorted trace
  /// (binary search); throws std::logic_error otherwise.
  void drop_before(TimeNs t);

  [[nodiscard]] std::size_t size() const { return flows_.size(); }
  [[nodiscard]] bool empty() const { return flows_.empty(); }
  [[nodiscard]] const FlowRecord& operator[](std::size_t i) const {
    return flows_[i];
  }
  [[nodiscard]] std::span<const FlowRecord> flows() const { return flows_; }
  [[nodiscard]] auto begin() const { return flows_.begin(); }
  [[nodiscard]] auto end() const { return flows_.end(); }

  /// Flows whose start time falls in [window.begin, window.end).
  /// Requires a sorted trace (binary search); throws otherwise.
  [[nodiscard]] FlowTrace window(TimeWindow w) const;

  /// Earliest start / latest end over all flows; {0,0} when empty.
  [[nodiscard]] TimeWindow span() const;

 private:
  struct SortedTag {};
  FlowTrace(std::vector<FlowRecord> flows, SortedTag)
      : flows_(std::move(flows)), sorted_(true) {}

  std::vector<FlowRecord> flows_;
  /// true = known sorted; false = unknown (verified on demand). Mutable
  /// so a successful is_sorted() verify can cache its result. Not a
  /// synchronization point: a FlowTrace is never mutated concurrently.
  mutable bool sorted_ = true;
};

/// CSR-style per-pair index over a trace: unordered GPU pairs are
/// interned to dense ids in first-appearance order, and each pair's flow
/// positions live contiguously in one flat array (trace order preserved
/// within a pair). Shared by comm-type identification, timeline
/// reconstruction, and noise injection, so the trace is scanned once
/// instead of each consumer rebuilding a map of vectors.
class PairIndex {
 public:
  static constexpr std::uint32_t kNoPair = 0xffffffffu;

  PairIndex() = default;
  explicit PairIndex(const FlowTrace& trace);
  /// Columnar build: radix-partitioned grouping (counting pass + prefix
  /// sum + stable scatter over hash buckets) instead of per-flow
  /// unordered_map interning. Produces the identical index — dense ids in
  /// first-appearance order, positions in trace order within each pair.
  explicit PairIndex(const FlowView& view);

  [[nodiscard]] std::size_t num_pairs() const { return pairs_.size(); }
  [[nodiscard]] std::size_t num_flows() const { return pair_of_flow_.size(); }

  /// Pair for a dense id; ids run [0, num_pairs) in first-appearance order.
  [[nodiscard]] const GpuPair& pair(std::size_t id) const {
    return pairs_[id];
  }
  [[nodiscard]] const std::vector<GpuPair>& pairs() const { return pairs_; }

  /// Trace positions of a pair's flows, in trace order.
  [[nodiscard]] std::span<const std::size_t> positions(std::size_t id) const {
    return {positions_.data() + offsets_[id], offsets_[id + 1] - offsets_[id]};
  }

  /// Dense id for a pair, or kNoPair if the pair never appears.
  [[nodiscard]] std::uint32_t id_of(GpuPair p) const {
    const auto it = id_of_.find(p);
    return it == id_of_.end() ? kNoPair : it->second;
  }

  /// Per trace position, the dense id of that flow's pair.
  [[nodiscard]] std::span<const std::uint32_t> pair_of_flow() const {
    return pair_of_flow_;
  }

 private:
  std::vector<GpuPair> pairs_;                       ///< id -> pair
  std::unordered_map<GpuPair, std::uint32_t> id_of_; ///< pair -> id
  std::vector<std::size_t> offsets_;                 ///< num_pairs + 1
  std::vector<std::size_t> positions_;               ///< flat, trace order
  std::vector<std::uint32_t> pair_of_flow_;          ///< per trace position
};

/// Flow indices grouped per switch traversed.
[[nodiscard]] std::unordered_map<SwitchId, std::vector<std::size_t>>
build_switch_index(const FlowTrace& trace);

/// All distinct GPU endpoints appearing in the trace.
[[nodiscard]] std::unordered_set<GpuId> endpoints(const FlowTrace& trace);

/// All distinct unordered communication pairs in the trace.
[[nodiscard]] std::vector<GpuPair> communication_pairs(const FlowTrace& trace);

}  // namespace llmprism
