// Reproduces Fig. 3 (§V-A): LLM training job recognition on a cluster with
// 2,880 GPUs hosting 19 tenant jobs, from a one-minute flow window.
//
// Paper result: LLMPrism first finds the cross-machine clusters (more than
// one per job — TP lanes are invisible at switches), then merges them via
// the physical topology into exactly 19 job-level clusters, manually
// verified correct.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "llmprism/baseline/eval.hpp"
#include "llmprism/core/job_recognition.hpp"

using namespace llmprism;
using namespace llmprism::bench;

namespace {

JobSimConfig tenant(std::uint32_t tp, std::uint32_t dp, std::uint32_t pp,
                    bool zero_overlap = false) {
  JobSimConfig job;
  job.parallelism = {.tp = tp, .dp = dp, .pp = pp, .micro_batches = 4};
  job.zero_overlap = zero_overlap;
  job.num_steps = 12;  // ~8 s of traffic; recognition needs far less
  return job;
}

}  // namespace

int main() {
  std::printf("=== Fig. 3: job recognition on a 2,880-GPU cluster ===\n\n");

  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 360,   // 360 x 8 = 2,880 GPUs
                  .gpus_per_machine = 8,
                  .machines_per_leaf = 18,
                  .num_spines = 8};
  cfg.seed = 2880;

  // 19 tenant jobs with a realistic size mix (2,080 of 2,880 GPUs rented).
  const std::vector<JobSimConfig> jobs = {
      tenant(8, 16, 4),        // 512
      tenant(8, 8, 4),         // 256
      tenant(8, 16, 2, true),  // 256
      tenant(8, 8, 2),         // 128
      tenant(8, 4, 4),         // 128
      tenant(4, 16, 2),        // 128
      tenant(8, 16, 1, true),  // 128
      tenant(8, 4, 2),         // 64
      tenant(8, 2, 4),         // 64
      tenant(4, 8, 2),         // 64
      tenant(8, 8, 1, true),   // 64
      tenant(2, 16, 2),        // 64
      tenant(8, 2, 2),         // 32
      tenant(8, 4, 1),         // 32
      tenant(4, 4, 2),         // 32
      tenant(8, 2, 2, true),   // 32
      tenant(4, 8, 1),         // 32
      tenant(8, 1, 4),         // 32
      tenant(2, 8, 2),         // 32
  };
  std::uint32_t total_gpus = 0;
  for (const auto& j : jobs) {
    cfg.jobs.push_back({j, {}});
    total_gpus += j.parallelism.world_size();
  }
  std::printf("cluster: %u GPUs, %u machines; %zu jobs using %u GPUs\n",
              360 * 8, 360u, jobs.size(), total_gpus);

  Stopwatch sim_watch;
  const ClusterSimResult sim = run_cluster_sim(cfg);
  std::printf("simulated %zu flows in %.1f s\n\n", sim.trace.size(),
              sim_watch.seconds());

  // One-minute window (the whole trace if shorter, as here).
  const TimeWindow window{0, std::min<TimeNs>(kMinute, sim.trace.span().end)};
  const FlowTrace flows = sim.trace.window(window);

  Stopwatch watch;
  const JobRecognizer recognizer(sim.topology);
  const auto result = recognizer.recognize(flows);
  const double elapsed = watch.seconds();
  const auto score = score_job_recognition(result, std::span(sim.jobs));

  std::printf("window length              : %.1f s\n",
              to_seconds(flows.span().length()));
  std::printf("flows analyzed             : %zu\n", flows.size());
  std::printf("cross-machine clusters (1) : %zu\n",
              result.num_cross_machine_clusters);
  std::printf("job-level clusters     (2) : %zu   (paper: 19)\n",
              result.jobs.size());
  std::printf("exact GPU-set matches      : %zu / %zu\n", score.exact_matches,
              score.true_jobs);
  std::printf("recognition wall time      : %.2f s\n\n", elapsed);

  std::printf("recognized jobs:\n");
  std::printf("  job | GPUs | machines | phase-1 clusters merged\n");
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    std::printf("  %3zu | %4zu | %8zu | %zu\n", j, result.jobs[j].gpus.size(),
                result.jobs[j].machines.size(),
                result.jobs[j].cross_machine_clusters.size());
  }

  // Deployment-experience extra: how short can the window get?
  std::printf("\nwindow-length robustness (jobs recognized / exact):\n");
  for (const DurationNs w : {kSecond, 2 * kSecond, 5 * kSecond, 10 * kSecond,
                             30 * kSecond, kMinute}) {
    const FlowTrace slice = sim.trace.window({0, w});
    const auto r = recognizer.recognize(slice);
    const auto s = score_job_recognition(r, std::span(sim.jobs));
    std::printf("  %5.0f s window: %2zu jobs, %2zu exact\n", to_seconds(w),
                r.jobs.size(), s.exact_matches);
  }
  return score.perfect() ? 0 : 1;
}
