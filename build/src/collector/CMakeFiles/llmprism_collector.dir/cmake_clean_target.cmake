file(REMOVE_RECURSE
  "libllmprism_collector.a"
)
