# Empty dependencies file for llmprism_bocd.
# This may be replaced when dependencies are built.
