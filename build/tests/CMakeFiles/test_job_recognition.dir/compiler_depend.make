# Empty compiler generated dependencies file for test_job_recognition.
# This may be replaced when dependencies are built.
