file(REMOVE_RECURSE
  "libllmprism_sim.a"
)
