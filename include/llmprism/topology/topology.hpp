// Physical cluster topology: machines hosting GPUs, wired into a two-tier
// Clos fabric (leaf/ToR switches and spine switches).
//
// Platform providers know this topology (it is their own hardware); Alg. 1
// uses it to merge cross-machine clusters into job-level clusters, and the
// switch-level diagnosis aggregates flows per switch.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "llmprism/common/ids.hpp"
#include "llmprism/flow/flow.hpp"

namespace llmprism {

struct TopologyConfig {
  std::uint32_t num_machines = 0;
  std::uint32_t gpus_per_machine = 8;   ///< one NIC per GPU (RoCE convention)
  std::uint32_t machines_per_leaf = 16; ///< machines under one ToR switch
  std::uint32_t num_spines = 4;         ///< spine switches (ECMP fan-out)
};

/// Immutable cluster topology with deterministic flow routing.
///
/// Id layout:
///   GpuId      g in [0, num_gpus): machine g / gpus_per_machine
///   SwitchId   s in [0, num_leaves) are leaves; [num_leaves, +num_spines)
///              are spines.
class ClusterTopology {
 public:
  /// Validates the configuration and precomputes derived sizes.
  /// Throws std::invalid_argument on zero-sized dimensions.
  static ClusterTopology build(const TopologyConfig& config);

  [[nodiscard]] const TopologyConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t num_gpus() const { return num_gpus_; }
  [[nodiscard]] std::uint32_t num_machines() const {
    return config_.num_machines;
  }
  [[nodiscard]] std::uint32_t num_leaves() const { return num_leaves_; }
  [[nodiscard]] std::uint32_t num_spines() const { return config_.num_spines; }
  [[nodiscard]] std::uint32_t num_switches() const {
    return num_leaves_ + config_.num_spines;
  }

  [[nodiscard]] MachineId machine_of(GpuId gpu) const;
  [[nodiscard]] bool same_machine(GpuId a, GpuId b) const {
    return machine_of(a) == machine_of(b);
  }

  /// GPUs hosted on `machine`, in id order.
  [[nodiscard]] std::vector<GpuId> gpus_on(MachineId machine) const;

  /// Leaf (ToR) switch a machine is cabled to.
  [[nodiscard]] SwitchId leaf_of(MachineId machine) const;

  [[nodiscard]] bool is_leaf(SwitchId sw) const {
    return sw.value() < num_leaves_;
  }
  [[nodiscard]] bool is_spine(SwitchId sw) const {
    return sw.value() >= num_leaves_ && sw.value() < num_switches();
  }

  /// Deterministic ECMP route between two GPUs:
  ///  - same machine: empty path (traffic never reaches a switch; this is
  ///    exactly why TP communication is invisible to LLMPrism),
  ///  - same leaf: {leaf},
  ///  - otherwise: {src leaf, spine chosen by a hash of (src, dst), dst leaf}.
  [[nodiscard]] SwitchPath route(GpuId src, GpuId dst) const;

 private:
  explicit ClusterTopology(TopologyConfig config);
  void check_gpu(GpuId gpu) const;

  TopologyConfig config_;
  std::uint32_t num_gpus_ = 0;
  std::uint32_t num_leaves_ = 0;
};

}  // namespace llmprism
