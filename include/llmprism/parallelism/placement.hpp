// Placement of one job's ranks onto cluster GPUs.
//
// Ranks are packed in order onto the job's machine list (gpus_per_machine
// consecutive ranks per machine). With the Megatron rank order (tp fastest)
// and tp dividing gpus_per_machine, every TP group lands on one machine —
// the standard deployment and the reason TP traffic never crosses a switch.
#pragma once

#include <unordered_map>
#include <vector>

#include "llmprism/parallelism/config.hpp"
#include "llmprism/topology/topology.hpp"

namespace llmprism {

class JobPlacement {
 public:
  /// Places `ranks` of `rank_map` onto `machines` (in order) of `topology`.
  ///
  /// Throws std::invalid_argument if the machine list capacity does not
  /// exactly match the world size, or if `require_tp_intra_node` and some TP
  /// group would span machines.
  JobPlacement(const RankMap& rank_map, std::vector<MachineId> machines,
               const ClusterTopology& topology,
               bool require_tp_intra_node = true);

  [[nodiscard]] const std::vector<MachineId>& machines() const {
    return machines_;
  }

  [[nodiscard]] GpuId gpu_of(RankId rank) const;
  /// Rank of a GPU, or an invalid RankId if the GPU is not part of this job.
  [[nodiscard]] RankId rank_of(GpuId gpu) const;

  [[nodiscard]] std::vector<GpuId> all_gpus() const;

 private:
  std::vector<MachineId> machines_;
  std::vector<GpuId> rank_to_gpu_;
  std::unordered_map<GpuId, RankId> gpu_to_rank_;
};

/// Undirected ring edges of a communication `group` for ring channel
/// `channel`. Each NCCL-style channel visits the group in a different cyclic
/// order (stride coprime with the group size), so multiple channels give a
/// DP group a denser communication graph. Groups of size < 2 have no edges;
/// a group of size 2 has the single possible edge for every channel.
[[nodiscard]] std::vector<std::pair<RankId, RankId>> ring_edges(
    const std::vector<RankId>& group, std::uint32_t channel);

}  // namespace llmprism
