// The umbrella header contract: `#include "llmprism/llmprism.hpp"` — and
// nothing else from the library — must be enough to drive the whole
// public API: simulate, analyze one-shot, render, and run the online
// monitor with the session engine. This is a compile-time guarantee as
// much as a runtime one; keep this file's include list to the single
// umbrella header.
#include "llmprism/llmprism.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace llmprism {
namespace {

ClusterSimResult small_cluster() {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 4, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 2, .pp = 2, .micro_batches = 4};
  job.num_steps = 6;
  cfg.jobs.push_back({job, {}});
  cfg.seed = 7;
  return run_cluster_sim(cfg);
}

TEST(UmbrellaHeaderTest, QuickstartLoopCompilesAndRuns) {
  const ClusterSimResult sim = small_cluster();
  ASSERT_FALSE(sim.trace.empty());

  // One-shot analysis + both renderers.
  PrismConfig config;
  ASSERT_TRUE(config.validate().empty());
  const Prism prism(sim.topology, config);
  const PrismReport report = prism.analyze(sim.trace);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_FALSE(render_report_summary(report).empty());
  std::stringstream json;
  write_report_json(json, report);
  EXPECT_NE(json.str().find("\"schema_version\""), std::string::npos);

  // CSV round trip through the io layer.
  std::stringstream csv;
  write_csv(csv, sim.trace);
  const ParseResult parsed = read_csv_checked(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.trace.size(), sim.trace.size());

  // The streaming monitor with the session engine on.
  MonitorConfig monitor_config;
  monitor_config.window = kSecond;
  ASSERT_TRUE(monitor_config.validate().empty());
  OnlineMonitor monitor(sim.topology, monitor_config);
  auto ticks = monitor.ingest(sim.trace);
  if (auto last = monitor.flush()) ticks.push_back(std::move(*last));
  EXPECT_FALSE(ticks.empty());
  ASSERT_NE(monitor.session(), nullptr);
  EXPECT_GT(monitor.session()->counters().windows, 0u);
}

}  // namespace
}  // namespace llmprism
