// Bounded ingest queues for the serving daemon (DESIGN.md §15).
//
// The daemon's reader threads hand parsed flow chunks to shard workers
// through a bounded queue — THE backpressure mechanism: push blocks while
// the queue is full, so a shard whose analysis falls behind slows its
// producers down instead of buffering without bound. Two implementations
// share one interface, selectable at runtime (ServeConfig::queue_impl,
// `prismd --queue-impl`):
//
//  * MutexQueue — the classic mutex + two condition variables around a
//    deque. Exact depth accounting, simplest possible reasoning.
//  * MpscRingQueue — a bounded lock-free ring (Vyukov's bounded MPMC
//    design: per-cell sequence numbers; used here many-producer /
//    single-consumer). The hot push/pop path is a CAS plus two
//    fence-free atomic ops and never takes a lock; blocking is layered
//    on top with spin-then-park (a mutex + condvar used ONLY while a
//    side is actually parked, with timed waits as a lost-wakeup
//    backstop).
//
// Memory-ordering contract of the ring (the argument TSan checks):
//  * A producer claims cell `pos` with a relaxed CAS on enqueue_pos_ —
//    claiming only orders producers among themselves.
//  * The value write happens-before the consumer's read because the
//    producer release-stores seq = pos + 1 after writing the value, and
//    the consumer acquire-loads seq before reading it.
//  * Symmetrically, the consumer release-stores seq = pos + capacity
//    after moving the value out, which is what licenses a producer to
//    overwrite the cell one lap later.
//  * Close protocol: a producer raises inflight_pushes_ then re-checks
//    closed_ (both seq_cst); close() stores closed_ then spin-waits for
//    inflight_pushes_ == 0 before release-storing settled_. So either a
//    racing producer observes closed_ and backs out, or close() observes
//    its raised count and waits — the consumer only treats "empty" as
//    final once settled_ is set, which is why no accepted item can land
//    after the consumer exited.
//
// Both queues preserve per-producer FIFO (chunks of one connection are
// analyzed in send order); the single consumer sees claimed cells in
// ring order.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

namespace llmprism::serve {

enum class QueueImpl : std::uint8_t {
  kMutex,     ///< mutex + condvar deque
  kLockFree,  ///< bounded lock-free ring, spin-then-park blocking
};

[[nodiscard]] constexpr std::string_view to_string(QueueImpl impl) {
  return impl == QueueImpl::kMutex ? "mutex" : "lockfree";
}

/// Parse a --queue-impl value; nullopt on unknown names.
[[nodiscard]] inline std::optional<QueueImpl> parse_queue_impl(
    std::string_view name) {
  if (name == "mutex") return QueueImpl::kMutex;
  if (name == "lockfree") return QueueImpl::kLockFree;
  return std::nullopt;
}

/// What one blocking push did — `blocked` feeds the backpressure
/// telemetry (counted once per blocking episode, not per retry).
struct PushOutcome {
  bool accepted = false;  ///< false: the queue was closed, item dropped
  bool blocked = false;   ///< the producer had to wait for capacity
};

/// The shared contract: push blocks while full (false once closed), pop
/// blocks until an item arrives or the queue is closed AND drained.
template <typename T>
class BoundedQueue {
 public:
  virtual ~BoundedQueue() = default;

  [[nodiscard]] virtual PushOutcome push(T item) = 0;
  [[nodiscard]] virtual std::optional<T> pop() = 0;
  virtual void close() = 0;
  /// Items currently queued. Exact for MutexQueue; a racy (but never
  /// negative) snapshot for the ring.
  [[nodiscard]] virtual std::size_t depth() const = 0;
};

// ---------------------------------------------------------------------------
// MutexQueue

template <typename T>
class MutexQueue final : public BoundedQueue<T> {
 public:
  explicit MutexQueue(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] PushOutcome push(T item) override {
    PushOutcome outcome;
    std::unique_lock lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      outcome.blocked = true;
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) return outcome;
    items_.push_back(std::move(item));
    outcome.accepted = true;
    not_empty_.notify_one();
    return outcome;
  }

  [[nodiscard]] std::optional<T> pop() override {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void close() override {
    {
      const std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const override {
    const std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// MpscRingQueue

template <typename T>
class MpscRingQueue final : public BoundedQueue<T> {
 public:
  /// Capacity is rounded UP to the next power of two (the ring masks
  /// instead of dividing), so the effective bound may exceed the request.
  explicit MpscRingQueue(std::size_t capacity)
      : cells_(round_up_pow2(capacity)), mask_(cells_.size() - 1) {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] PushOutcome push(T item) override {
    PushOutcome outcome;
    // Entry protocol vs close(): raise the in-flight count, THEN re-check
    // closed (both seq_cst). Either this producer sees closed_ and backs
    // out, or close() sees the raised count and waits for the push to
    // settle — so "accepted" always implies "drained by the consumer".
    if (closed_.load(std::memory_order_seq_cst)) return outcome;
    inflight_pushes_.fetch_add(1, std::memory_order_seq_cst);
    if (closed_.load(std::memory_order_seq_cst)) {
      inflight_pushes_.fetch_sub(1, std::memory_order_release);
      return outcome;
    }
    if (try_push(item)) {
      outcome.accepted = true;
    } else {
      // Full (or momentarily contended): spin briefly — analysis of one
      // chunk takes far longer than a pop, so a free slot usually appears
      // without parking — then park with timed waits.
      for (int spin = 0; spin < spin_tries() && !outcome.accepted; ++spin) {
        if (closed_.load(std::memory_order_acquire)) break;
        outcome.accepted = try_push(item);
      }
      if (!outcome.accepted && !closed_.load(std::memory_order_acquire)) {
        outcome.blocked = true;
        std::unique_lock lock(park_mu_);
        parked_producers_.fetch_add(1, std::memory_order_seq_cst);
        for (;;) {
          if (closed_.load(std::memory_order_acquire)) break;
          if (try_push(item)) {
            outcome.accepted = true;
            break;
          }
          // The timeout is a backstop against the unavoidable park/wake
          // race (consumer pops between our last try and the wait), not
          // the signalling mechanism.
          not_full_.wait_for(lock, kParkTimeout);
        }
        parked_producers_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    inflight_pushes_.fetch_sub(1, std::memory_order_release);
    if (outcome.accepted) wake_consumer();
    return outcome;
  }

  [[nodiscard]] std::optional<T> pop() override {
    T item;
    if (try_pop(item)) {
      wake_producers();
      return item;
    }
    for (int spin = 0; spin < spin_tries(); ++spin) {
      if (try_pop(item)) {
        wake_producers();
        return item;
      }
      // Drain-after-close: only exit once a try sees the queue empty
      // AND the close settled (every in-flight push finished), because
      // only then is "empty" final.
      if (settled_.load(std::memory_order_acquire)) {
        if (try_pop(item)) {
          wake_producers();
          return item;
        }
        return std::nullopt;
      }
    }
    std::unique_lock lock(park_mu_);
    parked_consumers_.fetch_add(1, std::memory_order_seq_cst);
    std::optional<T> out;
    for (;;) {
      if (try_pop(item)) {
        out = std::move(item);
        break;
      }
      if (settled_.load(std::memory_order_acquire)) break;
      not_empty_.wait_for(lock, kParkTimeout);
    }
    parked_consumers_.fetch_sub(1, std::memory_order_relaxed);
    lock.unlock();
    if (out) wake_producers();
    return out;
  }

  void close() override {
    closed_.store(true, std::memory_order_seq_cst);
    {
      // Wake blocked producers first: a parked push holds an in-flight
      // count that the settle wait below needs released.
      const std::lock_guard lock(park_mu_);
      not_empty_.notify_all();
      not_full_.notify_all();
    }
    // Settle: wait for every push that entered before closed_ became
    // visible to finish (accepting or dropping its item). Bounded by the
    // park timeout — parked producers re-check closed_ at least every
    // kParkTimeout.
    while (inflight_pushes_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    settled_.store(true, std::memory_order_release);
    const std::lock_guard lock(park_mu_);
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const override {
    const std::size_t tail = dequeue_pos_.load(std::memory_order_relaxed);
    const std::size_t head = enqueue_pos_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  static constexpr int kSpinTries = 64;
  static constexpr std::chrono::milliseconds kParkTimeout{1};

  /// Spinning only pays when the other side can make progress on another
  /// core; on a single-core host it burns the quantum the peer needs, so
  /// go straight to the park path there.
  static int spin_tries() {
    static const int tries =
        std::thread::hardware_concurrency() > 1 ? kSpinTries : 0;
    return tries;
  }

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  bool try_push(T& item) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.value = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS updated pos; retry with it.
      } else if (dif < 0) {
        return false;  // the cell is still occupied from last lap: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  bool try_pop(T& item) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          item = std::move(cell.value);
          cell.seq.store(pos + cells_.size(), std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Post-operation wakeups: a relaxed "anyone parked?" load keeps the
  /// uncontended path lock-free; the seq_cst ordering between the parked
  /// counters and the queue state, plus the timed wait, closes the
  /// remaining park/wake race.
  void wake_consumer() {
    if (parked_consumers_.load(std::memory_order_seq_cst) > 0) {
      const std::lock_guard lock(park_mu_);
      not_empty_.notify_one();
    }
  }
  void wake_producers() {
    if (parked_producers_.load(std::memory_order_seq_cst) > 0) {
      const std::lock_guard lock(park_mu_);
      // One pop frees one slot, so admit one producer — notify_all here
      // is a thundering herd under saturation. The timed waits cover the
      // case where the notified producer lost its slot to a racing push.
      not_full_.notify_one();
    }
  }

  std::vector<Cell> cells_;
  const std::size_t mask_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  std::atomic<bool> closed_{false};
  /// Set by close() once no push is in flight; the consumer's license to
  /// treat an empty ring as drained.
  std::atomic<bool> settled_{false};
  std::atomic<std::uint32_t> inflight_pushes_{0};

  std::mutex park_mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::atomic<std::uint32_t> parked_producers_{0};
  std::atomic<std::uint32_t> parked_consumers_{0};
};

/// Factory the daemon uses to honor ServeConfig::queue_impl.
template <typename T>
[[nodiscard]] std::unique_ptr<BoundedQueue<T>> make_queue(
    QueueImpl impl, std::size_t capacity) {
  if (impl == QueueImpl::kLockFree) {
    return std::make_unique<MpscRingQueue<T>>(capacity);
  }
  return std::make_unique<MutexQueue<T>>(capacity);
}

}  // namespace llmprism::serve
