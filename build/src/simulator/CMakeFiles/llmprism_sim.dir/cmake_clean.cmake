file(REMOVE_RECURSE
  "CMakeFiles/llmprism_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/llmprism_sim.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/llmprism_sim.dir/faults.cpp.o"
  "CMakeFiles/llmprism_sim.dir/faults.cpp.o.d"
  "CMakeFiles/llmprism_sim.dir/job_sim.cpp.o"
  "CMakeFiles/llmprism_sim.dir/job_sim.cpp.o.d"
  "CMakeFiles/llmprism_sim.dir/noise.cpp.o"
  "CMakeFiles/llmprism_sim.dir/noise.cpp.o.d"
  "CMakeFiles/llmprism_sim.dir/pipeline_schedule.cpp.o"
  "CMakeFiles/llmprism_sim.dir/pipeline_schedule.cpp.o.d"
  "libllmprism_sim.a"
  "libllmprism_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmprism_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
