// Human-readable rendering of reconstructed timelines and reports — the
// Fig. 4-style visualization the paper's SRE platform shows.
#pragma once

#include <ostream>
#include <span>
#include <string>

#include "llmprism/core/prism.hpp"
#include "llmprism/core/timeline.hpp"

namespace llmprism {

/// Version of the JSON export schemas below. Emitted as `schema_version`
/// (first key of the report document, header line of the timeline NDJSON)
/// so downstream SRE tooling can reject documents it does not understand.
/// Bump when a field is renamed/removed or its meaning changes; adding
/// fields is backward-compatible and needs no bump.
inline constexpr int kReportSchemaVersion = 1;

struct RenderOptions {
  std::size_t width = 100;   ///< characters across the time axis
  /// Window to render; {0,0} = the timeline's own span.
  TimeWindow window{};
};

/// One GPU's timeline as a single text lane, e.g.
///   gpu 17 |FFFF>RRRR<CCCCCC=DDDD=|
/// F/compute, >/pp_send, </pp_recv, D/dp; '.' = idle.
[[nodiscard]] std::string render_timeline_lane(const GpuTimeline& timeline,
                                               const RenderOptions& options = {});

/// Multi-rank chart with a shared time axis (chronological interleaving of
/// PP and DP per rank, as in the paper's Fig. 4).
[[nodiscard]] std::string render_timeline_chart(
    std::span<const GpuTimeline> timelines, const RenderOptions& options = {});

/// Timeline(s) as JSON lines for external tooling: a header object
/// (`{"schema_version":...}`) followed by one event object per line.
void write_timeline_json(std::ostream& os,
                         std::span<const GpuTimeline> timelines);

/// Compact textual summary of a full analysis report.
[[nodiscard]] std::string render_report_summary(const PrismReport& report);

/// Full report as a single JSON document (jobs, inferred layouts, alerts,
/// per-switch bandwidth) for SRE-platform ingestion. Timelines are omitted
/// (use write_timeline_json for those; they dominate the volume).
void write_report_json(std::ostream& os, const PrismReport& report);

}  // namespace llmprism
