// Ablation baseline for step division: a fixed multiplicative threshold on
// inter-flow intervals instead of BOCD. Simple, but requires a hand-tuned
// factor and fails when the within-step interval distribution is wide —
// the comparison bench_ablation quantifies this against BOCD.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "llmprism/common/time.hpp"

namespace llmprism {

struct ThresholdDividerConfig {
  /// Boundary when an interval exceeds factor * median(intervals).
  double factor = 10.0;
};

/// Same contract as segment_by_gaps(): indices of the first element of each
/// segment (always including 0). Throws on unsorted input.
[[nodiscard]] std::vector<std::size_t> segment_by_threshold(
    std::span<const TimeNs> timestamps, const ThresholdDividerConfig& config = {});

}  // namespace llmprism
