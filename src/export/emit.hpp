// Internal deterministic number formatting shared by the fleet exporters.
//
// Default ostream/printf double formatting is precision-ambiguous; every
// exporter output must instead be a fixed, exact function of its inputs so
// the differential suites can assert byte equality across thread counts
// and warm/cold sessions. Two formats cover everything:
//  * write_us  — a TimeNs as microseconds with exactly three fractional
//    digits (the full nanosecond, no rounding at all),
//  * write_double — shortest round-trip decimal via %.17g -> %g retry,
//    locale-independent ("C" behaviour of the printf family is assumed, as
//    everywhere else in the repo).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>

#include "llmprism/common/time.hpp"

namespace llmprism::detail {

/// Append `ns` as microseconds with three fractional digits ("1234.567").
inline void write_us(std::string& out, TimeNs ns) {
  std::uint64_t a;
  if (ns < 0) {
    out += '-';
    a = static_cast<std::uint64_t>(-(ns + 1)) + 1;
  } else {
    a = static_cast<std::uint64_t>(ns);
  }
  const std::uint64_t rem = a % 1000;
  out += std::to_string(a / 1000);
  out += '.';
  out += static_cast<char>('0' + rem / 100);
  out += static_cast<char>('0' + rem / 10 % 10);
  out += static_cast<char>('0' + rem % 10);
}

/// Append a finite double as the shortest decimal that round-trips;
/// non-finite values degrade to 0 (JSON has no NaN/Inf).
inline void write_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += '0';
    return;
  }
  char buf[32];
  for (int precision = 6; precision <= 17; precision += 2) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  out += buf;
}

inline void write_double(std::ostream& os, double v) {
  std::string s;
  write_double(s, v);
  os << s;
}

}  // namespace llmprism::detail
