// Timeline viewer: reconstruct and render per-GPU training timelines (the
// paper's Fig. 4 visualization) from a flow trace.
//
// Run:  ./examples/timeline_viewer                  (simulated demo job)
//       ./examples/timeline_viewer flows.csv        (your own trace CSV)
//       ./examples/timeline_viewer flows.csv json   (JSON events to stdout)
#include <iostream>

#include "llmprism/llmprism.hpp"

using namespace llmprism;

namespace {

/// Demo input: one 64-GPU 3D-parallel job.
ClusterSimResult demo_cluster() {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 8,
                  .gpus_per_machine = 8,
                  .machines_per_leaf = 4,
                  .num_spines = 2};
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 2, .pp = 4, .micro_batches = 6};
  job.num_steps = 6;
  cfg.jobs.push_back({job, {}});
  return run_cluster_sim(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  FlowTrace trace;
  TopologyConfig topo_config{.num_machines = 8, .gpus_per_machine = 8,
                             .machines_per_leaf = 4, .num_spines = 2};
  if (argc > 1) {
    trace = read_csv_file(argv[1]);
    trace.sort();
    // Size the topology to cover the largest GPU id in the trace.
    std::uint32_t max_gpu = 0;
    for (const GpuId g : endpoints(trace)) {
      max_gpu = std::max(max_gpu, g.value());
    }
    topo_config.num_machines = max_gpu / topo_config.gpus_per_machine + 1;
    std::cout << "loaded " << trace.size() << " flows from " << argv[1]
              << "\n";
  } else {
    const auto sim = demo_cluster();
    trace = sim.trace;
    topo_config = sim.topology.config();
    std::cout << "no trace given; simulated a demo job ("
              << trace.size() << " flows)\n";
  }

  const auto topology = ClusterTopology::build(topo_config);
  const Prism prism(topology);
  const PrismReport report = prism.analyze(trace);
  if (report.jobs.empty()) {
    std::cout << "no jobs recognized in the trace\n";
    return 1;
  }

  const JobAnalysis& job = report.jobs.front();
  const bool as_json = argc > 2 && std::string_view(argv[2]) == "json";
  if (as_json) {
    write_timeline_json(std::cout, std::span(job.timelines));
    return 0;
  }

  std::cout << "job 0: " << job.job.gpus.size() << " GPUs, "
            << job.comm_types.dp_components.size() << " DP groups\n";
  if (!job.timelines.empty() && !job.timelines.front().steps.empty()) {
    const auto& steps = job.timelines.front().steps;
    std::cout << "reconstructed " << steps.size() << " training steps; "
              << "mean duration "
              << to_seconds(steps.back().end - steps.front().end) /
                     static_cast<double>(steps.size() - 1)
              << " s\n\n";
  }

  // Render one pipeline's ranks (first 8 timelines), zoomed to two steps.
  const std::size_t lanes = std::min<std::size_t>(8, job.timelines.size());
  RenderOptions options;
  options.width = 110;
  const auto& steps = job.timelines.front().steps;
  if (steps.size() >= 4) {
    options.window = {steps[1].begin, steps[3].end};
  }
  std::cout << render_timeline_chart(std::span(job.timelines.data(), lanes),
                                     options);
  return 0;
}
