#include "llmprism/core/render.hpp"

#include <algorithm>
#include <sstream>

namespace llmprism {

namespace {

char glyph(TimelineEventKind kind) {
  switch (kind) {
    case TimelineEventKind::kPpSend:
      return '>';
    case TimelineEventKind::kPpRecv:
      return '<';
    case TimelineEventKind::kDp:
      return 'D';
    case TimelineEventKind::kCompute:
      return 'C';
  }
  return '?';
}

/// The telemetry block as JSON key/value pairs (no surrounding braces).
void write_telemetry_fields(std::ostream& os, const ReportTelemetry& t) {
  os << "\"flows_total\":" << t.flows_total
     << ",\"flows_routed\":" << t.flows_routed
     << ",\"flows_routed_via_dst\":" << t.flows_routed_via_dst
     << ",\"flows_unattributed\":" << t.flows_unattributed
     << ",\"pairs_classified\":" << t.pairs_classified
     << ",\"pairs_dp\":" << t.pairs_dp << ",\"pairs_pp\":" << t.pairs_pp
     << ",\"refinement_flips\":" << t.refinement_flips
     << ",\"artifact_size_clusters\":" << t.artifact_size_clusters
     << ",\"artifact_flows\":" << t.artifact_flows
     << ",\"artifact_segments\":" << t.artifact_segments
     << ",\"bocd_observations\":" << t.bocd_observations
     << ",\"bocd_boundaries\":" << t.bocd_boundaries
     << ",\"bocd_hard_resets\":" << t.bocd_hard_resets
     << ",\"timelines_reconstructed\":" << t.timelines_reconstructed
     << ",\"timeline_events\":" << t.timeline_events
     << ",\"steps_reconstructed\":" << t.steps_reconstructed
     << ",\"ksigma_series\":" << t.ksigma_series
     << ",\"ksigma_points\":" << t.ksigma_points
     << ",\"ksigma_alerts\":" << t.ksigma_alerts
     << ",\"incidents\":" << t.incidents
     << ",\"alerts_explained\":" << t.alerts_explained
     << ",\"alerts_orphaned\":" << t.alerts_orphaned;
}

/// One ranked culprit as a JSON object; only the field matching its kind
/// is emitted alongside the kind tag and score.
void write_culprit(std::ostream& os, const Culprit& c) {
  os << "{\"kind\":\"" << to_string(c.kind) << '"';
  switch (c.kind) {
    case CulpritKind::kRank:
      os << ",\"gpu\":" << c.gpu.value();
      break;
    case CulpritKind::kDpGroup:
      os << ",\"dp_group\":" << c.dp_group_index;
      break;
    case CulpritKind::kSwitch:
      os << ",\"switch\":" << c.switch_id.value();
      break;
  }
  os << ",\"score\":" << c.score << '}';
}

void write_victim(std::ostream& os, const Victim& v) {
  os << '{';
  if (v.kind == VictimKind::kStepAlert) {
    os << "\"kind\":\"step_alert\",\"gpu\":" << v.gpu.value();
  } else {
    os << "\"kind\":\"group_alert\",\"dp_group\":" << v.dp_group_index;
  }
  if (v.job.valid()) os << ",\"job\":" << v.job.value();
  os << ",\"step\":" << v.step_index << ",\"hops\":" << v.hops << '}';
}

void write_incident(std::ostream& os, const AttributedIncident& incident) {
  os << '{';
  if (incident.job.valid()) {
    os << "\"job\":" << incident.job.value() << ",\"step_begin\":"
       << incident.step_begin << ",\"step_end\":" << incident.step_end
       << ',';
  }
  os << "\"confidence\":" << incident.confidence << ",\"culprits\":[";
  for (std::size_t c = 0; c < incident.culprits.size(); ++c) {
    if (c != 0) os << ',';
    write_culprit(os, incident.culprits[c]);
  }
  os << "],\"victims\":[";
  for (std::size_t v = 0; v < incident.victims.size(); ++v) {
    if (v != 0) os << ',';
    write_victim(os, incident.victims[v]);
  }
  const IncidentEvidence& e = incident.evidence;
  os << "],\"evidence\":{\"step_alerts\":" << e.step_alerts
     << ",\"group_alerts\":" << e.group_alerts
     << ",\"switch_bandwidth_alerts\":" << e.switch_bandwidth_alerts
     << ",\"switch_concurrency_alerts\":" << e.switch_concurrency_alerts
     << "}}";
}

TimeWindow effective_window(const GpuTimeline& timeline,
                            const RenderOptions& options) {
  if (!options.window.empty()) return options.window;
  if (timeline.events.empty()) return {0, 1};
  return {timeline.events.front().start, timeline.events.back().end};
}

void paint_lane(std::string& lane, const GpuTimeline& timeline,
                TimeWindow window, std::size_t width) {
  const double span = static_cast<double>(window.length());
  auto column = [&](TimeNs t) {
    const double frac = static_cast<double>(t - window.begin) / span;
    const auto c = static_cast<std::ptrdiff_t>(
        frac * static_cast<double>(width));
    return std::clamp<std::ptrdiff_t>(c, 0,
                                      static_cast<std::ptrdiff_t>(width) - 1);
  };
  // Paint compute first so communication overdraws it where they overlap.
  for (int pass = 0; pass < 2; ++pass) {
    for (const TimelineEvent& e : timeline.events) {
      const bool is_compute = e.kind == TimelineEventKind::kCompute;
      if ((pass == 0) != is_compute) continue;
      if (e.end <= window.begin || e.start >= window.end) continue;
      const auto c0 = column(std::max(e.start, window.begin));
      const auto c1 = column(std::min(e.end, window.end - 1));
      for (auto c = c0; c <= c1; ++c) {
        lane[static_cast<std::size_t>(c)] = glyph(e.kind);
      }
    }
  }
}

}  // namespace

std::string render_timeline_lane(const GpuTimeline& timeline,
                                 const RenderOptions& options) {
  const TimeWindow window = effective_window(timeline, options);
  std::string lane(options.width, '.');
  paint_lane(lane, timeline, window, options.width);
  std::ostringstream oss;
  oss << "gpu " << timeline.gpu << " |" << lane << '|';
  return oss.str();
}

std::string render_timeline_chart(std::span<const GpuTimeline> timelines,
                                  const RenderOptions& options) {
  if (timelines.empty()) return "(no timelines)\n";
  TimeWindow window = options.window;
  if (window.empty()) {
    window = {timelines.front().events.empty()
                  ? 0
                  : timelines.front().events.front().start,
              1};
    for (const GpuTimeline& t : timelines) {
      if (t.events.empty()) continue;
      window.begin = std::min(window.begin, t.events.front().start);
      window.end = std::max(window.end, t.events.back().end);
    }
  }
  std::ostringstream oss;
  oss << "time window: [" << to_seconds(window.begin) << "s, "
      << to_seconds(window.end) << "s]  legend: C compute, > pp send, < pp "
         "recv, D dp, . idle\n";
  RenderOptions lane_options = options;
  lane_options.window = window;
  for (const GpuTimeline& t : timelines) {
    oss << render_timeline_lane(t, lane_options) << '\n';
  }
  return oss.str();
}

void write_timeline_json(std::ostream& os,
                         std::span<const GpuTimeline> timelines) {
  os << "{\"schema_version\":" << kReportSchemaVersion << "}\n";
  for (const GpuTimeline& t : timelines) {
    for (const TimelineEvent& e : t.events) {
      os << "{\"gpu\":" << t.gpu.value() << ",\"kind\":\""
         << to_string(e.kind) << "\",\"start_ns\":" << e.start
         << ",\"end_ns\":" << e.end;
      if (e.peer.valid()) os << ",\"peer\":" << e.peer.value();
      os << "}\n";
    }
  }
}

void write_report_json(std::ostream& os, const PrismReport& report) {
  os << "{\"schema_version\":" << kReportSchemaVersion
     << ",\"cross_machine_clusters\":"
     << report.recognition.num_cross_machine_clusters << ",\"jobs\":[";
  for (std::size_t j = 0; j < report.jobs.size(); ++j) {
    const JobAnalysis& job = report.jobs[j];
    if (j != 0) os << ',';
    os << "{\"id\":" << job.id.value() << ",\"gpus\":" << job.job.gpus.size()
       << ",\"machines\":[";
    for (std::size_t m = 0; m < job.job.machines.size(); ++m) {
      if (m != 0) os << ',';
      os << job.job.machines[m].value();
    }
    os << "],\"layout\":{\"tp\":" << job.inferred.tp
       << ",\"dp\":" << job.inferred.dp << ",\"pp\":" << job.inferred.pp
       << ",\"micro_batches\":" << job.inferred.micro_batches
       << ",\"dp_groups_complete\":"
       << (job.inferred.dp_groups_complete ? "true" : "false") << "}";
    std::size_t dp_pairs = 0;
    std::size_t pp_pairs = 0;
    for (const PairClassification& p : job.comm_types.pairs) {
      (p.type == CommType::kDP ? dp_pairs : pp_pairs) += 1;
    }
    os << ",\"dp_pairs\":" << dp_pairs << ",\"pp_pairs\":" << pp_pairs
       << ",\"dp_groups\":" << job.comm_types.dp_components.size();
    os << ",\"step_alerts\":[";
    for (std::size_t a = 0; a < job.step_alerts.size(); ++a) {
      const StepAlert& alert = job.step_alerts[a];
      if (a != 0) os << ',';
      os << "{\"gpu\":" << alert.gpu.value() << ",\"step\":"
         << alert.step_index << ",\"duration_s\":" << alert.duration_s
         << ",\"mean_s\":" << alert.mean_s << "}";
    }
    os << "],\"group_alerts\":[";
    for (std::size_t a = 0; a < job.group_alerts.size(); ++a) {
      const GroupAlert& alert = job.group_alerts[a];
      if (a != 0) os << ',';
      os << "{\"group\":" << alert.group_index << ",\"step\":"
         << alert.step_index << ",\"duration_s\":" << alert.duration_s
         << ",\"mean_s\":" << alert.mean_s << "}";
    }
    os << "]}";
  }
  os << "],\"switch_bandwidth_gbps\":{";
  for (std::size_t s = 0; s < report.switch_bandwidth_gbps.size(); ++s) {
    const auto& [sw, bw] = report.switch_bandwidth_gbps[s];
    if (s != 0) os << ',';
    os << '"' << sw.value() << "\":" << bw;
  }
  os << "},\"switch_bandwidth_alerts\":[";
  for (std::size_t a = 0; a < report.switch_bandwidth_alerts.size(); ++a) {
    const SwitchBandwidthAlert& alert = report.switch_bandwidth_alerts[a];
    if (a != 0) os << ',';
    os << "{\"switch\":" << alert.switch_id.value() << ",\"bandwidth_gbps\":"
       << alert.bandwidth_gbps << ",\"mean_gbps\":" << alert.mean_gbps << "}";
  }
  os << "],\"switch_concurrency_alerts\":[";
  for (std::size_t a = 0; a < report.switch_concurrency_alerts.size(); ++a) {
    const SwitchConcurrencyAlert& alert = report.switch_concurrency_alerts[a];
    if (a != 0) os << ',';
    os << "{\"switch\":" << alert.switch_id.value() << ",\"concurrent_flows\":"
       << alert.concurrent_flows << ",\"limit\":" << alert.limit << "}";
  }
  os << "],\"incidents\":[";
  for (std::size_t i = 0; i < report.attribution.incidents.size(); ++i) {
    if (i != 0) os << ',';
    write_incident(os, report.attribution.incidents[i]);
  }
  os << "],\"telemetry\":{";
  write_telemetry_fields(os, report.telemetry);
  os << "}}\n";
}

std::string render_report_summary(const PrismReport& report) {
  std::ostringstream oss;
  oss << "LLMPrism report\n"
      << "  cross-machine clusters: "
      << report.recognition.num_cross_machine_clusters << '\n'
      << "  recognized jobs: " << report.jobs.size() << '\n';
  for (const JobAnalysis& job : report.jobs) {
    std::size_t dp_pairs = 0;
    std::size_t pp_pairs = 0;
    for (const PairClassification& p : job.comm_types.pairs) {
      (p.type == CommType::kDP ? dp_pairs : pp_pairs) += 1;
    }
    oss << "  job " << job.id << ": " << job.job.gpus.size() << " gpus on "
        << job.job.machines.size() << " machines, " << job.trace.size()
        << " flows, " << dp_pairs << " DP pairs / " << pp_pairs
        << " PP pairs, " << job.comm_types.dp_components.size()
        << " DP groups, layout tp" << job.inferred.tp << "/dp"
        << job.inferred.dp << "/pp" << job.inferred.pp;
    if (job.inferred.micro_batches > 0) {
      oss << "/mb" << job.inferred.micro_batches;
    }
    if (!job.timelines.empty()) {
      oss << ", " << job.timelines.front().steps.size() << " steps";
    }
    if (!job.step_alerts.empty() || !job.group_alerts.empty()) {
      oss << "  [alerts: " << job.step_alerts.size() << " step, "
          << job.group_alerts.size() << " group]";
    }
    oss << '\n';
  }
  if (!report.switch_bandwidth_alerts.empty()) {
    oss << "  switch bandwidth alerts:";
    for (const SwitchBandwidthAlert& a : report.switch_bandwidth_alerts) {
      oss << " sw" << a.switch_id << "(" << a.bandwidth_gbps << "Gb/s)";
    }
    oss << '\n';
  }
  if (!report.switch_concurrency_alerts.empty()) {
    oss << "  switch concurrency alerts:";
    for (const SwitchConcurrencyAlert& a : report.switch_concurrency_alerts) {
      oss << " sw" << a.switch_id << "(" << a.concurrent_flows << ">"
          << a.limit << ")";
    }
    oss << '\n';
  }
  if (!report.attribution.incidents.empty()) {
    oss << "  incidents:\n";
    for (const AttributedIncident& incident : report.attribution.incidents) {
      const Culprit& origin = incident.culprits.front();
      oss << "    ";
      if (incident.job.valid()) {
        oss << "job " << incident.job << " steps " << incident.step_begin
            << "-" << incident.step_end << ": ";
      } else {
        oss << "cluster: ";
      }
      switch (origin.kind) {
        case CulpritKind::kRank:
          oss << "straggler gpu " << origin.gpu;
          break;
        case CulpritKind::kDpGroup:
          oss << "slow DP group " << origin.dp_group_index;
          break;
        case CulpritKind::kSwitch:
          oss << "degraded switch " << origin.switch_id;
          break;
      }
      oss << " (score " << origin.score << ", confidence "
          << incident.confidence << ", " << incident.culprits.size()
          << " culprit" << (incident.culprits.size() == 1 ? "" : "s")
          << ", " << incident.victims.size() << " victim"
          << (incident.victims.size() == 1 ? "" : "s") << ")\n";
    }
  }
  const ReportTelemetry& t = report.telemetry;
  oss << "  telemetry: " << t.flows_routed << '/' << t.flows_total
      << " flows routed (" << t.flows_routed_via_dst << " via dst, "
      << t.flows_unattributed << " unattributed), "
      << t.pairs_classified << " pairs (" << t.pairs_dp << " DP/"
      << t.pairs_pp << " PP, " << t.refinement_flips << " flips, "
      << t.artifact_size_clusters << " artifact clusters), "
      << t.bocd_observations << " BOCD obs (" << t.bocd_boundaries
      << " boundaries, " << t.bocd_hard_resets << " hard resets), "
      << t.steps_reconstructed << " steps on " << t.timelines_reconstructed
      << " timelines, k-sigma " << t.ksigma_alerts << '/' << t.ksigma_series
      << " series alerted, " << t.incidents << " incidents ("
      << t.alerts_explained << " alerts explained, " << t.alerts_orphaned
      << " orphaned)\n";
  return oss.str();
}

}  // namespace llmprism
