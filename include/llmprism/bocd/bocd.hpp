// Bayesian Online Changepoint Detection (Adams & MacKay, 2007).
//
// The paper (§IV-B) divides a pair's flow sequence into training steps by
// running BOCD over the inter-flow interval sequence: intervals within a
// step are short and stable, the gap between steps is a gross outlier, so
// the run-length posterior collapses to r = 0 at step boundaries. A
// changepoint is reported when P(r_t = 0) exceeds a threshold (0.95 in the
// paper and by default here).
//
// Observation model: Normal with unknown mean and variance under a
// Normal-Inverse-Gamma conjugate prior, giving a Student-t posterior
// predictive. The run-length distribution is pruned below a mass floor, so
// each observation costs O(active run lengths) — linear time overall.
//
// Engine layout (DESIGN.md §15): hypothesis state lives in parallel flat
// arrays (structure of arrays), not a vector of structs. Only run length,
// probability, posterior mean and posterior beta are stored — kappa and
// alpha are exact affine functions of the run length (kappa = prior_kappa
// + r, alpha = prior_alpha + r/2, both exact in binary floating point for
// the half-integral priors used everywhere), so they are derived, never
// stored. observe_batch() drives a whole series through the kernel with
// zero allocations after warm-up; prune_mass, max_run_length and the
// normalizing division are folded into one forward compaction pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "llmprism/common/time.hpp"

namespace llmprism {

struct BocdConfig {
  /// Expected run length between changepoints; hazard H = 1/lambda.
  double hazard_lambda = 64.0;
  /// Report a changepoint when the recent-run mass P(r_t <= recent_run_cap)
  /// exceeds this (paper: 0.95 on P(r_t = 0)).
  double changepoint_threshold = 0.95;

  /// Run lengths counted as "a changepoint just occurred". With the
  /// boundary observation excluded from the new run (see observe()), the
  /// hypotheses "changepoint at t" (r = 0), "changepoint at t-1 with x_t
  /// opening the new run" (r = 1), and so on genuinely compete and split
  /// the posterior mass; summing r <= cap recovers the paper's detection
  /// semantics with a robust margin.
  std::size_t recent_run_cap = 2;

  // Normal-Inverse-Gamma prior on (mean, variance) of the observations.
  double prior_mean = 0.0;
  double prior_kappa = 0.5;   ///< pseudo-observations for the mean
  double prior_alpha = 1.0;   ///< shape of the variance prior
  double prior_beta = 1.0;    ///< scale of the variance prior

  /// Run-length hypotheses with posterior mass below this are dropped.
  double prune_mass = 1e-6;
  /// Keep at most this many run-length hypotheses (the most probable ones;
  /// the run-length-0 hypothesis is always kept). On high-variance streams
  /// the posterior tail decays only like (1-hazard)^age, so a mass floor
  /// alone can leave hundreds of live components — this cap bounds the
  /// per-observation cost. Gap detection consults only the youngest few
  /// run lengths and the MAP run, both of which are decided by orders-of-
  /// magnitude likelihood ratios, so a tight cap leaves every boundary
  /// decision unchanged (the differential suite pins this on the fixture
  /// series) while making the kernel ~3x cheaper than the conservative
  /// cap of 64 the detector originally shipped with.
  std::size_t max_components = 8;
  /// Hard cap on tracked run lengths (bounds memory on pathological input).
  std::size_t max_run_length = 1u << 20;
};

/// Per-observation posterior readout of one observe_batch() step — exactly
/// the three quantities the segmenters consult, recorded at the point the
/// observation was absorbed (the same values the per-observation accessors
/// would have returned after observe()).
struct BocdReadout {
  double cp_probability = 0.0;      ///< P(r_t = 0 | x_1..t)
  double recent_probability = 0.0;  ///< P(r_t <= recent_run_cap | x_1..t)
  std::uint32_t map_run_length = 0; ///< argmax_r P(r_t = r | x_1..t)
};

/// Online BOCD detector. Feed observations one at a time with observe(), or
/// a whole series with observe_batch() — both run the same structure-of-
/// arrays kernel, so the batch is bit-identical to the loop by construction.
class BocdDetector {
 public:
  explicit BocdDetector(BocdConfig config = {});

  /// Process one observation; returns P(r_t = 0 | x_1..t).
  double observe(double x);

  /// Process a whole series (equivalent to calling observe() per element).
  void observe_batch(std::span<const double> xs);

  /// Same, recording the per-observation posterior readout into `out`
  /// (`out.size()` must equal `xs.size()`). This is the segmentation fast
  /// path: one call per series, no virtual dispatch, no allocation.
  void observe_batch(std::span<const double> xs, std::span<BocdReadout> out);

  /// Whether the most recent observation crossed the changepoint threshold.
  /// The first few observations never flag (a stream start is not a
  /// changepoint).
  [[nodiscard]] bool last_was_changepoint() const {
    return t_ > config_.recent_run_cap + 1 &&
           last_recent_probability_ > config_.changepoint_threshold;
  }
  /// P(r_t = 0 | x_1..t) after the last observation.
  [[nodiscard]] double last_cp_probability() const {
    return last_cp_probability_;
  }
  /// P(r_t <= recent_run_cap | x_1..t) after the last observation.
  [[nodiscard]] double last_recent_probability() const {
    return last_recent_probability_;
  }

  /// Maximum a-posteriori run length after the last observation.
  [[nodiscard]] std::size_t map_run_length() const {
    return last_map_run_length_;
  }

  [[nodiscard]] std::size_t observations_seen() const { return t_; }

  /// Degenerate restarts: observations under which EVERY hypothesis had
  /// (numerically) zero likelihood, forcing a hard reset from the prior.
  /// A nonzero count on well-conditioned input is a mis-tuned prior.
  [[nodiscard]] std::size_t hard_resets() const { return hard_resets_; }

  /// Restore the single-prior-hypothesis start state. Keeps the cached
  /// Student-t coefficient tables (they depend only on the prior shape).
  void reset();

  /// Re-arm the detector for a new series under a possibly different
  /// configuration (the pooled-reuse path). The lgamma / predictive
  /// coefficient caches depend only on (prior_alpha, prior_kappa) and are
  /// preserved whenever those match the previous configuration — this is
  /// what makes a pooled detector cheaper than a fresh one: the caches are
  /// the expensive part (two lgamma and one exp per run length).
  void reconfigure(const BocdConfig& config);

  [[nodiscard]] const BocdConfig& config() const { return config_; }

 private:
  /// Per-run-length constants of the fast predictive and the conjugate
  /// update; everything data-independent (run length fixes nu, kappa,
  /// alpha — only beta and the mean vary with the absorbed observations).
  /// Caching the reciprocals turns the two per-hypothesis divisions of the
  /// posterior update into multiplications.
  struct PredictiveCoeff {
    double norm = 0.0;          ///< Gamma ratio / sqrt(nu * pi)
    double inv_nu = 0.0;        ///< 1 / nu
    double kappa_factor = 0.0;  ///< (kappa+1) / (alpha*kappa); s2 = beta * kf
    double kappa = 0.0;         ///< prior_kappa + r
    double inv_kappa1 = 0.0;    ///< 1 / (kappa + 1)
    double half_ratio = 0.0;    ///< kappa / (2 * (kappa + 1))
    std::size_t power = 0;      ///< nu + 1 (integer by construction)
  };

  /// One observation through the SoA kernel; refreshes every last_* field.
  void step(double x);

  /// Posterior predictive density of a run-length-r hypothesis at x.
  [[nodiscard]] double predictive(std::uint32_t run_length, double mean,
                                  double beta, double x) const;
  /// lgamma((nu+1)/2) - lgamma(nu/2) for the run-length-r posterior
  /// (nu = 2*(prior_alpha + r/2)), extended lazily.
  [[nodiscard]] double lgamma_ratio(std::size_t run_length) const;
  /// Extend the coefficient table to cover run lengths [0, max_run].
  void ensure_coeffs(std::size_t max_run) const;

  BocdConfig config_;
  /// True when 2*prior_alpha is integral, making every nu an integer and
  /// the fast predictive exact for the model (set in ctor/reconfigure).
  bool integral_nu_ = false;

  // ---- hypothesis state, structure of arrays ----
  // Slot 0 is always the youngest (run-length-0) hypothesis. kappa/alpha
  // are derived from run_length_, so four arrays carry the full state.
  std::size_t size_ = 0;                     ///< live hypotheses
  std::vector<std::uint32_t> run_length_;
  std::vector<double> probability_;
  std::vector<double> mean_;
  std::vector<double> beta_;
  // Double buffer for the grow step (growth reads slot i while writing
  // slot i+1, so it cannot run in place); swapped back each observation.
  std::vector<std::uint32_t> next_run_length_;
  std::vector<double> next_probability_;
  std::vector<double> next_mean_;
  std::vector<double> next_beta_;
  std::vector<std::uint32_t> select_idx_;    ///< top-N selection scratch
  std::uint32_t max_run_ = 0;                ///< max live run length

  mutable std::vector<double> lgamma_ratio_cache_;
  mutable std::vector<PredictiveCoeff> predictive_coeff_cache_;

  double last_cp_probability_ = 0.0;
  double last_recent_probability_ = 0.0;
  std::uint32_t last_map_run_length_ = 0;
  std::size_t t_ = 0;
  std::size_t hard_resets_ = 0;
};

/// Thread-local pooled detector, re-armed for `config`. Every series
/// segmented on a thread reuses one detector object — and, when the prior
/// shape matches the previous series (it almost always does; only
/// prior_mean / prior_beta vary per series), the cached per-run-length
/// Student-t coefficient tables survive, eliminating the per-series
/// lgamma/exp rebuild that dominated fresh construction. Reuses are counted
/// in llmprism_bocd_detector_reuses_total. The reference stays valid for
/// the thread's lifetime; the next pooled_detector() call invalidates the
/// detector's STATE (not the reference), so finish one series before
/// acquiring the pool for the next.
[[nodiscard]] BocdDetector& pooled_detector(const BocdConfig& config);

/// Batch convenience: indices i (into `xs`) where P(r_i = 0) crossed the
/// threshold.
[[nodiscard]] std::vector<std::size_t> detect_changepoints(
    std::span<const double> xs, const BocdConfig& config = {});

struct SegmenterConfig {
  BocdConfig bocd;
  /// Timestamps closer than this are coalesced into one arrival before the
  /// interval sequence is formed. Collectives launch several flows nearly
  /// simultaneously (ring directions, channels); without coalescing those
  /// near-zero intervals make the interval distribution bimodal and inflate
  /// the learned variance, masking the step gap.
  DurationNs coalesce_gap = 200 * kMicrosecond;

  /// A BOCD-flagged boundary is accepted only if the flagged interval also
  /// exceeds gap_guard_factor x the median interval. Right after a real
  /// boundary the run-length posterior is legitimately "young" for a couple
  /// of observations; the guard rejects those small-interval flags without
  /// touching genuine step gaps (which are orders of magnitude above the
  /// median).
  double gap_guard_factor = 3.0;
};

/// Deterministic per-call work/outcome counters of segment_by_gaps —
/// telemetry the pipeline folds into PrismReport::telemetry. Pure event
/// counts (no wall clock), so totals are thread-count-invariant.
struct SegmenterStats {
  std::uint64_t observations = 0;  ///< BOCD observations consumed
  std::uint64_t boundaries = 0;    ///< segment boundaries opened
  std::uint64_t hard_resets = 0;   ///< degenerate detector restarts

  SegmenterStats& operator+=(const SegmenterStats& other) {
    observations += other.observations;
    boundaries += other.boundaries;
    hard_resets += other.hard_resets;
    return *this;
  }
};

/// Segment a sorted timestamp sequence at "large gap" boundaries.
///
/// Coalesces near-simultaneous arrivals, computes inter-arrival intervals,
/// log-transforms them (making the short intra-step intervals approximately
/// Gaussian and a step gap a gross outlier), runs BOCD over the whole
/// interval series in one observe_batch() call on the pooled detector, and
/// returns the indices (into the ORIGINAL sequence) of the first element of
/// each segment (always including 0). When `stats` is non-null the call's
/// BOCD work counters are accumulated into it.
[[nodiscard]] std::vector<std::size_t> segment_by_gaps(
    std::span<const TimeNs> timestamps, const SegmenterConfig& config = {},
    SegmenterStats* stats = nullptr);

}  // namespace llmprism
