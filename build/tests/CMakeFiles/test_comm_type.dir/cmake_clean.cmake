file(REMOVE_RECURSE
  "CMakeFiles/test_comm_type.dir/test_comm_type.cpp.o"
  "CMakeFiles/test_comm_type.dir/test_comm_type.cpp.o.d"
  "test_comm_type"
  "test_comm_type.pdb"
  "test_comm_type[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
