// Continuous monitoring walkthrough: stream a live flow feed into
// OnlineMonitor in collector-sized batches and watch windows close, jobs
// keep stable identities, and a mid-run fault raise alerts — the paper's
// production deployment mode.
//
// Run:  ./examples/online_monitor
#include <iostream>

#include "llmprism/llmprism.hpp"

using namespace llmprism;

int main() {
  // A cluster with two jobs; one develops a straggler mid-run.
  ClusterSimConfig sim_config;
  sim_config.topology = {.num_machines = 16,
                         .gpus_per_machine = 8,
                         .machines_per_leaf = 4,
                         .num_spines = 2};
  sim_config.seed = 31;

  JobSimConfig healthy;
  healthy.parallelism = {.tp = 8, .dp = 4, .pp = 1, .micro_batches = 4};
  healthy.num_steps = 40;

  JobSimConfig degraded;
  degraded.parallelism = {.tp = 8, .dp = 4, .pp = 2, .micro_batches = 4};
  degraded.num_steps = 40;
  degraded.stragglers.push_back(
      {.rank = 11, .step_begin = 25, .step_end = 27, .slowdown = 2.5});

  sim_config.jobs.push_back({healthy, {}});
  sim_config.jobs.push_back({degraded, {}});
  const ClusterSimResult sim = run_cluster_sim(sim_config);
  std::cout << "feed: " << sim.trace.size() << " flows over "
            << to_seconds(sim.trace.span().length()) << " s\n\n";

  MonitorConfig config;
  config.window = 5 * kSecond;
  OnlineMonitor monitor(sim.topology, config);

  // Stream the feed in 1-second collector batches, as a live deployment
  // would receive it.
  std::vector<MonitorTick> ticks;
  const TimeWindow span = sim.trace.span();
  for (TimeNs at = span.begin; at < span.end; at += kSecond) {
    const FlowTrace batch = sim.trace.window({at, at + kSecond});
    for (auto& tick : monitor.ingest(batch)) ticks.push_back(std::move(tick));
  }
  if (auto last = monitor.flush()) ticks.push_back(std::move(*last));

  std::cout << "window | jobs | steps seen | alerts\n";
  std::cout << "-------+------+------------+-------\n";
  for (const MonitorTick& tick : ticks) {
    std::size_t steps = 0;
    std::size_t alerts = 0;
    std::string alert_detail;
    for (const JobAnalysis& job : tick.report.jobs) {
      if (!job.timelines.empty()) steps += job.timelines.front().steps.size();
      alerts += job.step_alerts.size() + job.group_alerts.size();
      for (const StepAlert& a : job.step_alerts) {
        alert_detail = "  <- step " + std::to_string(a.step_index) +
                       " slow in window-local numbering";
        break;
      }
    }
    std::printf("%4.0f s | %4zu | %10zu | %5zu%s\n",
                to_seconds(tick.window.begin), tick.report.jobs.size(), steps,
                alerts, alert_detail.c_str());
  }

  const MonitorStats& stats = monitor.stats();
  std::cout << "\ncumulative: " << stats.windows_completed << " windows, "
            << stats.flows_ingested << " flows, " << stats.step_alerts
            << " step alerts, " << stats.group_alerts << " group alerts\n";
  std::cout << "stable jobs observed: " << monitor.jobs_seen() << '\n';
  for (const auto& [id, windows] : stats.job_windows) {
    std::cout << "  job#" << id << " seen in " << windows << " windows\n";
  }
  return 0;
}
