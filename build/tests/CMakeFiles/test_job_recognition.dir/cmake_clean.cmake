file(REMOVE_RECURSE
  "CMakeFiles/test_job_recognition.dir/test_job_recognition.cpp.o"
  "CMakeFiles/test_job_recognition.dir/test_job_recognition.cpp.o.d"
  "test_job_recognition"
  "test_job_recognition.pdb"
  "test_job_recognition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
