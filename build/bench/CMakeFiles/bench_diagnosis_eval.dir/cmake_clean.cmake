file(REMOVE_RECURSE
  "CMakeFiles/bench_diagnosis_eval.dir/bench_diagnosis_eval.cpp.o"
  "CMakeFiles/bench_diagnosis_eval.dir/bench_diagnosis_eval.cpp.o.d"
  "bench_diagnosis_eval"
  "bench_diagnosis_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagnosis_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
