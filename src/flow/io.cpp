#include "llmprism/flow/io.hpp"

#include <array>
#include <charconv>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "llmprism/common/csv.hpp"

namespace llmprism {

namespace {

constexpr std::string_view kHeader = "start_ns,src,dst,bytes,duration_ns,switches";

template <typename T>
T parse_number(std::string_view s, std::string_view what) {
  T value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("flow csv: bad " + std::string(what) + " field '" +
                             std::string(s) + "'");
  }
  return value;
}

std::string join_switches(const SwitchPath& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out += ';';
    out += std::to_string(path[i].value());
  }
  return out;
}

SwitchPath parse_switches(std::string_view s) {
  SwitchPath path;
  if (s.empty()) return path;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(';', pos);
    const std::string_view tok =
        s.substr(pos, next == std::string_view::npos ? next : next - pos);
    path.push_back(SwitchId(parse_number<std::uint32_t>(tok, "switch")));
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return path;
}

}  // namespace

void write_csv(std::ostream& os, const FlowTrace& trace) {
  os << kHeader << '\n';
  for (const FlowRecord& f : trace) {
    const std::array<std::string, 6> row = {
        std::to_string(f.start_time),    std::to_string(f.src.value()),
        std::to_string(f.dst.value()),   std::to_string(f.bytes),
        std::to_string(f.duration),      join_switches(f.switches)};
    csv::write_row(os, row);
  }
}

ParseResult read_csv_checked(std::istream& is) {
  // Line-by-line (not csv::read_all, which silently skips blank lines and
  // would lose the physical line numbers the diagnostics promise).
  ParseResult result;
  bool header_seen = false;
  std::string line;
  while (std::getline(is, line)) {
    ++result.lines_read;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!header_seen) {
      // First non-blank line is the header; anything else means the file
      // is not a flow CSV at all, so don't guess at its rows.
      if (line != kHeader) {
        result.errors.push_back(
            {result.lines_read,
             "expected header '" + std::string(kHeader) + "', got '" + line +
                 "'"});
        return result;
      }
      header_seen = true;
      continue;
    }
    std::vector<std::string> row;
    try {
      row = csv::parse_line(line);
    } catch (const std::exception& e) {
      result.errors.push_back({result.lines_read, e.what()});
      continue;
    }
    if (row.size() != 6) {
      result.errors.push_back({result.lines_read, "expected 6 fields, got " +
                                                      std::to_string(row.size())});
      continue;
    }
    try {
      FlowRecord f;
      f.start_time = parse_number<TimeNs>(row[0], "start_ns");
      f.src = GpuId(parse_number<std::uint32_t>(row[1], "src"));
      f.dst = GpuId(parse_number<std::uint32_t>(row[2], "dst"));
      f.bytes = parse_number<std::uint64_t>(row[3], "bytes");
      f.duration = parse_number<DurationNs>(row[4], "duration_ns");
      f.switches = parse_switches(row[5]);
      result.trace.add(std::move(f));
    } catch (const std::exception& e) {
      result.errors.push_back({result.lines_read, e.what()});
    }
  }
  if (!header_seen) {
    result.errors.push_back(
        {result.lines_read, "empty input (missing header)"});
  }
  return result;
}

FlowTrace read_csv(std::istream& is) {
  ParseResult result = read_csv_checked(is);
  if (!result.ok()) {
    const ParseError& first = result.errors.front();
    std::string message =
        "flow csv: line " + std::to_string(first.line) + ": " + first.message;
    if (result.errors.size() > 1) {
      message += " (+" + std::to_string(result.errors.size() - 1) +
                 " more bad lines)";
    }
    throw std::runtime_error(message);
  }
  return std::move(result.trace);
}

void write_csv_file(const std::string& path, const FlowTrace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("flow csv: cannot open for write: " + path);
  write_csv(os, trace);
}

FlowTrace read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("flow csv: cannot open for read: " + path);
  return read_csv(is);
}

}  // namespace llmprism
