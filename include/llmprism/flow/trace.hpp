// FlowTrace: a time-ordered collection of flow records plus the index
// structures the analysis phases need (per-pair, per-endpoint, per-switch).
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "llmprism/common/time.hpp"
#include "llmprism/flow/flow.hpp"

namespace llmprism {

class FlowTrace {
 public:
  FlowTrace() = default;
  explicit FlowTrace(std::vector<FlowRecord> flows);

  void add(FlowRecord flow);
  void reserve(std::size_t n) { flows_.reserve(n); }

  /// Append all flows of `other`; invalidates sortedness.
  void append(const FlowTrace& other);

  /// Sort by start time (stable ordering via FlowStartTimeLess).
  void sort();
  [[nodiscard]] bool is_sorted() const;

  [[nodiscard]] std::size_t size() const { return flows_.size(); }
  [[nodiscard]] bool empty() const { return flows_.empty(); }
  [[nodiscard]] const FlowRecord& operator[](std::size_t i) const {
    return flows_[i];
  }
  [[nodiscard]] std::span<const FlowRecord> flows() const { return flows_; }
  [[nodiscard]] auto begin() const { return flows_.begin(); }
  [[nodiscard]] auto end() const { return flows_.end(); }

  /// Flows whose start time falls in [window.begin, window.end).
  /// Requires a sorted trace (binary search); throws otherwise.
  [[nodiscard]] FlowTrace window(TimeWindow w) const;

  /// Earliest start / latest end over all flows; {0,0} when empty.
  [[nodiscard]] TimeWindow span() const;

 private:
  std::vector<FlowRecord> flows_;
};

/// Flow indices (by position into the trace) grouped per unordered pair.
/// Positions within each pair preserve trace order.
[[nodiscard]] std::unordered_map<GpuPair, std::vector<std::size_t>>
build_pair_index(const FlowTrace& trace);

/// Flow indices grouped per switch traversed.
[[nodiscard]] std::unordered_map<SwitchId, std::vector<std::size_t>>
build_switch_index(const FlowTrace& trace);

/// All distinct GPU endpoints appearing in the trace.
[[nodiscard]] std::unordered_set<GpuId> endpoints(const FlowTrace& trace);

/// All distinct unordered communication pairs in the trace.
[[nodiscard]] std::vector<GpuPair> communication_pairs(const FlowTrace& trace);

}  // namespace llmprism
