// LLM training-job recognition from network flows (paper Alg. 1, §IV-A).
//
// Phase 1: a disjoint-set over flow endpoints merges every communicating
// GPU pair, yielding *cross-machine clusters* — one per network-connected
// component. A 3D-parallel job produces `tp` such components (its TP
// traffic is intra-node and invisible), so phase 2 merges clusters whose
// physical *machine sets* are identical (Jaccard similarity = 1, looked up
// from the provider-known topology) into complete job-level clusters.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "llmprism/common/ids.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/topology/topology.hpp"

namespace llmprism {

struct JobRecognitionConfig {
  /// Clusters are merged when the Jaccard similarity of their machine sets
  /// reaches this value. The paper uses exact set equality (1.0); lowering
  /// it tolerates partially observed clusters at the cost of over-merging.
  double jaccard_threshold = 1.0;
  /// Expand each job to all GPUs hosted on its machines (GPUs that only do
  /// intra-node TP traffic never appear in flows but belong to the job).
  bool include_machine_local_gpus = true;
};

/// One recognized job-level cluster.
struct RecognizedJob {
  /// All GPUs attributed to the job, ascending. With
  /// include_machine_local_gpus this covers whole machines; otherwise only
  /// GPUs observed in flows.
  std::vector<GpuId> gpus;
  /// GPUs that actually appeared as flow endpoints.
  std::vector<GpuId> observed_gpus;
  /// Machines spanned by the job.
  std::vector<MachineId> machines;
  /// The cross-machine clusters (phase-1 components) merged into this job.
  std::vector<std::vector<GpuId>> cross_machine_clusters;
};

struct JobRecognitionResult {
  std::vector<RecognizedJob> jobs;  ///< ordered by smallest GPU id
  std::size_t num_cross_machine_clusters = 0;  ///< phase-1 component count
};

class JobRecognizer {
 public:
  explicit JobRecognizer(const ClusterTopology& topology,
                         JobRecognitionConfig config = {});

  /// Recognize all network-visible jobs in `trace`. Jobs with zero
  /// cross-machine traffic in the window cannot be observed and are absent.
  [[nodiscard]] JobRecognitionResult recognize(const FlowTrace& trace) const;

  /// Columnar overload: reads only the src/dst columns; the partition is a
  /// pure function of the undirected edge set, so both overloads agree
  /// bit for bit on the same flows.
  [[nodiscard]] JobRecognitionResult recognize(const FlowView& view) const;

 private:
  const ClusterTopology& topology_;
  JobRecognitionConfig config_;
};

}  // namespace llmprism
