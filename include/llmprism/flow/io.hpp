// Flow-trace serialization (CSV). The on-disk format mirrors what a
// production collector would export:
//
//   start_ns,src,dst,bytes,duration_ns,switches
//
// where `switches` is a ';'-joined hop list, e.g. "3;17;4".
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "llmprism/flow/trace.hpp"

namespace llmprism {

/// Write `trace` as CSV with a header row.
void write_csv(std::ostream& os, const FlowTrace& trace);

/// Parse a CSV flow trace (header row required).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] FlowTrace read_csv(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error if the file cannot
/// be opened.
void write_csv_file(const std::string& path, const FlowTrace& trace);
[[nodiscard]] FlowTrace read_csv_file(const std::string& path);

}  // namespace llmprism
