# Empty dependencies file for test_switch_timeline.
# This may be replaced when dependencies are built.
