// Multi-dimensional performance diagnosis (paper §IV-D).
//
// Three detectors over reconstructed timelines, all driven by one k-sigma
// rule (k = 3 by default; no tuned thresholds):
//  * cross-step   — a step whose duration exceeds mean + k*sigma of the
//                   job's step-duration series signals fail-slow,
//  * cross-group  — within one step, a DP group whose collective duration
//                   exceeds the across-group mean + k*sigma points at a
//                   network problem on that group's ring,
//  * switch-level — (a) concurrent distinct DP flows above a configured
//                   limit flag configuration-induced congestion; (b) a
//                   switch whose average DP bandwidth falls below the
//                   across-switch mean - k*sigma is a bottleneck suspect.
//
// Note: the paper's sigma formula (mean of signed deviations) is a typo —
// it is identically zero. We implement the standard deviation, plus a
// mean-absolute-deviation variant, selectable via Dispersion.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "llmprism/common/ids.hpp"
#include "llmprism/common/time.hpp"
#include "llmprism/core/timeline.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/flow/view.hpp"

namespace llmprism {

/// Dispersion estimator for the k-sigma rule.
///  - kStddev: mean center, standard deviation (the classic 3-sigma rule
///    the paper cites, hardened by leave-one-out below);
///  - kMad: median center, 1.4826 x median-absolute-deviation — fully
///    robust, survives several simultaneous outliers in one series.
enum class Dispersion : std::uint8_t { kStddev, kMad };

struct KSigmaConfig {
  double k = 3.0;
  Dispersion dispersion = Dispersion::kStddev;
  /// Below this many samples the detector abstains (mean/sigma unstable).
  std::size_t min_samples = 6;
  /// Score each point against the statistics of the OTHER points. Without
  /// this a single gross outlier inflates its own sigma and masks itself —
  /// with n samples the maximum attainable z-score is (n-1)/sqrt(n), so a
  /// global 3-sigma rule can never fire for n <= 9 (e.g. 8 DP groups).
  bool leave_one_out = true;
  /// A point must also exceed the reference mean by this relative margin;
  /// guards against statistically-significant-but-tiny deviations on very
  /// stable series (a 5% slower step is not an actionable incident, a 2x
  /// one is).
  double min_relative_excess = 0.2;
};

/// Deterministic work counters of the k-sigma rule: how many series and
/// points were scored and how many alerts fired. Without these, "the
/// detector ran but found nothing" and "the detector abstained on every
/// series" are indistinguishable. Event counts only (no wall clock) so
/// totals are thread-count-invariant.
struct KSigmaStats {
  /// Series handed to the rule, including ones it abstained on
  /// (size < min_samples).
  std::uint64_t series = 0;
  /// Points actually scored (abstained series contribute none).
  std::uint64_t points = 0;
  /// Outliers reported.
  std::uint64_t alerts = 0;

  KSigmaStats& operator+=(const KSigmaStats& other) {
    series += other.series;
    points += other.points;
    alerts += other.alerts;
    return *this;
  }
};

/// Indices i with xs[i] > mean + k*sigma (and above the relative margin).
[[nodiscard]] std::vector<std::size_t> ksigma_outliers_above(
    std::span<const double> xs, const KSigmaConfig& config,
    KSigmaStats* stats = nullptr);
/// Indices i with xs[i] < mean - k*sigma (and below the relative margin).
[[nodiscard]] std::vector<std::size_t> ksigma_outliers_below(
    std::span<const double> xs, const KSigmaConfig& config,
    KSigmaStats* stats = nullptr);

// ---------------------------------------------------------------------------

struct StepAlert {
  GpuId gpu;               ///< rank whose timeline flagged the step
  std::size_t step_index = 0;
  double duration_s = 0;   ///< observed step duration
  double mean_s = 0;       ///< series mean
  double threshold_s = 0;  ///< mean + k*sigma
};

struct GroupAlert {
  std::size_t group_index = 0;  ///< index into the DP components
  std::size_t step_index = 0;
  double duration_s = 0;
  double mean_s = 0;       ///< across-group mean in this step
  double threshold_s = 0;
};

struct SwitchBandwidthAlert {
  SwitchId switch_id;
  double bandwidth_gbps = 0;  ///< this switch's average DP bandwidth
  double mean_gbps = 0;       ///< across-switch mean
  double threshold_gbps = 0;  ///< mean - k*sigma
};

struct SwitchConcurrencyAlert {
  SwitchId switch_id;
  TimeNs at = 0;                      ///< when the peak was reached
  std::size_t concurrent_flows = 0;   ///< distinct simultaneous DP flows
  std::size_t limit = 0;
};

struct DiagnosisConfig {
  KSigmaConfig ksigma;
  /// k-sigma settings for the cross-switch comparison. Defaults to the
  /// robust median/MAD mode: a fabric incident often degrades SEVERAL
  /// switches at once, and simultaneous outliers mask each other under a
  /// stddev-based rule (even leave-one-out removes only one of them).
  KSigmaConfig switch_ksigma{.dispersion = Dispersion::kMad};
  /// Concurrent distinct DP flows a switch is provisioned for.
  std::size_t switch_dp_flow_limit = 256;
  /// Percentile of per-flow bandwidth used as a switch's health score (see
  /// switch_bandwidth()).
  double switch_health_percentile = 90.0;
};

/// Exponentially weighted running baseline of one scalar series (a GPU's
/// step durations), carried across analysis windows by PrismSession. The
/// variance uses the standard EWMA recurrence (var absorbs diff * incr), so
/// one struct needs no history yet tracks slow drift.
struct EwmaBaseline {
  double mean = 0.0;
  double var = 0.0;
  std::uint64_t count = 0;  ///< observations absorbed (across windows)

  void observe(double x, double alpha) {
    if (count == 0) {
      mean = x;
      var = 0.0;
    } else {
      const double diff = x - mean;
      const double incr = alpha * diff;
      mean += incr;
      var = (1.0 - alpha) * (var + diff * incr);
    }
    ++count;
  }

  [[nodiscard]] double sigma() const { return var > 0.0 ? std::sqrt(var) : 0.0; }
};

/// How cross_step_carried() consumes an EwmaBaseline.
struct EwmaStepPolicy {
  /// EWMA smoothing factor for the carried mean/variance.
  double alpha = 0.2;
  /// Baseline observations required before the carried rule may score a
  /// step (mirrors KSigmaConfig::min_samples, but counted across windows).
  std::size_t min_samples = 6;
};

class Diagnoser {
 public:
  explicit Diagnoser(DiagnosisConfig config = {});

  /// Cross-step diagnosis over one GPU's reconstructed steps. When `stats`
  /// is non-null, the k-sigma work counters accumulate into it.
  [[nodiscard]] std::vector<StepAlert> cross_step(
      const GpuTimeline& timeline, KSigmaStats* stats = nullptr) const;

  /// Cross-step over many timelines (concatenated alerts).
  [[nodiscard]] std::vector<StepAlert> cross_step(
      std::span<const GpuTimeline> timelines,
      KSigmaStats* stats = nullptr) const;

  /// Cross-step with a cross-window baseline (the session warm path).
  /// Runs the plain window-local rule first — identical alerts to
  /// cross_step() — then, when the window alone is too short for that rule
  /// to fire (fewer than min_samples scorable steps), scores each step
  /// against the carried baseline instead, so a straggler step is caught
  /// from the second window on. Every scorable step duration is folded
  /// into `baseline` afterwards. Baseline-sourced alerts are appended to
  /// the returned vector and counted in `*ewma_alerts` (when non-null);
  /// they are NOT added to `stats` (so report telemetry for the window-
  /// local rule stays field-for-field equal to the cold path).
  [[nodiscard]] std::vector<StepAlert> cross_step_carried(
      const GpuTimeline& timeline, EwmaBaseline& baseline,
      const EwmaStepPolicy& policy, KSigmaStats* stats = nullptr,
      std::uint64_t* ewma_alerts = nullptr) const;

  /// Cross-group diagnosis. durations[g][k] = DP duration (seconds) of
  /// group g in step k; rows may have differing lengths (partial windows) —
  /// each step uses the groups that observed it.
  [[nodiscard]] std::vector<GroupAlert> cross_group(
      const std::vector<std::vector<double>>& group_step_durations,
      KSigmaStats* stats = nullptr) const;

  /// Per-switch DP bandwidth degradation. `dp_flows` must contain only
  /// flows classified DP (caller filters via CommTypeResult).
  ///
  /// Each switch is scored by a high quantile (see
  /// DiagnosisConfig::switch_health_percentile) of its per-flow bandwidth
  /// rather than the mean: a flow throttled by a bad switch drags down the
  /// observed bandwidth of EVERY hop on its path, but healthy switches
  /// still carry fast flows on their unpolluted paths — so "even the best
  /// flows are slow" isolates the switch that is itself the bottleneck.
  [[nodiscard]] std::vector<SwitchBandwidthAlert> switch_bandwidth(
      const FlowTrace& dp_flows, KSigmaStats* stats = nullptr) const;
  /// Columnar core (the FlowTrace overload transposes and delegates):
  /// per-switch sample gather over the CSR hop columns, dense tables
  /// instead of hash maps, identical alerts.
  [[nodiscard]] std::vector<SwitchBandwidthAlert> switch_bandwidth(
      const FlowView& dp_flows, KSigmaStats* stats = nullptr) const;

  /// Peak concurrent distinct DP flows per switch vs. the configured limit.
  [[nodiscard]] std::vector<SwitchConcurrencyAlert> switch_concurrency(
      const FlowTrace& dp_flows) const;
  [[nodiscard]] std::vector<SwitchConcurrencyAlert> switch_concurrency(
      const FlowView& dp_flows) const;

  /// Helper: per-switch average DP bandwidth (Gb/s), for reporting (Fig. 5
  /// plots these series).
  [[nodiscard]] static std::vector<std::pair<SwitchId, double>>
  per_switch_bandwidth(const FlowTrace& dp_flows);
  [[nodiscard]] static std::vector<std::pair<SwitchId, double>>
  per_switch_bandwidth(const FlowView& dp_flows);

  /// Helper: per-switch p-th percentile of per-flow DP bandwidth (Gb/s).
  [[nodiscard]] static std::vector<std::pair<SwitchId, double>>
  per_switch_bandwidth_percentile(const FlowTrace& dp_flows, double p);
  [[nodiscard]] static std::vector<std::pair<SwitchId, double>>
  per_switch_bandwidth_percentile(const FlowView& dp_flows, double p);

 private:
  DiagnosisConfig config_;
};

/// Extract the per-(group, step) DP duration matrix from reconstructed
/// timelines, using the recovered DP components: a group's DP duration in
/// step k spans from the earliest member dp_begin to the latest member
/// dp_end. Rows are truncated to the steps every member observed.
[[nodiscard]] std::vector<std::vector<double>> group_dp_durations(
    std::span<const GpuTimeline> timelines,
    const std::vector<std::vector<GpuId>>& dp_components);

// ---------------------------------------------------------------------------
// Temporal switch analysis: when did a switch's bandwidth degrade?
// (§IV-D's per-step bandwidth degradation analysis, generalized to time
// buckets so it also works across jobs with different step lengths.)

/// One switch's bandwidth over time. Only buckets that saw DP traffic are
/// present; `bucket_begin[i]` is the start of the bucket whose average
/// bandwidth is `gbps[i]`.
struct SwitchBandwidthSeries {
  SwitchId switch_id;
  std::vector<TimeNs> bucket_begin;
  std::vector<double> gbps;
};

/// Bucket every switch's DP-flow bandwidth over time.
[[nodiscard]] std::vector<SwitchBandwidthSeries> switch_bandwidth_timeline(
    const FlowTrace& dp_flows, DurationNs bucket = 10 * kSecond);
[[nodiscard]] std::vector<SwitchBandwidthSeries> switch_bandwidth_timeline(
    const FlowView& dp_flows, DurationNs bucket = 10 * kSecond);

/// A detected persistent bandwidth drop on one switch.
struct BandwidthOnset {
  SwitchId switch_id;
  TimeNs onset = 0;         ///< begin of the first degraded bucket
  double before_gbps = 0;   ///< mean level before the onset
  double after_gbps = 0;    ///< mean level from the onset on
};

struct OnsetDetectorConfig {
  BocdConfig bocd;
  /// Report only drops to below (1 - min_drop) of the prior level.
  double min_drop = 0.3;
  /// Series shorter than this are skipped.
  std::size_t min_buckets = 8;
};

/// Detect the first persistent downward level shift of each switch's
/// bandwidth series via BOCD (values are normalized by the series median,
/// so one detector configuration serves all fabrics).
[[nodiscard]] std::vector<BandwidthOnset> detect_bandwidth_onsets(
    std::span<const SwitchBandwidthSeries> series,
    const OnsetDetectorConfig& config = {});

}  // namespace llmprism
