// Tiny leveled logger. The analysis pipeline runs continuously in
// production, so logging must be cheap when disabled: level check first,
// formatting only when the message will be emitted.
//
// The output sink is pluggable (set_sink): the CLI redirects it per
// --log-level runs, and tests capture emissions instead of scraping
// std::cerr. The default sink writes "[llmprism:LEVEL] message" lines to
// std::cerr. Sink invocations are serialized by the logger, so a sink
// needs no locking of its own.
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string_view>
#include <utility>

namespace llmprism::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Upper-case name of a level ("DEBUG" ... "OFF"). Exhaustive switch —
/// stays warning-clean under -Wswitch when levels are added.
[[nodiscard]] constexpr std::string_view level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

/// Parse a lower- or upper-case level name ("debug", "WARN", ...).
[[nodiscard]] std::optional<Level> parse_level(std::string_view name);

/// Process-wide minimum level; messages below it are dropped.
Level get_level();
void set_level(Level level);

/// Receives every emitted (level, formatted message) pair. Calls are
/// serialized by the logger's emit lock.
using Sink = std::function<void(Level, std::string_view)>;

/// Replace the output sink; an empty sink restores the std::cerr default.
/// Safe to call while other threads log.
void set_sink(Sink sink);

namespace detail {
void emit(Level level, std::string_view message);
}  // namespace detail

/// Log `message` at `level` if enabled. Message pieces are streamed, so call
/// sites read like: log::info("recognized ", jobs.size(), " jobs").
template <typename... Args>
void write(Level level, Args&&... args) {
  if (level < get_level()) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  detail::emit(level, oss.str());
}

template <typename... Args>
void debug(Args&&... args) {
  write(Level::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void info(Args&&... args) {
  write(Level::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(Args&&... args) {
  write(Level::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void error(Args&&... args) {
  write(Level::kError, std::forward<Args>(args)...);
}

}  // namespace llmprism::log
