#include "llmprism/core/diagnosis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "llmprism/common/stats.hpp"
#include "llmprism/obs/metrics.hpp"

namespace llmprism {

namespace {

/// Consistency factor making the MAD estimate sigma for Gaussian data.
constexpr double kMadToSigma = 1.4826;

/// Registry counters for k-sigma work — looked up once, bulk-added once
/// per evaluated series (never per point).
struct KSigmaMetrics {
  obs::Counter& series;
  obs::Counter& points;
  obs::Counter& alerts;
};

KSigmaMetrics& ksigma_metrics() {
  static KSigmaMetrics metrics{
      obs::default_registry().counter(
          "llmprism_ksigma_series_total",
          "Series handed to the k-sigma rule (including abstentions)"),
      obs::default_registry().counter(
          "llmprism_ksigma_points_total",
          "Points scored by the k-sigma rule"),
      obs::default_registry().counter(
          "llmprism_ksigma_alerts_total",
          "Outliers reported by the k-sigma rule"),
  };
  return metrics;
}

/// Record one ksigma_outliers_* call in both telemetry channels.
void note_ksigma_call(std::size_t points_scored, std::size_t alerts,
                      KSigmaStats* stats) {
  KSigmaStats call;
  call.series = 1;
  call.points = points_scored;
  call.alerts = alerts;
  if (stats) *stats += call;
  KSigmaMetrics& metrics = ksigma_metrics();
  metrics.series.inc(call.series);
  metrics.points.inc(call.points);
  metrics.alerts.inc(call.alerts);
}

/// Reference statistics for scoring point i: either global or of all
/// points except i (leave-one-out).
struct Reference {
  double mean;   ///< center (mean, or median in kMad mode)
  double sigma;  ///< dispersion on the sigma scale
};

Reference global_reference(std::span<const double> xs, Dispersion d) {
  if (d == Dispersion::kStddev) return {stats::mean(xs), stats::stddev(xs)};
  return {stats::median(xs), kMadToSigma * stats::median_abs_deviation(xs)};
}

class ReferenceComputer {
 public:
  ReferenceComputer(std::span<const double> xs, const KSigmaConfig& config)
      : xs_(xs), config_(config) {
    if (!config.leave_one_out) {
      global_ = global_reference(xs, config.dispersion);
    } else if (config.dispersion == Dispersion::kStddev) {
      for (const double x : xs_) {
        sum_ += x;
        sum_sq_ += x * x;
      }
    }
  }

  [[nodiscard]] Reference at(std::size_t i) const {
    if (!config_.leave_one_out) return global_;
    const auto n = static_cast<double>(xs_.size() - 1);
    if (config_.dispersion == Dispersion::kStddev) {
      const double mean = (sum_ - xs_[i]) / n;
      const double var =
          std::max(0.0, (sum_sq_ - xs_[i] * xs_[i]) / n - mean * mean);
      return {mean, std::sqrt(var)};
    }
    // Robust leave-one-out: materialize the others (series are short in
    // the places this mode is used).
    std::vector<double> others;
    others.reserve(xs_.size() - 1);
    for (std::size_t j = 0; j < xs_.size(); ++j) {
      if (j != i) others.push_back(xs_[j]);
    }
    return global_reference(others, Dispersion::kMad);
  }

 private:
  std::span<const double> xs_;
  const KSigmaConfig& config_;
  Reference global_{};
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace

std::vector<std::size_t> ksigma_outliers_above(std::span<const double> xs,
                                               const KSigmaConfig& config,
                                               KSigmaStats* stats) {
  std::vector<std::size_t> out;
  if (xs.size() < config.min_samples) {
    note_ksigma_call(0, 0, stats);
    return out;
  }
  const ReferenceComputer refs(xs, config);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Reference r = refs.at(i);
    if (xs[i] > r.mean + config.k * r.sigma &&
        xs[i] > r.mean * (1.0 + config.min_relative_excess)) {
      out.push_back(i);
    }
  }
  note_ksigma_call(xs.size(), out.size(), stats);
  return out;
}

std::vector<std::size_t> ksigma_outliers_below(std::span<const double> xs,
                                               const KSigmaConfig& config,
                                               KSigmaStats* stats) {
  std::vector<std::size_t> out;
  if (xs.size() < config.min_samples) {
    note_ksigma_call(0, 0, stats);
    return out;
  }
  const ReferenceComputer refs(xs, config);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Reference r = refs.at(i);
    if (xs[i] < r.mean - config.k * r.sigma &&
        xs[i] < r.mean * (1.0 - config.min_relative_excess)) {
      out.push_back(i);
    }
  }
  note_ksigma_call(xs.size(), out.size(), stats);
  return out;
}

Diagnoser::Diagnoser(DiagnosisConfig config) : config_(config) {}

std::vector<StepAlert> Diagnoser::cross_step(const GpuTimeline& timeline,
                                             KSigmaStats* stats) const {
  std::vector<StepAlert> alerts;
  // Step 0 has no preceding DP burst, so its reconstructed duration is a
  // window artefact — exclude it from the series.
  if (timeline.steps.size() < 2) return alerts;
  std::vector<double> durations;
  durations.reserve(timeline.steps.size() - 1);
  for (std::size_t i = 1; i < timeline.steps.size(); ++i) {
    durations.push_back(to_seconds(timeline.steps[i].duration()));
  }
  const ReferenceComputer refs(durations, config_.ksigma);
  for (const std::size_t i :
       ksigma_outliers_above(durations, config_.ksigma, stats)) {
    const Reference r = refs.at(i);
    StepAlert a;
    a.gpu = timeline.gpu;
    a.step_index = timeline.steps[i + 1].index;
    a.duration_s = durations[i];
    a.mean_s = r.mean;
    a.threshold_s = r.mean + config_.ksigma.k * r.sigma;
    alerts.push_back(a);
  }
  return alerts;
}

std::vector<StepAlert> Diagnoser::cross_step_carried(
    const GpuTimeline& timeline, EwmaBaseline& baseline,
    const EwmaStepPolicy& policy, KSigmaStats* stats,
    std::uint64_t* ewma_alerts) const {
  // Window-local rule first: byte-identical to the cold path's alerts.
  std::vector<StepAlert> alerts = cross_step(timeline, stats);

  // The window-local rule scores steps 1.. (step 0's duration is a window
  // artefact) and only when it has >= min_samples of them. When it cannot
  // fire, the carried baseline takes over — but only once the baseline
  // itself has absorbed enough history.
  const std::size_t scorable =
      timeline.steps.size() > 1 ? timeline.steps.size() - 1 : 0;
  const bool window_self_sufficient = scorable >= config_.ksigma.min_samples;
  for (std::size_t i = 1; i < timeline.steps.size(); ++i) {
    const double d = to_seconds(timeline.steps[i].duration());
    if (!window_self_sufficient && baseline.count >= policy.min_samples) {
      const double threshold =
          baseline.mean + config_.ksigma.k * baseline.sigma();
      if (d > threshold &&
          d > baseline.mean * (1.0 + config_.ksigma.min_relative_excess)) {
        StepAlert a;
        a.gpu = timeline.gpu;
        a.step_index = timeline.steps[i].index;
        a.duration_s = d;
        a.mean_s = baseline.mean;
        a.threshold_s = threshold;
        alerts.push_back(a);
        if (ewma_alerts != nullptr) ++*ewma_alerts;
        // An outlier must not drag the baseline it was scored against;
        // skip the fold so one straggler cannot mask the next.
        continue;
      }
    }
    baseline.observe(d, policy.alpha);
  }
  return alerts;
}

std::vector<StepAlert> Diagnoser::cross_step(
    std::span<const GpuTimeline> timelines, KSigmaStats* stats) const {
  std::vector<StepAlert> alerts;
  for (const GpuTimeline& t : timelines) {
    const auto a = cross_step(t, stats);
    alerts.insert(alerts.end(), a.begin(), a.end());
  }
  return alerts;
}

std::vector<GroupAlert> Diagnoser::cross_group(
    const std::vector<std::vector<double>>& group_step_durations,
    KSigmaStats* stats) const {
  std::vector<GroupAlert> alerts;
  std::size_t max_steps = 0;
  for (const auto& row : group_step_durations) {
    max_steps = std::max(max_steps, row.size());
  }
  for (std::size_t step = 0; step < max_steps; ++step) {
    std::vector<double> durations;
    std::vector<std::size_t> group_idx;
    for (std::size_t g = 0; g < group_step_durations.size(); ++g) {
      if (step < group_step_durations[g].size()) {
        durations.push_back(group_step_durations[g][step]);
        group_idx.push_back(g);
      }
    }
    const ReferenceComputer refs(durations, config_.ksigma);
    for (const std::size_t i :
         ksigma_outliers_above(durations, config_.ksigma, stats)) {
      const Reference r = refs.at(i);
      GroupAlert a;
      a.group_index = group_idx[i];
      a.step_index = step;
      a.duration_s = durations[i];
      a.mean_s = r.mean;
      a.threshold_s = r.mean + config_.ksigma.k * r.sigma;
      alerts.push_back(a);
    }
  }
  return alerts;
}

namespace {

/// Highest switch id appearing in the view's hops (0 and false when there
/// are none). CSR offsets are monotone, so the view's hop ids — even for a
/// slice, whose offsets are absolute into the parent's storage — occupy the
/// contiguous range switch_ids[offsets[0] .. offsets[size())); one flat
/// scan over that range replaces the per-flow span walk.
std::pair<std::uint32_t, bool> max_switch_id(const FlowView& v) {
  if (v.switch_offsets.empty() || v.empty()) return {0, false};
  const std::uint64_t lo = v.switch_offsets[0];
  const std::uint64_t hi = v.switch_offsets[v.size()];
  if (lo == hi) return {0, false};
  std::uint32_t max_sw = 0;
  for (std::uint64_t k = lo; k < hi; ++k) {
    max_sw = std::max(max_sw, v.switch_ids[k]);
  }
  return {max_sw, true};
}

}  // namespace

std::vector<std::pair<SwitchId, double>> Diagnoser::per_switch_bandwidth(
    const FlowView& dp_flows) {
  const auto [max_sw, any] = max_switch_id(dp_flows);
  if (!any) return {};
  // Dense accumulation in flow order: per-switch sums see samples in the
  // same order the AoS path fed its hash map, so the doubles are identical.
  std::vector<double> sum(static_cast<std::size_t>(max_sw) + 1, 0.0);
  std::vector<std::size_t> count(static_cast<std::size_t>(max_sw) + 1, 0);
  for (std::size_t i = 0; i < dp_flows.size(); ++i) {
    if (dp_flows.duration_ns[i] <= 0) continue;
    const double bw = dp_flows.bandwidth_gbps(i);
    for (const std::uint32_t sw : dp_flows.switches(i)) {
      sum[sw] += bw;
      ++count[sw];
    }
  }
  std::vector<std::pair<SwitchId, double>> out;
  for (std::uint32_t sw = 0; sw <= max_sw; ++sw) {
    if (count[sw] != 0) {
      out.emplace_back(SwitchId(sw), sum[sw] / static_cast<double>(count[sw]));
    }
  }
  return out;
}

std::vector<std::pair<SwitchId, double>> Diagnoser::per_switch_bandwidth(
    const FlowTrace& dp_flows) {
  struct Acc {
    double bandwidth_sum = 0;
    std::size_t count = 0;
  };
  std::unordered_map<SwitchId, Acc> acc;
  for (const FlowRecord& f : dp_flows) {
    if (f.duration <= 0) continue;
    for (const SwitchId sw : f.switches) {
      Acc& a = acc[sw];
      a.bandwidth_sum += f.bandwidth_gbps();
      ++a.count;
    }
  }
  std::vector<std::pair<SwitchId, double>> out;
  out.reserve(acc.size());
  for (const auto& [sw, a] : acc) {
    out.emplace_back(sw, a.bandwidth_sum / static_cast<double>(a.count));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<SwitchId, double>>
Diagnoser::per_switch_bandwidth_percentile(const FlowView& dp_flows,
                                           double p) {
  const auto [max_sw, any] = max_switch_id(dp_flows);
  if (!any) return {};
  // CSR sample gather: count per switch, prefix sum, scatter bandwidths.
  // The percentile depends only on each switch's sample multiset, so the
  // gather order cannot perturb the result.
  const std::size_t slots = static_cast<std::size_t>(max_sw) + 1;
  std::vector<std::size_t> counts(slots + 1, 0);
  for (std::size_t i = 0; i < dp_flows.size(); ++i) {
    if (dp_flows.duration_ns[i] <= 0) continue;
    for (const std::uint32_t sw : dp_flows.switches(i)) ++counts[sw + 1];
  }
  for (std::size_t s = 0; s < slots; ++s) counts[s + 1] += counts[s];
  std::vector<double> samples(counts[slots]);
  {
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (std::size_t i = 0; i < dp_flows.size(); ++i) {
      if (dp_flows.duration_ns[i] <= 0) continue;
      const double bw = dp_flows.bandwidth_gbps(i);
      for (const std::uint32_t sw : dp_flows.switches(i)) {
        samples[cursor[sw]++] = bw;
      }
    }
  }
  std::vector<std::pair<SwitchId, double>> out;
  for (std::uint32_t sw = 0; sw <= max_sw; ++sw) {
    if (counts[sw] == counts[sw + 1]) continue;
    const std::span<const double> values(samples.data() + counts[sw],
                                         counts[sw + 1] - counts[sw]);
    out.emplace_back(SwitchId(sw), stats::percentile(values, p));
  }
  return out;
}

std::vector<std::pair<SwitchId, double>>
Diagnoser::per_switch_bandwidth_percentile(const FlowTrace& dp_flows,
                                           double p) {
  std::unordered_map<SwitchId, std::vector<double>> samples;
  for (const FlowRecord& f : dp_flows) {
    if (f.duration <= 0) continue;
    for (const SwitchId sw : f.switches) {
      samples[sw].push_back(f.bandwidth_gbps());
    }
  }
  std::vector<std::pair<SwitchId, double>> out;
  out.reserve(samples.size());
  for (const auto& [sw, values] : samples) {
    out.emplace_back(sw, stats::percentile(values, p));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SwitchBandwidthAlert> Diagnoser::switch_bandwidth(
    const FlowTrace& dp_flows, KSigmaStats* stats) const {
  const FlowColumns columns(dp_flows);
  return switch_bandwidth(columns.view(), stats);
}

std::vector<SwitchBandwidthAlert> Diagnoser::switch_bandwidth(
    const FlowView& dp_flows, KSigmaStats* stats) const {
  const auto per_switch = per_switch_bandwidth_percentile(
      dp_flows, config_.switch_health_percentile);
  std::vector<double> values;
  values.reserve(per_switch.size());
  for (const auto& [sw, bw] : per_switch) values.push_back(bw);

  const ReferenceComputer refs(values, config_.switch_ksigma);
  std::vector<SwitchBandwidthAlert> alerts;
  for (const std::size_t i :
       ksigma_outliers_below(values, config_.switch_ksigma, stats)) {
    const Reference r = refs.at(i);
    SwitchBandwidthAlert a;
    a.switch_id = per_switch[i].first;
    a.bandwidth_gbps = values[i];
    a.mean_gbps = r.mean;
    a.threshold_gbps = r.mean - config_.switch_ksigma.k * r.sigma;
    alerts.push_back(a);
  }
  return alerts;
}

std::vector<SwitchConcurrencyAlert> Diagnoser::switch_concurrency(
    const FlowTrace& dp_flows) const {
  const FlowColumns columns(dp_flows);
  return switch_concurrency(columns.view());
}

std::vector<SwitchConcurrencyAlert> Diagnoser::switch_concurrency(
    const FlowView& dp_flows) const {
  // Sweep line per switch over split start/end arrays: the CSR scatter
  // preserves flow order, so on a time-sorted view each switch's start
  // slice is born sorted and only the end slice needs sorting — half the
  // sort volume of an interleaved (+1/-1) event list, on plain TimeNs
  // instead of 16-byte event structs.
  const auto [max_sw, any] = max_switch_id(dp_flows);
  if (!any) return {};
  const std::size_t slots = static_cast<std::size_t>(max_sw) + 1;
  std::vector<std::size_t> counts(slots + 1, 0);
  // Per-flow hop iteration (not the raw hop column): a sliced view keeps
  // absolute CSR offsets over the parent's hop storage.
  for (std::size_t i = 0; i < dp_flows.size(); ++i) {
    for (const std::uint32_t sw : dp_flows.switches(i)) ++counts[sw + 1];
  }
  for (std::size_t s = 0; s < slots; ++s) counts[s + 1] += counts[s];
  std::vector<TimeNs> starts(counts[slots]);
  std::vector<TimeNs> ends(counts[slots]);
  {
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (std::size_t i = 0; i < dp_flows.size(); ++i) {
      const TimeNs start = dp_flows.start_ns[i];
      const TimeNs end = dp_flows.end_ns(i);
      for (const std::uint32_t sw : dp_flows.switches(i)) {
        starts[cursor[sw]] = start;
        ends[cursor[sw]] = end;
        ++cursor[sw];
      }
    }
  }
  std::vector<SwitchConcurrencyAlert> alerts;
  for (std::uint32_t sw = 0; sw <= max_sw; ++sw) {
    if (counts[sw] == counts[sw + 1]) continue;
    const std::ptrdiff_t lo = static_cast<std::ptrdiff_t>(counts[sw]);
    const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(counts[sw + 1]);
    if (!std::is_sorted(starts.begin() + lo, starts.begin() + hi)) {
      std::sort(starts.begin() + lo, starts.begin() + hi);
    }
    std::sort(ends.begin() + lo, ends.begin() + hi);
    // Two-pointer sweep, ends processed first at ties (a flow ending the
    // instant another starts never overlaps it). Signed so a degenerate
    // zero-duration flow (end == its own start) cannot wrap the count.
    std::ptrdiff_t current = 0;
    std::size_t peak = 0;
    TimeNs peak_at = 0;
    std::ptrdiff_t e = lo;
    for (std::ptrdiff_t s = lo; s < hi; ++s) {
      while (e < hi && ends[e] <= starts[s]) {
        --current;
        ++e;
      }
      ++current;
      if (current > 0 && static_cast<std::size_t>(current) > peak) {
        peak = static_cast<std::size_t>(current);
        peak_at = starts[s];
      }
    }
    if (peak > config_.switch_dp_flow_limit) {
      SwitchConcurrencyAlert a;
      a.switch_id = SwitchId(sw);
      a.at = peak_at;
      a.concurrent_flows = peak;
      a.limit = config_.switch_dp_flow_limit;
      alerts.push_back(a);
    }
  }
  return alerts;
}

std::vector<SwitchBandwidthSeries> switch_bandwidth_timeline(
    const FlowTrace& dp_flows, DurationNs bucket) {
  const FlowColumns columns(dp_flows);
  return switch_bandwidth_timeline(columns.view(), bucket);
}

std::vector<SwitchBandwidthSeries> switch_bandwidth_timeline(
    const FlowView& dp_flows, DurationNs bucket) {
  if (bucket <= 0) {
    throw std::invalid_argument("switch timeline: bucket must be positive");
  }
  struct Acc {
    double sum = 0;
    std::size_t count = 0;
  };
  std::unordered_map<SwitchId, std::map<TimeNs, Acc>> acc;
  for (std::size_t i = 0; i < dp_flows.size(); ++i) {
    if (dp_flows.duration_ns[i] <= 0) continue;
    const TimeNs start = dp_flows.start_ns[i];
    const TimeNs begin =
        start - (((start % bucket) + bucket) % bucket);  // floor to bucket
    const double bw = dp_flows.bandwidth_gbps(i);
    for (const std::uint32_t sw : dp_flows.switches(i)) {
      Acc& a = acc[SwitchId(sw)][begin];
      a.sum += bw;
      ++a.count;
    }
  }
  std::vector<SwitchBandwidthSeries> out;
  out.reserve(acc.size());
  for (auto& [sw, buckets] : acc) {
    SwitchBandwidthSeries series;
    series.switch_id = sw;
    for (const auto& [begin, a] : buckets) {
      series.bucket_begin.push_back(begin);
      series.gbps.push_back(a.sum / static_cast<double>(a.count));
    }
    out.push_back(std::move(series));
  }
  std::sort(out.begin(), out.end(),
            [](const SwitchBandwidthSeries& a, const SwitchBandwidthSeries& b) {
              return a.switch_id < b.switch_id;
            });
  return out;
}

std::vector<BandwidthOnset> detect_bandwidth_onsets(
    std::span<const SwitchBandwidthSeries> series,
    const OnsetDetectorConfig& config) {
  std::vector<BandwidthOnset> onsets;
  for (const SwitchBandwidthSeries& s : series) {
    if (s.gbps.size() < config.min_buckets) continue;
    // Normalize by the series median so a single detector configuration
    // serves every link speed.
    const double scale = std::max(1e-9, stats::median(s.gbps));
    std::vector<double> normalized;
    normalized.reserve(s.gbps.size());
    for (const double g : s.gbps) normalized.push_back(g / scale);

    // Empirical-Bayes prior scale: bandwidth series are orders of magnitude
    // tighter (relative noise ~1%) than the unit-scale default prior, which
    // would otherwise floor the run predictive so wide that even a huge
    // level shift stays "within run". Estimate the within-regime noise from
    // the MAD of first differences (robust to the level shift itself, and
    // unlike the plain MAD also to a balanced bimodal series) and aim the
    // prior predictive at ~10x it.
    std::vector<double> diffs;
    diffs.reserve(normalized.size());
    for (std::size_t i = 1; i < normalized.size(); ++i) {
      diffs.push_back(std::abs(normalized[i] - normalized[i - 1]));
    }
    const double s_data = std::max(
        1.4826 * stats::median(diffs) / std::sqrt(2.0), 0.005);
    BocdConfig cfg = config.bocd;
    cfg.prior_mean = 1.0;
    const double target_scale = 10.0 * s_data;
    cfg.prior_beta = target_scale * target_scale * cfg.prior_alpha *
                     cfg.prior_kappa / (cfg.prior_kappa + 1.0);
    // Pooled detector: one instance per thread serves every switch series,
    // and the per-run-length coefficient caches survive across series (only
    // prior_mean / prior_beta vary here — the prior shape is fixed).
    BocdDetector& detector = pooled_detector(cfg);
    for (std::size_t i = 0; i < s.gbps.size(); ++i) {
      detector.observe(normalized[i]);
      // Recent-mass threshold OR MAP run-length collapse (as in
      // segment_by_gaps); spurious collapses are filtered by the explicit
      // persistent-drop check below.
      const bool posterior_says_cp =
          detector.last_was_changepoint() ||
          (detector.observations_seen() > cfg.recent_run_cap + 1 &&
           detector.map_run_length() <= cfg.recent_run_cap);
      if (!posterior_says_cp) continue;
      // Candidate onset at bucket i: require a persistent *drop*.
      const std::span<const double> before(s.gbps.data(), i);
      const std::span<const double> after(s.gbps.data() + i,
                                          s.gbps.size() - i);
      if (before.size() < 2 || after.size() < 2) continue;
      const double mean_before = stats::mean(before);
      const double mean_after = stats::mean(after);
      if (mean_after < mean_before * (1.0 - config.min_drop)) {
        onsets.push_back(
            {s.switch_id, s.bucket_begin[i], mean_before, mean_after});
        break;  // first persistent drop per switch
      }
    }
  }
  return onsets;
}

std::vector<std::vector<double>> group_dp_durations(
    std::span<const GpuTimeline> timelines,
    const std::vector<std::vector<GpuId>>& dp_components) {
  std::unordered_map<GpuId, const GpuTimeline*> by_gpu;
  for (const GpuTimeline& t : timelines) by_gpu.emplace(t.gpu, &t);

  std::vector<std::vector<double>> durations;
  durations.reserve(dp_components.size());
  for (const auto& component : dp_components) {
    std::size_t min_steps = SIZE_MAX;
    std::vector<const GpuTimeline*> members;
    for (const GpuId g : component) {
      const auto it = by_gpu.find(g);
      if (it == by_gpu.end()) continue;
      members.push_back(it->second);
      min_steps = std::min(min_steps, it->second->steps.size());
    }
    std::vector<double> row;
    if (!members.empty() && min_steps != SIZE_MAX) {
      row.reserve(min_steps);
      for (std::size_t k = 0; k < min_steps; ++k) {
        TimeNs begin = members.front()->steps[k].dp_begin;
        TimeNs end = members.front()->steps[k].dp_end;
        for (const GpuTimeline* t : members) {
          begin = std::min(begin, t->steps[k].dp_begin);
          end = std::max(end, t->steps[k].dp_end);
        }
        row.push_back(to_seconds(end - begin));
      }
    }
    durations.push_back(std::move(row));
  }
  return durations;
}

}  // namespace llmprism
