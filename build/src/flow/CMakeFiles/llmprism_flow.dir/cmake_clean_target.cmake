file(REMOVE_RECURSE
  "libllmprism_flow.a"
)
