#include "llmprism/common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <string>

namespace llmprism::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_emit_mutex;  ///< serializes emissions AND sink swaps
Sink g_sink;              ///< empty = default std::cerr sink

std::string lowered(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}
}  // namespace

std::optional<Level> parse_level(std::string_view name) {
  const std::string n = lowered(name);
  if (n == "debug") return Level::kDebug;
  if (n == "info") return Level::kInfo;
  if (n == "warn" || n == "warning") return Level::kWarn;
  if (n == "error") return Level::kError;
  if (n == "off" || n == "none") return Level::kOff;
  return std::nullopt;
}

Level get_level() { return g_level.load(std::memory_order_relaxed); }

void set_level(Level level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  g_sink = std::move(sink);
}

namespace detail {
void emit(Level level, std::string_view message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::cerr << "[llmprism:" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace llmprism::log
