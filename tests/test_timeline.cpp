// Unit tests for per-GPU training-timeline reconstruction.
#include "llmprism/core/timeline.hpp"

#include <gtest/gtest.h>

#include "llmprism/baseline/eval.hpp"
#include "llmprism/core/comm_type.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

// Synthetic single-GPU scenario: GPU 0 does PP with GPU 8 and DP with GPU 16.
struct SyntheticScenario {
  FlowTrace trace;
  std::unordered_map<GpuPair, CommType> types;
  int steps;
  TimeNs step_period;
};

SyntheticScenario make_scenario(int steps = 6,
                                TimeNs step_period = 2 * kSecond) {
  SyntheticScenario s;
  s.steps = steps;
  s.step_period = step_period;
  s.types.emplace(GpuPair(GpuId(0), GpuId(8)), CommType::kPP);
  s.types.emplace(GpuPair(GpuId(0), GpuId(16)), CommType::kDP);
  for (int k = 0; k < steps; ++k) {
    const TimeNs base = k * step_period;
    // 4 PP sends spread over the "compute" phase
    for (int m = 0; m < 4; ++m) {
      FlowRecord f;
      f.start_time = base + 100 * kMillisecond * (m + 1);
      f.src = GpuId(0);
      f.dst = GpuId(8);
      f.bytes = 1 << 20;
      f.duration = kMillisecond;
      s.trace.add(f);
    }
    // DP burst at the end of the step: 12 flows, 2 ms apart
    for (int i = 0; i < 12; ++i) {
      FlowRecord f;
      f.start_time = base + step_period - 100 * kMillisecond +
                     i * 2 * kMillisecond;
      f.src = i % 2 == 0 ? GpuId(0) : GpuId(16);
      f.dst = i % 2 == 0 ? GpuId(16) : GpuId(0);
      f.bytes = (2 + i % 3) << 20;
      f.duration = kMillisecond;
      s.trace.add(f);
    }
  }
  s.trace.sort();
  return s;
}

TEST(TimelineReconstructorTest, FindsEveryStep) {
  const auto s = make_scenario();
  const TimelineReconstructor rec;
  const auto timeline = rec.reconstruct(GpuId(0), s.trace, s.types);
  EXPECT_EQ(timeline.gpu, GpuId(0));
  ASSERT_EQ(timeline.steps.size(), static_cast<std::size_t>(s.steps));
  for (std::size_t k = 1; k < timeline.steps.size(); ++k) {
    EXPECT_NEAR(to_seconds(timeline.steps[k].duration()),
                to_seconds(s.step_period), 0.15);
    // steps are contiguous: begin == previous end
    EXPECT_EQ(timeline.steps[k].begin, timeline.steps[k - 1].end);
  }
}

TEST(TimelineReconstructorTest, StepEndIsLastDpFlowEnd) {
  const auto s = make_scenario();
  const auto timeline =
      TimelineReconstructor{}.reconstruct(GpuId(0), s.trace, s.types);
  for (const ReconstructedStep& step : timeline.steps) {
    EXPECT_EQ(step.end, step.dp_end);
    EXPECT_GT(step.dp_end, step.dp_begin);
    // The DP span is the 22 ms burst, not the whole step.
    EXPECT_LT(to_seconds(step.dp_duration()), 0.1);
  }
}

TEST(TimelineReconstructorTest, EventKindsAreCorrect) {
  const auto s = make_scenario(3);
  const auto timeline =
      TimelineReconstructor{}.reconstruct(GpuId(0), s.trace, s.types);
  std::size_t pp_send = 0, dp = 0, compute = 0, pp_recv = 0;
  for (const TimelineEvent& e : timeline.events) {
    EXPECT_GE(e.end, e.start);
    switch (e.kind) {
      case TimelineEventKind::kPpSend: ++pp_send; break;
      case TimelineEventKind::kPpRecv: ++pp_recv; break;
      case TimelineEventKind::kDp: ++dp; break;
      case TimelineEventKind::kCompute: ++compute; break;
    }
  }
  EXPECT_EQ(pp_send, 12u);  // 4 per step, GPU 0 is always src
  EXPECT_EQ(pp_recv, 0u);
  EXPECT_EQ(dp, 36u);       // 12 per step (both directions count)
  EXPECT_GT(compute, 0u);   // gaps between comm events
}

TEST(TimelineReconstructorTest, PeerPerspectiveSwapsSendRecv) {
  const auto s = make_scenario(3);
  const auto timeline =
      TimelineReconstructor{}.reconstruct(GpuId(8), s.trace, s.types);
  for (const TimelineEvent& e : timeline.events) {
    if (e.kind == TimelineEventKind::kPpRecv) {
      EXPECT_EQ(e.peer, GpuId(0));
    }
    EXPECT_NE(e.kind, TimelineEventKind::kPpSend);  // GPU 8 never sends
  }
  // GPU 8 has no DP flows -> no steps reconstructed.
  EXPECT_TRUE(timeline.steps.empty());
}

TEST(TimelineReconstructorTest, ComputeGapsRespectMinimum) {
  const auto s = make_scenario(3);
  TimelineConfig cfg;
  cfg.min_compute_gap = 10 * kSecond;  // absurdly high: no gap qualifies
  const auto timeline =
      TimelineReconstructor(cfg).reconstruct(GpuId(0), s.trace, s.types);
  for (const TimelineEvent& e : timeline.events) {
    EXPECT_NE(e.kind, TimelineEventKind::kCompute);
  }
}

TEST(TimelineReconstructorTest, UnknownPairDefaultsToPp) {
  FlowTrace trace;
  FlowRecord f;
  f.start_time = 0;
  f.src = GpuId(0);
  f.dst = GpuId(8);
  f.bytes = 1;
  f.duration = 1;
  trace.add(f);
  const auto timeline =
      TimelineReconstructor{}.reconstruct(GpuId(0), trace, {});
  ASSERT_EQ(timeline.events.size(), 1u);
  EXPECT_EQ(timeline.events[0].kind, TimelineEventKind::kPpSend);
}

TEST(TimelineReconstructorTest, EmptyTraceEmptyTimeline) {
  const auto timeline =
      TimelineReconstructor{}.reconstruct(GpuId(0), FlowTrace{}, {});
  EXPECT_TRUE(timeline.events.empty());
  EXPECT_TRUE(timeline.steps.empty());
}

TEST(TimelineReconstructorTest, ReconstructAllCoversAllEndpoints) {
  const auto s = make_scenario(4);
  const auto timelines =
      TimelineReconstructor{}.reconstruct_all(s.trace, s.types);
  ASSERT_EQ(timelines.size(), 3u);  // GPUs 0, 8, 16
  EXPECT_EQ(timelines[0].gpu, GpuId(0));
  EXPECT_EQ(timelines[1].gpu, GpuId(8));
  EXPECT_EQ(timelines[2].gpu, GpuId(16));
  // reconstruct_all must agree with per-GPU reconstruct
  const auto single =
      TimelineReconstructor{}.reconstruct(GpuId(0), s.trace, s.types);
  ASSERT_EQ(timelines[0].events.size(), single.events.size());
  ASSERT_EQ(timelines[0].steps.size(), single.steps.size());
  for (std::size_t k = 0; k < single.steps.size(); ++k) {
    EXPECT_EQ(timelines[0].steps[k].end, single.steps[k].end);
  }
}

// ---------------------------------------------------------------------------
// Simulator-driven: reconstruction error across shapes (the §V-C metric).

struct TimelineSweepParam {
  std::uint32_t tp, dp, pp;
  bool zero_overlap;
};

class TimelineSweep : public ::testing::TestWithParam<TimelineSweepParam> {};

TEST_P(TimelineSweep, ErrorWithinPaperBound) {
  const auto p = GetParam();
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism.tp = p.tp;
  job.parallelism.dp = p.dp;
  job.parallelism.pp = p.pp;
  job.num_steps = 12;
  job.zero_overlap = p.zero_overlap;
  cfg.jobs.push_back({job, {}});
  const auto sim = run_cluster_sim(cfg);

  const auto comm = CommTypeIdentifier{}.identify(sim.trace);
  const auto timelines =
      TimelineReconstructor{}.reconstruct_all(sim.trace, comm.types());
  const auto score = score_timelines(std::span(timelines), sim.jobs[0]);
  EXPECT_GT(score.ranks_scored, 0u);
  EXPECT_GT(score.matched_fraction(), 0.9);
  EXPECT_LT(score.mean_duration_error, 0.003);  // paper: < 0.3%
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TimelineSweep,
    ::testing::Values(TimelineSweepParam{8, 2, 2, false},
                      TimelineSweepParam{8, 4, 1, false},
                      TimelineSweepParam{4, 8, 1, false},
                      TimelineSweepParam{8, 2, 2, true},
                      TimelineSweepParam{2, 8, 2, false}));

TEST(TimelineLimitationTest, IntraMachineDpIsInvisible) {
  // tp=2, dp=4, pp=4 on 8-GPU machines puts every DP group inside one
  // machine: its collectives never cross a switch, so no timeline can be
  // reconstructed — pinned as a documented observability limit of any
  // switch-level monitor.
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism = {.tp = 2, .dp = 4, .pp = 4, .micro_batches = 4};
  job.num_steps = 8;
  cfg.jobs.push_back({job, {}});
  const auto sim = run_cluster_sim(cfg);
  const auto comm = CommTypeIdentifier{}.identify(sim.trace);
  for (const auto& p : comm.pairs) {
    EXPECT_EQ(p.type, CommType::kPP);  // only PP traffic is visible
  }
  const auto timelines =
      TimelineReconstructor{}.reconstruct_all(sim.trace, comm.types());
  for (const auto& t : timelines) {
    EXPECT_TRUE(t.steps.empty());
  }
}

}  // namespace
}  // namespace llmprism
