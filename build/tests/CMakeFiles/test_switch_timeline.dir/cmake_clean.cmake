file(REMOVE_RECURSE
  "CMakeFiles/test_switch_timeline.dir/test_switch_timeline.cpp.o"
  "CMakeFiles/test_switch_timeline.dir/test_switch_timeline.cpp.o.d"
  "test_switch_timeline"
  "test_switch_timeline.pdb"
  "test_switch_timeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
