// Descriptive statistics used by the diagnosis and identification layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace llmprism::stats {

/// Arithmetic mean; 0 for an empty range.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance (divides by n); 0 for fewer than 2 samples.
[[nodiscard]] double variance(std::span<const double> xs);

/// Population standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Mean absolute deviation around the mean.
[[nodiscard]] double mean_abs_deviation(std::span<const double> xs);

/// Median absolute deviation around the median (robust dispersion).
[[nodiscard]] double median_abs_deviation(std::span<const double> xs);

/// Median (average of middle two for even n); 0 for an empty range.
[[nodiscard]] double median(std::span<const double> xs);

/// p-th percentile with linear interpolation, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Most frequent value of an integer sample; ties broken toward the smaller
/// value, 0 for an empty range. Used for Mode(N_k) in Alg. 2.
[[nodiscard]] std::int64_t mode(std::span<const std::int64_t> xs);

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two sets; 1.0 when both empty.
template <typename T>
[[nodiscard]] double jaccard(const std::unordered_set<T>& a,
                             const std::unordered_set<T>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t inter = 0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  for (const T& x : small) inter += large.count(x);
  const std::size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

/// Streaming mean/variance accumulator (Welford's algorithm); numerically
/// stable for long-running online monitoring.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Population variance; 0 with fewer than 2 samples.
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  [[nodiscard]] double stddev() const;

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace llmprism::stats
