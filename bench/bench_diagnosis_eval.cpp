// Quantifies §V-D's diagnosis AND the root-cause attribution layer on top
// of it (the paper reports deployment experience qualitatively — "a
// substantial number of fail-slow cases, the majority manually
// confirmed"): per fault scenario, how often the TOP-RANKED culprit of an
// attributed incident names the injected fault.
//
// Scenarios (each N randomized trials):
//   straggler   — one single-step compute straggler; correct = top culprit
//                 is a rank inside the straggler's TP stage group (TP is
//                 intra-machine, so the stage is the finest flow-visible
//                 localization).
//   slow-group  — one DP ring slowed for two steps; correct = top culprit
//                 is the DP component whose members equal the ring.
//   switch      — one switch degraded for the whole window; correct = top
//                 culprit is that switch (cluster-level incident).
//   multi-fault — straggler AND slow ring in one trace, adjacent in time;
//                 both must be attributed (scored per fault).
//
// Metrics per scenario: top-1 accuracy, precision (matched incidents /
// emitted incidents), recall (attributed faults / injected faults), MRR
// (reciprocal rank of the first correct culprit in the matched incident).
//
// Usage: bench_diagnosis_eval [artifact.json]
// Writes a machine-readable artifact for CI when a path is given; exits
// nonzero when any SINGLE-fault scenario's top-1 accuracy drops below 0.9.
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "llmprism/common/rng.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/parallelism/config.hpp"

using namespace llmprism;
using namespace llmprism::bench;

namespace {

constexpr std::uint32_t kSteps = 26;

/// GPUs a rank-level attribution may legitimately blame for a straggler
/// on `rank`: the rank's TP stage group, mapped to GPU ids via the truth.
std::unordered_set<GpuId> stage_culprit_set(const JobTruth& truth,
                                            const ParallelismConfig& par,
                                            std::uint32_t rank) {
  const RankMap map(par);
  const RankCoord coord = map.coord_of(RankId(rank));
  std::unordered_set<GpuId> gpus;
  for (const RankId r : map.tp_group(coord.dp_idx, coord.pp_idx)) {
    gpus.insert(truth.gpus[r.value()]);
  }
  return gpus;
}

/// Members of the injected ring (tp_idx, pp_idx), ascending GPU order —
/// directly comparable to a recovered DP component.
std::vector<GpuId> ring_member_set(const JobTruth& truth,
                                   const ParallelismConfig& par,
                                   std::uint32_t tp_idx,
                                   std::uint32_t pp_idx) {
  const RankMap map(par);
  std::vector<GpuId> gpus;
  for (const RankId r : map.dp_group(tp_idx, pp_idx)) {
    gpus.push_back(truth.gpus[r.value()]);
  }
  std::sort(gpus.begin(), gpus.end());
  return gpus;
}

bool steps_overlap(const AttributedIncident& incident, std::uint32_t begin,
                   std::uint32_t end, std::size_t slack = 1) {
  return incident.step_begin <= end + slack &&
         incident.step_end + slack >= begin;
}

/// One injected fault's match against a report: which incident explains
/// it, and at which culprit rank the correct answer appears.
struct FaultMatch {
  const AttributedIncident* incident = nullptr;
  std::size_t culprit_rank = 0;  ///< 1-based; 0 = correct culprit absent
};

FaultMatch match_straggler(const PrismReport& report, const JobTruth& truth,
                           const ParallelismConfig& par,
                           const StragglerSpec& fault) {
  const auto culprits = stage_culprit_set(truth, par, fault.rank);
  for (const AttributedIncident& incident : report.attribution.incidents) {
    if (incident.culprits.empty() ||
        incident.culprits.front().kind != CulpritKind::kRank ||
        !steps_overlap(incident, fault.step_begin, fault.step_end)) {
      continue;
    }
    for (std::size_t i = 0; i < incident.culprits.size(); ++i) {
      if (culprits.contains(incident.culprits[i].gpu)) {
        return {&incident, i + 1};
      }
    }
    return {&incident, 0};
  }
  return {};
}

FaultMatch match_slow_group(const PrismReport& report, const JobTruth& truth,
                            const ParallelismConfig& par,
                            const SlowDpGroupSpec& fault) {
  const auto ring = ring_member_set(truth, par, fault.tp_idx, fault.pp_idx);
  const auto& components = report.jobs.front().comm_types.dp_components;
  for (const AttributedIncident& incident : report.attribution.incidents) {
    if (incident.culprits.empty() ||
        incident.culprits.front().kind != CulpritKind::kDpGroup ||
        !steps_overlap(incident, fault.step_begin, fault.step_end)) {
      continue;
    }
    for (std::size_t i = 0; i < incident.culprits.size(); ++i) {
      const std::size_t g = incident.culprits[i].dp_group_index;
      if (g < components.size() && components[g] == ring) {
        return {&incident, i + 1};
      }
    }
    return {&incident, 0};
  }
  return {};
}

FaultMatch match_switch(const PrismReport& report, SwitchId switch_id) {
  for (const AttributedIncident& incident : report.attribution.incidents) {
    if (incident.culprits.empty() ||
        incident.culprits.front().kind != CulpritKind::kSwitch) {
      continue;
    }
    for (std::size_t i = 0; i < incident.culprits.size(); ++i) {
      if (incident.culprits[i].switch_id == switch_id) {
        return {&incident, i + 1};
      }
    }
  }
  return {};
}

struct ScenarioScore {
  const char* name;
  std::size_t trials = 0;
  std::size_t faults = 0;
  std::size_t top1_hits = 0;       ///< correct culprit ranked first
  std::size_t attributed = 0;      ///< fault matched by some incident
  double mrr_sum = 0.0;            ///< sum of 1/rank over faults
  std::size_t incidents = 0;       ///< emitted by the attributor
  std::size_t matched_incidents = 0;

  void score_fault(const FaultMatch& match) {
    ++faults;
    if (match.incident != nullptr && match.culprit_rank > 0) {
      ++attributed;
      top1_hits += match.culprit_rank == 1;
      mrr_sum += 1.0 / static_cast<double>(match.culprit_rank);
    }
  }

  void score_report(const PrismReport& report,
                    std::initializer_list<FaultMatch> matches) {
    incidents += report.attribution.incidents.size();
    std::unordered_set<const AttributedIncident*> used;
    for (const FaultMatch& m : matches) {
      if (m.incident != nullptr && m.culprit_rank > 0) used.insert(m.incident);
    }
    matched_incidents += used.size();
  }

  [[nodiscard]] double top1() const {
    return faults == 0 ? 0.0
                       : static_cast<double>(top1_hits) /
                             static_cast<double>(faults);
  }
  [[nodiscard]] double recall() const {
    return faults == 0 ? 0.0
                       : static_cast<double>(attributed) /
                             static_cast<double>(faults);
  }
  [[nodiscard]] double precision() const {
    return incidents == 0 ? 1.0
                          : static_cast<double>(matched_incidents) /
                                static_cast<double>(incidents);
  }
  [[nodiscard]] double mrr() const {
    return faults == 0 ? 0.0 : mrr_sum / static_cast<double>(faults);
  }
};

ClusterSimConfig job_fault_config(std::uint64_t seed) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.seed = seed;
  JobSimConfig job;
  job.parallelism = {.tp = 8, .dp = 4, .pp = 2, .micro_batches = 4};
  job.num_steps = kSteps;
  cfg.jobs.push_back({job, {}});
  return cfg;
}

StragglerSpec random_straggler(Rng& rng) {
  StragglerSpec fault;
  fault.rank = static_cast<std::uint32_t>(rng.uniform_int(0, 63));
  fault.step_begin =
      static_cast<std::uint32_t>(rng.uniform_int(5, kSteps / 2 - 2));
  fault.step_end = fault.step_begin;  // single step: no self-masking
  fault.slowdown = rng.uniform(1.8, 3.0);
  return fault;
}

SlowDpGroupSpec random_slow_group(Rng& rng) {
  SlowDpGroupSpec fault;
  fault.tp_idx = static_cast<std::uint32_t>(rng.uniform_int(0, 7));
  fault.pp_idx = static_cast<std::uint32_t>(rng.uniform_int(0, 1));
  fault.step_begin =
      static_cast<std::uint32_t>(rng.uniform_int(kSteps / 2 + 2, kSteps - 4));
  fault.step_end = fault.step_begin + 1;
  fault.slowdown = rng.uniform(2.0, 4.0);
  return fault;
}

void print_scenario(const ScenarioScore& s) {
  std::printf(
      "  %-11s | trials %2zu faults %2zu | top-1 %5.1f%%  recall %5.1f%%  "
      "precision %5.1f%%  MRR %.3f\n",
      s.name, s.trials, s.faults, 100.0 * s.top1(), 100.0 * s.recall(),
      100.0 * s.precision(), s.mrr());
}

void write_artifact(const char* path,
                    const std::vector<const ScenarioScore*>& scores,
                    double single_fault_top1_min) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open artifact path %s\n", path);
    return;
  }
  std::fprintf(f, "{\"schema_version\":1,\"scenarios\":[");
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const ScenarioScore& s = *scores[i];
    std::fprintf(f,
                 "%s{\"name\":\"%s\",\"trials\":%zu,\"faults\":%zu,"
                 "\"top1_accuracy\":%.6f,\"recall\":%.6f,"
                 "\"precision\":%.6f,\"mrr\":%.6f,\"incidents\":%zu}",
                 i == 0 ? "" : ",", s.name, s.trials, s.faults, s.top1(),
                 s.recall(), s.precision(), s.mrr(), s.incidents);
  }
  std::fprintf(f, "],\"single_fault_top1_min\":%.6f}\n",
               single_fault_top1_min);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== SS V-D: diagnosis + root-cause attribution vs injected ground "
      "truth ===\n\n");
  Rng meta(555);

  // --- scenario 1: single straggler --------------------------------------
  ScenarioScore straggler_score{.name = "straggler"};
  for (int trial = 0; trial < 10; ++trial) {
    ClusterSimConfig cfg = job_fault_config(10'000 + trial);
    const StragglerSpec fault = random_straggler(meta);
    cfg.jobs[0].config.stragglers.push_back(fault);
    const ClusterSimResult sim = run_cluster_sim(cfg);
    const PrismReport report = Prism(sim.topology).analyze(sim.trace);
    const FaultMatch m = match_straggler(
        report, sim.jobs[0], cfg.jobs[0].config.parallelism, fault);
    ++straggler_score.trials;
    straggler_score.score_fault(m);
    straggler_score.score_report(report, {m});
    std::printf("  straggler   trial %2d: rank %2u step %2u %.1fx -> %s\n",
                trial, fault.rank, fault.step_begin, fault.slowdown,
                m.culprit_rank == 1 ? "top-1"
                : m.culprit_rank > 0 ? "ranked"
                                     : "MISS");
  }

  // --- scenario 2: single slow DP ring -----------------------------------
  ScenarioScore group_score{.name = "slow-group"};
  for (int trial = 0; trial < 10; ++trial) {
    ClusterSimConfig cfg = job_fault_config(20'000 + trial);
    const SlowDpGroupSpec fault = random_slow_group(meta);
    cfg.jobs[0].config.slow_dp_groups.push_back(fault);
    const ClusterSimResult sim = run_cluster_sim(cfg);
    const PrismReport report = Prism(sim.topology).analyze(sim.trace);
    const FaultMatch m = match_slow_group(
        report, sim.jobs[0], cfg.jobs[0].config.parallelism, fault);
    ++group_score.trials;
    group_score.score_fault(m);
    group_score.score_report(report, {m});
    std::printf(
        "  slow-group  trial %2d: ring(t%u,p%u) steps %2u-%2u %.1fx -> %s\n",
        trial, fault.tp_idx, fault.pp_idx, fault.step_begin, fault.step_end,
        fault.slowdown,
        m.culprit_rank == 1 ? "top-1"
        : m.culprit_rank > 0 ? "ranked"
                             : "MISS");
  }

  // --- scenario 3: degraded switch ---------------------------------------
  // One machine per leaf gives 4 leaves + 2 spines: six scorable bandwidth
  // series, the cross-switch k-sigma minimum.
  ScenarioScore switch_score{.name = "switch"};
  for (int trial = 0; trial < 6; ++trial) {
    ClusterSimConfig cfg;
    cfg.topology = {.num_machines = 4, .gpus_per_machine = 8,
                    .machines_per_leaf = 1, .num_spines = 2};
    cfg.seed = 30'000 + static_cast<std::uint64_t>(trial);
    JobSimConfig job;
    job.parallelism = {.tp = 8, .dp = 4, .pp = 1, .micro_batches = 4};
    job.num_steps = 14;
    cfg.jobs.push_back({job, {}});
    const SwitchId switch_id(static_cast<std::uint32_t>(trial % 4));
    const double factor = meta.uniform(0.25, 0.4);
    cfg.switch_faults.push_back(
        {.switch_id = switch_id, .window = {0, 2 * kHour},
         .bandwidth_factor = factor});
    const ClusterSimResult sim = run_cluster_sim(cfg);
    const PrismReport report = Prism(sim.topology).analyze(sim.trace);
    const FaultMatch m = match_switch(report, switch_id);
    ++switch_score.trials;
    switch_score.score_fault(m);
    switch_score.score_report(report, {m});
    std::printf("  switch      trial %2d: switch %u at %.2fx -> %s\n", trial,
                switch_id.value(), factor,
                m.culprit_rank == 1 ? "top-1"
                : m.culprit_rank > 0 ? "ranked"
                                     : "MISS");
  }

  // --- scenario 4: straggler + slow ring in one trace --------------------
  // The faults are adjacent in time (ring slowed right after the straggled
  // step), the overlapping-trace regime DESIGN.md documents as the hard
  // case: both must still come out as separate incidents.
  ScenarioScore multi_score{.name = "multi-fault"};
  for (int trial = 0; trial < 8; ++trial) {
    ClusterSimConfig cfg = job_fault_config(40'000 + trial);
    StragglerSpec straggler = random_straggler(meta);
    SlowDpGroupSpec slow_group;
    slow_group.tp_idx = static_cast<std::uint32_t>(meta.uniform_int(0, 7));
    slow_group.pp_idx = static_cast<std::uint32_t>(meta.uniform_int(0, 1));
    slow_group.step_begin = straggler.step_begin + 2;  // adjacent, disjoint
    slow_group.step_end = slow_group.step_begin + 1;
    slow_group.slowdown = meta.uniform(2.0, 4.0);
    cfg.jobs[0].config.stragglers.push_back(straggler);
    cfg.jobs[0].config.slow_dp_groups.push_back(slow_group);
    const ClusterSimResult sim = run_cluster_sim(cfg);
    const PrismReport report = Prism(sim.topology).analyze(sim.trace);
    const FaultMatch ms = match_straggler(
        report, sim.jobs[0], cfg.jobs[0].config.parallelism, straggler);
    const FaultMatch mg = match_slow_group(
        report, sim.jobs[0], cfg.jobs[0].config.parallelism, slow_group);
    ++multi_score.trials;
    multi_score.score_fault(ms);
    multi_score.score_fault(mg);
    multi_score.score_report(report, {ms, mg});
    std::printf(
        "  multi-fault trial %2d: rank %2u step %2u + ring(t%u,p%u) steps "
        "%2u-%2u -> %s/%s\n",
        trial, straggler.rank, straggler.step_begin, slow_group.tp_idx,
        slow_group.pp_idx, slow_group.step_begin, slow_group.step_end,
        ms.culprit_rank == 1 ? "top-1" : ms.culprit_rank > 0 ? "ranked" : "MISS",
        mg.culprit_rank == 1 ? "top-1" : mg.culprit_rank > 0 ? "ranked" : "MISS");
  }

  std::printf("\nattribution results:\n");
  const std::vector<const ScenarioScore*> scores = {
      &straggler_score, &group_score, &switch_score, &multi_score};
  for (const ScenarioScore* s : scores) print_scenario(*s);

  const double single_fault_top1_min =
      std::min(straggler_score.top1(),
               std::min(group_score.top1(), switch_score.top1()));
  if (argc > 1) write_artifact(argv[1], scores, single_fault_top1_min);

  const bool ok = single_fault_top1_min >= 0.9;
  std::printf("\nsingle-fault top-1 accuracy >= 0.9: %s (min %.3f)\n",
              ok ? "OK" : "FAILED", single_fault_top1_min);
  return ok ? 0 : 1;
}
