// Minimal recursive-descent JSON well-formedness checker for tests.
//
// The exporters in this repo hand-emit JSON (no serializer dependency), so
// the tests need an independent check that the output actually parses:
// balanced quoting, commas, escapes and nesting — not just balanced braces.
// Validation only; no DOM is built.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace llmprism::testing {

class JsonLinter {
 public:
  explicit JsonLinter(std::string_view text) : text_(text) {}

  /// True iff the whole input is exactly one valid JSON value (plus
  /// whitespace). On failure, error() describes the first problem.
  [[nodiscard]] bool lint() {
    pos_ = 0;
    error_.clear();
    skip_ws();
    if (!value()) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t error_pos() const { return pos_; }

 private:
  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = what;
      error_ += " at offset ";
      error_ += std::to_string(pos_);
    }
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return fail("expected string");
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("unescaped control character in string");
      }
      if (c == '\\') {
        if (eof()) return fail("dangling escape");
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
              return fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          --pos_;
          return fail("bad escape character");
        }
      }
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected digit");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // leading zero: no further integer digits allowed
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object() {
    if (!consume('{')) return fail("expected object");
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  bool array() {
    if (!consume('[')) return fail("expected array");
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool value() {
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// One-shot helper for EXPECT_TRUE(is_valid_json(...)).
[[nodiscard]] inline bool is_valid_json(std::string_view text) {
  return JsonLinter(text).lint();
}

/// True iff `text` is a valid JSON object that declares `key` at its top
/// level (depth-1 scan, string-literal aware). Used to enforce the export
/// contract that every document carries "schema_version".
[[nodiscard]] inline bool json_object_has_key(std::string_view text,
                                              std::string_view key) {
  if (!JsonLinter(text).lint()) return false;
  std::size_t pos = 0;
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                  text[pos]))) {
    ++pos;
  }
  if (pos >= text.size() || text[pos] != '{') return false;
  int depth = 0;
  bool in_string = false;
  bool expecting_key = false;  ///< next depth-1 string is an object key
  for (; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (in_string) {
      if (c == '\\') {
        ++pos;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '{':
        ++depth;
        expecting_key = depth == 1;
        break;
      case '}':
      case ']':
        --depth;
        break;
      case '[':
        ++depth;
        break;
      case ',':
        expecting_key = depth == 1;
        break;
      case '"': {
        if (depth == 1 && expecting_key &&
            text.substr(pos + 1, key.size()) == key &&
            pos + 1 + key.size() < text.size() &&
            text[pos + 1 + key.size()] == '"') {
          return true;
        }
        in_string = true;
        expecting_key = false;
        break;
      }
      default:
        break;
    }
  }
  return false;
}

/// The export contract: a valid JSON object carrying "schema_version".
[[nodiscard]] inline bool is_versioned_json(std::string_view text) {
  return json_object_has_key(text, "schema_version");
}

}  // namespace llmprism::testing
