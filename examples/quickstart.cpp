// Quickstart: the end-to-end LLMPrism loop in ~60 lines.
//
// 1. Simulate a small multi-tenant cluster (two training jobs).
// 2. Hand LLMPrism only what a platform provider has: the switch-level
//    flow trace and the physical topology.
// 3. Print what it recovered: jobs, parallelism roles, timelines, alerts.
//
// Run:  ./examples/quickstart
#include <iostream>

#include "llmprism/llmprism.hpp"

using namespace llmprism;

int main() {
  // --- a 12-machine (96 GPU) cluster hosting two tenant jobs ---
  ClusterSimConfig sim_config;
  sim_config.topology = {.num_machines = 12,
                         .gpus_per_machine = 8,
                         .machines_per_leaf = 4,
                         .num_spines = 2};

  JobSimConfig llama_like;  // 32 GPUs: tp=8, dp=2, pp=2
  llama_like.parallelism = {.tp = 8, .dp = 2, .pp = 2, .micro_batches = 4};
  llama_like.num_steps = 12;

  JobSimConfig zero_job;    // 32 GPUs: tp=8, dp=4, DeepSpeed-ZeRO overlap
  zero_job.parallelism = {.tp = 8, .dp = 4, .pp = 1, .micro_batches = 4};
  zero_job.num_steps = 12;
  zero_job.zero_overlap = true;

  sim_config.jobs.push_back({llama_like, {}});
  sim_config.jobs.push_back({zero_job, {}});
  const ClusterSimResult sim = run_cluster_sim(sim_config);
  std::cout << "simulated " << sim.trace.size() << " switch-mirrored flows\n\n";

  // --- the black-box analysis: flows + topology in, diagnosis out ---
  const Prism prism(sim.topology);
  const PrismReport report = prism.analyze(sim.trace);

  std::cout << render_report_summary(report) << '\n';

  // --- Fig. 4-style timeline of the first job's first four ranks ---
  const JobAnalysis& job = report.jobs.front();
  const std::size_t lanes = std::min<std::size_t>(4, job.timelines.size());
  // Zoom into two steps in the middle of the window.
  const auto& steps = job.timelines.front().steps;
  RenderOptions options;
  options.width = 100;
  if (steps.size() > 4) {
    options.window = {steps[2].begin, steps[4].end};
  }
  std::cout << "reconstructed timeline (2 training steps, 4 ranks):\n"
            << render_timeline_chart(
                   std::span(job.timelines.data(), lanes), options);
  return 0;
}
