// A minimal shared-work-queue thread pool for the analysis side's fan-out
// loops (per-job analysis in Prism::analyze, per-window analysis in
// OnlineMonitor::ingest).
//
// Design constraints (see DESIGN.md, "Concurrency model"):
//  * parallel_for is the only primitive. Deterministic results fall out of
//    the usage discipline: every task owns a pre-sized output slot indexed
//    by its loop index and shares no mutable state, so scheduling order
//    cannot influence the result.
//  * The calling thread always participates in the loop, so a pool with
//    zero workers degenerates to the plain sequential in-order loop — the
//    num_threads = 1 legacy path is literally the same code, and progress
//    never depends on a free worker. This also makes nested or concurrent
//    parallel_for calls (several OnlineMonitor windows each fanning out
//    their jobs) deadlock-free on shared or separate pools.
//  * Exceptions thrown by an iteration are captured and rethrown on the
//    calling thread once the loop has drained (first one wins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace llmprism {

class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 is valid: every loop then runs
  /// inline on the calling thread).
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }
  /// Threads a loop can occupy: workers plus the calling thread.
  [[nodiscard]] std::size_t concurrency() const { return workers_.size() + 1; }

  /// Resolve a `num_threads` config knob: 0 -> one thread per hardware
  /// thread (at least 1), anything else -> the requested count.
  [[nodiscard]] static std::size_t resolve(std::size_t requested);

  /// Run fn(i) for every i in [0, n). Blocks until all iterations are done;
  /// the calling thread works alongside the pool. Safe to call from several
  /// threads at once and from inside another pool's loop.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// Convenience wrapper: fan out on `pool`, or run the exact sequential
/// in-order loop when `pool` is null (the single-threaded configuration).
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace llmprism
