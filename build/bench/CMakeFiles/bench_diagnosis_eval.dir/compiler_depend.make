# Empty compiler generated dependencies file for bench_diagnosis_eval.
# This may be replaced when dependencies are built.
