// LFT — the LLMPrism binary flow-trace format.
//
// CSV is the interchange format a collector exports; LFT is the format the
// analyzer wants to *load*: little-endian, columnar (one section per
// FlowRecord field, Perfetto/Arrow style), with switch paths in a CSR
// layout (offsets + flat hop ids) and a "sorted" header flag so a
// time-sorted file loads born-sorted with zero re-sorts. The file is
// self-describing (magic + version + per-section byte sizes) and ends in an
// XXH64 checksum of everything before it, so truncation and bit rot are
// detected before any record is trusted.
//
// File layout (all integers little-endian; every section zero-padded to an
// 8-byte boundary so a page-aligned mapping yields aligned columns):
//
//   Header (32 bytes)
//     0   char[4]  magic "LFT1"
//     4   u16      version          (currently 1)
//     6   u16      flags            (bit 0: rows sorted by FlowStartTimeLess)
//     8   u64      num_flows
//     16  u64      num_switch_ids   (total hop entries across all flows)
//     24  u32      section_count    (currently 7)
//     28  u32      reserved         (0)
//   Section table: section_count x u64 unpadded byte sizes
//   Sections, in order:
//     0  start_ns        num_flows x i64
//     1  src             num_flows x u32
//     2  dst             num_flows x u32
//     3  bytes           num_flows x u64
//     4  duration_ns     num_flows x i64
//     5  switch_offsets  (num_flows + 1) x u64   (CSR row offsets)
//     6  switch_ids      num_switch_ids x u32    (CSR column data)
//   Trailer: u64 XXH64 of every preceding byte (seed 0)
//
// Two readers share one validator: read_lft() materializes a FlowTrace from
// a stream, MappedFlowTrace mmaps the file and exposes the columns as spans
// without materializing FlowRecords until asked. Every malformed input —
// truncation, bad magic/version/flags, section-size mismatch or overflow,
// checksum mismatch, broken CSR offsets — fails with a descriptive
// std::runtime_error, never undefined behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <string_view>

#include "llmprism/flow/trace.hpp"
#include "llmprism/flow/view.hpp"

namespace llmprism {

namespace lft {

inline constexpr char kMagic[4] = {'L', 'F', 'T', '1'};
inline constexpr std::uint16_t kVersion = 1;
/// Rows are in FlowStartTimeLess order; a reader may trust binary-search
/// invariants without re-sorting.
inline constexpr std::uint16_t kFlagSorted = 0x1;
inline constexpr std::uint32_t kSectionCount = 7;
inline constexpr std::size_t kHeaderSize = 32;

}  // namespace lft

/// Serialize `trace` as LFT. The sorted flag records trace.is_sorted().
void write_lft(std::ostream& os, const FlowTrace& trace);

/// Parse an LFT stream into a FlowTrace. The result preserves file row
/// order; a file written from a sorted trace loads born-sorted (zero
/// physical sorts). Throws std::runtime_error on any malformed input.
[[nodiscard]] FlowTrace read_lft(std::istream& is);

/// Parse a complete in-memory LFT image (e.g. one framed daemon chunk).
/// Same validation and error contract as read_lft; the buffer need not be
/// aligned (it is copied into aligned storage before the columns are read).
[[nodiscard]] FlowTrace read_lft_buffer(std::span<const std::byte> image);

/// Convenience file wrappers; throw std::runtime_error if the file cannot
/// be opened (and read_lft_file on any corruption).
void write_lft_file(const std::string& path, const FlowTrace& trace);
[[nodiscard]] FlowTrace read_lft_file(const std::string& path);

/// True if `prefix` (the first bytes of a file) starts with the LFT magic.
/// Used for format auto-detection; needs at least 4 bytes to say yes.
[[nodiscard]] bool is_lft(std::string_view prefix);
/// Magic check against a file on disk; false if unreadable or too short.
[[nodiscard]] bool is_lft_file(const std::string& path);

/// Zero-copy LFT reader: maps the file (mmap on POSIX, a heap read
/// elsewhere), validates header/sections/checksum once in the constructor,
/// then exposes the columns as typed spans straight into the mapping.
///
/// Ownership/lifetime: the mapping lives exactly as long as the
/// MappedFlowTrace (RAII munmap; move-only). Spans returned by the column
/// accessors are views into the mapping and are invalidated by destruction
/// or move — callers that outlive the reader must materialize via
/// to_trace(). The mapping is private (MAP_PRIVATE) and read-only; the
/// file may be unlinked while mapped (POSIX keeps the pages alive).
class MappedFlowTrace {
 public:
  /// Map and validate `path`. Throws std::runtime_error if the file cannot
  /// be opened/mapped or fails any LFT validation.
  explicit MappedFlowTrace(const std::string& path);
  ~MappedFlowTrace();

  MappedFlowTrace(MappedFlowTrace&& other) noexcept;
  MappedFlowTrace& operator=(MappedFlowTrace&& other) noexcept;
  MappedFlowTrace(const MappedFlowTrace&) = delete;
  MappedFlowTrace& operator=(const MappedFlowTrace&) = delete;

  [[nodiscard]] std::size_t size() const { return num_flows_; }
  [[nodiscard]] bool empty() const { return num_flows_ == 0; }
  /// The header's sorted flag. Validation cross-checks it against the
  /// start_ns column, so true really means FlowStartTimeLess order.
  [[nodiscard]] bool sorted() const { return sorted_; }
  /// Total mapped bytes (the whole file).
  [[nodiscard]] std::size_t byte_size() const { return map_size_; }

  // Columns (views into the mapping; see lifetime note above).
  [[nodiscard]] std::span<const TimeNs> start_ns() const;
  [[nodiscard]] std::span<const std::uint32_t> src() const;
  [[nodiscard]] std::span<const std::uint32_t> dst() const;
  [[nodiscard]] std::span<const std::uint64_t> bytes() const;
  [[nodiscard]] std::span<const DurationNs> duration_ns() const;
  /// CSR offsets into switch_ids(); size() + 1 entries, offsets[0] == 0.
  [[nodiscard]] std::span<const std::uint64_t> switch_offsets() const;
  [[nodiscard]] std::span<const std::uint32_t> switch_ids() const;

  /// Non-owning columnar view straight over the mapping — the zero-copy
  /// input type of the analysis plane. Same lifetime rules as the column
  /// spans: invalidated by destruction or move of this reader.
  [[nodiscard]] FlowView view() const;

  /// Materialize one record. Bounds are the caller's contract (asserted in
  /// debug builds only — no exception branch in per-record paths).
  [[nodiscard]] FlowRecord record(std::size_t i) const;
  /// Materialize the whole trace. Preserves file row order; born-sorted
  /// (no later physical sort) when the sorted flag is set.
  [[nodiscard]] FlowTrace to_trace() const;

 private:
  void reset() noexcept;

  const std::byte* base_ = nullptr;  ///< mapping base (page/heap aligned)
  std::size_t map_size_ = 0;
  bool mmapped_ = false;                     ///< true: munmap on destroy
  std::unique_ptr<std::byte[]> heap_;        ///< non-POSIX fallback storage
  std::size_t num_flows_ = 0;
  std::size_t num_switch_ids_ = 0;
  bool sorted_ = false;
  const std::byte* sections_[lft::kSectionCount] = {};
};

}  // namespace llmprism
