// prism — command-line front end: analyze a flow trace (CSV or binary LFT,
// auto-detected by magic) end-to-end and print (or export as JSON) the full
// diagnosis report; `prism convert` translates between the two formats.
//
// Usage:
//   prism <flows.csv|flows.lft> [options]
//     --machines N          number of machines in the cluster (default:
//                           derived from the largest GPU id in the trace)
//     --gpus-per-machine N  (default 8)
//     --machines-per-leaf N (default 16)
//     --spines N            (default 4)
//     --window SECONDS      analyze only the first SECONDS of the trace
//     --monitor-window S    stream the trace through the OnlineMonitor in
//                           S-second analysis windows instead of one shot
//     --no-carry            with --monitor-window: disable the warm session
//                           (stateless, window-independent analysis)
//     --ingest-threads N    CSV decode threads (0 = hardware, default)
//     --json                emit the report as JSON instead of text
//     --timelines           include per-rank timeline lanes in text output
//     --no-reconstruct      skip timeline reconstruction (faster)
//     --log-level LEVEL     debug|info|warn|error|off (default: warn)
//     --metrics-out FILE    dump the metrics registry after analysis
//                           (Prometheus text; .json suffix -> JSON snapshot)
//     --trace-out FILE      record pipeline spans, write Chrome trace JSON
//     --perfetto-out FILE   export the reconstructed training timelines as
//                           Chrome trace JSON (open in ui.perfetto.dev)
//     --series-out FILE     export per-job per-window metrics (OpenMetrics
//                           text; .jsonl suffix -> JSONL stream)
//     --journal-out FILE    export the incident lifecycle journal (JSONL,
//                           open -> update -> resolve with stable ids)
//
//   prism convert <in> <out> [--format csv|lft] [--ingest-threads N]
//     converts between CSV and LFT (default output format: by <out>
//     extension, .lft -> lft, else csv), preserving row order and
//     sortedness, and prints a one-line summary (rows, bytes, ratio).
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "llmprism/llmprism.hpp"

using namespace llmprism;

namespace {

struct CliOptions {
  std::string trace_path;
  TopologyConfig topology{.num_machines = 0, .gpus_per_machine = 8,
                          .machines_per_leaf = 16, .num_spines = 4};
  std::optional<double> window_seconds;
  std::optional<double> monitor_window_seconds;
  bool carry = true;
  bool json = false;
  bool timelines = false;
  bool reconstruct = true;
  bool attribute = true;
  std::size_t ingest_threads = 0;
  std::string metrics_out;
  std::string trace_out;
  std::string perfetto_out;
  std::string series_out;
  std::string journal_out;
};

void usage() {
  std::cerr
      << "usage: prism <flows.csv|flows.lft> [--machines N]\n"
         "             [--gpus-per-machine N] [--machines-per-leaf N]\n"
         "             [--spines N] [--window S]\n"
         "             [--monitor-window S] [--no-carry]\n"
         "             [--ingest-threads N]\n"
         "             [--json] [--timelines] [--no-reconstruct]\n"
         "             [--no-attribute]\n"
         "             [--log-level debug|info|warn|error|off]\n"
         "             [--metrics-out FILE] [--trace-out FILE]\n"
         "             [--perfetto-out FILE] [--series-out FILE]\n"
         "             [--journal-out FILE]\n"
         "       prism convert <in> <out> [--format csv|lft]\n"
         "             [--ingest-threads N]\n"
         "  input format (CSV or binary LFT) is auto-detected by magic\n"
         "  --monitor-window streams the trace through the online monitor\n"
         "    in S-second windows (warm cross-window session by default;\n"
         "    --no-carry switches to stateless per-window analysis)\n"
         "  --ingest-threads sets the parallel CSV decoder's thread count\n"
         "    (0 = one per hardware thread; results are identical at any\n"
         "    setting)\n"
         "  --metrics-out writes the self-telemetry registry after analysis\n"
         "    (Prometheus text exposition; a .json suffix selects the JSON\n"
         "    snapshot instead)\n"
         "  --trace-out records pipeline trace spans during analysis and\n"
         "    writes Chrome trace_event JSON (open in Perfetto)\n"
         "  --perfetto-out exports the *reconstructed job timelines* (one\n"
         "    process per job, one track per rank, phase slices and alert\n"
         "    instants) as Chrome trace JSON for ui.perfetto.dev\n"
         "  --series-out exports per-job per-window metrics (step quantiles,\n"
         "    bandwidth, bubble ratio, alerts) as OpenMetrics text; a .jsonl\n"
         "    suffix selects the JSONL stream instead\n"
         "  --journal-out exports the deduplicated incident lifecycle\n"
         "    journal (JSONL: open -> update -> resolve, stable ids)\n"
         "  convert translates CSV <-> LFT (default output format by\n"
         "    extension: .lft -> lft, else csv), preserving sortedness\n";
}

/// Load a flow trace from either format, auto-detected by magic. On CSV
/// parse errors, prints up to 10 diagnostics and returns nullopt;
/// `format_out` is "csv" or "lft". Used by `prism convert`, which needs an
/// owning AoS trace for the writers; the analysis path uses load_flows.
std::optional<FlowTrace> load_trace(const std::string& path,
                                    std::size_t ingest_threads,
                                    std::string& format_out) {
  if (is_lft_file(path)) {
    format_out = "lft";
    try {
      const MappedFlowTrace mapped(path);
      return mapped.to_trace();
    } catch (const std::exception& e) {
      std::cerr << "prism: " << path << ": " << e.what() << '\n';
      return std::nullopt;
    }
  }
  format_out = "csv";
  std::ifstream in(path);
  if (!in) {
    std::cerr << "prism: cannot open " << path << '\n';
    return std::nullopt;
  }
  ParseResult parsed = read_csv_checked(in, {.num_threads = ingest_threads});
  if (!parsed.ok()) {
    constexpr std::size_t kMaxDiagnostics = 10;
    const std::size_t shown = std::min(parsed.errors.size(), kMaxDiagnostics);
    for (std::size_t e = 0; e < shown; ++e) {
      std::cerr << "prism: " << path << ':' << parsed.errors[e].line << ": "
                << parsed.errors[e].message << '\n';
    }
    if (parsed.errors.size() > shown) {
      std::cerr << "prism: ... and " << parsed.errors.size() - shown
                << " more bad lines\n";
    }
    return std::nullopt;
  }
  return std::move(parsed.trace);
}

/// The analysis input: a sorted columnar view plus whatever storage backs
/// it. A sorted LFT file is analyzed straight off the mapping — the view's
/// columns alias the mmap'd sections and no flow is ever copied. CSV input
/// (and the rare unsorted LFT) lands in owning columns, sorted once here
/// at the boundary.
struct LoadedFlows {
  std::optional<MappedFlowTrace> mapped;  ///< keeps LFT-backed views alive
  FlowColumns columns;                    ///< owning storage otherwise
  FlowView view;                          ///< what the pipeline consumes
  std::string format;                     ///< "csv" or "lft"
};

std::optional<LoadedFlows> load_flows(const std::string& path,
                                      std::size_t ingest_threads) {
  LoadedFlows out;
  if (is_lft_file(path)) {
    out.format = "lft";
    try {
      out.mapped.emplace(path);
    } catch (const std::exception& e) {
      std::cerr << "prism: " << path << ": " << e.what() << '\n';
      return std::nullopt;
    }
    out.view = out.mapped->view();
    if (out.view.sorted || out.view.verify_sorted()) {
      out.view.sorted = true;  // zero-copy fast path
      return out;
    }
    // Unsorted file: one boundary gather + sort into owning columns.
    std::vector<std::uint32_t> rows(out.view.size());
    std::iota(rows.begin(), rows.end(), 0u);
    out.columns = FlowColumns::gather(out.view, rows,
                                      /*rows_sorted_subset=*/false);
    out.columns.sort();
    out.mapped.reset();
    out.view = out.columns.view();
    return out;
  }
  out.format = "csv";
  std::ifstream in(path);
  if (!in) {
    std::cerr << "prism: cannot open " << path << '\n';
    return std::nullopt;
  }
  ParseResult parsed = read_csv_checked(in, {.num_threads = ingest_threads});
  if (!parsed.ok()) {
    constexpr std::size_t kMaxDiagnostics = 10;
    const std::size_t shown = std::min(parsed.errors.size(), kMaxDiagnostics);
    for (std::size_t e = 0; e < shown; ++e) {
      std::cerr << "prism: " << path << ':' << parsed.errors[e].line << ": "
                << parsed.errors[e].message << '\n';
    }
    if (parsed.errors.size() > shown) {
      std::cerr << "prism: ... and " << parsed.errors.size() - shown
                << " more bad lines\n";
    }
    return std::nullopt;
  }
  parsed.trace.sort();
  out.columns = FlowColumns(parsed.trace);
  out.view = out.columns.view();
  return out;
}

int run_convert(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  std::string format;
  std::size_t ingest_threads = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "prism convert: missing value for " << arg << '\n';
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--format") {
      const char* v = need_value();
      if (!v) return 2;
      format = v;
      if (format != "csv" && format != "lft") {
        std::cerr << "prism convert: unknown format " << format
                  << " (want csv or lft)\n";
        return 2;
      }
    } else if (arg == "--ingest-threads") {
      const char* v = need_value();
      if (!v) return 2;
      ingest_threads = std::stoul(v);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "prism convert: unknown option " << arg << '\n';
      return 2;
    } else if (in_path.empty()) {
      in_path = arg;
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      std::cerr << "prism convert: unexpected argument " << arg << '\n';
      return 2;
    }
  }
  if (in_path.empty() || out_path.empty()) {
    usage();
    return 2;
  }
  if (format.empty()) {
    format = out_path.ends_with(".lft") ? "lft" : "csv";
  }

  std::string in_format;
  std::optional<FlowTrace> trace = load_trace(in_path, ingest_threads, in_format);
  if (!trace) return 1;

  try {
    if (format == "lft") {
      write_lft_file(out_path, *trace);
    } else {
      write_csv_file(out_path, *trace);
    }
  } catch (const std::exception& e) {
    std::cerr << "prism convert: " << e.what() << '\n';
    return 1;
  }

  std::error_code ec;
  const auto in_bytes = std::filesystem::file_size(in_path, ec);
  const auto out_bytes = std::filesystem::file_size(out_path, ec);
  std::cout << "converted " << trace->size() << " flows: " << in_path << " ("
            << in_bytes << " B, " << in_format << ") -> " << out_path << " ("
            << out_bytes << " B, " << format << ", "
            << (in_bytes ? static_cast<double>(out_bytes) /
                               static_cast<double>(in_bytes)
                         : 0.0)
            << "x); sorted=" << (trace->is_sorted() ? "yes" : "no") << '\n';
  return 0;
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "prism: missing value for " << argv[i] << '\n';
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--machines") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.num_machines =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--gpus-per-machine") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.gpus_per_machine =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--machines-per-leaf") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.machines_per_leaf =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--spines") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.topology.num_spines =
          static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--window") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.window_seconds = std::stod(v);
    } else if (arg == "--monitor-window") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.monitor_window_seconds = std::stod(v);
    } else if (arg == "--no-carry") {
      options.carry = false;
    } else if (arg == "--ingest-threads") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.ingest_threads = std::stoul(v);
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--timelines") {
      options.timelines = true;
    } else if (arg == "--no-reconstruct") {
      options.reconstruct = false;
    } else if (arg == "--no-attribute") {
      options.attribute = false;
    } else if (arg == "--log-level") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      const auto level = log::parse_level(v);
      if (!level) {
        std::cerr << "prism: unknown log level " << v << '\n';
        return std::nullopt;
      }
      log::set_level(*level);
    } else if (arg == "--metrics-out") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.trace_out = v;
    } else if (arg == "--perfetto-out") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.perfetto_out = v;
    } else if (arg == "--series-out") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.series_out = v;
    } else if (arg == "--journal-out") {
      const char* v = need_value(i);
      if (!v) return std::nullopt;
      options.journal_out = v;
    } else if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "prism: unknown option " << arg << '\n';
      return std::nullopt;
    } else if (options.trace_path.empty()) {
      options.trace_path = arg;
    } else {
      std::cerr << "prism: unexpected argument " << arg << '\n';
      return std::nullopt;
    }
  }
  if (options.trace_path.empty()) return std::nullopt;
  return options;
}

/// The job-facing export sinks requested on the command line, fed one
/// analysis window at a time and flushed to their files once the trace is
/// exhausted. Each is a deterministic function of the (window, report,
/// stable-ids) sequence, so repeated runs produce bit-identical files.
struct ExportSinks {
  std::optional<PerfettoExporter> perfetto;
  std::optional<JobSeriesCollector> series;
  std::optional<IncidentJournal> journal;

  explicit ExportSinks(const CliOptions& options) {
    if (!options.perfetto_out.empty()) perfetto.emplace();
    if (!options.series_out.empty()) series.emplace();
    if (!options.journal_out.empty()) journal.emplace();
  }

  void add_window(const WindowExportView& view) {
    if (perfetto) perfetto->add_window(view);
    if (series) series->add_window(view);
    if (journal) journal->add_window(view);
  }

  /// Writes every requested sink; returns 0 or a process exit code.
  int write_all(const CliOptions& options) {
    const auto write = [](const std::string& path, auto&& writer) {
      std::ofstream out(path);
      if (!out) {
        std::cerr << "prism: cannot write " << path << '\n';
        return false;
      }
      writer(out);
      return true;
    };
    if (journal) journal->finish();
    if (perfetto && !write(options.perfetto_out,
                           [&](std::ostream& os) { perfetto->write(os); })) {
      return 1;
    }
    if (series && !write(options.series_out, [&](std::ostream& os) {
          if (options.series_out.ends_with(".jsonl")) {
            series->write_jsonl(os);
          } else {
            series->write_openmetrics(os);
          }
        })) {
      return 1;
    }
    if (journal && !write(options.journal_out, [&](std::ostream& os) {
          journal->write_jsonl(os);
        })) {
      return 1;
    }
    return 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string_view(argv[1]) == "convert") {
    return run_convert(argc, argv);
  }
  const auto options = parse_args(argc, argv);
  if (!options) {
    usage();
    return 2;
  }

  std::optional<LoadedFlows> loaded =
      load_flows(options->trace_path, options->ingest_threads);
  if (!loaded) return 1;
  const std::string& ingest_format = loaded->format;
  // The pipeline consumes this sorted view; on a sorted LFT file its
  // columns alias the mapping for the whole run — zero flow copies.
  FlowView view = loaded->view;
  if (view.empty()) {
    std::cerr << "prism: trace is empty\n";
    return 1;
  }

  TopologyConfig topo_config = options->topology;
  if (topo_config.num_machines == 0) {
    std::uint32_t max_gpu = 0;
    for (std::size_t i = 0; i < view.size(); ++i) {
      max_gpu = std::max({max_gpu, view.src[i], view.dst[i]});
    }
    topo_config.num_machines = max_gpu / topo_config.gpus_per_machine + 1;
  }

  if (options->window_seconds) {
    const TimeNs begin = view.time_span().begin;
    view = view.window(
        {begin, begin + from_seconds(*options->window_seconds)});
  }

  try {
    const auto topology = ClusterTopology::build(topo_config);
    PrismConfig prism_config;
    prism_config.reconstruct_timelines = options->reconstruct;
    prism_config.attribute = options->attribute;
    if (const auto errors = prism_config.validate(); !errors.empty()) {
      std::cerr << "prism: invalid configuration:\n";
      for (const std::string& e : errors) std::cerr << "  - " << e << '\n';
      return 2;
    }
    if (!options->trace_out.empty()) obs::TraceCollector::instance().enable();

    PrismReport report;
    if (options->monitor_window_seconds) {
      MonitorConfig monitor_config;
      monitor_config.prism = prism_config;
      monitor_config.window = from_seconds(*options->monitor_window_seconds);
      monitor_config.carry_state = options->carry;
      if (const auto errors = monitor_config.validate(); !errors.empty()) {
        std::cerr << "prism: invalid monitor configuration:\n";
        for (const std::string& e : errors) std::cerr << "  - " << e << '\n';
        return 2;
      }
      OnlineMonitor monitor(topology, monitor_config);
      ExportSinks sinks(*options);
      std::vector<MonitorTick> ticks = monitor.ingest(view);
      if (auto tail = monitor.flush()) ticks.push_back(std::move(*tail));
      for (const MonitorTick& tick : ticks) {
        sinks.add_window(export_view(tick));
        if (options->json) {
          write_report_json(std::cout, tick.report);
          continue;
        }
        std::size_t alerts = 0;
        for (const JobAnalysis& job : tick.report.jobs) {
          alerts += job.step_alerts.size() + job.group_alerts.size();
        }
        std::cout << "window [" << to_seconds(tick.window.begin) << "s, "
                  << to_seconds(tick.window.end) << "s): "
                  << tick.report.telemetry.flows_total << " flows, "
                  << tick.report.jobs.size() << " jobs, " << alerts
                  << " job alerts\n";
      }
      if (!options->json) {
        const MonitorStats& stats = monitor.stats();
        std::cout << "\nmonitor: " << stats.windows_completed
                  << " windows, " << stats.flows_ingested
                  << " flows ingested (" << stats.flows_dropped_late
                  << " dropped late), " << stats.stable_ids_created
                  << " stable job ids, " << stats.step_alerts << " step / "
                  << stats.group_alerts << " group alerts\n";
        if (const PrismSession* session = monitor.session()) {
          const SessionCounters& c = session->counters();
          std::cout << "session: recognition " << c.recognition_reuses
                    << " reused / " << c.recognition_rebuilds
                    << " rebuilt, pairs " << c.pairs_reused << " reused / "
                    << c.pairs_reclassified << " reclassified, boundary "
                    << c.boundary_steps_held << " held / "
                    << c.boundary_steps_carried << " carried, "
                    << c.ewma_step_alerts << " ewma alerts, "
                    << session->jobs_tracked() << " jobs tracked\n";
        }
      }
      if (!options->trace_out.empty()) {
        obs::TraceCollector::instance().disable();
        std::ofstream out(options->trace_out);
        if (!out) {
          std::cerr << "prism: cannot write " << options->trace_out << '\n';
          return 1;
        }
        obs::TraceCollector::instance().write_chrome_trace(out);
      }
      if (!options->metrics_out.empty()) {
        std::ofstream out(options->metrics_out);
        if (!out) {
          std::cerr << "prism: cannot write " << options->metrics_out << '\n';
          return 1;
        }
        if (options->metrics_out.ends_with(".json")) {
          obs::default_registry().write_json(out);
        } else {
          obs::default_registry().write_prometheus(out);
        }
      }
      return sinks.write_all(*options);
    }

    const Prism prism(topology, prism_config);
    report = prism.analyze(view);
    ExportSinks sinks(*options);
    sinks.add_window({view.time_span(), &report, {}});
    if (const int rc = sinks.write_all(*options); rc != 0) return rc;
    if (!options->trace_out.empty()) {
      obs::TraceCollector::instance().disable();
      std::ofstream out(options->trace_out);
      if (!out) {
        std::cerr << "prism: cannot write " << options->trace_out << '\n';
        return 1;
      }
      obs::TraceCollector::instance().write_chrome_trace(out);
    }
    if (!options->metrics_out.empty()) {
      std::ofstream out(options->metrics_out);
      if (!out) {
        std::cerr << "prism: cannot write " << options->metrics_out << '\n';
        return 1;
      }
      if (options->metrics_out.ends_with(".json")) {
        obs::default_registry().write_json(out);
      } else {
        obs::default_registry().write_prometheus(out);
      }
    }

    if (options->json) {
      write_report_json(std::cout, report);
      return 0;
    }
    std::cout << "analyzed " << view.size() << " flows (" << ingest_format
              << ") over " << to_seconds(view.time_span().length()) << " s on a "
              << topology.num_gpus() << "-GPU topology\n\n"
              << render_report_summary(report);
    if (options->timelines) {
      for (const JobAnalysis& job : report.jobs) {
        if (job.timelines.empty()) continue;
        const std::size_t lanes =
            std::min<std::size_t>(8, job.timelines.size());
        std::cout << "\njob " << job.id << " timelines (first " << lanes
                  << " ranks):\n"
                  << render_timeline_chart(
                         std::span(job.timelines.data(), lanes),
                         {.width = 110});
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "prism: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
