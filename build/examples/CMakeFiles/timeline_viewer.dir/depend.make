# Empty dependencies file for timeline_viewer.
# This may be replaced when dependencies are built.
