#include "llmprism/obs/trace_span.hpp"

#include <algorithm>
#include <chrono>

namespace llmprism::obs {

namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

TraceCollector::ThreadBuffer& TraceCollector::local_buffer() {
  // One buffer per (thread, collector-lifetime); the shared_ptr in
  // buffers_ keeps it valid for drain() even after the thread exits
  // (thread-pool workers outlive individual analyses, but tests spawn
  // short-lived threads).
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(mu_);
    fresh->tid = next_tid_++;
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void TraceCollector::record(const SpanRecord& span) {
  ThreadBuffer& buffer = local_buffer();
  SpanRecord stamped = span;
  stamped.tid = buffer.tid;
  const std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.spans.push_back(stamped);
}

std::vector<SpanRecord> TraceCollector::drain() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mu);
    out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
    buffer->spans.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.tid < b.tid;
            });
  return out;
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans) {
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i != 0) os << ',';
    os << "{\"name\":\"" << (s.name ? s.name : "?")
       << "\",\"cat\":\"llmprism\",\"ph\":\"X\",\"ts\":" << s.start_us
       << ",\"dur\":" << s.dur_us << ",\"pid\":1,\"tid\":" << s.tid;
    if (s.arg != SpanRecord::kNoArg) {
      os << ",\"args\":{\"id\":" << s.arg << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceCollector::write_chrome_trace(std::ostream& os) {
  obs::write_chrome_trace(os, drain());
}

Span::Span(const char* name, std::uint64_t arg) {
  if (TraceCollector::instance().enabled()) {
    name_ = name;
    arg_ = arg;
    start_us_ = now_us();
  }
}

Span::~Span() {
  if (!name_) return;
  SpanRecord record;
  record.name = name_;
  record.start_us = start_us_;
  record.dur_us = now_us() - start_us_;
  record.arg = arg_;
  TraceCollector::instance().record(record);
}

}  // namespace llmprism::obs
