#include "llmprism/simulator/job_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "llmprism/simulator/pipeline_schedule.hpp"

namespace llmprism {

namespace {

/// Transmission time of `bytes` at `gbps` (Gbit/s == bit/ns).
DurationNs wire_time(std::uint64_t bytes, double gbps) {
  return static_cast<DurationNs>(static_cast<double>(bytes) * 8.0 / gbps);
}

/// Deterministic uneven gradient-bucket sizes summing to `total`.
/// Buckets model by-layer gradient grouping, whose parameter counts are
/// never equal — this unevenness is what gives DP pairs several distinct
/// flow sizes per step (Alg. 2's DP signature).
std::vector<std::uint64_t> bucket_sizes(std::uint64_t total,
                                        std::uint32_t buckets) {
  std::vector<std::uint64_t> sizes(buckets);
  std::uint64_t weight_sum = 0;
  for (std::uint32_t k = 0; k < buckets; ++k) weight_sum += k + 2;
  std::uint64_t assigned = 0;
  for (std::uint32_t k = 0; k < buckets; ++k) {
    sizes[k] = total * (k + 2) / weight_sum;
    assigned += sizes[k];
  }
  sizes.back() += total - assigned;  // absorb rounding remainder
  return sizes;
}

}  // namespace

void JobSimConfig::validate() const {
  parallelism.validate();
  if (num_steps == 0) {
    throw std::invalid_argument("job sim: num_steps must be > 0");
  }
  if (link_bandwidth_gbps <= 0.0) {
    throw std::invalid_argument("job sim: link bandwidth must be positive");
  }
  if (fwd_micro_batch <= 0 || bwd_micro_batch <= 0) {
    throw std::invalid_argument("job sim: compute times must be positive");
  }
  if (dp_buckets == 0 || dp_channels == 0 || dp_rounds_per_bucket == 0) {
    throw std::invalid_argument(
        "job sim: dp_buckets/dp_channels/dp_rounds_per_bucket must be > 0");
  }
  if (pp_message_bytes == 0 || dp_total_bytes == 0) {
    throw std::invalid_argument("job sim: message sizes must be > 0");
  }
  for (const StragglerSpec& s : stragglers) {
    if (s.rank >= parallelism.world_size()) {
      throw std::invalid_argument("job sim: straggler rank out of range");
    }
    if (s.slowdown < 1.0) {
      throw std::invalid_argument("job sim: straggler slowdown must be >= 1");
    }
  }
  for (const SlowDpGroupSpec& g : slow_dp_groups) {
    if (g.tp_idx >= parallelism.tp || g.pp_idx >= parallelism.pp) {
      throw std::invalid_argument("job sim: slow DP group index out of range");
    }
    if (g.slowdown < 1.0) {
      throw std::invalid_argument("job sim: group slowdown must be >= 1");
    }
  }
}

TrainingJobSim::TrainingJobSim(JobId id, JobSimConfig config,
                               std::vector<MachineId> machines,
                               const ClusterTopology& topology)
    : id_(id),
      config_(std::move(config)),
      topology_(topology),
      rank_map_(config_.parallelism),
      placement_(rank_map_, std::move(machines), topology) {
  config_.validate();
}

JobSimResult TrainingJobSim::run(Rng& rng) const {
  const ParallelismConfig& par = config_.parallelism;
  const std::uint32_t P = par.pp;
  const std::uint32_t M = par.micro_batches;
  const double bw = config_.link_bandwidth_gbps;

  JobSimResult result;
  result.truth.id = id_;
  result.truth.gpus = placement_.all_gpus();

  // --- flow emission (cross-machine only; intra-machine is invisible) ---
  auto emit = [&](RankId src_rank, RankId dst_rank, TimeNs start,
                  std::uint64_t bytes, DurationNs duration) {
    const GpuId src = placement_.gpu_of(src_rank);
    const GpuId dst = placement_.gpu_of(dst_rank);
    if (topology_.same_machine(src, dst)) return;
    FlowRecord f;
    f.start_time = start;
    f.src = src;
    f.dst = dst;
    f.bytes = bytes;
    f.duration = duration;
    f.switches = topology_.route(src, dst);
    result.trace.add(std::move(f));
  };

  auto record_pair_type = [&](RankId a, RankId b, CommType type) {
    const GpuId ga = placement_.gpu_of(a);
    const GpuId gb = placement_.gpu_of(b);
    if (topology_.same_machine(ga, gb)) return;
    result.truth.pair_types.emplace(GpuPair(ga, gb), type);
  };

  // --- ground-truth pair types ---
  for (const auto& pp_group : rank_map_.all_pp_groups()) {
    for (std::size_t s = 0; s + 1 < pp_group.size(); ++s) {
      record_pair_type(pp_group[s], pp_group[s + 1], CommType::kPP);
    }
  }
  const auto dp_groups = rank_map_.all_dp_groups();
  result.truth.dp_group_edges.resize(dp_groups.size());
  result.truth.dp_group_of_rank.resize(rank_map_.world_size());
  for (std::size_t g = 0; g < dp_groups.size(); ++g) {
    for (const RankId r : dp_groups[g]) {
      result.truth.dp_group_of_rank[r.value()] = g;
    }
  }
  // Directed ring edges per (group, channel), reused every step.
  std::vector<std::vector<std::pair<RankId, RankId>>> group_channel_edges(
      dp_groups.size() * config_.dp_channels);
  for (std::size_t g = 0; g < dp_groups.size(); ++g) {
    std::unordered_set<GpuPair> seen;
    for (std::uint32_t c = 0; c < config_.dp_channels; ++c) {
      auto edges = ring_edges(dp_groups[g], c);
      for (const auto& [a, b] : edges) {
        record_pair_type(a, b, CommType::kDP);
        const GpuId ga = placement_.gpu_of(a);
        const GpuId gb = placement_.gpu_of(b);
        if (!topology_.same_machine(ga, gb) &&
            seen.insert(GpuPair(ga, gb)).second) {
          result.truth.dp_group_edges[g].push_back(GpuPair(ga, gb));
        }
      }
      group_channel_edges[g * config_.dp_channels + c] = std::move(edges);
    }
  }

  // --- DP volumes ---
  const auto buckets = bucket_sizes(config_.dp_total_bytes, config_.dp_buckets);
  const std::uint32_t dp = par.dp;
  // Bytes one rank pushes to its ring successor for one bucket on one
  // channel: ring all-reduce moves 2*(dp-1)/dp of the data, split evenly
  // over channels.
  std::vector<std::uint64_t> bucket_flow_bytes(buckets.size(), 0);
  if (dp > 1) {
    for (std::size_t k = 0; k < buckets.size(); ++k) {
      bucket_flow_bytes[k] = buckets[k] * 2 * (dp - 1) / dp /
                             config_.dp_channels;
    }
  }

  const DurationNs pp_flow_duration = wire_time(config_.pp_message_bytes, bw);
  const DurationNs transfer = pp_flow_duration + config_.net_latency;

  result.truth.dp_group_spans.assign(
      dp_groups.size(), std::vector<DpGroupStepTruth>(config_.num_steps));
  result.truth.steps.resize(config_.num_steps);

  auto group_index = [&](std::uint32_t tp_idx, std::uint32_t pp_idx) {
    // Matches RankMap::all_dp_groups() order (pp outer, tp inner).
    return static_cast<std::size_t>(pp_idx) * par.tp + tp_idx;
  };

  TimeNs step_begin = config_.start_time;
  for (std::uint32_t step = 0; step < config_.num_steps; ++step) {
    // ---- pipeline compute + PP flows, one schedule per DP replica ----
    std::vector<PipelineSchedule> schedules(dp);
    for (std::uint32_t d = 0; d < dp; ++d) {
      PipelineScheduleInput in;
      in.num_stages = P;
      in.num_micro_batches = M;
      in.transfer_time = transfer;
      in.start_time = step_begin;
      in.fwd_time.assign(P, std::vector<DurationNs>(M));
      in.bwd_time.assign(P, std::vector<DurationNs>(M));
      for (std::uint32_t s = 0; s < P; ++s) {
        double slow = 1.0;
        for (const StragglerSpec& sp : config_.stragglers) {
          const RankCoord c = rank_map_.coord_of(RankId(sp.rank));
          if (c.dp_idx == d && c.pp_idx == s && step >= sp.step_begin &&
              step <= sp.step_end) {
            slow *= sp.slowdown;
          }
        }
        for (std::uint32_t m = 0; m < M; ++m) {
          const double jf =
              rng.lognormal(0.0, config_.compute_jitter_sigma) * slow;
          const double jb =
              rng.lognormal(0.0, config_.compute_jitter_sigma) * slow;
          in.fwd_time[s][m] = static_cast<DurationNs>(
              static_cast<double>(config_.fwd_micro_batch) * jf);
          in.bwd_time[s][m] = static_cast<DurationNs>(
              static_cast<double>(config_.bwd_micro_batch) * jb);
        }
      }
      schedules[d] = compute_1f1b_schedule(in);

      // PP flows for every tp lane of this replica.
      for (std::uint32_t s = 0; s < P; ++s) {
        for (const PipeOp& op : schedules[d].ops[s]) {
          const bool fwd = op.kind == PipeOpKind::kForward;
          if (fwd && s + 1 >= P) continue;   // last stage sends nothing fwd
          if (!fwd && s == 0) continue;      // first stage sends nothing bwd
          const std::uint32_t peer_stage = fwd ? s + 1 : s - 1;
          for (std::uint32_t t = 0; t < par.tp; ++t) {
            const RankId src = rank_map_.rank_of({t, d, s});
            const RankId dst = rank_map_.rank_of({t, d, peer_stage});
            const TimeNs start =
                op.end + static_cast<TimeNs>(rng.uniform(0.0, 50.0 * 1e3));
            emit(src, dst, start, config_.pp_message_bytes, pp_flow_duration);
          }
        }
      }
    }

    // ---- DP collectives per group ----
    TimeNs step_dp_end_global = step_begin;
    TimeNs step_physical_end_global = step_begin;
    for (std::uint32_t p = 0; p < P; ++p) {
      for (std::uint32_t t = 0; t < par.tp; ++t) {
        const std::size_t g = group_index(t, p);
        TimeNs bwd_done = step_begin;
        TimeNs bwd_first = schedules[0].makespan_end();
        for (std::uint32_t d = 0; d < dp; ++d) {
          bwd_done = std::max(bwd_done, schedules[d].backward_done(p));
          for (const PipeOp& op : schedules[d].ops[p]) {
            if (op.kind == PipeOpKind::kBackward) {
              bwd_first = std::min(bwd_first, op.start);
              break;
            }
          }
        }

        double group_slow = 1.0;
        for (const SlowDpGroupSpec& sg : config_.slow_dp_groups) {
          if (sg.tp_idx == t && sg.pp_idx == p && step >= sg.step_begin &&
              step <= sg.step_end) {
            group_slow *= sg.slowdown;
          }
        }

        TimeNs dp_begin = 0;
        TimeNs dp_end = step_begin;        // last *observable* DP flow end
        TimeNs dp_physical_end = bwd_done; // collective completion (timing)
        if (dp > 1) {
          // Per-bucket wall time: wire time with ring inefficiency.
          std::vector<DurationNs> wall(buckets.size());
          for (std::size_t k = 0; k < buckets.size(); ++k) {
            const double ineff = rng.uniform(1.10, 1.35) * group_slow;
            wall[k] = static_cast<DurationNs>(
                static_cast<double>(wire_time(bucket_flow_bytes[k], bw)) *
                ineff);
          }
          // Bucket launch times: sequential after backward, or partially
          // overlapped with backward compute (ZeRO-style).
          std::vector<TimeNs> launch(buckets.size());
          if (!config_.zero_overlap) {
            TimeNs t_cursor = bwd_done + config_.net_latency;
            for (std::size_t k = 0; k < buckets.size(); ++k) {
              launch[k] = t_cursor;
              t_cursor += wall[k] + config_.inter_collective_gap;
            }
          } else {
            // ZeRO/DDP-style overlap with gradient accumulation: buckets
            // can only fire once the LAST micro-batch's backward produces
            // their gradients, so they spread over that final backward
            // window; the last bucket still trails backward completion.
            const TimeNs window_begin =
                std::max(bwd_first, bwd_done - config_.bwd_micro_batch);
            for (std::size_t k = 0; k + 1 < buckets.size(); ++k) {
              const double frac = static_cast<double>(k + 1) /
                                  static_cast<double>(buckets.size());
              launch[k] = window_begin + static_cast<TimeNs>(
                                             frac * static_cast<double>(
                                                        bwd_done -
                                                        window_begin));
            }
            launch[buckets.size() - 1] = bwd_done + config_.net_latency;
          }

          // Each bucket's ring pipelines its chunks; the collector sees R
          // staggered equal-size flows per bucket (R = dp_rounds_per_bucket).
          const std::uint32_t R = config_.dp_rounds_per_bucket;
          // When overlapped with compute, rounds contend with backward
          // kernels and get paced across the slack to the next bucket
          // (the trailing bucket inherits its predecessor's pacing);
          // back-to-back otherwise.
          std::vector<DurationNs> spacing(buckets.size());
          for (std::size_t k = 0; k < buckets.size(); ++k) {
            spacing[k] = wall[k] / R;
            if (config_.zero_overlap) {
              if (k + 1 < buckets.size()) {
                spacing[k] = std::max(
                    spacing[k],
                    (launch[k + 1] - launch[k]) / static_cast<DurationNs>(R));
              } else if (k > 0) {
                spacing[k] = std::max(spacing[k], spacing[k - 1]);
              }
            }
          }
          for (std::size_t k = 0; k < buckets.size(); ++k) {
            const std::uint64_t round_bytes =
                std::max<std::uint64_t>(1, bucket_flow_bytes[k] / R);
            const DurationNs round_wall = wall[k] / R;
            const DurationNs round_spacing = spacing[k];
            for (std::uint32_t r = 0; r < R; ++r) {
              const TimeNs round_launch =
                  launch[k] + static_cast<TimeNs>(r) * round_spacing;
              for (std::uint32_t c = 0; c < config_.dp_channels; ++c) {
                const auto& edges =
                    group_channel_edges[g * config_.dp_channels + c];
                for (const auto& [a, b] : edges) {
                  const TimeNs start =
                      round_launch +
                      static_cast<TimeNs>(rng.uniform(0.0, 100e3));
                  const auto duration = static_cast<DurationNs>(
                      static_cast<double>(round_wall) *
                      rng.uniform(0.97, 1.03));
                  emit(a, b, start, round_bytes, duration);
                  dp_end = std::max(dp_end, start + duration);
                }
              }
            }
            dp_physical_end =
                std::max(dp_physical_end, launch[k] + wall[k]);
          }
          dp_begin = launch.front();
          // Groups whose ring never crosses a machine emit no flows; their
          // observable span falls back to the physical one.
          if (dp_end <= step_begin) dp_end = dp_physical_end;
          dp_physical_end = std::max(dp_physical_end, dp_end);
        } else {
          dp_begin = bwd_done;
          dp_end = bwd_done;
        }

        result.truth.dp_group_spans[g][step] = {dp_begin, dp_end};
        step_dp_end_global = std::max(step_dp_end_global, dp_end);
        step_physical_end_global =
            std::max(step_physical_end_global, dp_physical_end);
      }
    }

    const TimeNs step_end = step_physical_end_global + config_.optimizer_time;
    result.truth.steps[step] = {step_begin, step_end, step_dp_end_global};
    step_begin = step_end;
  }

  result.trace.sort();
  return result;
}

}  // namespace llmprism
