
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_render.cpp" "tests/CMakeFiles/test_render.dir/test_render.cpp.o" "gcc" "tests/CMakeFiles/test_render.dir/test_render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/llmprism_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/collector/CMakeFiles/llmprism_collector.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/llmprism_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/llmprism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bocd/CMakeFiles/llmprism_bocd.dir/DependInfo.cmake"
  "/root/repo/build/src/parallelism/CMakeFiles/llmprism_parallelism.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/llmprism_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/llmprism_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/llmprism_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
