// Self-telemetry: a thread-safe metrics registry for the analysis side.
//
// LLMPrism's pitch is *continuous* online diagnosis, which means the
// diagnoser itself must be observable in production: how many flows were
// routed vs. dropped, how much work BOCD did, whether the k-sigma
// detectors are evaluating or abstaining. Three metric kinds cover that:
//
//  * Counter   — monotonic event count (relaxed atomic; safe from any
//                thread, totals are scheduling-invariant because the same
//                events occur regardless of the fan-out width),
//  * Gauge     — a level that goes up and down (windows in flight, lag),
//  * Histogram — fixed-bucket latency/size distribution (cumulative
//                Prometheus bucket semantics).
//
// The Registry hands out stable references: metric objects live as long as
// the registry, so hot paths look a metric up once and cache the
// reference. Exports: Prometheus text exposition (scrape endpoint / file)
// and a JSON snapshot (SRE-platform ingestion).
//
// Naming scheme (see DESIGN.md, "Self-observability"): metrics are
// `llmprism_<area>_<what>[_<unit>]`, counters end in `_total`, and every
// wall-clock quantity lives ONLY here — never in a PrismReport, which must
// stay bit-identical across thread counts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace llmprism::obs {

/// Monotonic event counter. inc() is wait-free and callable from any
/// thread; the count is exact (no sampling).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A level that can move both ways (lag, in-flight work, buffer depth).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus semantics: `bounds` are the
/// ascending inclusive upper bounds of the finite buckets; an implicit
/// +Inf bucket catches the rest. observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> bounds;          ///< finite upper bounds
    std::vector<std::uint64_t> counts;   ///< per-bucket (bounds.size() + 1)
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset() noexcept;

  /// Latency buckets from 100us to ~30s (for *_seconds histograms).
  [[nodiscard]] static std::vector<double> default_seconds_buckets();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Prometheus-style quantile estimate from fixed buckets: find the bucket
/// containing rank q*count and interpolate linearly inside it (bucket
/// lower bound 0 for the first finite bucket). Observations in the +Inf
/// bucket clamp to the highest finite bound (the classic histogram_quantile
/// behaviour). Returns 0 for an empty snapshot; q is clamped to [0, 1].
/// This is the ONE summary path shared by the self-telemetry exposition
/// and the per-job fleet series (export/series.hpp).
[[nodiscard]] double histogram_quantile(const Histogram::Snapshot& snap,
                                        double q);

/// Thread-safe name -> metric registry. Registration is idempotent: the
/// first call with a name creates the metric, later calls return the same
/// object (help text of the first registration wins; re-registering a name
/// as a different kind throws). References stay valid for the registry's
/// lifetime, so callers cache them outside hot loops.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       std::vector<double> bounds = {});

  /// Prometheus text exposition format (one scrape's worth).
  void write_prometheus(std::ostream& os) const;
  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;

  /// Zero every metric (tests; metrics stay registered).
  void reset();

  [[nodiscard]] std::size_t size() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  /// std::map: export order is name-sorted, hence deterministic.
  std::map<std::string, Entry> entries_;
};

/// The process-wide registry the pipeline reports into.
Registry& default_registry();

/// RAII wall-clock timer: records elapsed seconds into a histogram on
/// destruction. Wall time never enters analysis results — only this
/// side-channel.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_.observe(std::chrono::duration<double>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace llmprism::obs
