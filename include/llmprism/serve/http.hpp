// Minimal embedded HTTP/1.0 support for prismd's query plane.
//
// The daemon serves GET-only, Connection: close endpoints (/metrics,
// /report, /journal, ...) to curl and Prometheus scrapers. This header is
// the pure, socket-free part: request parsing and response formatting, so
// the endpoint routing (PrismDaemon::handle_http) is unit-testable without
// opening a socket. Anything beyond "GET <target> HTTP/1.x" is answered
// with a plain 400/405 — this is a diagnosis port, not a web server.
#pragma once

#include <string>
#include <string_view>

namespace llmprism::serve {

struct HttpRequest {
  std::string method;  ///< "GET"
  std::string path;    ///< target without the query string, e.g. "/report"
  std::string query;   ///< raw query string without '?', e.g. "shard=1"
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Parse the request line of `head` (everything up to the blank line).
/// Returns false on anything that is not "<METHOD> <target> HTTP/...".
[[nodiscard]] bool parse_http_request(std::string_view head, HttpRequest& out);

/// Value of `key` in a query string ("a=1&b=2"), or "" when absent.
[[nodiscard]] std::string query_param(std::string_view query,
                                      std::string_view key);

/// Serialize status line + headers + body (HTTP/1.0, Connection: close).
[[nodiscard]] std::string format_http_response(const HttpResponse& response);

}  // namespace llmprism::serve
