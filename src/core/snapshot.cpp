#include "llmprism/core/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "llmprism/common/hash.hpp"
#include "llmprism/core/monitor.hpp"
#include "llmprism/core/session.hpp"
#include "llmprism/obs/metrics.hpp"

namespace llmprism {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("snapshot: " + what);
}

obs::Counter& snapshot_saves() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_snapshot_saves_total", "Warm-state snapshots written");
  return c;
}

obs::Counter& snapshot_restores() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_snapshot_restores_total", "Warm-state snapshots restored");
  return c;
}

/// Append-only little-endian byte buffer the payload is built into; the
/// container (magic/version/kind + trailing checksum) wraps it at the end.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  template <typename T>
  void pod_vector(const std::vector<T>& v) {
    u64(v.size());
    if (!v.empty()) raw(v.data(), v.size() * sizeof(T));
  }
  [[nodiscard]] std::string& buffer() { return buf_; }

 private:
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked little-endian cursor over a validated payload. Every
/// read that would run past the end throws; vector reads verify the
/// remaining byte budget BEFORE allocating, so a corrupt count cannot
/// trigger a huge allocation.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() {
    need(1, "u8");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() { return scalar<std::uint16_t>("u16"); }
  std::uint32_t u32() { return scalar<std::uint32_t>("u32"); }
  std::uint64_t u64() { return scalar<std::uint64_t>("u64"); }
  std::int64_t i64() { return scalar<std::int64_t>("i64"); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// Element count for entries of at least min_elem_bytes each, verified
  /// against the remaining payload.
  std::size_t count(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    if (min_elem_bytes > 0 && n > (data_.size() - pos_) / min_elem_bytes) {
      fail("corrupt element count " + std::to_string(n));
    }
    return static_cast<std::size_t>(n);
  }
  template <typename T>
  std::vector<T> pod_vector() {
    const std::size_t n = count(sizeof(T));
    std::vector<T> out(n);
    if (n > 0) {
      need(n * sizeof(T), "vector body");
      std::memcpy(out.data(), data_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return out;
  }
  void expect_done() const {
    if (pos_ != data_.size()) {
      fail("trailing bytes after payload (" +
           std::to_string(data_.size() - pos_) + ")");
    }
  }

 private:
  template <typename T>
  T scalar(const char* what) {
    need(sizeof(T), what);
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n, const char* what) const {
    if (data_.size() - pos_ < n) {
      fail(std::string("truncated payload reading ") + what);
    }
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

template <typename Id>
void write_id_vector(Writer& w, const std::vector<Id>& ids) {
  w.u64(ids.size());
  for (const Id id : ids) w.u32(id.value());
}

template <typename Id>
std::vector<Id> read_id_vector(Reader& r) {
  const std::size_t n = r.count(4);
  std::vector<Id> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.emplace_back(r.u32());
  return out;
}

void write_columns(Writer& w, const FlowColumns& c) {
  w.pod_vector(c.start_ns);
  w.pod_vector(c.src);
  w.pod_vector(c.dst);
  w.pod_vector(c.bytes);
  w.pod_vector(c.duration_ns);
  w.pod_vector(c.switch_offsets);
  w.pod_vector(c.switch_ids);
  w.u8(c.sorted ? 1 : 0);
}

FlowColumns read_columns(Reader& r) {
  FlowColumns c;
  c.start_ns = r.pod_vector<TimeNs>();
  c.src = r.pod_vector<std::uint32_t>();
  c.dst = r.pod_vector<std::uint32_t>();
  c.bytes = r.pod_vector<std::uint64_t>();
  c.duration_ns = r.pod_vector<DurationNs>();
  c.switch_offsets = r.pod_vector<std::uint64_t>();
  c.switch_ids = r.pod_vector<std::uint32_t>();
  c.sorted = r.u8() != 0;
  const std::size_t n = c.start_ns.size();
  if (c.src.size() != n || c.dst.size() != n || c.bytes.size() != n ||
      c.duration_ns.size() != n ||
      (!c.switch_offsets.empty() && c.switch_offsets.size() != n + 1)) {
    fail("flow column sizes disagree");
  }
  return c;
}

/// Wrap a finished payload in the container and write it out.
void write_blob(std::ostream& os, std::uint16_t kind, Writer&& payload) {
  Writer head;
  head.buffer().append(snapshot::kMagic, sizeof(snapshot::kMagic));
  head.u16(snapshot::kVersion);
  head.u16(kind);
  std::string blob = std::move(head.buffer());
  blob += payload.buffer();
  const std::uint64_t checksum = xxhash64(blob.data(), blob.size());
  blob.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!os) fail("stream write failed");
  snapshot_saves().inc();
}

/// Validate the container (magic, version, kind, checksum) and return the
/// payload bytes.
std::span<const std::byte> validate_blob(std::span<const std::byte> blob,
                                         std::uint16_t want_kind) {
  if (blob.size() < snapshot::kHeaderSize + 8) {
    fail("truncated blob (" + std::to_string(blob.size()) + " bytes)");
  }
  if (std::memcmp(blob.data(), snapshot::kMagic, sizeof(snapshot::kMagic)) !=
      0) {
    fail("bad magic (not a snapshot)");
  }
  std::uint16_t version;
  std::uint16_t kind;
  std::memcpy(&version, blob.data() + 4, sizeof(version));
  std::memcpy(&kind, blob.data() + 6, sizeof(kind));
  if (version != snapshot::kVersion) {
    fail("unsupported version " + std::to_string(version));
  }
  std::uint64_t stored;
  std::memcpy(&stored, blob.data() + blob.size() - 8, sizeof(stored));
  const std::uint64_t computed = xxhash64(blob.data(), blob.size() - 8);
  if (stored != computed) fail("checksum mismatch (corrupt or truncated)");
  if (kind != want_kind) {
    fail("wrong snapshot kind " + std::to_string(kind) + " (expected " +
         std::to_string(want_kind) + ")");
  }
  return blob.subspan(snapshot::kHeaderSize,
                      blob.size() - snapshot::kHeaderSize - 8);
}

std::string slurp(std::istream& is) {
  return {std::istreambuf_iterator<char>(is), {}};
}

}  // namespace

/// Private-member codec for PrismSession and OnlineMonitor (befriended by
/// both). All map-shaped state is serialized in sorted key order so equal
/// state always produces equal bytes; restores parse the whole payload
/// into temporaries before committing anything (strong guarantee).
struct SnapshotAccess {
  static void write_session_config(Writer& w, const SessionConfig& c) {
    w.u8(c.reuse_recognition ? 1 : 0);
    w.u8(c.reuse_comm_types ? 1 : 0);
    w.u8(c.carry_timeline_tails ? 1 : 0);
    w.u8(c.ewma_baselines ? 1 : 0);
    w.f64(c.ewma_alpha);
    w.u64(c.ewma_min_samples);
    w.i64(c.boundary_hold);
    w.u64(c.evict_after_windows);
  }

  static void check_session_config(Reader& r, const SessionConfig& c) {
    const bool same = r.u8() == (c.reuse_recognition ? 1 : 0) &&
                      r.u8() == (c.reuse_comm_types ? 1 : 0) &&
                      r.u8() == (c.carry_timeline_tails ? 1 : 0) &&
                      r.u8() == (c.ewma_baselines ? 1 : 0) &&
                      r.f64() == c.ewma_alpha &&
                      r.u64() == c.ewma_min_samples &&
                      r.i64() == c.boundary_hold &&
                      r.u64() == c.evict_after_windows;
    if (!same) {
      fail(
          "session config mismatch (restore into a session constructed with "
          "the saved configuration)");
    }
  }

  static void write_session_payload(Writer& w, const PrismSession& s) {
    write_session_config(w, s.config_);

    const SessionCounters& c = s.counters_;
    for (const std::uint64_t v :
         {c.windows, c.jobs_created, c.jobs_reused, c.jobs_invalidated,
          c.recognition_reuses, c.recognition_rebuilds, c.pairs_reused,
          c.pairs_reclassified, c.boundary_steps_held,
          c.boundary_steps_carried, c.ewma_step_alerts}) {
      w.u64(v);
    }
    w.u64(s.window_index_);

    // Recognition cache: the pair set plus the partition derived from it
    // (the router table is rebuilt from the partition on restore).
    w.u8(s.recognition_valid_ ? 1 : 0);
    if (s.recognition_valid_) {
      std::vector<GpuPair> pairs(s.cached_pairs_.begin(),
                                 s.cached_pairs_.end());
      std::sort(pairs.begin(), pairs.end());
      w.u64(pairs.size());
      for (const GpuPair& p : pairs) {
        w.u32(p.first.value());
        w.u32(p.second.value());
      }
      w.u64(s.recognition_.jobs.size());
      for (const RecognizedJob& job : s.recognition_.jobs) {
        write_id_vector(w, job.gpus);
        write_id_vector(w, job.observed_gpus);
        write_id_vector(w, job.machines);
        w.u64(job.cross_machine_clusters.size());
        for (const std::vector<GpuId>& cluster : job.cross_machine_clusters) {
          write_id_vector(w, cluster);
        }
      }
      w.u64(s.recognition_.num_cross_machine_clusters);
    }

    // Per-job carried state, sorted by machine-set key.
    std::vector<const std::pair<const std::vector<MachineId>, SessionJobState>*>
        jobs;
    jobs.reserve(s.job_states_.size());
    for (const auto& entry : s.job_states_) jobs.push_back(&entry);
    std::sort(jobs.begin(), jobs.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    w.u64(jobs.size());
    for (const auto* entry : jobs) {
      write_id_vector(w, entry->first);
      const SessionJobState& state = entry->second;

      std::vector<std::pair<GpuPair, CommType>> types(
          state.comm.pre_types.begin(), state.comm.pre_types.end());
      std::sort(types.begin(), types.end());
      w.u64(types.size());
      for (const auto& [pair, type] : types) {
        w.u32(pair.first.value());
        w.u32(pair.second.value());
        w.u8(static_cast<std::uint8_t>(type));
      }

      std::vector<const std::pair<const GpuId, GpuStepCarry>*> gpus;
      gpus.reserve(state.timeline.per_gpu.size());
      for (const auto& g : state.timeline.per_gpu) gpus.push_back(&g);
      std::sort(gpus.begin(), gpus.end(), [](const auto* a, const auto* b) {
        return a->first < b->first;
      });
      w.u64(gpus.size());
      for (const auto* g : gpus) {
        w.u32(g->first.value());
        const GpuStepCarry& carry = g->second;
        w.u64(carry.held_events.size());
        for (const TimelineEvent& e : carry.held_events) {
          w.u8(static_cast<std::uint8_t>(e.kind));
          w.i64(e.start);
          w.i64(e.end);
          w.u32(e.peer.value());
        }
        w.i64(carry.prev_step_end);
        w.u8(carry.has_prev_step ? 1 : 0);
      }

      std::vector<std::pair<GpuId, EwmaBaseline>> baselines(
          state.step_baselines.begin(), state.step_baselines.end());
      std::sort(baselines.begin(), baselines.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      w.u64(baselines.size());
      for (const auto& [gpu, baseline] : baselines) {
        w.u32(gpu.value());
        w.f64(baseline.mean);
        w.f64(baseline.var);
        w.u64(baseline.count);
      }

      w.u64(state.last_seen_window);
    }
  }

  static void read_session_payload(Reader& r, PrismSession& s) {
    check_session_config(r, s.config_);

    SessionCounters counters;
    for (std::uint64_t* v :
         {&counters.windows, &counters.jobs_created, &counters.jobs_reused,
          &counters.jobs_invalidated, &counters.recognition_reuses,
          &counters.recognition_rebuilds, &counters.pairs_reused,
          &counters.pairs_reclassified, &counters.boundary_steps_held,
          &counters.boundary_steps_carried, &counters.ewma_step_alerts}) {
      *v = r.u64();
    }
    const std::uint64_t window_index = r.u64();

    const bool recognition_valid = r.u8() != 0;
    std::unordered_set<GpuPair> cached_pairs;
    JobRecognitionResult recognition;
    if (recognition_valid) {
      const std::size_t num_pairs = r.count(8);
      cached_pairs.reserve(num_pairs);
      for (std::size_t i = 0; i < num_pairs; ++i) {
        const GpuId a{r.u32()};
        const GpuId b{r.u32()};
        cached_pairs.insert(GpuPair(a, b));
      }
      const std::size_t num_jobs = r.count(8);
      recognition.jobs.reserve(num_jobs);
      for (std::size_t i = 0; i < num_jobs; ++i) {
        RecognizedJob job;
        job.gpus = read_id_vector<GpuId>(r);
        job.observed_gpus = read_id_vector<GpuId>(r);
        job.machines = read_id_vector<MachineId>(r);
        const std::size_t num_clusters = r.count(8);
        job.cross_machine_clusters.reserve(num_clusters);
        for (std::size_t k = 0; k < num_clusters; ++k) {
          job.cross_machine_clusters.push_back(read_id_vector<GpuId>(r));
        }
        recognition.jobs.push_back(std::move(job));
      }
      recognition.num_cross_machine_clusters =
          static_cast<std::size_t>(r.u64());
    }

    std::unordered_map<std::vector<MachineId>, SessionJobState, MachineSetHash>
        job_states;
    const std::size_t num_states = r.count(8);
    job_states.reserve(num_states);
    for (std::size_t i = 0; i < num_states; ++i) {
      std::vector<MachineId> machines = read_id_vector<MachineId>(r);
      SessionJobState state;

      const std::size_t num_types = r.count(9);
      state.comm.pre_types.reserve(num_types);
      for (std::size_t k = 0; k < num_types; ++k) {
        const GpuId a{r.u32()};
        const GpuId b{r.u32()};
        const std::uint8_t type = r.u8();
        if (type > static_cast<std::uint8_t>(CommType::kDP)) {
          fail("corrupt comm type " + std::to_string(type));
        }
        state.comm.pre_types.emplace(GpuPair(a, b),
                                     static_cast<CommType>(type));
      }

      const std::size_t num_gpus = r.count(8);
      state.timeline.per_gpu.reserve(num_gpus);
      for (std::size_t k = 0; k < num_gpus; ++k) {
        const GpuId gpu{r.u32()};
        GpuStepCarry carry;
        const std::size_t num_events = r.count(21);
        carry.held_events.reserve(num_events);
        for (std::size_t e = 0; e < num_events; ++e) {
          TimelineEvent event;
          const std::uint8_t kind = r.u8();
          if (kind > static_cast<std::uint8_t>(TimelineEventKind::kCompute)) {
            fail("corrupt timeline event kind " + std::to_string(kind));
          }
          event.kind = static_cast<TimelineEventKind>(kind);
          event.start = r.i64();
          event.end = r.i64();
          event.peer = GpuId{r.u32()};
          carry.held_events.push_back(event);
        }
        carry.prev_step_end = r.i64();
        carry.has_prev_step = r.u8() != 0;
        state.timeline.per_gpu.emplace(gpu, std::move(carry));
      }

      const std::size_t num_baselines = r.count(28);
      state.step_baselines.reserve(num_baselines);
      for (std::size_t k = 0; k < num_baselines; ++k) {
        const GpuId gpu{r.u32()};
        EwmaBaseline baseline;
        baseline.mean = r.f64();
        baseline.var = r.f64();
        baseline.count = r.u64();
        state.step_baselines.emplace(gpu, baseline);
      }

      state.last_seen_window = r.u64();
      job_states.emplace(std::move(machines), std::move(state));
    }

    // Fully parsed — commit.
    s.counters_ = counters;
    s.window_index_ = window_index;
    s.recognition_valid_ = recognition_valid;
    s.cached_pairs_ = std::move(cached_pairs);
    s.probe_pairs_.clear();
    s.recognition_ = std::move(recognition);
    if (recognition_valid) {
      s.router_.emplace(std::span<const RecognizedJob>(s.recognition_.jobs));
    } else {
      s.router_.reset();
    }
    s.job_states_ = std::move(job_states);
    s.window_armed_ = false;
    s.window_end_ = 0;
    s.hold_tail_ = false;
    obs::default_registry()
        .gauge("llmprism_session_jobs_tracked")
        .set(static_cast<double>(s.job_states_.size()));
  }

  static void write_monitor_payload(Writer& w, const OnlineMonitor& m) {
    // Config/topology fingerprint, verified on restore.
    w.i64(m.config_.window);
    w.i64(m.config_.reorder_slack);
    w.u8(m.config_.carry_state ? 1 : 0);
    w.u64(m.topology_.num_gpus());

    w.u8(m.window_origin_set_ ? 1 : 0);
    w.i64(m.window_begin_);
    w.i64(m.watermark_);
    write_columns(w, m.buffer_);

    w.u64(m.next_job_id_);
    std::vector<const std::pair<const std::vector<MachineId>, MonitorJobId>*>
        ids;
    ids.reserve(m.job_ids_.size());
    for (const auto& entry : m.job_ids_) ids.push_back(&entry);
    std::sort(ids.begin(), ids.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    w.u64(ids.size());
    for (const auto* entry : ids) {
      write_id_vector(w, entry->first);
      w.u64(entry->second);
    }

    const MonitorStats& st = m.stats_;
    for (const std::size_t v :
         {st.flows_ingested, st.flows_dropped_late, st.windows_completed,
          st.stable_ids_created, st.step_alerts, st.group_alerts,
          st.switch_bandwidth_alerts, st.switch_concurrency_alerts}) {
      w.u64(v);
    }
    std::vector<std::pair<MonitorJobId, std::size_t>> windows(
        st.job_windows.begin(), st.job_windows.end());
    std::sort(windows.begin(), windows.end());
    w.u64(windows.size());
    for (const auto& [id, n] : windows) {
      w.u64(id);
      w.u64(n);
    }

    w.u8(m.session_ ? 1 : 0);
    if (m.session_) write_session_payload(w, *m.session_);
  }

  static void read_monitor_payload(Reader& r, OnlineMonitor& m) {
    if (r.i64() != m.config_.window || r.i64() != m.config_.reorder_slack ||
        (r.u8() != 0) != m.config_.carry_state) {
      fail(
          "monitor config mismatch (restore into a monitor constructed with "
          "the saved window/slack/carry configuration)");
    }
    if (r.u64() != m.topology_.num_gpus()) {
      fail("topology mismatch (different GPU count)");
    }

    const bool origin_set = r.u8() != 0;
    const TimeNs window_begin = r.i64();
    const TimeNs watermark = r.i64();
    FlowColumns buffer = read_columns(r);

    const MonitorJobId next_job_id = r.u64();
    std::unordered_map<std::vector<MachineId>, MonitorJobId, MachineSetHash>
        job_ids;
    const std::size_t num_ids = r.count(16);
    job_ids.reserve(num_ids);
    for (std::size_t i = 0; i < num_ids; ++i) {
      std::vector<MachineId> machines = read_id_vector<MachineId>(r);
      const MonitorJobId id = r.u64();
      job_ids.emplace(std::move(machines), id);
    }

    MonitorStats stats;
    for (std::size_t* v :
         {&stats.flows_ingested, &stats.flows_dropped_late,
          &stats.windows_completed, &stats.stable_ids_created,
          &stats.step_alerts, &stats.group_alerts,
          &stats.switch_bandwidth_alerts, &stats.switch_concurrency_alerts}) {
      *v = static_cast<std::size_t>(r.u64());
    }
    const std::size_t num_windows = r.count(16);
    stats.job_windows.reserve(num_windows);
    for (std::size_t i = 0; i < num_windows; ++i) {
      const MonitorJobId id = r.u64();
      stats.job_windows[id] = static_cast<std::size_t>(r.u64());
    }

    const bool has_session = r.u8() != 0;
    if (has_session != (m.session_ != nullptr)) {
      fail("session presence mismatch (carry_state differs)");
    }
    // The session commits only after its own payload fully parses, so a
    // corrupt tail leaves the whole monitor untouched.
    if (has_session) read_session_payload(r, *m.session_);

    m.window_origin_set_ = origin_set;
    m.window_begin_ = window_begin;
    m.watermark_ = watermark;
    m.buffer_ = std::move(buffer);
    m.next_job_id_ = next_job_id;
    m.job_ids_ = std::move(job_ids);
    m.stats_ = std::move(stats);
  }
};

void save_snapshot(std::ostream& os, const PrismSession& session) {
  Writer payload;
  SnapshotAccess::write_session_payload(payload, session);
  write_blob(os, snapshot::kKindSession, std::move(payload));
}

void save_snapshot(std::ostream& os, const OnlineMonitor& monitor) {
  Writer payload;
  SnapshotAccess::write_monitor_payload(payload, monitor);
  write_blob(os, snapshot::kKindMonitor, std::move(payload));
}

void restore_snapshot(std::span<const std::byte> blob, PrismSession& session) {
  Reader r(validate_blob(blob, snapshot::kKindSession));
  SnapshotAccess::read_session_payload(r, session);
  r.expect_done();
  snapshot_restores().inc();
}

void restore_snapshot(std::span<const std::byte> blob, OnlineMonitor& monitor) {
  Reader r(validate_blob(blob, snapshot::kKindMonitor));
  SnapshotAccess::read_monitor_payload(r, monitor);
  r.expect_done();
  snapshot_restores().inc();
}

void restore_snapshot(std::istream& is, PrismSession& session) {
  const std::string raw = slurp(is);
  restore_snapshot(std::as_bytes(std::span(raw.data(), raw.size())), session);
}

void restore_snapshot(std::istream& is, OnlineMonitor& monitor) {
  const std::string raw = slurp(is);
  restore_snapshot(std::as_bytes(std::span(raw.data(), raw.size())), monitor);
}

void save_snapshot_file(const std::string& path, const OnlineMonitor& monitor) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail("cannot open for write: " + path);
  save_snapshot(os, monitor);
}

void restore_snapshot_file(const std::string& path, OnlineMonitor& monitor) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open for read: " + path);
  restore_snapshot(is, monitor);
}

}  // namespace llmprism
