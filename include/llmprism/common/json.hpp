// Minimal JSON string escaping shared by every hand-rolled exporter.
//
// The repo deliberately takes no serializer dependency; each exporter emits
// its documents directly. Strings, however, must be escaped exactly one way
// (RFC 8259 §7): quote, backslash and the C0 control range. Everything else
// — including non-ASCII bytes — passes through untouched, so UTF-8 payloads
// survive byte-for-byte. tests/json_lint.hpp is the independent check that
// the emitted documents actually parse.
#pragma once

#include <ostream>
#include <string_view>

namespace llmprism {

/// Write `s` as a JSON string literal, including the surrounding quotes.
inline void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace llmprism
