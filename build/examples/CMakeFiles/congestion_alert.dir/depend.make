# Empty dependencies file for congestion_alert.
# This may be replaced when dependencies are built.
