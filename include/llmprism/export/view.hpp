// Job-facing observability plane — shared input view.
//
// The fleet exporters (perfetto.hpp, series.hpp, journal.hpp) all consume
// the same thing: one analyzed window, i.e. a PrismReport plus the window
// geometry it was sliced from and, when the caller is the OnlineMonitor,
// the stable cross-window job identities of MonitorTick. They are pure
// post-processing: nothing here feeds back into the analysis pipeline, so
// enabling an export can never change a report — and every exporter output
// is a deterministic function of the (report, window, ids) sequence alone,
// which is what lets the differential suites assert the exports
// bit-identical across thread counts and warm/cold sessions.
#pragma once

#include <cstdint>
#include <span>

#include "llmprism/common/time.hpp"
#include "llmprism/core/monitor.hpp"
#include "llmprism/core/prism.hpp"

namespace llmprism {

/// One analyzed window, as the exporters see it.
struct WindowExportView {
  /// The analysis window the report covers. For one-shot analysis, pass
  /// the trace's own span.
  TimeWindow window;
  const PrismReport* report = nullptr;
  /// Stable cross-window job ids, parallel to report->jobs (MonitorTick::
  /// job_ids). Empty = fall back to the report-local JobAnalysis::id, which
  /// is only meaningful for single-window exports.
  std::span<const MonitorJobId> stable_ids;
};

/// Convenience: build the view for one monitor tick.
[[nodiscard]] inline WindowExportView export_view(const MonitorTick& tick) {
  return {tick.window, &tick.report, tick.job_ids};
}

/// Stable id of the j-th job of the view's report.
[[nodiscard]] inline std::uint64_t stable_job_id(const WindowExportView& view,
                                                 std::size_t j) {
  if (j < view.stable_ids.size()) return view.stable_ids[j];
  return view.report->jobs[j].id.value();
}

}  // namespace llmprism
