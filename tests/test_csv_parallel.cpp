// Differential tests for the chunk-parallel CSV decoder: for every input —
// clean, malformed, adversarially chunk-hostile — the ParseResult at 2, 4
// and 8 threads must be field-for-field identical to the serial (1-thread)
// parse: same trace records in the same order, same error lines and
// messages, same lines_read, same sortedness.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "llmprism/common/rng.hpp"
#include "llmprism/flow/io.hpp"
#include "llmprism/flow/trace.hpp"

namespace llmprism {
namespace {

constexpr const char* kHeader = "start_ns,src,dst,bytes,duration_ns,switches\n";

/// Parse `input` serially and at several thread counts with a tiny chunk
/// size (so even small inputs actually fan out) and require bit-identical
/// results.
void expect_thread_invariant(const std::string& input,
                             const std::string& label) {
  const ParseResult serial =
      read_csv_checked(input, {.num_threads = 1, .min_chunk_bytes = 1});
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    const ParseResult parallel = read_csv_checked(
        input, {.num_threads = threads, .min_chunk_bytes = 1});

    SCOPED_TRACE(label + " @ " + std::to_string(threads) + " threads");
    EXPECT_EQ(parallel.lines_read, serial.lines_read);
    ASSERT_EQ(parallel.trace.size(), serial.trace.size());
    for (std::size_t i = 0; i < serial.trace.size(); ++i) {
      EXPECT_EQ(parallel.trace[i], serial.trace[i]) << "flow " << i;
    }
    EXPECT_EQ(parallel.trace.is_sorted(), serial.trace.is_sorted());
    ASSERT_EQ(parallel.errors.size(), serial.errors.size());
    for (std::size_t i = 0; i < serial.errors.size(); ++i) {
      EXPECT_EQ(parallel.errors[i].line, serial.errors[i].line)
          << "error " << i;
      EXPECT_EQ(parallel.errors[i].message, serial.errors[i].message)
          << "error " << i;
    }
  }
}

TEST(CsvParallelTest, CleanRows) {
  std::string in = kHeader;
  for (int i = 0; i < 100; ++i) {
    in += std::to_string(i * 10) + ",1,2,1000,50,3;17\n";
  }
  expect_thread_invariant(in, "clean");

  // And the parse is actually correct, not just self-consistent.
  const ParseResult r =
      read_csv_checked(in, {.num_threads = 4, .min_chunk_bytes = 1});
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.trace.size(), 100u);
  EXPECT_EQ(r.trace[99].start_time, 990);
  EXPECT_TRUE(r.trace.is_sorted());
}

TEST(CsvParallelTest, MalformedRowsKeepGlobalLineNumbers) {
  std::string in = kHeader;
  in += "0,1,2,1000,50,\n";           // line 2: good
  in += "bad,1,2,1000,50,\n";         // line 3: bad start_ns
  in += "\n";                         // line 4: blank (counts)
  in += "10,1,2\n";                   // line 5: wrong field count
  in += "20,1,2,100,5,1;2;3;4;5\n";   // line 6: >4 switch hops
  in += "30,1,2,100,5,7\n";           // line 7: good
  in += std::string("40,1,2,100,5,") + '\0' + "\n";  // line 8: embedded NUL
  in += "50,1,2,1e3,5,\n";            // line 9: bad bytes
  expect_thread_invariant(in, "malformed");

  const ParseResult r =
      read_csv_checked(in, {.num_threads = 8, .min_chunk_bytes = 1});
  EXPECT_EQ(r.lines_read, 9u);
  ASSERT_EQ(r.errors.size(), 5u);
  EXPECT_EQ(r.errors[0].line, 3u);
  EXPECT_EQ(r.errors[1].line, 5u);
  EXPECT_EQ(r.errors[2].line, 6u);
  EXPECT_EQ(r.errors[3].line, 8u);
  EXPECT_NE(r.errors[3].message.find("NUL"), std::string::npos);
  EXPECT_EQ(r.errors[4].line, 9u);
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0].start_time, 0);
  EXPECT_EQ(r.trace[1].start_time, 30);
}

TEST(CsvParallelTest, CrlfAndFinalRowWithoutNewline) {
  std::string in = "start_ns,src,dst,bytes,duration_ns,switches\r\n";
  in += "1,2,3,4,5,\r\n";
  in += "6,7,8,9,10,11";  // final row, no trailing newline
  expect_thread_invariant(in, "crlf");

  const ParseResult r =
      read_csv_checked(in, {.num_threads = 2, .min_chunk_bytes = 1});
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[1].start_time, 6);
  ASSERT_EQ(r.trace[1].switches.size(), 1u);
}

TEST(CsvParallelTest, QuotedFieldsTakeTheSlowPath) {
  std::string in = kHeader;
  in += "\"1\",2,3,4,5,\n";         // quoted but valid
  in += "2,2,3,4,5,\"3;17\"\n";     // quoted switch list
  in += "\"oops,1,2,3,4,5\n";       // unterminated quote: one bad row
  in += "4,2,3,4,5,\n";
  expect_thread_invariant(in, "quoted");

  const ParseResult r =
      read_csv_checked(in, {.num_threads = 4, .min_chunk_bytes = 1});
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].line, 4u);
  ASSERT_EQ(r.trace.size(), 3u);
  ASSERT_EQ(r.trace[1].switches.size(), 2u);
  EXPECT_EQ(r.trace[1].switches[1], SwitchId(17));
}

TEST(CsvParallelTest, UnsortedInputPreservesFileOrder) {
  std::string in = kHeader;
  in += "300,1,2,10,5,\n";
  in += "100,3,4,10,5,\n";
  in += "200,5,6,10,5,\n";
  expect_thread_invariant(in, "unsorted");

  const ParseResult r =
      read_csv_checked(in, {.num_threads = 4, .min_chunk_bytes = 1});
  ASSERT_EQ(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[0].start_time, 300);  // file order, never re-sorted
  EXPECT_EQ(r.trace[1].start_time, 100);
  EXPECT_FALSE(r.trace.is_sorted());
}

TEST(CsvParallelTest, SortedInputLoadsBornSorted) {
  std::string in = kHeader;
  for (int i = 0; i < 64; ++i) in += std::to_string(i) + ",1,2,10,5,\n";
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const ParseResult r = read_csv_checked(
        in, {.num_threads = threads, .min_chunk_bytes = 1});
    EXPECT_TRUE(r.trace.is_sorted()) << threads << " threads";
  }
}

TEST(CsvParallelTest, DegenerateInputs) {
  expect_thread_invariant("", "empty");
  expect_thread_invariant(kHeader, "header only");
  expect_thread_invariant(std::string(kHeader) + "\n\n\n", "blank lines");
  expect_thread_invariant("not,a,flow,header\n1,2,3,4,5,\n", "bad header");
  // Header preceded by blank lines, first data row immediately after.
  expect_thread_invariant("\n\n" + std::string(kHeader) + "1,2,3,4,5,\n",
                          "leading blanks");
}

TEST(CsvParallelTest, RandomizedDifferential) {
  // A realistic mixed corpus: mostly good rows with random hop lists,
  // seasoned with every kind of malformation at random positions. The
  // differential then sweeps thread counts over it.
  Rng rng(424242);
  std::string in = kHeader;
  for (int i = 0; i < 3000; ++i) {
    const int kind = static_cast<int>(rng.uniform_int(0, 19));
    if (kind == 0) {
      in += "junk row\n";
    } else if (kind == 1) {
      in += "\n";
    } else if (kind == 2) {
      in += "1,2,3,4\n";
    } else if (kind == 3) {
      in += std::to_string(i) + ",1,2,x,5,\n";
    } else {
      in += std::to_string(rng.uniform_int(-1000, 1'000'000)) + "," +
            std::to_string(rng.uniform_int(0, 255)) + "," +
            std::to_string(rng.uniform_int(0, 255)) + "," +
            std::to_string(rng.uniform_int(0, 1'000'000'000)) + "," +
            std::to_string(rng.uniform_int(0, 100'000)) + ",";
      const int hops = static_cast<int>(rng.uniform_int(0, 4));
      for (int h = 0; h < hops; ++h) {
        if (h > 0) in += ';';
        in += std::to_string(rng.uniform_int(0, 63));
      }
      in += rng.bernoulli(0.2) ? "\r\n" : "\n";
    }
  }
  expect_thread_invariant(in, "randomized");
}

TEST(CsvParallelTest, ChunkBoundaryStress) {
  // Sweep min_chunk_bytes so chunk boundaries land on every interesting
  // spot: mid-row, on a CRLF pair, just before the final unterminated row.
  std::string in = kHeader;
  in += "1,2,3,4,5,\r\n";
  in += "bad,2,3,4,5,\n";
  in += "6,7,8,9,10,1;2";
  const ParseResult serial =
      read_csv_checked(in, {.num_threads = 1, .min_chunk_bytes = 1});
  for (std::size_t chunk = 1; chunk <= in.size(); ++chunk) {
    const ParseResult r = read_csv_checked(
        in, {.num_threads = 8, .min_chunk_bytes = chunk});
    SCOPED_TRACE("min_chunk_bytes=" + std::to_string(chunk));
    EXPECT_EQ(r.lines_read, serial.lines_read);
    ASSERT_EQ(r.trace.size(), serial.trace.size());
    for (std::size_t i = 0; i < serial.trace.size(); ++i) {
      EXPECT_EQ(r.trace[i], serial.trace[i]);
    }
    ASSERT_EQ(r.errors.size(), serial.errors.size());
    for (std::size_t i = 0; i < serial.errors.size(); ++i) {
      EXPECT_EQ(r.errors[i].line, serial.errors[i].line);
      EXPECT_EQ(r.errors[i].message, serial.errors[i].message);
    }
  }
}

TEST(CsvParallelTest, ZeroThreadsMeansHardwareFanOut) {
  // num_threads = 0 resolves to the hardware count; the result must still
  // match serial (it routes through the same chunked path).
  std::string in = kHeader;
  for (int i = 0; i < 50; ++i) in += std::to_string(i) + ",1,2,10,5,\n";
  const ParseResult serial = read_csv_checked(in, {.num_threads = 1});
  const ParseResult hw =
      read_csv_checked(in, {.num_threads = 0, .min_chunk_bytes = 1});
  ASSERT_EQ(hw.trace.size(), serial.trace.size());
  for (std::size_t i = 0; i < serial.trace.size(); ++i) {
    EXPECT_EQ(hw.trace[i], serial.trace[i]);
  }
  EXPECT_TRUE(hw.ok());
}

TEST(CsvParallelTest, StreamOverloadMatchesBuffer) {
  std::string in = kHeader;
  in += "1,2,3,4,5,\n";
  in += "bad,2,3,4,5,\n";
  std::istringstream is(in);
  const ParseResult via_stream =
      read_csv_checked(is, {.num_threads = 4, .min_chunk_bytes = 1});
  const ParseResult via_buffer =
      read_csv_checked(in, {.num_threads = 4, .min_chunk_bytes = 1});
  EXPECT_EQ(via_stream.lines_read, via_buffer.lines_read);
  ASSERT_EQ(via_stream.trace.size(), via_buffer.trace.size());
  ASSERT_EQ(via_stream.errors.size(), via_buffer.errors.size());
  EXPECT_EQ(via_stream.errors[0].line, via_buffer.errors[0].line);
}

}  // namespace
}  // namespace llmprism
