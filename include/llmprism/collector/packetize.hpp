// Packetization: expand ground-truth flows into the packet stream a
// mirrored switch port would emit.
#pragma once

#include <cstdint>
#include <vector>

#include "llmprism/collector/packet.hpp"
#include "llmprism/common/rng.hpp"
#include "llmprism/flow/trace.hpp"

namespace llmprism {

struct PacketizeConfig {
  std::uint32_t mtu_bytes = 4096;  ///< RoCE jumbo-frame payload
  /// Packets per flow are capped (a real mirror samples long flows; and it
  /// bounds memory here). The flow's bytes are spread over the emitted
  /// packets so byte accounting stays exact.
  std::uint32_t max_packets_per_flow = 64;
  /// Uniform jitter on per-packet spacing (fraction of the nominal gap).
  double pacing_jitter = 0.1;
};

/// Expand each flow into packets observed at the FIRST switch of its path
/// (the mirror point). Packets are paced uniformly across the flow's
/// duration. Flows with an empty switch path (intra-machine) emit nothing —
/// exactly why TP traffic is invisible. The result is timestamp-sorted.
[[nodiscard]] std::vector<PacketRecord> packetize(
    const FlowTrace& flows, const PacketizeConfig& config, Rng& rng);

}  // namespace llmprism
