// Strongly typed identifiers used throughout LLMPrism.
//
// Every entity in the system (GPU/NIC endpoint, machine, switch, job, rank)
// gets its own id type so that mixing them up is a compile-time error
// (C++ Core Guidelines P.1/P.4: express ideas directly in code, prefer
// static type safety).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace llmprism {

/// A strongly typed integral identifier. `Tag` is a phantom type that makes
/// each instantiation a distinct type; `Rep` is the underlying representation.
/// A default-constructed id is invalid (all-ones sentinel).
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  /// Underlying integral value. Only valid ids should be unwrapped.
  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalidRep; }

  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  static constexpr Rep kInvalidRep = std::numeric_limits<Rep>::max();
  Rep value_ = kInvalidRep;
};

struct GpuTag {};
struct MachineTag {};
struct SwitchTag {};
struct JobTag {};
struct RankTag {};

/// Identifies one GPU endpoint cluster-wide. On RoCE fabrics each GPU owns a
/// dedicated NIC, so a GPU id doubles as the network address seen in flows.
using GpuId = StrongId<GpuTag>;
/// Identifies a physical server (machine) hosting several GPUs.
using MachineId = StrongId<MachineTag>;
/// Identifies a network switch (leaf or spine).
using SwitchId = StrongId<SwitchTag>;
/// Identifies a recognized (or simulated) training job.
using JobId = StrongId<JobTag>;
/// Identifies a rank *within* one training job (0 .. world_size-1).
using RankId = StrongId<RankTag>;

/// An unordered GPU communication pair, stored canonically (first <= second)
/// so that (u, v) and (v, u) compare and hash equal. Alg. 2 of the paper
/// classifies undirected pairs.
struct GpuPair {
  GpuId first;
  GpuId second;

  constexpr GpuPair() = default;
  constexpr GpuPair(GpuId a, GpuId b)
      : first(a <= b ? a : b), second(a <= b ? b : a) {}

  friend constexpr auto operator<=>(const GpuPair&, const GpuPair&) = default;

  friend std::ostream& operator<<(std::ostream& os, const GpuPair& p) {
    return os << '(' << p.first << ',' << p.second << ')';
  }
};

}  // namespace llmprism

namespace std {

template <typename Tag, typename Rep>
struct hash<llmprism::StrongId<Tag, Rep>> {
  size_t operator()(llmprism::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

template <>
struct hash<llmprism::GpuPair> {
  size_t operator()(const llmprism::GpuPair& p) const noexcept {
    // 64-bit mix of the two 32-bit id values.
    const std::uint64_t k =
        (static_cast<std::uint64_t>(p.first.value()) << 32) |
        p.second.value();
    // SplitMix64 finalizer: good avalanche, cheap.
    std::uint64_t z = k + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

}  // namespace std
