
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/online_monitor.cpp" "examples/CMakeFiles/online_monitor.dir/online_monitor.cpp.o" "gcc" "examples/CMakeFiles/online_monitor.dir/online_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/llmprism_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/llmprism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bocd/CMakeFiles/llmprism_bocd.dir/DependInfo.cmake"
  "/root/repo/build/src/parallelism/CMakeFiles/llmprism_parallelism.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/llmprism_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/llmprism_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/llmprism_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
