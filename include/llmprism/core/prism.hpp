// The end-to-end LLMPrism pipeline (paper Fig. 2):
//   (1) recognize training jobs            -> JobRecognizer  (Alg. 1)
//   (2) identify parallelism strategies    -> CommTypeIdentifier (Alg. 2)
//   (3) reconstruct per-GPU timelines      -> TimelineReconstructor
//   (4) multi-dimensional diagnosis        -> Diagnoser
//
// Input: the switch-level flow trace of the whole cluster over a time
// window, plus the physical topology. No tenant cooperation required.
#pragma once

#include <vector>

#include "llmprism/core/comm_type.hpp"
#include "llmprism/core/diagnosis.hpp"
#include "llmprism/core/job_recognition.hpp"
#include "llmprism/core/parallelism_inference.hpp"
#include "llmprism/core/timeline.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/topology/topology.hpp"

namespace llmprism {

struct PrismConfig {
  JobRecognitionConfig recognition;
  CommTypeConfig comm_type;
  TimelineConfig timeline;
  DiagnosisConfig diagnosis;
  /// Timeline reconstruction dominates cost; disable when only job
  /// recognition / parallelism identification is needed.
  bool reconstruct_timelines = true;
};

/// Full analysis of one recognized job.
struct JobAnalysis {
  JobId id;                 ///< index within this report
  RecognizedJob job;
  FlowTrace trace;          ///< the job's flows (time-sorted)
  CommTypeResult comm_types;
  /// The job's reconstructed 3D layout (tp/dp/pp/micro-batches).
  InferredParallelism inferred;
  std::vector<GpuTimeline> timelines;
  std::vector<StepAlert> step_alerts;
  std::vector<GroupAlert> group_alerts;
};

struct PrismReport {
  JobRecognitionResult recognition;
  std::vector<JobAnalysis> jobs;
  /// Fig. 5 series: average DP bandwidth per switch, cluster-wide.
  std::vector<std::pair<SwitchId, double>> switch_bandwidth_gbps;
  std::vector<SwitchBandwidthAlert> switch_bandwidth_alerts;
  std::vector<SwitchConcurrencyAlert> switch_concurrency_alerts;
};

class Prism {
 public:
  explicit Prism(const ClusterTopology& topology, PrismConfig config = {});

  /// Analyze one window of cluster-wide flows end-to-end.
  [[nodiscard]] PrismReport analyze(const FlowTrace& trace) const;

 private:
  const ClusterTopology& topology_;
  PrismConfig config_;
};

}  // namespace llmprism
