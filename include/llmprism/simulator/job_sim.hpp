// TrainingJobSim: generates the switch-visible network footprint of one
// 3D-parallel LLM training job, plus ground truth for evaluation.
//
// Per training step it:
//  1. computes a 1F1B pipeline schedule per DP replica (jittered compute),
//  2. emits a fixed-size P2P flow for every cross-machine activation
//     (forward) and gradient (backward) hop — the PP signature,
//  3. emits multi-bucket, multi-channel ring all-reduce flows for every DP
//     group after (or, with ZeRO overlap, during) backward — bucket sizes
//     are uneven, so a DP pair sees several distinct flow sizes per step,
//  4. advances the global step barrier (synchronous training).
#pragma once

#include <cstdint>

#include "llmprism/common/rng.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/parallelism/placement.hpp"
#include "llmprism/simulator/ground_truth.hpp"
#include "llmprism/simulator/job_config.hpp"
#include "llmprism/topology/topology.hpp"

namespace llmprism {

struct JobSimResult {
  FlowTrace trace;   ///< cross-machine flows only (switch-level view)
  JobTruth truth;    ///< evaluation oracle
};

class TrainingJobSim {
 public:
  /// `machines` must provide exactly world_size GPUs on `topology`.
  TrainingJobSim(JobId id, JobSimConfig config,
                 std::vector<MachineId> machines,
                 const ClusterTopology& topology);

  /// Generate the full trace; deterministic given `rng`'s state.
  [[nodiscard]] JobSimResult run(Rng& rng) const;

  [[nodiscard]] const JobPlacement& placement() const { return placement_; }
  [[nodiscard]] const RankMap& rank_map() const { return rank_map_; }

 private:
  JobId id_;
  JobSimConfig config_;
  const ClusterTopology& topology_;
  RankMap rank_map_;
  JobPlacement placement_;
};

}  // namespace llmprism
