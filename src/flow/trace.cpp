#include "llmprism/flow/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace llmprism {

FlowTrace::FlowTrace(std::vector<FlowRecord> flows)
    : flows_(std::move(flows)) {}

void FlowTrace::add(FlowRecord flow) { flows_.push_back(std::move(flow)); }

void FlowTrace::append(const FlowTrace& other) {
  flows_.insert(flows_.end(), other.flows_.begin(), other.flows_.end());
}

void FlowTrace::sort() {
  std::sort(flows_.begin(), flows_.end(), FlowStartTimeLess{});
}

bool FlowTrace::is_sorted() const {
  return std::is_sorted(flows_.begin(), flows_.end(), FlowStartTimeLess{});
}

FlowTrace FlowTrace::window(TimeWindow w) const {
  if (!is_sorted()) {
    throw std::logic_error("FlowTrace::window requires a sorted trace");
  }
  const auto lo = std::lower_bound(
      flows_.begin(), flows_.end(), w.begin,
      [](const FlowRecord& f, TimeNs t) { return f.start_time < t; });
  const auto hi = std::lower_bound(
      lo, flows_.end(), w.end,
      [](const FlowRecord& f, TimeNs t) { return f.start_time < t; });
  return FlowTrace(std::vector<FlowRecord>(lo, hi));
}

TimeWindow FlowTrace::span() const {
  if (flows_.empty()) return {};
  TimeNs lo = flows_.front().start_time;
  TimeNs hi = flows_.front().end_time();
  for (const FlowRecord& f : flows_) {
    lo = std::min(lo, f.start_time);
    hi = std::max(hi, f.end_time());
  }
  return {lo, hi};
}

std::unordered_map<GpuPair, std::vector<std::size_t>> build_pair_index(
    const FlowTrace& trace) {
  std::unordered_map<GpuPair, std::vector<std::size_t>> index;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    index[trace[i].pair()].push_back(i);
  }
  return index;
}

std::unordered_map<SwitchId, std::vector<std::size_t>> build_switch_index(
    const FlowTrace& trace) {
  std::unordered_map<SwitchId, std::vector<std::size_t>> index;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    for (const SwitchId sw : trace[i].switches) {
      index[sw].push_back(i);
    }
  }
  return index;
}

std::unordered_set<GpuId> endpoints(const FlowTrace& trace) {
  std::unordered_set<GpuId> out;
  for (const FlowRecord& f : trace) {
    out.insert(f.src);
    out.insert(f.dst);
  }
  return out;
}

std::vector<GpuPair> communication_pairs(const FlowTrace& trace) {
  std::unordered_set<GpuPair> seen;
  std::vector<GpuPair> out;
  for (const FlowRecord& f : trace) {
    if (seen.insert(f.pair()).second) out.push_back(f.pair());
  }
  return out;
}

}  // namespace llmprism
