#include "llmprism/simulator/pipeline_schedule.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace llmprism {

namespace {

/// The 1F1B op order for one stage: `warmup` forwards, then alternating
/// (fwd, bwd) in the steady state, then cooldown backwards.
std::vector<PipeOp> stage_op_order(std::uint32_t stage,
                                   std::uint32_t num_stages,
                                   std::uint32_t num_micro_batches) {
  const std::uint32_t warmup =
      std::min(num_micro_batches, num_stages - stage - 1);
  std::vector<PipeOp> order;
  order.reserve(2 * num_micro_batches);
  for (std::uint32_t m = 0; m < warmup; ++m) {
    order.push_back({PipeOpKind::kForward, stage, m, 0, 0});
  }
  for (std::uint32_t i = 0; i < num_micro_batches - warmup; ++i) {
    order.push_back({PipeOpKind::kForward, stage, warmup + i, 0, 0});
    order.push_back({PipeOpKind::kBackward, stage, i, 0, 0});
  }
  for (std::uint32_t m = num_micro_batches - warmup; m < num_micro_batches;
       ++m) {
    order.push_back({PipeOpKind::kBackward, stage, m, 0, 0});
  }
  return order;
}

}  // namespace

TimeNs PipelineSchedule::backward_done(std::uint32_t stage) const {
  TimeNs latest = std::numeric_limits<TimeNs>::min();
  for (const PipeOp& op : ops.at(stage)) {
    if (op.kind == PipeOpKind::kBackward) latest = std::max(latest, op.end);
  }
  return latest;
}

TimeNs PipelineSchedule::makespan_end() const {
  TimeNs latest = std::numeric_limits<TimeNs>::min();
  for (const auto& stage_ops : ops) {
    for (const PipeOp& op : stage_ops) latest = std::max(latest, op.end);
  }
  return latest;
}

PipelineSchedule compute_1f1b_schedule(const PipelineScheduleInput& input) {
  const std::uint32_t P = input.num_stages;
  const std::uint32_t M = input.num_micro_batches;
  if (P == 0 || M == 0) {
    throw std::invalid_argument("1f1b: stages and micro-batches must be > 0");
  }
  auto check_matrix = [&](const std::vector<std::vector<DurationNs>>& m,
                          const char* name) {
    if (m.size() != P) {
      throw std::invalid_argument(std::string("1f1b: ") + name +
                                  " must have num_stages rows");
    }
    for (const auto& row : m) {
      if (row.size() != M) {
        throw std::invalid_argument(std::string("1f1b: ") + name +
                                    " rows must have num_micro_batches cols");
      }
    }
  };
  check_matrix(input.fwd_time, "fwd_time");
  check_matrix(input.bwd_time, "bwd_time");

  PipelineSchedule schedule;
  schedule.ops.resize(P);
  for (std::uint32_t s = 0; s < P; ++s) {
    schedule.ops[s] = stage_op_order(s, P, M);
  }

  constexpr TimeNs kUnscheduled = std::numeric_limits<TimeNs>::min();
  // fwd_end[s][m], bwd_end[s][m]: completion times, kUnscheduled until set.
  std::vector<std::vector<TimeNs>> fwd_end(P,
                                           std::vector<TimeNs>(M, kUnscheduled));
  std::vector<std::vector<TimeNs>> bwd_end(P,
                                           std::vector<TimeNs>(M, kUnscheduled));
  std::vector<std::size_t> next_op(P, 0);
  std::vector<TimeNs> stage_free(P, input.start_time);

  // Worklist: repeatedly schedule the next in-order op of any stage whose
  // cross-stage dependency is already timed. The 1F1B order is feasible, so
  // every full pass schedules at least one op.
  std::size_t remaining = static_cast<std::size_t>(2) * P * M;
  while (remaining > 0) {
    bool progressed = false;
    for (std::uint32_t s = 0; s < P; ++s) {
      while (next_op[s] < schedule.ops[s].size()) {
        PipeOp& op = schedule.ops[s][next_op[s]];
        TimeNs dep_ready = input.start_time;
        if (op.kind == PipeOpKind::kForward) {
          if (s > 0) {
            const TimeNs upstream = fwd_end[s - 1][op.micro_batch];
            if (upstream == kUnscheduled) break;
            dep_ready = upstream + input.transfer_time;
          }
        } else {
          if (s + 1 < P) {
            const TimeNs downstream = bwd_end[s + 1][op.micro_batch];
            if (downstream == kUnscheduled) break;
            dep_ready = downstream + input.transfer_time;
          } else {
            // Last stage: backward of m follows its own forward of m.
            const TimeNs own_fwd = fwd_end[s][op.micro_batch];
            if (own_fwd == kUnscheduled) break;
            dep_ready = own_fwd;
          }
        }
        op.start = std::max(stage_free[s], dep_ready);
        const DurationNs cost = op.kind == PipeOpKind::kForward
                                    ? input.fwd_time[s][op.micro_batch]
                                    : input.bwd_time[s][op.micro_batch];
        op.end = op.start + cost;
        stage_free[s] = op.end;
        (op.kind == PipeOpKind::kForward ? fwd_end : bwd_end)[s]
            [op.micro_batch] = op.end;
        ++next_op[s];
        --remaining;
        progressed = true;
      }
    }
    if (!progressed) {
      throw std::logic_error("1f1b: schedule deadlocked (internal error)");
    }
  }
  return schedule;
}

}  // namespace llmprism
