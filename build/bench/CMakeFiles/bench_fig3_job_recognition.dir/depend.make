# Empty dependencies file for bench_fig3_job_recognition.
# This may be replaced when dependencies are built.
