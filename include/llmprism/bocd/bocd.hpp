// Bayesian Online Changepoint Detection (Adams & MacKay, 2007).
//
// The paper (§IV-B) divides a pair's flow sequence into training steps by
// running BOCD over the inter-flow interval sequence: intervals within a
// step are short and stable, the gap between steps is a gross outlier, so
// the run-length posterior collapses to r = 0 at step boundaries. A
// changepoint is reported when P(r_t = 0) exceeds a threshold (0.95 in the
// paper and by default here).
//
// Observation model: Normal with unknown mean and variance under a
// Normal-Inverse-Gamma conjugate prior, giving a Student-t posterior
// predictive. The run-length distribution is pruned below a mass floor, so
// each observation costs O(active run lengths) — linear time overall.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "llmprism/common/time.hpp"

namespace llmprism {

struct BocdConfig {
  /// Expected run length between changepoints; hazard H = 1/lambda.
  double hazard_lambda = 64.0;
  /// Report a changepoint when the recent-run mass P(r_t <= recent_run_cap)
  /// exceeds this (paper: 0.95 on P(r_t = 0)).
  double changepoint_threshold = 0.95;

  /// Run lengths counted as "a changepoint just occurred". With the
  /// boundary observation excluded from the new run (see observe()), the
  /// hypotheses "changepoint at t" (r = 0), "changepoint at t-1 with x_t
  /// opening the new run" (r = 1), and so on genuinely compete and split
  /// the posterior mass; summing r <= cap recovers the paper's detection
  /// semantics with a robust margin.
  std::size_t recent_run_cap = 2;

  // Normal-Inverse-Gamma prior on (mean, variance) of the observations.
  double prior_mean = 0.0;
  double prior_kappa = 0.5;   ///< pseudo-observations for the mean
  double prior_alpha = 1.0;   ///< shape of the variance prior
  double prior_beta = 1.0;    ///< scale of the variance prior

  /// Run-length hypotheses with posterior mass below this are dropped.
  double prune_mass = 1e-8;
  /// Keep at most this many run-length hypotheses (the most probable ones;
  /// the run-length-0 hypothesis is always kept). On high-variance streams
  /// the posterior tail decays only like (1-hazard)^age, so a mass floor
  /// alone can leave hundreds of live components — this cap bounds the
  /// per-observation cost with no measurable effect on detection.
  std::size_t max_components = 64;
  /// Hard cap on tracked run lengths (bounds memory on pathological input).
  std::size_t max_run_length = 1u << 20;
};

/// Online BOCD detector. Feed observations one at a time with observe();
/// each call returns P(r_t = 0), the posterior probability that a
/// changepoint occurred at the current observation.
class BocdDetector {
 public:
  explicit BocdDetector(BocdConfig config = {});

  /// Process one observation; returns P(r_t = 0 | x_1..t).
  double observe(double x);

  /// Whether the most recent observation crossed the changepoint threshold.
  /// The first few observations never flag (a stream start is not a
  /// changepoint).
  [[nodiscard]] bool last_was_changepoint() const {
    return t_ > config_.recent_run_cap + 1 &&
           last_recent_probability_ > config_.changepoint_threshold;
  }
  /// P(r_t = 0 | x_1..t) after the last observation.
  [[nodiscard]] double last_cp_probability() const {
    return last_cp_probability_;
  }
  /// P(r_t <= recent_run_cap | x_1..t) after the last observation.
  [[nodiscard]] double last_recent_probability() const {
    return last_recent_probability_;
  }

  /// Maximum a-posteriori run length after the last observation.
  [[nodiscard]] std::size_t map_run_length() const;

  [[nodiscard]] std::size_t observations_seen() const { return t_; }

  /// Degenerate restarts: observations under which EVERY hypothesis had
  /// (numerically) zero likelihood, forcing a hard reset from the prior.
  /// A nonzero count on well-conditioned input is a mis-tuned prior.
  [[nodiscard]] std::size_t hard_resets() const { return hard_resets_; }

  void reset();

 private:
  struct RunComponent {
    std::size_t run_length = 0;
    double probability = 0.0;
    // Normal-Inverse-Gamma posterior parameters for this run hypothesis.
    double mean = 0.0;
    double kappa = 0.0;
    double alpha = 0.0;
    double beta = 0.0;
  };

  [[nodiscard]] double log_predictive(const RunComponent& c, double x) const;
  /// Posterior predictive in linear space (what observe() actually needs).
  /// With an integer nu (any half-integral prior_alpha, including the
  /// default 1.0) the Student-t power (1 + d^2/(nu s2))^-(nu+1)/2 is an
  /// integer/half-integer power, evaluated by repeated squaring plus at
  /// most one sqrt — no log/log1p/exp per component. Non-half-integral
  /// priors fall back to exp(log_predictive()).
  [[nodiscard]] double predictive(const RunComponent& c, double x) const;
  /// lgamma((nu+1)/2) - lgamma(nu/2) for the run-length-r posterior
  /// (nu = 2*(prior_alpha + r/2)), extended lazily. The term depends only
  /// on how many observations the run absorbed, and the two lgamma calls
  /// dominate the per-component predictive cost.
  [[nodiscard]] double lgamma_ratio(std::size_t run_length) const;

  /// Per-run-length constants of the fast predictive; everything data-
  /// independent (run length fixes nu, kappa, alpha — only beta and the
  /// mean vary with the absorbed observations).
  struct PredictiveCoeff {
    double norm = 0.0;          ///< Gamma ratio / sqrt(nu * pi)
    double inv_nu = 0.0;        ///< 1 / nu
    double kappa_factor = 0.0;  ///< (kappa+1) / (alpha*kappa); s2 = beta * kf
    std::size_t power = 0;      ///< nu + 1 (integer by construction)
  };
  [[nodiscard]] const PredictiveCoeff& predictive_coeff(
      std::size_t run_length) const;

  BocdConfig config_;
  /// True when 2*prior_alpha is integral, making every nu an integer and
  /// the fast predictive exact for the model (set once in the ctor).
  bool integral_nu_ = false;
  std::vector<RunComponent> components_;
  mutable std::vector<double> lgamma_ratio_cache_;
  mutable std::vector<PredictiveCoeff> predictive_coeff_cache_;
  std::vector<RunComponent> grown_scratch_;
  double last_cp_probability_ = 0.0;
  double last_recent_probability_ = 0.0;
  std::size_t t_ = 0;
  std::size_t hard_resets_ = 0;
};

/// Batch convenience: indices i (into `xs`) where P(r_i = 0) crossed the
/// threshold.
[[nodiscard]] std::vector<std::size_t> detect_changepoints(
    std::span<const double> xs, const BocdConfig& config = {});

struct SegmenterConfig {
  BocdConfig bocd;
  /// Timestamps closer than this are coalesced into one arrival before the
  /// interval sequence is formed. Collectives launch several flows nearly
  /// simultaneously (ring directions, channels); without coalescing those
  /// near-zero intervals make the interval distribution bimodal and inflate
  /// the learned variance, masking the step gap.
  DurationNs coalesce_gap = 200 * kMicrosecond;

  /// A BOCD-flagged boundary is accepted only if the flagged interval also
  /// exceeds gap_guard_factor x the median interval. Right after a real
  /// boundary the run-length posterior is legitimately "young" for a couple
  /// of observations; the guard rejects those small-interval flags without
  /// touching genuine step gaps (which are orders of magnitude above the
  /// median).
  double gap_guard_factor = 3.0;
};

/// Deterministic per-call work/outcome counters of segment_by_gaps —
/// telemetry the pipeline folds into PrismReport::telemetry. Pure event
/// counts (no wall clock), so totals are thread-count-invariant.
struct SegmenterStats {
  std::uint64_t observations = 0;  ///< BOCD observations consumed
  std::uint64_t boundaries = 0;    ///< segment boundaries opened
  std::uint64_t hard_resets = 0;   ///< degenerate detector restarts

  SegmenterStats& operator+=(const SegmenterStats& other) {
    observations += other.observations;
    boundaries += other.boundaries;
    hard_resets += other.hard_resets;
    return *this;
  }
};

/// Segment a sorted timestamp sequence at "large gap" boundaries.
///
/// Coalesces near-simultaneous arrivals, computes inter-arrival intervals,
/// log-transforms them (making the short intra-step intervals approximately
/// Gaussian and a step gap a gross outlier), runs BOCD, and returns the
/// indices (into the ORIGINAL sequence) of the first element of each
/// segment (always including 0). When `stats` is non-null the call's BOCD
/// work counters are accumulated into it.
[[nodiscard]] std::vector<std::size_t> segment_by_gaps(
    std::span<const TimeNs> timestamps, const SegmenterConfig& config = {},
    SegmenterStats* stats = nullptr);

}  // namespace llmprism
