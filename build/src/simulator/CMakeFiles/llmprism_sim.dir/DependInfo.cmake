
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulator/cluster_sim.cpp" "src/simulator/CMakeFiles/llmprism_sim.dir/cluster_sim.cpp.o" "gcc" "src/simulator/CMakeFiles/llmprism_sim.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/simulator/faults.cpp" "src/simulator/CMakeFiles/llmprism_sim.dir/faults.cpp.o" "gcc" "src/simulator/CMakeFiles/llmprism_sim.dir/faults.cpp.o.d"
  "/root/repo/src/simulator/job_sim.cpp" "src/simulator/CMakeFiles/llmprism_sim.dir/job_sim.cpp.o" "gcc" "src/simulator/CMakeFiles/llmprism_sim.dir/job_sim.cpp.o.d"
  "/root/repo/src/simulator/noise.cpp" "src/simulator/CMakeFiles/llmprism_sim.dir/noise.cpp.o" "gcc" "src/simulator/CMakeFiles/llmprism_sim.dir/noise.cpp.o.d"
  "/root/repo/src/simulator/pipeline_schedule.cpp" "src/simulator/CMakeFiles/llmprism_sim.dir/pipeline_schedule.cpp.o" "gcc" "src/simulator/CMakeFiles/llmprism_sim.dir/pipeline_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/llmprism_common.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/llmprism_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/llmprism_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/parallelism/CMakeFiles/llmprism_parallelism.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
