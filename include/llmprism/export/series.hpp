// Per-job, per-window time series of the monitored fleet.
//
// The obs registry (src/obs) describes LLMPrism itself; this collector
// describes the *jobs being watched*: every analyzed window contributes one
// sample per recognized job — step-duration quantiles, per-comm-type
// bandwidth, pipeline idle fraction, straggler self-time excess, alert and
// incident counts — keyed by the stable monitor job id so a long-running
// job is one continuous series across windows.
//
// Two writers over the same samples:
//  * write_openmetrics(): timestamped OpenMetrics text exposition
//    (family-contiguous, HELP/TYPE headers, `# EOF` terminator) suitable
//    for Prometheus scraping or a future prismd /metrics endpoint;
//  * write_jsonl(): one JSON object per sample behind a schema_version
//    header line, for SRE-platform ingestion.
//
// Step-duration quantiles go through the same fixed-bucket estimator as
// the self-telemetry histograms (obs::histogram_quantile), so there is one
// summary path in the codebase. All output is a deterministic function of
// the view sequence — bit-identical across thread counts and warm/cold
// sessions (enforced by the differential suites).
#pragma once

#include <cstdint>
#include <ostream>
#include <utility>
#include <vector>

#include "llmprism/common/time.hpp"
#include "llmprism/export/view.hpp"
#include "llmprism/obs/metrics.hpp"

namespace llmprism {

struct SeriesOptions {
  /// Fixed bucket bounds (seconds) for the step-duration quantile
  /// estimate; defaults to the obs latency buckets.
  std::vector<double> step_duration_buckets;
  /// Emit the per-rank self-time series (one sample per rank per window).
  bool per_rank = true;
};

/// One job's sample for one analyzed window.
struct JobWindowSample {
  std::uint64_t job = 0;  ///< stable monitor job id
  TimeWindow window;
  std::uint64_t steps = 0;          ///< reconstructed steps, all ranks
  double step_p50_s = 0;            ///< step-duration quantiles (seconds)
  double step_p95_s = 0;
  double dp_gbps = 0;               ///< per-comm-type average bandwidth
  double pp_gbps = 0;
  /// Mean over ranks of the unattributed-gap fraction of the rank's busy
  /// span (PP bubble / idle proxy; 0 when no events).
  double bubble_ratio = 0;
  /// Max over ranks of (median rank self time / across-rank median - 1),
  /// clamped at 0 — the straggler signal attribution scores on.
  double self_time_excess = 0;
  std::uint64_t step_alerts = 0;
  std::uint64_t group_alerts = 0;
  std::uint64_t incidents = 0;      ///< attributed incidents owned by job
  std::uint64_t flows = 0;
  /// Per-rank median step self time (gpu id, seconds); empty when
  /// SeriesOptions::per_rank is off.
  std::vector<std::pair<std::uint32_t, double>> rank_self_time_s;
};

class JobSeriesCollector {
 public:
  explicit JobSeriesCollector(SeriesOptions options = {});

  /// Append one analyzed window (one sample per job in the view).
  void add_window(const WindowExportView& view);

  /// OpenMetrics text exposition of all samples, with timestamps at the
  /// window end. Ends with "# EOF".
  void write_openmetrics(std::ostream& os) const;

  /// JSONL: {"schema_version":1,"stream":"job_series"} header line, then
  /// one JSON object per sample.
  void write_jsonl(std::ostream& os) const;

  [[nodiscard]] const std::vector<JobWindowSample>& samples() const {
    return samples_;
  }

 private:
  SeriesOptions options_;
  std::vector<JobWindowSample> samples_;
};

}  // namespace llmprism
