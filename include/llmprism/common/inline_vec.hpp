// Fixed-capacity inline vector, used where tiny bounded sequences appear on
// hot paths (e.g., the switch path of a flow record is at most 3 hops in a
// two-tier Clos). Avoids a heap allocation per flow.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>

namespace llmprism {

template <typename T, std::size_t N>
class InlineVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr InlineVec() = default;

  constexpr InlineVec(std::initializer_list<T> init) {
    if (init.size() > N) throw std::length_error("InlineVec: too many items");
    for (const T& v : init) data_[size_++] = v;
  }

  constexpr void push_back(const T& v) {
    if (size_ == N) throw std::length_error("InlineVec: capacity exceeded");
    data_[size_++] = v;
  }

  constexpr void clear() { size_ = 0; }

  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] static constexpr std::size_t capacity() { return N; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }

  [[nodiscard]] constexpr T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] constexpr const T& operator[](std::size_t i) const {
    return data_[i];
  }

  [[nodiscard]] constexpr T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("InlineVec::at");
    return data_[i];
  }
  [[nodiscard]] constexpr const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("InlineVec::at");
    return data_[i];
  }

  [[nodiscard]] constexpr T& front() { return data_[0]; }
  [[nodiscard]] constexpr const T& front() const { return data_[0]; }
  [[nodiscard]] constexpr T& back() { return data_[size_ - 1]; }
  [[nodiscard]] constexpr const T& back() const { return data_[size_ - 1]; }

  [[nodiscard]] constexpr iterator begin() { return data_.data(); }
  [[nodiscard]] constexpr iterator end() { return data_.data() + size_; }
  [[nodiscard]] constexpr const_iterator begin() const { return data_.data(); }
  [[nodiscard]] constexpr const_iterator end() const {
    return data_.data() + size_;
  }

  friend constexpr bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  std::array<T, N> data_{};
  std::size_t size_ = 0;
};

}  // namespace llmprism
