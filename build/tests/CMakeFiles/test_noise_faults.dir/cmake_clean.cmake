file(REMOVE_RECURSE
  "CMakeFiles/test_noise_faults.dir/test_noise_faults.cpp.o"
  "CMakeFiles/test_noise_faults.dir/test_noise_faults.cpp.o.d"
  "test_noise_faults"
  "test_noise_faults.pdb"
  "test_noise_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
