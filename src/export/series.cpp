#include "llmprism/export/series.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "llmprism/common/json.hpp"
#include "llmprism/core/attribution.hpp"
#include "emit.hpp"

namespace llmprism {

namespace {

using detail::write_double;

/// Median of an unsorted copy; 0 for empty input.
[[nodiscard]] double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return (xs[mid - 1] + xs[mid]) / 2.0;
}

/// OpenMetrics timestamp: seconds with millisecond resolution.
void write_timestamp(std::ostream& os, TimeNs t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", to_seconds(t));
  os << buf;
}

/// Label values per the exposition format: backslash, double-quote and
/// line feed are escaped. Only fixed vocabularies and decimal ids flow
/// through today, but the writer must not rely on that.
void write_label_value(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '\\':
        os << "\\\\";
        break;
      case '"':
        os << "\\\"";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void write_value(std::ostream& os, double v) {
  std::string s;
  write_double(s, v);
  os << s;
}

/// One sample line: name{label_0,...} value timestamp.
void write_sample(std::ostream& os, std::string_view name,
                  std::initializer_list<std::pair<const char*, std::string>>
                      labels,
                  double value, TimeNs timestamp) {
  os << name;
  if (labels.size() != 0) {
    os << '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) os << ',';
      first = false;
      os << k << '=';
      write_label_value(os, v);
    }
    os << '}';
  }
  os << ' ';
  write_value(os, value);
  os << ' ';
  write_timestamp(os, timestamp);
  os << '\n';
}

}  // namespace

JobSeriesCollector::JobSeriesCollector(SeriesOptions options)
    : options_(std::move(options)) {
  if (options_.step_duration_buckets.empty()) {
    options_.step_duration_buckets =
        obs::Histogram::default_seconds_buckets();
  }
}

void JobSeriesCollector::add_window(const WindowExportView& view) {
  if (view.report == nullptr) return;
  const double window_s = to_seconds(view.window.length());
  for (std::size_t j = 0; j < view.report->jobs.size(); ++j) {
    const JobAnalysis& job = view.report->jobs[j];
    JobWindowSample sample;
    sample.job = stable_job_id(view, j);
    sample.window = view.window;
    sample.flows = job.trace.size();
    sample.step_alerts = job.step_alerts.size();
    sample.group_alerts = job.group_alerts.size();
    for (const AttributedIncident& inc :
         view.report->attribution.incidents) {
      if (inc.job == job.id) ++sample.incidents;
    }

    // Step-duration quantiles through the shared fixed-bucket estimator
    // (obs::histogram_quantile) — same summary path as self-telemetry.
    obs::Histogram::Snapshot snap;
    snap.bounds = options_.step_duration_buckets;
    snap.counts.assign(snap.bounds.size() + 1, 0);
    for (const GpuTimeline& tl : job.timelines) {
      for (const ReconstructedStep& s : tl.steps) {
        const double d = to_seconds(s.duration());
        const auto it =
            std::lower_bound(snap.bounds.begin(), snap.bounds.end(), d);
        ++snap.counts[static_cast<std::size_t>(it - snap.bounds.begin())];
        snap.sum += d;
        ++snap.count;
      }
    }
    sample.steps = snap.count;
    sample.step_p50_s = obs::histogram_quantile(snap, 0.50);
    sample.step_p95_s = obs::histogram_quantile(snap, 0.95);

    // Per-comm-type average bandwidth over the window.
    if (window_s > 0.0 && !job.trace.empty()) {
      const auto types = job.comm_types.types();
      std::uint64_t dp_bytes = 0;
      std::uint64_t pp_bytes = 0;
      for (const FlowRecord& f : job.trace) {
        const auto it = types.find(f.pair());
        if (it != types.end() && it->second == CommType::kDP) {
          dp_bytes += f.bytes;
        } else {
          pp_bytes += f.bytes;
        }
      }
      sample.dp_gbps =
          static_cast<double>(dp_bytes) * 8.0 / window_s / 1e9;
      sample.pp_gbps =
          static_cast<double>(pp_bytes) * 8.0 / window_s / 1e9;
    }

    // Idle / bubble proxy: the fraction of each rank's active span not
    // covered by any reconstructed event, averaged across ranks. Compute
    // fill already absorbs gaps >= min_compute_gap, so what remains is
    // launch latency plus genuine pipeline bubbles.
    double bubble_sum = 0.0;
    std::size_t bubble_ranks = 0;
    for (const GpuTimeline& tl : job.timelines) {
      if (tl.events.empty()) continue;
      const TimeNs span_begin = tl.events.front().start;
      TimeNs span_end = span_begin;
      DurationNs busy = 0;
      for (const TimelineEvent& ev : tl.events) {
        busy += ev.end - ev.start;
        span_end = std::max(span_end, ev.end);
      }
      const DurationNs span = span_end - span_begin;
      if (span <= 0) continue;
      const double ratio = 1.0 - static_cast<double>(busy) /
                                     static_cast<double>(span);
      bubble_sum += std::clamp(ratio, 0.0, 1.0);
      ++bubble_ranks;
    }
    if (bubble_ranks > 0) {
      sample.bubble_ratio = bubble_sum / static_cast<double>(bubble_ranks);
    }

    // Straggler signal: per-rank median step self time, and the excess of
    // the slowest rank over the across-rank median (the quantity the
    // attributor blames ranks by).
    std::vector<double> rank_medians;
    for (const GpuTimeline& tl : job.timelines) {
      const double med = median(Attributor::step_self_times(tl));
      if (options_.per_rank) {
        sample.rank_self_time_s.emplace_back(tl.gpu.value(), med);
      }
      if (med > 0.0) rank_medians.push_back(med);
    }
    if (rank_medians.size() >= 2) {
      const double max_median =
          *std::max_element(rank_medians.begin(), rank_medians.end());
      const double across = median(rank_medians);
      if (across > 0.0) {
        sample.self_time_excess = std::max(max_median / across - 1.0, 0.0);
      }
    }

    samples_.push_back(std::move(sample));
  }
}

void JobSeriesCollector::write_openmetrics(std::ostream& os) const {
  struct Family {
    const char* name;
    const char* help;
  };
  const auto emit_family = [&](const Family& f, auto&& per_sample) {
    os << "# HELP " << f.name << ' ' << f.help << '\n';
    os << "# TYPE " << f.name << " gauge\n";
    for (const JobWindowSample& s : samples_) per_sample(f.name, s);
  };

  emit_family(
      {"llmprism_job_step_duration_seconds",
       "Reconstructed step duration quantiles across the job's ranks."},
      [&](const char* name, const JobWindowSample& s) {
        write_sample(os, name,
                     {{"job", std::to_string(s.job)}, {"quantile", "0.5"}},
                     s.step_p50_s, s.window.end);
        write_sample(os, name,
                     {{"job", std::to_string(s.job)}, {"quantile", "0.95"}},
                     s.step_p95_s, s.window.end);
      });
  emit_family({"llmprism_job_steps",
               "Reconstructed training steps in the window (all ranks)."},
              [&](const char* name, const JobWindowSample& s) {
                write_sample(os, name, {{"job", std::to_string(s.job)}},
                             static_cast<double>(s.steps), s.window.end);
              });
  emit_family(
      {"llmprism_job_comm_bandwidth_gbps",
       "Average cross-machine bandwidth by communication type (Gbit/s)."},
      [&](const char* name, const JobWindowSample& s) {
        write_sample(os, name,
                     {{"job", std::to_string(s.job)}, {"comm_type", "dp"}},
                     s.dp_gbps, s.window.end);
        write_sample(os, name,
                     {{"job", std::to_string(s.job)}, {"comm_type", "pp"}},
                     s.pp_gbps, s.window.end);
      });
  emit_family({"llmprism_job_pp_bubble_ratio",
               "Mean unattributed-gap fraction of each rank's active span "
               "(pipeline bubble / idle proxy)."},
              [&](const char* name, const JobWindowSample& s) {
                write_sample(os, name, {{"job", std::to_string(s.job)}},
                             s.bubble_ratio, s.window.end);
              });
  emit_family({"llmprism_job_self_time_excess_ratio",
               "Relative excess of the slowest rank's median step self time "
               "over the across-rank median (straggler signal)."},
              [&](const char* name, const JobWindowSample& s) {
                write_sample(os, name, {{"job", std::to_string(s.job)}},
                             s.self_time_excess, s.window.end);
              });
  emit_family({"llmprism_job_alerts",
               "k-sigma alerts raised for the job in the window, by kind."},
              [&](const char* name, const JobWindowSample& s) {
                write_sample(os, name,
                             {{"job", std::to_string(s.job)},
                              {"kind", "step"}},
                             static_cast<double>(s.step_alerts),
                             s.window.end);
                write_sample(os, name,
                             {{"job", std::to_string(s.job)},
                              {"kind", "group"}},
                             static_cast<double>(s.group_alerts),
                             s.window.end);
              });
  emit_family({"llmprism_job_incidents",
               "Attributed incidents owned by the job in the window."},
              [&](const char* name, const JobWindowSample& s) {
                write_sample(os, name, {{"job", std::to_string(s.job)}},
                             static_cast<double>(s.incidents), s.window.end);
              });
  emit_family({"llmprism_job_flows",
               "Flows routed to the job in the window."},
              [&](const char* name, const JobWindowSample& s) {
                write_sample(os, name, {{"job", std::to_string(s.job)}},
                             static_cast<double>(s.flows), s.window.end);
              });
  if (options_.per_rank) {
    emit_family({"llmprism_rank_self_time_seconds",
                 "Median per-step self time (compute before PP hand-off) "
                 "of one rank."},
                [&](const char* name, const JobWindowSample& s) {
                  for (const auto& [gpu, v] : s.rank_self_time_s) {
                    write_sample(os, name,
                                 {{"job", std::to_string(s.job)},
                                  {"rank", std::to_string(gpu)}},
                                 v, s.window.end);
                  }
                });
  }
  os << "# EOF\n";
}

void JobSeriesCollector::write_jsonl(std::ostream& os) const {
  os << "{\"schema_version\":1,\"stream\":\"job_series\"}\n";
  for (const JobWindowSample& s : samples_) {
    std::string line;
    line += "{\"job\":" + std::to_string(s.job);
    line += ",\"window_begin_ns\":" + std::to_string(s.window.begin);
    line += ",\"window_end_ns\":" + std::to_string(s.window.end);
    line += ",\"steps\":" + std::to_string(s.steps);
    line += ",\"step_p50_s\":";
    write_double(line, s.step_p50_s);
    line += ",\"step_p95_s\":";
    write_double(line, s.step_p95_s);
    line += ",\"dp_gbps\":";
    write_double(line, s.dp_gbps);
    line += ",\"pp_gbps\":";
    write_double(line, s.pp_gbps);
    line += ",\"bubble_ratio\":";
    write_double(line, s.bubble_ratio);
    line += ",\"self_time_excess\":";
    write_double(line, s.self_time_excess);
    line += ",\"step_alerts\":" + std::to_string(s.step_alerts);
    line += ",\"group_alerts\":" + std::to_string(s.group_alerts);
    line += ",\"incidents\":" + std::to_string(s.incidents);
    line += ",\"flows\":" + std::to_string(s.flows);
    line += ",\"ranks\":[";
    bool first = true;
    for (const auto& [gpu, v] : s.rank_self_time_s) {
      if (!first) line += ',';
      first = false;
      line += "{\"gpu\":" + std::to_string(gpu) + ",\"self_time_s\":";
      write_double(line, v);
      line += '}';
    }
    line += "]}";
    os << line << '\n';
  }
}

}  // namespace llmprism
