file(REMOVE_RECURSE
  "libllmprism_baseline.a"
)
