file(REMOVE_RECURSE
  "CMakeFiles/llmprism_flow.dir/io.cpp.o"
  "CMakeFiles/llmprism_flow.dir/io.cpp.o.d"
  "CMakeFiles/llmprism_flow.dir/trace.cpp.o"
  "CMakeFiles/llmprism_flow.dir/trace.cpp.o.d"
  "libllmprism_flow.a"
  "libllmprism_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmprism_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
