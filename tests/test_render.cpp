// Unit tests for timeline/report rendering.
#include "llmprism/core/render.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "json_lint.hpp"

namespace llmprism {
namespace {

GpuTimeline sample_timeline() {
  GpuTimeline t;
  t.gpu = GpuId(3);
  t.events.push_back(
      {TimelineEventKind::kCompute, 0, 40 * kMillisecond, GpuId()});
  t.events.push_back({TimelineEventKind::kPpSend, 40 * kMillisecond,
                      50 * kMillisecond, GpuId(7)});
  t.events.push_back({TimelineEventKind::kCompute, 50 * kMillisecond,
                      80 * kMillisecond, GpuId()});
  t.events.push_back({TimelineEventKind::kDp, 80 * kMillisecond,
                      100 * kMillisecond, GpuId(11)});
  return t;
}

TEST(RenderLaneTest, PaintsAllEventKinds) {
  const std::string lane = render_timeline_lane(sample_timeline(),
                                                {.width = 50});
  EXPECT_NE(lane.find("gpu 3"), std::string::npos);
  EXPECT_NE(lane.find('C'), std::string::npos);
  EXPECT_NE(lane.find('>'), std::string::npos);
  EXPECT_NE(lane.find('D'), std::string::npos);
}

TEST(RenderLaneTest, RespectsWidth) {
  const std::string lane =
      render_timeline_lane(sample_timeline(), {.width = 30});
  // "gpu 3 |" + 30 chars + "|"
  EXPECT_EQ(lane.size(), std::string("gpu 3 |").size() + 30 + 1);
}

TEST(RenderLaneTest, EmptyTimelineIsAllIdle) {
  GpuTimeline t;
  t.gpu = GpuId(0);
  const std::string lane = render_timeline_lane(t, {.width = 10});
  EXPECT_NE(lane.find(".........."), std::string::npos);
}

TEST(RenderLaneTest, WindowClipsEvents) {
  const auto t = sample_timeline();
  // Window covering only the DP event.
  const std::string lane = render_timeline_lane(
      t, {.width = 10, .window = {80 * kMillisecond, 100 * kMillisecond}});
  EXPECT_NE(lane.find('D'), std::string::npos);
  EXPECT_EQ(lane.find('>'), std::string::npos);
}

TEST(RenderChartTest, MultipleLanesShareAxis) {
  auto a = sample_timeline();
  auto b = sample_timeline();
  b.gpu = GpuId(4);
  const std::vector<GpuTimeline> ts{a, b};
  const std::string chart = render_timeline_chart(std::span(ts), {.width = 40});
  EXPECT_NE(chart.find("gpu 3"), std::string::npos);
  EXPECT_NE(chart.find("gpu 4"), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
}

TEST(RenderChartTest, EmptyInput) {
  EXPECT_EQ(render_timeline_chart({}), "(no timelines)\n");
}

TEST(WriteTimelineJsonTest, SchemaHeaderThenOneLinePerEvent) {
  const auto t = sample_timeline();
  const std::vector<GpuTimeline> ts{t};
  std::ostringstream oss;
  write_timeline_json(oss, std::span(ts));
  const std::string json = oss.str();
  std::size_t lines = 0;
  for (const char c : json) lines += c == '\n';
  EXPECT_EQ(lines, t.events.size() + 1);  // schema header + events
  EXPECT_EQ(json.rfind("{\"schema_version\":", 0), 0u);
  EXPECT_NE(json.find("\"kind\":\"pp_send\""), std::string::npos);
  EXPECT_NE(json.find("\"peer\":7"), std::string::npos);
  // compute events have no peer field
  EXPECT_NE(json.find("\"kind\":\"compute\",\"start_ns\":0"),
            std::string::npos);
}

TEST(WriteTimelineJsonTest, EveryLineParsesAsJsonAndHeaderIsVersioned) {
  const auto t = sample_timeline();
  const std::vector<GpuTimeline> ts{t};
  std::ostringstream oss;
  write_timeline_json(oss, std::span(ts));
  std::istringstream lines(oss.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(testing::is_valid_json(line))
        << testing::JsonLinter(line).error() << "\n" << line;
    if (parsed == 0) EXPECT_TRUE(testing::is_versioned_json(line)) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, t.events.size() + 1);
}

TEST(WriteReportJsonTest, SerializesJobsAndAlerts) {
  PrismReport report;
  report.recognition.num_cross_machine_clusters = 5;
  JobAnalysis job;
  job.id = JobId(0);
  job.job.gpus = {GpuId(0), GpuId(1)};
  job.job.machines = {MachineId(0)};
  job.inferred = {.world_size = 2, .dp = 2, .pp = 1, .tp = 1,
                  .micro_batches = 4};
  StepAlert alert;
  alert.gpu = GpuId(1);
  alert.step_index = 7;
  alert.duration_s = 2.0;
  alert.mean_s = 1.0;
  job.step_alerts.push_back(alert);
  report.jobs.push_back(std::move(job));
  report.switch_bandwidth_gbps.emplace_back(SwitchId(3), 150.5);
  SwitchBandwidthAlert sw_alert;
  sw_alert.switch_id = SwitchId(3);
  sw_alert.bandwidth_gbps = 42.0;
  report.switch_bandwidth_alerts.push_back(sw_alert);

  std::ostringstream oss;
  write_report_json(oss, report);
  const std::string json = oss.str();
  EXPECT_TRUE(testing::is_versioned_json(json));
  EXPECT_NE(json.find("\"schema_version\":" +
                      std::to_string(kReportSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"cross_machine_clusters\":5"), std::string::npos);
  EXPECT_NE(json.find("\"layout\":{\"tp\":1,\"dp\":2,\"pp\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"step\":7"), std::string::npos);
  EXPECT_NE(json.find("\"3\":150.5"), std::string::npos);
  EXPECT_NE(json.find("\"bandwidth_gbps\":42"), std::string::npos);
  EXPECT_TRUE(testing::is_valid_json(json))
      << testing::JsonLinter(json).error() << "\n" << json;
}

TEST(WriteReportJsonTest, EmptyReport) {
  std::ostringstream oss;
  write_report_json(oss, PrismReport{});
  EXPECT_NE(oss.str().find("\"jobs\":[]"), std::string::npos);
  EXPECT_TRUE(testing::is_versioned_json(oss.str()));
}

TEST(WriteReportJsonTest, SerializesTelemetryBlock) {
  PrismReport report;
  report.telemetry.flows_total = 100;
  report.telemetry.flows_routed = 90;
  report.telemetry.flows_unattributed = 10;
  report.telemetry.pairs_classified = 12;
  report.telemetry.bocd_observations = 345;
  report.telemetry.ksigma_alerts = 2;
  std::ostringstream oss;
  write_report_json(oss, report);
  const std::string json = oss.str();
  EXPECT_TRUE(testing::is_valid_json(json))
      << testing::JsonLinter(json).error();
  EXPECT_NE(json.find("\"telemetry\":{"), std::string::npos);
  EXPECT_NE(json.find("\"flows_total\":100"), std::string::npos);
  EXPECT_NE(json.find("\"flows_routed\":90"), std::string::npos);
  EXPECT_NE(json.find("\"flows_unattributed\":10"), std::string::npos);
  EXPECT_NE(json.find("\"pairs_classified\":12"), std::string::npos);
  EXPECT_NE(json.find("\"bocd_observations\":345"), std::string::npos);
  EXPECT_NE(json.find("\"ksigma_alerts\":2"), std::string::npos);
}

TEST(WriteReportJsonTest, SerializesIncidents) {
  PrismReport report;
  AttributedIncident incident;
  incident.job = JobId(0);
  incident.step_begin = 8;
  incident.step_end = 8;
  incident.confidence = 0.875;
  incident.culprits.push_back(
      {.kind = CulpritKind::kRank, .gpu = GpuId(11), .score = 1.5});
  incident.victims.push_back({.kind = VictimKind::kStepAlert,
                              .job = JobId(0),
                              .gpu = GpuId(40),
                              .step_index = 8,
                              .hops = 2});
  incident.evidence.step_alerts = 8;
  report.attribution.incidents.push_back(std::move(incident));

  AttributedIncident cluster;  // switch incidents carry no job id
  cluster.culprits.push_back(
      {.kind = CulpritKind::kSwitch, .switch_id = SwitchId(3), .score = 0.7});
  cluster.evidence.switch_bandwidth_alerts = 1;
  report.attribution.incidents.push_back(std::move(cluster));

  std::ostringstream oss;
  write_report_json(oss, report);
  const std::string json = oss.str();
  EXPECT_TRUE(testing::is_valid_json(json))
      << testing::JsonLinter(json).error() << "\n" << json;
  EXPECT_NE(json.find("\"incidents\":["), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"rank\",\"gpu\":11"), std::string::npos);
  EXPECT_NE(json.find("\"confidence\":0.875"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"step_alert\",\"gpu\":40"),
            std::string::npos);
  EXPECT_NE(json.find("\"hops\":2"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"switch\",\"switch\":3"), std::string::npos);
  // The cluster-level incident must not claim a job or step range.
  const std::size_t cluster_pos = json.find("\"kind\":\"switch\"");
  ASSERT_NE(cluster_pos, std::string::npos);
  EXPECT_EQ(json.find("\"job\":", json.find("\"incidents\":[")),
            json.find("\"job\":0,\"step_begin\":8"));
  EXPECT_NE(json.find("\"evidence\":{\"step_alerts\":8"), std::string::npos);
}

TEST(RenderSummaryTest, IncludesIncidentBlock) {
  PrismReport report;
  AttributedIncident incident;
  incident.job = JobId(0);
  incident.step_begin = 8;
  incident.step_end = 9;
  incident.confidence = 0.9;
  incident.culprits.push_back(
      {.kind = CulpritKind::kRank, .gpu = GpuId(11), .score = 1.5});
  report.attribution.incidents.push_back(std::move(incident));
  report.telemetry.incidents = 1;
  report.telemetry.alerts_explained = 8;

  const std::string summary = render_report_summary(report);
  EXPECT_NE(summary.find("incidents:"), std::string::npos);
  EXPECT_NE(summary.find("straggler gpu 11"), std::string::npos);
  EXPECT_NE(summary.find("1 incidents"), std::string::npos);
  EXPECT_NE(summary.find("8 alerts explained"), std::string::npos);
}

TEST(RenderSummaryTest, IncludesTelemetryLine) {
  PrismReport report;
  report.telemetry.flows_total = 50;
  report.telemetry.flows_routed = 50;
  const std::string summary = render_report_summary(report);
  EXPECT_NE(summary.find("telemetry: 50/50 flows routed"),
            std::string::npos);
}

TEST(EventKindToStringTest, AllKindsNamed) {
  EXPECT_EQ(to_string(TimelineEventKind::kPpSend), "pp_send");
  EXPECT_EQ(to_string(TimelineEventKind::kPpRecv), "pp_recv");
  EXPECT_EQ(to_string(TimelineEventKind::kDp), "dp");
  EXPECT_EQ(to_string(TimelineEventKind::kCompute), "compute");
  EXPECT_EQ(to_string(CommType::kPP), "PP");
  EXPECT_EQ(to_string(CommType::kDP), "DP");
}

}  // namespace
}  // namespace llmprism
