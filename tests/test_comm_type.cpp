// Unit tests for Alg. 2: communication-type identification.
#include "llmprism/core/comm_type.hpp"

#include <gtest/gtest.h>

#include "llmprism/baseline/eval.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

// Build a synthetic per-pair trace: `steps` bursts; PP pairs send
// `flows_per_step` equal-size flows; DP pairs send flows of `sizes`.
void add_pair_flows(FlowTrace& trace, std::uint32_t a, std::uint32_t b,
                    int steps, const std::vector<std::uint64_t>& sizes,
                    int repeats_per_size = 4, TimeNs step_period = 2 * kSecond,
                    TimeNs flow_spacing = kMillisecond) {
  for (int k = 0; k < steps; ++k) {
    TimeNs t = k * step_period;
    for (const std::uint64_t size : sizes) {
      for (int r = 0; r < repeats_per_size; ++r) {
        FlowRecord f;
        f.start_time = t;
        f.src = GpuId(a);
        f.dst = GpuId(b);
        f.bytes = size;
        f.duration = 100;
        trace.add(f);
        t += flow_spacing;
      }
    }
  }
}

TEST(CommTypeIdentifierTest, RejectsBadTolerance) {
  EXPECT_THROW(CommTypeIdentifier({.size_tolerance = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(CommTypeIdentifier({.size_tolerance = 1.0}),
               std::invalid_argument);
}

TEST(CommTypeIdentifierTest, CountDistinctSizesWithTolerance) {
  const CommTypeIdentifier id({.size_tolerance = 0.05});
  EXPECT_EQ(id.count_distinct_sizes({}), 0u);
  EXPECT_EQ(id.count_distinct_sizes({100}), 1u);
  EXPECT_EQ(id.count_distinct_sizes({100, 102, 104}), 1u);  // within 5%
  EXPECT_EQ(id.count_distinct_sizes({100, 200}), 2u);
  EXPECT_EQ(id.count_distinct_sizes({100, 104, 120, 250, 255}), 3u);
}

TEST(CommTypeIdentifierTest, ZeroToleranceCountsExact) {
  const CommTypeIdentifier id({.size_tolerance = 0.0});
  EXPECT_EQ(id.count_distinct_sizes({100, 100, 101}), 2u);
}

TEST(CommTypeIdentifierTest, SingleSizePairIsPP) {
  FlowTrace trace;
  add_pair_flows(trace, 0, 8, 6, {1 << 20}, 8);
  trace.sort();
  const auto result = CommTypeIdentifier{}.identify(trace);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].type, CommType::kPP);
  EXPECT_TRUE(result.dp_components.empty());
}

TEST(CommTypeIdentifierTest, MultiSizePairIsDP) {
  FlowTrace trace;
  add_pair_flows(trace, 0, 8, 6, {1 << 20, 3 << 20, 5 << 20});
  trace.sort();
  const auto result = CommTypeIdentifier{}.identify(trace);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].type, CommType::kDP);
  ASSERT_EQ(result.dp_components.size(), 1u);
  EXPECT_EQ(result.dp_components[0].size(), 2u);
}

TEST(CommTypeIdentifierTest, ModeIsRobustToOneCorruptStep) {
  // One step where the collector only captured one size must not flip a DP
  // pair: the mode over steps absorbs it.
  FlowTrace trace;
  add_pair_flows(trace, 0, 8, 5, {1 << 20, 3 << 20});
  // one extra burst far later with a single size
  add_pair_flows(trace, 0, 8, 1, {1 << 20}, 8, 2 * kSecond, kMillisecond);
  trace.sort();
  const auto result = CommTypeIdentifier{}.identify(trace);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].type, CommType::kDP);
}

TEST(CommTypeIdentifierTest, MajorityCorruptStepsFlipWithoutRefinement) {
  // If MOST steps are truncated to one size, the mode says PP — this is the
  // Table I "w/o refinement" failure mode.
  FlowTrace trace;
  add_pair_flows(trace, 0, 8, 2, {1 << 20, 3 << 20});
  FlowTrace corrupt;
  add_pair_flows(corrupt, 0, 8, 5, {1 << 20}, 8);
  for (const auto& f : corrupt) {
    auto g = f;
    g.start_time += 6 * kSecond;
    trace.add(g);
  }
  trace.sort();
  CommTypeConfig cfg;
  cfg.refine = false;
  const auto result = CommTypeIdentifier(cfg).identify(trace);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].type, CommType::kPP);
  EXPECT_EQ(result.pairs[0].pre_refinement_type, CommType::kPP);
}

TEST(CommTypeIdentifierTest, RefinementRescuesTruncatedDpPair) {
  // DP ring 0-8-16-24-0 (GPUs on distinct machines); pair (0,8) is
  // truncated to one size everywhere, the rest are healthy. Transitivity
  // over the DP component must flip (0,8) back to DP.
  FlowTrace trace;
  const std::vector<std::uint64_t> dp_sizes{1 << 20, 3 << 20};
  add_pair_flows(trace, 8, 16, 6, dp_sizes);
  add_pair_flows(trace, 16, 24, 6, dp_sizes);
  add_pair_flows(trace, 24, 0, 6, dp_sizes);
  add_pair_flows(trace, 0, 8, 6, {1 << 20});  // truncated
  trace.sort();

  CommTypeConfig cfg;
  cfg.refine = true;
  const auto result = CommTypeIdentifier(cfg).identify(trace);
  ASSERT_EQ(result.pairs.size(), 4u);
  for (const auto& p : result.pairs) {
    EXPECT_EQ(p.type, CommType::kDP) << p.pair;
  }
  // pre-refinement label preserved for the corrupted pair
  const GpuPair corrupted(GpuId(0), GpuId(8));
  for (const auto& p : result.pairs) {
    if (p.pair == corrupted) {
      EXPECT_EQ(p.pre_refinement_type, CommType::kPP);
    }
  }
  ASSERT_EQ(result.dp_components.size(), 1u);
  EXPECT_EQ(result.dp_components[0].size(), 4u);
}

TEST(CommTypeIdentifierTest, RefinementNeverFlipsTruePpPairs) {
  // A PP pair bridging two DP components must stay PP: its endpoints are in
  // DIFFERENT components.
  FlowTrace trace;
  const std::vector<std::uint64_t> dp_sizes{1 << 20, 3 << 20};
  // DP component A: 0-8, component B: 16-24
  add_pair_flows(trace, 0, 8, 6, dp_sizes);
  add_pair_flows(trace, 16, 24, 6, dp_sizes);
  // PP pair between the components
  add_pair_flows(trace, 8, 16, 6, {2 << 20});
  trace.sort();
  const auto result = CommTypeIdentifier{}.identify(trace);
  for (const auto& p : result.pairs) {
    if (p.pair == GpuPair(GpuId(8), GpuId(16))) {
      EXPECT_EQ(p.type, CommType::kPP);
    } else {
      EXPECT_EQ(p.type, CommType::kDP);
    }
  }
  EXPECT_EQ(result.dp_components.size(), 2u);
}

TEST(CommTypeIdentifierTest, RareSizeArtifactsDoNotFlipPpPairs) {
  // A PP pair whose flows collapse into one window-wide segment (PP
  // intervals are not separable from the step gap) must not flip to DP
  // because of a couple of partially recorded flows.
  FlowTrace trace;
  for (int i = 0; i < 100; ++i) {
    FlowRecord f;
    f.start_time = i * 50 * kMillisecond;
    f.src = GpuId(0);
    f.dst = GpuId(8);
    f.bytes = 1 << 20;
    f.duration = 100;
    trace.add(f);
  }
  // two partial records (sizes cut by the collector)
  for (const TimeNs at : {13 * 50 * kMillisecond + 1,
                          77 * 50 * kMillisecond + 1}) {
    FlowRecord f;
    f.start_time = at;
    f.src = GpuId(0);
    f.dst = GpuId(8);
    f.bytes = 300'000;
    f.duration = 100;
    trace.add(f);
  }
  trace.sort();
  const auto result = CommTypeIdentifier{}.identify(trace);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].type, CommType::kPP);
}

TEST(CommTypeIdentifierTest, RareSizeFilterKeepsRealDpBuckets) {
  // DP buckets each carry a solid share of the pair's flows; the filter
  // must not erase them.
  FlowTrace trace;
  add_pair_flows(trace, 0, 8, 8, {1 << 20, 3 << 20, 5 << 20}, 4);
  trace.sort();
  const auto result = CommTypeIdentifier{}.identify(trace);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].type, CommType::kDP);
}

TEST(CommTypeIdentifierTest, PartialRecordsDoNotCascadeThroughRefinement) {
  // The failure the filter prevents: a PP pair flipped to DP bridges two
  // DP components and refinement then flips EVERY PP pair between the two
  // stages. Two DP groups, two PP pairs between them, one PP pair with a
  // stray partial record.
  FlowTrace trace;
  const std::vector<std::uint64_t> dp_sizes{1 << 20, 3 << 20};
  add_pair_flows(trace, 0, 8, 8, dp_sizes);      // DP group A
  add_pair_flows(trace, 16, 24, 8, dp_sizes);    // DP group B
  add_pair_flows(trace, 0, 16, 8, {2 << 20});    // PP pair 1 (A<->B)
  add_pair_flows(trace, 8, 24, 8, {2 << 20});    // PP pair 2 (A<->B)
  {
    FlowRecord f;  // one partial record on PP pair 1
    f.start_time = 3 * kSecond + 1;
    f.src = GpuId(0);
    f.dst = GpuId(16);
    f.bytes = 700'000;
    f.duration = 100;
    trace.add(f);
  }
  trace.sort();
  const auto result = CommTypeIdentifier{}.identify(trace);
  for (const auto& p : result.pairs) {
    const bool is_pp = p.pair == GpuPair(GpuId(0), GpuId(16)) ||
                       p.pair == GpuPair(GpuId(8), GpuId(24));
    EXPECT_EQ(p.type, is_pp ? CommType::kPP : CommType::kDP) << p.pair;
  }
  EXPECT_EQ(result.dp_components.size(), 2u);  // groups not bridged
}

TEST(CommTypeIdentifierTest, TypesMapMatchesPairs) {
  FlowTrace trace;
  add_pair_flows(trace, 0, 8, 4, {1 << 20});
  add_pair_flows(trace, 8, 16, 4, {1 << 20, 2 << 20});
  trace.sort();
  const auto result = CommTypeIdentifier{}.identify(trace);
  const auto types = result.types();
  EXPECT_EQ(types.size(), result.pairs.size());
  for (const auto& p : result.pairs) {
    EXPECT_EQ(types.at(p.pair), p.type);
  }
}

TEST(CommTypeIdentifierTest, EmptyTrace) {
  const auto result = CommTypeIdentifier{}.identify(FlowTrace{});
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_TRUE(result.dp_components.empty());
}

TEST(CommTypeIdentifierTest, PairsSortedDeterministically) {
  FlowTrace trace;
  add_pair_flows(trace, 16, 24, 3, {1 << 20});
  add_pair_flows(trace, 0, 8, 3, {1 << 20});
  trace.sort();
  const auto result = CommTypeIdentifier{}.identify(trace);
  ASSERT_EQ(result.pairs.size(), 2u);
  EXPECT_LT(result.pairs[0].pair, result.pairs[1].pair);
}

// ---------------------------------------------------------------------------
// Simulator-driven sweep over parallelism shapes and optimizations:
// classification is perfect on clean traces.

struct CommTypeSweepParam {
  std::uint32_t tp, dp, pp;
  bool zero_overlap;
};

class CommTypeSweep : public ::testing::TestWithParam<CommTypeSweepParam> {};

TEST_P(CommTypeSweep, PerfectOnCleanTraces) {
  const auto p = GetParam();
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  JobSimConfig job;
  job.parallelism.tp = p.tp;
  job.parallelism.dp = p.dp;
  job.parallelism.pp = p.pp;
  job.num_steps = 8;
  job.zero_overlap = p.zero_overlap;
  cfg.jobs.push_back({job, {}});
  const auto sim = run_cluster_sim(cfg);

  const auto result = CommTypeIdentifier{}.identify(sim.trace);
  const auto score = score_comm_type(std::span(result.pairs), sim.jobs[0]);
  EXPECT_EQ(score.missing_pairs, 0u);
  EXPECT_DOUBLE_EQ(score.accuracy(), 1.0)
      << "dp_as_pp=" << score.dp_as_pp << " pp_as_dp=" << score.pp_as_dp;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CommTypeSweep,
    ::testing::Values(CommTypeSweepParam{8, 2, 2, false},
                      CommTypeSweepParam{8, 4, 1, false},
                      CommTypeSweepParam{8, 1, 4, false},
                      CommTypeSweepParam{4, 8, 1, false},
                      CommTypeSweepParam{2, 4, 4, false},
                      CommTypeSweepParam{8, 2, 2, true},
                      CommTypeSweepParam{4, 4, 2, true}));

}  // namespace
}  // namespace llmprism
